package pivot

// One benchmark per paper table/figure. Each benchmark exercises the same
// code path as the corresponding cmd/pivot-exp experiment at a reduced scope
// (one application / one cell instead of the full sweep) so `go test
// -bench=.` regenerates every result's machinery in minutes. The headline
// quantity of each figure is attached via b.ReportMetric; run
// `cmd/pivot-exp` for the full tables.

import (
	"fmt"
	"sync"
	"testing"

	"pivot/internal/exp"
	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/metrics"
	"pivot/internal/rrbp"
	"pivot/internal/workload"
)

// mustRun / mustCalib / mustTable unwrap the exp layer's error returns;
// any simulation failure fails the benchmark immediately.
func mustRun(b *testing.B, ctx *exp.Context, spec exp.RunSpec) exp.RunResult {
	b.Helper()
	r, err := ctx.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func mustCalib(b *testing.B, ctx *exp.Context, app string) *exp.AppCalib {
	b.Helper()
	cal, err := ctx.Calib(app)
	if err != nil {
		b.Fatal(err)
	}
	return cal
}

func mustTable(t *metrics.Table, err error) *metrics.Table {
	if err != nil {
		panic(err)
	}
	return t
}

var (
	benchOnce sync.Once
	benchCtx  *exp.Context
)

// benchContext returns a shared, pre-calibrated harness context at bench
// scale (4 cores, short runs) so per-benchmark setup stays out of the timer.
func benchContext(b *testing.B) *exp.Context {
	b.Helper()
	benchOnce.Do(func() {
		s := exp.Quick()
		s.Warmup = 150_000
		s.Measure = 200_000
		s.CalMeasure = 120_000
		s.LoadFracs = []float64{0.2, 0.6}
		s.MaxBEThreads = 3
		benchCtx = exp.NewContext(machine.KunpengConfig(4), s)
		// Pre-warm the caches every benchmark shares. An error here is
		// cached and resurfaces in the first benchmark's mustCalib.
		benchCtx.Calib(workload.Masstree) //nolint:errcheck
		benchCtx.Potential(workload.Masstree)
	})
	return benchCtx
}

// benchColo runs one co-location cell under a method and reports the
// figure's headline metrics.
func benchColo(b *testing.B, mth exp.Method, app string, load int, threads int) exp.RunResult {
	b.Helper()
	ctx := benchContext(b)
	var last exp.RunResult
	for i := 0; i < b.N; i++ {
		last = mustRun(b, ctx, exp.RunSpec{Method: mth,
			LCs: []exp.LCSpec{{App: app, LoadPct: load}},
			BEs: []exp.BESpec{{App: workload.IBench, Threads: threads}}})
	}
	if len(last.P95) > 0 {
		b.ReportMetric(float64(last.P95[0]), "p95-cycles")
	}
	b.ReportMetric(last.BEIPC, "be-ipc")
	b.ReportMetric(last.BWUtil, "bw-util")
	return last
}

// --- Motivation figures ----------------------------------------------------

func BenchmarkFig01TailLatencyDefault(b *testing.B) {
	benchColo(b, exp.MethodDefault(), workload.Masstree, 70, 3)
}

func BenchmarkFig01TailLatencyMPAM(b *testing.B) {
	benchColo(b, exp.MethodMPAM(), workload.Masstree, 70, 3)
}

func BenchmarkFig02BandwidthFullPath(b *testing.B) {
	benchColo(b, exp.MethodFullPath(), workload.Masstree, 70, 3)
}

func BenchmarkFig02BandwidthPIVOT(b *testing.B) {
	benchColo(b, exp.MethodPIVOT(), workload.Masstree, 70, 3)
}

func BenchmarkFig03MaxBEThroughput(b *testing.B) {
	ctx := benchContext(b)
	var v float64
	for i := 0; i < b.N; i++ {
		var err error
		v, err = ctx.MaxBEThroughput(exp.MethodPIVOT(),
			[]exp.LCSpec{{App: workload.Masstree, LoadPct: 70}}, workload.IBench, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(v, "be-throughput-norm")
}

func BenchmarkFig05CycleSplit(b *testing.B) {
	ctx := benchContext(b)
	var split [mem.NumComponents]float64
	for i := 0; i < b.N; i++ {
		r := mustRun(b, ctx, exp.RunSpec{Method: exp.MethodDefault(),
			LCs: []exp.LCSpec{{App: workload.Masstree, LoadPct: 70}},
			BEs: []exp.BESpec{{App: workload.IBench, Threads: 3}}})
		split = r.Split
	}
	b.ReportMetric(split[mem.CompMemCtrl], "memctrl-cycles")
	b.ReportMetric(split[mem.CompDRAM], "dram-cycles")
}

func BenchmarkFig06FullPathScaling(b *testing.B) {
	benchColo(b, exp.MethodFullPath(), workload.Silo, 70, 3)
}

func BenchmarkFig07LeaveOneOut(b *testing.B) {
	ctx := benchContext(b)
	var p95 uint32
	for i := 0; i < b.N; i++ {
		r := mustRun(b, ctx, exp.RunSpec{Method: exp.MethodFullPath(),
			LCs: []exp.LCSpec{{App: workload.Masstree, LoadPct: 70}},
			BEs: []exp.BESpec{{App: workload.IBench, Threads: 3}},
			Opt: machine.Options{DisableMSC: mem.CompMemCtrl}})
		p95 = r.P95[0]
	}
	b.ReportMetric(float64(p95), "p95-cycles")
}

func BenchmarkFig08StallCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof := machine.RunProfiler(machine.KunpengConfig(4),
			workload.LCApps()[workload.Silo], 3, 1, 200_000)
		loadFrac, stallFrac := prof.CDF()
		if len(loadFrac) > 0 {
			b.ReportMetric(stallFrac[len(loadFrac)/10], "stall-share-top10pct")
		}
	}
}

func BenchmarkFig12LoadLatencyCurve(b *testing.B) {
	ctx := benchContext(b)
	var knee float64
	for i := 0; i < b.N; i++ {
		cal := mustCalib(b, ctx, workload.Masstree)
		knee = float64(cal.QoSTarget)
	}
	b.ReportMetric(knee, "qos-cycles")
}

// --- Evaluation figures ------------------------------------------------------

func BenchmarkFig13PARTIES(b *testing.B) {
	benchColo(b, exp.MethodPARTIES(), workload.Silo, 50, 3)
}

func BenchmarkFig13CLITE(b *testing.B) {
	benchColo(b, exp.MethodCLITE(), workload.Silo, 50, 3)
}

func BenchmarkFig13PIVOT(b *testing.B) {
	benchColo(b, exp.MethodPIVOT(), workload.Silo, 50, 3)
}

func BenchmarkFig14TailUnderManagers(b *testing.B) {
	benchColo(b, exp.MethodPARTIES(), workload.Masstree, 50, 3)
}

func BenchmarkFig15TwoLCHeatmapCell(b *testing.B) {
	ctx := benchContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{
				{App: workload.Xapian, LoadPct: 30},
				{App: workload.ImgDNN, LoadPct: 30},
			},
			BEs: []exp.BESpec{{App: workload.IBench, Threads: 2}}})
	}
	b.ReportMetric(r.BEIPC, "be-ipc")
}

func BenchmarkFig16CloudSuiteBE(b *testing.B) {
	ctx := benchContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{{App: workload.Xapian, LoadPct: 50}},
			BEs: []exp.BESpec{{App: workload.DataAn, Threads: 3}}})
	}
	b.ReportMetric(r.BEIPC, "be-ipc")
	b.ReportMetric(r.BWUtil, "bw-util")
}

func BenchmarkFig17TwoBE(b *testing.B) {
	ctx := benchContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{{App: workload.Silo, LoadPct: 50}},
			BEs: []exp.BESpec{
				{App: workload.GraphAn, Threads: 2},
				{App: workload.InMemAn, Threads: 1},
			}})
	}
	b.ReportMetric(r.BEIPC, "be-ipc")
}

func BenchmarkFig18TwoLCFrontier(b *testing.B) {
	ctx := benchContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{
				{App: workload.Silo, LoadPct: 50},
				{App: workload.Masstree, LoadPct: 30},
			}})
	}
	qos := 0.0
	if r.AllQoS {
		qos = 1
	}
	b.ReportMetric(qos, "both-qos-met")
}

func BenchmarkFig19ThreeLC(b *testing.B) {
	ctx := benchContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{
				{App: workload.Xapian, LoadPct: 30},
				{App: workload.Masstree, LoadPct: 20},
				{App: workload.ImgDNN, LoadPct: 10},
			}})
	}
	qos := 0.0
	if r.AllQoS {
		qos = 1
	}
	b.ReportMetric(qos, "all-qos-met")
}

// --- Predictors, sensitivity, Neoverse --------------------------------------

func BenchmarkFig20CBP(b *testing.B) {
	benchColo(b, exp.Method{Name: "CBP", Policy: machine.PolicyCBP}, workload.Masstree, 50, 3)
}

func BenchmarkFig20CBPFullPath(b *testing.B) {
	benchColo(b, exp.Method{Name: "CBP+FullPath", Policy: machine.PolicyCBPFullPath},
		workload.Masstree, 50, 3)
}

func BenchmarkFig21RunAloneIPC(b *testing.B) {
	ctx := benchContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodDefault(),
			LCs: []exp.LCSpec{{App: workload.Masstree, LoadPct: 70}}})
	}
	b.ReportMetric(r.LCIPC[0], "lc-ipc")
}

func BenchmarkFig22RRBP16Entries(b *testing.B) {
	ctx := benchContext(b)
	cfg := rrbp.DefaultConfig()
	cfg.Entries = 16
	cfg.RefreshCycles = machine.ScaledRRBPRefresh
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{{App: workload.Masstree, LoadPct: 70}},
			BEs: []exp.BESpec{{App: workload.IBench, Threads: 3}},
			Opt: machine.Options{RRBP: cfg}})
	}
	b.ReportMetric(r.BEIPC, "be-ipc")
}

func BenchmarkSensitivityRefresh(b *testing.B) {
	ctx := benchContext(b)
	cfg := rrbp.DefaultConfig()
	cfg.RefreshCycles = machine.ScaledRRBPRefresh / 2
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{{App: workload.Masstree, LoadPct: 70}},
			BEs: []exp.BESpec{{App: workload.IBench, Threads: 3}},
			Opt: machine.Options{RRBP: cfg}})
	}
	b.ReportMetric(r.BEIPC, "be-ipc")
}

var (
	neoOnce sync.Once
	neoCtx  *exp.Context
)

func neoverseContext(b *testing.B) *exp.Context {
	b.Helper()
	neoOnce.Do(func() {
		s := exp.Quick()
		s.Warmup = 150_000
		s.Measure = 200_000
		s.CalMeasure = 120_000
		s.LoadFracs = []float64{0.2, 0.6}
		s.MaxBEThreads = 3
		neoCtx = exp.NewContext(machine.NeoverseConfig(4), s)
	})
	return neoCtx
}

func BenchmarkFig23NeoversePIVOT(b *testing.B) {
	ctx := neoverseContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{{App: workload.Silo, LoadPct: 50}},
			BEs: []exp.BESpec{{App: workload.IBench, Threads: 3}}})
	}
	b.ReportMetric(r.BEIPC, "be-ipc")
}

func BenchmarkFig24NeoverseCloudSuite(b *testing.B) {
	ctx := neoverseContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodCLITE(),
			LCs: []exp.LCSpec{{App: workload.Xapian, LoadPct: 50}},
			BEs: []exp.BESpec{{App: workload.DataAn, Threads: 3}}})
	}
	b.ReportMetric(r.BEIPC, "be-ipc")
}

func BenchmarkFig25NeoverseTwoBE(b *testing.B) {
	ctx := neoverseContext(b)
	var r exp.RunResult
	for i := 0; i < b.N; i++ {
		r = mustRun(b, ctx, exp.RunSpec{Method: exp.MethodPIVOT(),
			LCs: []exp.LCSpec{{App: workload.Moses, LoadPct: 50}},
			BEs: []exp.BESpec{
				{App: workload.GraphAn, Threads: 2},
				{App: workload.InMemAn, Threads: 1},
			}})
	}
	b.ReportMetric(r.BEIPC, "be-ipc")
}

// --- Tables ------------------------------------------------------------------

func BenchmarkTable1Workloads(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		_ = mustTable(ctx.Table1()).String()
	}
}

func BenchmarkTable2KunpengConfig(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		_ = mustTable(ctx.Table2()).String()
	}
}

func BenchmarkStorageBudget(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		total = DefaultStorageBudget().Total()
	}
	b.ReportMetric(float64(total), "bits")
}

// --- Micro-benchmarks of the hot simulation paths ---------------------------

func BenchmarkSimulatorCyclesPerSecond(b *testing.B) {
	tasks := []machine.TaskSpec{
		{Kind: machine.TaskLC, LC: workload.LCApps()[workload.Silo], MeanInterarrival: 5000, Seed: 1},
		{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 11},
		{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 12},
		{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 13},
	}
	m := machine.MustNew(machine.KunpengConfig(4), machine.Options{Policy: machine.PolicyDefault}, tasks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Engine.Step(10_000)
	}
	b.ReportMetric(10_000*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkSimulatorCyclesPerSecondParallel measures the sharded windowed
// tick loop on the Fig-1 task mix (1 LC Silo + 3 BE iBench, the same tasks
// as the serial benchmark above) hosted on an 8-core machine, across shard
// worker counts, so one -bench run shows the scaling curve. workers=1
// isolates the windowed loop's algorithmic win (coordinator forecasts and
// skips the shared slots; cores advance in bulk inside windows); higher
// counts add goroutine fan-out on top.
func BenchmarkSimulatorCyclesPerSecondParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tasks := []machine.TaskSpec{
				{Kind: machine.TaskLC, LC: workload.LCApps()[workload.Silo], MeanInterarrival: 5000, Seed: 1},
				{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 11},
				{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 12},
				{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 13},
			}
			m := machine.MustNew(machine.KunpengConfig(8),
				machine.Options{Policy: machine.PolicyDefault, Parallel: workers}, tasks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Engine.Step(10_000)
			}
			b.ReportMetric(10_000*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

func BenchmarkOfflineProfiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		machine.ProfileLC(machine.KunpengConfig(4), workload.LCApps()[workload.Silo], 3, 1)
	}
}
