// Sensitivity: sweep PIVOT's RRBP table size (Figure 22) on one scenario —
// Masstree at a fixed load against the 7-thread iBench stressor — and print
// BE throughput relative to an idealised unlimited table, demonstrating that
// the paper's 64-entry table loses almost nothing to aliasing.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"

	"pivot"
	"pivot/internal/machine"
	"pivot/internal/rrbp"
)

func main() {
	cfg := pivot.KunpengConfig(8)
	lc := pivot.LCApps()[pivot.Masstree]
	be := pivot.BEApps()[pivot.IBench]
	potential := pivot.ProfileLC(cfg, lc, 7, 1)

	run := func(entries int) (beIPC float64, p95 uint32) {
		rcfg := rrbp.DefaultConfig()
		rcfg.Entries = entries
		rcfg.RefreshCycles = machine.ScaledRRBPRefresh
		tasks := []pivot.TaskSpec{{
			Kind: pivot.TaskLC, LC: lc, MeanInterarrival: 4000,
			Potential: potential, Seed: 1,
		}}
		for i := 0; i < 7; i++ {
			tasks = append(tasks, pivot.TaskSpec{Kind: pivot.TaskBE, BE: be, Seed: uint64(10 + i)})
		}
		m := pivot.MustNewMachine(cfg, pivot.Options{Policy: pivot.PolicyPIVOT, RRBP: rcfg}, tasks)
		m.Run(400_000, 500_000)
		return float64(m.BECommitted()) / float64(m.MeasuredCycles()), m.LCp95(0)
	}

	unlIPC, unlP95 := run(0)
	fmt.Printf("unlimited table: BE=%.4f instr/cyc, LC p95=%d cycles\n\n", unlIPC, unlP95)
	fmt.Printf("%-8s %14s %12s\n", "entries", "BE vs unlimited", "LC p95")
	for _, n := range []int{16, 32, 64, 128} {
		ipc, p95 := run(n)
		fmt.Printf("%-8d %14.3f %12d\n", n, ipc/unlIPC, p95)
	}
}
