// Quickstart: co-locate one latency-critical task with a memory-hogging
// best-effort stressor and watch PIVOT rescue the tail latency that free
// contention destroys.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pivot"
)

func main() {
	cfg := pivot.KunpengConfig(8)
	lc := pivot.LCApps()[pivot.Masstree]
	be := pivot.BEApps()[pivot.IBench]

	// Phase 1 (offline, once per LC binary): profile Masstree against the
	// stress workload to find the potential performance-critical loads.
	fmt.Println("offline profiling masstree...")
	potential := pivot.ProfileLC(cfg, lc, 7, 1)
	fmt.Printf("potential-critical set: %d static loads\n\n", len(potential))

	run := func(policy pivot.Policy) (p95 uint32, beIPC, bw float64) {
		tasks := []pivot.TaskSpec{{
			Kind: pivot.TaskLC, LC: lc,
			MeanInterarrival: 4000, // one request every ~4k cycles
			Potential:        potential,
			Seed:             1,
		}}
		for i := 0; i < 7; i++ {
			tasks = append(tasks, pivot.TaskSpec{Kind: pivot.TaskBE, BE: be, Seed: uint64(10 + i)})
		}
		m := pivot.MustNewMachine(cfg, pivot.Options{Policy: policy}, tasks)
		m.Run(400_000, 500_000)
		return m.LCp95(0), float64(m.BECommitted()) / float64(m.MeasuredCycles()), m.BWUtil()
	}

	fmt.Printf("%-10s %12s %14s %10s\n", "policy", "LC p95", "BE instr/cyc", "BW util")
	for _, pol := range []pivot.Policy{pivot.PolicyDefault, pivot.PolicyMPAM, pivot.PolicyPIVOT} {
		p95, ipc, bw := run(pol)
		fmt.Printf("%-10s %12d %14.4f %10.3f\n", pol, p95, ipc, bw)
	}
	fmt.Println("\nDefault and MPAM let the best-effort task inflate the tail by an")
	fmt.Println("order of magnitude; PIVOT holds it near run-alone latency while the")
	fmt.Println("best-effort task keeps nearly all of its throughput.")
}
