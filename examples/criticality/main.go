// Criticality: look inside PIVOT's two-phase profiling. Runs the offline
// phase for an LC application, prints the per-static-load statistics
// (execution count, LLC miss rate, attributed ROB stall cycles), the
// selected potential-critical set, and the Figure 8 CDF showing that a
// handful of loads cause nearly all ROB stall cycles.
//
//	go run ./examples/criticality [app]
package main

import (
	"fmt"
	"os"

	"pivot"
	"pivot/internal/machine"
	"pivot/internal/profile"
)

func main() {
	app := pivot.Silo
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	params, ok := pivot.LCApps()[app]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q; one of: %v\n", app, pivot.LCNames())
		os.Exit(2)
	}

	fmt.Printf("offline profiling %s against the stress-copy workload...\n\n", app)
	prof := machine.RunProfiler(machine.KunpengConfig(8), params, 7, 1, machine.ProfileCycles)
	set := prof.Select(profile.DefaultParams())

	stats := prof.Stats()
	fmt.Printf("observed %d loads across %d static PCs; selected %d as potential-critical\n\n",
		prof.TotalLoads(), len(stats), len(set))

	fmt.Printf("%-12s %8s %9s %12s %10s\n", "pc", "execs", "missRate", "stallCycles", "selected")
	for i, s := range stats {
		if i >= 15 {
			fmt.Printf("... (%d more)\n", len(stats)-15)
			break
		}
		fmt.Printf("%#-12x %8d %9.3f %12d %10v\n", s.PC, s.Execs, s.MissRate(), s.StallCycles, set.Contains(s.PC))
	}

	loadFrac, stallFrac := prof.CDF()
	fmt.Println("\nFigure 8 shape — cumulative stall share of the top static loads:")
	for _, p := range []float64{0.05, 0.10, 0.25, 0.50} {
		for i, lf := range loadFrac {
			if lf >= p {
				fmt.Printf("  top %4.0f%% of loads -> %5.1f%% of ROB stall cycles\n",
					p*100, stallFrac[i]*100)
				break
			}
		}
	}
}
