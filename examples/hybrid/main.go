// Hybrid: the paper's §VII names the PIVOT-vs-strong-isolation trade-off as
// future work — PIVOT's weak isolation protects the tail but can concede
// average latency that MBA-style throttling would protect. This example runs
// the hybrid controller implemented in this repository: PIVOT for the tail,
// with MBA throttling dialled in only while a mean-latency target is at
// risk.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"

	"pivot"
)

func main() {
	cfg := pivot.KunpengConfig(8)
	lc := pivot.LCApps()[pivot.Masstree]
	be := pivot.BEApps()[pivot.IBench]
	potential := pivot.ProfileLC(cfg, lc, 7, 1)

	build := func() *pivot.Machine {
		tasks := []pivot.TaskSpec{{
			Kind: pivot.TaskLC, LC: lc, MeanInterarrival: 4500,
			Potential: potential, Seed: 1,
		}}
		for i := 0; i < 7; i++ {
			tasks = append(tasks, pivot.TaskSpec{Kind: pivot.TaskBE, BE: be, Seed: uint64(10 + i)})
		}
		return pivot.MustNewMachine(cfg, pivot.Options{Policy: pivot.PolicyPIVOT}, tasks)
	}

	// Baseline: PIVOT alone.
	m := build()
	m.Run(400_000, 500_000)
	src := m.LCTasks()[0].Source
	baseMean := src.RecentMean(0)
	fmt.Printf("PIVOT alone:   mean=%6.0f  p95=%6d  BE=%.4f instr/cyc\n",
		baseMean, m.LCp95(0), float64(m.BECommitted())/float64(m.MeasuredCycles()))

	// Hybrid: demand a mean 15% below what PIVOT alone delivers.
	target := baseMean * 0.85
	hm := build()
	h := pivot.NewHybrid([]float64{target})
	pivot.RunManaged(h, hm, 400_000, 500_000, 50_000)
	hsrc := hm.LCTasks()[0].Source
	fmt.Printf("PIVOT+Hybrid:  mean=%6.0f  p95=%6d  BE=%.4f instr/cyc  (target %.0f, MBA level %d)\n",
		hsrc.RecentMean(0), hm.LCp95(0),
		float64(hm.BECommitted())/float64(hm.MeasuredCycles()), target, h.Level())

	fmt.Println("\nThe controller engages strong isolation (low MBA level) chasing the")
	fmt.Println("mean target, paying BE throughput for it — §VII's trade-off made")
	fmt.Println("concrete. How much mean latency that actually buys is workload-")
	fmt.Println("dependent: where PIVOT already cleared the critical path, throttling")
	fmt.Println("the BE tasks further shaves little — which is §VII's point that the")
	fmt.Println("two isolation modes suit different latency objectives.")
}
