// Colocation: a warehouse-style mix — two latency-critical services (online
// search + inference) sharing a node with a CloudSuite analytics job — swept
// across the resource managers the paper compares: PARTIES, CLITE, and
// PIVOT. Prints each manager's LC tails, BE throughput and bandwidth.
//
//	go run ./examples/colocation
package main

import (
	"fmt"

	"pivot"
)

func main() {
	cfg := pivot.KunpengConfig(8)
	apps := pivot.LCApps()
	xapian, imgdnn := apps[pivot.Xapian], apps[pivot.ImgDNN]
	analytics := pivot.BEApps()[pivot.DataAn]

	// Offline profiles for PIVOT (one per LC application).
	potXP := pivot.ProfileLC(cfg, xapian, 6, 1)
	potID := pivot.ProfileLC(cfg, imgdnn, 6, 1)

	// QoS targets: loose knee proxies for this demo (the experiment harness
	// derives them from real load-latency sweeps; see cmd/pivot-exp fig12).
	buildTasks := func() []pivot.TaskSpec {
		tasks := []pivot.TaskSpec{
			{Kind: pivot.TaskLC, LC: xapian, MeanInterarrival: 3000, Potential: potXP, Seed: 1},
			{Kind: pivot.TaskLC, LC: imgdnn, MeanInterarrival: 2000, Potential: potID, Seed: 2},
		}
		for i := 0; i < 6; i++ {
			tasks = append(tasks, pivot.TaskSpec{Kind: pivot.TaskBE, BE: analytics, Seed: uint64(10 + i)})
		}
		return tasks
	}

	// Measure run-alone tails to set targets.
	targets := make([]uint32, 2)
	for i, spec := range buildTasks()[:2] {
		m := pivot.MustNewMachine(cfg, pivot.Options{Policy: pivot.PolicyDefault},
			[]pivot.TaskSpec{spec})
		m.Run(200_000, 300_000)
		targets[i] = m.LCp95(0) * 3
	}
	fmt.Printf("QoS targets: xapian %d cycles, img-dnn %d cycles\n\n", targets[0], targets[1])

	fmt.Printf("%-8s %10s %10s %14s %8s\n", "manager", "xapian", "img-dnn", "BE instr/cyc", "BW util")
	report := func(name string, m *pivot.Machine) {
		fmt.Printf("%-8s %10d %10d %14.4f %8.3f\n", name,
			m.LCp95(0), m.LCp95(1),
			float64(m.BECommitted())/float64(m.MeasuredCycles()), m.BWUtil())
	}

	// PARTIES and CLITE drive CAT+MBA knobs over the managed policy.
	for _, name := range []string{"PARTIES", "CLITE"} {
		m := pivot.MustNewMachine(cfg, pivot.Options{Policy: pivot.PolicyManaged}, buildTasks())
		var mgr pivot.Manager
		if name == "PARTIES" {
			mgr = pivot.NewPARTIES(targets)
		} else {
			mgr = pivot.NewCLITE(targets)
		}
		pivot.RunManaged(mgr, m, 400_000, 500_000, 50_000)
		report(name, m)
	}

	// PIVOT needs no manager: the criticality mechanism is the policy.
	m := pivot.MustNewMachine(cfg, pivot.Options{Policy: pivot.PolicyPIVOT}, buildTasks())
	m.Run(400_000, 500_000)
	report("PIVOT", m)
}
