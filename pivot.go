// Package pivot is the public API of this reproduction of "Criticality-Aware
// Instruction-Centric Bandwidth Partitioning for Data Center Applications"
// (PIVOT, HPCA 2025).
//
// The package re-exports the pieces a downstream user composes:
//
//   - a simulated server node (Machine) with out-of-order cores, a
//     multi-level cache hierarchy, and the four shared memory-system
//     components of the paper's Figure 4;
//   - the bandwidth-partitioning policies under study: Default (free
//     contention), Intel-MBA-style throttling, ARM-MPAM-style priority at
//     the bandwidth controller, FullPath (MPAM across all components), the
//     CBP runtime predictors, and PIVOT itself;
//   - PIVOT's two-phase profiling: ProfileLC runs the offline phase and
//     returns the potential-critical set consumed by TaskSpec.Potential;
//   - the workload catalogue standing in for Tailbench, CloudSuite and
//     iBench (LCApps, BEApps);
//   - the thread-centric software resource managers the paper compares
//     against (PARTIES, CLITE).
//
// A minimal co-location experiment:
//
//	apps := pivot.LCApps()
//	pot := pivot.ProfileLC(pivot.KunpengConfig(8), apps[pivot.Masstree], 7, 1)
//	tasks := []pivot.TaskSpec{{Kind: pivot.TaskLC, LC: apps[pivot.Masstree],
//		MeanInterarrival: 4000, Potential: pot, Seed: 1}}
//	for i := 0; i < 7; i++ {
//		tasks = append(tasks, pivot.TaskSpec{Kind: pivot.TaskBE,
//			BE: pivot.BEApps()[pivot.IBench], Seed: uint64(10 + i)})
//	}
//	m := pivot.MustNewMachine(pivot.KunpengConfig(8),
//		pivot.Options{Policy: pivot.PolicyPIVOT}, tasks)
//	m.Run(400_000, 500_000)
//	fmt.Println(m.LCp95(0), m.BWUtil())
//
// See examples/ for runnable programs and internal/exp for the harness that
// regenerates every figure and table of the paper.
package pivot

import (
	"pivot/internal/machine"
	"pivot/internal/manager"
	"pivot/internal/profile"
	"pivot/internal/rrbp"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// Core simulation types.
type (
	// Machine is a simulated server node running a set of tasks under a
	// bandwidth-partitioning policy.
	Machine = machine.Machine
	// Config describes the simulated hardware (Tables II/III).
	Config = machine.Config
	// Options selects the policy and its parameters.
	Options = machine.Options
	// TaskSpec pins one LC or BE task to one core.
	TaskSpec = machine.TaskSpec
	// Policy is the bandwidth-partitioning mechanism under test.
	Policy = machine.Policy
	// Cycle is simulated time in CPU clock cycles.
	Cycle = sim.Cycle
	// CriticalSet is the offline profiler's output: the set of static loads
	// whose potential-critical instruction bit is set.
	CriticalSet = profile.CriticalSet
	// LCParams describes a latency-critical application.
	LCParams = workload.LCParams
	// BEParams describes a best-effort application.
	BEParams = workload.BEParams
	// RRBPConfig configures PIVOT's Runtime ROB Block Predictor table.
	RRBPConfig = rrbp.Config
)

// Task kinds.
const (
	TaskLC = machine.TaskLC
	TaskBE = machine.TaskBE
)

// Policies, in the order the paper introduces them.
const (
	PolicyDefault     = machine.PolicyDefault
	PolicyMBA         = machine.PolicyMBA
	PolicyMPAM        = machine.PolicyMPAM
	PolicyFullPath    = machine.PolicyFullPath
	PolicyPIVOT       = machine.PolicyPIVOT
	PolicyCBP         = machine.PolicyCBP
	PolicyCBPFullPath = machine.PolicyCBPFullPath
	PolicyManaged     = machine.PolicyManaged
)

// Workload identifiers (Table I).
const (
	ImgDNN   = workload.ImgDNN
	Moses    = workload.Moses
	Xapian   = workload.Xapian
	Silo     = workload.Silo
	Masstree = workload.Masstree
	// Microservice is this repository's §VII-inspired small-footprint LC
	// app (not part of Table I).
	Microservice = workload.Microservice

	IBench     = workload.IBench
	DataAn     = workload.DataAn
	GraphAn    = workload.GraphAn
	InMemAn    = workload.InMemAn
	StressCopy = workload.StressCopy
)

// NewMachine assembles a machine; see machine.New.
func NewMachine(cfg Config, opt Options, tasks []TaskSpec) (*Machine, error) {
	return machine.New(cfg, opt, tasks)
}

// MustNewMachine is NewMachine panicking on error.
func MustNewMachine(cfg Config, opt Options, tasks []TaskSpec) *Machine {
	return machine.MustNew(cfg, opt, tasks)
}

// KunpengConfig returns the Huawei-Kunpeng-like machine of Table II.
func KunpengConfig(cores int) Config { return machine.KunpengConfig(cores) }

// NeoverseConfig returns the ARM-Neoverse-like machine of Table III.
func NeoverseConfig(cores int) Config { return machine.NeoverseConfig(cores) }

// LCApps returns the latency-critical application catalogue.
func LCApps() map[string]LCParams { return workload.LCApps() }

// BEApps returns the best-effort application catalogue.
func BEApps() map[string]BEParams { return workload.BEApps() }

// LCNames lists the LC apps in the paper's presentation order.
func LCNames() []string { return workload.LCNames() }

// ProfileLC runs PIVOT's offline profiling phase (§IV-B) and returns the
// potential-critical set for the application.
func ProfileLC(cfg Config, app LCParams, stressThreads int, seed uint64) CriticalSet {
	return machine.ProfileLC(cfg, app, stressThreads, seed)
}

// Resource managers (the paper's hardware-software co-design baselines, plus
// the §VII future-work hybrid controller implemented by this repository).
type (
	// PARTIES is the incremental QoS-feedback controller (ASPLOS'19).
	PARTIES = manager.PARTIES
	// CLITE is the sampling-based partitioning optimiser (HPCA'20).
	CLITE = manager.CLITE
	// Hybrid trades PIVOT's weak isolation against MBA-style strong
	// isolation from a mean-latency target (§VII future work).
	Hybrid = manager.Hybrid
	// Manager adjusts a machine's partitioning knobs between epochs.
	Manager = manager.Manager
)

// NewPARTIES builds a PARTIES controller for the per-LC QoS targets.
func NewPARTIES(targets []uint32) *PARTIES { return manager.NewPARTIES(targets) }

// NewCLITE builds a CLITE optimiser for the per-LC QoS targets.
func NewCLITE(targets []uint32) *CLITE { return manager.NewCLITE(targets) }

// NewHybrid builds the hybrid isolation controller for per-LC mean-latency
// targets (cycles).
func NewHybrid(avgTargets []float64) *Hybrid { return manager.NewHybrid(avgTargets) }

// RunManaged drives a machine under a resource manager.
func RunManaged(mgr Manager, m *Machine, warmup, measure, epoch Cycle) {
	manager.Run(mgr, m, warmup, measure, epoch)
}
