#!/usr/bin/env bash
# kill_resume_smoke.sh — end-to-end crash-recovery proof for pivot-exp.
#
# Runs an experiment sweep three ways:
#   1. uninterrupted, as the reference;
#   2. with journal + checkpoints, SIGKILLed mid-sweep;
#   3. resumed from the journal and checkpoints of (2).
# The resumed output must be byte-identical to the reference. The kill lands
# wherever it lands — during calibration, mid-simulation, or (on a very fast
# host) after completion; recovery must produce identical tables in every
# case, so the check is deterministic even though the kill point is not.
set -euo pipefail

cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/pivot-exp" ./cmd/pivot-exp
args=(-quick -cores 4 -quiet fig5 fig6)

echo "== reference (uninterrupted) =="
"$work/pivot-exp" "${args[@]}" > "$work/ref.txt"

echo "== interrupted run (SIGKILL mid-sweep) =="
"$work/pivot-exp" -journal "$work/journal.jsonl" -checkpoint-dir "$work/ckpt" \
    "${args[@]}" > "$work/killed.txt" 2> "$work/killed.err" &
pid=$!
sleep 3
kill -KILL "$pid" 2>/dev/null || echo "(sweep finished before the kill)"
wait "$pid" 2>/dev/null || true

echo "== resumed run =="
"$work/pivot-exp" -journal "$work/journal.jsonl" -resume -checkpoint-dir "$work/ckpt" \
    "${args[@]}" > "$work/resumed.txt"

if ! cmp -s "$work/ref.txt" "$work/resumed.txt"; then
    echo "FAIL: resumed output differs from the uninterrupted reference" >&2
    diff "$work/ref.txt" "$work/resumed.txt" >&2 || true
    exit 1
fi
echo "OK: resumed output is byte-identical to the uninterrupted reference"
