#!/usr/bin/env bash
# kill_resume_smoke.sh — end-to-end crash-recovery proof for pivot-exp.
#
# Runs an experiment sweep five ways:
#   1. uninterrupted serial, as the reference;
#   2. with journal + checkpoints, SIGKILLed mid-sweep;
#   3. resumed from the journal and checkpoints of (2);
#   4. uninterrupted under -parallel-sim (sharded windowed tick loop);
#   5. SIGKILLed under -parallel-sim, then resumed SERIALLY from the
#      parallel run's checkpoints — the checkpoint payload is engine-
#      agnostic, so a parallel run's state must replay on either engine.
# Every recovered or parallel output must be byte-identical to the
# reference. The kill lands wherever it lands — during calibration,
# mid-simulation, or (on a very fast host) after completion; recovery must
# produce identical tables in every case, so the check is deterministic even
# though the kill point is not.
set -euo pipefail

cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/pivot-exp" ./cmd/pivot-exp
args=(-quick -cores 4 -quiet fig5 fig6)

echo "== reference (uninterrupted) =="
"$work/pivot-exp" "${args[@]}" > "$work/ref.txt"

echo "== interrupted run (SIGKILL mid-sweep) =="
"$work/pivot-exp" -journal "$work/journal.jsonl" -checkpoint-dir "$work/ckpt" \
    "${args[@]}" > "$work/killed.txt" 2> "$work/killed.err" &
pid=$!
sleep 3
kill -KILL "$pid" 2>/dev/null || echo "(sweep finished before the kill)"
wait "$pid" 2>/dev/null || true

echo "== resumed run =="
"$work/pivot-exp" -journal "$work/journal.jsonl" -resume -checkpoint-dir "$work/ckpt" \
    "${args[@]}" > "$work/resumed.txt"

if ! cmp -s "$work/ref.txt" "$work/resumed.txt"; then
    echo "FAIL: resumed output differs from the uninterrupted reference" >&2
    diff "$work/ref.txt" "$work/resumed.txt" >&2 || true
    exit 1
fi
echo "OK: resumed output is byte-identical to the uninterrupted reference"

echo "== parallel-sim run (2 shard workers, uninterrupted) =="
"$work/pivot-exp" -parallel-sim 2 "${args[@]}" > "$work/par.txt"
if ! cmp -s "$work/ref.txt" "$work/par.txt"; then
    echo "FAIL: -parallel-sim output differs from the serial reference" >&2
    diff "$work/ref.txt" "$work/par.txt" >&2 || true
    exit 1
fi
echo "OK: -parallel-sim output is byte-identical to the serial reference"

echo "== interrupted parallel-sim run (SIGKILL mid-sweep) =="
"$work/pivot-exp" -parallel-sim 2 -journal "$work/journal2.jsonl" \
    -checkpoint-dir "$work/ckpt2" \
    "${args[@]}" > "$work/killed2.txt" 2> "$work/killed2.err" &
pid=$!
sleep 3
kill -KILL "$pid" 2>/dev/null || echo "(sweep finished before the kill)"
wait "$pid" 2>/dev/null || true

echo "== resumed serially from the parallel run's checkpoints =="
"$work/pivot-exp" -journal "$work/journal2.jsonl" -resume -checkpoint-dir "$work/ckpt2" \
    "${args[@]}" > "$work/resumed2.txt"

if ! cmp -s "$work/ref.txt" "$work/resumed2.txt"; then
    echo "FAIL: serial resume of the parallel run differs from the reference" >&2
    diff "$work/ref.txt" "$work/resumed2.txt" >&2 || true
    exit 1
fi
echo "OK: serial resume of the parallel-sim run is byte-identical to the reference"
