#!/usr/bin/env bash
# fuzz_smoke.sh — CI-sized scenario-fuzzing pass.
#
# Three stages, all bounded:
#   1. replay the checked-in seed corpus (internal/scenfuzz/testdata/corpus)
#      — recorded findings must stay green on the current tree, and the
#      defect-walkthrough entry must still reproduce when its defect is
#      re-armed;
#   2. a fresh bounded campaign (-duration caps wall clock) whose corpus
#      directory must come back empty;
#   3. a sanity check that the seeded skip-ahead defect is still *caught* —
#      a fuzzer that can no longer find a planted bug is broken, not clean.
#
#   scripts/fuzz_smoke.sh                 # default 60s campaign budget
#   scripts/fuzz_smoke.sh -duration 10s   # extra args forwarded to stage 2
set -euo pipefail

cd "$(dirname "$0")/.."

# FUZZ_WORK pins the scratch dir (CI uses this to upload findings from a
# failed run as artifacts); by default it is ephemeral.
if [ -n "${FUZZ_WORK:-}" ]; then
  work=$FUZZ_WORK
  mkdir -p "$work"
else
  work=$(mktemp -d)
  trap 'rm -rf "$work"' EXIT
fi

go build -o "$work/pivot-fuzz" ./cmd/pivot-fuzz

echo "== seed corpus replays clean =="
"$work/pivot-fuzz" -replay internal/scenfuzz/testdata/corpus

echo "== defect entry still reproduces when re-armed =="
if "$work/pivot-fuzz" -replay internal/scenfuzz/testdata/corpus \
    -defect skip-faults > "$work/replay-defect.txt" 2>&1; then
  echo "defect-armed replay passed; the walkthrough entry no longer reproduces" >&2
  cat "$work/replay-defect.txt" >&2
  exit 1
fi

echo "== bounded fresh campaign =="
"$work/pivot-fuzz" -seed "${FUZZ_SEED:-1}" -n 1000 -duration 60s \
    -corpus "$work/corpus" -journal "$work/journal.jsonl" "$@"

echo "== planted defect is still caught =="
if "$work/pivot-fuzz" -seed 1 -n 1 -oracles equiv -defect skip-faults \
    -corpus "$work/defect-corpus" > "$work/defect.txt" 2>&1; then
  echo "defect campaign found nothing; the oracle bank lost its teeth" >&2
  cat "$work/defect.txt" >&2
  exit 1
fi
ls "$work/defect-corpus"/equiv-* > /dev/null

echo "fuzz smoke OK"
