#!/usr/bin/env bash
# fleet_chaos_smoke.sh — CI chaos pass for the distributed sweep fabric.
#
# Three stages:
#   1. serial reference: run examples/scenarios/fleet.json in-process;
#   2. chaos run: the same sweep across 3 worker processes with a result
#      cache, SIGKILLing one worker mid-sweep — the coordinator must expire
#      its lease, migrate its newest checkpoint frame and re-lease the unit,
#      and the final table must be byte-identical to the serial one;
#   3. warm re-run: the same sweep again must serve >= 90% of units from the
#      content-addressed cache and render the same bytes.
#
#   scripts/fleet_chaos_smoke.sh          # default scratch dir
#   FLEET_WORK=out scripts/fleet_chaos_smoke.sh   # pin scratch dir (CI artifacts)
set -euo pipefail

cd "$(dirname "$0")/.."

if [ -n "${FLEET_WORK:-}" ]; then
  work=$FLEET_WORK
  mkdir -p "$work"
else
  work=$(mktemp -d)
  trap 'rm -rf "$work"' EXIT
fi

scenario=examples/scenarios/fleet.json
# Frequent checkpoints so the killed worker has shipped a frame to migrate.
ckpt_interval=25000

echo "== build"
go build -o "$work/pivot-exp" ./cmd/pivot-exp

echo "== stage 1: serial reference"
"$work/pivot-exp" -quick -quiet -scenario "$scenario" \
  -checkpoint-interval "$ckpt_interval" > "$work/serial.txt"

echo "== stage 2: 3 workers, SIGKILL one mid-sweep"
"$work/pivot-exp" -quick -scenario "$scenario" -workers 3 \
  -cache-dir "$work/cache" -checkpoint-interval "$ckpt_interval" \
  > "$work/chaos.txt" 2> "$work/chaos.err" &
sweep_pid=$!

# Wait for worker w1 to come up, let it get a unit underway, then kill -9.
victim=""
for _ in $(seq 1 100); do
  victim=$(pgrep -f "pivot-exp worker .*-name w1" | head -1 || true)
  [ -n "$victim" ] && break
  sleep 0.1
done
if [ -z "$victim" ]; then
  echo "FAIL: worker w1 never appeared" >&2
  kill "$sweep_pid" 2>/dev/null || true
  exit 1
fi
sleep 1
if kill -9 "$victim" 2>/dev/null; then
  echo "   killed worker w1 (pid $victim)"
else
  echo "FAIL: worker w1 (pid $victim) exited before the kill landed — sweep too fast for chaos" >&2
  kill "$sweep_pid" 2>/dev/null || true
  exit 1
fi

if ! wait "$sweep_pid"; then
  echo "FAIL: chaos sweep exited non-zero" >&2
  sed 's/^/   | /' "$work/chaos.err" >&2
  exit 1
fi
if ! grep -q "lease lost" "$work/chaos.err"; then
  echo "FAIL: coordinator never re-leased the killed worker's unit" >&2
  sed 's/^/   | /' "$work/chaos.err" >&2
  exit 1
fi
if ! cmp -s "$work/serial.txt" "$work/chaos.txt"; then
  echo "FAIL: chaos-run table differs from the serial reference" >&2
  diff "$work/serial.txt" "$work/chaos.txt" >&2 || true
  exit 1
fi
echo "   tables byte-identical after worker loss"

echo "== stage 3: warm-cache re-run"
"$work/pivot-exp" -quick -scenario "$scenario" -workers 3 \
  -cache-dir "$work/cache" -checkpoint-interval "$ckpt_interval" \
  > "$work/warm.txt" 2> "$work/warm.err"
if ! cmp -s "$work/serial.txt" "$work/warm.txt"; then
  echo "FAIL: warm-cache table differs from the serial reference" >&2
  diff "$work/serial.txt" "$work/warm.txt" >&2 || true
  exit 1
fi
cache_line=$(grep "result cache:" "$work/warm.err" | tail -1)
hits=$(echo "$cache_line" | sed -n 's/.*cache: \([0-9]*\) hit(s), \([0-9]*\) miss(es).*/\1/p')
misses=$(echo "$cache_line" | sed -n 's/.*cache: \([0-9]*\) hit(s), \([0-9]*\) miss(es).*/\2/p')
if [ -z "$hits" ] || [ -z "$misses" ]; then
  echo "FAIL: no cache summary on stderr" >&2
  exit 1
fi
total=$((hits + misses))
if [ "$total" -eq 0 ] || [ $((hits * 10)) -lt $((total * 9)) ]; then
  echo "FAIL: warm re-run hit $hits of $total unit(s); want >= 90%" >&2
  exit 1
fi
echo "   $cache_line"
echo "fleet chaos smoke: OK"
