#!/usr/bin/env bash
# bench.sh — record (or gate on) the simulator's headline perf number.
#
# Default mode runs BenchmarkSimulatorCyclesPerSecond and writes the result
# to BENCH_cycles_per_sec.json in the repo root, machine-readable:
#
#   {"commit": ..., "date": ..., "benchmark": ..., "ns_per_cycle": ...,
#    "cycles_per_sec": ...}
#
# so the perf trajectory is one JSON file per commit in git history.
#
#   scripts/bench.sh              # measure and (re)write the JSON
#   scripts/bench.sh -check       # measure and FAIL if cycles/sec regressed
#                                 # >20% vs the committed JSON baseline
#
# The benchmark steps the Fig-1 default mix (1 LC Silo + 3 BE iBench) in
# 10,000-cycle granules, so ns_per_cycle = ns/op / 10000.
set -euo pipefail

cd "$(dirname "$0")/.."

out=BENCH_cycles_per_sec.json
bench=BenchmarkSimulatorCyclesPerSecond
benchtime=${BENCHTIME:-2s}
mode=${1:-write}

line=$(go test -bench "^${bench}\$" -benchtime "$benchtime" -run '^$' . | tee /dev/stderr | grep "^${bench}")
ns_per_op=$(echo "$line" | awk '{for (i=1;i<=NF;i++) if ($(i)=="ns/op") print $(i-1)}')
if [ -z "$ns_per_op" ]; then
    echo "bench.sh: could not parse ns/op from: $line" >&2
    exit 1
fi

ns_per_cycle=$(awk -v n="$ns_per_op" 'BEGIN{printf "%.4f", n/10000}')
cycles_per_sec=$(awk -v n="$ns_per_op" 'BEGIN{printf "%.0f", 1e9/(n/10000)}')

if [ "$mode" = "-check" ]; then
    if [ ! -f "$out" ]; then
        echo "bench.sh: no committed $out baseline to check against" >&2
        exit 1
    fi
    base=$(grep -o '"cycles_per_sec"[^,}]*' "$out" | grep -o '[0-9.]*$')
    floor=$(awk -v b="$base" 'BEGIN{printf "%.0f", b*0.8}')
    echo "bench.sh: current ${cycles_per_sec} cycles/s, baseline ${base}, floor ${floor}"
    if awk -v c="$cycles_per_sec" -v f="$floor" 'BEGIN{exit !(c < f)}'; then
        echo "bench.sh: FAIL — cycles/sec regressed >20% vs committed baseline" >&2
        exit 1
    fi
    echo "bench.sh: OK"
    exit 0
fi

commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
cat >"$out" <<EOF
{"commit": "${commit}", "date": "${date}", "benchmark": "${bench}", "ns_per_cycle": ${ns_per_cycle}, "cycles_per_sec": ${cycles_per_sec}}
EOF
echo "bench.sh: wrote $out (${cycles_per_sec} sim-cycles/s)"
