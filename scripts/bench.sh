#!/usr/bin/env bash
# bench.sh — record (or gate on) the simulator's headline perf numbers.
#
# Default mode runs the serial headline benchmark and the sharded parallel
# benchmark (all worker counts, keeping the fastest variant) and appends one
# record per benchmark to the history array in BENCH_cycles_per_sec.json in
# the repo root:
#
#   [
#     {"commit": ..., "date": ..., "benchmark": ..., "ns_per_cycle": ...,
#      "cycles_per_sec": ...},
#     {"commit": ..., "date": ..., "benchmark": "...Parallel", "workers": N,
#      "ns_per_cycle": ..., "cycles_per_sec": ...},
#     ...
#   ]
#
# One record per commit per benchmark (re-measuring the same commit replaces
# its records), so the perf trajectory is readable from the working tree
# alone — no spelunking through git history for earlier numbers.
#
#   scripts/bench.sh              # measure and append to the history
#   scripts/bench.sh -check       # measure and FAIL if either benchmark's
#                                 # cycles/sec regressed >20% vs its latest
#                                 # committed record (a benchmark with no
#                                 # committed record passes trivially)
#
# A pre-history file holding a single bare JSON object is migrated to the
# array form on the next write.
#
# Both benchmarks step the Fig-1 default mix (1 LC Silo + 3 BE iBench) in
# 10,000-cycle granules, so ns_per_cycle = ns/op / 10000. The serial one
# hosts it on the 4-core Kunpeng config; the parallel one on the 8-core
# config under the sharded windowed tick loop.
set -euo pipefail

cd "$(dirname "$0")/.."

out=BENCH_cycles_per_sec.json
serial=BenchmarkSimulatorCyclesPerSecond
parallel=BenchmarkSimulatorCyclesPerSecondParallel
benchtime=${BENCHTIME:-2s}
mode=${1:-write}

bench_out=$(go test -bench "^(${serial}|${parallel})\$" -benchtime "$benchtime" -run '^$' . | tee /dev/stderr)

# pick_ns NAME_REGEX -> fastest "ns/op" among matching result lines (the
# parallel benchmark emits one line per workers= variant; keep the best).
pick_ns() {
    echo "$bench_out" | grep -E "^$1" |
        awk '{for (i=1;i<=NF;i++) if ($(i)=="ns/op" && ($(i-1)+0 < best || best=="")) best=$(i-1)} END{print best}'
}

serial_ns=$(pick_ns "${serial}[^P]")
par_ns=$(pick_ns "${parallel}/")
par_workers=$(echo "$bench_out" | grep -E "^${parallel}/" |
    awk -v best="$par_ns" '$0 ~ /ns\/op/ {for (i=1;i<=NF;i++) if ($(i)=="ns/op" && $(i-1)==best) {split($1,a,"="); print a[2]}}' | head -n 1)
if [ -z "$serial_ns" ] || [ -z "$par_ns" ]; then
    echo "bench.sh: could not parse ns/op (serial='${serial_ns}' parallel='${par_ns}')" >&2
    exit 1
fi

to_cps() { awk -v n="$1" 'BEGIN{printf "%.0f", 1e9/(n/10000)}'; }
to_npc() { awk -v n="$1" 'BEGIN{printf "%.4f", n/10000}'; }

serial_cps=$(to_cps "$serial_ns")
par_cps=$(to_cps "$par_ns")

if [ "$mode" = "-check" ]; then
    if [ ! -f "$out" ]; then
        echo "bench.sh: no committed $out baseline to check against" >&2
        exit 1
    fi
    fail=0
    for pair in "${serial}:${serial_cps}" "${parallel}:${par_cps}"; do
        name=${pair%%:*}
        cur=${pair##*:}
        # Latest record for this benchmark = last matching line (records are
        # appended in measurement order; the pre-history single object names
        # the serial benchmark).
        base=$(grep -o '{[^}]*}' "$out" | grep "\"benchmark\": \"${name}\"" |
            tail -n 1 | grep -o '"cycles_per_sec"[^,}]*' | grep -o '[0-9.]*$' || true)
        if [ -z "$base" ]; then
            echo "bench.sh: ${name}: no committed record yet (${cur} cycles/s) — skipping gate"
            continue
        fi
        floor=$(awk -v b="$base" 'BEGIN{printf "%.0f", b*0.8}')
        echo "bench.sh: ${name}: current ${cur} cycles/s, latest baseline ${base}, floor ${floor}"
        if awk -v c="$cur" -v f="$floor" 'BEGIN{exit !(c < f)}'; then
            echo "bench.sh: FAIL — ${name} regressed >20% vs committed baseline" >&2
            fail=1
        fi
    done
    [ "$fail" = 0 ] || exit 1
    echo "bench.sh: OK"
    exit 0
fi

commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
# Host parallelism context: without it a history mixing an 8-core laptop and
# a 96-core CI runner reads as a perf cliff. GOMAXPROCS is what the Go
# runtime actually used (it may be capped below the core count by the
# environment); host_cores is the hardware ceiling.
host_cores=$( (nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0) | head -n 1)
gomaxprocs=$(go env GOMAXPROCS 2>/dev/null)
if [ -z "$gomaxprocs" ] || [ "$gomaxprocs" = "0" ]; then
    gomaxprocs=${GOMAXPROCS:-$host_cores}
fi
host_stamp="\"host_cores\": ${host_cores}, \"gomaxprocs\": ${gomaxprocs}"
serial_rec="{\"commit\": \"${commit}\", \"date\": \"${date}\", \"benchmark\": \"${serial}\", ${host_stamp}, \"ns_per_cycle\": $(to_npc "$serial_ns"), \"cycles_per_sec\": ${serial_cps}}"
par_rec="{\"commit\": \"${commit}\", \"date\": \"${date}\", \"benchmark\": \"${parallel}\", \"workers\": ${par_workers:-1}, ${host_stamp}, \"ns_per_cycle\": $(to_npc "$par_ns"), \"cycles_per_sec\": ${par_cps}}"

# Existing records, one per line (records are flat objects, so this parses
# both the array form and the pre-history single object), minus any previous
# measurement of this same commit.
records=""
if [ -f "$out" ]; then
    records=$(grep -o '{[^}]*}' "$out" | grep -v "\"commit\": \"${commit}\"" || true)
fi
records=$(printf '%s\n%s\n%s\n' "$records" "$serial_rec" "$par_rec" | sed '/^[[:space:]]*$/d')

{
    echo '['
    printf '%s\n' "$records" | sed '$!s/$/,/' | sed 's/^/  /'
    echo ']'
} >"$out"
n=$(printf '%s\n' "$records" | wc -l | tr -d ' ')
echo "bench.sh: appended to $out (serial ${serial_cps}, parallel ${par_cps} sim-cycles/s @ workers=${par_workers:-1}, ${n} record(s))"
