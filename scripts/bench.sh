#!/usr/bin/env bash
# bench.sh — record (or gate on) the simulator's headline perf number.
#
# Default mode runs BenchmarkSimulatorCyclesPerSecond and appends the result
# to the history array in BENCH_cycles_per_sec.json in the repo root:
#
#   [
#     {"commit": ..., "date": ..., "benchmark": ..., "ns_per_cycle": ...,
#      "cycles_per_sec": ...},
#     ...
#   ]
#
# One record per commit (re-measuring the same commit replaces its record),
# so the perf trajectory is readable from the working tree alone — no
# spelunking through git history for earlier numbers.
#
#   scripts/bench.sh              # measure and append to the history
#   scripts/bench.sh -check       # measure and FAIL if cycles/sec regressed
#                                 # >20% vs the latest committed record
#
# A pre-history file holding a single bare JSON object is migrated to the
# array form on the next write.
#
# The benchmark steps the Fig-1 default mix (1 LC Silo + 3 BE iBench) in
# 10,000-cycle granules, so ns_per_cycle = ns/op / 10000.
set -euo pipefail

cd "$(dirname "$0")/.."

out=BENCH_cycles_per_sec.json
bench=BenchmarkSimulatorCyclesPerSecond
benchtime=${BENCHTIME:-2s}
mode=${1:-write}

line=$(go test -bench "^${bench}\$" -benchtime "$benchtime" -run '^$' . | tee /dev/stderr | grep "^${bench}")
ns_per_op=$(echo "$line" | awk '{for (i=1;i<=NF;i++) if ($(i)=="ns/op") print $(i-1)}')
if [ -z "$ns_per_op" ]; then
    echo "bench.sh: could not parse ns/op from: $line" >&2
    exit 1
fi

ns_per_cycle=$(awk -v n="$ns_per_op" 'BEGIN{printf "%.4f", n/10000}')
cycles_per_sec=$(awk -v n="$ns_per_op" 'BEGIN{printf "%.0f", 1e9/(n/10000)}')

if [ "$mode" = "-check" ]; then
    if [ ! -f "$out" ]; then
        echo "bench.sh: no committed $out baseline to check against" >&2
        exit 1
    fi
    # Latest record = last cycles_per_sec in the file (records are appended
    # in measurement order; also works on the pre-history single object).
    base=$(grep -o '"cycles_per_sec"[^,}]*' "$out" | tail -n 1 | grep -o '[0-9.]*$')
    floor=$(awk -v b="$base" 'BEGIN{printf "%.0f", b*0.8}')
    echo "bench.sh: current ${cycles_per_sec} cycles/s, latest baseline ${base}, floor ${floor}"
    if awk -v c="$cycles_per_sec" -v f="$floor" 'BEGIN{exit !(c < f)}'; then
        echo "bench.sh: FAIL — cycles/sec regressed >20% vs committed baseline" >&2
        exit 1
    fi
    echo "bench.sh: OK"
    exit 0
fi

commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
record="{\"commit\": \"${commit}\", \"date\": \"${date}\", \"benchmark\": \"${bench}\", \"ns_per_cycle\": ${ns_per_cycle}, \"cycles_per_sec\": ${cycles_per_sec}}"

# Existing records, one per line (records are flat objects, so this parses
# both the array form and the pre-history single object), minus any previous
# measurement of this same commit.
records=""
if [ -f "$out" ]; then
    records=$(grep -o '{[^}]*}' "$out" | grep -v "\"commit\": \"${commit}\"" || true)
fi
records=$(printf '%s\n%s\n' "$records" "$record" | sed '/^[[:space:]]*$/d')

{
    echo '['
    printf '%s\n' "$records" | sed '$!s/$/,/' | sed 's/^/  /'
    echo ']'
} >"$out"
n=$(printf '%s\n' "$records" | wc -l | tr -d ' ')
echo "bench.sh: appended to $out (${cycles_per_sec} sim-cycles/s, ${n} record(s))"
