// Command pivot-exp regenerates the paper's figures and tables.
//
// Usage:
//
//	pivot-exp [-quick] [-cores n] list
//	pivot-exp [-quick] [-cores n] <experiment-id>...
//	pivot-exp [-quick] [-cores n] all
//
// Each experiment prints a text table whose rows/series mirror the paper's
// figure; EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"pivot/internal/exp"
	"pivot/internal/machine"
)

func main() {
	quick := flag.Bool("quick", false, "use the fast (coarser) simulation scale")
	cores := flag.Int("cores", 8, "simulated core count")
	quiet := flag.Bool("quiet", false, "suppress calibration progress notes")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of text tables")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	scale := exp.Full()
	if *quick {
		scale = exp.Quick()
	}
	ctx := exp.NewContext(machine.KunpengConfig(*cores), scale)
	if !*quiet {
		ctx.Out = os.Stderr
	}

	reg := exp.Registry()
	if args[0] == "list" {
		for _, id := range exp.IDs() {
			fmt.Printf("%-10s %s\n", id, reg[id].Brief)
		}
		return
	}

	ids := args
	if args[0] == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		e, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "pivot-exp: unknown experiment %q (try 'list')\n", id)
			os.Exit(2)
		}
		for _, t := range e.Run(ctx) {
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pivot-exp [-quick] [-cores n] [-quiet] <list | all | experiment-id...>

Regenerates the paper's figures/tables as text tables. Experiment ids:
fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig12 fig13 fig13emu fig14 fig15 fig16
fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24 fig25 sens table1 table2
table3 storage`)
}
