// Command pivot-exp regenerates the paper's figures and tables.
//
// Usage:
//
//	pivot-exp [-quick] [-cores n] list
//	pivot-exp [-quick] [-cores n] scenarios
//	pivot-exp [-quick] [-cores n] <experiment-id>...
//	pivot-exp [-quick] [-cores n] all
//	pivot-exp [-quick] [-cores n] -scenario file.json
//	pivot-exp -scenario file.json -workers n [-cache-dir d] [-csv-out f]
//	pivot-exp worker -connect addr
//
// Each experiment prints a text table whose rows/series mirror the paper's
// figure; EXPERIMENTS.md records the paper-vs-measured comparison.
// "scenarios" lists the declarative builtin scenarios behind the figures
// (internal/scenario), and -scenario expands a user scenario file into run
// units and executes them through the same parallel harness, printing one
// summary row per unit.
//
// Robustness: experiments run through the resilient harness
// (internal/harness). -parallel runs several experiments concurrently
// (results stay identical to serial execution), -timeout bounds each
// experiment's wall clock, -watchdog aborts any simulation making no forward
// progress, -audit enables the machine's per-epoch invariant auditor, and
// -journal/-resume let an interrupted sweep pick up where it stopped. A
// failing experiment no longer kills the sweep: the rest complete, a failure
// summary (with machine diagnostic dumps) goes to stderr, and the exit
// status is 1.
//
// Observability: -stats-out/-timeline-out instrument every co-location run
// with the gem5-style stats registry (sampled every -stats-epoch cycles)
// and export the most recent run's flat dump and Perfetto-loadable
// timeline, so a slow or QoS-violating figure can be diagnosed from its
// artifacts alone. -flight-out arms the per-request flight recorder on
// every run and exports the last run's tail-attribution report (per-PC and
// per-component latency breakdown plus the -flight-top slowest requests'
// span chains; .json/.csv/text by suffix). -debug-addr serves
// net/http/pprof, runtime metrics, and /progress — live cycles/sec, ETA
// and per-unit sweep progress. Diagnostics go through log/slog;
// -log-format=json emits machine-readable lines, and -version prints the
// build fingerprint stamped into reports and journal entries.
//
// Distributed sweeps: -workers n spawns n local worker processes and leases
// the scenario's units to them over a private unix socket (internal/fabric);
// -listen accepts external workers (started with `pivot-exp worker -connect`)
// on a unix socket or TCP address instead. Leases expire on missed
// heartbeats, lost units re-lease with bounded retries, and the dead
// worker's newest checkpoint frame migrates to the replacement so half-done
// runs resume mid-simulation. -cache-dir keys every unit's result on
// (build fingerprint, unit scenario, scale, cores, dense) in a
// content-addressed cache, so re-running an edited sweep recomputes only the
// changed units; a cache hit/miss summary goes to stderr. Distributed and
// cached tables are byte-identical to in-process serial runs. -csv-out also
// writes the unit table as CSV.
//
// Crash safety: -checkpoint-dir makes each co-location run periodically
// write its full machine state (every -checkpoint-interval cycles) so a
// killed sweep resumes mid-run, not just mid-sweep; combined with
// -journal/-resume no completed or partial work is lost. The first SIGINT or
// SIGTERM shuts down gracefully — in-flight runs flush a final checkpoint
// and the process exits 130; a second signal force-quits immediately.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"pivot/internal/buildinfo"
	"pivot/internal/cliutil"
	"pivot/internal/exp"
	"pivot/internal/fabric"
	"pivot/internal/harness"
	"pivot/internal/machine"
	"pivot/internal/metrics"
	"pivot/internal/scenario"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

func main() {
	// The worker subcommand has its own flag set; dispatch before flag.Parse.
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(workerMain(os.Args[2:]))
	}

	quick := flag.Bool("quick", false, "use the fast (coarser) simulation scale")
	cores := flag.Int("cores", 8, "simulated core count")
	quiet := flag.Bool("quiet", false, "suppress calibration progress notes")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of text tables")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (same results as serial)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline per experiment (0 = none)")
	journalPath := flag.String("journal", "", "JSONL journal of completed experiments (enables -resume)")
	resume := flag.Bool("resume", false, "replay completed experiments from -journal instead of recomputing")
	audit := flag.Bool("audit", false, "audit simulator invariants (request conservation, queue bounds, bandwidth credit) every epoch")
	watchdog := flag.Uint64("watchdog", uint64(machine.DefaultWatchdogWindow), "abort a run if no instruction commits for this many cycles (0 = off)")
	statsOut := flag.String("stats-out", "", "write the last run's stats dump here (JSON; CSV with a .csv suffix)")
	statsEpoch := flag.Uint64("stats-epoch", uint64(machine.DefaultStatsEpoch), "stats sampling period in cycles")
	timelineOut := flag.String("timeline-out", "", "write the last run's Chrome trace-event timeline here (open in Perfetto)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/metrics on this address (e.g. localhost:6060)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint in-flight runs here; a rerun resumes them mid-simulation")
	ckptInterval := flag.Uint64("checkpoint-interval", uint64(machine.DefaultCheckpointInterval), "cycles between checkpoints")
	dense := flag.Bool("dense", false, "force the naive per-cycle tick loop instead of quiescence-aware skip-ahead (bit-identical results, slower)")
	parallelSim := flag.Int("parallel-sim", 0, "drive each machine with N shard worker goroutines on the windowed tick loop (0 = serial; bit-identical results)")
	scenarioPath := flag.String("scenario", "", "run a user scenario file (JSON) through the harness instead of experiment ids")
	workers := flag.Int("workers", 0, "with -scenario: spawn this many local worker processes and distribute units to them")
	listenAddr := flag.String("listen", "", "with -scenario: coordinator address for workers (unix socket path or host:port; default a private socket when -workers > 0)")
	cacheDir := flag.String("cache-dir", "", "with -scenario: content-addressed result cache; unchanged units replay instead of recomputing")
	csvOut := flag.String("csv-out", "", "with -scenario: also write the unit summary table as CSV here")
	flightOut := flag.String("flight-out", "", "record per-request span chains on every run and write the last run's tail-attribution report here (.json/.csv/text by suffix)")
	flightTop := flag.Int("flight-top", 32, "with -flight-out: keep full span chains for the N slowest requests")
	flightSample := flag.Int("flight-sample", 0, "with -flight-out: lifecycle reservoir size (0 = default)")
	logFormat := flag.String("log-format", "text", "sweep diagnostics format on stderr: text|json")
	version := flag.Bool("version", false, "print the build fingerprint and exit")
	flag.Parse()

	if *version {
		fmt.Println(cliutil.Version("pivot-exp"))
		return
	}
	logger, err := cliutil.Logger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 && *scenarioPath == "" {
		usage()
		os.Exit(2)
	}
	if (*workers > 0 || *listenAddr != "" || *cacheDir != "" || *csvOut != "") && *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "pivot-exp: -workers/-listen/-cache-dir/-csv-out apply to -scenario sweeps")
		os.Exit(2)
	}

	// Live sweep telemetry: /progress on the debug server reports cycles/sec,
	// ETA and per-unit sweep progress while experiments run.
	var liveProgress *stats.Progress
	if *debugAddr != "" {
		liveProgress = stats.NewProgress()
		addr, err := stats.ServeDebugWith(*debugAddr, liveProgress)
		if err != nil {
			logger.Error("debug server failed", "err", err)
			os.Exit(1)
		}
		logger.Info("debug server up", "pprof", "http://"+addr+"/debug/pprof/", "progress", "http://"+addr+"/progress")
	}

	scale := exp.Full()
	if *quick {
		scale = exp.Quick()
	}
	ctx := exp.NewContext(machine.KunpengConfig(*cores), scale)
	if !*quiet {
		ctx.Out = os.Stderr
	}
	if *statsOut != "" || *timelineOut != "" {
		ctx.StatsEpoch = sim.Cycle(*statsEpoch)
	}
	ctx.Watchdog = sim.Cycle(*watchdog)
	ctx.Audit = *audit
	ctx.Dense = *dense
	ctx.Parallel = *parallelSim
	ctx.CheckpointDir = *ckptDir
	ctx.CheckpointInterval = sim.Cycle(*ckptInterval)
	ctx.Progress = liveProgress
	if *flightOut != "" {
		ctx.FlightTop = *flightTop
		ctx.FlightSample = *flightSample
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the sweep — every
	// in-flight simulation aborts at its next check, flushing a final
	// checkpoint when -checkpoint-dir is set — then artifacts are written and
	// the process exits 130. A second signal hard-exits immediately.
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "\npivot-exp: %v: stopping (flushing checkpoints); signal again to force quit\n", s)
		cancelRun()
		<-sigCh
		os.Exit(130)
	}()

	reg := exp.Registry()
	if *scenarioPath == "" && args[0] == "list" {
		for _, id := range exp.IDs() {
			fmt.Printf("%-10s %s\n", id, reg[id].Brief)
		}
		return
	}
	if *scenarioPath == "" && args[0] == "scenarios" {
		screg := scenario.Builtins()
		for _, id := range scenario.BuiltinIDs() {
			fmt.Printf("%-10s %s\n", id, screg[id].Brief)
		}
		return
	}

	// Distributed sweeps: -workers/-listen stand up a coordinator that leases
	// scenario units to worker processes (with lease expiry, bounded retries
	// and mid-run checkpoint migration); -cache-dir replays unchanged units
	// from a content-addressed result cache. With neither, the sweep runs
	// in-process exactly as before.
	var cache *fabric.Cache
	if *cacheDir != "" {
		cache, err = fabric.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(1)
		}
	}
	var co *fabric.Coordinator
	var sockDir string
	var workerCmds []*exec.Cmd
	if *workers > 0 || *listenAddr != "" {
		addr := *listenAddr
		if addr == "" {
			sockDir, err = os.MkdirTemp("", "pivot-fabric-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
				os.Exit(1)
			}
			addr = filepath.Join(sockDir, "coordinator.sock")
		}
		co, err = fabric.NewCoordinator(fabric.Config{
			Addr: addr, Build: buildinfo.Fingerprint(), Logger: logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(1)
		}
		logger.Info("fabric coordinator up", "addr", co.Addr(), "workers", *workers)
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(1)
		}
		for i := 1; i <= *workers; i++ {
			cmd := exec.Command(exe, "worker",
				"-connect", co.Addr(), "-name", fmt.Sprintf("w%d", i), "-log-format", *logFormat)
			if !*quiet {
				cmd.Stderr = os.Stderr
			}
			if err := cmd.Start(); err != nil {
				fmt.Fprintf(os.Stderr, "pivot-exp: spawning worker: %v\n", err)
				os.Exit(1)
			}
			workerCmds = append(workerCmds, cmd)
		}
	}
	shutdownFabric := func() {
		if co != nil {
			co.Close() // workers receive done and exit
			for _, cmd := range workerCmds {
				_ = cmd.Wait()
			}
		}
		if sockDir != "" {
			os.RemoveAll(sockDir)
		}
	}

	hcfg := harness.Config{
		Parallel:    *parallel,
		Timeout:     *timeout,
		JournalPath: *journalPath,
		Resume:      *resume,
		Progress:    liveProgress,
	}
	if !*quiet {
		hcfg.Logger = logger
	}
	if co != nil {
		hcfg.Executor = co.Executor(cache)
		// Keep every worker busy: one unit in flight per worker at minimum.
		if hcfg.Parallel < *workers {
			hcfg.Parallel = *workers
		}
	}
	runner, err := harness.New(hcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
		os.Exit(1)
	}

	var jobs []harness.Job
	var sc *scenario.Scenario
	var unitLabels []string
	if *scenarioPath != "" {
		sc, err = scenario.Load(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(2)
		}
		jobs, unitLabels, err = harness.ScenarioJobs(ctx, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(2)
		}
		if co == nil && cache != nil {
			// No fabric: the cache still short-circuits unchanged units for the
			// in-process path.
			jobs = fabric.CachedJobs(cache, buildinfo.Fingerprint(), jobs)
		}
	} else {
		ids := args
		if args[0] == "all" {
			ids = exp.IDs()
		}
		render := func(t *metrics.Table) string { return t.String() + "\n" }
		if *csv {
			render = func(t *metrics.Table) string { return fmt.Sprintf("# %s\n%s\n", t.Title, t.CSV()) }
		}
		jobs, err = harness.ExperimentJobs(ctx, ids, render)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v (try 'list')\n", err)
			os.Exit(2)
		}
	}
	results := runner.RunContext(runCtx, jobs)
	shutdownFabric()
	if cache != nil {
		fmt.Fprintf(os.Stderr, "pivot-exp: result cache: %d hit(s), %d miss(es)\n",
			cache.Hits(), cache.Misses())
	}

	// Emit completed work in sweep order; collect failures.
	var failed []harness.Result
	if sc != nil {
		unitResults := make([]exp.RunResult, 0, len(results))
		labels := make([]string, 0, len(results))
		for i, res := range results {
			if res.Err != nil {
				failed = append(failed, res)
				continue
			}
			r, err := harness.ValueAs[exp.RunResult](res)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pivot-exp: decoding journaled %s: %v\n", res.ID, err)
				os.Exit(1)
			}
			unitResults = append(unitResults, r)
			labels = append(labels, unitLabels[i])
		}
		tbl := exp.ScenarioTable(sc, labels, unitResults)
		fmt.Print(tbl.String() + "\n")
		if *csvOut != "" {
			if err := harness.WriteFileAtomic(*csvOut, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pivot-exp: writing -csv-out: %v\n", err)
				os.Exit(1)
			}
		}
	} else {
		for _, res := range results {
			if res.Err != nil {
				failed = append(failed, res)
				continue
			}
			text, err := harness.ValueAs[string](res)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pivot-exp: decoding journaled %s: %v\n", res.ID, err)
				os.Exit(1)
			}
			fmt.Print(text)
		}
	}

	if *statsOut != "" {
		if err := writeStats(ctx, *statsOut); err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(1)
		}
	}
	if *timelineOut != "" {
		if err := writeTimeline(ctx, *timelineOut); err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(1)
		}
	}
	if *flightOut != "" {
		if err := cliutil.WriteFlight(ctx.LastFlight(), *flightOut); err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(1)
		}
	}

	if runCtx.Err() != nil {
		fmt.Fprintf(os.Stderr, "\npivot-exp: interrupted; %d of %d experiment(s) incomplete", len(failed), len(results))
		if *journalPath != "" {
			fmt.Fprintf(os.Stderr, " (rerun with -resume to continue)")
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(130)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "\npivot-exp: %d of %d experiment(s) failed:\n", len(failed), len(results))
		for _, res := range failed {
			fmt.Fprintf(os.Stderr, "  %-10s %v\n", res.ID, errors.Unwrap(res.Err))
			var re *harness.RunError
			if errors.As(res.Err, &re) {
				if d, ok := re.Diag(); ok {
					fmt.Fprintf(os.Stderr, "%s\n", indent(d.String(), "    "))
				}
			}
		}
		os.Exit(1)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, ln := range lines {
		lines[i] = prefix + ln
	}
	return strings.Join(lines, "\n")
}

func writeStats(ctx *exp.Context, path string) error {
	d := ctx.LastStats()
	if d == nil {
		return fmt.Errorf("no instrumented run produced a stats dump (experiment ran no co-location simulation)")
	}
	var buf bytes.Buffer
	var err error
	if strings.HasSuffix(path, ".csv") {
		err = d.WriteCSV(&buf)
	} else {
		err = d.WriteJSON(&buf)
	}
	if err != nil {
		return err
	}
	return harness.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

func writeTimeline(ctx *exp.Context, path string) error {
	tl := ctx.LastTimeline()
	if tl == nil {
		return fmt.Errorf("no instrumented run produced a timeline (experiment ran no co-location simulation)")
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		return err
	}
	return harness.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pivot-exp [-quick] [-cores n] [-quiet] [-parallel n] [-timeout d]
                 [-journal f [-resume]] [-audit] [-watchdog n]
                 [-checkpoint-dir d] [-checkpoint-interval n]
                 [-stats-out f] [-timeline-out f]
                 [-flight-out f [-flight-top n] [-flight-sample n]]
                 [-workers n] [-listen addr] [-cache-dir d] [-csv-out f]
                 [-debug-addr a] [-log-format text|json] [-version]
                 <list | scenarios | all | experiment-id...> | -scenario file.json
       pivot-exp worker -connect addr [-workdir d] [-name s]

Regenerates the paper's figures/tables as text tables. Experiment ids:
fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig12 fig13 fig13emu fig14 fig15 fig16
fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24 fig25 sens table1 table2
table3 storage

"scenarios" lists the declarative builtin scenarios; -scenario runs a user
scenario file through the parallel harness. -workers/-listen distribute a
scenario sweep across worker processes with lease recovery and checkpoint
migration; -cache-dir replays unchanged units from a content-addressed
result cache.`)
}
