// Command pivot-exp regenerates the paper's figures and tables.
//
// Usage:
//
//	pivot-exp [-quick] [-cores n] list
//	pivot-exp [-quick] [-cores n] <experiment-id>...
//	pivot-exp [-quick] [-cores n] all
//
// Each experiment prints a text table whose rows/series mirror the paper's
// figure; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Observability: -stats-out/-timeline-out instrument every co-location run
// with the gem5-style stats registry (sampled every -stats-epoch cycles)
// and export the most recent run's flat dump and Perfetto-loadable
// timeline, so a slow or QoS-violating figure can be diagnosed from its
// artifacts alone. -debug-addr serves net/http/pprof and runtime metrics
// for profiling the simulator itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pivot/internal/exp"
	"pivot/internal/machine"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "use the fast (coarser) simulation scale")
	cores := flag.Int("cores", 8, "simulated core count")
	quiet := flag.Bool("quiet", false, "suppress calibration progress notes")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of text tables")
	statsOut := flag.String("stats-out", "", "write the last run's stats dump here (JSON; CSV with a .csv suffix)")
	statsEpoch := flag.Uint64("stats-epoch", uint64(machine.DefaultStatsEpoch), "stats sampling period in cycles")
	timelineOut := flag.String("timeline-out", "", "write the last run's Chrome trace-event timeline here (open in Perfetto)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if *debugAddr != "" {
		addr, err := stats.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: debug server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pivot-exp: debug server on http://%s/debug/pprof/\n", addr)
	}

	scale := exp.Full()
	if *quick {
		scale = exp.Quick()
	}
	ctx := exp.NewContext(machine.KunpengConfig(*cores), scale)
	if !*quiet {
		ctx.Out = os.Stderr
	}
	if *statsOut != "" || *timelineOut != "" {
		ctx.StatsEpoch = sim.Cycle(*statsEpoch)
	}

	reg := exp.Registry()
	if args[0] == "list" {
		for _, id := range exp.IDs() {
			fmt.Printf("%-10s %s\n", id, reg[id].Brief)
		}
		return
	}

	ids := args
	if args[0] == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		e, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "pivot-exp: unknown experiment %q (try 'list')\n", id)
			os.Exit(2)
		}
		for _, t := range e.Run(ctx) {
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}

	if *statsOut != "" {
		if err := writeStats(ctx, *statsOut); err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(1)
		}
	}
	if *timelineOut != "" {
		if err := writeTimeline(ctx, *timelineOut); err != nil {
			fmt.Fprintf(os.Stderr, "pivot-exp: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeStats(ctx *exp.Context, path string) error {
	if ctx.Stats == nil {
		return fmt.Errorf("no instrumented run produced a stats dump (experiment ran no co-location simulation)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return ctx.Stats.WriteCSV(f)
	}
	return ctx.Stats.WriteJSON(f)
}

func writeTimeline(ctx *exp.Context, path string) error {
	if ctx.Timeline == nil {
		return fmt.Errorf("no instrumented run produced a timeline (experiment ran no co-location simulation)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ctx.Timeline.WriteJSON(f)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pivot-exp [-quick] [-cores n] [-quiet] [-stats-out f] [-timeline-out f] <list | all | experiment-id...>

Regenerates the paper's figures/tables as text tables. Experiment ids:
fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig12 fig13 fig13emu fig14 fig15 fig16
fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24 fig25 sens table1 table2
table3 storage`)
}
