// The `pivot-exp worker` subcommand: one sweep-fabric worker process. The
// coordinator (a pivot-exp run with -workers or -listen) spawns these
// locally, or an operator starts them by hand — possibly on other machines —
// pointed at a TCP -connect address. A worker executes leased scenario units,
// heartbeats its progress, ships checkpoint frames mid-run so a replacement
// can resume its work, and exits when the coordinator says done.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pivot/internal/buildinfo"
	"pivot/internal/cliutil"
	"pivot/internal/fabric"
)

func workerMain(args []string) int {
	fs := flag.NewFlagSet("pivot-exp worker", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator address (unix socket path or host:port)")
	workdir := fs.String("workdir", "", "scratch directory for checkpoint state (default: a temp dir, removed on exit)")
	name := fs.String("name", "", "worker name in coordinator logs (default: worker-<pid>)")
	logFormat := fs.String("log-format", "text", "diagnostics format on stderr: text|json")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pivot-exp worker -connect addr [-workdir d] [-name s] [-log-format text|json]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args) // ExitOnError
	if *connect == "" {
		fs.Usage()
		return 2
	}
	logger, err := cliutil.Logger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pivot-exp worker: %v\n", err)
		return 2
	}

	// A signal cancels the context; RunWorker closes its connection, the
	// in-flight unit aborts (flushing a final checkpoint into the workdir,
	// whose newest frame has already been shipped at the last heartbeat), and
	// the coordinator re-leases the unit elsewhere.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	err = fabric.RunWorker(ctx, fabric.WorkerConfig{
		Addr:   *connect,
		Dir:    *workdir,
		Name:   *name,
		Build:  buildinfo.Fingerprint(),
		Logger: logger,
	})
	if ctx.Err() != nil {
		return 130
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pivot-exp worker: %v\n", err)
		return 1
	}
	return 0
}
