// Command pivot-trace records workload instruction traces and replays them
// through the simulator — the trace-driven mode of classic architecture
// simulators. A recorded trace makes cross-policy comparisons exactly
// workload-identical.
//
//	pivot-trace record -be ibench -n 200000 -o ibench.trc
//	pivot-trace replay -i ibench.trc -policy default
package main

import (
	"flag"
	"fmt"
	"os"

	"pivot"
	"pivot/internal/machine"
	"pivot/internal/sim"
	"pivot/internal/trace"
	"pivot/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pivot-trace record -be <app> [-n ops] [-seed s] -o <file>
  pivot-trace replay -i <file> [-policy p] [-threads n] [-cycles c]`)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	beName := fs.String("be", pivot.IBench, "BE application to record")
	n := fs.Uint64("n", 200_000, "ops to record")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "", "output trace file")
	_ = fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "pivot-trace: -o required")
		os.Exit(2)
	}
	app, ok := pivot.BEApps()[*beName]
	if !ok {
		fmt.Fprintf(os.Stderr, "pivot-trace: unknown BE app %q\n", *beName)
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-trace:", err)
		os.Exit(1)
	}
	src := workload.NewBEStream(app, 0, sim.NewRNG(*seed))
	got, err := trace.RecordStream(src, w, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d ops of %s to %s\n", got, *beName, *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	policyName := fs.String("policy", "default", "partitioning policy")
	cycles := fs.Uint64("cycles", 500_000, "cycles to simulate")
	cores := fs.Int("cores", 1, "core count")
	_ = fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "pivot-trace: -i required")
		os.Exit(2)
	}
	pol := map[string]pivot.Policy{
		"default": pivot.PolicyDefault, "mpam": pivot.PolicyMPAM,
		"fullpath": pivot.PolicyFullPath, "pivot": pivot.PolicyPIVOT,
	}[*policyName]

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-trace:", err)
		os.Exit(1)
	}

	m := machine.MustNew(machine.KunpengConfig(*cores), machine.Options{Policy: pol},
		[]machine.TaskSpec{{Kind: machine.TaskBE, CustomStream: r, Seed: 1}})
	m.Run(0, sim.Cycle(*cycles))
	fmt.Printf("replayed %d ops over %d cycles under %s\n", r.Read(), *cycles, pol)
	fmt.Printf("ipc               %.4f\n", float64(m.Cores[0].Stats.Committed)/float64(*cycles))
	fmt.Printf("bandwidth util    %.3f of peak\n", m.BWUtil())
	if err := r.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "pivot-trace: trace error:", err)
		os.Exit(1)
	}
}
