// Command pivot-fuzz runs scenario-fuzzing campaigns against the simulator's
// differential oracles and replays recorded findings.
//
// Campaign mode generates -n random valid scenarios from -seed and checks
// each against the oracle bank (codec round-trip, skip-ahead vs dense
// equivalence, checkpoint kill-and-resume, flight-recorder purity, invariant
// audit, fabric vs in-process sweep equality). Failures are shrunk to
// minimal reproductions and recorded under
// -corpus as replayable directories:
//
//	pivot-fuzz -seed 1 -n 200 -corpus corpus/
//
// Replay mode re-runs every entry of a recorded corpus through its oracle —
// a checked-in corpus doubles as a regression suite:
//
//	pivot-fuzz -replay internal/scenfuzz/testdata/corpus
//
// -duration bounds a campaign's wall clock (scenarios not started in time
// are skipped, not failed); -oracles narrows the bank to a comma-separated
// subset; -defect arms a deliberate, test-only bug in one oracle leg to
// prove end-to-end that the machine catches and minimises real defects.
//
// Exit status: 0 all green, 1 oracle findings, 2 usage or infrastructure
// error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pivot/internal/cliutil"
	"pivot/internal/scenfuzz"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "campaign seed; the same (seed, n, oracles) campaign reproduces exactly")
	n := flag.Int("n", 100, "number of scenarios to generate and check")
	duration := flag.Duration("duration", 0, "wall-clock bound for the campaign (0 = unbounded)")
	oracles := flag.String("oracles", "", "comma-separated oracle subset: "+strings.Join(scenfuzz.OracleNames(), ",")+" (empty = all)")
	corpus := flag.String("corpus", "", "directory receiving one replayable entry per finding")
	replay := flag.String("replay", "", "replay the corpus at this directory instead of fuzzing")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	journal := flag.String("journal", "", "append one JSONL line per checked scenario here")
	defect := flag.String("defect", "", "arm a deliberate test-only defect: "+strings.Join(scenfuzz.Defects(), ",")+" (empty = none)")
	logFormat := flag.String("log-format", "text", "diagnostics format: text or json")
	version := flag.Bool("version", false, "print the build fingerprint and exit")
	flag.Parse()

	if *version {
		fmt.Println(cliutil.Version("pivot-fuzz"))
		return 0
	}
	logger, err := cliutil.Logger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-fuzz:", err)
		return 2
	}
	if *defect != "" {
		ok := false
		for _, d := range scenfuzz.Defects() {
			ok = ok || d == *defect
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "pivot-fuzz: unknown -defect %q (want one of %s)\n", *defect, strings.Join(scenfuzz.Defects(), ", "))
			return 2
		}
		logger.Warn("deliberate defect armed; findings below are expected", "defect", *defect)
	}
	env := scenfuzz.Env{Defect: *defect}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *replay != "" {
		failed, err := scenfuzz.Replay(ctx, *replay, env, os.Stdout)
		if err != nil {
			logger.Error("replay failed", "err", err)
			return 2
		}
		if len(failed) > 0 {
			fmt.Printf("replay: %d corpus entr%s failing\n", len(failed), plural(len(failed), "y", "ies"))
			return 1
		}
		fmt.Println("replay: all corpus entries pass")
		return 0
	}

	var names []string
	if *oracles != "" {
		names = strings.Split(*oracles, ",")
	}
	start := time.Now()
	sum, err := scenfuzz.Run(ctx, scenfuzz.Config{
		Seed:        *seed,
		N:           *n,
		Duration:    *duration,
		Oracles:     names,
		Corpus:      *corpus,
		Parallel:    *parallel,
		JournalPath: *journal,
		Env:         env,
		Out:         os.Stderr,
	})
	if err != nil {
		logger.Error("campaign failed", "err", err)
		return 2
	}
	for _, f := range sum.Findings {
		fmt.Printf("FINDING %s (scenario %d): %s\n", f.Oracle, f.Index, f.Detail)
		if f.Dir != "" {
			fmt.Printf("  recorded: %s\n", f.Dir)
		}
	}
	fmt.Printf("fuzz: seed %d: %d checked, %d skipped, %d finding%s in %s\n",
		*seed, sum.Checked, sum.Skipped, len(sum.Findings), plural(len(sum.Findings), "", "s"),
		time.Since(start).Round(time.Millisecond))
	if len(sum.Findings) > 0 {
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
