// Command flightcheck validates a flight-recorder report produced with
// -flight-out. CI runs it after the scenario smoke step so a recorder that
// silently records nothing — or violates its own accounting invariants —
// fails the build instead of shipping an empty observability artifact.
//
// Usage:
//
//	flightcheck report.json
//
// Exit status 0 means every invariant held; any violation prints a line per
// failure and exits 1.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"pivot/internal/flight"
	"pivot/internal/mem"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: flightcheck <report.json>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "flightcheck:", err)
		os.Exit(2)
	}
	defer f.Close()
	var rep flight.Report
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		fmt.Fprintln(os.Stderr, "flightcheck: decode:", err)
		os.Exit(2)
	}

	var fails []string
	bad := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}

	if rep.Source == "" {
		bad("source header is empty (the CLI must stamp its build fingerprint)")
	}
	if rep.Demand == 0 {
		bad("recorded zero demand requests")
	}
	if rep.SampleN == 0 || uint64(rep.SampleN) > rep.Demand {
		bad("sampled %d lifecycles of %d demand requests", rep.SampleN, rep.Demand)
	}
	o := rep.Overall
	if o.Count != rep.Demand {
		bad("overall count %d != demand %d", o.Count, rep.Demand)
	}
	if o.Mean <= 0 || o.Mean > float64(o.Max) {
		bad("mean latency %.2f outside (0, max=%d]", o.Mean, o.Max)
	}
	if !(o.P50 <= o.P95 && o.P95 <= o.P99 && o.P99 <= o.Max) {
		bad("percentiles not monotone: p50=%d p95=%d p99=%d max=%d", o.P50, o.P95, o.P99, o.Max)
	}

	if got, want := len(rep.Components), int(mem.NumComponents); got != want {
		bad("%d component rows, want %d", got, want)
	}
	for _, c := range rep.Components {
		if c.MeanWait > c.MeanCycles || c.TailWait > c.TailCycles {
			bad("component %s: wait exceeds residency (%.2f/%.2f, tail %.2f/%.2f)",
				c.Comp, c.MeanWait, c.MeanCycles, c.TailWait, c.TailCycles)
		}
		if c.TailWaitFrac < 0 || c.TailWaitFrac > 1 {
			bad("component %s: tail wait fraction %.3f outside [0,1]", c.Comp, c.TailWaitFrac)
		}
	}

	if len(rep.PCs) == 0 {
		bad("no per-PC rows")
	}
	var share float64
	for _, p := range rep.PCs {
		if p.Count == 0 {
			bad("pc %#x has zero completions", p.PC)
		}
		share += p.TailShare
	}
	if share > 1.0001 {
		bad("per-PC tail shares sum to %.4f > 1", share)
	}

	if len(rep.Slowest) == 0 {
		bad("slowest-request table is empty")
	} else if rep.Slowest[0].Latency != o.Max {
		bad("slowest[0] latency %d != overall max %d", rep.Slowest[0].Latency, o.Max)
	}
	for i, s := range rep.Slowest {
		if i > 0 && s.Latency > rep.Slowest[i-1].Latency {
			bad("slowest table not sorted at rank %d (%d after %d)", i, s.Latency, rep.Slowest[i-1].Latency)
		}
		if len(s.Spans) == 0 {
			bad("slowest[%d] (seq %d) has no span chain", i, s.Seq)
		}
		var chain uint64
		for _, sp := range s.Spans {
			chain += sp.Wait + sp.Service
		}
		if chain > s.Latency {
			bad("slowest[%d] (seq %d): span cycles %d exceed latency %d", i, s.Seq, chain, s.Latency)
		}
	}

	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "flightcheck:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("flightcheck: ok (%d demand, %d sampled, %d slow chains, p99=%d)\n",
		rep.Demand, rep.SampleN, len(rep.Slowest), o.P99)
}
