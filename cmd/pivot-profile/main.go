// Command pivot-profile runs PIVOT's offline profiling phase (§IV-B) for an
// LC application and prints the selected potential-critical set together
// with the per-load statistics it was derived from.
package main

import (
	"flag"
	"fmt"
	"os"

	"pivot"
	"pivot/internal/machine"
	"pivot/internal/profile"
	"pivot/internal/sim"
)

func main() {
	lcName := flag.String("lc", pivot.Masstree, "LC application to profile")
	threads := flag.Int("stress-threads", 7, "stress-copy BE thread count")
	cores := flag.Int("cores", 8, "core count")
	cycles := flag.Uint64("cycles", uint64(machine.ProfileCycles), "profiling duration in cycles")
	execFreq := flag.Float64("min-exec-freq", 0.005, "minimal execution frequency")
	missRate := flag.Float64("min-miss-rate", 0.10, "minimal LLC miss rate")
	stallFrac := flag.Float64("top-stall", 0.05, "top stall-cycle ranking fraction")
	seed := flag.Uint64("seed", 1, "simulation seed")
	top := flag.Int("top", 20, "per-load statistics rows to print")
	flag.Parse()

	app, ok := pivot.LCApps()[*lcName]
	if !ok {
		fmt.Fprintf(os.Stderr, "pivot-profile: unknown LC app %q\n", *lcName)
		os.Exit(2)
	}

	prof := machine.RunProfiler(machine.KunpengConfig(*cores), app, *threads, *seed, sim.Cycle(*cycles))
	params := profile.Params{
		MinExecFreq:    *execFreq,
		MinLLCMissRate: *missRate,
		TopStallFrac:   *stallFrac,
	}
	set := prof.Select(params)

	fmt.Printf("app                 %s\n", *lcName)
	fmt.Printf("loads observed      %d (static: %d)\n", prof.TotalLoads(), len(prof.Stats()))
	fmt.Printf("potential-critical  %d static loads\n\n", len(set))

	fmt.Printf("%-12s %10s %9s %12s %9s\n", "pc", "execs", "missRate", "stallCycles", "critical")
	for i, s := range prof.Stats() {
		if i >= *top {
			break
		}
		fmt.Printf("%#-12x %10d %9.3f %12d %9v\n",
			s.PC, s.Execs, s.MissRate(), s.StallCycles, set.Contains(s.PC))
	}
}
