package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pivot/internal/exp"
)

// TestRunScenarioEndToEnd drives the checked-in CI smoke scenario through
// scenario mode: load, validate, expand (policy sweep) and simulate, then
// render the per-unit table. The scenario pins inter-arrivals and short run
// windows so no calibration or profiling runs.
func TestRunScenarioEndToEnd(t *testing.T) {
	var out strings.Builder
	err := runScenario(&out, nil, filepath.Join("..", "..", "examples", "scenarios", "smoke.json"),
		scenarioOpts{cores: 4, scale: exp.Quick()})
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "Scenario smoke (2 run units)") {
		t.Errorf("missing summary header:\n%s", text)
	}
	for _, unit := range []string{"policy=Default", "policy=FullPath"} {
		if !strings.Contains(text, unit) {
			t.Errorf("missing run unit %q:\n%s", unit, text)
		}
	}
}

// TestRunScenarioMalformed: a scenario file with an unknown field must fail
// with an error naming the precise field path, and an invalid value must fail
// validation the same way.
func TestRunScenarioMalformed(t *testing.T) {
	cases := []struct {
		name, body, wantPath string
	}{
		{
			name: "unknown field",
			body: `{"version":1,"name":"x","policy":"Default","warmup":100,"measure":100,
			       "tasks":[{"kind":"lc","app":"silo","interarrival":1000,"typo_field":3}]}`,
			wantPath: `tasks[0]: unknown field "typo_field"`,
		},
		{
			name: "bad value",
			body: `{"version":1,"name":"x","policy":"Default","warmup":100,"measure":100,
			       "tasks":[{"kind":"lc","app":"silo","load_pct":250}]}`,
			wantPath: "tasks[0].load_pct",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			err := runScenario(&out, nil, path, scenarioOpts{cores: 4, scale: exp.Quick()})
			if err == nil {
				t.Fatal("malformed scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.wantPath) {
				t.Errorf("error %q does not name field path %q", err, tc.wantPath)
			}
		})
	}
}
