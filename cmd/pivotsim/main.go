// Command pivotsim runs a single co-location simulation and reports the
// metrics the paper uses: per-LC p95 latency, BE throughput, and memory
// bandwidth utilisation.
//
// Example: one Masstree LC task at a 4000-cycle mean inter-arrival,
// co-located with 7 iBench threads under PIVOT:
//
//	pivotsim -lc masstree -ia 4000 -be ibench -threads 7 -policy pivot
//
// Scenario mode: -scenario file.json ignores the per-task flags and runs a
// declarative scenario (see README "Scenarios" and examples/scenarios/)
// through validation, sweep expansion and execution, printing one summary row
// per expanded run unit. -quick selects the coarse calibration scale and
// -quiet suppresses progress notes.
//
// Crash safety: with -checkpoint-dir the run periodically snapshots its full
// machine state; rerunning the identical command resumes from the newest
// good checkpoint with bit-identical final results. The first SIGINT or
// SIGTERM stops the run gracefully (flushing a final checkpoint, exit 130);
// a second signal force-quits.
//
// Observability: -flight-out arms the per-request flight recorder — every
// memory-path transition becomes a queue-wait/service span — and writes the
// tail-attribution report (per-PC and per-component breakdown plus the
// -flight-top slowest requests' span chains) in JSON, CSV or text by file
// suffix. Recording never changes simulated results. -debug-addr serves
// pprof, runtime metrics and /progress (live cycle, cycles/sec, ETA);
// -log-format=json switches stderr diagnostics to structured JSON, and
// -version prints the build fingerprint stamped into exported reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pivot"
	"pivot/internal/checkpoint"
	"pivot/internal/cliutil"
	"pivot/internal/exp"
	"pivot/internal/flight"
	"pivot/internal/load"
	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/metrics"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

var policies = map[string]pivot.Policy{
	"default":      pivot.PolicyDefault,
	"mba":          pivot.PolicyMBA,
	"mpam":         pivot.PolicyMPAM,
	"fullpath":     pivot.PolicyFullPath,
	"pivot":        pivot.PolicyPIVOT,
	"cbp":          pivot.PolicyCBP,
	"cbp-fullpath": pivot.PolicyCBPFullPath,
}

func main() {
	lcName := flag.String("lc", pivot.Masstree, "LC application (img-dnn|moses|xapian|silo|masstree)")
	ia := flag.Float64("ia", 4000, "mean request inter-arrival in cycles (0 = closed loop)")
	zipf := flag.Float64("zipf", 0, "Zipf skew theta of the LC task's reference popularity, in [0, 1) (0 = uniform; richer load shapes need -scenario)")
	beName := flag.String("be", pivot.IBench, "BE application")
	threads := flag.Int("threads", 7, "BE thread count")
	policyName := flag.String("policy", "pivot", "partitioning policy: "+strings.Join(keys(), "|"))
	cores := flag.Int("cores", 8, "core count")
	warmup := flag.Uint64("warmup", 400_000, "warm-up cycles")
	measure := flag.Uint64("measure", 600_000, "measured cycles")
	neoverse := flag.Bool("neoverse", false, "use the ARM Neoverse-like configuration (Table III)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	asJSON := flag.Bool("json", false, "emit a machine-readable snapshot instead of text")
	sample := flag.Int("sample", 0, "print the memory-path cycle split of the first N LC requests")
	statsOut := flag.String("stats-out", "", "write the run's stats dump here (JSON; CSV with a .csv suffix)")
	statsEpoch := flag.Uint64("stats-epoch", 0, "stats sampling period in cycles (0 = default)")
	statsTable := flag.Bool("stats-table", false, "print the stats registry as an aligned table after the run")
	timelineOut := flag.String("timeline-out", "", "write a Chrome trace-event timeline here (open in Perfetto)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/metrics on this address")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint the run here; an identical rerun resumes mid-simulation")
	ckptInterval := flag.Uint64("checkpoint-interval", uint64(machine.DefaultCheckpointInterval), "cycles between checkpoints")
	dense := flag.Bool("dense", false, "force the naive per-cycle tick loop instead of quiescence-aware skip-ahead (bit-identical results, slower)")
	parallelSim := flag.Int("parallel-sim", 0, "drive each machine with N shard worker goroutines on the windowed tick loop (0 = serial; bit-identical results)")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario file (JSON) instead of the flag-built co-location")
	quick := flag.Bool("quick", false, "with -scenario: use the fast (coarser) calibration scale")
	quiet := flag.Bool("quiet", false, "with -scenario: suppress calibration progress notes")
	csvOut := flag.String("csv-out", "", "with -scenario: also write the per-unit summary table as CSV here")
	flightOut := flag.String("flight-out", "", "record per-request span chains and write the tail-attribution report here (.json/.csv/text by suffix)")
	flightTop := flag.Int("flight-top", 32, "with -flight-out: keep full span chains for the N slowest requests")
	flightSample := flag.Int("flight-sample", 0, "with -flight-out: lifecycle reservoir size (0 = default)")
	logFormat := flag.String("log-format", "text", "diagnostics format on stderr: text|json")
	version := flag.Bool("version", false, "print the build fingerprint and exit")
	flag.Parse()

	if *version {
		fmt.Println(cliutil.Version("pivotsim"))
		return
	}
	logger, err := cliutil.Logger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pivotsim: %v\n", err)
		os.Exit(2)
	}

	// Live run telemetry: /progress on the debug server reports the current
	// cycle, cycles/sec and ETA while the simulation runs.
	var liveProgress *stats.Progress
	if *debugAddr != "" {
		liveProgress = stats.NewProgress()
		addr, err := stats.ServeDebugWith(*debugAddr, liveProgress)
		if err != nil {
			logger.Error("debug server failed", "err", err)
			os.Exit(1)
		}
		logger.Info("debug server up", "pprof", "http://"+addr+"/debug/pprof/", "progress", "http://"+addr+"/progress")
	}

	if *csvOut != "" && *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "pivotsim: -csv-out requires -scenario (the flag-built run has no unit table)")
		os.Exit(2)
	}

	if *scenarioPath != "" {
		scale := exp.Full()
		if *quick {
			scale = exp.Quick()
		}
		progress := io.Writer(os.Stderr)
		if *quiet {
			progress = nil
		}
		opts := scenarioOpts{
			cores: *cores, scale: scale,
			dense: *dense, parallel: *parallelSim,
			flightOut: *flightOut, flightTop: *flightTop, flightSample: *flightSample,
			progress: liveProgress,
			csvOut:   *csvOut,
		}
		if err := runScenario(os.Stdout, progress, *scenarioPath, opts); err != nil {
			fmt.Fprintf(os.Stderr, "pivotsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	pol, ok := policies[*policyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "pivotsim: unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	if *zipf < 0 || *zipf >= 1 {
		fmt.Fprintf(os.Stderr, "pivotsim: -zipf %v must be in [0, 1)\n", *zipf)
		os.Exit(2)
	}
	lcApp, ok := pivot.LCApps()[*lcName]
	if !ok {
		fmt.Fprintf(os.Stderr, "pivotsim: unknown LC app %q\n", *lcName)
		os.Exit(2)
	}
	beApp, ok := pivot.BEApps()[*beName]
	if !ok {
		fmt.Fprintf(os.Stderr, "pivotsim: unknown BE app %q\n", *beName)
		os.Exit(2)
	}

	cfg := pivot.KunpengConfig(*cores)
	if *neoverse {
		cfg = pivot.NeoverseConfig(*cores)
	}

	var potential pivot.CriticalSet
	if pol == pivot.PolicyPIVOT {
		logger.Info("running offline profiling", "lc", *lcName)
		potential = pivot.ProfileLC(cfg, lcApp, *threads, *seed)
		logger.Info("offline profiling done", "potentialCriticalLoads", len(potential))
	}

	tasks := []pivot.TaskSpec{{
		Kind: pivot.TaskLC, LC: lcApp,
		MeanInterarrival: *ia, Potential: potential, Seed: *seed,
		Load: load.Spec{ZipfTheta: *zipf},
	}}
	for i := 0; i < *threads && len(tasks) < *cores; i++ {
		tasks = append(tasks, pivot.TaskSpec{Kind: pivot.TaskBE, BE: beApp,
			Seed: *seed + uint64(10+i)})
	}

	wantStats := *statsOut != "" || *timelineOut != "" || *statsTable || *statsEpoch > 0
	if *timelineOut != "" && *sample == 0 {
		*sample = 64 // lifecycle events come from the request sampler
	}

	m := pivot.MustNewMachine(cfg, pivot.Options{Policy: pol, SampleRequests: *sample, Dense: *dense, Parallel: *parallelSim}, tasks)
	if wantStats {
		m.EnableStats(pivot.Cycle(*statsEpoch), 0)
	}
	if *flightOut != "" {
		m.EnableFlight(flight.Config{TopK: *flightTop, SampleCap: *flightSample})
	}
	if liveProgress != nil {
		liveProgress.SetLabel(fmt.Sprintf("%s %s + %s x%d", pol, *lcName, *beName, *threads))
		liveProgress.SetGoal(*warmup + *measure)
		m.SetProgress(liveProgress)
	}

	// Graceful shutdown: first signal cancels the run (flushing a final
	// checkpoint when -checkpoint-dir is set), second force-quits.
	runCtx, cancelRun := context.WithCancel(context.Background())
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "\npivotsim: %v: stopping (flushing checkpoint); signal again to force quit\n", s)
		cancelRun()
		<-sigCh
		os.Exit(130)
	}()

	resumed, err := m.RunCheckpointed(runCtx, pivot.Cycle(*warmup), pivot.Cycle(*measure),
		machine.CheckpointConfig{Dir: *ckptDir, Interval: sim.Cycle(*ckptInterval)})
	interrupted := runCtx.Err() != nil
	cancelRun()
	if resumed > 0 {
		logger.Info("resumed from checkpoint", "cycle", uint64(resumed))
	}
	if err != nil {
		if interrupted {
			if *ckptDir != "" {
				logger.Info("interrupted; state saved — rerun the same command to resume")
			} else {
				logger.Info("interrupted")
			}
			os.Exit(130)
		}
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
	if *ckptDir != "" {
		_ = checkpoint.Remove(*ckptDir) // run complete; nothing left to protect
	}

	if wantStats {
		if err := exportStats(m, *statsOut, *timelineOut, *statsTable, *policyName); err != nil {
			logger.Error("stats export failed", "err", err)
			os.Exit(1)
		}
	}
	if *flightOut != "" {
		if err := cliutil.WriteFlight(flightReport(m, *policyName, *lcName), *flightOut); err != nil {
			logger.Error("flight export failed", "err", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		if err := m.Snapshot().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pivotsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	src := m.LCTasks()[0].Source
	fmt.Printf("policy            %s\n", pol)
	fmt.Printf("lc app            %s (inter-arrival %.0f cycles)\n", *lcName, *ia)
	fmt.Printf("be app            %s x%d\n", *beName, *threads)
	fmt.Printf("requests done     %d\n", src.Completed())
	if n := src.DroppedLatencies(); n > 0 {
		fmt.Printf("latency records   %d DROPPED past the 1Mi cap — percentiles cover a truncated prefix\n", n)
	}
	fmt.Printf("lc p95 latency    %d cycles\n", m.LCp95(0))
	fmt.Printf("be throughput     %.4f instructions/cycle\n",
		float64(m.BECommitted())/float64(m.MeasuredCycles()))
	fmt.Printf("bandwidth util    %.3f of peak (%.2f GB/s)\n", m.BWUtil(), m.AvgBandwidthGBs())
	fmt.Printf("\nrequest latency distribution (cycles):\n%s",
		metrics.Histogram(src.Latencies(), 12, 40))

	if recs := m.SampledRequests(); len(recs) > 0 {
		fmt.Printf("\nsampled LC memory requests (cycles per component):\n")
		fmt.Printf("%-12s %-8s %-6s %-6s %-6s %-6s %-8s %-6s %-6s\n",
			"pc", "critical", "L2", "IC", "Bus", "BWC", "MemCtrl", "DRAM", "total")
		for _, r := range recs {
			fmt.Printf("%#-12x %-8v %-6d %-6d %-6d %-6d %-8d %-6d %-6d\n",
				r.PC, r.Critical,
				r.Split[mem.CompL2], r.Split[mem.CompInterconnect],
				r.Split[mem.CompBus], r.Split[mem.CompBWCtrl],
				r.Split[mem.CompMemCtrl], r.Split[mem.CompDRAM],
				r.TotalCycles())
		}
	}
}

// exportStats writes the run's stats dump / timeline artifacts and
// (optionally) prints the aligned-text summary table.
func exportStats(m *pivot.Machine, statsOut, timelineOut string, table bool, policy string) error {
	d := m.StatsDump()
	if statsOut != "" {
		f, err := os.Create(statsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(statsOut, ".csv") {
			err = d.WriteCSV(f)
		} else {
			err = d.WriteJSON(f)
		}
		if err != nil {
			return err
		}
	}
	if timelineOut != "" {
		f, err := os.Create(timelineOut)
		if err != nil {
			return err
		}
		defer f.Close()
		tl := m.BuildTimeline(1, "pivotsim "+policy)
		// With a flight recorder attached, the slowest requests' span chains
		// land in the same trace as the epoch counters, under their own pid.
		if rec := m.FlightRecorder(); rec != nil {
			rec.AppendTimeline(tl, 2)
		}
		if err := tl.WriteJSON(f); err != nil {
			return err
		}
	}
	if table {
		fmt.Println(d.Table("stats registry (measured region)").String())
	}
	return nil
}

// flightReport builds the flag-built run's tail-attribution report with a
// human-readable source label.
func flightReport(m *pivot.Machine, policy, lc string) *flight.Report {
	rep := m.FlightReport()
	if rep != nil {
		rep.Source = fmt.Sprintf("pivotsim %s %s", policy, lc)
	}
	return rep
}

func keys() []string {
	out := make([]string, 0, len(policies))
	for k := range policies {
		out = append(out, k)
	}
	return out
}
