// Scenario mode: -scenario file.json runs a declarative scenario
// (internal/scenario) end to end — validation, sweep expansion, calibration
// and profiling as needed — and prints the per-unit summary table.
package main

import (
	"fmt"
	"io"

	"pivot/internal/exp"
	"pivot/internal/machine"
	"pivot/internal/scenario"
)

// runScenario loads, validates and executes one scenario file. cores picks
// the machine when the scenario's machine stanza leaves cores unset; the
// scale sets the run windows and calibration grid any unswept knobs default
// to. Calibration progress notes go to progress (nil silences them).
func runScenario(out, progress io.Writer, path string, cores int, scale exp.Scale) error {
	sc, err := scenario.Load(path)
	if err != nil {
		return err
	}
	ctx := exp.NewContext(machine.KunpengConfig(cores), scale)
	ctx.Out = progress
	t, err := ctx.RunScenario(sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, t.String())
	return nil
}
