// Scenario mode: -scenario file.json runs a declarative scenario
// (internal/scenario) end to end — validation, sweep expansion, calibration
// and profiling as needed — and prints the per-unit summary table.
package main

import (
	"fmt"
	"io"

	"pivot/internal/cliutil"
	"pivot/internal/exp"
	"pivot/internal/harness"
	"pivot/internal/machine"
	"pivot/internal/scenario"
	"pivot/internal/stats"
)

// scenarioOpts carries the flag-derived knobs into scenario mode.
type scenarioOpts struct {
	cores int
	scale exp.Scale
	// dense / parallel pick the execution engine for every run unit
	// (bit-identical results either way; dense wins).
	dense    bool
	parallel int
	// flightOut enables the per-request flight recorder on every run unit and
	// exports the last unit's tail-attribution report there.
	flightOut    string
	flightTop    int
	flightSample int
	// progress, when non-nil, feeds the /progress live-telemetry endpoint.
	progress *stats.Progress
	// csvOut, when set, also writes the unit summary table there as CSV.
	csvOut string
}

// runScenario loads, validates and executes one scenario file. opts.cores
// picks the machine when the scenario's machine stanza leaves cores unset;
// opts.scale sets the run windows and calibration grid any unswept knobs
// default to. Calibration progress notes go to progress (nil silences them).
func runScenario(out, progress io.Writer, path string, opts scenarioOpts) error {
	sc, err := scenario.Load(path)
	if err != nil {
		return err
	}
	ctx := exp.NewContext(machine.KunpengConfig(opts.cores), opts.scale)
	ctx.Out = progress
	ctx.Progress = opts.progress
	ctx.Dense = opts.dense
	ctx.Parallel = opts.parallel
	if opts.flightOut != "" {
		ctx.FlightTop = opts.flightTop
		ctx.FlightSample = opts.flightSample
	}
	t, err := ctx.RunScenario(sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, t.String())
	if opts.csvOut != "" {
		if err := harness.WriteFileAtomic(opts.csvOut, []byte(t.CSV()), 0o644); err != nil {
			return fmt.Errorf("writing -csv-out: %w", err)
		}
	}
	if opts.flightOut != "" {
		if err := cliutil.WriteFlight(ctx.LastFlight(), opts.flightOut); err != nil {
			return err
		}
	}
	return nil
}
