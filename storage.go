package pivot

// StorageBudget reproduces the paper's §IV-E per-processing-element storage
// arithmetic for PIVOT's hardware additions, in bits. The published total is
// 1045 bits per PE; a unit test pins every term.
type StorageBudget struct {
	// SeqRegister saves the ROB sequence number of the tracked load.
	SeqRegister int
	// IndexRegister holds the RRBP index of the tracked load.
	IndexRegister int
	// Comparator matches the saved sequence number (8 bits for a 192-entry
	// ROB).
	Comparator int
	// ROBCriticalBits is one potential-criticality bit per ROB entry.
	ROBCriticalBits int
	// RRBPBits is the table storage (64 entries × 6-bit counters).
	RRBPBits int
	// LoadQueueBits adds, per load-queue entry, 1 actual-criticality bit
	// and a 6-bit PC index (the paper budgets a 64-entry load queue).
	LoadQueueBits int
}

// DefaultStorageBudget returns the paper's published configuration.
func DefaultStorageBudget() StorageBudget {
	return StorageBudget{
		SeqRegister:     8,
		IndexRegister:   5,
		Comparator:      8,
		ROBCriticalBits: 192 * 1,
		RRBPBits:        64 * 6,
		LoadQueueBits:   64 * (1 + 6),
	}
}

// Total returns the summed per-PE storage cost in bits (1045 for the
// published configuration).
func (b StorageBudget) Total() int {
	return b.SeqRegister + b.IndexRegister + b.Comparator +
		b.ROBCriticalBits + b.RRBPBits + b.LoadQueueBits
}
