package pivot_test

import (
	"fmt"
	"os"

	"pivot"
)

// Example demonstrates the full PIVOT workflow: offline profiling, machine
// construction, and reading the paper's metrics. (Compile-checked; run the
// examples/ programs for live output.)
func Example() {
	cfg := pivot.KunpengConfig(8)
	apps := pivot.LCApps()

	// Phase 1 — offline: profile the LC task against the stress workload.
	potential := pivot.ProfileLC(cfg, apps[pivot.Masstree], 7, 1)

	// Phase 2 — online: co-locate under PIVOT.
	tasks := []pivot.TaskSpec{{
		Kind: pivot.TaskLC, LC: apps[pivot.Masstree],
		MeanInterarrival: 4000, Potential: potential, Seed: 1,
	}}
	for i := 0; i < 7; i++ {
		tasks = append(tasks, pivot.TaskSpec{
			Kind: pivot.TaskBE, BE: pivot.BEApps()[pivot.IBench], Seed: uint64(10 + i),
		})
	}
	m := pivot.MustNewMachine(cfg, pivot.Options{Policy: pivot.PolicyPIVOT}, tasks)
	m.Run(400_000, 500_000)

	fmt.Printf("p95=%d cycles, bandwidth=%.0f%% of peak\n", m.LCp95(0), 100*m.BWUtil())
}

// ExampleMachine_Snapshot exports a machine's measurements as JSON.
func ExampleMachine_Snapshot() {
	m := pivot.MustNewMachine(pivot.KunpengConfig(4),
		pivot.Options{Policy: pivot.PolicyDefault},
		[]pivot.TaskSpec{{Kind: pivot.TaskBE, BE: pivot.BEApps()[pivot.IBench], Seed: 1}})
	m.Run(10_000, 50_000)
	_ = m.Snapshot().WriteJSON(os.Stdout)
}

// ExampleRunManaged drives a machine under the CLITE resource manager.
func ExampleRunManaged() {
	m := pivot.MustNewMachine(pivot.KunpengConfig(4),
		pivot.Options{Policy: pivot.PolicyManaged},
		[]pivot.TaskSpec{
			{Kind: pivot.TaskLC, LC: pivot.LCApps()[pivot.Xapian], MeanInterarrival: 5000, Seed: 1},
			{Kind: pivot.TaskBE, BE: pivot.BEApps()[pivot.GraphAn], Seed: 2},
		})
	pivot.RunManaged(pivot.NewCLITE([]uint32{20_000}), m, 100_000, 200_000, 25_000)
	fmt.Println(m.LCTasks()[0].Source.Completed() > 0)
	// Output: true
}
