// Package fabric distributes scenario sweeps across worker processes: a
// coordinator expands a scenario into run units (via harness.ScenarioJobs'
// UnitPayloads) and leases them to workers over a local transport (unix
// socket or localhost TCP, JSON-framed), with crash tolerance built from
// three mechanisms:
//
//   - Time-bounded leases with heartbeats. A worker that dies (connection
//     drops), wedges (heartbeats stop), or stalls (heartbeats continue but
//     the simulated cycle never advances past StallTTL) loses its lease; the
//     unit is requeued with bounded retries and exponential backoff.
//
//   - Checkpoint migration. Workers periodically ship their newest PIVOTCKP
//     frame alongside heartbeats; the coordinator verifies each frame's CRC
//     and hands the latest one to the replacement worker, which imports it
//     into its own run directory so the simulator's ordinary restore path
//     resumes the run mid-simulation instead of restarting.
//
//   - A content-addressed result cache keyed on (build fingerprint, unit
//     scenario encoding, scale, cores, dense). Re-running a sweep after a
//     code change recomputes only affected units; an unchanged re-run is
//     pure cache hits.
//
// Determinism is the contract: a sweep driven through the fabric renders
// tables byte-identical to a serial in-process run (simulations are
// deterministic, RunResult round-trips JSON float-exactly, and the
// coordinator returns results in job order). With no workers configured the
// harness's in-process path runs unchanged — the fabric degrades to exactly
// the code that existed before it.
package fabric

import "time"

// Defaults for Config; see the fields they mirror.
const (
	// DefaultLeaseTTL is how long a leased unit may go without a heartbeat
	// before the coordinator expires the lease.
	DefaultLeaseTTL = 5 * time.Second
	// DefaultHeartbeat is the worker's heartbeat period; the lease TTL
	// should be a comfortable multiple of it.
	DefaultHeartbeat = 250 * time.Millisecond
	// DefaultRetries bounds how many times a unit is re-leased after losing
	// its worker before the failure is surfaced.
	DefaultRetries = 3
	// DefaultBackoff is the wait before the first re-lease; it doubles per
	// attempt.
	DefaultBackoff = 250 * time.Millisecond
)
