package fabric

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"pivot/internal/harness"
)

// The wire protocol is deliberately dumb: newline-delimited JSON messages
// over a stream connection, one flat message type for every direction. Local
// transports only — a unix socket (any address containing a path separator)
// or localhost TCP — so there is no auth, no TLS and no framing beyond what
// encoding/json provides. The coordinator and workers must share a build
// fingerprint: results are only byte-reproducible when both sides run the
// same code, so the hello handshake rejects mismatches outright.

// Message types.
const (
	msgHello      = "hello"      // worker → coordinator: name + build fingerprint
	msgReady      = "ready"      // worker → coordinator: give me a unit
	msgLease      = "lease"      // coordinator → worker: run this unit
	msgHeartbeat  = "heartbeat"  // worker → coordinator: lease alive, cycle progress
	msgCheckpoint = "checkpoint" // worker → coordinator: newest PIVOTCKP frame
	msgResult     = "result"     // worker → coordinator: unit finished
	msgError      = "error"      // worker → coordinator: unit failed
	msgReject     = "reject"     // coordinator → worker: handshake refused
	msgDone       = "done"       // coordinator → worker: no more units, disconnect
)

// Frame is one shipped PIVOTCKP checkpoint frame: the raw encoded bytes plus
// the run-relative path they were exported from (see checkpoint.ExportLatest).
type Frame struct {
	Rel   string `json:"rel"`
	Cycle uint64 `json:"cycle"`
	Data  []byte `json:"data"` // base64 via encoding/json
}

// message is the single wire message shape; Type selects which fields matter.
type message struct {
	Type string `json:"type"`
	// Worker and Build identify the peer (hello); Detail carries reject and
	// error text.
	Worker string `json:"worker,omitempty"`
	Build  string `json:"build,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Unit names the leased unit (lease/heartbeat/checkpoint/result/error).
	Unit string `json:"unit,omitempty"`
	// Payload is the unit description (lease).
	Payload *harness.UnitPayload `json:"payload,omitempty"`
	// HeartbeatMs tells the worker its heartbeat period (lease).
	HeartbeatMs int64 `json:"heartbeat_ms,omitempty"`
	// Ckpt carries a migrated frame: coordinator → worker inside a lease,
	// worker → coordinator as a msgCheckpoint.
	Ckpt *Frame `json:"ckpt,omitempty"`
	// Cycle is the worker's current simulated cycle (heartbeat).
	Cycle uint64 `json:"cycle,omitempty"`
	// Resumed is the cycle a migrated run restored at, 0 if it started
	// fresh (result).
	Resumed uint64 `json:"resumed,omitempty"`
	// Value is the JSON-encoded run result (result).
	Value json.RawMessage `json:"value,omitempty"`
}

// wire wraps one connection with a JSON encoder/decoder pair. Sends are
// mutex-serialised (the worker's heartbeat goroutine and its main loop share
// the connection); receives have a single reader per side.
type wire struct {
	c   net.Conn
	dec *json.Decoder
	mu  sync.Mutex
	enc *json.Encoder
}

func newWire(c net.Conn) *wire {
	return &wire{c: c, dec: json.NewDecoder(c), enc: json.NewEncoder(c)}
}

func (w *wire) send(m message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(m)
}

func (w *wire) recv() (message, error) {
	var m message
	err := w.dec.Decode(&m)
	return m, err
}

func (w *wire) close() error { return w.c.Close() }

// isUnix reports whether addr names a unix socket path rather than a TCP
// address: anything containing a path separator (or starting with ".").
func isUnix(addr string) bool {
	return strings.ContainsRune(addr, os.PathSeparator) || strings.HasPrefix(addr, ".")
}

// Listen opens the coordinator's listening socket. A stale socket file from
// a previous crashed coordinator is removed first (local single-user
// transport; whoever can write the path owns it).
func Listen(addr string) (net.Listener, error) {
	if isUnix(addr) {
		if _, err := os.Stat(addr); err == nil {
			if c, derr := net.DialTimeout("unix", addr, 100*time.Millisecond); derr == nil {
				c.Close()
				return nil, fmt.Errorf("fabric: %s: a coordinator is already listening", addr)
			}
			os.Remove(addr)
		}
		return net.Listen("unix", addr)
	}
	return net.Listen("tcp", addr)
}

// Dial connects a worker to a coordinator, retrying for up to wait (workers
// often start before or alongside the coordinator).
func Dial(addr string, wait time.Duration) (net.Conn, error) {
	network := "tcp"
	if isUnix(addr) {
		network = "unix"
	}
	deadline := time.Now().Add(wait)
	for {
		c, err := net.DialTimeout(network, addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fabric: dialing %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
