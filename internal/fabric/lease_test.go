package fabric

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"pivot/internal/checkpoint"
	"pivot/internal/harness"
)

func encodeTestFrame(cycle, fp uint64, payload string) []byte {
	return checkpoint.Encode(checkpoint.Checkpoint{Cycle: cycle, Fingerprint: fp, Payload: []byte(payload)})
}

func frameName(cycle uint64) string { return checkpoint.FileName(cycle) }

// fakeWorker is a hand-driven protocol peer for lease-table tests: it speaks
// the wire protocol directly so tests control exactly when heartbeats stop.
type fakeWorker struct {
	t *testing.T
	w *wire
}

func dialFake(t *testing.T, co *Coordinator, name string) *fakeWorker {
	t.Helper()
	c, err := Dial(co.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("%s: dial: %v", name, err)
	}
	f := &fakeWorker{t: t, w: newWire(c)}
	if err := f.w.send(message{Type: msgHello, Worker: name, Build: co.cfg.Build}); err != nil {
		t.Fatalf("%s: hello: %v", name, err)
	}
	t.Cleanup(func() { f.w.close() })
	return f
}

func (f *fakeWorker) lease() message {
	f.t.Helper()
	if err := f.w.send(message{Type: msgReady}); err != nil {
		f.t.Fatalf("ready: %v", err)
	}
	m, err := f.w.recv()
	if err != nil {
		f.t.Fatalf("recv lease: %v", err)
	}
	if m.Type != msgLease {
		f.t.Fatalf("got %q, want a lease", m.Type)
	}
	return m
}

func testCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = filepath.Join(t.TempDir(), "f.sock")
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

func submitAsync(co *Coordinator, p *harness.UnitPayload) chan taskResult {
	ch := make(chan taskResult, 1)
	go func() {
		v, resumed, err := co.Submit(context.Background(), p)
		ch <- taskResult{value: v, resumed: resumed, err: err}
	}()
	return ch
}

func TestLeaseExpiresOnMissedHeartbeats(t *testing.T) {
	co := testCoordinator(t, Config{LeaseTTL: 200 * time.Millisecond, Heartbeat: 50 * time.Millisecond,
		Backoff: time.Millisecond})
	done := submitAsync(co, testPayload())

	// Worker A takes the lease, heartbeats once, then goes silent without
	// closing its connection (a wedged process).
	a := dialFake(t, co, "a")
	m := a.lease()
	if m.Payload == nil || m.Payload.Label != "policy=Default" {
		t.Fatalf("lease payload = %+v", m.Payload)
	}
	if err := a.w.send(message{Type: msgHeartbeat, Unit: m.Unit, Cycle: 10}); err != nil {
		t.Fatal(err)
	}

	// Worker B arrives after A's lease must have expired, and completes it.
	b := dialFake(t, co, "b")
	m2 := b.lease()
	if m2.Payload.Label != m.Payload.Label {
		t.Fatalf("reassigned unit = %q, want %q", m2.Payload.Label, m.Payload.Label)
	}
	if err := b.w.send(message{Type: msgResult, Unit: m2.Unit, Value: json.RawMessage(`{"ok":true}`)}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("Submit: %v", r.err)
		}
		if string(r.value) != `{"ok":true}` {
			t.Fatalf("value = %s", r.value)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit never completed after re-lease")
	}
	st := co.Stats()
	if st.Requeued < 1 {
		t.Fatalf("Requeued = %d, want >= 1", st.Requeued)
	}
}

func TestRetriesExhaust(t *testing.T) {
	co := testCoordinator(t, Config{LeaseTTL: 5 * time.Second, Heartbeat: 50 * time.Millisecond,
		Retries: 2, Backoff: time.Millisecond})
	done := submitAsync(co, testPayload())

	// Each worker takes the lease, then drops the connection mid-unit.
	for i := 0; i < 3; i++ {
		f := dialFake(t, co, "crash")
		f.lease()
		f.w.close()
	}
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatal("Submit succeeded after 3 lost workers with Retries=2")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit never failed")
	}
	if st := co.Stats(); st.Failed != 1 || st.Requeued != 2 {
		t.Fatalf("stats = %+v, want Failed=1 Requeued=2", st)
	}
}

func TestCheckpointFrameMigratesOnRelease(t *testing.T) {
	co := testCoordinator(t, Config{LeaseTTL: 5 * time.Second, Heartbeat: 50 * time.Millisecond,
		Backoff: time.Millisecond})
	_ = submitAsync(co, testPayload())

	a := dialFake(t, co, "a")
	m := a.lease()
	frame := encodeTestFrame(1000, 7, "state-at-1000")
	if err := a.w.send(message{Type: msgCheckpoint, Unit: m.Unit,
		Ckpt: &Frame{Rel: "run-1/" + frameName(1000), Cycle: 1000, Data: frame}}); err != nil {
		t.Fatal(err)
	}
	// An older frame must not replace the newer one.
	if err := a.w.send(message{Type: msgCheckpoint, Unit: m.Unit,
		Ckpt: &Frame{Rel: "run-1/" + frameName(500), Cycle: 500, Data: encodeTestFrame(500, 7, "older")}}); err != nil {
		t.Fatal(err)
	}
	// A corrupt frame must be discarded, not forwarded.
	bad := encodeTestFrame(2000, 7, "torn")
	bad[len(bad)-1] ^= 0xff
	if err := a.w.send(message{Type: msgCheckpoint, Unit: m.Unit,
		Ckpt: &Frame{Rel: "run-1/" + frameName(2000), Cycle: 2000, Data: bad}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return co.Stats().Frames >= 2 }, "frames accepted")
	a.w.close() // worker dies; the unit requeues with its frame

	b := dialFake(t, co, "b")
	m2 := b.lease()
	if m2.Ckpt == nil {
		t.Fatal("re-lease carried no migrated checkpoint frame")
	}
	if m2.Ckpt.Cycle != 1000 {
		t.Fatalf("migrated frame cycle = %d, want 1000 (newest good frame)", m2.Ckpt.Cycle)
	}
}

func TestRejectsBuildMismatch(t *testing.T) {
	co := testCoordinator(t, Config{Build: "pivot v1"})
	c, err := Dial(co.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w := newWire(c)
	defer w.close()
	if err := w.send(message{Type: msgHello, Worker: "x", Build: "pivot v2"}); err != nil {
		t.Fatal(err)
	}
	m, err := w.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgReject {
		t.Fatalf("got %q, want a reject for mismatched builds", m.Type)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
