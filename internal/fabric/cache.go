package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"pivot/internal/harness"
)

// Cache is the content-addressed result store: one JSON file per (build
// fingerprint, unit inputs) key, so re-running a sweep recomputes only the
// units whose inputs — code included — actually changed. Entries are written
// atomically and verified on read; a corrupt or foreign file is a miss, not
// an error.
type Cache struct {
	dir    string
	hits   atomic.Uint64
	misses atomic.Uint64
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// cacheKeyInput is exactly what the key hashes: every input that can change
// a unit's result. Index and Label are deliberately excluded — two sweep
// positions with identical resolved scenarios are the same computation.
type cacheKeyInput struct {
	Build    string          `json:"build"`
	Scenario json.RawMessage `json:"scenario"`
	Scale    any             `json:"scale"`
	Cores    int             `json:"cores"`
	Dense    bool            `json:"dense"`
	Parallel int             `json:"parallel,omitempty"`
}

// CacheKey derives the content address of one unit's result under one build.
func CacheKey(build string, p *harness.UnitPayload) string {
	raw, err := json.Marshal(cacheKeyInput{
		Build:    build,
		Scenario: p.Scenario,
		Scale:    p.Scale,
		Cores:    p.Cores,
		Dense:    p.Dense,
		Parallel: p.Parallel,
	})
	if err != nil {
		// UnitPayload is built from marshalable values only; this cannot
		// happen for payloads the harness produces.
		panic(fmt.Sprintf("fabric: cache key: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// cacheEntry is one stored result. Key is repeated inside the file so a
// renamed or truncated file cannot satisfy the wrong lookup.
type cacheEntry struct {
	Key   string          `json:"key"`
	Build string          `json:"build"`
	Label string          `json:"label"`
	Value json.RawMessage `json:"value"`
}

// path shards entries by the key's first byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the cached result for key, counting the hit or miss. Missing,
// unreadable, malformed and mis-keyed files are all misses.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || len(e.Value) == 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.Value, true
}

// Put stores a result under key, atomically (concurrent writers of the same
// key race benignly: both write identical content).
func (c *Cache) Put(key, build, label string, value json.RawMessage) error {
	data, err := json.Marshal(cacheEntry{Key: key, Build: build, Label: label, Value: value})
	if err != nil {
		return err
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return harness.WriteFileAtomic(p, data, 0o644)
}

// Hits and Misses report the lookup counters.
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// CachedJobs wraps each payload-carrying job's Run with a cache lookup:
// a hit returns the stored result without running anything, a miss runs the
// job and stores its result. This is the no-workers degradation path — the
// fabric Executor performs the same lookup itself when dispatching.
func CachedJobs(c *Cache, build string, jobs []harness.Job) []harness.Job {
	if c == nil {
		return jobs
	}
	out := make([]harness.Job, len(jobs))
	for i, job := range jobs {
		out[i] = job
		p, ok := job.Payload.(*harness.UnitPayload)
		if !ok || p == nil {
			continue
		}
		run := job.Run
		key := CacheKey(build, p)
		label := p.Label
		out[i].Run = func(ctx context.Context) (any, error) {
			if raw, ok := c.Get(key); ok {
				return raw, nil
			}
			v, err := run(ctx)
			if err != nil {
				return nil, err
			}
			raw, merr := json.Marshal(v)
			if merr != nil {
				return v, nil // uncacheable value: still a success
			}
			if perr := c.Put(key, build, label, raw); perr != nil {
				return v, nil // cache write failure must not fail the job
			}
			return json.RawMessage(raw), nil
		}
	}
	return out
}
