package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"pivot/internal/checkpoint"
	"pivot/internal/harness"
)

// Config parameterises a coordinator.
type Config struct {
	// Addr is the listening address: a unix socket path (anything containing
	// a path separator) or a TCP address like "localhost:0".
	Addr string
	// LeaseTTL is how long a leased unit survives without a heartbeat
	// (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Heartbeat is the period workers are told to heartbeat at
	// (0 = DefaultHeartbeat).
	Heartbeat time.Duration
	// StallTTL, when > 0, additionally expires a lease whose heartbeats
	// arrive but whose simulated cycle has not advanced for this long — a
	// wedged worker that still answers the phone.
	StallTTL time.Duration
	// Retries bounds re-leases per unit after worker loss (0 = DefaultRetries;
	// negative = no retries).
	Retries int
	// Backoff delays a re-lease after worker loss, doubling per attempt
	// (0 = DefaultBackoff).
	Backoff time.Duration
	// Build is the coordinator's build fingerprint; workers with a different
	// fingerprint are rejected at the handshake (0 results cross builds).
	Build string
	// Logger receives structured fabric diagnostics; nil silences them.
	Logger *slog.Logger
}

func (cfg *Config) setDefaults() {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// Stats is a point-in-time snapshot of coordinator counters.
type Stats struct {
	Workers   int    // connected workers
	Completed uint64 // units finished successfully
	Failed    uint64 // units that exhausted their retries
	Requeued  uint64 // re-leases after worker loss
	Migrated  uint64 // re-leases that shipped a checkpoint frame
	Resumed   uint64 // results whose run restored from a migrated frame
	Frames    uint64 // checkpoint frames received and verified
}

// taskResult is what a task delivers back to its Submit caller.
type taskResult struct {
	value   json.RawMessage
	resumed uint64
	err     error
}

// task is one unit in flight through the fabric.
type task struct {
	payload  *harness.UnitPayload
	ch       chan taskResult // buffered 1; single delivery guarded by done
	attempts int             // leases granted so far
	eligible time.Time       // backoff gate for re-lease
	ckpt     *Frame          // newest verified frame from a lost worker
	done     bool            // result delivered
	canceled bool            // Submit caller gave up
}

// peer is one connected worker.
type peer struct {
	name         string
	w            *wire
	lease        *task // nil when idle
	idle         bool  // sent ready, waiting for a lease
	hbDeadline   time.Time
	lastCycle    uint64
	lastProgress time.Time // last time lastCycle advanced
}

// Coordinator owns the lease table: it accepts workers, hands out units,
// expires dead leases and routes results back to Submit callers.
type Coordinator struct {
	cfg Config
	log *slog.Logger
	ln  net.Listener

	mu      sync.Mutex
	pending []*task
	workers map[*peer]struct{}
	closed  bool

	completed uint64
	failed    uint64
	requeued  uint64
	migrated  uint64
	resumed   uint64
	frames    uint64

	kick chan struct{} // nudges the scheduler (buffered 1)
	stop chan struct{}

	closeOnce sync.Once
}

// NewCoordinator opens the listening socket and starts the accept and
// scheduling loops. Close releases everything.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg.setDefaults()
	ln, err := Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:     cfg,
		log:     cfg.Logger,
		ln:      ln,
		workers: make(map[*peer]struct{}),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	go co.acceptLoop()
	go co.schedule()
	return co, nil
}

// Addr returns the coordinator's bound address (useful with "localhost:0").
func (co *Coordinator) Addr() string {
	if isUnix(co.cfg.Addr) {
		return co.cfg.Addr
	}
	return co.ln.Addr().String()
}

// Close shuts the fabric down: waiting workers are told to disconnect, the
// listener closes, and the scheduler stops. In-flight Submit calls receive
// errors as their workers drop.
func (co *Coordinator) Close() {
	co.closeOnce.Do(func() {
		co.mu.Lock()
		co.closed = true
		peers := make([]*peer, 0, len(co.workers))
		for p := range co.workers {
			peers = append(peers, p)
		}
		co.mu.Unlock()
		for _, p := range peers {
			_ = p.w.send(message{Type: msgDone})
			_ = p.w.close()
		}
		co.ln.Close()
		close(co.stop)
	})
}

// Stats snapshots the coordinator's counters.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return Stats{
		Workers:   len(co.workers),
		Completed: co.completed,
		Failed:    co.failed,
		Requeued:  co.requeued,
		Migrated:  co.migrated,
		Resumed:   co.resumed,
		Frames:    co.frames,
	}
}

// Submit hands one unit to the fabric and blocks until a worker finishes it,
// its retries run out, or ctx is cancelled.
func (co *Coordinator) Submit(ctx context.Context, p *harness.UnitPayload) (json.RawMessage, uint64, error) {
	t := &task{payload: p, ch: make(chan taskResult, 1)}
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil, 0, errors.New("fabric: coordinator closed")
	}
	co.pending = append(co.pending, t)
	co.mu.Unlock()
	co.nudge()
	select {
	case r := <-t.ch:
		return r.value, r.resumed, r.err
	case <-ctx.Done():
		co.mu.Lock()
		t.canceled = true
		co.mu.Unlock()
		return nil, 0, ctx.Err()
	}
}

// Executor adapts the coordinator into a harness executor: payload-carrying
// jobs are dispatched to workers (with a cache lookup around the dispatch
// when cache is non-nil); jobs without payloads fall back to their own Run.
func (co *Coordinator) Executor(cache *Cache) harness.Executor {
	return func(ctx context.Context, job harness.Job) (any, error) {
		p, ok := job.Payload.(*harness.UnitPayload)
		if !ok || p == nil {
			return job.Run(ctx)
		}
		var key string
		if cache != nil {
			key = CacheKey(co.cfg.Build, p)
			if raw, hit := cache.Get(key); hit {
				co.log.Info("cache hit", "unit", p.Label)
				return raw, nil
			}
		}
		raw, resumed, err := co.Submit(ctx, p)
		if err != nil {
			return nil, err
		}
		if resumed > 0 {
			co.mu.Lock()
			co.resumed++
			co.mu.Unlock()
		}
		if cache != nil {
			if perr := cache.Put(key, co.cfg.Build, p.Label, raw); perr != nil {
				co.log.Warn("cache write failed", "unit", p.Label, "err", perr)
			}
		}
		return raw, nil
	}
}

// nudge wakes the scheduler without blocking.
func (co *Coordinator) nudge() {
	select {
	case co.kick <- struct{}{}:
	default:
	}
}

func (co *Coordinator) acceptLoop() {
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go co.handlePeer(newWire(c))
	}
}

// handlePeer performs the hello handshake, registers the worker and runs its
// read loop; on any exit the worker is deregistered and its lease requeued.
func (co *Coordinator) handlePeer(w *wire) {
	m, err := w.recv()
	if err != nil || m.Type != msgHello {
		w.close()
		return
	}
	if m.Build != co.cfg.Build {
		// Mixed builds would silently produce non-reproducible sweeps; refuse
		// loudly instead.
		_ = w.send(message{Type: msgReject, Detail: fmt.Sprintf(
			"build fingerprint mismatch: coordinator %q, worker %q", co.cfg.Build, m.Build)})
		w.close()
		return
	}
	p := &peer{name: m.Worker, w: w}
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		_ = w.send(message{Type: msgDone})
		w.close()
		return
	}
	co.workers[p] = struct{}{}
	co.mu.Unlock()
	co.log.Info("worker connected", "worker", p.name)
	co.nudge()
	defer co.removePeer(p)
	for {
		m, err := w.recv()
		if err != nil {
			return // connection lost; removePeer requeues the lease
		}
		switch m.Type {
		case msgReady:
			co.mu.Lock()
			p.idle, p.lease = true, nil
			co.mu.Unlock()
			co.nudge()
		case msgHeartbeat:
			co.heartbeat(p, m.Cycle)
		case msgCheckpoint:
			co.acceptFrame(p, m)
		case msgResult:
			co.complete(p, m.Value, m.Resumed, nil)
		case msgError:
			co.complete(p, nil, 0, errors.New(m.Detail))
		}
	}
}

// removePeer deregisters a worker and requeues its lease.
func (co *Coordinator) removePeer(p *peer) {
	co.mu.Lock()
	delete(co.workers, p)
	t := p.lease
	p.lease = nil
	if t != nil && !t.done && !t.canceled {
		co.requeueLocked(t, p.name)
	}
	co.mu.Unlock()
	p.w.close()
	co.log.Info("worker disconnected", "worker", p.name)
	co.nudge()
}

// heartbeat refreshes a lease's liveness and progress clocks.
func (co *Coordinator) heartbeat(p *peer, cycle uint64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if p.lease == nil {
		return
	}
	now := time.Now()
	p.hbDeadline = now.Add(co.cfg.LeaseTTL)
	if cycle > p.lastCycle {
		p.lastCycle = cycle
		p.lastProgress = now
	}
}

// acceptFrame verifies and records a shipped checkpoint frame against the
// worker's current lease: the replacement worker gets the newest good frame.
func (co *Coordinator) acceptFrame(p *peer, m message) {
	if m.Ckpt == nil {
		return
	}
	ck, err := checkpoint.Decode(m.Ckpt.Data)
	if err != nil {
		co.log.Warn("discarding corrupt checkpoint frame", "worker", p.name, "err", err)
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	t := p.lease
	if t == nil {
		return
	}
	if t.ckpt == nil || ck.Cycle > t.ckpt.Cycle {
		t.ckpt = &Frame{Rel: m.Ckpt.Rel, Cycle: ck.Cycle, Data: m.Ckpt.Data}
	}
	co.frames++
}

// complete routes a finished unit's outcome to its Submit caller.
func (co *Coordinator) complete(p *peer, value json.RawMessage, resumed uint64, err error) {
	co.mu.Lock()
	t := p.lease
	p.lease = nil
	p.lastCycle, p.lastProgress = 0, time.Time{}
	if t == nil || t.done || t.canceled {
		co.mu.Unlock()
		return
	}
	t.done = true
	if err == nil {
		co.completed++
	} else {
		co.failed++
	}
	co.mu.Unlock()
	t.ch <- taskResult{value: value, resumed: resumed, err: err}
}

// requeueLocked puts a lost task back in the queue (or fails it when its
// retries are exhausted). Caller holds co.mu.
func (co *Coordinator) requeueLocked(t *task, worker string) {
	if t.attempts > co.cfg.Retries {
		t.done = true
		co.failed++
		co.log.Error("unit exhausted retries", "unit", t.payload.Label, "attempts", t.attempts)
		t.ch <- taskResult{err: fmt.Errorf(
			"fabric: unit %s lost its worker %d time(s); giving up", t.payload.Label, t.attempts)}
		return
	}
	backoff := co.cfg.Backoff << (t.attempts - 1)
	t.eligible = time.Now().Add(backoff)
	co.requeued++
	migrated := ""
	if t.ckpt != nil {
		co.migrated++
		migrated = fmt.Sprintf(" (checkpoint at cycle %d migrates)", t.ckpt.Cycle)
	}
	co.log.Warn("lease lost, requeueing"+migrated,
		"unit", t.payload.Label, "worker", worker, "attempt", t.attempts, "backoff", backoff)
	co.pending = append(co.pending, t)
}

// schedule is the coordinator's heart: a ticker (plus nudges) that expires
// dead leases and assigns pending units to idle workers.
func (co *Coordinator) schedule() {
	period := co.cfg.LeaseTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > 500*time.Millisecond {
		period = 500 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-tick.C:
		case <-co.kick:
		}
		co.expire()
		co.assign()
	}
}

// expire closes connections whose leases have outlived their heartbeat TTL
// or stalled past StallTTL; the peer's read loop then requeues the task.
func (co *Coordinator) expire() {
	now := time.Now()
	var dead []*peer
	co.mu.Lock()
	for p := range co.workers {
		if p.lease == nil {
			continue
		}
		switch {
		case !p.hbDeadline.IsZero() && now.After(p.hbDeadline):
			co.log.Warn("lease expired (missed heartbeats)", "worker", p.name, "unit", p.lease.payload.Label)
			dead = append(dead, p)
		case co.cfg.StallTTL > 0 && !p.lastProgress.IsZero() && now.Sub(p.lastProgress) > co.cfg.StallTTL:
			co.log.Warn("lease expired (simulation stalled)", "worker", p.name, "unit", p.lease.payload.Label)
			dead = append(dead, p)
		}
	}
	co.mu.Unlock()
	for _, p := range dead {
		p.w.close() // unblocks the read loop; removePeer does the requeue
	}
}

// assign pairs eligible pending tasks with idle workers. Sends happen
// outside the lock (they can block on a slow socket); a failed send closes
// the connection and the read-loop teardown requeues the task.
func (co *Coordinator) assign() {
	now := time.Now()
	type grant struct {
		p *peer
		t *task
	}
	var grants []grant
	co.mu.Lock()
	var idle []*peer
	for p := range co.workers {
		if p.idle && p.lease == nil {
			idle = append(idle, p)
		}
	}
	// Deterministic assignment order keeps logs readable; results are
	// order-independent regardless.
	sort.Slice(idle, func(i, j int) bool { return idle[i].name < idle[j].name })
	rest := co.pending[:0]
	for _, t := range co.pending {
		if t.canceled || t.done {
			continue
		}
		if len(idle) == 0 || now.Before(t.eligible) {
			rest = append(rest, t)
			continue
		}
		p := idle[0]
		idle = idle[1:]
		p.idle, p.lease = false, t
		p.hbDeadline = now.Add(co.cfg.LeaseTTL)
		p.lastCycle, p.lastProgress = 0, now
		t.attempts++
		grants = append(grants, grant{p: p, t: t})
	}
	co.pending = rest
	co.mu.Unlock()
	for _, g := range grants {
		m := message{
			Type:        msgLease,
			Unit:        g.t.payload.Label,
			Payload:     g.t.payload,
			HeartbeatMs: co.cfg.Heartbeat.Milliseconds(),
			Ckpt:        g.t.ckpt,
		}
		if err := g.p.w.send(m); err != nil {
			g.p.w.close() // read loop cleans up and requeues
			continue
		}
		co.log.Info("leased", "unit", g.t.payload.Label, "worker", g.p.name, "attempt", g.t.attempts)
	}
}
