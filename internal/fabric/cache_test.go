package fabric

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"pivot/internal/exp"
	"pivot/internal/harness"
)

func testPayload() *harness.UnitPayload {
	return &harness.UnitPayload{
		Index:    0,
		Label:    "policy=Default",
		Scenario: json.RawMessage(`{"version":1,"name":"t"}`),
		Scale:    exp.Quick(),
		Cores:    4,
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("build-a", testPayload())
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(key, "build-a", "unit", json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	raw, ok := c.Get(key)
	if !ok || string(raw) != `{"x":1}` {
		t.Fatalf("Get = (%q, %v), want the stored value", raw, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("counters = %d hits / %d misses, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := CacheKey("build-a", testPayload())

	p := testPayload()
	p.Index, p.Label = 7, "another-label"
	if CacheKey("build-a", p) != base {
		t.Error("Index/Label must not affect the cache key (duplicate units dedupe)")
	}

	if CacheKey("build-b", testPayload()) == base {
		t.Error("build fingerprint must affect the cache key")
	}
	p = testPayload()
	p.Scenario = json.RawMessage(`{"version":1,"name":"other"}`)
	if CacheKey("build-a", p) == base {
		t.Error("scenario encoding must affect the cache key")
	}
	p = testPayload()
	p.Cores = 8
	if CacheKey("build-a", p) == base {
		t.Error("cores must affect the cache key")
	}
	p = testPayload()
	p.Dense = true
	if CacheKey("build-a", p) == base {
		t.Error("dense must affect the cache key")
	}
	p = testPayload()
	p.Scale.Seed = 99
	if CacheKey("build-a", p) == base {
		t.Error("scale must affect the cache key")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("b", testPayload())
	if err := c.Put(key, "b", "u", json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	// Truncate the stored file: the entry must become a miss, not an error.
	if err := os.WriteFile(c.path(key), []byte(`{"key":"tr`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt cache file reported a hit")
	}
	// A mis-keyed entry (renamed file) must also miss.
	other := CacheKey("other-build", testPayload())
	data, _ := json.Marshal(cacheEntry{Key: key, Build: "b", Value: json.RawMessage(`{"x":1}`)})
	if err := os.MkdirAll(c.path(other)[:len(c.path(other))-len(other+".json")], 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(other), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(other); ok {
		t.Fatal("mis-keyed cache file reported a hit")
	}
}

func TestCachedJobs(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	jobs := []harness.Job{
		{
			ID:      "000:u",
			Run:     func(context.Context) (any, error) { runs++; return map[string]int{"v": 42}, nil },
			Payload: testPayload(),
		},
		{
			// No payload: must pass through untouched.
			ID:  "001:plain",
			Run: func(context.Context) (any, error) { runs++; return "plain", nil },
		},
	}
	wrapped := CachedJobs(c, "build-a", jobs)
	for _, j := range wrapped {
		if _, err := j.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 2 {
		t.Fatalf("first pass ran %d jobs, want 2", runs)
	}
	// Second pass: the payload job must come from the cache.
	for _, j := range CachedJobs(c, "build-a", jobs) {
		v, err := j.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if j.ID == "000:u" {
			raw, ok := v.(json.RawMessage)
			if !ok || string(raw) != `{"v":42}` {
				t.Fatalf("cached value = %v, want raw {\"v\":42}", v)
			}
		}
	}
	if runs != 3 {
		t.Fatalf("second pass ran the cached job (total %d runs, want 3)", runs)
	}
	if c.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", c.Hits())
	}
}
