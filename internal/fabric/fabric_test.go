package fabric

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"pivot/internal/exp"
	"pivot/internal/harness"
	"pivot/internal/machine"
	"pivot/internal/scenario"
)

// sweepScenario is a tiny two-unit sweep cheap enough for unit tests.
const sweepScenario = `{
  "version": 1,
  "name": "fabric-test",
  "machine": {"cores": 4},
  "policy": "Default",
  "warmup": 20000,
  "measure": 30000,
  "tasks": [
    {"kind": "lc", "app": "masstree", "interarrival": 3000},
    {"kind": "be", "app": "ibench", "threads": 2}
  ],
  "sweep": [{"param": "policy", "values": ["Default", "FullPath"]}]
}`

// longScenario runs long enough for checkpoints to ship mid-unit.
const longScenario = `{
  "version": 1,
  "name": "fabric-long",
  "machine": {"cores": 4},
  "policy": "Default",
  "warmup": 50000,
  "measure": 2000000,
  "tasks": [
    {"kind": "lc", "app": "masstree", "interarrival": 3000},
    {"kind": "be", "app": "ibench", "threads": 2}
  ]
}`

func parseScenario(t *testing.T, text string) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// startWorker runs an in-process worker until cancel; returns the cancel.
func startWorker(t *testing.T, co *Coordinator, name string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := RunWorker(ctx, WorkerConfig{Addr: co.Addr(), Name: name, Build: co.cfg.Build,
			Dir: t.TempDir()}); err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	t.Cleanup(func() { cancel(); <-done })
	return cancel
}

// fabricTable drives sc through the fabric and renders its scenario table.
func fabricTable(t *testing.T, co *Coordinator, cache *Cache, sc *scenario.Scenario) string {
	t.Helper()
	ctx := exp.NewContext(machine.KunpengConfig(8), exp.Quick())
	jobs, labels, err := harness.ScenarioJobs(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := harness.New(harness.Config{Parallel: len(jobs), Executor: co.Executor(cache)})
	if err != nil {
		t.Fatal(err)
	}
	results := r.Run(jobs)
	rendered := make([]exp.RunResult, len(results))
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("unit %s: %v", res.ID, res.Err)
		}
		rr, err := harness.ValueAs[exp.RunResult](res)
		if err != nil {
			t.Fatal(err)
		}
		rendered[i] = rr
	}
	return exp.ScenarioTable(sc, labels, rendered).String()
}

// TestFabricMatchesSerial is the fabric's core contract: a sweep distributed
// across workers renders byte-identical tables to a serial in-process run,
// and a warm-cache re-run recomputes nothing while rendering the same bytes.
func TestFabricMatchesSerial(t *testing.T) {
	sc := parseScenario(t, sweepScenario)
	serial, err := exp.NewContext(machine.KunpengConfig(8), exp.Quick()).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.String()

	co := testCoordinator(t, Config{Heartbeat: 20 * time.Millisecond})
	startWorker(t, co, "w1")
	startWorker(t, co, "w2")

	cache, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	got := fabricTable(t, co, cache, sc)
	if got != want {
		t.Fatalf("fabric table differs from serial:\n--- serial ---\n%s\n--- fabric ---\n%s", want, got)
	}
	if cache.Hits() != 0 || cache.Misses() != 2 {
		t.Fatalf("cold cache: %d hits / %d misses, want 0/2", cache.Hits(), cache.Misses())
	}

	// Warm re-run: every unit must come from the cache, bytes unchanged.
	before := co.Stats().Completed
	got2 := fabricTable(t, co, cache, sc)
	if got2 != want {
		t.Fatalf("warm-cache table differs from serial")
	}
	if cache.Hits() != 2 {
		t.Fatalf("warm cache: %d hits, want 2", cache.Hits())
	}
	if after := co.Stats().Completed; after != before {
		t.Fatalf("warm re-run recomputed %d unit(s), want 0", after-before)
	}
}

// TestFabricMigratesCheckpoint kills a worker mid-unit and checks that the
// replacement resumes from the migrated frame and produces the exact result
// a serial uninterrupted run produces.
func TestFabricMigratesCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	sc := parseScenario(t, longScenario)
	units, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("expanded to %d units, want 1", len(units))
	}

	// Serial reference result.
	sctx := exp.NewContext(machine.KunpengConfig(8), exp.Quick())
	rctx := sctx.UnitResolver()(units[0])
	spec, err := rctx.SpecForUnit(units[0])
	if err != nil {
		t.Fatal(err)
	}
	serialRes, err := rctx.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(serialRes)
	if err != nil {
		t.Fatal(err)
	}

	co := testCoordinator(t, Config{Heartbeat: 20 * time.Millisecond, Backoff: time.Millisecond})
	cancel1 := startWorker(t, co, "w1")

	// Build the payload the way ScenarioJobs does, with frequent checkpoints
	// so frames ship quickly.
	fctx := exp.NewContext(machine.KunpengConfig(8), exp.Quick())
	fctx.CheckpointInterval = 50_000
	jobs, _, err := harness.ScenarioJobs(fctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	payload := jobs[0].Payload.(*harness.UnitPayload)

	type submitOut struct {
		value   json.RawMessage
		resumed uint64
		err     error
	}
	done := make(chan submitOut, 1)
	go func() {
		v, resumed, err := co.Submit(context.Background(), payload)
		done <- submitOut{v, resumed, err}
	}()

	// Wait until at least one verified frame arrived, then kill the worker.
	waitFor(t, func() bool { return co.Stats().Frames >= 1 }, "a shipped checkpoint frame")
	cancel1()
	startWorker(t, co, "w2")

	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("Submit: %v", out.err)
		}
		if out.resumed == 0 {
			t.Fatal("replacement worker did not resume from the migrated checkpoint")
		}
		if string(out.value) != string(wantJSON) {
			t.Fatalf("migrated result differs from serial:\nserial: %s\nfabric: %s", wantJSON, out.value)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("migrated unit never completed")
	}
	st := co.Stats()
	if st.Requeued < 1 || st.Migrated < 1 {
		t.Fatalf("stats = %+v, want Requeued>=1 Migrated>=1", st)
	}
}
