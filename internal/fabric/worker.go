package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pivot/internal/checkpoint"
	"pivot/internal/exp"
	"pivot/internal/harness"
	"pivot/internal/machine"
	"pivot/internal/scenario"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

// WorkerConfig parameterises one worker process (or in-process worker).
type WorkerConfig struct {
	// Addr is the coordinator's address (see Listen/Dial).
	Addr string
	// Dir is the worker's scratch directory for checkpoint state; empty
	// means a temporary directory, removed on exit.
	Dir string
	// Name identifies the worker in logs and lease assignments; empty
	// derives one from the pid.
	Name string
	// Build is this worker's build fingerprint, checked by the coordinator.
	Build string
	// Logger receives structured diagnostics; nil silences them.
	Logger *slog.Logger
	// DialWait bounds how long the worker retries the initial dial
	// (0 = 10s); workers often start alongside the coordinator.
	DialWait time.Duration
}

// RunWorker connects to a coordinator and executes leased units until the
// coordinator says done, the connection drops, or ctx is cancelled. Returning
// nil means an orderly shutdown (done received or context cancelled).
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.DialWait <= 0 {
		cfg.DialWait = 10 * time.Second
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "pivot-fabric-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}

	c, err := Dial(cfg.Addr, cfg.DialWait)
	if err != nil {
		return err
	}
	w := newWire(c)
	defer w.close()
	// A cancelled worker context closes the connection, which unblocks any
	// pending recv.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			w.close()
		case <-stop:
		}
	}()

	if err := w.send(message{Type: msgHello, Worker: cfg.Name, Build: cfg.Build}); err != nil {
		return err
	}
	r := &unitRunner{dir: cfg.Dir, log: cfg.Logger, ctxs: make(map[string]*workerCtx)}
	for {
		if err := w.send(message{Type: msgReady}); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		m, err := w.recv()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("fabric: coordinator connection lost: %w", err)
		}
		switch m.Type {
		case msgDone:
			return nil
		case msgReject:
			return fmt.Errorf("fabric: coordinator rejected worker: %s", m.Detail)
		case msgLease:
			if m.Payload == nil {
				return errors.New("fabric: lease without payload")
			}
			cfg.Logger.Info("leased unit", "unit", m.Unit)
			value, resumed, rerr := r.runUnit(ctx, w, m)
			if ctx.Err() != nil {
				return nil
			}
			if rerr != nil {
				if serr := w.send(message{Type: msgError, Unit: m.Unit, Detail: rerr.Error()}); serr != nil {
					return serr
				}
				continue
			}
			if serr := w.send(message{Type: msgResult, Unit: m.Unit, Value: value, Resumed: resumed}); serr != nil {
				return serr
			}
		}
	}
}

// workerCtx is one cached execution context: a base exp.Context plus its
// unit resolver, reused across leases with the same execution settings so
// calibration caches carry over.
type workerCtx struct {
	ctx     *exp.Context
	resolve func(scenario.RunUnit) *exp.Context
}

// unitRunner executes leased units, caching contexts per configuration.
type unitRunner struct {
	dir  string
	log  *slog.Logger
	mu   sync.Mutex
	ctxs map[string]*workerCtx
}

// contextFor returns the cached context for a payload's execution settings.
func (r *unitRunner) contextFor(p *harness.UnitPayload) *workerCtx {
	key := fmt.Sprintf("%d|%t|%d|%+v", p.Cores, p.Dense, p.Parallel, p.Scale)
	r.mu.Lock()
	defer r.mu.Unlock()
	wc, ok := r.ctxs[key]
	if !ok {
		ctx := exp.NewContext(machine.KunpengConfig(p.Cores), p.Scale)
		ctx.Dense = p.Dense
		ctx.Parallel = p.Parallel
		wc = &workerCtx{ctx: ctx, resolve: ctx.UnitResolver()}
		r.ctxs[key] = wc
	}
	return wc
}

// runUnit executes one leased unit: import any migrated checkpoint frame,
// run with per-unit checkpointing, heartbeat (and ship frames) while
// running, and return the JSON-encoded result.
func (r *unitRunner) runUnit(ctx context.Context, w *wire, m message) (json.RawMessage, uint64, error) {
	p := m.Payload
	sc, err := scenario.Parse(p.Scenario)
	if err != nil {
		return nil, 0, fmt.Errorf("fabric: unit %s: parsing scenario: %w", p.Label, err)
	}
	wc := r.contextFor(p)
	unit := scenario.RunUnit{Label: p.Label, Scenario: sc}
	rctx := wc.resolve(unit)
	spec, err := rctx.SpecForUnit(unit)
	if err != nil {
		return nil, 0, err
	}

	unitDir := filepath.Join(r.dir, fmt.Sprintf("unit-%04d", p.Index))
	if m.Ckpt != nil {
		// A migrated frame from the unit's previous worker: import it so the
		// run's ordinary restore path resumes mid-simulation. A bad frame
		// degrades to a fresh start, never to an error.
		if err := checkpoint.Import(unitDir, m.Ckpt.Rel, m.Ckpt.Data); err != nil {
			r.log.Warn("checkpoint import failed; starting fresh", "unit", p.Label, "err", err)
		} else {
			r.log.Info("imported migrated checkpoint", "unit", p.Label, "cycle", m.Ckpt.Cycle)
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	progress := stats.NewProgress()
	var resumedAt atomic.Uint64
	ectx := rctx.WithRunContext(runCtx)
	ectx.Progress = progress
	ectx.CheckpointDir = unitDir
	ectx.CheckpointInterval = sim.Cycle(p.CkptEvery)
	ectx.OnResume = func(c sim.Cycle) { resumedAt.Store(uint64(c)) }

	// Heartbeat loop: liveness + cycle progress every period, shipping the
	// newest checkpoint frame when one appeared. A failed send means the
	// coordinator is gone (or expired us): cancel the run.
	hb := time.Duration(m.HeartbeatMs) * time.Millisecond
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(hb)
		defer tick.Stop()
		var shipped uint64
		for {
			select {
			case <-hbDone:
				return
			case <-tick.C:
			}
			if err := w.send(message{Type: msgHeartbeat, Unit: p.Label, Cycle: progress.Snapshot().Cycle}); err != nil {
				cancel()
				return
			}
			if rel, data, cycle, err := checkpoint.ExportLatest(unitDir); err == nil && cycle > shipped {
				if err := w.send(message{Type: msgCheckpoint, Unit: p.Label,
					Ckpt: &Frame{Rel: rel, Cycle: cycle, Data: data}}); err != nil {
					cancel()
					return
				}
				shipped = cycle
			}
		}
	}()

	res, runErr := ectx.Run(spec)
	close(hbDone)
	hbWG.Wait()
	if runErr != nil {
		return nil, 0, runErr
	}
	// The run completed; its checkpoint state has nothing left to protect.
	_ = os.RemoveAll(unitDir)
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, 0, err
	}
	return raw, resumedAt.Load(), nil
}
