// Package cliutil holds the small pieces both CLIs (pivotsim, pivot-exp)
// share: the -log-format structured logger, the -version line, and the
// suffix-dispatched flight-report exporter.
package cliutil

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"pivot/internal/buildinfo"
	"pivot/internal/flight"
	"pivot/internal/harness"
)

// Logger builds the diagnostics logger selected by -log-format: "text"
// (human-readable key=value lines) or "json" (one JSON object per line, for
// log collectors). Output goes to stderr, keeping stdout for results.
func Logger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// Version renders the -version line for a CLI.
func Version(cmd string) string {
	return cmd + " " + buildinfo.Fingerprint()
}

// WriteFlight exports a tail-attribution report to path, dispatching on the
// suffix: .json gets the full machine-readable report, .csv the table blocks
// as CSV, anything else the aligned text tables. The build fingerprint is
// stamped into the report source at export time (not at capture time, so
// in-memory reports stay comparable across runs of the same binary). The
// write is atomic: readers never observe a torn report.
func WriteFlight(rep *flight.Report, path string) error {
	if rep == nil {
		return fmt.Errorf("no flight-recorded run produced a report")
	}
	stamped := *rep
	stamped.Source = stamped.Source + " | " + buildinfo.Fingerprint()
	var buf bytes.Buffer
	var err error
	switch {
	case strings.HasSuffix(path, ".json"):
		err = stamped.WriteJSON(&buf)
	case strings.HasSuffix(path, ".csv"):
		err = stamped.WriteCSV(&buf)
	default:
		err = stamped.WriteText(&buf)
	}
	if err != nil {
		return err
	}
	return harness.WriteFileAtomic(path, buf.Bytes(), 0o644)
}
