// Package mem defines the memory-request type exchanged between the CPU
// cores and the shared memory-system components (MSCs), together with the
// bookkeeping PIVOT needs: the per-request critical bit, the PARTID used by
// MPAM-style bandwidth control, and a per-component latency breakdown used by
// the Figure 5 experiment (where does a critical load spend its cycles?).
package mem

import "pivot/internal/sim"

// PartID identifies a software partition for resource control. Following the
// paper's methodology (§V-A), PARTIDs are assigned per CPU so each core has a
// unique PARTID and each CPU executes a single thread.
type PartID uint8

// Component enumerates the stages on the memory path where a request can
// spend time. The four shared memory-system components (MSCs) from Figure 4
// are Interconnect, Bus, BWCtrl and MemCtrl; the others exist so the latency
// split accounts for every cycle of a request's life.
type Component int

// Memory-path components, in path order.
const (
	CompL1 Component = iota
	CompL2
	CompInterconnect // MSC 1: L2 <-> LLC interconnect
	CompLLC
	CompBus     // MSC 2: coherent memory bus
	CompBWCtrl  // MSC 3: memory bandwidth controller (MPAM lives here)
	CompMemCtrl // MSC 4: memory controller queue
	CompDRAM    // DRAM bank service + data transfer
	CompResp    // response network back to the core
	NumComponents
)

// String returns a short human-readable component name.
func (c Component) String() string {
	switch c {
	case CompL1:
		return "L1"
	case CompL2:
		return "L2"
	case CompInterconnect:
		return "Interconnect"
	case CompLLC:
		return "LLC"
	case CompBus:
		return "Bus"
	case CompBWCtrl:
		return "BWCtrl"
	case CompMemCtrl:
		return "MemCtrl"
	case CompDRAM:
		return "DRAM"
	case CompResp:
		return "Response"
	default:
		return "?"
	}
}

// MSCs lists the four shared memory-system components, in path order, that
// enforce (or fail to enforce) access priority in the paper's experiments.
var MSCs = [4]Component{CompInterconnect, CompBus, CompBWCtrl, CompMemCtrl}

// Fault is a deterministic fault model an MSC station consults while it
// operates. Implementations must be pure functions of their own state and
// `now` so that a seeded simulation stays reproducible. All methods are
// called from the single simulation goroutine.
//
// The three hooks map to the three failure modes a queued station has:
// admission (transient queue-full), service time (latency spike), and
// arbitration (delayed grant).
type Fault interface {
	// DropAccept reports whether an offered request should be refused as if
	// the queue were full, exercising the upstream back-pressure path. The
	// caller keeps ownership of the request and will retry.
	DropAccept(now sim.Cycle) bool
	// ExtraLatency returns additional traversal latency to charge a request
	// accepted at cycle now (a latency spike). Zero means no spike.
	ExtraLatency(now sim.Cycle) sim.Cycle
	// HoldGrant reports whether the station must skip forwarding this cycle
	// (a delayed grant from the arbiter).
	HoldGrant(now sim.Cycle) bool
}

// Req is one cache-line-granularity memory access travelling down the memory
// path. A Req is created on an L1 miss and freed (recycled by the machine)
// when its response reaches the core.
type Req struct {
	Addr    uint64 // line-aligned physical address
	PC      uint64 // static address of the load/store that caused it
	CoreID  int
	Part    PartID
	IsWrite bool

	// Critical is PIVOT's per-request critical bit (§IV-C): set when the
	// issuing load was flagged by the RRBP as an actual performance-critical
	// load. FullPath mode sets it for every LC request.
	Critical bool

	// LCTask marks requests issued by latency-critical tasks; used by
	// MPAM-style per-thread priority and by statistics.
	LCTask bool

	Issued sim.Cycle // cycle the request left the L1/MSHR

	// enteredAt tracks when the request entered its current component, and
	// Split accumulates cycles spent per component for Fig 5.
	enteredAt sim.Cycle
	Split     [NumComponents]uint32

	// LLCMiss records whether the request missed in the LLC, needed by the
	// offline profiler (per-PC LLC miss rate) and the online statistics.
	LLCMiss bool

	// LLCChecked avoids re-probing the LLC when a blocked miss is retried
	// against a full downstream queue.
	LLCChecked bool

	// Prefetch marks requests issued by a hardware prefetcher rather than a
	// demand access; they fill caches but wake no instruction.
	Prefetch bool
}

// Enter stamps the request as having entered component c at cycle now,
// closing out the time spent in the previous component.
func (r *Req) Enter(c Component, now sim.Cycle) {
	r.enteredAt = now
	_ = c
}

// Leave accumulates the cycles spent in component c since the matching Enter.
func (r *Req) Leave(c Component, now sim.Cycle) {
	if now >= r.enteredAt {
		r.Split[c] += uint32(now - r.enteredAt)
	}
}

// AddSplit directly charges n cycles to component c, for fixed-latency hops
// that are not modelled with Enter/Leave pairs.
func (r *Req) AddSplit(c Component, n sim.Cycle) {
	r.Split[c] += uint32(n)
}

// TotalCycles sums the recorded per-component cycles.
func (r *Req) TotalCycles() uint64 {
	var t uint64
	for _, v := range r.Split {
		t += uint64(v)
	}
	return t
}

// Reset clears a request for reuse from a free pool.
func (r *Req) Reset() {
	*r = Req{}
}

// ReqState is the fully exported serialisable form of a Req, used by the
// machine checkpoint layer. Every field of Req (including the private
// enteredAt stamp) round-trips through it.
type ReqState struct {
	Addr       uint64
	PC         uint64
	CoreID     int
	Part       PartID
	IsWrite    bool
	Critical   bool
	LCTask     bool
	Issued     sim.Cycle
	EnteredAt  sim.Cycle
	Split      [NumComponents]uint32
	LLCMiss    bool
	LLCChecked bool
	Prefetch   bool
}

// State captures the request's complete state.
func (r *Req) State() ReqState {
	return ReqState{
		Addr: r.Addr, PC: r.PC, CoreID: r.CoreID, Part: r.Part,
		IsWrite: r.IsWrite, Critical: r.Critical, LCTask: r.LCTask,
		Issued: r.Issued, EnteredAt: r.enteredAt, Split: r.Split,
		LLCMiss: r.LLCMiss, LLCChecked: r.LLCChecked, Prefetch: r.Prefetch,
	}
}

// Materialize rebuilds a live request from its serialised state.
func (s ReqState) Materialize() *Req {
	return &Req{
		Addr: s.Addr, PC: s.PC, CoreID: s.CoreID, Part: s.Part,
		IsWrite: s.IsWrite, Critical: s.Critical, LCTask: s.LCTask,
		Issued: s.Issued, enteredAt: s.EnteredAt, Split: s.Split,
		LLCMiss: s.LLCMiss, LLCChecked: s.LLCChecked, Prefetch: s.Prefetch,
	}
}
