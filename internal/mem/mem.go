// Package mem defines the memory-request type exchanged between the CPU
// cores and the shared memory-system components (MSCs), together with the
// bookkeeping PIVOT needs: the per-request critical bit, the PARTID used by
// MPAM-style bandwidth control, and a per-component latency breakdown used by
// the Figure 5 experiment (where does a critical load spend its cycles?).
package mem

import "pivot/internal/sim"

// PartID identifies a software partition for resource control. Following the
// paper's methodology (§V-A), PARTIDs are assigned per CPU so each core has a
// unique PARTID and each CPU executes a single thread.
type PartID uint8

// Component enumerates the stages on the memory path where a request can
// spend time. The four shared memory-system components (MSCs) from Figure 4
// are Interconnect, Bus, BWCtrl and MemCtrl; the others exist so the latency
// split accounts for every cycle of a request's life.
type Component int

// Memory-path components, in path order.
const (
	CompL1 Component = iota
	CompL2
	CompInterconnect // MSC 1: L2 <-> LLC interconnect
	CompLLC
	CompBus     // MSC 2: coherent memory bus
	CompBWCtrl  // MSC 3: memory bandwidth controller (MPAM lives here)
	CompMemCtrl // MSC 4: memory controller queue
	CompDRAM    // DRAM bank service + data transfer
	CompResp    // response network back to the core
	NumComponents
)

// String returns a short human-readable component name.
func (c Component) String() string {
	switch c {
	case CompL1:
		return "L1"
	case CompL2:
		return "L2"
	case CompInterconnect:
		return "Interconnect"
	case CompLLC:
		return "LLC"
	case CompBus:
		return "Bus"
	case CompBWCtrl:
		return "BWCtrl"
	case CompMemCtrl:
		return "MemCtrl"
	case CompDRAM:
		return "DRAM"
	case CompResp:
		return "Response"
	default:
		return "?"
	}
}

// MSCs lists the four shared memory-system components, in path order, that
// enforce (or fail to enforce) access priority in the paper's experiments.
var MSCs = [4]Component{CompInterconnect, CompBus, CompBWCtrl, CompMemCtrl}

// Fault is a deterministic fault model an MSC station consults while it
// operates. Implementations must be pure functions of their own state and
// `now` so that a seeded simulation stays reproducible. All methods are
// called from the single simulation goroutine.
//
// The three hooks map to the three failure modes a queued station has:
// admission (transient queue-full), service time (latency spike), and
// arbitration (delayed grant).
type Fault interface {
	// DropAccept reports whether an offered request should be refused as if
	// the queue were full, exercising the upstream back-pressure path. The
	// caller keeps ownership of the request and will retry.
	DropAccept(now sim.Cycle) bool
	// ExtraLatency returns additional traversal latency to charge a request
	// accepted at cycle now (a latency spike). Zero means no spike.
	ExtraLatency(now sim.Cycle) sim.Cycle
	// HoldGrant reports whether the station must skip forwarding this cycle
	// (a delayed grant from the arbiter).
	HoldGrant(now sim.Cycle) bool
}

// Req is one cache-line-granularity memory access travelling down the memory
// path. A Req is created on an L1 miss and freed (recycled by the machine)
// when its response reaches the core.
type Req struct {
	Addr    uint64 // line-aligned physical address
	PC      uint64 // static address of the load/store that caused it
	CoreID  int
	Part    PartID
	IsWrite bool

	// Critical is PIVOT's per-request critical bit (§IV-C): set when the
	// issuing load was flagged by the RRBP as an actual performance-critical
	// load. FullPath mode sets it for every LC request.
	Critical bool

	// LCTask marks requests issued by latency-critical tasks; used by
	// MPAM-style per-thread priority and by statistics.
	LCTask bool

	Issued sim.Cycle // cycle the request left the L1/MSHR

	// enteredAt tracks when the request entered its current component, Cur
	// names that component, and Split accumulates cycles spent per component
	// for Fig 5.
	enteredAt sim.Cycle
	Cur       Component
	Split     [NumComponents]uint32

	// Trace, when non-nil, accumulates one cycle-stamped span per component
	// transition for the flight recorder. It stays nil unless flight
	// recording is enabled, so the disabled path never touches it.
	Trace *Trace

	// LLCMiss records whether the request missed in the LLC, needed by the
	// offline profiler (per-PC LLC miss rate) and the online statistics.
	LLCMiss bool

	// LLCChecked avoids re-probing the LLC when a blocked miss is retried
	// against a full downstream queue.
	LLCChecked bool

	// Prefetch marks requests issued by a hardware prefetcher rather than a
	// demand access; they fill caches but wake no instruction.
	Prefetch bool
}

// Enter stamps the request as having entered component c at cycle now. The
// component is recorded in Cur so a later Leave/Depart can tell queue wait
// from service time instead of discarding the stage it was measured in.
func (r *Req) Enter(c Component, now sim.Cycle) {
	r.enteredAt = now
	r.Cur = c
}

// Leave accumulates the cycles spent in component c since the matching Enter.
func (r *Req) Leave(c Component, now sim.Cycle) {
	if now >= r.enteredAt {
		r.Split[c] += uint32(now - r.enteredAt)
	}
}

// Depart closes out the request's residency in component c, which it entered
// at cycle enq: the whole residency is charged to the Fig 5 split, and when
// the request is traced it is recorded as a span whose service portion is the
// component's base traversal latency and whose remainder is queue wait. The
// enqueue cycle is passed explicitly rather than read from the Enter stamp
// because the downstream Accept runs before the hand-off is charged and may
// already have re-stamped the request into its own stage.
func (r *Req) Depart(c Component, enq, now, service sim.Cycle) {
	var total sim.Cycle
	if now > enq {
		total = now - enq
	}
	r.Split[c] += uint32(total)
	if r.Trace != nil {
		if service > total {
			service = total
		}
		r.Trace.Spans = append(r.Trace.Spans,
			Span{Comp: c, Start: enq, Wait: total - service, Service: service})
	}
}

// Hop charges a fixed-latency traversal of component c beginning at cycle
// from, recording a pure-service span when the request is traced. It replaces
// AddSplit at call sites where the hop has no queueing.
func (r *Req) Hop(c Component, from, n sim.Cycle) {
	r.Split[c] += uint32(n)
	if r.Trace != nil {
		r.Trace.Spans = append(r.Trace.Spans, Span{Comp: c, Start: from, Service: n})
	}
}

// AddSplit directly charges n cycles to component c, for fixed-latency hops
// that are not modelled with Enter/Leave pairs.
func (r *Req) AddSplit(c Component, n sim.Cycle) {
	r.Split[c] += uint32(n)
}

// Span is one recorded stage of a traced request's lifetime: the cycle it
// entered component Comp, how long it waited for service there, and how long
// the service itself took.
type Span struct {
	Comp    Component
	Start   sim.Cycle
	Wait    sim.Cycle
	Service sim.Cycle
}

// Trace is the span chain the flight recorder attaches to a request. Buffers
// are pooled by the recorder, so Reset keeps the backing array.
type Trace struct {
	Spans []Span
}

// Reset empties the trace for reuse, keeping capacity.
func (t *Trace) Reset() { t.Spans = t.Spans[:0] }

// TotalCycles sums the recorded per-component cycles.
func (r *Req) TotalCycles() uint64 {
	var t uint64
	for _, v := range r.Split {
		t += uint64(v)
	}
	return t
}

// Reset clears a request for reuse from a free pool.
func (r *Req) Reset() {
	*r = Req{}
}

// ReqState is the fully exported serialisable form of a Req, used by the
// machine checkpoint layer. Every field of Req (including the private
// enteredAt stamp) round-trips through it, except the Trace pointer: traces
// belong to the flight recorder, which checkpoints in-flight span chains
// itself so that a machine state is byte-identical with and without the
// recorder attached.
type ReqState struct {
	Addr       uint64
	PC         uint64
	CoreID     int
	Part       PartID
	IsWrite    bool
	Critical   bool
	LCTask     bool
	Issued     sim.Cycle
	EnteredAt  sim.Cycle
	Cur        Component
	Split      [NumComponents]uint32
	LLCMiss    bool
	LLCChecked bool
	Prefetch   bool
}

// State captures the request's complete state.
func (r *Req) State() ReqState {
	return ReqState{
		Addr: r.Addr, PC: r.PC, CoreID: r.CoreID, Part: r.Part,
		IsWrite: r.IsWrite, Critical: r.Critical, LCTask: r.LCTask,
		Issued: r.Issued, EnteredAt: r.enteredAt, Cur: r.Cur, Split: r.Split,
		LLCMiss: r.LLCMiss, LLCChecked: r.LLCChecked, Prefetch: r.Prefetch,
	}
}

// Materialize rebuilds a live request from its serialised state.
func (s ReqState) Materialize() *Req {
	return &Req{
		Addr: s.Addr, PC: s.PC, CoreID: s.CoreID, Part: s.Part,
		IsWrite: s.IsWrite, Critical: s.Critical, LCTask: s.LCTask,
		Issued: s.Issued, enteredAt: s.EnteredAt, Cur: s.Cur, Split: s.Split,
		LLCMiss: s.LLCMiss, LLCChecked: s.LLCChecked, Prefetch: s.Prefetch,
	}
}
