package mem

import "testing"

func TestSplitAccounting(t *testing.T) {
	r := &Req{}
	r.Enter(CompBus, 100)
	r.Leave(CompBus, 130)
	if r.Split[CompBus] != 30 {
		t.Fatalf("bus split = %d, want 30", r.Split[CompBus])
	}
	r.AddSplit(CompDRAM, 50)
	if r.TotalCycles() != 80 {
		t.Fatalf("total = %d, want 80", r.TotalCycles())
	}
	// Leave before Enter must not underflow.
	r2 := &Req{}
	r2.Enter(CompLLC, 100)
	r2.Leave(CompLLC, 90)
	if r2.Split[CompLLC] != 0 {
		t.Fatal("negative interval accounted")
	}
}

func TestReset(t *testing.T) {
	r := &Req{Addr: 1, Critical: true, LCTask: true}
	r.AddSplit(CompDRAM, 9)
	r.Reset()
	if r.Addr != 0 || r.Critical || r.LCTask || r.TotalCycles() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestComponentNames(t *testing.T) {
	seen := map[string]bool{}
	for c := CompL1; c < NumComponents; c++ {
		s := c.String()
		if s == "?" || seen[s] {
			t.Fatalf("component %d has bad or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if Component(99).String() != "?" {
		t.Fatal("out-of-range component should stringify to ?")
	}
}

func TestMSCsAreOnPath(t *testing.T) {
	want := [4]Component{CompInterconnect, CompBus, CompBWCtrl, CompMemCtrl}
	if MSCs != want {
		t.Fatalf("MSCs = %v, want the paper's four shared components", MSCs)
	}
}
