package mem

import "testing"

func TestSplitAccounting(t *testing.T) {
	r := &Req{}
	r.Enter(CompBus, 100)
	r.Leave(CompBus, 130)
	if r.Split[CompBus] != 30 {
		t.Fatalf("bus split = %d, want 30", r.Split[CompBus])
	}
	r.AddSplit(CompDRAM, 50)
	if r.TotalCycles() != 80 {
		t.Fatalf("total = %d, want 80", r.TotalCycles())
	}
	// Leave before Enter must not underflow.
	r2 := &Req{}
	r2.Enter(CompLLC, 100)
	r2.Leave(CompLLC, 90)
	if r2.Split[CompLLC] != 0 {
		t.Fatal("negative interval accounted")
	}
}

func TestEnterRecordsComponent(t *testing.T) {
	r := &Req{}
	r.Enter(CompBWCtrl, 42)
	if r.Cur != CompBWCtrl {
		t.Fatalf("Cur = %v after Enter, want BWCtrl", r.Cur)
	}
	st := r.State()
	if st.Cur != CompBWCtrl || st.EnteredAt != 42 {
		t.Fatalf("State() lost Enter stamp: %+v", st)
	}
	if got := st.Materialize(); got.Cur != CompBWCtrl || got.enteredAt != 42 {
		t.Fatal("Materialize lost Enter stamp")
	}
}

func TestDepartSplitsWaitFromService(t *testing.T) {
	r := &Req{Trace: &Trace{}}
	r.Enter(CompBus, 100)
	r.Depart(CompBus, 100, 130, 12)
	if r.Split[CompBus] != 30 {
		t.Fatalf("bus split = %d, want 30", r.Split[CompBus])
	}
	if len(r.Trace.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(r.Trace.Spans))
	}
	sp := r.Trace.Spans[0]
	if sp.Comp != CompBus || sp.Start != 100 || sp.Wait != 18 || sp.Service != 12 {
		t.Fatalf("span = %+v, want bus@100 wait=18 service=12", sp)
	}
	// Service longer than the residency clamps to pure service.
	r.Depart(CompBus, 200, 205, 10)
	if sp := r.Trace.Spans[1]; sp.Wait != 0 || sp.Service != 5 {
		t.Fatalf("clamped span = %+v, want wait=0 service=5", sp)
	}
	// now <= enq charges nothing and records an empty span.
	r.Depart(CompBus, 300, 300, 4)
	if sp := r.Trace.Spans[2]; sp.Wait != 0 || sp.Service != 0 {
		t.Fatalf("zero-residency span = %+v", sp)
	}
	if r.Split[CompBus] != 35 {
		t.Fatalf("bus split = %d, want 35", r.Split[CompBus])
	}
}

func TestHopRecordsPureService(t *testing.T) {
	r := &Req{}
	r.Hop(CompL1, 10, 3) // untraced: split only, no allocation via Trace
	if r.Split[CompL1] != 3 || r.Trace != nil {
		t.Fatal("untraced Hop misbehaved")
	}
	r.Trace = &Trace{}
	r.Hop(CompL2, 13, 9)
	if sp := r.Trace.Spans[0]; sp.Comp != CompL2 || sp.Start != 13 || sp.Wait != 0 || sp.Service != 9 {
		t.Fatalf("hop span = %+v", sp)
	}
	r.Trace.Reset()
	if len(r.Trace.Spans) != 0 || cap(r.Trace.Spans) == 0 {
		t.Fatal("Trace.Reset should empty but keep capacity")
	}
}

func TestReset(t *testing.T) {
	r := &Req{Addr: 1, Critical: true, LCTask: true}
	r.AddSplit(CompDRAM, 9)
	r.Reset()
	if r.Addr != 0 || r.Critical || r.LCTask || r.TotalCycles() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestComponentNames(t *testing.T) {
	seen := map[string]bool{}
	for c := CompL1; c < NumComponents; c++ {
		s := c.String()
		if s == "?" || seen[s] {
			t.Fatalf("component %d has bad or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if Component(99).String() != "?" {
		t.Fatal("out-of-range component should stringify to ?")
	}
}

func TestMSCsAreOnPath(t *testing.T) {
	want := [4]Component{CompInterconnect, CompBus, CompBWCtrl, CompMemCtrl}
	if MSCs != want {
		t.Fatalf("MSCs = %v, want the paper's four shared components", MSCs)
	}
}
