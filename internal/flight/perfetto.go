package flight

import (
	"fmt"

	"pivot/internal/stats"
)

// AppendTimeline exports the slowest requests' span chains as Chrome
// trace-event tracks on tl under pid, one track per request ranked worst
// first, following internal/stats/timeline.go's conventions so request spans
// and epoch counter series land in one Perfetto trace. Queue wait and
// service render as separate back-to-back slices ("wait" / "service"
// categories), so a glance shows where a slow request queued.
func (rec *Recorder) AppendTimeline(tl *stats.Timeline, pid int) {
	rep := rec.Report()
	rep.AppendTimeline(tl, pid)
}

// AppendTimeline is the report-side exporter backing Recorder.AppendTimeline.
func (r *Report) AppendTimeline(tl *stats.Timeline, pid int) {
	tl.ProcessName(pid, "flight recorder: slowest requests")
	for i, s := range r.Slowest {
		tid := i + 1
		crit := ""
		if s.Critical {
			crit = " critical"
		}
		tl.ThreadName(pid, tid, fmt.Sprintf("slow #%d pc %#x core %d%s", tid, s.PC, s.CoreID, crit))
		args := map[string]any{
			"pc":       fmt.Sprintf("%#x", s.PC),
			"addr":     fmt.Sprintf("%#x", s.Addr),
			"core":     s.CoreID,
			"partid":   int(s.Part),
			"critical": s.Critical,
			"lc":       s.LCTask,
			"write":    s.IsWrite,
			"latency":  s.Latency,
		}
		tl.Complete(pid, tid, fmt.Sprintf("req pc %#x", s.PC), "flight-request",
			s.Issued, s.Latency, args)
		for _, sp := range s.Spans {
			if sp.Wait > 0 {
				tl.Complete(pid, tid, sp.Comp+" wait", "flight-wait",
					sp.Start, sp.Wait, map[string]any{"component": sp.Comp})
			}
			if sp.Service > 0 {
				tl.Complete(pid, tid, sp.Comp, "flight-service",
					sp.Start+sp.Wait, sp.Service, map[string]any{"component": sp.Comp})
			}
		}
	}
}
