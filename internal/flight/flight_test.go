package flight

import (
	"bytes"
	"encoding/gob"
	"testing"

	"pivot/internal/mem"
	"pivot/internal/sim"
)

// feed records one synthetic demand completion with the given span chain.
// Split is derived from the spans so lifecycle totals stay self-consistent.
func feed(rec *Recorder, pc uint64, issued, done sim.Cycle, spans ...mem.Span) {
	r := &mem.Req{PC: pc, Addr: pc ^ 0xabcd, CoreID: 1, LCTask: true, Issued: issued}
	tr := rec.StartTrace()
	for _, sp := range spans {
		tr.Spans = append(tr.Spans, sp)
		r.Split[sp.Comp] += uint32(sp.Wait + sp.Service)
	}
	r.Trace = tr
	rec.Complete(r, done)
}

func span(c mem.Component, start, wait, service sim.Cycle) mem.Span {
	return mem.Span{Comp: c, Start: start, Wait: wait, Service: service}
}

// gobBytes is the determinism yardstick: checkpoints gob-encode RecorderState,
// so equality here is byte equality on disk.
func gobBytes(t *testing.T, s *RecorderState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatalf("gob: %v", err)
	}
	return buf.Bytes()
}

// drive replays a fixed 200-request stream with a spread of latencies and PCs.
func drive(rec *Recorder) {
	for i := 0; i < 200; i++ {
		pc := uint64(0x400 + 8*(i%5))
		issued := sim.Cycle(100 * i)
		lat := sim.Cycle(40 + (i*37)%400)
		feed(rec, pc, issued, issued+lat,
			span(mem.CompL2, issued, 0, 10),
			span(mem.CompMemCtrl, issued+10, lat-30, 0),
			span(mem.CompDRAM, issued+lat-20, 0, 20))
	}
}

func TestTopKKeepsSlowestInOrder(t *testing.T) {
	rec := New(Config{TopK: 8, SampleCap: 64})
	drive(rec)
	rep := rec.Report()
	if rep.Demand != 200 {
		t.Fatalf("demand = %d, want 200", rep.Demand)
	}
	if len(rep.Slowest) != 8 {
		t.Fatalf("kept %d slow requests, want 8", len(rep.Slowest))
	}
	for i := 1; i < len(rep.Slowest); i++ {
		a, b := rep.Slowest[i-1], rep.Slowest[i]
		if a.Latency < b.Latency || (a.Latency == b.Latency && a.Seq > b.Seq) {
			t.Errorf("slowest[%d..%d] out of order: (lat %d, seq %d) then (lat %d, seq %d)",
				i-1, i, a.Latency, a.Seq, b.Latency, b.Seq)
		}
		if len(rep.Slowest[i].Spans) == 0 {
			t.Errorf("slowest[%d] lost its span chain", i)
		}
	}
	// The overall max must be the top entry: top-K saw every completion.
	if rep.Slowest[0].Latency != rep.Overall.Max {
		t.Errorf("slowest[0] latency %d != overall max %d", rep.Slowest[0].Latency, rep.Overall.Max)
	}
}

func TestIdenticalStreamsAreByteIdentical(t *testing.T) {
	a, b := New(Config{TopK: 4, SampleCap: 32}), New(Config{TopK: 4, SampleCap: 32})
	drive(a)
	drive(b)
	if !bytes.Equal(gobBytes(t, a.State(nil)), gobBytes(t, b.State(nil))) {
		t.Error("identical streams produced different recorder states")
	}
	var ra, rb bytes.Buffer
	if err := a.Report().WriteJSON(&ra); err != nil {
		t.Fatal(err)
	}
	if err := b.Report().WriteJSON(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("identical streams produced different reports")
	}
}

func TestResetRestoresDeterminism(t *testing.T) {
	rec := New(Config{TopK: 4, SampleCap: 32})
	drive(rec)
	first := gobBytes(t, rec.State(nil))
	rec.Reset()
	if rec.Demand() != 0 || len(rec.Report().Slowest) != 0 {
		t.Fatal("Reset left recordings behind")
	}
	drive(rec)
	if !bytes.Equal(first, gobBytes(t, rec.State(nil))) {
		t.Error("replay after Reset differs from the first recording (RNG not restored?)")
	}
}

func TestStateRestoreRoundTrip(t *testing.T) {
	src := New(Config{TopK: 8, SampleCap: 64})
	drive(src)
	// Two requests still in flight at snapshot time.
	live := []*mem.Trace{
		{Spans: []mem.Span{span(mem.CompL2, 5, 0, 10)}},
		{Spans: []mem.Span{span(mem.CompBus, 7, 3, 2)}},
	}
	snap := src.State(live)
	if err := snap.Validate(Config{TopK: 8, SampleCap: 64}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := snap.Validate(Config{TopK: 9, SampleCap: 64}); err == nil {
		t.Fatal("Validate accepted a mismatched config")
	}

	dst := New(Config{TopK: 8, SampleCap: 64})
	back := dst.Restore(snap)
	if len(back) != 2 || len(back[0].Spans) != 1 || back[1].Spans[0].Comp != mem.CompBus {
		t.Fatalf("Restore returned wrong live chains: %+v", back)
	}
	if !bytes.Equal(gobBytes(t, src.State(live)), gobBytes(t, dst.State(back))) {
		t.Error("restored recorder state differs from the original")
	}
	// Both must continue identically after the split.
	drive(src)
	drive(dst)
	if !bytes.Equal(gobBytes(t, src.State(nil)), gobBytes(t, dst.State(nil))) {
		t.Error("recorders diverge after a state round-trip")
	}
}

func TestPrefetchesCountedNotAttributed(t *testing.T) {
	rec := New(Config{})
	r := &mem.Req{PC: 0x400, Prefetch: true, Issued: 10, Trace: rec.StartTrace()}
	rec.Complete(r, 50)
	if rec.Demand() != 0 || rec.Prefetches() != 1 {
		t.Fatalf("demand=%d prefetches=%d, want 0/1", rec.Demand(), rec.Prefetches())
	}
	if rep := rec.Report(); len(rep.PCs) != 0 || rep.Overall.Count != 0 {
		t.Error("prefetch leaked into the attribution report")
	}
}

func TestReportWaitAttribution(t *testing.T) {
	rec := New(Config{TopK: 4, SampleCap: 16})
	// One request: 10 cycles of L2 service, 30 queued + 0 served at the memory
	// controller, 20 of DRAM service.
	feed(rec, 0x400, 0, 60,
		span(mem.CompL2, 0, 0, 10),
		span(mem.CompMemCtrl, 10, 30, 0),
		span(mem.CompDRAM, 40, 0, 20))
	rep := rec.Report()
	mc := rep.Components[mem.CompMemCtrl]
	if mc.MeanCycles != 30 || mc.MeanWait != 30 || mc.TailWaitFrac != 1 {
		t.Errorf("MemCtrl row = %+v, want 30 cycles all wait", mc)
	}
	if l2 := rep.Components[mem.CompL2]; l2.MeanWait != 0 || l2.MeanCycles != 10 {
		t.Errorf("L2 row = %+v, want pure 10-cycle service", l2)
	}
	if len(rep.PCs) != 1 || rep.PCs[0].TopWait != "MemCtrl" {
		t.Errorf("per-PC rows = %+v, want top wait at MemCtrl", rep.PCs)
	}
	if rep.PCs[0].TopComp != "MemCtrl" {
		t.Errorf("top component = %s, want MemCtrl (30 of 60 cycles)", rep.PCs[0].TopComp)
	}
}
