// Package flight is the simulator's per-request flight recorder: an opt-in
// observer that turns every memory-path transition of a traced request into a
// cycle-stamped span (component, queue-wait vs service split) and keeps, in
// bounded memory, (a) the full span chains of the top-K slowest completed
// requests and (b) a deterministic reservoir sample of completed lifecycles,
// plus exact per-static-PC aggregates. From these it renders a
// tail-attribution report (which PCs dominate the P99, and at which MSC they
// queue) and a Perfetto/Chrome trace of the slowest requests' span chains.
//
// The recorder follows the stats framework's contracts: it is strictly
// observational (attaching it cannot change a simulated result), it is
// deterministic (identical request streams produce byte-identical reports —
// the reservoir RNG is a fixed-seed xorshift64 and every export sorts), and
// it is checkpoint-aware (SnapshotState/RestoreState round-trip everything,
// including the span chains of still-in-flight requests, so a killed and
// resumed run reports exactly what an uninterrupted one does).
package flight

import (
	"pivot/internal/mem"
	"pivot/internal/sim"
)

// Defaults for Config's zero values.
const (
	DefaultTopK      = 32
	DefaultSampleCap = 512
)

// Config bounds the recorder's memory.
type Config struct {
	// TopK is how many slowest-request span chains to keep (0 = DefaultTopK).
	TopK int
	// SampleCap is the lifecycle reservoir size (0 = DefaultSampleCap).
	SampleCap int
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.SampleCap <= 0 {
		c.SampleCap = DefaultSampleCap
	}
	return c
}

// Life is the compact record of one completed demand-request lifecycle.
type Life struct {
	Seq      uint64 // completion order among demand requests
	PC       uint64
	Addr     uint64
	CoreID   int
	Part     mem.PartID
	Critical bool
	LCTask   bool
	IsWrite  bool
	Issued   sim.Cycle
	Done     sim.Cycle
	Latency  sim.Cycle // Done - Issued
	// Split is the per-component residency and Wait the queue-wait portion
	// of it (from the span chain), both in cycles.
	Split [mem.NumComponents]uint32
	Wait  [mem.NumComponents]uint32
}

// SlowReq is a top-K entry: a lifecycle plus its full span chain.
type SlowReq struct {
	Life
	Spans []mem.Span
}

// PCAgg is the exact per-static-PC aggregate over every completed demand
// request (not just the sampled ones).
type PCAgg struct {
	PC       uint64
	Count    uint64
	Critical uint64 // completions with the critical bit set
	Sum      uint64 // total latency
	Max      uint64
	Split    [mem.NumComponents]uint64
	Wait     [mem.NumComponents]uint64
}

// Recorder accumulates completed request lifecycles. It is not safe for
// concurrent use; the simulator is single-goroutine.
type Recorder struct {
	cfg Config

	seq        uint64 // demand completions, also the reservoir's stream count
	prefetches uint64 // prefetch completions (excluded from attribution)
	writes     uint64
	sumLat     uint64
	maxLat     uint64
	split      [mem.NumComponents]uint64 // exact totals over demand requests
	wait       [mem.NumComponents]uint64

	top []SlowReq // min-heap: root is the weakest kept entry
	res []Life    // Vitter's algorithm R reservoir
	rng uint64    // fixed-seed xorshift64 for reservoir replacement

	perPC map[uint64]*PCAgg

	pool []*mem.Trace // recycled span buffers
}

// rngSeed is the fixed reservoir seed (FNV-1a of "flight"), so identical
// completion streams always keep identical samples.
const rngSeed uint64 = 0xa1033b25a7d26061

// New returns a recorder with the given bounds.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:   cfg,
		rng:   rngSeed,
		top:   make([]SlowReq, 0, cfg.TopK),
		res:   make([]Life, 0, cfg.SampleCap),
		perPC: make(map[uint64]*PCAgg),
	}
}

// Cfg returns the recorder's (defaulted) configuration.
func (rec *Recorder) Cfg() Config { return rec.cfg }

// StartTrace hands out a (pooled) span buffer to attach to a new request.
func (rec *Recorder) StartTrace() *mem.Trace {
	if n := len(rec.pool); n > 0 {
		t := rec.pool[n-1]
		rec.pool = rec.pool[:n-1]
		return t
	}
	return &mem.Trace{}
}

// recycleTrace returns a span buffer to the pool.
func (rec *Recorder) recycleTrace(t *mem.Trace) {
	if t == nil {
		return
	}
	t.Reset()
	rec.pool = append(rec.pool, t)
}

func (rec *Recorder) next() uint64 {
	x := rec.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	rec.rng = x
	return x
}

// weaker orders top-K entries: true when a should be evicted before b. Lower
// latency is weaker; on ties the later completion is weaker, so the earliest
// completions deterministically keep their slots.
func weaker(a, b *SlowReq) bool {
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	return a.Seq > b.Seq
}

func (rec *Recorder) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !weaker(&rec.top[i], &rec.top[parent]) {
			return
		}
		rec.top[i], rec.top[parent] = rec.top[parent], rec.top[i]
		i = parent
	}
}

func (rec *Recorder) siftDown(i int) {
	n := len(rec.top)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && weaker(&rec.top[l], &rec.top[min]) {
			min = l
		}
		if r < n && weaker(&rec.top[r], &rec.top[min]) {
			min = r
		}
		if min == i {
			return
		}
		rec.top[i], rec.top[min] = rec.top[min], rec.top[i]
		i = min
	}
}

// Complete records a request whose response just reached the core (or, for a
// write absorbed by a cache, whose lifetime just ended) at cycle now. It
// consumes the request's trace buffer; the caller recycles the request
// afterwards as usual.
func (rec *Recorder) Complete(r *mem.Req, now sim.Cycle) {
	tr := r.Trace
	if r.Prefetch {
		// Prefetches fill caches but wake no instruction; they are counted
		// but excluded from tail attribution.
		rec.prefetches++
		rec.recycleTrace(tr)
		return
	}

	life := Life{
		Seq: rec.seq, PC: r.PC, Addr: r.Addr, CoreID: r.CoreID, Part: r.Part,
		Critical: r.Critical, LCTask: r.LCTask, IsWrite: r.IsWrite,
		Issued: r.Issued, Done: now, Split: r.Split,
	}
	if now > r.Issued {
		life.Latency = now - r.Issued
	}
	if tr != nil {
		for _, sp := range tr.Spans {
			life.Wait[sp.Comp] += uint32(sp.Wait)
		}
	}
	rec.seq++
	if r.IsWrite {
		rec.writes++
	}
	lat := uint64(life.Latency)
	rec.sumLat += lat
	if lat > rec.maxLat {
		rec.maxLat = lat
	}

	agg := rec.perPC[r.PC]
	if agg == nil {
		agg = &PCAgg{PC: r.PC}
		rec.perPC[r.PC] = agg
	}
	agg.Count++
	if r.Critical {
		agg.Critical++
	}
	agg.Sum += lat
	if lat > agg.Max {
		agg.Max = lat
	}
	for c := 0; c < int(mem.NumComponents); c++ {
		agg.Split[c] += uint64(life.Split[c])
		agg.Wait[c] += uint64(life.Wait[c])
		rec.split[c] += uint64(life.Split[c])
		rec.wait[c] += uint64(life.Wait[c])
	}

	// Reservoir (Vitter's algorithm R over the demand completion stream).
	if len(rec.res) < rec.cfg.SampleCap {
		rec.res = append(rec.res, life)
	} else if j := rec.next() % rec.seq; j < uint64(rec.cfg.SampleCap) {
		rec.res[j] = life
	}

	// Top-K slowest with full span chains.
	if tr == nil {
		return
	}
	cand := SlowReq{Life: life}
	if len(rec.top) < rec.cfg.TopK {
		cand.Spans = append([]mem.Span(nil), tr.Spans...)
		rec.top = append(rec.top, cand)
		rec.siftUp(len(rec.top) - 1)
		rec.recycleTrace(tr)
		return
	}
	if weaker(&rec.top[0], &cand) {
		// Reuse the evicted entry's span storage for the newcomer.
		cand.Spans = append(rec.top[0].Spans[:0], tr.Spans...)
		rec.top[0] = cand
		rec.siftDown(0)
	}
	rec.recycleTrace(tr)
}

// Demand reports the number of demand completions recorded.
func (rec *Recorder) Demand() uint64 { return rec.seq }

// Prefetches reports the number of prefetch completions seen (not recorded).
func (rec *Recorder) Prefetches() uint64 { return rec.prefetches }

// Reset discards everything recorded, restoring the reservoir RNG, so a
// post-warm-up measurement window is reproducible — the recorder's analogue
// of stats.Distribution.Reset.
func (rec *Recorder) Reset() {
	rec.seq = 0
	rec.prefetches = 0
	rec.writes = 0
	rec.sumLat = 0
	rec.maxLat = 0
	rec.split = [mem.NumComponents]uint64{}
	rec.wait = [mem.NumComponents]uint64{}
	for i := range rec.top {
		rec.top[i].Spans = nil
	}
	rec.top = rec.top[:0]
	rec.res = rec.res[:0]
	rec.rng = rngSeed
	rec.perPC = make(map[uint64]*PCAgg)
}
