package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pivot/internal/mem"
	"pivot/internal/metrics"
)

// DistStat summarises the demand-latency distribution: count/mean/max are
// exact over every completion, the percentiles are nearest-rank estimates
// from the reservoir sample.
type DistStat struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
}

// CompRow is one component's share of where cycles go: exact means over all
// demand requests, and means over the sampled tail (latency >= overall P95).
type CompRow struct {
	Comp         string  `json:"component"`
	MeanCycles   float64 `json:"meanCycles"`
	MeanWait     float64 `json:"meanWaitCycles"`
	TailCycles   float64 `json:"tailMeanCycles"`
	TailWait     float64 `json:"tailMeanWaitCycles"`
	TailWaitFrac float64 `json:"tailWaitFrac"` // wait / residency in the tail
}

// PCRow is one static PC's tail contribution.
type PCRow struct {
	PC        uint64  `json:"pc"`
	Count     uint64  `json:"count"`
	CritFrac  float64 `json:"criticalFrac"`
	Mean      float64 `json:"meanLatency"`
	Max       uint64  `json:"maxLatency"`
	TailCount int     `json:"tailSamples"`
	TailShare float64 `json:"tailShare"` // fraction of sampled tail lifecycles
	// TopComp is where this PC's requests spend most of their cycles, and
	// TopWait where they queue the longest (exact, over all completions).
	TopComp string `json:"topComponent"`
	TopWait string `json:"topWaitComponent"`
}

// SlowRow is one of the K slowest requests with its span chain.
type SlowRow struct {
	Seq      uint64     `json:"seq"`
	PC       uint64     `json:"pc"`
	Addr     uint64     `json:"addr"`
	CoreID   int        `json:"core"`
	Part     mem.PartID `json:"partid"`
	Critical bool       `json:"critical"`
	LCTask   bool       `json:"lc"`
	IsWrite  bool       `json:"write"`
	Issued   uint64     `json:"issued"`
	Latency  uint64     `json:"latency"`
	Spans    []SpanRow  `json:"spans"`
}

// SpanRow is a span's export form.
type SpanRow struct {
	Comp    string `json:"component"`
	Start   uint64 `json:"start"`
	Wait    uint64 `json:"wait"`
	Service uint64 `json:"service"`
}

// Report is the tail-attribution report: the Fig 5 question ("where does a
// critical load spend its cycles?") answered per static PC and per component,
// with the slowest span chains attached. It is deterministic: identical
// recordings render byte-identical reports.
type Report struct {
	// Source identifies the producing build/run (set by the caller, e.g. the
	// CLI's build fingerprint plus scenario name); it is a header only and
	// takes no part in any computed field.
	Source     string    `json:"source,omitempty"`
	Demand     uint64    `json:"demandRequests"`
	Writes     uint64    `json:"writes"`
	Prefetches uint64    `json:"prefetches"`
	SampleN    int       `json:"sampledLifecycles"`
	Overall    DistStat  `json:"overall"`
	Components []CompRow `json:"components"`
	PCs        []PCRow   `json:"pcs"`
	Slowest    []SlowRow `json:"slowest"`
}

// Report builds the tail-attribution report from everything recorded so far.
func (rec *Recorder) Report() *Report {
	rep := &Report{
		Demand:     rec.seq,
		Writes:     rec.writes,
		Prefetches: rec.prefetches,
		SampleN:    len(rec.res),
	}

	// Overall distribution: exact count/mean/max, sampled percentiles.
	rep.Overall = DistStat{Count: rec.seq, Max: rec.maxLat}
	if rec.seq > 0 {
		rep.Overall.Mean = float64(rec.sumLat) / float64(rec.seq)
	}
	lats := make([]uint64, len(rec.res))
	for i, l := range rec.res {
		lats[i] = uint64(l.Latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(p float64) uint64 {
		if len(lats) == 0 {
			return 0
		}
		rank := int(p/100*float64(len(lats))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(lats) {
			rank = len(lats) - 1
		}
		return lats[rank]
	}
	rep.Overall.P50, rep.Overall.P95, rep.Overall.P99 = at(50), at(95), at(99)

	// Tail = sampled lifecycles at or above the P95 estimate.
	tailThresh := rep.Overall.P95
	var tail []Life
	if len(rec.res) > 0 {
		for _, l := range rec.res {
			if uint64(l.Latency) >= tailThresh {
				tail = append(tail, l)
			}
		}
	}

	// Per-component rows.
	var tailSplit, tailWait [mem.NumComponents]uint64
	for _, l := range tail {
		for c := 0; c < int(mem.NumComponents); c++ {
			tailSplit[c] += uint64(l.Split[c])
			tailWait[c] += uint64(l.Wait[c])
		}
	}
	for c := 0; c < int(mem.NumComponents); c++ {
		row := CompRow{Comp: mem.Component(c).String()}
		if rec.seq > 0 {
			row.MeanCycles = float64(rec.split[c]) / float64(rec.seq)
			row.MeanWait = float64(rec.wait[c]) / float64(rec.seq)
		}
		if n := len(tail); n > 0 {
			row.TailCycles = float64(tailSplit[c]) / float64(n)
			row.TailWait = float64(tailWait[c]) / float64(n)
			if tailSplit[c] > 0 {
				row.TailWaitFrac = float64(tailWait[c]) / float64(tailSplit[c])
			}
		}
		rep.Components = append(rep.Components, row)
	}

	// Per-PC rows: tail share from the sample, the rest exact.
	tailByPC := make(map[uint64]int)
	for _, l := range tail {
		tailByPC[l.PC]++
	}
	pcs := make([]*PCAgg, 0, len(rec.perPC))
	for _, agg := range rec.perPC {
		pcs = append(pcs, agg)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i].PC < pcs[j].PC })
	for _, agg := range pcs {
		row := PCRow{
			PC: agg.PC, Count: agg.Count, Max: agg.Max,
			CritFrac:  float64(agg.Critical) / float64(agg.Count),
			Mean:      float64(agg.Sum) / float64(agg.Count),
			TailCount: tailByPC[agg.PC],
		}
		if len(tail) > 0 {
			row.TailShare = float64(row.TailCount) / float64(len(tail))
		}
		topComp, topWait := 0, 0
		for c := 1; c < int(mem.NumComponents); c++ {
			if agg.Split[c] > agg.Split[topComp] {
				topComp = c
			}
			if agg.Wait[c] > agg.Wait[topWait] {
				topWait = c
			}
		}
		row.TopComp = mem.Component(topComp).String()
		if agg.Wait[topWait] == 0 {
			row.TopWait = "-"
		} else {
			row.TopWait = mem.Component(topWait).String()
		}
		rep.PCs = append(rep.PCs, row)
	}
	sort.SliceStable(rep.PCs, func(i, j int) bool {
		a, b := rep.PCs[i], rep.PCs[j]
		if a.TailShare != b.TailShare {
			return a.TailShare > b.TailShare
		}
		if a.Mean != b.Mean {
			return a.Mean > b.Mean
		}
		return a.PC < b.PC
	})

	// Slowest requests, worst first (ties broken by completion order).
	slow := make([]SlowReq, len(rec.top))
	copy(slow, rec.top)
	sort.Slice(slow, func(i, j int) bool { return weaker(&slow[j], &slow[i]) })
	for _, s := range slow {
		row := SlowRow{
			Seq: s.Seq, PC: s.PC, Addr: s.Addr, CoreID: s.CoreID, Part: s.Part,
			Critical: s.Critical, LCTask: s.LCTask, IsWrite: s.IsWrite,
			Issued: uint64(s.Issued), Latency: uint64(s.Latency),
		}
		for _, sp := range s.Spans {
			row.Spans = append(row.Spans, SpanRow{
				Comp: sp.Comp.String(), Start: uint64(sp.Start),
				Wait: uint64(sp.Wait), Service: uint64(sp.Service),
			})
		}
		rep.Slowest = append(rep.Slowest, row)
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Tables renders the report as aligned experiment tables (overall, per
// component, per PC, slowest chains).
func (r *Report) Tables() []*metrics.Table {
	title := "flight: tail attribution"
	if r.Source != "" {
		title += " (" + r.Source + ")"
	}
	overall := &metrics.Table{Title: title,
		Headers: []string{"metric", "value"}}
	overall.AddRowf("demand requests", r.Demand)
	overall.AddRowf("writes", r.Writes)
	overall.AddRowf("prefetches", r.Prefetches)
	overall.AddRowf("sampled lifecycles", r.SampleN)
	overall.AddRowf("mean latency", r.Overall.Mean)
	overall.AddRowf("p50 / p95 / p99", fmt.Sprintf("%d / %d / %d",
		r.Overall.P50, r.Overall.P95, r.Overall.P99))
	overall.AddRowf("max latency", r.Overall.Max)

	comp := &metrics.Table{Title: "flight: per-component cycles (tail = sampled >= p95)",
		Headers: []string{"component", "mean", "mean wait", "tail mean", "tail wait", "tail wait frac"}}
	for _, c := range r.Components {
		comp.AddRowf(c.Comp, c.MeanCycles, c.MeanWait, c.TailCycles, c.TailWait, c.TailWaitFrac)
	}

	pcs := &metrics.Table{Title: "flight: per-PC tail attribution",
		Headers: []string{"pc", "count", "crit", "mean", "max", "tail share", "top comp", "top wait"}}
	for _, p := range r.PCs {
		pcs.AddRowf(fmt.Sprintf("%#x", p.PC), p.Count, p.CritFrac, p.Mean, p.Max,
			p.TailShare, p.TopComp, p.TopWait)
	}

	slow := &metrics.Table{Title: "flight: slowest requests",
		Headers: []string{"#", "pc", "core", "crit", "latency", "span chain"}}
	for i, s := range r.Slowest {
		var b strings.Builder
		for j, sp := range s.Spans {
			if j > 0 {
				b.WriteString(" > ")
			}
			if sp.Wait > 0 {
				fmt.Fprintf(&b, "%s %d+%d", sp.Comp, sp.Wait, sp.Service)
			} else {
				fmt.Fprintf(&b, "%s %d", sp.Comp, sp.Service)
			}
		}
		slow.AddRowf(i+1, fmt.Sprintf("%#x", s.PC), s.CoreID, s.Critical, s.Latency, b.String())
	}
	return []*metrics.Table{overall, comp, pcs, slow}
}

// WriteText renders the aligned tables to w.
func (r *Report) WriteText(w io.Writer) error {
	for _, t := range r.Tables() {
		if _, err := fmt.Fprintln(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the report as CSV blocks separated by blank lines, in the
// same order as Tables.
func (r *Report) WriteCSV(w io.Writer) error {
	var b strings.Builder
	for i, t := range r.Tables() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.CSV())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
