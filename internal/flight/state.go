package flight

import (
	"fmt"
	"sort"

	"pivot/internal/mem"
)

// TraceState is the serialised span chain of one still-in-flight request.
type TraceState struct {
	Spans []mem.Span
}

// RecorderState is the recorder's fully exported serialisable form. It holds
// no maps (per-PC aggregates are sorted by PC) so its gob encoding is
// deterministic, matching the machine checkpoint layer's byte-compare
// discipline. Live carries the span chains of requests that were in flight
// at snapshot time, in the machine's deterministic walk order, so a resumed
// run finishes recording them exactly as an uninterrupted one would.
type RecorderState struct {
	Cfg        Config
	Seq        uint64
	Prefetches uint64
	Writes     uint64
	SumLat     uint64
	MaxLat     uint64
	Split      [mem.NumComponents]uint64
	Wait       [mem.NumComponents]uint64
	Top        []SlowReq // heap order
	Res        []Life
	Rng        uint64
	PCs        []PCAgg
	Live       []TraceState
}

// State captures the recorder, including the given in-flight span chains.
func (rec *Recorder) State(live []*mem.Trace) *RecorderState {
	s := &RecorderState{
		Cfg: rec.cfg, Seq: rec.seq, Prefetches: rec.prefetches,
		Writes: rec.writes, SumLat: rec.sumLat, MaxLat: rec.maxLat,
		Split: rec.split, Wait: rec.wait, Rng: rec.rng,
	}
	s.Top = make([]SlowReq, len(rec.top))
	for i, t := range rec.top {
		s.Top[i] = t
		s.Top[i].Spans = append([]mem.Span(nil), t.Spans...)
	}
	s.Res = append([]Life(nil), rec.res...)
	s.PCs = make([]PCAgg, 0, len(rec.perPC))
	for _, agg := range rec.perPC {
		s.PCs = append(s.PCs, *agg)
	}
	sort.Slice(s.PCs, func(i, j int) bool { return s.PCs[i].PC < s.PCs[j].PC })
	s.Live = make([]TraceState, len(live))
	for i, t := range live {
		if t != nil {
			s.Live[i].Spans = append([]mem.Span(nil), t.Spans...)
		}
	}
	return s
}

// Validate sanity-checks the state against a recorder configuration.
func (s *RecorderState) Validate(cfg Config) error {
	cfg = cfg.withDefaults()
	if s.Cfg.withDefaults() != cfg {
		return fmt.Errorf("flight: snapshot config %+v does not match recorder config %+v", s.Cfg, cfg)
	}
	if len(s.Top) > cfg.TopK {
		return fmt.Errorf("flight: snapshot holds %d top-K entries, cap is %d", len(s.Top), cfg.TopK)
	}
	if len(s.Res) > cfg.SampleCap {
		return fmt.Errorf("flight: snapshot holds %d reservoir entries, cap is %d", len(s.Res), cfg.SampleCap)
	}
	return nil
}

// Restore replaces the recorder's contents with the snapshot and returns the
// in-flight span chains to reattach, in the same walk order State saw them.
func (rec *Recorder) Restore(s *RecorderState) []*mem.Trace {
	rec.cfg = s.Cfg.withDefaults()
	rec.seq = s.Seq
	rec.prefetches = s.Prefetches
	rec.writes = s.Writes
	rec.sumLat = s.SumLat
	rec.maxLat = s.MaxLat
	rec.split = s.Split
	rec.wait = s.Wait
	rec.rng = s.Rng
	rec.top = make([]SlowReq, len(s.Top))
	for i, t := range s.Top {
		rec.top[i] = t
		rec.top[i].Spans = append([]mem.Span(nil), t.Spans...)
	}
	rec.res = append(rec.res[:0], s.Res...)
	rec.perPC = make(map[uint64]*PCAgg, len(s.PCs))
	for i := range s.PCs {
		agg := s.PCs[i]
		rec.perPC[agg.PC] = &agg
	}
	live := make([]*mem.Trace, len(s.Live))
	for i, ts := range s.Live {
		live[i] = &mem.Trace{Spans: append([]mem.Span(nil), ts.Spans...)}
	}
	return live
}
