package bwctrl

import (
	"pivot/internal/interconnect"
	"pivot/internal/sim"
)

// ControllerState is the serialisable form of the bandwidth controller: the
// embedded station's queues, the per-partition monitor and the window clock.
// Allocations are included because resource managers reprogram them at run
// time (they are not always derivable from the initial wiring).
type ControllerState struct {
	Station     interconnect.StationState
	Alloc       [8]Allocation
	Counted     [8]uint64
	Usage       [8]float64
	Class       [8]Class
	WindowStart sim.Cycle
	WindowsDone uint64
}

// SnapshotState captures the controller's complete mutable state.
func (c *Controller) SnapshotState() ControllerState {
	return ControllerState{
		Station:     c.Station.SnapshotState(),
		Alloc:       c.alloc,
		Counted:     c.counted,
		Usage:       c.usage,
		Class:       c.class,
		WindowStart: c.windowStart,
		WindowsDone: c.windowsDone,
	}
}

// RestoreState overwrites the controller's mutable state from a snapshot.
func (c *Controller) RestoreState(s ControllerState) {
	c.Station.RestoreState(s.Station)
	c.alloc = s.Alloc
	c.counted = s.Counted
	c.usage = s.Usage
	c.class = s.Class
	c.windowStart = s.WindowStart
	c.windowsDone = s.WindowsDone
}
