// Package bwctrl implements the memory bandwidth controller MSC, including
// the ARM MPAM mechanism the paper reimplements in gem5 (§IV-E): each
// partition (PARTID) declares an expected bandwidth range; a monitor measures
// usage over 100 000-cycle windows; requests are classified into three
// priority classes — high when the partition is under its minimum allocation,
// low when it is over its maximum, medium otherwise — and the queue serves
// higher classes first.
package bwctrl

import (
	"fmt"

	"pivot/internal/interconnect"
	"pivot/internal/mem"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

// Allocation is a partition's expected bandwidth range, as fractions of the
// channel's peak bandwidth.
type Allocation struct {
	Min float64
	Max float64
}

// Class is an MPAM priority class.
type Class int

// MPAM priority classes; lower value = served first.
const (
	ClassHigh Class = iota
	ClassMedium
	ClassLow
)

// Config sets the controller geometry and monitoring.
type Config struct {
	Station interconnect.Config
	// WindowCycles is the bandwidth-monitor window (100 000 cycles on
	// Kunpeng 920, which the paper follows).
	WindowCycles sim.Cycle
	// PeakLinesPerWindow is the channel's peak deliverable lines per window,
	// used to turn counted lines into a usage fraction.
	PeakLinesPerWindow float64
}

// Controller is the bandwidth-controller MSC. It embeds a Station, so it is
// an interconnect.Acceptor and a sim.Ticker.
type Controller struct {
	*interconnect.Station
	cfg Config

	// MPAMEnabled turns class-based selection on (MPAM, FullPath, PIVOT all
	// keep MPAM at this component; Default and MBA do not).
	MPAMEnabled bool

	alloc   [8]Allocation
	counted [8]uint64 // lines accepted this window
	usage   [8]float64
	class   [8]Class

	windowStart sim.Cycle
	windowsDone uint64
}

// New wires a controller that forwards into down.
func New(cfg Config, down interconnect.Acceptor) *Controller {
	if cfg.WindowCycles == 0 {
		cfg.WindowCycles = 100_000
	}
	c := &Controller{
		Station: interconnect.New(cfg.Station, down),
		cfg:     cfg,
	}
	for i := range c.class {
		c.class[i] = ClassMedium
	}
	c.Station.Classify = c.classify
	return c
}

// SetAllocation declares PartID p's expected bandwidth range.
func (c *Controller) SetAllocation(p mem.PartID, a Allocation) {
	if int(p) < len(c.alloc) {
		c.alloc[p] = a
	}
}

// Allocation returns PartID p's declared range.
func (c *Controller) Allocation(p mem.PartID) Allocation {
	if int(p) < len(c.alloc) {
		return c.alloc[p]
	}
	return Allocation{}
}

// Usage returns p's bandwidth usage fraction measured in the last completed
// window. PIVOT's adaptive RRBP threshold reads this.
func (c *Controller) Usage(p mem.PartID) float64 {
	if int(p) < len(c.usage) {
		return c.usage[p]
	}
	return 0
}

// ClassOf returns p's current MPAM class.
func (c *Controller) ClassOf(p mem.PartID) Class {
	if int(p) < len(c.class) {
		return c.class[p]
	}
	return ClassMedium
}

func (c *Controller) classify(r *mem.Req) int {
	if !c.MPAMEnabled {
		return 0
	}
	return int(c.ClassOf(r.Part))
}

// Accept counts the request against its partition's monitor, then enqueues.
func (c *Controller) Accept(r *mem.Req, now sim.Cycle) bool {
	ok := c.Station.Accept(r, now)
	if ok && int(r.Part) < len(c.counted) {
		c.counted[r.Part]++
	}
	return ok
}

// Tick rolls the monitoring window and forwards queued requests.
func (c *Controller) Tick(now sim.Cycle) {
	if now-c.windowStart >= c.cfg.WindowCycles {
		c.rollWindow()
		c.windowStart = now
	}
	c.Station.Tick(now)
}

// TickNext is Tick fused with a post-tick NextWork verdict, mirroring
// Station.TickNext. A window rollover counts as work: it mutates usage and
// class state that neighbouring components' forecasts may depend on.
func (c *Controller) TickNext(now sim.Cycle) (next sim.Cycle, idle, worked bool) {
	if now-c.windowStart >= c.cfg.WindowCycles {
		c.rollWindow()
		c.windowStart = now
		worked = true
	}
	n2, i2, w2 := c.Station.TickNext(now)
	worked = worked || w2
	if !i2 {
		return 0, false, worked
	}
	if b := c.windowStart + c.cfg.WindowCycles; b < n2 {
		n2 = b
	}
	return n2, true, worked
}

// NextWork implements sim.IdleReporter, shadowing the embedded Station's so
// that engine skip-ahead registered against the Controller also honours the
// monitoring-window boundary: rollWindow mutates usage and class state even
// in a window with zero traffic, so a skip may never jump across it.
func (c *Controller) NextWork(now sim.Cycle) (sim.Cycle, bool) {
	boundary := c.windowStart + c.cfg.WindowCycles
	if boundary <= now {
		return 0, false
	}
	next, idle := c.Station.NextWork(now)
	if !idle {
		return 0, false
	}
	if boundary < next {
		next = boundary
	}
	return next, true
}

// WindowsDone reports how many monitoring windows have completed; usage
// readings are meaningless before the first.
func (c *Controller) WindowsDone() uint64 { return c.windowsDone }

// RegisterStats registers the controller's instruments under prefix: the
// embedded station's queue stats plus, for each of the first `parts`
// partitions, the monitored usage fraction and MPAM class — the per-PartID
// allocation decisions the RRBP threshold adaptation consumes each epoch.
func (c *Controller) RegisterStats(reg *stats.Registry, prefix string, parts int) {
	c.Station.RegisterStats(reg, prefix)
	reg.Counter(prefix+".windows_done", func() uint64 { return c.windowsDone })
	if parts > len(c.alloc) {
		parts = len(c.alloc)
	}
	for p := 0; p < parts; p++ {
		p := p
		reg.Gauge(fmt.Sprintf("%s.part%d.usage", prefix, p),
			func() float64 { return c.usage[p] })
		reg.Gauge(fmt.Sprintf("%s.part%d.class", prefix, p),
			func() float64 { return float64(c.class[p]) })
	}
}

func (c *Controller) rollWindow() {
	c.windowsDone++
	peak := c.cfg.PeakLinesPerWindow
	if peak <= 0 {
		peak = 1
	}
	for p := range c.counted {
		u := float64(c.counted[p]) / peak
		c.usage[p] = u
		c.counted[p] = 0
		a := c.alloc[p]
		switch {
		case a.Min == 0 && a.Max == 0:
			c.class[p] = ClassMedium // unconfigured partition
		case u < a.Min:
			c.class[p] = ClassHigh
		case a.Max > 0 && u > a.Max:
			c.class[p] = ClassLow
		default:
			c.class[p] = ClassMedium
		}
	}
}
