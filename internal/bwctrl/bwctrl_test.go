package bwctrl

import (
	"testing"

	"pivot/internal/interconnect"
	"pivot/internal/mem"
	"pivot/internal/sim"
)

type sink struct{ got []*mem.Req }

func (s *sink) Accept(r *mem.Req, now sim.Cycle) bool {
	s.got = append(s.got, r)
	return true
}

func testCfg() Config {
	return Config{
		Station: interconnect.Config{
			Name: "bw", Component: mem.CompBWCtrl,
			Latency: 0, Bandwidth: 1, CapNormal: 8, CapPrio: 4,
		},
		WindowCycles:       100,
		PeakLinesPerWindow: 10,
	}
}

func TestUsageMeasurement(t *testing.T) {
	c := New(testCfg(), &sink{})
	for i := 0; i < 5; i++ {
		c.Accept(&mem.Req{Part: 2}, sim.Cycle(i))
		c.Tick(sim.Cycle(i))
	}
	// Roll the window.
	for now := sim.Cycle(5); now <= 100; now++ {
		c.Tick(now)
	}
	if got := c.Usage(2); got != 0.5 {
		t.Fatalf("usage = %v, want 0.5 (5 lines / 10 peak)", got)
	}
	if c.WindowsDone() != 1 {
		t.Fatalf("windows done = %d, want 1", c.WindowsDone())
	}
}

func TestMPAMClasses(t *testing.T) {
	c := New(testCfg(), &sink{})
	c.MPAMEnabled = true
	c.SetAllocation(0, Allocation{Min: 1.0, Max: 1.0}) // LC: always under min
	c.SetAllocation(1, Allocation{Min: 0, Max: 0.1})   // BE: capped low

	// Window 1: BE pushes 5 lines (usage 0.5 > max 0.1), LC pushes 1.
	for i := 0; i < 5; i++ {
		c.Accept(&mem.Req{Part: 1}, 0)
	}
	c.Accept(&mem.Req{Part: 0}, 0)
	for now := sim.Cycle(0); now <= 101; now++ {
		c.Tick(now)
	}
	if got := c.ClassOf(0); got != ClassHigh {
		t.Fatalf("LC class = %v, want high", got)
	}
	if got := c.ClassOf(1); got != ClassLow {
		t.Fatalf("BE class = %v, want low (over max)", got)
	}
	// Unconfigured partition stays medium.
	if got := c.ClassOf(5); got != ClassMedium {
		t.Fatalf("unconfigured class = %v, want medium", got)
	}
}

func TestClassOrderingInQueue(t *testing.T) {
	dn := &sink{}
	c := New(testCfg(), dn)
	c.MPAMEnabled = true
	c.SetAllocation(0, Allocation{Min: 1.0, Max: 1.0})
	c.SetAllocation(1, Allocation{Min: 0, Max: 0.01})

	// Force classes by rolling one window with traffic.
	for i := 0; i < 5; i++ {
		c.Accept(&mem.Req{Part: 1}, 0)
		c.Tick(sim.Cycle(i))
	}
	for now := sim.Cycle(5); now <= 101; now++ {
		c.Tick(now)
	}
	dn.got = nil

	be := &mem.Req{Part: 1}
	lc := &mem.Req{Part: 0}
	c.Accept(be, 102)
	c.Accept(lc, 102)
	c.Tick(102)
	c.Tick(103)
	if len(dn.got) != 2 || dn.got[0] != lc {
		t.Fatal("high-class LC request did not bypass low-class BE request")
	}
}

func TestMPAMDisabledIsFCFS(t *testing.T) {
	dn := &sink{}
	c := New(testCfg(), dn)
	c.SetAllocation(0, Allocation{Min: 1.0, Max: 1.0})
	be := &mem.Req{Part: 1}
	lc := &mem.Req{Part: 0}
	c.Accept(be, 0)
	c.Accept(lc, 0)
	c.Tick(0)
	c.Tick(1)
	if dn.got[0] != be {
		t.Fatal("MPAM disabled must stay FCFS")
	}
}
