// Package prefetch implements a per-core stride/stream prefetcher of the
// kind every server core in the paper's evaluation ships with. The simulator
// keeps it optional (Options.Prefetch): the headline experiments fold
// prefetch concurrency into the effective L1 miss buffers (DESIGN.md §6.1),
// and the prefetcher ablation quantifies what explicit prefetching changes.
//
// The design is a classic zone-based stride detector: misses are grouped
// into 4 KiB zones; two consecutive misses with the same stride train the
// zone; a trained zone prefetches `Degree` further lines along the stride
// ahead of the miss address.
package prefetch

// Config sets the prefetcher geometry.
type Config struct {
	// Zones is the number of concurrently tracked 4 KiB regions.
	Zones int
	// Degree is how many lines are prefetched per trained miss.
	Degree int
	// LineBytes is the cache-line size (shared with the memory system).
	LineBytes int
}

// DefaultConfig returns a 16-zone, degree-4 next-line/stride prefetcher.
func DefaultConfig() Config {
	return Config{Zones: 16, Degree: 4, LineBytes: 64}
}

type zone struct {
	tag      uint64 // zone address (addr >> zoneShift)
	lastLine uint64
	stride   int64
	trained  bool
	valid    bool
	lru      uint64
}

// Prefetcher tracks per-zone miss strides. Not safe for concurrent use.
type Prefetcher struct {
	cfg       Config
	zones     []zone
	stamp     uint64
	zoneShift uint

	// Stats.
	Trains   uint64
	Issued   uint64
	Misfires uint64 // stride changes that reset training
}

// New builds a prefetcher.
func New(cfg Config) *Prefetcher {
	if cfg.Zones <= 0 {
		cfg.Zones = 16
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 4
	}
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	p := &Prefetcher{cfg: cfg, zones: make([]zone, cfg.Zones)}
	p.zoneShift = 12 // 4 KiB zones
	return p
}

// Config returns the prefetcher configuration.
func (p *Prefetcher) Config() Config { return p.cfg }

func (p *Prefetcher) lookup(tag uint64) *zone {
	var victim *zone
	var victimLRU uint64 = ^uint64(0)
	for i := range p.zones {
		z := &p.zones[i]
		if z.valid && z.tag == tag {
			return z
		}
		if !z.valid {
			victimLRU = 0
			victim = z
		} else if z.lru < victimLRU {
			victimLRU = z.lru
			victim = z
		}
	}
	*victim = zone{tag: tag, valid: true}
	return victim
}

// OnMiss observes a demand-miss line address and returns the line addresses
// to prefetch (possibly none). Addresses are line-aligned and stay within
// the missing access's zone neighbourhood.
func (p *Prefetcher) OnMiss(lineAddr uint64) []uint64 {
	p.stamp++
	line := lineAddr / uint64(p.cfg.LineBytes)
	tag := lineAddr >> p.zoneShift
	z := p.lookup(tag)
	defer func() { z.lru = p.stamp; z.lastLine = line }()

	if z.lastLine == 0 && !z.trained {
		return nil // first touch: nothing to learn from yet
	}
	stride := int64(line) - int64(z.lastLine)
	if stride == 0 {
		return nil
	}
	if !z.trained {
		if z.stride == stride {
			z.trained = true
			p.Trains++
		} else {
			z.stride = stride
			return nil
		}
	} else if z.stride != stride {
		// Pattern broke: retrain on the new stride.
		z.trained = false
		z.stride = stride
		p.Misfires++
		return nil
	}

	out := make([]uint64, 0, p.cfg.Degree)
	next := int64(line)
	for i := 0; i < p.cfg.Degree; i++ {
		next += z.stride
		if next <= 0 {
			break
		}
		out = append(out, uint64(next)*uint64(p.cfg.LineBytes))
	}
	p.Issued += uint64(len(out))
	return out
}

// Reset clears all training state (between workload phases in tests).
func (p *Prefetcher) Reset() {
	for i := range p.zones {
		p.zones[i] = zone{}
	}
}
