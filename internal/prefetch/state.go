package prefetch

// ZoneState mirrors one tracked zone.
type ZoneState struct {
	Tag      uint64
	LastLine uint64
	Stride   int64
	Trained  bool
	Valid    bool
	LRU      uint64
}

// PrefetcherState is the serialisable form of a Prefetcher.
type PrefetcherState struct {
	Zones    []ZoneState
	Stamp    uint64
	Trains   uint64
	Issued   uint64
	Misfires uint64
}

// SnapshotState captures the prefetcher's complete mutable state.
func (p *Prefetcher) SnapshotState() PrefetcherState {
	s := PrefetcherState{
		Zones:    make([]ZoneState, len(p.zones)),
		Stamp:    p.stamp,
		Trains:   p.Trains,
		Issued:   p.Issued,
		Misfires: p.Misfires,
	}
	for i, z := range p.zones {
		s.Zones[i] = ZoneState{Tag: z.tag, LastLine: z.lastLine, Stride: z.stride,
			Trained: z.trained, Valid: z.valid, LRU: z.lru}
	}
	return s
}

// RestoreState overwrites the prefetcher's mutable state from a snapshot
// taken on an identically configured prefetcher.
func (p *Prefetcher) RestoreState(s PrefetcherState) {
	for i := range p.zones {
		if i < len(s.Zones) {
			z := s.Zones[i]
			p.zones[i] = zone{tag: z.Tag, lastLine: z.LastLine, stride: z.Stride,
				trained: z.Trained, valid: z.Valid, lru: z.LRU}
		}
	}
	p.stamp = s.Stamp
	p.Trains = s.Trains
	p.Issued = s.Issued
	p.Misfires = s.Misfires
}
