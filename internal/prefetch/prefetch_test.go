package prefetch

import (
	"testing"
	"testing/quick"
)

func TestSequentialStreamTrainsAndPrefetches(t *testing.T) {
	p := New(DefaultConfig())
	base := uint64(0x10000)
	if got := p.OnMiss(base); got != nil {
		t.Fatal("first miss should not prefetch")
	}
	if got := p.OnMiss(base + 64); got != nil {
		t.Fatal("second miss records the stride but is not yet trained")
	}
	got := p.OnMiss(base + 128)
	if len(got) != 4 {
		t.Fatalf("trained stream issued %d prefetches, want degree 4", len(got))
	}
	for i, a := range got {
		want := base + 128 + uint64(i+1)*64
		if a != want {
			t.Fatalf("prefetch %d = %#x, want %#x", i, a, want)
		}
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(DefaultConfig())
	base := uint64(0x20000)
	p.OnMiss(base + 512)
	p.OnMiss(base + 448)
	got := p.OnMiss(base + 384)
	if len(got) == 0 {
		t.Fatal("descending stream not trained")
	}
	if got[0] != base+320 {
		t.Fatalf("first prefetch = %#x, want %#x", got[0], base+320)
	}
}

func TestStrideChangeRetrains(t *testing.T) {
	p := New(DefaultConfig())
	base := uint64(0x30000)
	p.OnMiss(base)
	p.OnMiss(base + 64)
	p.OnMiss(base + 128) // trained at +1 line
	if got := p.OnMiss(base + 640); got != nil {
		t.Fatal("stride break must suppress prefetching")
	}
	if p.Misfires != 1 {
		t.Fatalf("misfires = %d, want 1", p.Misfires)
	}
}

func TestRandomAccessesStayQuiet(t *testing.T) {
	p := New(DefaultConfig())
	// Pseudo-random lines in one zone: no consistent stride, few prefetches.
	addrs := []uint64{0x40000, 0x40380, 0x40040, 0x40600, 0x40180, 0x40500}
	issued := 0
	for _, a := range addrs {
		issued += len(p.OnMiss(a))
	}
	if issued > 0 {
		t.Fatalf("random pattern issued %d prefetches", issued)
	}
}

func TestZoneIsolation(t *testing.T) {
	p := New(DefaultConfig())
	// Interleave two sequential streams in different zones: both must train.
	a, b := uint64(0x100000), uint64(0x900000)
	var gotA, gotB int
	for i := uint64(0); i < 4; i++ {
		gotA += len(p.OnMiss(a + i*64))
		gotB += len(p.OnMiss(b + i*64))
	}
	if gotA == 0 || gotB == 0 {
		t.Fatalf("interleaved streams not both trained: a=%d b=%d", gotA, gotB)
	}
}

func TestZoneEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Zones = 2
	p := New(cfg)
	// Touch 3 zones; the first should be evicted and forget its training.
	p.OnMiss(0x1000_0000)
	p.OnMiss(0x2000_0000)
	p.OnMiss(0x3000_0000)
	p.OnMiss(0x1000_0040) // back to zone 1: must restart training
	if got := p.OnMiss(0x1000_0080); len(got) != 0 {
		t.Fatal("evicted zone retained training state")
	}
}

// TestPrefetchAlignmentProperty: every issued address is line-aligned and
// non-zero, for any miss sequence.
func TestPrefetchAlignmentProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		p := New(DefaultConfig())
		for _, l := range lines {
			for _, a := range p.OnMiss(0x4000_0000 + uint64(l)*64) {
				if a == 0 || a%64 != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	p := New(DefaultConfig())
	p.OnMiss(0x1000)
	p.OnMiss(0x1040)
	p.OnMiss(0x1080)
	p.Reset()
	if got := p.OnMiss(0x10C0); got != nil {
		t.Fatal("training survived Reset")
	}
}
