package manager

import (
	"testing"

	"pivot/internal/machine"
	"pivot/internal/workload"
)

// testMeanIA puts Masstree at a moderate load where thread-centric throttling
// can still protect QoS (at high loads only instruction-centric priority can
// — which is the paper's thesis, tested elsewhere).
const testMeanIA = 9000

func buildMachine(t *testing.T, nBE int) *machine.Machine {
	t.Helper()
	lc := workload.LCApps()[workload.Masstree]
	be := workload.BEApps()[workload.IBench]
	tasks := []machine.TaskSpec{{Kind: machine.TaskLC, LC: lc, MeanInterarrival: testMeanIA, Seed: 1}}
	for i := 0; i < nBE; i++ {
		tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE, BE: be, Seed: uint64(10 + i)})
	}
	return machine.MustNew(machine.KunpengConfig(8), machine.Options{Policy: machine.PolicyManaged}, tasks)
}

// aloneP95 measures the run-alone tail used to derive a QoS target.
func aloneP95(t *testing.T) uint32 {
	t.Helper()
	lc := workload.LCApps()[workload.Masstree]
	m := machine.MustNew(machine.KunpengConfig(8), machine.Options{Policy: machine.PolicyDefault},
		[]machine.TaskSpec{{Kind: machine.TaskLC, LC: lc, MeanInterarrival: testMeanIA, Seed: 1}})
	m.Run(100_000, 200_000)
	return m.LCp95(0)
}

func TestPARTIESThrottlesUnderViolation(t *testing.T) {
	target := aloneP95(t) * 2
	m := buildMachine(t, 7)
	mgr := NewPARTIES([]uint32{target})
	Run(mgr, m, 300_000, 400_000, 25_000)

	lvl, ways := mgr.Levels()
	if lvl == 100 && ways == m.Cfg.BEWays {
		t.Fatal("PARTIES never took resources from BE despite contention")
	}
	p95 := m.LCp95(0)

	// Reference: the same co-location with no manager at all.
	ref := buildMachine(t, 7)
	for _, part := range bePartIDs(ref) {
		ref.MBA().SetLevel(part, 100)
	}
	ref.Run(300_000, 400_000)
	refP95 := ref.LCp95(0)

	t.Logf("PARTIES: level=%d ways=%d p95=%d target=%d unmanaged=%d", lvl, ways, p95, target, refP95)
	if p95*2 >= refP95 {
		t.Fatalf("PARTIES p95 %d not meaningfully below unmanaged %d", p95, refP95)
	}
}

func TestPARTIESGivesBackWhenIdle(t *testing.T) {
	// No BE contention and a generous target: PARTIES must not throttle.
	target := aloneP95(t) * 10
	m := buildMachine(t, 0)
	mgr := NewPARTIES([]uint32{target})
	Run(mgr, m, 200_000, 200_000, 25_000)
	lvl, _ := mgr.Levels()
	if lvl < 90 {
		t.Fatalf("PARTIES throttled (level %d) with no violation", lvl)
	}
}

func TestCLITEFindsFeasibleConfig(t *testing.T) {
	target := aloneP95(t) * 2
	m := buildMachine(t, 7)
	mgr := NewCLITE([]uint32{target})
	Run(mgr, m, 400_000, 400_000, 25_000)

	lvl, ways := mgr.Current()
	p95 := m.LCp95(0)
	t.Logf("CLITE: level=%d ways=%d p95=%d target=%d", lvl, ways, p95, target)
	if lvl == 100 && p95 > target*2 {
		t.Fatal("CLITE stayed at the unthrottled config despite violations")
	}
}

func TestCLITEPrefersThroughputWhenFeasible(t *testing.T) {
	// Without BE tasks every config is feasible; CLITE should settle on (or
	// revalidate near) the most permissive ones rather than max throttle.
	target := aloneP95(t) * 10
	m := buildMachine(t, 0)
	mgr := NewCLITE([]uint32{target})
	Run(mgr, m, 300_000, 300_000, 25_000)
	lvl, _ := mgr.Current()
	if lvl <= 10 {
		t.Fatalf("CLITE exploited level %d with zero contention", lvl)
	}
}

func TestQoSSlack(t *testing.T) {
	m := buildMachine(t, 0)
	m.Run(100_000, 200_000)
	// Unknown target contributes nothing.
	if s := qosSlack(m, []uint32{0}, 32); s != 1.0 {
		t.Fatalf("slack with zero target = %v, want 1.0", s)
	}
	p95 := m.LCp95(0)
	if s := qosSlack(m, []uint32{p95 * 2}, 0); s <= 0 {
		t.Fatalf("slack with generous target = %v, want positive", s)
	}
	if s := qosSlack(m, []uint32{p95 / 2}, 0); s >= 0 {
		t.Fatalf("slack with impossible target = %v, want negative", s)
	}
}
