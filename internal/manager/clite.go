package manager

import (
	"pivot/internal/machine"
	"pivot/internal/sim"
)

// CLITE is the sampling-based optimiser of Patel & Tiwari: it treats the
// partitioning configuration space (MBA level × BE cache ways) as a black
// box, probes candidate configurations epoch by epoch, and converges to the
// feasible configuration (QoS met) with the best observed BE throughput —
// periodically revalidating the neighbourhood to track drift. A full
// Gaussian-process surrogate is unnecessary at this configuration-space size
// (published CLITE itself discretises its knobs); the structured
// probe-then-exploit search preserves the behaviour that matters for the
// comparison: CLITE finds better operating points than PARTIES' local steps
// but is still bound by thread-centric throttling.
//
// Probing runs from the most protective configuration toward the most
// permissive, pruning a ways-row as soon as a level proves infeasible (less
// throttling can only be worse for QoS). Starting protective keeps the LC
// task's open-loop backlog from exploding during exploration.
type CLITE struct {
	Targets []uint32
	Window  int

	configs []cliteConfig

	bestIdx   int
	bestScore float64
	probe     int
	epochSeen int

	lastCommitted uint64
	cur           int
	inited        bool
}

type cliteConfig struct {
	mbaLevel int
	beWays   int
	feasible bool
	tried    bool
}

// NewCLITE builds the optimiser for the given per-LC QoS targets.
func NewCLITE(targets []uint32) *CLITE {
	c := &CLITE{Targets: targets, Window: 64, bestIdx: -1, bestScore: -1}
	// Most protective first: 1 way at 5%, ..., 2 ways at 100%. The lattice
	// is kept to 8 points so exploration finishes within a typical warm-up
	// (published CLITE likewise bounds its sampling budget).
	for _, w := range []int{1, 2} {
		for _, lvl := range []int{5, 20, 50, 100} {
			c.configs = append(c.configs, cliteConfig{mbaLevel: lvl, beWays: w})
		}
	}
	return c
}

// Name implements Manager.
func (c *CLITE) Name() string { return "CLITE" }

// Decide implements Manager.
func (c *CLITE) Decide(m *machine.Machine, now sim.Cycle) {
	if !c.inited {
		c.inited = true
		c.cur = 0
		c.apply(m, c.configs[c.cur])
		c.lastCommitted = beCommitted(m)
		return
	}
	// Score the epoch that just ran under configs[c.cur].
	slack := qosSlack(m, c.Targets, c.Window)
	committed := beCommitted(m)
	var tput float64
	if committed >= c.lastCommitted {
		tput = float64(committed - c.lastCommitted)
	} // else: stats were reset between epochs — score this epoch as zero
	c.lastCommitted = committed
	c.epochSeen++

	cfg := &c.configs[c.cur]
	cfg.tried = true
	cfg.feasible = slack >= 0
	if cfg.feasible && c.betterThanBest(c.cur, tput) {
		c.bestScore = tput
		c.bestIdx = c.cur
	}
	if !cfg.feasible {
		// Monotonicity prune: in the same ways-row, every less-throttled
		// level is also infeasible.
		for i := c.cur + 1; i < len(c.configs) && c.configs[i].beWays == cfg.beWays; i++ {
			c.configs[i].tried = true
		}
	}

	// Exploration: first untried config (rows run protective→permissive).
	next := -1
	for i := c.probe; i < len(c.configs); i++ {
		if !c.configs[i].tried {
			next = i
			break
		}
	}
	switch {
	case next >= 0:
		c.probe = next
		c.cur = next
	case c.bestIdx >= 0:
		// Exploit the incumbent; periodically revalidate its more
		// permissive neighbour to track drift.
		if c.epochSeen%8 == 0 && c.bestIdx+1 < len(c.configs) &&
			c.configs[c.bestIdx+1].beWays == c.configs[c.bestIdx].beWays {
			c.cur = c.bestIdx + 1
		} else {
			c.cur = c.bestIdx
		}
	default:
		c.cur = 0 // nothing feasible: stay maximally protective
	}
	c.apply(m, c.configs[c.cur])
}

// betterThanBest prefers higher throughput, breaking ties toward the more
// permissive configuration (later index).
func (c *CLITE) betterThanBest(idx int, tput float64) bool {
	if tput > c.bestScore {
		return true
	}
	return tput == c.bestScore && idx > c.bestIdx
}

func (c *CLITE) apply(m *machine.Machine, cfg cliteConfig) {
	mask := uint64(1)<<uint(cfg.beWays) - 1
	for _, part := range bePartIDs(m) {
		m.MBA().SetLevel(part, cfg.mbaLevel)
		m.LLC().SetWayMask(part, mask)
	}
}

// Current reports the operating configuration (for tests).
func (c *CLITE) Current() (mbaLevel, beWays int) {
	cfg := c.configs[c.cur]
	return cfg.mbaLevel, cfg.beWays
}

func beCommitted(m *machine.Machine) uint64 {
	var sum uint64
	for i, t := range m.Tasks() {
		if t.Kind == machine.TaskBE {
			sum += m.Cores[i].Stats.Committed
		}
	}
	return sum
}
