package manager

import (
	"testing"

	"pivot/internal/machine"
	"pivot/internal/workload"
)

func buildPIVOTMachine(t *testing.T, nBE int) *machine.Machine {
	t.Helper()
	lc := workload.LCApps()[workload.Masstree]
	be := workload.BEApps()[workload.IBench]
	tasks := []machine.TaskSpec{{Kind: machine.TaskLC, LC: lc, MeanInterarrival: testMeanIA, Seed: 1}}
	for i := 0; i < nBE; i++ {
		tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE, BE: be, Seed: uint64(10 + i)})
	}
	return machine.MustNew(machine.KunpengConfig(8), machine.Options{Policy: machine.PolicyPIVOT}, tasks)
}

func TestHybridStaysOpenWithSlack(t *testing.T) {
	// A generous mean target: hybrid must converge to (or stay at) level 100
	// and let PIVOT alone do the work.
	m := buildPIVOTMachine(t, 7)
	h := NewHybrid([]float64{1 << 20})
	Run(h, m, 300_000, 300_000, 25_000)
	if h.Level() < 90 {
		t.Fatalf("hybrid throttled to %d despite huge mean slack", h.Level())
	}
}

func TestHybridEngagesUnderMeanPressure(t *testing.T) {
	// An impossible mean target: hybrid must dial strong isolation in.
	m := buildPIVOTMachine(t, 7)
	h := NewHybrid([]float64{1})
	Run(h, m, 300_000, 200_000, 25_000)
	if h.Level() >= 100 {
		t.Fatal("hybrid never engaged strong isolation under mean pressure")
	}
}

func TestHybridImprovesMeanOverPIVOTAlone(t *testing.T) {
	// Measure PIVOT alone first.
	base := buildPIVOTMachine(t, 7)
	base.Run(300_000, 300_000)
	baseMean := base.LCTasks()[0].Source.RecentMean(0)
	if baseMean == 0 {
		t.Fatal("setup: no baseline mean")
	}

	// Target below what PIVOT alone achieves: hybrid throttles BE and the
	// mean must drop (strong isolation improves the average, §VII).
	m := buildPIVOTMachine(t, 7)
	h := NewHybrid([]float64{baseMean * 0.8})
	Run(h, m, 300_000, 300_000, 25_000)
	got := m.LCTasks()[0].Source.RecentMean(0)
	t.Logf("mean: pivot-alone=%.0f hybrid=%.0f (target %.0f, level %d)",
		baseMean, got, baseMean*0.8, h.Level())
	if got >= baseMean {
		t.Fatalf("hybrid mean %.0f did not improve on PIVOT alone %.0f", got, baseMean)
	}
}

func TestHybridName(t *testing.T) {
	if NewHybrid(nil).Name() != "PIVOT+Hybrid" {
		t.Fatal("unexpected manager name")
	}
}
