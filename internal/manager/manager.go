// Package manager reimplements the software resource managers the paper
// compares against (§VI-A): PARTIES (Chen et al., ASPLOS'19) and CLITE
// (Patel & Tiwari, HPCA'20). Both actuate the thread-centric hardware knobs
// available on commodity servers — Intel CAT cache ways and MBA throttle
// levels — from online tail-latency measurements, and both are reimplemented
// at the fidelity the comparison needs: the decision policies follow the
// published algorithms, the modelling of knobs is shared with the rest of
// the simulator.
package manager

import (
	"context"

	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/sim"
)

// Manager adjusts a machine's partitioning knobs between epochs.
type Manager interface {
	// Name identifies the manager in experiment tables.
	Name() string
	// Decide inspects the machine after one epoch and adjusts knobs.
	Decide(m *machine.Machine, now sim.Cycle)
}

// Run drives a machine under a manager: warm up, then alternate epoch-long
// simulation and manager decisions over the measured region.
func Run(mgr Manager, m *machine.Machine, warmup, measure, epoch sim.Cycle) {
	if epoch == 0 {
		epoch = 50_000
	}
	// Managers adapt during warm-up too (they are always-on daemons).
	for t := sim.Cycle(0); t < warmup; t += epoch {
		m.Engine.Step(epoch)
		mgr.Decide(m, m.Engine.Now())
	}
	m.ResetStats()
	for t := sim.Cycle(0); t < measure; t += epoch {
		m.Engine.Step(epoch)
		mgr.Decide(m, m.Engine.Now())
	}
	m.MarkMeasured(measure)
}

// RunChecked is Run driving the machine through StepChecked, so the
// watchdog, auditor, deadline and cycle budget also protect manager-driven
// (PARTIES/CLITE) simulations. The first guard failure aborts the run and
// is returned; statistics of an aborted run are unusable.
func RunChecked(ctx context.Context, mgr Manager, m *machine.Machine, warmup, measure, epoch sim.Cycle) error {
	if epoch == 0 {
		epoch = 50_000
	}
	for t := sim.Cycle(0); t < warmup; t += epoch {
		if err := m.StepChecked(ctx, epoch); err != nil {
			return err
		}
		mgr.Decide(m, m.Engine.Now())
	}
	m.ResetStats()
	for t := sim.Cycle(0); t < measure; t += epoch {
		if err := m.StepChecked(ctx, epoch); err != nil {
			return err
		}
		mgr.Decide(m, m.Engine.Now())
	}
	m.MarkMeasured(measure)
	return nil
}

// bePartIDs returns the PartIDs of the machine's BE tasks.
func bePartIDs(m *machine.Machine) []mem.PartID {
	var out []mem.PartID
	for i, t := range m.Tasks() {
		if t.Kind == machine.TaskBE {
			out = append(out, mem.PartID(i))
		}
	}
	return out
}

// qosSlack returns the smallest slack across LC tasks: (target-p95)/target.
// Negative slack means a QoS violation. The window is the manager's sample.
func qosSlack(m *machine.Machine, targets []uint32, window int) float64 {
	worst := 1.0
	for i, lc := range m.LCTasks() {
		if i >= len(targets) || targets[i] == 0 {
			continue
		}
		p95 := lc.Source.RecentP95(window)
		if p95 == 0 {
			continue // no completions yet: treat as unknown, not violating
		}
		s := (float64(targets[i]) - float64(p95)) / float64(targets[i])
		if s < worst {
			worst = s
		}
	}
	return worst
}
