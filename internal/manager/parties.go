package manager

import (
	"pivot/internal/machine"
	"pivot/internal/sim"
)

// PARTIES is the incremental, one-resource-at-a-time controller of Chen et
// al.: each epoch it samples every LC task's tail latency; on a (near-)
// violation it takes one step of one resource away from the BE partition
// (more MBA throttling, then fewer cache ways), and when all LC tasks have
// comfortable slack it returns one step so BE throughput recovers. The
// upshot — faithful to the original — is a controller that oscillates around
// the QoS boundary and pays for protection with throttled bandwidth.
type PARTIES struct {
	// Targets are the per-LC-task QoS targets in cycles (knee-derived).
	Targets []uint32
	// Window is the number of recent requests sampled per decision.
	Window int
	// UpSlack is the slack above which resources are returned to BE.
	UpSlack float64
	// DownSlack is the slack below which resources are taken from BE.
	DownSlack float64

	mbaLevel int // current BE throttle level (percent)
	beWays   int // current BE way count
	inited   bool

	// which resource to adjust next (PARTIES rotates through resources).
	rotate int
}

// NewPARTIES builds a controller with the defaults used in the evaluation.
func NewPARTIES(targets []uint32) *PARTIES {
	return &PARTIES{Targets: targets, Window: 64, UpSlack: 0.30, DownSlack: 0.10}
}

// Name implements Manager.
func (p *PARTIES) Name() string { return "PARTIES" }

// Decide implements Manager.
func (p *PARTIES) Decide(m *machine.Machine, now sim.Cycle) {
	if !p.inited {
		// Start from the LC-protecting side and hand resources back as
		// slack appears: starting permissive would let the open-loop LC
		// backlog explode before the first downward steps bite.
		p.mbaLevel = 10
		p.beWays = 1
		p.inited = true
		p.apply(m)
		return
	}
	slack := qosSlack(m, p.Targets, p.Window)
	switch {
	case slack < p.DownSlack:
		// Violated or close: take a resource step from BE.
		if p.rotate%2 == 0 && p.mbaLevel > 5 {
			p.mbaLevel = stepDown(p.mbaLevel)
		} else if p.beWays > 1 {
			p.beWays--
		} else if p.mbaLevel > 5 {
			p.mbaLevel = stepDown(p.mbaLevel)
		}
		p.rotate++
	case slack > p.UpSlack:
		// Comfortable: give a step back to BE.
		if p.rotate%2 == 0 && p.mbaLevel < 100 {
			p.mbaLevel += 10
		} else if p.beWays < m.Cfg.BEWays {
			p.beWays++
		} else if p.mbaLevel < 100 {
			p.mbaLevel += 10
		}
		p.rotate++
	}
	p.apply(m)
}

func (p *PARTIES) apply(m *machine.Machine) {
	mask := uint64(1)<<uint(p.beWays) - 1
	for _, part := range bePartIDs(m) {
		m.MBA().SetLevel(part, p.mbaLevel)
		m.LLC().SetWayMask(part, mask)
	}
}

// Levels reports the controller's current operating point (for tests).
func (p *PARTIES) Levels() (mbaLevel, beWays int) { return p.mbaLevel, p.beWays }

// stepDown walks the MBA ladder one notch toward full throttle.
func stepDown(lvl int) int {
	if lvl > 10 {
		return lvl - 10
	}
	return 5
}
