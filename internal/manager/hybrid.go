package manager

import (
	"pivot/internal/machine"
	"pivot/internal/sim"
)

// Hybrid implements the trade-off the paper's §VII names as future work:
// PIVOT's weak isolation protects the *tail* but can slightly raise the
// *average* latency of LC tasks in some co-locations, while MBA-style strong
// isolation protects the average at the cost of utilisation. Hybrid runs on
// top of a PIVOT machine and regulates MBA throttling of the BE partitions
// from the LC tasks' recent *average* latency: when the average exceeds its
// target, strong isolation is dialled in; when there is comfortable slack,
// it is dialled back out so PIVOT's bandwidth harvesting resumes.
type Hybrid struct {
	// AvgTargets are per-LC-task mean-latency targets in cycles.
	AvgTargets []float64
	// Window is the number of recent requests sampled per decision.
	Window int
	// ReleaseSlack is the mean-latency slack fraction above which the
	// controller hands a throttle step back (hysteresis against the engage
	// condition, which is slack < 0).
	ReleaseSlack float64

	mbaLevel int
	inited   bool
}

// NewHybrid builds the controller for the given per-LC average targets.
func NewHybrid(avgTargets []float64) *Hybrid {
	return &Hybrid{AvgTargets: avgTargets, Window: 64, ReleaseSlack: 0.2}
}

// Name implements Manager.
func (h *Hybrid) Name() string { return "PIVOT+Hybrid" }

// Decide implements Manager.
func (h *Hybrid) Decide(m *machine.Machine, now sim.Cycle) {
	if !h.inited {
		h.mbaLevel = 100 // PIVOT alone, until the average says otherwise
		h.inited = true
	}
	worst := 1.0 // most-pressured LC task's avg/target ratio inverse slack
	for i, lc := range m.LCTasks() {
		if i >= len(h.AvgTargets) || h.AvgTargets[i] <= 0 {
			continue
		}
		avg := lc.Source.RecentMean(h.Window)
		if avg == 0 {
			continue
		}
		s := (h.AvgTargets[i] - avg) / h.AvgTargets[i]
		if s < worst {
			worst = s
		}
	}
	switch {
	case worst < 0 && h.mbaLevel > 5:
		// Average latency above target: engage strong isolation a step.
		h.mbaLevel = stepDown(h.mbaLevel)
	case worst > h.ReleaseSlack && h.mbaLevel < 100:
		// Comfortable slack: hand bandwidth back to the BE tasks.
		h.mbaLevel += 10
		if h.mbaLevel > 100 {
			h.mbaLevel = 100
		}
	}
	for _, part := range bePartIDs(m) {
		m.MBA().SetLevel(part, h.mbaLevel)
	}
}

// Level reports the current strong-isolation throttle (100 = PIVOT alone).
func (h *Hybrid) Level() int { return h.mbaLevel }
