package exp

import (
	"testing"

	"pivot/internal/machine"
)

// TestSkipAheadEquivalenceFigures renders experiment tables from the
// registry twice — once on the skip-ahead engine, once forced dense via the
// Context's -dense escape hatch — and demands byte-identical output. fig5
// exercises calibration sweeps plus co-location runs with the split filter;
// fig8 exercises the offline profiling phase. A tiny scale keeps this fast:
// equivalence needs identical bytes, not statistical quality.
func TestSkipAheadEquivalenceFigures(t *testing.T) {
	scale := Quick()
	scale.Warmup = 80_000
	scale.Measure = 100_000
	scale.CalMeasure = 80_000
	scale.LoadFracs = []float64{0.3, 0.7}
	scale.MaxBEThreads = 3

	render := func(dense bool) map[string]string {
		ctx := NewContext(machine.KunpengConfig(4), scale)
		ctx.Dense = dense
		out := map[string]string{}
		for _, id := range []string{"fig5", "fig8"} {
			e, ok := Registry()[id]
			if !ok {
				t.Fatalf("experiment %s missing from registry", id)
			}
			tables, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s (dense=%v): %v", id, dense, err)
			}
			s := ""
			for _, tb := range tables {
				s += tb.String()
			}
			if len(s) == 0 {
				t.Fatalf("%s rendered empty (dense=%v)", id, dense)
			}
			out[id] = s
		}
		return out
	}

	skip := render(false)
	dense := render(true)
	for _, id := range []string{"fig5", "fig8"} {
		if skip[id] != dense[id] {
			t.Errorf("%s renders differently under skip-ahead:\n--- skip ---\n%s\n--- dense ---\n%s",
				id, skip[id], dense[id])
		}
	}
}
