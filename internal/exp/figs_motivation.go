package exp

import (
	"fmt"

	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/metrics"
	"pivot/internal/workload"
)

// motivLoadPct is the LC operating point of the §II-B motivation study:
// 70% of max load, co-located with the 7-thread iBench stressor.
const motivLoadPct = 70

// Fig01 — normalized 95th-percentile latency of the LC tasks under Default,
// MBA and MPAM (a value above 1.0 on the QoS-normalised scale is a
// violation). Shows MPAM failing to enforce QoS and MBA succeeding.
func (ctx *Context) Fig01() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 1: normalized p95 latency vs QoS (>1.00 violates)",
		Headers: []string{"app", "Default", "MBA", "MPAM", "PIVOT"},
	}
	rn := ctx.runner()
	for _, app := range workload.LCNames() {
		cal := rn.calib(app)
		lcs := []LCSpec{{App: app, LoadPct: motivLoadPct}}
		bes := []BESpec{{App: workload.IBench, Threads: ctx.Scale.MaxBEThreads}}
		norm := func(r RunResult) string {
			return fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget))
		}
		def := rn.run(RunSpec{Method: MethodDefault(), LCs: lcs, BEs: bes})
		mba, _ := rn.bestMBA(lcs, bes)
		mpam := rn.run(RunSpec{Method: MethodMPAM(), LCs: lcs, BEs: bes})
		piv := rn.run(RunSpec{Method: MethodPIVOT(), LCs: lcs, BEs: bes})
		t.AddRow(app, norm(def), norm(mba), norm(mpam), norm(piv))
	}
	return t, rn.err
}

// Fig02 — memory bandwidth utilisation of MBA, MPAM, FullPath and PIVOT in
// the same scenario. Shows the utilisation ordering MBA < FullPath < PIVOT.
func (ctx *Context) Fig02() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 2: memory bandwidth utilisation (fraction of peak)",
		Headers: []string{"app", "MBA", "MPAM", "FullPath", "PIVOT"},
	}
	rn := ctx.runner()
	for _, app := range workload.LCNames() {
		lcs := []LCSpec{{App: app, LoadPct: motivLoadPct}}
		bes := []BESpec{{App: workload.IBench, Threads: ctx.Scale.MaxBEThreads}}
		mba, lvl := rn.bestMBA(lcs, bes)
		mpam := rn.run(RunSpec{Method: MethodMPAM(), LCs: lcs, BEs: bes})
		full := rn.run(RunSpec{Method: MethodFullPath(), LCs: lcs, BEs: bes})
		piv := rn.run(RunSpec{Method: MethodPIVOT(), LCs: lcs, BEs: bes})
		t.AddRowf(app,
			fmt.Sprintf("%.3f (lvl %d)", mba.BWUtil, lvl),
			mpam.BWUtil, full.BWUtil, piv.BWUtil)
	}
	return t, rn.err
}

// Fig03 — maximum normalised iBench throughput with no QoS violation
// (normalised to 7-thread iBench running alone).
func (ctx *Context) Fig03() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 3: max iBench throughput under QoS (vs 7-thread alone)",
		Headers: []string{"app", "MBA", "MPAM", "FullPath", "PIVOT"},
	}
	rn := ctx.runner()
	n := ctx.Scale.MaxBEThreads
	for _, app := range workload.LCNames() {
		lcs := []LCSpec{{App: app, LoadPct: motivLoadPct}}
		t.AddRowf(app,
			rn.maxBEMBA(lcs, workload.IBench, n),
			rn.maxBE(MethodMPAM(), lcs, workload.IBench, n),
			rn.maxBE(MethodFullPath(), lcs, workload.IBench, n),
			rn.maxBE(MethodPIVOT(), lcs, workload.IBench, n))
	}
	return t, rn.err
}

// Fig05 — where do Masstree's critical loads spend their cycles? Average
// per-component cycles of chase-load memory requests under Run Alone,
// Co-location (Default) and Full Path.
func (ctx *Context) Fig05() (*metrics.Table, error) {
	t := &metrics.Table{
		Title: "Figure 5: cycle split of Masstree critical loads per component",
		Headers: []string{"scenario", "L2", "Interconnect", "LLC", "Bus",
			"BWCtrl", "MemCtrl", "DRAM", "Resp", "total"},
	}
	app := workload.Masstree
	cal, err := ctx.Calib(app)
	if err != nil {
		return nil, err
	}

	// Track only the chase PCs: rebuild the generator deterministically the
	// same way the machine does (core slot 0, same seed derivation).
	chase := chaseSetFor(cal.App, ctx.Scale.Seed)

	row := func(name string, mth Method, bes []BESpec) error {
		opt := machine.Options{}
		r, err := ctx.runWithSplit(RunSpec{Method: mth,
			LCs: []LCSpec{{App: app, LoadPct: motivLoadPct}}, BEs: bes, Opt: opt}, chase)
		if err != nil {
			return err
		}
		cells := []string{name}
		var total float64
		for _, c := range []mem.Component{mem.CompL2, mem.CompInterconnect, mem.CompLLC,
			mem.CompBus, mem.CompBWCtrl, mem.CompMemCtrl, mem.CompDRAM, mem.CompResp} {
			cells = append(cells, fmt.Sprintf("%.0f", r.Split[c]))
			total += r.Split[c]
		}
		cells = append(cells, fmt.Sprintf("%.0f", total))
		t.AddRow(cells...)
		return nil
	}
	bes := []BESpec{{App: workload.IBench, Threads: ctx.Scale.MaxBEThreads}}
	if err := row("Run Alone", MethodDefault(), nil); err != nil {
		return nil, err
	}
	if err := row("Co-location", MethodDefault(), bes); err != nil {
		return nil, err
	}
	if err := row("Full Path", MethodFullPath(), bes); err != nil {
		return nil, err
	}
	return t, nil
}

// runWithSplit runs a spec with the split-statistics filter set.
func (ctx *Context) runWithSplit(spec RunSpec, filter map[uint64]bool) (RunResult, error) {
	opt := ctx.guard(spec.Opt)
	opt.Policy = spec.Method.Policy
	var tasks []machine.TaskSpec
	for _, lc := range spec.LCs {
		cal, err := ctx.Calib(lc.App)
		if err != nil {
			return RunResult{}, err
		}
		tasks = append(tasks, machine.TaskSpec{
			Kind: machine.TaskLC, LC: cal.App,
			MeanInterarrival: cal.MeanIAAt(lc.LoadPct),
			Potential:        ctx.potentialFor(spec.Method, lc.App),
			ExpectedBW:       0.9 * cal.AloneBWAt(lc.LoadPct),
			Seed:             ctx.Scale.Seed,
		})
	}
	for _, be := range spec.BEs {
		app := workload.BEApps()[be.App]
		for i := 0; i < be.Threads && len(tasks) < ctx.Cfg.Cores; i++ {
			tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE, BE: app,
				Seed: ctx.Scale.Seed + uint64(10+len(tasks))})
		}
	}
	m, err := machine.New(ctx.Cfg, opt, tasks)
	if err != nil {
		return RunResult{}, err
	}
	m.SetStatsFilter(filter)
	if err := m.RunChecked(ctx.runContext(), ctx.Scale.Warmup, ctx.Scale.Measure); err != nil {
		return RunResult{}, err
	}
	var res RunResult
	res.Split, res.SplitN = m.SplitAverages()
	res.BWUtil = m.BWUtil()
	res.P95 = []uint32{m.LCp95(0)}
	return res, nil
}

// chaseSetFor reproduces the chase-load PCs of the LC generator on core 0
// with the machine's seed derivation.
func chaseSetFor(app workload.LCParams, seed uint64) map[uint64]bool {
	// Mirrors machine.New: rng = NewRNG(seed + 1*0x9E37), gen uses
	// rng.Fork(). The PC layout depends only on the parameter counts, so a
	// throwaway generator suffices.
	gen := workload.NewReqGen(app, 0, nil)
	set := make(map[uint64]bool)
	for _, pc := range gen.ChasePCs() {
		set[pc] = true
	}
	return set
}

// Fig06 — normalized p95 under FullPath with increasing BE thread counts:
// full-path prioritisation keeps every LC task within QoS even at the
// highest contention.
func (ctx *Context) Fig06() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 6: normalized p95 under FullPath vs #iBench threads",
		Headers: []string{"app", "1 thr", "3 thr", "5 thr", "7 thr"},
	}
	rn := ctx.runner()
	for _, app := range workload.LCNames() {
		cal := rn.calib(app)
		cells := []string{app}
		for _, n := range []int{1, 3, 5, 7} {
			r := rn.run(RunSpec{Method: MethodFullPath(),
				LCs: []LCSpec{{App: app, LoadPct: motivLoadPct}},
				BEs: []BESpec{{App: workload.IBench, Threads: n}}})
			cells = append(cells, fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)))
		}
		t.AddRow(cells...)
	}
	return t, rn.err
}

// Fig07 — leave-one-out: normalized p95 when one MSC does not enforce
// priority. QoS violations appear whenever any single component opts out.
func (ctx *Context) Fig07() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 7: normalized p95 with one MSC not enforcing priority",
		Headers: []string{"app", "all MSCs", "-Interconnect", "-Bus", "-BWCtrl", "-MemCtrl"},
	}
	rn := ctx.runner()
	for _, app := range workload.LCNames() {
		cal := rn.calib(app)
		lcs := []LCSpec{{App: app, LoadPct: motivLoadPct}}
		bes := []BESpec{{App: workload.IBench, Threads: ctx.Scale.MaxBEThreads}}
		cells := []string{app}
		all := rn.run(RunSpec{Method: MethodFullPath(), LCs: lcs, BEs: bes})
		cells = append(cells, fmt.Sprintf("%.2f", float64(all.P95[0])/float64(cal.QoSTarget)))
		for _, msc := range mem.MSCs {
			r := rn.run(RunSpec{Method: MethodFullPath(), LCs: lcs, BEs: bes,
				Opt: machine.Options{DisableMSC: msc}})
			cells = append(cells, fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)))
		}
		t.AddRow(cells...)
	}
	return t, rn.err
}

// Fig08 — cumulative distribution of static loads vs ROB stall cycles for
// Silo and Moses: a small fraction of loads causes nearly all stall cycles.
func (ctx *Context) Fig08() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 8: CDF — top static loads vs share of ROB stall cycles",
		Headers: []string{"app", "loads", "top 5%", "top 10%", "top 20%", "top 50%"},
	}
	for _, app := range []string{workload.Silo, workload.Moses} {
		prof := machine.RunProfilerOpt(ctx.Cfg, workload.LCApps()[app],
			ctx.Scale.MaxBEThreads, ctx.Scale.Seed, machine.ProfileCycles,
			ctx.guard(machine.Options{}))
		loadFrac, stallFrac := prof.CDF()
		share := func(frac float64) string {
			for i, lf := range loadFrac {
				if lf >= frac {
					return fmt.Sprintf("%.3f", stallFrac[i])
				}
			}
			return "1.000"
		}
		t.AddRow(app, fmt.Sprint(len(loadFrac)),
			share(0.05), share(0.10), share(0.20), share(0.50))
	}
	return t, nil
}

// Fig12 — run-alone load-latency curves with the knee-derived QoS target
// and max load per application.
func (ctx *Context) Fig12() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 12: load-latency curves (run alone), knee and max load",
		Headers: []string{"app", "load", "RPMC", "p95", "mean", "QoS", "maxLoad"},
	}
	for _, app := range workload.LCNames() {
		cal, err := ctx.Calib(app)
		if err != nil {
			return nil, err
		}
		for _, pt := range cal.Curve {
			t.AddRow(app,
				fmt.Sprintf("%.0f%%", pt.LoadFrac*100),
				fmt.Sprintf("%.1f", pt.RPMC),
				fmt.Sprint(pt.P95),
				fmt.Sprintf("%.0f", pt.Mean),
				fmt.Sprint(cal.QoSTarget),
				fmt.Sprintf("%.1f", cal.MaxLoad))
		}
	}
	return t, nil
}
