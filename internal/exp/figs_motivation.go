package exp

import (
	"fmt"

	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/metrics"
	"pivot/internal/scenario"
	"pivot/internal/workload"
)

// Fig01 — normalized 95th-percentile latency of the LC tasks under Default,
// MBA and MPAM (a value above 1.0 on the QoS-normalised scale is a
// violation). Shows MPAM failing to enforce QoS and MBA succeeding.
func (ctx *Context) Fig01() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig1")
	apps := sc.MustAxis("tasks[0].app").Strings()
	policies := sc.MustAxis("policy").Strings()
	t := &metrics.Table{
		Title:   "Figure 1: normalized p95 latency vs QoS (>1.00 violates)",
		Headers: append([]string{"app"}, policies...),
	}
	rn := ctx.runner()
	bes := []BESpec{{App: sc.Tasks[1].App, Threads: ctx.beThreads(sc.Tasks[1].ThreadCount())}}
	for _, app := range apps {
		cal := rn.calib(app)
		lcs := []LCSpec{{App: app, LoadPct: sc.Tasks[0].LoadPct}}
		cells := []string{app}
		for _, pol := range policies {
			var r RunResult
			if pol == "MBA" {
				// MBA's level is searched, not declared: the best-of-ladder
				// sweep lives in the harness.
				r, _ = rn.bestMBA(lcs, bes)
			} else {
				r = rn.run(RunSpec{Method: mustMethod(pol), LCs: lcs, BEs: bes})
			}
			cells = append(cells, fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)))
		}
		t.AddRow(cells...)
	}
	return t, rn.err
}

// Fig02 — memory bandwidth utilisation of MBA, MPAM, FullPath and PIVOT in
// the same scenario. Shows the utilisation ordering MBA < FullPath < PIVOT.
func (ctx *Context) Fig02() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig2")
	policies := sc.MustAxis("policy").Strings()
	t := &metrics.Table{
		Title:   "Figure 2: memory bandwidth utilisation (fraction of peak)",
		Headers: append([]string{"app"}, policies...),
	}
	rn := ctx.runner()
	bes := []BESpec{{App: sc.Tasks[1].App, Threads: ctx.beThreads(sc.Tasks[1].ThreadCount())}}
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		lcs := []LCSpec{{App: app, LoadPct: sc.Tasks[0].LoadPct}}
		cells := []any{app}
		for _, pol := range policies {
			if pol == "MBA" {
				r, lvl := rn.bestMBA(lcs, bes)
				cells = append(cells, fmt.Sprintf("%.3f (lvl %d)", r.BWUtil, lvl))
			} else {
				cells = append(cells, rn.run(RunSpec{Method: mustMethod(pol), LCs: lcs, BEs: bes}).BWUtil)
			}
		}
		t.AddRowf(cells...)
	}
	return t, rn.err
}

// Fig03 — maximum normalised iBench throughput with no QoS violation
// (normalised to 7-thread iBench running alone).
func (ctx *Context) Fig03() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig3")
	policies := sc.MustAxis("policy").Strings()
	t := &metrics.Table{
		Title:   "Figure 3: max iBench throughput under QoS (vs 7-thread alone)",
		Headers: append([]string{"app"}, policies...),
	}
	rn := ctx.runner()
	beApp := sc.Tasks[1].App
	n := ctx.beThreads(sc.Tasks[1].ThreadCount())
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		lcs := []LCSpec{{App: app, LoadPct: sc.Tasks[0].LoadPct}}
		cells := []any{app}
		for _, pol := range policies {
			if pol == "MBA" {
				cells = append(cells, rn.maxBEMBA(lcs, beApp, n))
			} else {
				cells = append(cells, rn.maxBE(mustMethod(pol), lcs, beApp, n))
			}
		}
		t.AddRowf(cells...)
	}
	return t, rn.err
}

// Fig05 — where do Masstree's critical loads spend their cycles? Average
// per-component cycles of chase-load memory requests under Run Alone,
// Co-location (Default) and Full Path.
func (ctx *Context) Fig05() (*metrics.Table, error) {
	t := &metrics.Table{
		Title: "Figure 5: cycle split of Masstree critical loads per component",
		Headers: []string{"scenario", "L2", "Interconnect", "LLC", "Bus",
			"BWCtrl", "MemCtrl", "DRAM", "Resp", "total"},
	}
	sc := scenario.MustBuiltin("fig5")
	app := sc.Tasks[0].App
	cal, err := ctx.Calib(app)
	if err != nil {
		return nil, err
	}

	// Track only the chase PCs: rebuild the generator deterministically the
	// same way the machine does (core slot 0, same seed derivation).
	chase := chaseSetFor(cal.App, ctx.Scale.Seed)

	row := func(name string, mth Method, bes []BESpec) error {
		opt := machine.Options{}
		r, err := ctx.runWithSplit(RunSpec{Method: mth,
			LCs: []LCSpec{{App: app, LoadPct: sc.Tasks[0].LoadPct}}, BEs: bes, Opt: opt}, chase)
		if err != nil {
			return err
		}
		cells := []string{name}
		var total float64
		for _, c := range []mem.Component{mem.CompL2, mem.CompInterconnect, mem.CompLLC,
			mem.CompBus, mem.CompBWCtrl, mem.CompMemCtrl, mem.CompDRAM, mem.CompResp} {
			cells = append(cells, fmt.Sprintf("%.0f", r.Split[c]))
			total += r.Split[c]
		}
		cells = append(cells, fmt.Sprintf("%.0f", total))
		t.AddRow(cells...)
		return nil
	}
	bes := []BESpec{{App: sc.Tasks[1].App, Threads: ctx.beThreads(sc.Tasks[1].ThreadCount())}}
	if err := row("Run Alone", MethodDefault(), nil); err != nil {
		return nil, err
	}
	if err := row("Co-location", MethodDefault(), bes); err != nil {
		return nil, err
	}
	if err := row("Full Path", MethodFullPath(), bes); err != nil {
		return nil, err
	}
	return t, nil
}

// runWithSplit runs a spec with the split-statistics filter set.
func (ctx *Context) runWithSplit(spec RunSpec, filter map[uint64]bool) (RunResult, error) {
	opt := ctx.guard(spec.Opt)
	opt.Policy = spec.Method.Policy
	var tasks []machine.TaskSpec
	for _, lc := range spec.LCs {
		cal, err := ctx.Calib(lc.App)
		if err != nil {
			return RunResult{}, err
		}
		tasks = append(tasks, machine.TaskSpec{
			Kind: machine.TaskLC, LC: cal.App,
			MeanInterarrival: cal.MeanIAAt(lc.LoadPct),
			Potential:        ctx.potentialFor(spec.Method, lc.App),
			ExpectedBW:       0.9 * cal.AloneBWAt(lc.LoadPct),
			Seed:             ctx.Scale.Seed,
		})
	}
	for _, be := range spec.BEs {
		app := ctx.beParams(be.App)
		for i := 0; i < be.Threads && len(tasks) < ctx.Cfg.Cores; i++ {
			tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE, BE: app,
				Seed: ctx.Scale.Seed + uint64(10+len(tasks))})
		}
	}
	m, err := machine.New(ctx.Cfg, opt, tasks)
	if err != nil {
		return RunResult{}, err
	}
	m.SetStatsFilter(filter)
	if err := m.RunChecked(ctx.runContext(), ctx.Scale.Warmup, ctx.Scale.Measure); err != nil {
		return RunResult{}, err
	}
	var res RunResult
	res.Split, res.SplitN = m.SplitAverages()
	res.BWUtil = m.BWUtil()
	res.P95 = []uint32{m.LCp95(0)}
	return res, nil
}

// chaseSetFor reproduces the chase-load PCs of the LC generator on core 0
// with the machine's seed derivation.
func chaseSetFor(app workload.LCParams, seed uint64) map[uint64]bool {
	// Mirrors machine.New: rng = NewRNG(seed + 1*0x9E37), gen uses
	// rng.Fork(). The PC layout depends only on the parameter counts, so a
	// throwaway generator suffices.
	gen := workload.NewReqGen(app, 0, nil)
	set := make(map[uint64]bool)
	for _, pc := range gen.ChasePCs() {
		set[pc] = true
	}
	return set
}

// Fig06 — normalized p95 under FullPath with increasing BE thread counts:
// full-path prioritisation keeps every LC task within QoS even at the
// highest contention.
func (ctx *Context) Fig06() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig6")
	threads := sc.MustAxis("tasks[1].threads").Ints()
	headers := []string{"app"}
	for _, n := range threads {
		headers = append(headers, fmt.Sprintf("%d thr", n))
	}
	t := &metrics.Table{
		Title:   "Figure 6: normalized p95 under FullPath vs #iBench threads",
		Headers: headers,
	}
	rn := ctx.runner()
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		cal := rn.calib(app)
		cells := []string{app}
		for _, n := range threads {
			r := rn.run(RunSpec{Method: mustMethod(sc.Policy),
				LCs: []LCSpec{{App: app, LoadPct: sc.Tasks[0].LoadPct}},
				BEs: []BESpec{{App: sc.Tasks[1].App, Threads: n}}})
			cells = append(cells, fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)))
		}
		t.AddRow(cells...)
	}
	return t, rn.err
}

// Fig07 — leave-one-out: normalized p95 when one MSC does not enforce
// priority. QoS violations appear whenever any single component opts out.
func (ctx *Context) Fig07() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig7")
	mscs := sc.MustAxis("options.disable_msc").Strings() // "" = all enforce
	headers := []string{"app"}
	for _, name := range mscs {
		if name == "" {
			headers = append(headers, "all MSCs")
		} else {
			headers = append(headers, "-"+name)
		}
	}
	t := &metrics.Table{
		Title:   "Figure 7: normalized p95 with one MSC not enforcing priority",
		Headers: headers,
	}
	rn := ctx.runner()
	bes := []BESpec{{App: sc.Tasks[1].App, Threads: ctx.beThreads(sc.Tasks[1].ThreadCount())}}
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		cal := rn.calib(app)
		lcs := []LCSpec{{App: app, LoadPct: sc.Tasks[0].LoadPct}}
		cells := []string{app}
		for _, name := range mscs {
			r := rn.run(RunSpec{Method: mustMethod(sc.Policy), LCs: lcs, BEs: bes,
				Opt: optionsFor(scenario.Options{DisableMSC: name})})
			cells = append(cells, fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)))
		}
		t.AddRow(cells...)
	}
	return t, rn.err
}

// Fig08 — cumulative distribution of static loads vs ROB stall cycles for
// Silo and Moses: a small fraction of loads causes nearly all stall cycles.
func (ctx *Context) Fig08() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 8: CDF — top static loads vs share of ROB stall cycles",
		Headers: []string{"app", "loads", "top 5%", "top 10%", "top 20%", "top 50%"},
	}
	for _, app := range scenario.MustBuiltin("fig8").MustAxis("tasks[0].app").Strings() {
		prof := machine.RunProfilerOpt(ctx.Cfg, ctx.lcParams(app),
			ctx.Scale.MaxBEThreads, ctx.Scale.Seed, machine.ProfileCycles,
			ctx.guard(machine.Options{}))
		loadFrac, stallFrac := prof.CDF()
		share := func(frac float64) string {
			for i, lf := range loadFrac {
				if lf >= frac {
					return fmt.Sprintf("%.3f", stallFrac[i])
				}
			}
			return "1.000"
		}
		t.AddRow(app, fmt.Sprint(len(loadFrac)),
			share(0.05), share(0.10), share(0.20), share(0.50))
	}
	return t, nil
}

// Fig12 — run-alone load-latency curves with the knee-derived QoS target
// and max load per application.
func (ctx *Context) Fig12() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 12: load-latency curves (run alone), knee and max load",
		Headers: []string{"app", "load", "RPMC", "p95", "mean", "QoS", "maxLoad"},
	}
	for _, app := range scenario.MustBuiltin("fig12").MustAxis("tasks[0].app").Strings() {
		cal, err := ctx.Calib(app)
		if err != nil {
			return nil, err
		}
		for _, pt := range cal.Curve {
			t.AddRow(app,
				fmt.Sprintf("%.0f%%", pt.LoadFrac*100),
				fmt.Sprintf("%.1f", pt.RPMC),
				fmt.Sprint(pt.P95),
				fmt.Sprintf("%.0f", pt.Mean),
				fmt.Sprint(cal.QoSTarget),
				fmt.Sprintf("%.1f", cal.MaxLoad))
		}
	}
	return t, nil
}
