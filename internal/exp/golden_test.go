package exp

import (
	"os"
	"path/filepath"
	"testing"

	"pivot/internal/machine"
)

// TestFigureTablesGoldenQuick proves the scenario-driven figure harnesses
// render byte-identical tables to the pinned goldens (fig1/fig5/fig8 were
// captured with `go run ./cmd/pivot-exp -quick -quiet figN` before the
// scenario layer existed; the rest when their harnesses stabilised). Every
// builtin figure is pinned, so any refactor that shifts a single table cell
// at quick scale fails here with a byte diff.
func TestFigureTablesGoldenQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale figure runs take minutes")
	}
	ctx := NewContext(machine.KunpengConfig(8), Quick())
	for _, id := range []string{
		"fig1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
		"fig12", "fig13", "fig13emu", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
	} {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden_quick_"+id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			tables, err := Registry()[id].Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var got string
			for _, tb := range tables {
				got += tb.String() + "\n"
			}
			if got != string(want) {
				t.Errorf("%s table drifted from the pre-refactor golden:\ngot:\n%swant:\n%s",
					id, got, want)
			}
		})
	}
}
