package exp

import (
	"os"
	"path/filepath"
	"testing"

	"pivot/internal/machine"
)

// TestFigureTablesGoldenQuick proves the scenario-driven figure harnesses
// render byte-identical tables to the pre-refactor goldens (captured with
// `go run ./cmd/pivot-exp -quick -quiet figN` before the scenario layer
// existed). The three figures cover the three harness shapes: a policy-axis
// sweep with the best-MBA search (fig1), a fixed-mix split study (fig5) and
// an offline-profiling figure (fig8).
func TestFigureTablesGoldenQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale figure runs take tens of seconds")
	}
	ctx := NewContext(machine.KunpengConfig(8), Quick())
	for _, id := range []string{"fig1", "fig5", "fig8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden_quick_"+id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			tables, err := Registry()[id].Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var got string
			for _, tb := range tables {
				got += tb.String() + "\n"
			}
			if got != string(want) {
				t.Errorf("%s table drifted from the pre-refactor golden:\ngot:\n%swant:\n%s",
					id, got, want)
			}
		})
	}
}
