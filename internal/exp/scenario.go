package exp

import (
	"fmt"
	"strings"
	"sync"

	"pivot/internal/faultinject"
	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/metrics"
	"pivot/internal/rrbp"
	"pivot/internal/scenario"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// This file bridges the declarative scenario layer (internal/scenario) to
// the execution layer: policy names become Methods, scenario options become
// machine options, expanded run units become RunSpecs, and a whole user
// scenario runs end to end. The builtin figure scenarios feed the figure
// harnesses through the same translations.

// Named method constructors for the CBP predictor comparison (§VI-B).
func MethodCBP() Method { return Method{Name: "CBP", Policy: machine.PolicyCBP} }
func MethodCBPFullPath() Method {
	return Method{Name: "CBP+FullPath", Policy: machine.PolicyCBPFullPath}
}

// MethodByName maps a scenario policy name (scenario.Policies) to its Method.
func MethodByName(name string) (Method, bool) {
	switch name {
	case "Default":
		return MethodDefault(), true
	case "MBA":
		return MethodMBA(0), true
	case "MPAM":
		return MethodMPAM(), true
	case "FullPath":
		return MethodFullPath(), true
	case "PIVOT":
		return MethodPIVOT(), true
	case "CBP":
		return MethodCBP(), true
	case "CBP+FullPath":
		return MethodCBPFullPath(), true
	case "PARTIES":
		return MethodPARTIES(), true
	case "CLITE":
		return MethodCLITE(), true
	}
	return Method{}, false
}

// mustMethod resolves a policy name a validated scenario carries.
func mustMethod(name string) Method {
	m, ok := MethodByName(name)
	if !ok {
		panic("exp: unknown policy " + name)
	}
	return m
}

// methodsOf derives a figure's method list from its scenario's policy axis.
func methodsOf(sc *scenario.Scenario) []Method {
	names := sc.MustAxis("policy").Strings()
	out := make([]Method, len(names))
	for i, n := range names {
		out[i] = mustMethod(n)
	}
	return out
}

// beThreads caps a scenario's declared BE thread count at the scale's bound:
// the builtins declare the paper's 7-thread stressor, which coarser test
// scales shrink along with everything else.
func (ctx *Context) beThreads(declared int) int {
	if declared > ctx.Scale.MaxBEThreads {
		return ctx.Scale.MaxBEThreads
	}
	return declared
}

// ConfigFor instantiates the machine a scenario requests; defaultCores fills
// in when the scenario does not set machine.cores.
func ConfigFor(m scenario.Machine, defaultCores int) machine.Config {
	cores := m.Cores
	if cores <= 0 {
		cores = defaultCores
	}
	var cfg machine.Config
	if m.Preset == scenario.PresetNeoverse {
		cfg = machine.NeoverseConfig(cores)
	} else {
		cfg = machine.KunpengConfig(cores)
	}
	if m.BEWays > 0 {
		cfg.BEWays = m.BEWays
	}
	return cfg
}

// ForScenario returns the context a scenario runs on: ctx itself when the
// scenario keeps ctx's machine, otherwise a sibling context over the
// requested configuration (sharing scale, robustness settings and run
// context, recalibrating from scratch). Either way the scenario's inline
// custom applications become resolvable by name on the returned context.
func (ctx *Context) ForScenario(sc *scenario.Scenario) *Context {
	out := ctx
	if cfg := ConfigFor(sc.Machine, ctx.Cfg.Cores); cfg != ctx.Cfg {
		out = ctx.sibling(cfg)
	}
	if sc.Sim != nil && sc.Sim.Parallel > 0 {
		// Execution-engine override: results are bit-identical either way, so
		// a shallow copy (sharing calibration caches) is safe.
		if out == ctx {
			cp := *ctx
			out = &cp
		}
		out.Parallel = sc.Sim.Parallel
	}
	out.RegisterScenarioApps(sc)
	return out
}

// RegisterScenarioApps makes a scenario's inline custom applications
// resolvable by name — in calibration, offline profiling and runs — on this
// context. Validation has already guaranteed the names collide with nothing.
func (ctx *Context) RegisterScenarioApps(sc *scenario.Scenario) {
	ctx.sh.appMu.Lock()
	defer ctx.sh.appMu.Unlock()
	for i := range sc.Tasks {
		t := &sc.Tasks[i]
		if t.LCParams != nil {
			ctx.sh.customLC[t.LCParams.Name] = t.LCParams.ToWorkload()
		}
		if t.BEParams != nil {
			ctx.sh.customBE[t.BEParams.Name] = t.BEParams.ToWorkload()
		}
	}
}

// lcParams resolves an LC app name: scenario-registered custom apps first,
// then the workload catalogue.
func (ctx *Context) lcParams(app string) workload.LCParams {
	ctx.sh.appMu.RLock()
	p, ok := ctx.sh.customLC[app]
	ctx.sh.appMu.RUnlock()
	if ok {
		return p
	}
	return workload.LCApps()[app]
}

// beParams resolves a BE app name the same way.
func (ctx *Context) beParams(app string) workload.BEParams {
	ctx.sh.appMu.RLock()
	p, ok := ctx.sh.customBE[app]
	ctx.sh.appMu.RUnlock()
	if ok {
		return p
	}
	return workload.BEApps()[app]
}

// OptionsFor translates scenario options into machine options. Zero scenario
// values stay zero here; machine.Options.normalize applies the defaults.
// Exported for executors that build machines from scenarios without the
// harness (the scenario fuzzer).
func OptionsFor(o scenario.Options) machine.Options { return optionsFor(o) }

// optionsFor translates scenario options into machine options. Zero scenario
// values stay zero here; machine.Options.normalize applies the defaults.
func optionsFor(o scenario.Options) machine.Options {
	opt := machine.Options{
		ExpectedLCBW:      o.ExpectedLCBW,
		Prefetch:          o.Prefetch,
		NoStarvationGuard: o.NoStarvationGuard,
	}
	if msc, ok := scenario.MSC(o.DisableMSC); ok {
		opt.DisableMSC = msc
	}
	if o.RRBPEntries != 0 {
		opt.RRBP = rrbpSized(o.RRBPEntries)
	}
	return opt
}

// FaultPlanFor compiles a scenario's `faults` stanza into the injector plan
// faultinject.AttachPlan consumes. The scenario must have passed Validate
// (unknown station names panic here). Nil in, nil out.
func FaultPlanFor(f *scenario.Faults) *faultinject.Plan {
	if f == nil {
		return nil
	}
	plan := &faultinject.Plan{
		Seed:     f.Seed,
		Stations: make(map[mem.Component]faultinject.Config, len(f.Stations)),
	}
	for name, r := range f.Stations {
		comp, ok := scenario.MSC(name)
		if !ok {
			panic("exp: fault plan names unknown MSC " + name)
		}
		plan.Stations[comp] = faultinject.Config{
			DropProb:    r.Drop,
			SpikeProb:   r.Spike,
			SpikeCycles: sim.Cycle(r.SpikeCycles),
			HoldProb:    r.Hold,
		}
	}
	return plan
}

// rrbpSized builds the RRBP geometry for a scenario's rrbp_entries knob:
// n > 0 sizes the table, -1 makes it unlimited (fully associative).
func rrbpSized(n int) rrbp.Config {
	cfg := rrbp.DefaultConfig()
	cfg.RefreshCycles = machine.ScaledRRBPRefresh
	if n > 0 {
		cfg.Entries = n
	} else {
		cfg.Entries = 0
	}
	return cfg
}

// SpecForUnit converts one expanded scenario run unit into the harness's
// execution form. Declared BE thread counts are honoured as-is (the core
// budget was validated); run ForScenario first so inline custom apps resolve.
func (ctx *Context) SpecForUnit(u scenario.RunUnit) (RunSpec, error) {
	sc := u.Scenario
	mth, ok := MethodByName(sc.Policy)
	if !ok {
		return RunSpec{}, fmt.Errorf("exp: scenario %s: unknown policy %q", sc.Name, sc.Policy)
	}
	if mth.Policy == machine.PolicyMBA {
		mth.MBALevel = sc.Options.MBALevel
	}
	spec := RunSpec{
		Method:    mth,
		Opt:       optionsFor(sc.Options),
		Seed:      sc.Seed,
		Warmup:    sim.Cycle(sc.Warmup),
		Measure:   sim.Cycle(sc.Measure),
		FaultPlan: FaultPlanFor(sc.Faults),
	}
	for i := range sc.Tasks {
		t := &sc.Tasks[i]
		if t.Kind == scenario.KindLC {
			spec.LCs = append(spec.LCs, LCSpec{
				App:          t.AppName(),
				LoadPct:      t.LoadPct,
				Interarrival: t.Interarrival,
				ExpectedBW:   t.ExpectedBW,
				Load:         t.Load.ToLoad(),
			})
		} else {
			spec.BEs = append(spec.BEs, BESpec{App: t.AppName(), Threads: t.ThreadCount()})
		}
	}
	return spec, nil
}

// UnitResolver returns a function resolving the context each run unit of a
// scenario executes on. Most units keep the scenario's machine and share one
// context, but a machine-parameter sweep axis (machine.cores, machine.be_ways)
// gives different units different configurations — those get sibling
// contexts, memoised per configuration so units with the same machine share
// calibration caches. The resolver is safe for concurrent harness workers;
// each resolved context has the unit's inline custom apps registered.
func (ctx *Context) UnitResolver() func(scenario.RunUnit) *Context {
	memo := map[machine.Config]*Context{ctx.Cfg: ctx}
	var mu sync.Mutex
	return func(u scenario.RunUnit) *Context {
		sc := u.Scenario
		cfg := ConfigFor(sc.Machine, ctx.Cfg.Cores)
		mu.Lock()
		out, ok := memo[cfg]
		if !ok {
			out = ctx.sibling(cfg)
			memo[cfg] = out
		}
		mu.Unlock()
		out.RegisterScenarioApps(sc)
		return out
	}
}

// RunScenario validates, expands and executes a user-authored scenario
// serially, one row per run unit. cmd/pivot-exp runs the same units through
// the parallel harness instead (harness.ScenarioJobs) and renders the rows
// with ScenarioTable.
func (ctx *Context) RunScenario(sc *scenario.Scenario) (*metrics.Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	units, err := sc.Expand()
	if err != nil {
		return nil, err
	}
	resolve := ctx.UnitResolver()
	labels := make([]string, len(units))
	results := make([]RunResult, len(units))
	for i, u := range units {
		rctx := resolve(u)
		spec, err := rctx.SpecForUnit(u)
		if err != nil {
			return nil, err
		}
		labels[i] = UnitLabel(sc, u)
		r, err := rctx.Run(spec)
		if err != nil {
			return nil, fmt.Errorf("exp: scenario %s, unit %q: %w", sc.Name, labels[i], err)
		}
		results[i] = r
	}
	return ScenarioTable(sc, labels, results), nil
}

// UnitLabel names a run unit in tables and job IDs; a sweep-free scenario's
// single unit takes the scenario name.
func UnitLabel(sc *scenario.Scenario, u scenario.RunUnit) string {
	if u.Label == "" {
		return sc.Name
	}
	return u.Label
}

// ScenarioTable renders per-unit results as the scenario summary table
// (per-LC columns are "/"-joined in task order).
func ScenarioTable(sc *scenario.Scenario, labels []string, results []RunResult) *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Scenario %s (%d run units)", sc.Name, len(results)),
		Headers: []string{"unit", "p95", "QoS", "LC IPC", "BE ipc", "BW util"},
	}
	for i, r := range results {
		t.AddRow(labels[i],
			joinEach(r.P95, func(v uint32) string { return fmt.Sprint(v) }),
			qosMark(r),
			joinEach(r.LCIPC, func(v float64) string { return fmt.Sprintf("%.3f", v) }),
			fmt.Sprintf("%.4f", r.BEIPC),
			fmt.Sprintf("%.3f", r.BWUtil))
	}
	return t
}

// joinEach renders a per-LC metric slice as one "/"-joined cell.
func joinEach[T any](vs []T, f func(T) string) string {
	if len(vs) == 0 {
		return "-"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = f(v)
	}
	return strings.Join(parts, "/")
}
