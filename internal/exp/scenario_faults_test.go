package exp

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"pivot/internal/machine"
	"pivot/internal/scenario"
)

// axisOf builds a sweep axis from Go values.
func axisOf(t *testing.T, param string, vals ...any) scenario.Axis {
	t.Helper()
	a := scenario.Axis{Param: param}
	for _, v := range vals {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		a.Values = append(a.Values, raw)
	}
	return a
}

// faultedScenario is a sweep-free fault-injected mix with explicit
// interarrivals (no calibration needed), sized for test speed.
func faultedScenario() *scenario.Scenario {
	sc := &scenario.Scenario{
		Version: scenario.Version,
		Name:    "faulted",
		Policy:  "Default",
		Warmup:  10_000,
		Measure: 20_000,
		Seed:    1,
		Faults: &scenario.Faults{
			Seed: 5,
			Stations: map[string]scenario.FaultRates{
				"Bus":     {Drop: 0.02},
				"MemCtrl": {Spike: 0.05, SpikeCycles: 100},
			},
		},
	}
	sc.Machine.Cores = 4
	sc.Tasks = []scenario.Task{
		{Kind: scenario.KindLC, App: "masstree", Interarrival: 3_000},
		{Kind: scenario.KindBE, App: "ibench", Threads: 2},
	}
	return sc
}

// TestFaultPlanFor compiles the scenario stanza into a per-station plan.
func TestFaultPlanFor(t *testing.T) {
	if FaultPlanFor(nil) != nil {
		t.Fatalf("FaultPlanFor(nil) != nil")
	}
	sc := faultedScenario()
	plan := FaultPlanFor(sc.Faults)
	if plan == nil || plan.Seed != 5 || len(plan.Stations) != 2 {
		t.Fatalf("plan wrong: %+v", plan)
	}
	bus, ok := scenario.MSC("Bus")
	if !ok {
		t.Fatal("no Bus component")
	}
	if cfg := plan.Stations[bus]; cfg.DropProb != 0.02 {
		t.Errorf("Bus station config wrong: %+v", cfg)
	}
}

// TestScenarioFaultsRun drives a fault-injected scenario through exp.Run end
// to end: the run completes, perturbation is deterministic across repeats,
// and checkpointing is bypassed (the injector's RNG lives outside snapshots).
func TestScenarioFaultsRun(t *testing.T) {
	sc := faultedScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	ckpt := t.TempDir()
	run := func() RunResult {
		ctx := NewContext(machine.KunpengConfig(4), tinyScale())
		ctx.CheckpointDir = ckpt
		ctx.RegisterScenarioApps(sc)
		units, err := sc.Expand()
		if err != nil {
			t.Fatal(err)
		}
		spec, err := ctx.SpecForUnit(units[0])
		if err != nil {
			t.Fatal(err)
		}
		if spec.FaultPlan == nil {
			t.Fatal("SpecForUnit dropped the fault plan")
		}
		return tRun(t, ctx, spec)
	}
	a, b := run(), run()
	if a.BEIPC != b.BEIPC || a.P95[0] != b.P95[0] {
		t.Fatalf("fault-injected runs diverged: %+v vs %+v", a, b)
	}
	dirents, err := os.ReadDir(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirents) != 0 {
		t.Fatalf("fault-injected run wrote checkpoints: %v", dirents)
	}
}

// TestScenarioMachineAxis runs a machine.cores sweep end to end through
// RunScenario: per-unit sibling contexts build differently sized machines
// and the summary table carries one row per geometry.
func TestScenarioMachineAxis(t *testing.T) {
	sc := &scenario.Scenario{
		Version: scenario.Version,
		Name:    "cores-sweep",
		Policy:  "Default",
		Warmup:  10_000,
		Measure: 20_000,
		Seed:    1,
	}
	sc.Machine.Cores = 2
	sc.Sweep = []scenario.Axis{axisOf(t, "machine.cores", 2, 4)}
	sc.Tasks = []scenario.Task{
		{Kind: scenario.KindLC, App: "masstree", Interarrival: 3_000},
		{Kind: scenario.KindBE, App: "ibench", Threads: 1},
	}
	ctx := NewContext(machine.KunpengConfig(2), tinyScale())

	// The axis must reach the built machine, not just the row label: each
	// unit resolves to a context whose config carries that unit's core count
	// (and, since the presets scale the LLC with cores, a different cache).
	units, err := sc.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	resolve := ctx.UnitResolver()
	for i, wantCores := range []int{2, 4} {
		cfg := resolve(units[i]).Cfg
		if cfg.Cores != wantCores {
			t.Errorf("unit %d resolved to %d cores, want %d", i, cfg.Cores, wantCores)
		}
		if want := wantCores * (2 << 20); cfg.LLC.SizeBytes != want {
			t.Errorf("unit %d LLC is %d bytes, want %d", i, cfg.LLC.SizeBytes, want)
		}
	}

	tbl, err := ctx.RunScenario(sc)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("table has %d rows, want 2", len(tbl.Rows))
	}
	for i, wantLabel := range []string{"machine.cores=2", "machine.cores=4"} {
		if !strings.Contains(tbl.Rows[i][0], wantLabel) {
			t.Errorf("row %d label %q, want %q", i, tbl.Rows[i][0], wantLabel)
		}
	}
}
