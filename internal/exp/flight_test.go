package exp

import (
	"bytes"
	"testing"

	"pivot/internal/machine"
	"pivot/internal/workload"
)

// fig1Spec is the Fig 1 motivation mix (one LC vs the iBench stressor) with a
// pinned inter-arrival so no calibration sweep runs.
func fig1Spec() RunSpec {
	return RunSpec{
		Method: MethodDefault(),
		LCs:    []LCSpec{{App: workload.ImgDNN, Interarrival: 5000}},
		BEs:    []BESpec{{App: workload.IBench, Threads: 2}},
	}
}

// flightCtx is a tiny harness context with the flight recorder armed.
func flightCtx() *Context {
	ctx := tinyCtx()
	ctx.FlightTop = 16
	ctx.FlightSample = 128
	return ctx
}

// reportJSON runs the spec on ctx and renders the captured report.
func reportJSON(t *testing.T, ctx *Context, spec RunSpec) []byte {
	t.Helper()
	if _, err := ctx.Run(spec); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := ctx.LastFlight()
	if rep == nil {
		t.Fatal("flight-armed run captured no report")
	}
	if rep.Demand == 0 || len(rep.Slowest) == 0 {
		t.Fatalf("degenerate report: %d demand, %d slow", rep.Demand, len(rep.Slowest))
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFlightReportStableAcrossModes is the PR's acceptance criterion at the
// harness level: the Fig 1 mix's tail-attribution report must be byte-
// identical whether the run executed dense, skip-ahead, or skip-ahead killed
// mid-measure and resumed from its checkpoints.
func TestFlightReportStableAcrossModes(t *testing.T) {
	spec := fig1Spec()

	dense := flightCtx()
	dense.Dense = true
	denseRep := reportJSON(t, dense, spec)

	skip := flightCtx()
	skipRep := reportJSON(t, skip, spec)

	if !bytes.Equal(denseRep, skipRep) {
		t.Errorf("report differs dense vs skip-ahead:\n--- dense ---\n%s\n--- skip ---\n%s", denseRep, skipRep)
	}

	// Kill-and-resume: a cycle budget mid-measure stands in for SIGKILL, then
	// the identical invocation resumes from the flushed checkpoint.
	resume := flightCtx()
	resume.CheckpointDir = t.TempDir()
	resume.CheckpointInterval = 40_000
	abortSpec := spec
	abortSpec.Opt.MaxCycles = resume.Scale.Warmup + resume.Scale.Measure/2
	if _, err := resume.Run(abortSpec); err == nil {
		t.Fatal("budget-bounded run did not abort")
	}
	resumeRep := reportJSON(t, resume, spec)
	if !bytes.Equal(denseRep, resumeRep) {
		t.Errorf("report differs after kill-and-resume:\n--- dense ---\n%s\n--- resumed ---\n%s", denseRep, resumeRep)
	}
}

// TestFlightCheckpointDirKeying: flight settings are part of the checkpoint
// identity, so a flight-armed rerun never tries to restore a recorder-less
// run's snapshots (and vice versa).
func TestFlightCheckpointDirKeying(t *testing.T) {
	plain := tinyCtx()
	armed := flightCtx()
	dir := t.TempDir()
	plain.CheckpointDir, armed.CheckpointDir = dir, dir

	spec := fig1Spec()
	m := machine.MustNew(plain.Cfg, machine.Options{Policy: machine.PolicyDefault},
		[]machine.TaskSpec{{Kind: machine.TaskLC, LC: workload.LCApps()[workload.Silo], MeanInterarrival: 5000, Seed: 1}})
	a := plain.checkpointDir(m, spec, plain.Scale.Warmup, plain.Scale.Measure)
	b := armed.checkpointDir(m, spec, armed.Scale.Warmup, armed.Scale.Measure)
	if a == "" || b == "" {
		t.Fatal("checkpointing denied for a plain run")
	}
	if a == b {
		t.Error("flight-armed and recorder-less runs share a checkpoint dir")
	}
}
