package exp

import (
	"fmt"

	"pivot/internal/machine"
	"pivot/internal/manager"
	"pivot/internal/metrics"
	"pivot/internal/scenario"
	"pivot/internal/workload"
)

// The experiments in this file go beyond the paper's evaluation: they
// implement and measure the directions §VII sketches as future work, plus an
// ablation of the prefetcher substitution documented in DESIGN.md §6.1.

// AloneMeanAt interpolates the run-alone mean latency at a percentage of max
// load (the hybrid controller's average-latency baseline).
func (c *AppCalib) AloneMeanAt(pct int) float64 {
	target := c.MaxLoad * float64(pct) / 100
	if len(c.Curve) == 0 {
		return 0
	}
	if target <= c.Curve[0].RPMC {
		return c.Curve[0].Mean
	}
	for i := 1; i < len(c.Curve); i++ {
		a, b := c.Curve[i-1], c.Curve[i]
		if target <= b.RPMC {
			f := (target - a.RPMC) / (b.RPMC - a.RPMC)
			return a.Mean + f*(b.Mean-a.Mean)
		}
	}
	return c.Curve[len(c.Curve)-1].Mean
}

// Hybrid — §VII: PIVOT's weak isolation can raise LC *average* latency in
// some co-locations; the hybrid controller trades strong isolation back in
// when a mean-latency target is at risk. Reports mean and p95 latency and BE
// throughput for PIVOT alone vs PIVOT+Hybrid.
func (ctx *Context) Hybrid() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Extension (§VII): hybrid strong isolation — mean/p95/BE throughput",
		Headers: []string{"app", "method", "mean", "mean target", "p95", "BE ipc", "MBA lvl"},
	}
	sc := scenario.MustBuiltin("hybrid")
	load := sc.Tasks[0].LoadPct
	bes := []BESpec{{App: sc.Tasks[1].App, Threads: ctx.beThreads(sc.Tasks[1].ThreadCount())}}
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		cal, err := ctx.Calib(app)
		if err != nil {
			return nil, err
		}
		meanTarget := 1.5 * cal.AloneMeanAt(load)

		// PIVOT alone.
		r, err := ctx.Run(RunSpec{Method: mustMethod(sc.Policy),
			LCs: []LCSpec{{App: app, LoadPct: load}}, BEs: bes})
		if err != nil {
			return nil, err
		}
		t.AddRow(app, "PIVOT",
			fmt.Sprintf("%.0f", r.MeanLat[0]), fmt.Sprintf("%.0f", meanTarget),
			fmt.Sprint(r.P95[0]), fmt.Sprintf("%.4f", r.BEIPC), "100")

		// PIVOT + hybrid strong isolation.
		hr, lvl, err := ctx.runHybrid(app, load, bes, meanTarget)
		if err != nil {
			return nil, err
		}
		t.AddRow(app, "PIVOT+Hybrid",
			fmt.Sprintf("%.0f", hr.MeanLat[0]), fmt.Sprintf("%.0f", meanTarget),
			fmt.Sprint(hr.P95[0]), fmt.Sprintf("%.4f", hr.BEIPC), fmt.Sprint(lvl))
	}
	return t, nil
}

// runHybrid builds a PIVOT machine and drives it under the hybrid manager.
func (ctx *Context) runHybrid(app string, pct int, bes []BESpec, meanTarget float64) (RunResult, int, error) {
	cal, err := ctx.Calib(app)
	if err != nil {
		return RunResult{}, 0, err
	}
	tasks := []machine.TaskSpec{{
		Kind: machine.TaskLC, LC: cal.App,
		MeanInterarrival: cal.MeanIAAt(pct),
		Potential:        ctx.Potential(app),
		ExpectedBW:       0.9 * cal.AloneBWAt(pct),
		Seed:             ctx.Scale.Seed,
	}}
	for _, be := range bes {
		a := ctx.beParams(be.App)
		for i := 0; i < be.Threads && len(tasks) < ctx.Cfg.Cores; i++ {
			tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE, BE: a,
				Seed: ctx.Scale.Seed + uint64(10+len(tasks))})
		}
	}
	m, err := machine.New(ctx.Cfg, ctx.guard(machine.Options{Policy: machine.PolicyPIVOT}), tasks)
	if err != nil {
		return RunResult{}, 0, err
	}
	h := manager.NewHybrid([]float64{meanTarget})
	if err := manager.RunChecked(ctx.runContext(), h, m, ctx.Scale.Warmup, ctx.Scale.Measure, ctx.Scale.Epoch); err != nil {
		return RunResult{}, 0, err
	}

	src := m.LCTasks()[0].Source
	var r RunResult
	r.P95 = []uint32{m.LCp95(0)}
	r.MeanLat = []float64{src.RecentMean(0)}
	r.BEIPC = float64(m.BECommitted()) / float64(m.MeasuredCycles())
	r.BWUtil = m.BWUtil()
	return r, h.Level(), nil
}

// NoProfile — §VII: multi-tenant clouds cannot offline-profile unknown LC
// tasks. Running PIVOT with no potential set (every load measured online)
// works for small-instruction-footprint microservices but degrades for
// data-center-size footprints, where unfiltered loads alias destructively in
// the 64-entry RRBP.
func (ctx *Context) NoProfile() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Extension (§VII): PIVOT without offline profiling",
		Headers: []string{"app", "footprint", "variant", "p95/QoS", "QoS", "BE ipc"},
	}
	sc := scenario.MustBuiltin("noprofile")
	load := sc.Tasks[0].LoadPct
	beApp := sc.Tasks[1].App
	nBE := ctx.beThreads(sc.Tasks[1].ThreadCount())
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		cal, err := ctx.Calib(app)
		if err != nil {
			return nil, err
		}
		footprint := fmt.Sprint(len(workload.NewReqGen(cal.App, 0, nil).ChasePCs())+
			cal.App.PayloadPCs) + " loads"

		run := func(withProfile bool) (RunResult, error) {
			tasks := []machine.TaskSpec{{
				Kind: machine.TaskLC, LC: cal.App,
				MeanInterarrival: cal.MeanIAAt(load),
				ExpectedBW:       0.9 * cal.AloneBWAt(load),
				Seed:             ctx.Scale.Seed,
			}}
			if withProfile {
				tasks[0].Potential = ctx.Potential(app)
			}
			for i := 0; i < nBE && len(tasks) < ctx.Cfg.Cores; i++ {
				tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE,
					BE:   ctx.beParams(beApp),
					Seed: ctx.Scale.Seed + uint64(10+len(tasks))})
			}
			m, err := machine.New(ctx.Cfg, ctx.guard(machine.Options{Policy: machine.PolicyPIVOT}), tasks)
			if err != nil {
				return RunResult{}, err
			}
			if err := m.RunChecked(ctx.runContext(), ctx.Scale.Warmup, ctx.Scale.Measure); err != nil {
				return RunResult{}, err
			}
			var r RunResult
			p95 := m.LCp95(0)
			r.P95 = []uint32{p95}
			r.AllQoS = p95 != 0 && p95 <= cal.QoSTarget
			r.BEIPC = float64(m.BECommitted()) / float64(m.MeasuredCycles())
			return r, nil
		}
		for _, variant := range []struct {
			name string
			with bool
		}{{"two-phase (profiled)", true}, {"online-only", false}} {
			r, err := run(variant.with)
			if err != nil {
				return nil, err
			}
			t.AddRow(app, footprint, variant.name,
				fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)),
				qosMark(r), fmt.Sprintf("%.4f", r.BEIPC))
		}
	}
	return t, nil
}

// PrefetchAblation — DESIGN.md §6.1 folds hardware-prefetch concurrency into
// the L1 miss buffers; this ablation turns the explicit stride prefetcher on
// and reports what it changes for a streaming-payload LC task under PIVOT.
func (ctx *Context) PrefetchAblation() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Ablation: explicit stride prefetcher (DESIGN.md §6.1)",
		Headers: []string{"app", "prefetch", "p95/QoS", "BE ipc", "BW util"},
	}
	sc := scenario.MustBuiltin("prefetch")
	load := sc.Tasks[0].LoadPct
	rn := ctx.runner()
	bes := []BESpec{{App: sc.Tasks[1].App, Threads: ctx.beThreads(sc.Tasks[1].ThreadCount())}}
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		cal := rn.calib(app)
		for _, pf := range sc.MustAxis("options.prefetch").Bools() {
			r := rn.run(RunSpec{Method: mustMethod(sc.Policy),
				LCs: []LCSpec{{App: app, LoadPct: load}}, BEs: bes,
				Opt: machine.Options{Prefetch: pf}})
			t.AddRow(app, fmt.Sprint(pf),
				fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)),
				fmt.Sprintf("%.4f", r.BEIPC),
				fmt.Sprintf("%.3f", r.BWUtil))
		}
	}
	return t, rn.err
}
