package exp

import (
	"fmt"

	"pivot/internal/metrics"
	"pivot/internal/workload"
)

// loadSweep is the LC load grid of §VI-A1 (percent of max load).
var loadSweep = []int{10, 30, 50, 70, 90}

// Fig13 — co-location of 1 LC task and iBench: max BE throughput (% of
// 7-thread-alone) at each LC load, per method, with QoS met.
func (ctx *Context) Fig13() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 13: max iBench throughput (%) vs LC load, QoS met",
		Headers: []string{"app", "load", "Default", "PARTIES", "CLITE", "PIVOT"},
	}
	rn := ctx.runner()
	n := ctx.Scale.MaxBEThreads
	for _, app := range workload.LCNames() {
		for _, pct := range loadSweep {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			cells := []string{app, fmt.Sprintf("%d%%", pct)}
			for _, mth := range fig13Methods() {
				v := rn.maxBE(mth, lcs, workload.IBench, n)
				cells = append(cells, fmt.Sprintf("%.0f", v*100))
			}
			t.AddRow(cells...)
		}
	}
	return t, rn.err
}

// Fig13EMU — the EMU summary quoted in §VI-A1 (Default 86.1%, PARTIES
// 116.0%, CLITE 116.3%, PIVOT 133.2% in the paper).
func (ctx *Context) Fig13EMU() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 13 summary: average EMU (%) across apps and loads",
		Headers: []string{"Default", "PARTIES", "CLITE", "PIVOT"},
	}
	rn := ctx.runner()
	n := ctx.Scale.MaxBEThreads
	sums := make([]float64, 4)
	count := 0
	for _, app := range workload.LCNames() {
		for _, pct := range loadSweep {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			for mi, mth := range fig13Methods() {
				v := rn.maxBE(mth, lcs, workload.IBench, n)
				emu := 0.0
				if v > 0 {
					emu = float64(pct) + v*100
				}
				sums[mi] += emu
			}
			count++
		}
	}
	cells := make([]string, 4)
	for i := range sums {
		cells[i] = fmt.Sprintf("%.1f", sums[i]/float64(count))
	}
	t.AddRow(cells...)
	return t, rn.err
}

// Fig14 — the LC tail latency behind Figure 13: normalized p95 at each load
// with the full 7-thread iBench stressor.
func (ctx *Context) Fig14() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 14: normalized p95 with 7-thread iBench (<=1.00 meets QoS)",
		Headers: []string{"app", "load", "Default", "PARTIES", "CLITE", "PIVOT"},
	}
	rn := ctx.runner()
	for _, app := range workload.LCNames() {
		cal := rn.calib(app)
		for _, pct := range loadSweep {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			bes := []BESpec{{App: workload.IBench, Threads: ctx.Scale.MaxBEThreads}}
			cells := []string{app, fmt.Sprintf("%d%%", pct)}
			for _, mth := range fig13Methods() {
				r := rn.run(RunSpec{Method: mth, LCs: lcs, BEs: bes})
				cells = append(cells, fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)))
			}
			t.AddRow(cells...)
		}
	}
	return t, rn.err
}

// fig15Scenarios are the 2-LC + iBench heatmaps of Figure 15.
func fig15Scenarios() [][2]string {
	return [][2]string{
		{workload.Xapian, workload.ImgDNN},
		{workload.Moses, workload.ImgDNN},
	}
}

// gridLoads is the 2-D load grid used for the heatmap figures.
func (ctx *Context) gridLoads() []int {
	if len(ctx.Scale.LoadFracs) <= 5 {
		return []int{30, 70}
	}
	return []int{30, 60, 90}
}

// Fig15 — 2 LC tasks + iBench: max BE throughput (% of 6-thread alone) per
// (load1, load2) cell and method, both LC tasks meeting QoS.
func (ctx *Context) Fig15() ([]*metrics.Table, error) {
	var out []*metrics.Table
	rn := ctx.runner()
	grid := ctx.gridLoads()
	for _, sc := range fig15Scenarios() {
		t := &metrics.Table{
			Title: fmt.Sprintf("Figure 15: %s + %s + iBench — max BE throughput (%%)",
				sc[0], sc[1]),
			Headers: []string{sc[0], sc[1], "Default", "PARTIES", "CLITE", "PIVOT"},
		}
		for _, l1 := range grid {
			for _, l2 := range grid {
				lcs := []LCSpec{{App: sc[0], LoadPct: l1}, {App: sc[1], LoadPct: l2}}
				cells := []string{fmt.Sprintf("%d%%", l1), fmt.Sprintf("%d%%", l2)}
				for _, mth := range fig13Methods() {
					v := rn.maxBE(mth, lcs, workload.IBench, 6)
					cells = append(cells, fmt.Sprintf("%.0f", v*100))
				}
				t.AddRow(cells...)
			}
		}
		out = append(out, t)
	}
	return out, rn.err
}

// fig16Scenarios pair an LC mix with a single CloudSuite BE task.
func fig16Scenarios() []struct {
	LC1, LC2, BE string
} {
	return []struct{ LC1, LC2, BE string }{
		{workload.Xapian, workload.ImgDNN, workload.DataAn},
		{workload.Moses, workload.Silo, workload.GraphAn},
		{workload.Masstree, workload.Xapian, workload.InMemAn},
	}
}

// Fig16 — throughput of a single CloudSuite BE task (normalised to running
// alone on the same thread count) and average memory bandwidth, co-located
// with 2 LC tasks at 50% load.
func (ctx *Context) Fig16() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 16: CloudSuite BE throughput (norm) + avg bandwidth, 2 LC @40%",
		Headers: []string{"scenario", "method", "BE tput", "BW util", "QoS"},
	}
	if err := ctx.fig16Body(t, fig13Methods()[1:]); err != nil { // PARTIES, CLITE, PIVOT
		return nil, err
	}
	return t, nil
}

func (ctx *Context) fig16Body(t *metrics.Table, methods []Method) error {
	rn := ctx.runner()
	beThreads := ctx.Cfg.Cores - 2
	for _, sc := range fig16Scenarios() {
		base := rn.beAlone(sc.BE, beThreads)
		for _, mth := range methods {
			r := rn.run(RunSpec{Method: mth,
				LCs: []LCSpec{{App: sc.LC1, LoadPct: 40}, {App: sc.LC2, LoadPct: 40}},
				BEs: []BESpec{{App: sc.BE, Threads: beThreads}}})
			t.AddRow(fmt.Sprintf("%s+%s/%s", sc.LC1, sc.LC2, sc.BE), mth.Name,
				fmt.Sprintf("%.2f", r.BEIPC/base),
				fmt.Sprintf("%.3f", r.BWUtil),
				qosMark(r))
		}
	}
	return rn.err
}

// fig17Scenarios pair an LC mix with two CloudSuite BE tasks.
func fig17Scenarios() []struct {
	LC1, LC2, BE1, BE2 string
} {
	return []struct{ LC1, LC2, BE1, BE2 string }{
		{workload.Xapian, workload.ImgDNN, workload.DataAn, workload.GraphAn},
		{workload.Moses, workload.Silo, workload.GraphAn, workload.InMemAn},
		{workload.Masstree, workload.Xapian, workload.DataAn, workload.InMemAn},
	}
}

// Fig17 — 2 LC + 2 BE CloudSuite tasks: normalised throughput of the two BE
// tasks and average bandwidth.
func (ctx *Context) Fig17() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 17: 2 LC + 2 BE (CloudSuite) — BE throughput (norm) + bandwidth",
		Headers: []string{"scenario", "method", "BE tput", "BW util", "QoS"},
	}
	if err := ctx.fig17Body(t, fig13Methods()[1:]); err != nil {
		return nil, err
	}
	return t, nil
}

func (ctx *Context) fig17Body(t *metrics.Table, methods []Method) error {
	rn := ctx.runner()
	per := (ctx.Cfg.Cores - 2) / 2
	for _, sc := range fig17Scenarios() {
		base := rn.beAlone(sc.BE1, per) + rn.beAlone(sc.BE2, per)
		for _, mth := range methods {
			r := rn.run(RunSpec{Method: mth,
				LCs: []LCSpec{{App: sc.LC1, LoadPct: 40}, {App: sc.LC2, LoadPct: 40}},
				BEs: []BESpec{{App: sc.BE1, Threads: per}, {App: sc.BE2, Threads: per}}})
			t.AddRow(fmt.Sprintf("%s+%s/%s+%s", sc.LC1, sc.LC2, sc.BE1, sc.BE2), mth.Name,
				fmt.Sprintf("%.2f", r.BEIPC/base),
				fmt.Sprintf("%.3f", r.BWUtil),
				qosMark(r))
		}
	}
	return rn.err
}

func qosMark(r RunResult) string {
	if r.AllQoS {
		return "met"
	}
	return "VIOLATED"
}

// fig18Pairs are the five representative 2-LC co-locations of Figure 18.
func fig18Pairs() [][2]string {
	return [][2]string{
		{workload.Xapian, workload.ImgDNN},
		{workload.Moses, workload.ImgDNN},
		{workload.Silo, workload.Masstree},
		{workload.Moses, workload.Silo},
		{workload.ImgDNN, workload.Moses},
	}
}

// Fig18 — 2-LC co-location frontier: with the first task at a given load,
// the maximum load (% of max) the second task can run at with both meeting
// QoS.
func (ctx *Context) Fig18() ([]*metrics.Table, error) {
	var out []*metrics.Table
	rn := ctx.runner()
	for _, pair := range fig18Pairs() {
		t := &metrics.Table{
			Title:   fmt.Sprintf("Figure 18: max %s load (%%) vs %s load", pair[1], pair[0]),
			Headers: []string{pair[0] + " load", "Default", "PARTIES", "CLITE", "PIVOT"},
		}
		for _, l1 := range ctx.gridLoads() {
			cells := []string{fmt.Sprintf("%d%%", l1)}
			for _, mth := range fig13Methods() {
				cells = append(cells, fmt.Sprintf("%d", rn.maxSecondLoad(mth, pair[0], l1, pair[1])))
			}
			t.AddRow(cells...)
		}
		out = append(out, t)
	}
	return out, rn.err
}

// maxSecondLoad sweeps the second LC task's load downward (100%..10%) and
// returns the highest percentage at which both tasks meet QoS (0 if none).
func (rn *runner) maxSecondLoad(mth Method, app1 string, load1 int, app2 string) int {
	for l2 := 100; l2 >= 10; l2 -= 15 {
		if rn.err != nil {
			return 0
		}
		r := rn.run(RunSpec{Method: mth,
			LCs: []LCSpec{{App: app1, LoadPct: load1}, {App: app2, LoadPct: l2}}})
		if r.AllQoS {
			return l2
		}
	}
	return 0
}

// Fig19 — 3-LC co-location: the (Xapian, Masstree) frontier with Img-DNN at
// low (10%) and high (70%) load.
func (ctx *Context) Fig19() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 19: max Masstree load (%) vs Xapian load, with Img-DNN",
		Headers: []string{"imgdnn", "xapian", "Default", "PARTIES", "CLITE", "PIVOT"},
	}
	rn := ctx.runner()
	for _, imgLoad := range []int{10, 70} {
		for _, xpLoad := range ctx.gridLoads() {
			cells := []string{fmt.Sprintf("%d%%", imgLoad), fmt.Sprintf("%d%%", xpLoad)}
			for _, mth := range fig13Methods() {
				best := 0
				for l := 100; l >= 10 && rn.err == nil; l -= 15 {
					r := rn.run(RunSpec{Method: mth, LCs: []LCSpec{
						{App: workload.Xapian, LoadPct: xpLoad},
						{App: workload.Masstree, LoadPct: l},
						{App: workload.ImgDNN, LoadPct: imgLoad},
					}})
					if r.AllQoS {
						best = l
						break
					}
				}
				cells = append(cells, fmt.Sprint(best))
			}
			t.AddRow(cells...)
		}
	}
	return t, rn.err
}
