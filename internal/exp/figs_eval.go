package exp

import (
	"fmt"

	"pivot/internal/metrics"
	"pivot/internal/scenario"
)

// Fig13 — co-location of 1 LC task and iBench: max BE throughput (% of
// 7-thread-alone) at each LC load, per method, with QoS met.
func (ctx *Context) Fig13() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig13")
	policies := sc.MustAxis("policy").Strings()
	t := &metrics.Table{
		Title:   "Figure 13: max iBench throughput (%) vs LC load, QoS met",
		Headers: append([]string{"app", "load"}, policies...),
	}
	rn := ctx.runner()
	beApp := sc.Tasks[1].App
	n := ctx.beThreads(sc.Tasks[1].ThreadCount())
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		for _, pct := range sc.MustAxis("tasks[0].load_pct").Ints() {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			cells := []string{app, fmt.Sprintf("%d%%", pct)}
			for _, pol := range policies {
				v := rn.maxBE(mustMethod(pol), lcs, beApp, n)
				cells = append(cells, fmt.Sprintf("%.0f", v*100))
			}
			t.AddRow(cells...)
		}
	}
	return t, rn.err
}

// Fig13EMU — the EMU summary quoted in §VI-A1 (Default 86.1%, PARTIES
// 116.0%, CLITE 116.3%, PIVOT 133.2% in the paper).
func (ctx *Context) Fig13EMU() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig13emu")
	policies := sc.MustAxis("policy").Strings()
	t := &metrics.Table{
		Title:   "Figure 13 summary: average EMU (%) across apps and loads",
		Headers: policies,
	}
	rn := ctx.runner()
	beApp := sc.Tasks[1].App
	n := ctx.beThreads(sc.Tasks[1].ThreadCount())
	sums := make([]float64, len(policies))
	count := 0
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		for _, pct := range sc.MustAxis("tasks[0].load_pct").Ints() {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			for mi, pol := range policies {
				v := rn.maxBE(mustMethod(pol), lcs, beApp, n)
				emu := 0.0
				if v > 0 {
					emu = float64(pct) + v*100
				}
				sums[mi] += emu
			}
			count++
		}
	}
	cells := make([]string, len(sums))
	for i := range sums {
		cells[i] = fmt.Sprintf("%.1f", sums[i]/float64(count))
	}
	t.AddRow(cells...)
	return t, rn.err
}

// Fig14 — the LC tail latency behind Figure 13: normalized p95 at each load
// with the full 7-thread iBench stressor.
func (ctx *Context) Fig14() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig14")
	policies := sc.MustAxis("policy").Strings()
	t := &metrics.Table{
		Title:   "Figure 14: normalized p95 with 7-thread iBench (<=1.00 meets QoS)",
		Headers: append([]string{"app", "load"}, policies...),
	}
	rn := ctx.runner()
	bes := []BESpec{{App: sc.Tasks[1].App, Threads: ctx.beThreads(sc.Tasks[1].ThreadCount())}}
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		cal := rn.calib(app)
		for _, pct := range sc.MustAxis("tasks[0].load_pct").Ints() {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			cells := []string{app, fmt.Sprintf("%d%%", pct)}
			for _, pol := range policies {
				r := rn.run(RunSpec{Method: mustMethod(pol), LCs: lcs, BEs: bes})
				cells = append(cells, fmt.Sprintf("%.2f", float64(r.P95[0])/float64(cal.QoSTarget)))
			}
			t.AddRow(cells...)
		}
	}
	return t, rn.err
}

// gridLoads is the 2-D load grid used for the heatmap figures.
func (ctx *Context) gridLoads() []int {
	if len(ctx.Scale.LoadFracs) <= 5 {
		return []int{30, 70}
	}
	return []int{30, 60, 90}
}

// Fig15 — 2 LC tasks + iBench: max BE throughput (% of 6-thread alone) per
// (load1, load2) cell and method, both LC tasks meeting QoS.
func (ctx *Context) Fig15() ([]*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig15")
	policies := sc.MustAxis("policy").Strings()
	beApp := sc.Tasks[2].App
	beThreads := sc.Tasks[2].ThreadCount()
	var out []*metrics.Table
	rn := ctx.runner()
	grid := ctx.gridLoads()
	for _, pair := range sc.MustTupleAxis().Tuples() {
		t := &metrics.Table{
			Title: fmt.Sprintf("Figure 15: %s + %s + iBench — max BE throughput (%%)",
				pair[0], pair[1]),
			Headers: append([]string{pair[0], pair[1]}, policies...),
		}
		for _, l1 := range grid {
			for _, l2 := range grid {
				lcs := []LCSpec{{App: pair[0], LoadPct: l1}, {App: pair[1], LoadPct: l2}}
				cells := []string{fmt.Sprintf("%d%%", l1), fmt.Sprintf("%d%%", l2)}
				for _, pol := range policies {
					v := rn.maxBE(mustMethod(pol), lcs, beApp, beThreads)
					cells = append(cells, fmt.Sprintf("%.0f", v*100))
				}
				t.AddRow(cells...)
			}
		}
		out = append(out, t)
	}
	return out, rn.err
}

// Fig16 — throughput of a single CloudSuite BE task (normalised to running
// alone on the same thread count) and average memory bandwidth, co-located
// with 2 LC tasks at 50% load.
func (ctx *Context) Fig16() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 16: CloudSuite BE throughput (norm) + avg bandwidth, 2 LC @40%",
		Headers: []string{"scenario", "method", "BE tput", "BW util", "QoS"},
	}
	if err := ctx.fig16Body(t, scenario.MustBuiltin("fig16")); err != nil {
		return nil, err
	}
	return t, nil
}

// fig16Body renders a fig16-shaped scenario (2 LC + 1 CloudSuite BE triples
// on a tuple axis). The BE task fills the cores the two LC tasks leave free,
// whatever the scenario declares.
func (ctx *Context) fig16Body(t *metrics.Table, sc *scenario.Scenario) error {
	rn := ctx.runner()
	policies := sc.MustAxis("policy").Strings()
	loads := [2]int{sc.Tasks[0].LoadPct, sc.Tasks[1].LoadPct}
	beThreads := ctx.Cfg.Cores - 2
	for _, tr := range sc.MustTupleAxis().Tuples() {
		lc1, lc2, be := tr[0], tr[1], tr[2]
		base := rn.beAlone(be, beThreads)
		for _, pol := range policies {
			mth := mustMethod(pol)
			r := rn.run(RunSpec{Method: mth,
				LCs: []LCSpec{{App: lc1, LoadPct: loads[0]}, {App: lc2, LoadPct: loads[1]}},
				BEs: []BESpec{{App: be, Threads: beThreads}}})
			t.AddRow(fmt.Sprintf("%s+%s/%s", lc1, lc2, be), mth.Name,
				fmt.Sprintf("%.2f", r.BEIPC/base),
				fmt.Sprintf("%.3f", r.BWUtil),
				qosMark(r))
		}
	}
	return rn.err
}

// Fig17 — 2 LC + 2 BE CloudSuite tasks: normalised throughput of the two BE
// tasks and average bandwidth.
func (ctx *Context) Fig17() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 17: 2 LC + 2 BE (CloudSuite) — BE throughput (norm) + bandwidth",
		Headers: []string{"scenario", "method", "BE tput", "BW util", "QoS"},
	}
	if err := ctx.fig17Body(t, scenario.MustBuiltin("fig17")); err != nil {
		return nil, err
	}
	return t, nil
}

// fig17Body renders a fig17-shaped scenario (2 LC + 2 CloudSuite BE quads on
// a tuple axis), splitting the free cores evenly between the two BE tasks.
func (ctx *Context) fig17Body(t *metrics.Table, sc *scenario.Scenario) error {
	rn := ctx.runner()
	policies := sc.MustAxis("policy").Strings()
	loads := [2]int{sc.Tasks[0].LoadPct, sc.Tasks[1].LoadPct}
	per := (ctx.Cfg.Cores - 2) / 2
	for _, qd := range sc.MustTupleAxis().Tuples() {
		lc1, lc2, be1, be2 := qd[0], qd[1], qd[2], qd[3]
		base := rn.beAlone(be1, per) + rn.beAlone(be2, per)
		for _, pol := range policies {
			mth := mustMethod(pol)
			r := rn.run(RunSpec{Method: mth,
				LCs: []LCSpec{{App: lc1, LoadPct: loads[0]}, {App: lc2, LoadPct: loads[1]}},
				BEs: []BESpec{{App: be1, Threads: per}, {App: be2, Threads: per}}})
			t.AddRow(fmt.Sprintf("%s+%s/%s+%s", lc1, lc2, be1, be2), mth.Name,
				fmt.Sprintf("%.2f", r.BEIPC/base),
				fmt.Sprintf("%.3f", r.BWUtil),
				qosMark(r))
		}
	}
	return rn.err
}

func qosMark(r RunResult) string {
	if r.AllQoS {
		return "met"
	}
	return "VIOLATED"
}

// Fig18 — 2-LC co-location frontier: with the first task at a given load,
// the maximum load (% of max) the second task can run at with both meeting
// QoS.
func (ctx *Context) Fig18() ([]*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig18")
	policies := sc.MustAxis("policy").Strings()
	var out []*metrics.Table
	rn := ctx.runner()
	for _, pair := range sc.MustTupleAxis().Tuples() {
		t := &metrics.Table{
			Title:   fmt.Sprintf("Figure 18: max %s load (%%) vs %s load", pair[1], pair[0]),
			Headers: append([]string{pair[0] + " load"}, policies...),
		}
		for _, l1 := range ctx.gridLoads() {
			cells := []string{fmt.Sprintf("%d%%", l1)}
			for _, pol := range policies {
				cells = append(cells, fmt.Sprintf("%d", rn.maxSecondLoad(mustMethod(pol), pair[0], l1, pair[1])))
			}
			t.AddRow(cells...)
		}
		out = append(out, t)
	}
	return out, rn.err
}

// maxSecondLoad sweeps the second LC task's load downward (100%..10%) and
// returns the highest percentage at which both tasks meet QoS (0 if none).
func (rn *runner) maxSecondLoad(mth Method, app1 string, load1 int, app2 string) int {
	for l2 := 100; l2 >= 10; l2 -= 15 {
		if rn.err != nil {
			return 0
		}
		r := rn.run(RunSpec{Method: mth,
			LCs: []LCSpec{{App: app1, LoadPct: load1}, {App: app2, LoadPct: l2}}})
		if r.AllQoS {
			return l2
		}
	}
	return 0
}

// Fig19 — 3-LC co-location: the (Xapian, Masstree) frontier with Img-DNN at
// low (10%) and high (70%) load.
func (ctx *Context) Fig19() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig19")
	policies := sc.MustAxis("policy").Strings()
	xapian, masstree, imgdnn := sc.Tasks[0].App, sc.Tasks[1].App, sc.Tasks[2].App
	t := &metrics.Table{
		Title:   "Figure 19: max Masstree load (%) vs Xapian load, with Img-DNN",
		Headers: append([]string{"imgdnn", "xapian"}, policies...),
	}
	rn := ctx.runner()
	for _, imgLoad := range sc.MustAxis("tasks[2].load_pct").Ints() {
		for _, xpLoad := range ctx.gridLoads() {
			cells := []string{fmt.Sprintf("%d%%", imgLoad), fmt.Sprintf("%d%%", xpLoad)}
			for _, pol := range policies {
				best := 0
				for l := 100; l >= 10 && rn.err == nil; l -= 15 {
					r := rn.run(RunSpec{Method: mustMethod(pol), LCs: []LCSpec{
						{App: xapian, LoadPct: xpLoad},
						{App: masstree, LoadPct: l},
						{App: imgdnn, LoadPct: imgLoad},
					}})
					if r.AllQoS {
						best = l
						break
					}
				}
				cells = append(cells, fmt.Sprint(best))
			}
			t.AddRow(cells...)
		}
	}
	return t, rn.err
}
