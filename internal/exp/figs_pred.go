package exp

import (
	"fmt"

	"pivot/internal/machine"
	"pivot/internal/metrics"
	"pivot/internal/profile"
	"pivot/internal/rrbp"
	"pivot/internal/scenario"
	"pivot/internal/sim"
)

// Fig20 — load-criticality prediction methods (§VI-B): max BE throughput
// when the LC task meets QoS, comparing CBP (memory controller only),
// Binary-CBP + full path, and PIVOT.
func (ctx *Context) Fig20() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig20")
	policies := sc.MustAxis("policy").Strings()
	t := &metrics.Table{
		Title:   "Figure 20: criticality predictors — max iBench throughput (%)",
		Headers: append([]string{"app", "load"}, policies...),
	}
	rn := ctx.runner()
	beApp := sc.Tasks[1].App
	n := ctx.beThreads(sc.Tasks[1].ThreadCount())
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		for _, pct := range sc.MustAxis("tasks[0].load_pct").Ints() {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			cells := []string{app, fmt.Sprintf("%d%%", pct)}
			for _, pol := range policies {
				v := rn.maxBE(mustMethod(pol), lcs, beApp, n)
				cells = append(cells, fmt.Sprintf("%.0f", v*100))
			}
			t.AddRow(cells...)
		}
	}
	return t, rn.err
}

// Fig21 — IPC and p95 of each LC task at 70% max load, running alone.
func (ctx *Context) Fig21() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 21: run-alone IPC and p95 at 70% max load",
		Headers: []string{"app", "IPC", "p95 (cycles)", "QoS target"},
	}
	sc := scenario.MustBuiltin("fig21")
	rn := ctx.runner()
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		r := rn.run(RunSpec{Method: mustMethod(sc.Policy),
			LCs: []LCSpec{{App: app, LoadPct: sc.Tasks[0].LoadPct}}})
		t.AddRow(app,
			fmt.Sprintf("%.3f", r.LCIPC[0]),
			fmt.Sprint(r.P95[0]),
			fmt.Sprint(rn.calib(app).QoSTarget))
	}
	return t, rn.err
}

// Fig22 — RRBP table-size sensitivity: BE throughput under PIVOT with 16,
// 32, 64 and 128 entries, normalised to an unlimited (fully associative)
// table, each LC at 70% load with the 7-thread iBench stressor.
func (ctx *Context) Fig22() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig22")
	entries := sc.MustAxis("options.rrbp_entries").Ints() // -1 = unlimited baseline
	var sized []int
	headers := []string{"app"}
	for _, n := range entries {
		if n > 0 {
			sized = append(sized, n)
			headers = append(headers, fmt.Sprint(n))
		}
	}
	headers = append(headers, "QoS all")
	t := &metrics.Table{
		Title:   "Figure 22: BE throughput vs unlimited RRBP (1.00 = unlimited)",
		Headers: headers,
	}
	rn := ctx.runner()
	bes := []BESpec{{App: sc.Tasks[1].App, Threads: ctx.beThreads(sc.Tasks[1].ThreadCount())}}
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		lcs := []LCSpec{{App: app, LoadPct: sc.Tasks[0].LoadPct}}
		runWith := func(entries int) RunResult {
			return rn.run(RunSpec{Method: mustMethod(sc.Policy), LCs: lcs, BEs: bes,
				Opt: machine.Options{RRBP: rrbpSized(entries)}})
		}
		unl := runWith(-1)
		cells := []string{app}
		allQoS := unl.AllQoS
		for _, n := range sized {
			r := runWith(n)
			ratio := 0.0
			if unl.BEIPC > 0 {
				ratio = r.BEIPC / unl.BEIPC
			}
			cells = append(cells, fmt.Sprintf("%.3f", ratio))
			allQoS = allQoS && r.AllQoS
		}
		cells = append(cells, fmt.Sprint(allQoS))
		t.AddRow(cells...)
	}
	return t, rn.err
}

// Sensitivity — the §VI-C text numbers: RRBP refresh interval, offline LLC
// miss-rate threshold and offline stall-ranking threshold, reported as the
// average EMU over the five 1-LC@70% + iBench training scenarios.
func (ctx *Context) Sensitivity() ([]*metrics.Table, error) {
	var out []*metrics.Table

	// Refresh interval. The paper's 500K/1M/2M are scaled to the shorter
	// measured regions (EXPERIMENTS.md records the mapping).
	reft := &metrics.Table{
		Title:   "Sensitivity: RRBP refresh interval (avg EMU %, 5 scenarios)",
		Headers: []string{"0.5x (500K)", "1x (1M)", "2x (2M)"},
	}
	var refCells []string
	for _, mult := range []float64{0.5, 1, 2} {
		cfg := rrbp.DefaultConfig()
		cfg.RefreshCycles = sim.Cycle(float64(machine.ScaledRRBPRefresh) * mult)
		v, err := ctx.avgEMUWithOpt(machine.Options{RRBP: cfg})
		if err != nil {
			return nil, err
		}
		refCells = append(refCells, fmt.Sprintf("%.1f", v))
	}
	reft.AddRow(refCells...)
	out = append(out, reft)

	// Offline profiling parameters.
	pt := &metrics.Table{
		Title:   "Sensitivity: offline profiling parameters (avg EMU %)",
		Headers: []string{"variant", "avg EMU"},
	}
	for _, v := range []struct {
		name   string
		params profile.Params
	}{
		{"default (miss 10%, rank 5%)", profile.DefaultParams()},
		{"miss 5%", profile.Params{MinExecFreq: 0.005, MinLLCMissRate: 0.05, TopStallFrac: 0.05}},
		{"miss 15%", profile.Params{MinExecFreq: 0.005, MinLLCMissRate: 0.15, TopStallFrac: 0.05}},
		{"rank 10%", profile.Params{MinExecFreq: 0.005, MinLLCMissRate: 0.10, TopStallFrac: 0.10}},
		{"rank 15%", profile.Params{MinExecFreq: 0.005, MinLLCMissRate: 0.10, TopStallFrac: 0.15}},
	} {
		emu, err := ctx.avgEMUWithParams(v.params)
		if err != nil {
			return nil, err
		}
		pt.AddRow(v.name, fmt.Sprintf("%.1f", emu))
	}
	out = append(out, pt)
	return out, nil
}

// avgEMUWithOpt runs the training scenarios (the sens builtin) under the
// scenario's policy with the given options and averages their EMU.
func (ctx *Context) avgEMUWithOpt(opt machine.Options) (float64, error) {
	sc := scenario.MustBuiltin("sens")
	apps := sc.MustAxis("tasks[0].app").Strings()
	load := sc.Tasks[0].LoadPct
	beApp := sc.Tasks[1].App
	n := ctx.beThreads(sc.Tasks[1].ThreadCount())
	rn := ctx.runner()
	var sum float64
	for _, app := range apps {
		lcs := []LCSpec{{App: app, LoadPct: load}}
		r := rn.run(RunSpec{Method: mustMethod(sc.Policy), LCs: lcs,
			BEs: []BESpec{{App: beApp, Threads: n}}, Opt: opt})
		sum += rn.emu(lcs, beApp, n, n, r)
	}
	return sum / float64(len(apps)), rn.err
}

// avgEMUWithParams re-profiles every app with custom offline selection
// parameters and averages EMU over the training scenarios.
func (ctx *Context) avgEMUWithParams(params profile.Params) (float64, error) {
	sc := scenario.MustBuiltin("sens")
	apps := sc.MustAxis("tasks[0].app").Strings()
	load := sc.Tasks[0].LoadPct
	beApp := sc.Tasks[1].App
	var sum float64
	n := ctx.beThreads(sc.Tasks[1].ThreadCount())
	for _, app := range apps {
		pot := machine.ProfileLCWith(ctx.Cfg, ctx.lcParams(app), n,
			ctx.Scale.Seed, params, machine.ProfileCycles)
		cal, err := ctx.Calib(app)
		if err != nil {
			return 0, err
		}
		tasks := []machine.TaskSpec{{
			Kind: machine.TaskLC, LC: cal.App,
			MeanInterarrival: cal.MeanIAAt(load),
			Potential:        pot,
			ExpectedBW:       0.9 * cal.AloneBWAt(load),
			Seed:             ctx.Scale.Seed,
		}}
		be := ctx.beParams(beApp)
		for i := 0; i < n && len(tasks) < ctx.Cfg.Cores; i++ {
			tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE, BE: be,
				Seed: ctx.Scale.Seed + uint64(10+i)})
		}
		m, err := machine.New(ctx.Cfg, ctx.guard(machine.Options{Policy: machine.PolicyPIVOT}), tasks)
		if err != nil {
			return 0, err
		}
		if err := m.RunChecked(ctx.runContext(), ctx.Scale.Warmup, ctx.Scale.Measure); err != nil {
			return 0, err
		}
		r := RunResult{AllQoS: m.LCp95(0) != 0 && m.LCp95(0) <= cal.QoSTarget}
		r.BEIPC = float64(m.BECommitted()) / float64(m.MeasuredCycles())
		emu, err := ctx.EMU([]LCSpec{{App: app, LoadPct: load}}, beApp, n, n, r)
		if err != nil {
			return 0, err
		}
		sum += emu
	}
	return sum / float64(len(apps)), nil
}
