package exp

import (
	"os"
	"reflect"
	"testing"

	"pivot/internal/faultinject"
	"pivot/internal/machine"
	"pivot/internal/workload"
)

// TestCheckpointedRunResumeMatchesUninterrupted is the harness-level recovery
// regression: a co-location run interrupted mid-measure and later resumed
// from its checkpoints must report the exact whole-run RunResult of an
// uninterrupted execution — every percentile, IPC and bandwidth figure.
func TestCheckpointedRunResumeMatchesUninterrupted(t *testing.T) {
	ctx := tinyCtx()
	dir := t.TempDir()
	ctx.CheckpointDir = dir
	ctx.CheckpointInterval = 40_000

	spec := RunSpec{
		Method: MethodDefault(),
		LCs:    []LCSpec{{App: workload.Silo, LoadPct: 60}},
		BEs:    []BESpec{{App: workload.IBench, Threads: 2}},
	}

	// Uninterrupted reference (itself checkpointed — checkpointing must not
	// perturb results — and cleaned up on success).
	ref := tRun(t, ctx, spec)
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("completed run left %d checkpoint entries behind", len(entries))
	}

	// Interrupted attempt: a cycle budget mid-measure stands in for SIGINT
	// (both surface as an AbortError, which flushes a final checkpoint).
	abortSpec := spec
	abortSpec.Opt.MaxCycles = ctx.Scale.Warmup + ctx.Scale.Measure/2
	if _, err := ctx.Run(abortSpec); err == nil {
		t.Fatal("budget-bounded run did not abort")
	}
	if entries, _ := os.ReadDir(dir); len(entries) == 0 {
		t.Fatal("aborted run flushed no checkpoint")
	}

	// Resume: same spec, no budget. Must pick up the aborted run's state.
	got, err := ctx.Run(spec)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("resumed result differs from uninterrupted run:\n got: %+v\nwant: %+v", got, ref)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Errorf("resumed run left %d checkpoint entries behind", len(entries))
	}
}

// TestCheckpointDirGating: manager-driven and fault-injected runs must not
// checkpoint (their state lives outside the machine snapshot).
func TestCheckpointDirGating(t *testing.T) {
	ctx := tinyCtx()
	ctx.CheckpointDir = t.TempDir()

	m := machine.MustNew(ctx.Cfg, machine.Options{Policy: machine.PolicyDefault},
		[]machine.TaskSpec{{Kind: machine.TaskLC, LC: workload.LCApps()[workload.Silo], MeanInterarrival: 5000, Seed: 1}})

	if dir := ctx.checkpointDir(m, RunSpec{Method: MethodDefault()}, ctx.Scale.Warmup, ctx.Scale.Measure); dir == "" {
		t.Error("plain run denied a checkpoint dir")
	}
	if dir := ctx.checkpointDir(m, RunSpec{Method: MethodPARTIES()}, ctx.Scale.Warmup, ctx.Scale.Measure); dir != "" {
		t.Error("manager run granted a checkpoint dir")
	}
	if dir := ctx.checkpointDir(m, RunSpec{Method: MethodDefault(), Faults: &faultinject.Config{}}, ctx.Scale.Warmup, ctx.Scale.Measure); dir != "" {
		t.Error("fault-injected run granted a checkpoint dir")
	}
	a := ctx.checkpointDir(m, RunSpec{Method: MethodDefault()}, ctx.Scale.Warmup, ctx.Scale.Measure)
	b := ctx.checkpointDir(m, RunSpec{Method: MethodMBA(40)}, ctx.Scale.Warmup, ctx.Scale.Measure)
	if a == b {
		t.Error("different methods share a checkpoint dir")
	}
}
