// Package exp is the experiment harness: one function per figure and table
// of the paper, each returning a text table with the same rows/series the
// paper reports. The harness shares a Context that caches the expensive
// common work — offline profiles and the per-application load-latency
// calibration (Figure 12) from which QoS targets, max loads and expected
// bandwidths derive.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"pivot/internal/flight"
	"pivot/internal/machine"
	"pivot/internal/metrics"
	"pivot/internal/profile"
	"pivot/internal/sim"
	"pivot/internal/stats"
	"pivot/internal/workload"
)

// Scale sets simulation lengths. Full() drives the CLI; Quick() keeps unit
// tests and benchmarks fast (coarser, noisier, same shapes).
type Scale struct {
	Warmup  sim.Cycle
	Measure sim.Cycle
	// CalMeasure is the measured region for calibration sweeps (LC alone).
	CalMeasure sim.Cycle
	// LoadFracs is the sweep grid for load-latency curves, as fractions of
	// the closed-loop saturation throughput.
	LoadFracs []float64
	// Epoch is the manager decision interval.
	Epoch sim.Cycle
	// MaxBEThreads bounds the iBench thread sweeps.
	MaxBEThreads int
	// Seed is the base RNG seed for every run.
	Seed uint64
}

// Full returns the scale used by cmd/pivot-exp.
func Full() Scale {
	return Scale{
		Warmup:       400_000,
		Measure:      600_000,
		CalMeasure:   500_000,
		LoadFracs:    []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Epoch:        50_000,
		MaxBEThreads: 7,
		Seed:         1,
	}
}

// Quick returns the scale used by tests and benchmarks.
func Quick() Scale {
	return Scale{
		Warmup:       250_000,
		Measure:      250_000,
		CalMeasure:   200_000,
		LoadFracs:    []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Epoch:        25_000,
		MaxBEThreads: 7,
		Seed:         1,
	}
}

// CurvePoint is one load-latency sweep measurement (LC running alone).
type CurvePoint struct {
	LoadFrac float64 // fraction of closed-loop saturation throughput
	RPMC     float64 // requests per million cycles offered
	P95      uint32
	Mean     float64
	IPC      float64
	BWUtil   float64
	Complete uint64
}

// AppCalib is the run-alone calibration of one LC application.
type AppCalib struct {
	Name    string
	App     workload.LCParams
	SatRPMC float64 // closed-loop saturation throughput
	Curve   []CurvePoint
	// QoSTarget is the knee-derived tail-latency target (cycles).
	QoSTarget uint32
	// MaxLoad is the maximum offered RPMC meeting QoSTarget (Fig 12's
	// vertical line); experiment loads are percentages of it.
	MaxLoad float64
}

// MeanIAAt returns the arrival mean (cycles) for a percentage of max load.
func (c *AppCalib) MeanIAAt(pct int) float64 {
	rpmc := c.MaxLoad * float64(pct) / 100
	if rpmc <= 0 {
		return 0
	}
	return 1e6 / rpmc
}

// AloneBWAt interpolates the task's run-alone bandwidth usage at a
// percentage of max load, for calibrating TaskSpec.ExpectedBW.
func (c *AppCalib) AloneBWAt(pct int) float64 {
	target := c.MaxLoad * float64(pct) / 100
	// The curve is sorted by RPMC; find the bracketing points.
	if len(c.Curve) == 0 {
		return 0
	}
	if target <= c.Curve[0].RPMC {
		return c.Curve[0].BWUtil
	}
	for i := 1; i < len(c.Curve); i++ {
		a, b := c.Curve[i-1], c.Curve[i]
		if target <= b.RPMC {
			f := (target - a.RPMC) / (b.RPMC - a.RPMC)
			return a.BWUtil + f*(b.BWUtil-a.BWUtil)
		}
	}
	return c.Curve[len(c.Curve)-1].BWUtil
}

// cell is one lazily-computed cache slot. The once serialises duplicate
// computations of the same key without blocking other keys, so parallel
// workers can calibrate different apps concurrently.
type cell[T any] struct {
	once sync.Once
	v    T
	err  error
}

// shared is the state every clone of a Context points at: the calibration
// caches and the most recent instrumented run's artifacts. All fields are
// goroutine-safe so harness workers can share one Context.
type shared struct {
	mu      sync.Mutex
	calib   map[string]*cell[*AppCalib]
	pots    map[string]*cell[profile.CriticalSet]
	beAlone map[string]*cell[float64]

	// Scenario-registered custom applications, resolved by lcParams/beParams
	// ahead of the workload catalogue (see RegisterScenarioApps).
	appMu    sync.RWMutex
	customLC map[string]workload.LCParams
	customBE map[string]workload.BEParams

	logMu sync.Mutex

	// cap is shared with sibling contexts (other machine configs derived via
	// ForScenario): the caches above are per-config, but the most recent
	// instrumented run's artifacts must stay visible from the context the CLI
	// holds, whichever config actually executed.
	cap *capture
}

// capture holds the most recent instrumented run's artifacts.
type capture struct {
	mu        sync.Mutex
	stats     *stats.Dump
	timeline  *stats.Timeline
	flight    *flight.Report
	statsRuns int
}

// lookup returns the cache cell for key, creating it when absent.
func lookup[T any](sh *shared, m map[string]*cell[T], key string) *cell[T] {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := m[key]
	if !ok {
		c = &cell[T]{}
		m[key] = c
	}
	return c
}

// Context carries the machine config, scale, and caches shared across
// experiments. A Context may be shared by concurrent harness workers: the
// caches are synchronised, and each simulation's state lives entirely inside
// its own Machine, so parallel sweeps produce results identical to serial
// ones. Use WithRunContext to derive per-run deadline-bounded views.
type Context struct {
	Cfg   machine.Config
	Scale Scale
	Out   io.Writer // progress notes; nil silences them

	// StatsEpoch, when non-zero, enables the stats framework on every
	// co-location run the harness executes, sampling the instrument registry
	// every StatsEpoch cycles. LastStats and LastTimeline then return the
	// most recent instrumented run's dump and Perfetto timeline.
	StatsEpoch sim.Cycle

	// FlightTop, when > 0, attaches a per-request flight recorder to every
	// co-location run the harness executes, keeping full span chains for this
	// many slowest requests. LastFlight then returns the most recent run's
	// tail-attribution report. Recording is purely observational: simulated
	// results are bit-identical with it on or off.
	FlightTop int

	// FlightSample is the flight recorder's lifecycle reservoir size
	// (0 = the flight package default).
	FlightSample int

	// Progress, when set, receives live telemetry from every run this
	// Context executes (current cycle, goal) for the /progress endpoint.
	Progress *stats.Progress

	// Watchdog aborts any run in which no core commits an instruction for
	// this many cycles (machine.Options.WatchdogWindow); 0 disables it.
	Watchdog sim.Cycle

	// Audit enables the machine's per-epoch invariant auditor on every run.
	Audit bool

	// Dense forces every run onto the naive per-cycle tick loop instead of
	// the quiescence-aware skip-ahead engine (the -dense escape hatch; see
	// machine.Options.Dense). Results are bit-identical either way.
	Dense bool

	// Parallel, when > 0, runs every simulation on the sharded windowed tick
	// loop with this many worker goroutines per machine (see
	// machine.Options.Parallel). Results are bit-identical to serial for any
	// value; Dense overrides it.
	Parallel int

	// CheckpointDir, when set, makes every checkpointable co-location run
	// crash-safe: it periodically writes its full machine state to a per-run
	// subdirectory and, on a later identical invocation, resumes from the
	// newest good checkpoint instead of restarting. Checkpointing never
	// perturbs results — a resumed run's statistics are bit-identical to an
	// uninterrupted one's. Manager-driven and fault-injected runs are
	// excluded (their state lives outside the machine snapshot).
	CheckpointDir string

	// CheckpointInterval is the simulated-cycle checkpoint period;
	// 0 = machine.DefaultCheckpointInterval.
	CheckpointInterval sim.Cycle

	// OnResume, when set, is called with the resume cycle whenever a
	// checkpointed run restores from a previous checkpoint instead of
	// starting fresh. Purely observational (the fabric reports migrated-run
	// resumes through it); results are identical with or without it.
	OnResume func(sim.Cycle)

	// runCtx bounds every simulation this Context executes (wall-clock
	// deadline / cancellation); nil means context.Background().
	runCtx context.Context

	sh *shared
}

// NewContext builds a harness context over cfg at the given scale.
func NewContext(cfg machine.Config, scale Scale) *Context {
	return &Context{Cfg: cfg, Scale: scale, sh: newShared(&capture{})}
}

// newShared builds the per-config cache state around an existing capture.
func newShared(cap *capture) *shared {
	return &shared{
		calib:    make(map[string]*cell[*AppCalib]),
		pots:     make(map[string]*cell[profile.CriticalSet]),
		beAlone:  make(map[string]*cell[float64]),
		customLC: make(map[string]workload.LCParams),
		customBE: make(map[string]workload.BEParams),
		cap:      cap,
	}
}

// WithRunContext returns a shallow copy of ctx whose simulations are bounded
// by c (deadline and cancellation), sharing the calibration caches and stats
// capture with ctx.
func (ctx *Context) WithRunContext(c context.Context) *Context {
	out := *ctx
	out.runCtx = c
	return &out
}

// runContext returns the bounding context for simulations (never nil).
func (ctx *Context) runContext() context.Context {
	if ctx.runCtx != nil {
		return ctx.runCtx
	}
	return context.Background()
}

// guard applies the Context's self-defense settings to machine options.
func (ctx *Context) guard(opt machine.Options) machine.Options {
	opt.WatchdogWindow = ctx.Watchdog
	opt.Audit = ctx.Audit
	opt.Dense = ctx.Dense
	opt.Parallel = ctx.Parallel
	return opt
}

func (ctx *Context) logf(format string, args ...any) {
	if ctx.Out != nil {
		ctx.sh.logMu.Lock()
		defer ctx.sh.logMu.Unlock()
		fmt.Fprintf(ctx.Out, format+"\n", args...)
	}
}

// Potential returns (computing and caching) the offline-profiled potential
// set for an LC app.
func (ctx *Context) Potential(app string) profile.CriticalSet {
	c := lookup(ctx.sh, ctx.sh.pots, app)
	c.once.Do(func() {
		ctx.logf("offline profiling %s ...", app)
		c.v = machine.ProfileLC(ctx.Cfg, ctx.lcParams(app), ctx.Scale.MaxBEThreads, ctx.Scale.Seed)
	})
	return c.v
}

// Calib returns (computing and caching) the run-alone calibration of an LC
// app: the Figure 12 load-latency sweep, the knee-derived QoS target and
// the max load. A failed calibration (misconfigured machine, app that
// completes no requests, aborted run) is returned as an error — and cached,
// since recomputing it would fail identically.
func (ctx *Context) Calib(app string) (*AppCalib, error) {
	c := lookup(ctx.sh, ctx.sh.calib, app)
	c.once.Do(func() { c.v, c.err = ctx.computeCalib(app) })
	return c.v, c.err
}

func (ctx *Context) computeCalib(app string) (*AppCalib, error) {
	ctx.logf("calibrating %s (load-latency sweep)...", app)
	params := ctx.lcParams(app)
	c := &AppCalib{Name: app, App: params}
	rc := ctx.runContext()
	opt := ctx.guard(machine.Options{Policy: machine.PolicyDefault})

	// Closed-loop saturation throughput.
	m, err := machine.New(ctx.Cfg, opt,
		[]machine.TaskSpec{{Kind: machine.TaskLC, LC: params, MeanInterarrival: 0, Seed: ctx.Scale.Seed}})
	if err != nil {
		return nil, err
	}
	if err := m.RunChecked(rc, ctx.Scale.Warmup/2, ctx.Scale.CalMeasure); err != nil {
		return nil, fmt.Errorf("exp: calibrating %s: %w", app, err)
	}
	c.SatRPMC = float64(m.LCTasks()[0].Source.Completed()) / float64(ctx.Scale.CalMeasure) * 1e6
	if c.SatRPMC <= 0 {
		return nil, fmt.Errorf("exp: %s completed no requests closed-loop", app)
	}

	for _, f := range ctx.Scale.LoadFracs {
		rpmc := c.SatRPMC * f
		mm, err := machine.New(ctx.Cfg, opt,
			[]machine.TaskSpec{{Kind: machine.TaskLC, LC: params,
				MeanInterarrival: 1e6 / rpmc, Seed: ctx.Scale.Seed}})
		if err != nil {
			return nil, err
		}
		if err := mm.RunChecked(rc, ctx.Scale.Warmup/2, ctx.Scale.CalMeasure); err != nil {
			return nil, fmt.Errorf("exp: calibrating %s at %.0f%%: %w", app, f*100, err)
		}
		src := mm.LCTasks()[0].Source
		c.Curve = append(c.Curve, CurvePoint{
			LoadFrac: f,
			RPMC:     rpmc,
			P95:      mm.LCp95(0),
			Mean:     metrics.Mean(src.Latencies()),
			IPC:      mm.Cores[0].IPC(mm.MeasuredCycles()),
			BWUtil:   mm.BWUtil(),
			Complete: src.Completed(),
		})
	}
	sort.Slice(c.Curve, func(i, j int) bool { return c.Curve[i].RPMC < c.Curve[j].RPMC })

	// Knee: tail latency at low load sets the floor; the QoS target is the
	// conventional knee multiple of it, and max load is the highest offered
	// load still under target (following the PARTIES/Tailbench method the
	// paper cites).
	floor := c.Curve[0].P95
	c.QoSTarget = floor * 3
	for _, pt := range c.Curve {
		if pt.P95 <= c.QoSTarget && pt.RPMC > c.MaxLoad {
			c.MaxLoad = pt.RPMC
		}
	}
	if c.MaxLoad == 0 {
		c.MaxLoad = c.Curve[0].RPMC
	}
	ctx.logf("  %s: sat=%.1f RPMC, QoS=%d cycles, maxLoad=%.1f RPMC",
		app, c.SatRPMC, c.QoSTarget, c.MaxLoad)
	return c, nil
}

// BEAloneIPC returns (computing and caching) the standalone aggregate IPC of
// `threads` copies of a BE app — the normalisation baseline for BE
// throughput figures.
func (ctx *Context) BEAloneIPC(app string, threads int) (float64, error) {
	key := fmt.Sprintf("%s/%d", app, threads)
	c := lookup(ctx.sh, ctx.sh.beAlone, key)
	c.once.Do(func() {
		be := ctx.beParams(app)
		var tasks []machine.TaskSpec
		for i := 0; i < threads; i++ {
			tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE, BE: be, Seed: ctx.Scale.Seed + uint64(10+i)})
		}
		m, err := machine.New(ctx.Cfg, ctx.guard(machine.Options{Policy: machine.PolicyDefault}), tasks)
		if err != nil {
			c.err = err
			return
		}
		if err := m.RunChecked(ctx.runContext(), ctx.Scale.Warmup/2, ctx.Scale.Measure/2); err != nil {
			c.err = fmt.Errorf("exp: BE-alone baseline %s: %w", key, err)
			return
		}
		c.v = float64(m.BECommitted()) / float64(m.MeasuredCycles())
	})
	return c.v, c.err
}

// LastStats returns the stats dump of the most recent instrumented run (nil
// when StatsEpoch was never set or no co-location run executed).
func (ctx *Context) LastStats() *stats.Dump {
	ctx.sh.cap.mu.Lock()
	defer ctx.sh.cap.mu.Unlock()
	return ctx.sh.cap.stats
}

// LastTimeline returns the Perfetto timeline of the most recent
// instrumented run (nil when none exists).
func (ctx *Context) LastTimeline() *stats.Timeline {
	ctx.sh.cap.mu.Lock()
	defer ctx.sh.cap.mu.Unlock()
	return ctx.sh.cap.timeline
}

// LastFlight returns the tail-attribution report of the most recent
// flight-recorded run (nil when FlightTop was never set or no co-location
// run executed).
func (ctx *Context) LastFlight() *flight.Report {
	ctx.sh.cap.mu.Lock()
	defer ctx.sh.cap.mu.Unlock()
	return ctx.sh.cap.flight
}
