// Package exp is the experiment harness: one function per figure and table
// of the paper, each returning a text table with the same rows/series the
// paper reports. The harness shares a Context that caches the expensive
// common work — offline profiles and the per-application load-latency
// calibration (Figure 12) from which QoS targets, max loads and expected
// bandwidths derive.
package exp

import (
	"fmt"
	"io"
	"sort"

	"pivot/internal/machine"
	"pivot/internal/metrics"
	"pivot/internal/profile"
	"pivot/internal/sim"
	"pivot/internal/stats"
	"pivot/internal/workload"
)

// Scale sets simulation lengths. Full() drives the CLI; Quick() keeps unit
// tests and benchmarks fast (coarser, noisier, same shapes).
type Scale struct {
	Warmup  sim.Cycle
	Measure sim.Cycle
	// CalMeasure is the measured region for calibration sweeps (LC alone).
	CalMeasure sim.Cycle
	// LoadFracs is the sweep grid for load-latency curves, as fractions of
	// the closed-loop saturation throughput.
	LoadFracs []float64
	// Epoch is the manager decision interval.
	Epoch sim.Cycle
	// MaxBEThreads bounds the iBench thread sweeps.
	MaxBEThreads int
	// Seed is the base RNG seed for every run.
	Seed uint64
}

// Full returns the scale used by cmd/pivot-exp.
func Full() Scale {
	return Scale{
		Warmup:       400_000,
		Measure:      600_000,
		CalMeasure:   500_000,
		LoadFracs:    []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Epoch:        50_000,
		MaxBEThreads: 7,
		Seed:         1,
	}
}

// Quick returns the scale used by tests and benchmarks.
func Quick() Scale {
	return Scale{
		Warmup:       250_000,
		Measure:      250_000,
		CalMeasure:   200_000,
		LoadFracs:    []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Epoch:        25_000,
		MaxBEThreads: 7,
		Seed:         1,
	}
}

// CurvePoint is one load-latency sweep measurement (LC running alone).
type CurvePoint struct {
	LoadFrac float64 // fraction of closed-loop saturation throughput
	RPMC     float64 // requests per million cycles offered
	P95      uint32
	Mean     float64
	IPC      float64
	BWUtil   float64
	Complete uint64
}

// AppCalib is the run-alone calibration of one LC application.
type AppCalib struct {
	Name    string
	App     workload.LCParams
	SatRPMC float64 // closed-loop saturation throughput
	Curve   []CurvePoint
	// QoSTarget is the knee-derived tail-latency target (cycles).
	QoSTarget uint32
	// MaxLoad is the maximum offered RPMC meeting QoSTarget (Fig 12's
	// vertical line); experiment loads are percentages of it.
	MaxLoad float64
}

// MeanIAAt returns the arrival mean (cycles) for a percentage of max load.
func (c *AppCalib) MeanIAAt(pct int) float64 {
	rpmc := c.MaxLoad * float64(pct) / 100
	if rpmc <= 0 {
		return 0
	}
	return 1e6 / rpmc
}

// AloneBWAt interpolates the task's run-alone bandwidth usage at a
// percentage of max load, for calibrating TaskSpec.ExpectedBW.
func (c *AppCalib) AloneBWAt(pct int) float64 {
	target := c.MaxLoad * float64(pct) / 100
	// The curve is sorted by RPMC; find the bracketing points.
	if len(c.Curve) == 0 {
		return 0
	}
	if target <= c.Curve[0].RPMC {
		return c.Curve[0].BWUtil
	}
	for i := 1; i < len(c.Curve); i++ {
		a, b := c.Curve[i-1], c.Curve[i]
		if target <= b.RPMC {
			f := (target - a.RPMC) / (b.RPMC - a.RPMC)
			return a.BWUtil + f*(b.BWUtil-a.BWUtil)
		}
	}
	return c.Curve[len(c.Curve)-1].BWUtil
}

// Context carries the machine config, scale, and caches shared across
// experiments.
type Context struct {
	Cfg   machine.Config
	Scale Scale
	Out   io.Writer // progress notes; nil silences them

	// StatsEpoch, when non-zero, enables the stats framework on every
	// co-location run the harness executes, sampling the instrument registry
	// every StatsEpoch cycles. Stats and Timeline then hold the most recent
	// instrumented run's dump and Perfetto timeline for the CLI to export.
	StatsEpoch sim.Cycle
	Stats      *stats.Dump
	Timeline   *stats.Timeline
	statsRuns  int

	calib map[string]*AppCalib
	pots  map[string]profile.CriticalSet
	// beAlone caches the standalone throughput (committed instructions per
	// cycle) of n threads of a BE app.
	beAlone map[string]float64
}

// NewContext builds a harness context over cfg at the given scale.
func NewContext(cfg machine.Config, scale Scale) *Context {
	return &Context{
		Cfg:     cfg,
		Scale:   scale,
		calib:   make(map[string]*AppCalib),
		pots:    make(map[string]profile.CriticalSet),
		beAlone: make(map[string]float64),
	}
}

func (ctx *Context) logf(format string, args ...any) {
	if ctx.Out != nil {
		fmt.Fprintf(ctx.Out, format+"\n", args...)
	}
}

// Potential returns (computing and caching) the offline-profiled potential
// set for an LC app.
func (ctx *Context) Potential(app string) profile.CriticalSet {
	if s, ok := ctx.pots[app]; ok {
		return s
	}
	ctx.logf("offline profiling %s ...", app)
	s := machine.ProfileLC(ctx.Cfg, workload.LCApps()[app], ctx.Scale.MaxBEThreads, ctx.Scale.Seed)
	ctx.pots[app] = s
	return s
}

// Calib returns (computing and caching) the run-alone calibration of an LC
// app: the Figure 12 load-latency sweep, the knee-derived QoS target and
// the max load.
func (ctx *Context) Calib(app string) *AppCalib {
	if c, ok := ctx.calib[app]; ok {
		return c
	}
	ctx.logf("calibrating %s (load-latency sweep)...", app)
	params := workload.LCApps()[app]
	c := &AppCalib{Name: app, App: params}

	// Closed-loop saturation throughput.
	m := machine.MustNew(ctx.Cfg, machine.Options{Policy: machine.PolicyDefault},
		[]machine.TaskSpec{{Kind: machine.TaskLC, LC: params, MeanInterarrival: 0, Seed: ctx.Scale.Seed}})
	m.Run(ctx.Scale.Warmup/2, ctx.Scale.CalMeasure)
	c.SatRPMC = float64(m.LCTasks()[0].Source.Completed()) / float64(ctx.Scale.CalMeasure) * 1e6
	if c.SatRPMC <= 0 {
		panic(fmt.Sprintf("exp: %s completed no requests closed-loop", app))
	}

	for _, f := range ctx.Scale.LoadFracs {
		rpmc := c.SatRPMC * f
		mm := machine.MustNew(ctx.Cfg, machine.Options{Policy: machine.PolicyDefault},
			[]machine.TaskSpec{{Kind: machine.TaskLC, LC: params,
				MeanInterarrival: 1e6 / rpmc, Seed: ctx.Scale.Seed}})
		mm.Run(ctx.Scale.Warmup/2, ctx.Scale.CalMeasure)
		src := mm.LCTasks()[0].Source
		c.Curve = append(c.Curve, CurvePoint{
			LoadFrac: f,
			RPMC:     rpmc,
			P95:      mm.LCp95(0),
			Mean:     metrics.Mean(src.Latencies()),
			IPC:      mm.Cores[0].IPC(mm.MeasuredCycles()),
			BWUtil:   mm.BWUtil(),
			Complete: src.Completed(),
		})
	}
	sort.Slice(c.Curve, func(i, j int) bool { return c.Curve[i].RPMC < c.Curve[j].RPMC })

	// Knee: tail latency at low load sets the floor; the QoS target is the
	// conventional knee multiple of it, and max load is the highest offered
	// load still under target (following the PARTIES/Tailbench method the
	// paper cites).
	floor := c.Curve[0].P95
	c.QoSTarget = floor * 3
	for _, pt := range c.Curve {
		if pt.P95 <= c.QoSTarget && pt.RPMC > c.MaxLoad {
			c.MaxLoad = pt.RPMC
		}
	}
	if c.MaxLoad == 0 {
		c.MaxLoad = c.Curve[0].RPMC
	}
	ctx.logf("  %s: sat=%.1f RPMC, QoS=%d cycles, maxLoad=%.1f RPMC",
		app, c.SatRPMC, c.QoSTarget, c.MaxLoad)
	ctx.calib[app] = c
	return c
}

// BEAloneIPC returns (computing and caching) the standalone aggregate IPC of
// `threads` copies of a BE app — the normalisation baseline for BE
// throughput figures.
func (ctx *Context) BEAloneIPC(app string, threads int) float64 {
	key := fmt.Sprintf("%s/%d", app, threads)
	if v, ok := ctx.beAlone[key]; ok {
		return v
	}
	be := workload.BEApps()[app]
	var tasks []machine.TaskSpec
	for i := 0; i < threads; i++ {
		tasks = append(tasks, machine.TaskSpec{Kind: machine.TaskBE, BE: be, Seed: ctx.Scale.Seed + uint64(10+i)})
	}
	m := machine.MustNew(ctx.Cfg, machine.Options{Policy: machine.PolicyDefault}, tasks)
	m.Run(ctx.Scale.Warmup/2, ctx.Scale.Measure/2)
	v := float64(m.BECommitted()) / float64(m.MeasuredCycles())
	ctx.beAlone[key] = v
	return v
}
