package exp

import (
	"fmt"
	"sort"

	"pivot/internal/machine"
	"pivot/internal/metrics"
	"pivot/internal/workload"
)

// Experiment is one reproducible unit: a paper figure, table or text result.
type Experiment struct {
	ID    string
	Brief string
	Run   func(ctx *Context) ([]*metrics.Table, error)
}

func one(f func(ctx *Context) (*metrics.Table, error)) func(ctx *Context) ([]*metrics.Table, error) {
	return func(ctx *Context) ([]*metrics.Table, error) {
		t, err := f(ctx)
		if err != nil {
			return nil, err
		}
		return []*metrics.Table{t}, nil
	}
}

// Registry returns every experiment by id.
func Registry() map[string]Experiment {
	return map[string]Experiment{
		"fig1":      {"fig1", "normalized p95 under Default/MBA/MPAM/PIVOT", one((*Context).Fig01)},
		"fig2":      {"fig2", "bandwidth utilisation per approach", one((*Context).Fig02)},
		"fig3":      {"fig3", "max iBench throughput under QoS", one((*Context).Fig03)},
		"fig5":      {"fig5", "cycle split of Masstree critical loads", one((*Context).Fig05)},
		"fig6":      {"fig6", "p95 vs BE threads under FullPath", one((*Context).Fig06)},
		"fig7":      {"fig7", "leave-one-out MSC priority", one((*Context).Fig07)},
		"fig8":      {"fig8", "CDF of loads vs ROB stall cycles", one((*Context).Fig08)},
		"fig12":     {"fig12", "load-latency curves, knees, max load", one((*Context).Fig12)},
		"fig13":     {"fig13", "1 LC + iBench: BE throughput per method", one((*Context).Fig13)},
		"fig13emu":  {"fig13emu", "EMU summary of fig13", one((*Context).Fig13EMU)},
		"fig14":     {"fig14", "normalized p95 behind fig13", one((*Context).Fig14)},
		"fig15":     {"fig15", "2 LC + iBench heatmaps", (*Context).Fig15},
		"fig16":     {"fig16", "CloudSuite single-BE scenarios", one((*Context).Fig16)},
		"fig17":     {"fig17", "2 LC + 2 BE CloudSuite scenarios", one((*Context).Fig17)},
		"fig18":     {"fig18", "2-LC co-location frontiers", (*Context).Fig18},
		"fig19":     {"fig19", "3-LC co-location frontier", one((*Context).Fig19)},
		"fig20":     {"fig20", "criticality predictor comparison", one((*Context).Fig20)},
		"fig21":     {"fig21", "run-alone IPC and p95 at 70%", one((*Context).Fig21)},
		"fig22":     {"fig22", "RRBP table-size sensitivity", one((*Context).Fig22)},
		"sens":      {"sens", "refresh interval + profiling parameter sensitivity", (*Context).Sensitivity},
		"fig23":     {"fig23", "fig13 on Neoverse (PIVOT vs CLITE)", one((*Context).Fig23)},
		"fig24":     {"fig24", "fig16 on Neoverse", one((*Context).Fig24)},
		"fig25":     {"fig25", "fig17 on Neoverse", one((*Context).Fig25)},
		"hybrid":    {"hybrid", "extension (§VII): hybrid strong isolation", one((*Context).Hybrid)},
		"noprofile": {"noprofile", "extension (§VII): PIVOT without offline profiling", one((*Context).NoProfile)},
		"prefetch":  {"prefetch", "ablation: explicit stride prefetcher", one((*Context).PrefetchAblation)},
		"table1":    {"table1", "workload inventory", one((*Context).Table1)},
		"table2":    {"table2", "Kunpeng-like configuration", one((*Context).Table2)},
		"table3":    {"table3", "Neoverse-like configuration", one((*Context).Table3)},
		"storage":   {"storage", "§IV-E per-PE storage budget", one((*Context).Storage)},
	}
}

// IDs returns the registered experiment ids, sorted for stable CLI output.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Table1 — the workload inventory of Table I.
func (ctx *Context) Table1() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Table I: LC and BE workloads",
		Headers: []string{"kind", "name", "stands in for"},
	}
	desc := map[string]string{
		workload.ImgDNN:   "image recognition (Tailbench)",
		workload.Moses:    "real-time translation (Tailbench)",
		workload.Xapian:   "online search (Tailbench)",
		workload.Silo:     "in-memory transaction database (Tailbench)",
		workload.Masstree: "key-value store (Tailbench)",
	}
	for _, name := range workload.LCNames() {
		t.AddRow("LC", name, desc[name])
	}
	t.AddRow("BE", workload.DataAn, "Bayes classification on Wikimedia (CloudSuite)")
	t.AddRow("BE", workload.GraphAn, "PageRank on Twitter (CloudSuite)")
	t.AddRow("BE", workload.InMemAn, "collaborative filtering (CloudSuite)")
	t.AddRow("BE", workload.IBench, "massive streaming read/write (iBench)")
	t.AddRow("BE", workload.StressCopy, "offline-profiling stress task (§V-B)")
	return t, nil
}

// Table2 — the Kunpeng-like configuration actually instantiated.
func (ctx *Context) Table2() (*metrics.Table, error) {
	return configTable("Table II (Kunpeng-like)", ctx.Cfg), nil
}

// Table3 — the Neoverse-like configuration actually instantiated.
func (ctx *Context) Table3() (*metrics.Table, error) {
	return configTable("Table III (Neoverse-like)", ctx.neoverse().Cfg), nil
}

func configTable(title string, cfg machine.Config) *metrics.Table {
	t := &metrics.Table{Title: title, Headers: []string{"parameter", "value"}}
	t.AddRow("cores", fmt.Sprint(cfg.Cores))
	t.AddRow("L1D", fmt.Sprintf("%dKB %d-way, %d-cycle hit, %d MSHRs",
		cfg.L1.SizeBytes>>10, cfg.L1.Ways, cfg.L1.HitCycles, cfg.L1.MSHRs))
	t.AddRow("L2", fmt.Sprintf("%dKB %d-way, %d-cycle hit, %d MSHRs",
		cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.HitCycles, cfg.L2.MSHRs))
	t.AddRow("LLC", fmt.Sprintf("%dMB %d-way, %d-cycle hit, %d MSHRs",
		cfg.LLC.SizeBytes>>20, cfg.LLC.Ways, cfg.LLC.HitCycles, cfg.LLC.MSHRs))
	t.AddRow("ROB", fmt.Sprint(cfg.Core.ROBSize))
	t.AddRow("fetch/issue/commit", fmt.Sprintf("%d/%d/%d",
		cfg.Core.FetchWidth, cfg.Core.IssueWidth, cfg.Core.CommitWidth))
	t.AddRow("LQ/SQ", fmt.Sprintf("%d/%d", cfg.Core.LQSize, cfg.Core.SQSize))
	t.AddRow("DRAM", fmt.Sprintf("%d banks, burst %d cyc, CAS %d, RP %d, RCD %d",
		cfg.DRAM.Banks, cfg.DRAM.TBurst, cfg.DRAM.TCAS, cfg.DRAM.TRP, cfg.DRAM.TRCD))
	return t
}

// Storage — the §IV-E per-PE storage budget (1045 bits).
func (ctx *Context) Storage() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "§IV-E: PIVOT per-PE storage budget (bits)",
		Headers: []string{"component", "bits"},
	}
	t.AddRow("sequence-number register", "8")
	t.AddRow("RRBP index register", "5")
	t.AddRow("sequence comparator", "8")
	t.AddRow("ROB potential-critical bits (192x1)", "192")
	t.AddRow("RRBP table (64x6)", "384")
	t.AddRow("load-queue bits (64x7)", "448")
	t.AddRow("total", fmt.Sprint(8+5+8+192+384+448))
	return t, nil
}
