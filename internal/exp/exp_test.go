package exp

import (
	"strings"
	"testing"

	"pivot/internal/machine"
	"pivot/internal/metrics"
	"pivot/internal/workload"
)

// tinyScale keeps exp-layer tests fast; shapes get noisy but structural
// invariants (knees found, QoS gates applied, tables well-formed) hold.
func tinyScale() Scale {
	s := Quick()
	s.Warmup = 150_000
	s.Measure = 150_000
	s.CalMeasure = 120_000
	s.LoadFracs = []float64{0.2, 0.6}
	s.MaxBEThreads = 3
	return s
}

func tinyCtx() *Context {
	return NewContext(machine.KunpengConfig(4), tinyScale())
}

// tCalib / tRun unwrap the error-returning API for tests that only exercise
// the success path.
func tCalib(t *testing.T, ctx *Context, app string) *AppCalib {
	t.Helper()
	cal, err := ctx.Calib(app)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func tRun(t *testing.T, ctx *Context, spec RunSpec) RunResult {
	t.Helper()
	r, err := ctx.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCalibrationProducesKnee(t *testing.T) {
	ctx := tinyCtx()
	cal := tCalib(t, ctx, workload.Silo)
	if cal.SatRPMC <= 0 {
		t.Fatal("no saturation throughput")
	}
	if cal.QoSTarget == 0 || cal.MaxLoad <= 0 {
		t.Fatalf("degenerate calibration: %+v", cal)
	}
	if cal.MaxLoad > cal.SatRPMC {
		t.Fatal("max load exceeds saturation throughput")
	}
	if ia := cal.MeanIAAt(50); ia <= 0 {
		t.Fatalf("MeanIAAt(50) = %v", ia)
	}
	if ia70, ia10 := cal.MeanIAAt(70), cal.MeanIAAt(10); ia70 >= ia10 {
		t.Fatal("higher load must mean shorter inter-arrivals")
	}
	// Calibration is cached.
	if tCalib(t, ctx, workload.Silo) != cal {
		t.Fatal("calibration not cached")
	}
}

func TestAloneBWInterpolation(t *testing.T) {
	ctx := tinyCtx()
	cal := tCalib(t, ctx, workload.ImgDNN)
	low, high := cal.AloneBWAt(10), cal.AloneBWAt(90)
	if low < 0 || high <= 0 {
		t.Fatalf("bandwidth interpolation broken: %v, %v", low, high)
	}
	if high < low {
		t.Fatal("bandwidth should not fall with load")
	}
}

func TestRunGatesQoS(t *testing.T) {
	ctx := tinyCtx()
	// Default under heavy contention must violate; PIVOT must not.
	lcs := []LCSpec{{App: workload.Masstree, LoadPct: 70}}
	bes := []BESpec{{App: workload.IBench, Threads: 3}}
	def := tRun(t, ctx, RunSpec{Method: MethodDefault(), LCs: lcs, BEs: bes})
	piv := tRun(t, ctx, RunSpec{Method: MethodPIVOT(), LCs: lcs, BEs: bes})
	if def.AllQoS {
		t.Error("Default met QoS under heavy contention (unexpected at this scale)")
	}
	if !piv.AllQoS {
		t.Errorf("PIVOT violated QoS: p95=%v target=%v", piv.P95, tCalib(t, ctx, workload.Masstree).QoSTarget)
	}
	if piv.BEIPC <= 0 {
		t.Error("no BE throughput measured")
	}
}

func TestEMUComputation(t *testing.T) {
	ctx := tinyCtx()
	r := RunResult{AllQoS: true, BEIPC: 0.05}
	base, err := ctx.BEAloneIPC(workload.IBench, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.EMU([]LCSpec{{App: workload.Silo, LoadPct: 70}}, workload.IBench, 3, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	want := 70 + r.BEIPC/base*100
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("EMU = %v, want %v", got, want)
	}
	r.AllQoS = false
	if emu, _ := ctx.EMU([]LCSpec{{App: workload.Silo, LoadPct: 70}}, workload.IBench, 3, 3, r); emu != 0 {
		t.Fatal("violated EMU must be 0")
	}
}

func TestStaticTables(t *testing.T) {
	ctx := tinyCtx()
	for _, mk := range []func() (*metrics.Table, error){
		ctx.Table1, ctx.Table2, ctx.Storage,
	} {
		tb, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		s := tb.String()
		if len(s) == 0 || !strings.Contains(s, "==") {
			t.Fatalf("malformed table output: %q", s)
		}
	}
	st, err := ctx.Storage()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.String(), "1045") {
		t.Fatal("storage table missing the 1045-bit total")
	}
}

func TestFig08Shape(t *testing.T) {
	ctx := tinyCtx()
	tbl, err := ctx.Fig08()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig8 rows = %d, want silo and moses", len(tbl.Rows))
	}
	// top-50% coverage column must read (close to) 1.
	for _, row := range tbl.Rows {
		last := row[len(row)-1]
		if !strings.HasPrefix(last, "1.000") && !strings.HasPrefix(last, "0.9") {
			t.Fatalf("top-50%% stall share = %s, want ~1", last)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"fig1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22", "sens", "fig23", "fig24", "fig25",
		"table1", "table2", "table3", "storage"} {
		e, ok := reg[id]
		if !ok {
			t.Errorf("experiment %s missing from registry", id)
			continue
		}
		if e.Run == nil || e.Brief == "" {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("IDs not sorted")
		}
	}
}

func TestMaxSecondLoadMonotoneGate(t *testing.T) {
	ctx := tinyCtx()
	// With PIVOT, two light LC tasks co-locate: the frontier must be > 0.
	rn := ctx.runner()
	got := rn.maxSecondLoad(MethodPIVOT(), workload.Silo, 30, workload.Xapian)
	if rn.err != nil {
		t.Fatal(rn.err)
	}
	if got == 0 {
		t.Fatal("PIVOT frontier empty even at light load")
	}
}

func TestExtensionsProduceTables(t *testing.T) {
	ctx := tinyCtx()
	for name, fn := range map[string]func() (*metrics.Table, error){
		"noprofile": ctx.NoProfile,
		"prefetch":  ctx.PrefetchAblation,
	} {
		tb, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := tb.String()
		if !strings.Contains(out, "==") || len(strings.Split(out, "\n")) < 5 {
			t.Errorf("%s table malformed:\n%s", name, out)
		}
	}
}

func TestAloneMeanInterpolation(t *testing.T) {
	ctx := tinyCtx()
	cal := tCalib(t, ctx, workload.Silo)
	lo, hi := cal.AloneMeanAt(10), cal.AloneMeanAt(90)
	if lo <= 0 || hi < lo {
		t.Fatalf("mean interpolation broken: %v, %v", lo, hi)
	}
}
