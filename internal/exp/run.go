package exp

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"runtime/debug"

	"pivot/internal/checkpoint"
	"pivot/internal/faultinject"
	"pivot/internal/flight"
	"pivot/internal/load"
	"pivot/internal/machine"
	"pivot/internal/manager"
	"pivot/internal/mem"
	"pivot/internal/metrics"
	"pivot/internal/sim"
)

// LCSpec places one LC app at a percentage of its calibrated max load.
type LCSpec struct {
	App     string
	LoadPct int

	// Interarrival pins the mean request inter-arrival (cycles) directly,
	// skipping calibration — no QoS target applies, so the task counts as
	// meeting QoS unless its queue saturates. 0 derives the arrival rate from
	// LoadPct and the app's calibrated max load.
	Interarrival float64

	// ExpectedBW overrides the task's expected bandwidth fraction; 0 derives
	// it from calibration (0.9x the run-alone bandwidth at LoadPct).
	ExpectedBW float64

	// Load shapes the task's arrival process and reference skew (phases,
	// on-off bursts, tenant windows, Zipf). Its Mean is left zero — the base
	// rate always comes from Interarrival or calibration at LoadPct; the
	// machine fills it in. The zero value keeps stationary Poisson arrivals.
	Load load.Spec
}

// BESpec places n threads of one BE app.
type BESpec struct {
	App     string
	Threads int
}

// Method is a partitioning approach as named in the paper's figures: either
// a hardware policy or a software manager over the managed policy.
type Method struct {
	Name    string
	Policy  machine.Policy
	Manager string // "PARTIES" or "CLITE" (Policy must be PolicyManaged)
	// MBALevel, for PolicyMBA, fixes the static BE throttle; 0 lets
	// RunBestMBA search for the best level meeting QoS.
	MBALevel int
}

// Named method sets used across figures.
func MethodDefault() Method { return Method{Name: "Default", Policy: machine.PolicyDefault} }
func MethodMBA(lvl int) Method {
	return Method{Name: "MBA", Policy: machine.PolicyMBA, MBALevel: lvl}
}
func MethodMPAM() Method     { return Method{Name: "MPAM", Policy: machine.PolicyMPAM} }
func MethodFullPath() Method { return Method{Name: "FullPath", Policy: machine.PolicyFullPath} }
func MethodPIVOT() Method    { return Method{Name: "PIVOT", Policy: machine.PolicyPIVOT} }
func MethodPARTIES() Method {
	return Method{Name: "PARTIES", Policy: machine.PolicyManaged, Manager: "PARTIES"}
}
func MethodCLITE() Method {
	return Method{Name: "CLITE", Policy: machine.PolicyManaged, Manager: "CLITE"}
}

// RunSpec is one co-location simulation.
type RunSpec struct {
	Method Method
	LCs    []LCSpec
	BEs    []BESpec

	// Extra policy options (leave-one-out MSC, RRBP overrides, ...).
	Opt machine.Options

	// Seed overrides Scale.Seed, and Warmup/Measure override the scale's run
	// windows; zero keeps the scale's value. The execution form of an
	// expanded scenario run unit carries these (scenario.Scenario.Seed and
	// the warmup/measure window overrides).
	Seed            uint64
	Warmup, Measure sim.Cycle

	// Faults, when non-nil, attaches seed-derived fault injectors to the four
	// MSC stations before the run (see internal/faultinject). Used by
	// resilience tests; production sweeps leave it nil.
	Faults *faultinject.Config

	// FaultPlan, when non-nil, attaches a per-station fault campaign instead
	// (the execution form of a scenario's `faults` stanza; see FaultPlanFor).
	// Like Faults, it excludes the run from checkpointing.
	FaultPlan *faultinject.Plan
}

// RunResult summarises one simulation.
type RunResult struct {
	P50     []uint32 // per LC task
	P95     []uint32 // per LC task
	P99     []uint32 // per LC task
	QoSMet  []bool
	AllQoS  bool
	MeanLat []float64
	BEIPC   float64 // aggregate BE instructions per cycle
	BWUtil  float64
	Split   [mem.NumComponents]float64
	SplitN  uint64
	LCIPC   []float64
}

// Run executes one co-location scenario and evaluates QoS against the
// calibrated knee targets. All failure modes come back as errors: invalid
// machine configs, aborted runs (watchdog stall, invariant-audit violation,
// deadline, cycle budget), and any panic escaping the simulator, which is
// recovered into a *machine.PanicError carrying the goroutine stack and a
// diagnostic snapshot of the machine at the moment it died.
func (ctx *Context) Run(spec RunSpec) (res RunResult, err error) {
	var m *machine.Machine
	defer func() {
		if p := recover(); p != nil {
			pe := &machine.PanicError{Value: p, Stack: string(debug.Stack())}
			if m != nil {
				pe.Diag = m.Diagnose()
			}
			res, err = RunResult{}, pe
		}
	}()

	opt := ctx.guard(spec.Opt)
	opt.Policy = spec.Method.Policy
	if ctx.StatsEpoch > 0 && opt.SampleRequests == 0 {
		// Recording request lifecycles is purely observational; it feeds the
		// timeline exporter without touching any simulated decision.
		opt.SampleRequests = 128
	}

	seed, warmup, measure := ctx.runWindows(spec)

	var tasks []machine.TaskSpec
	var targets []uint32
	for _, lc := range spec.LCs {
		ts := machine.TaskSpec{
			Kind:      machine.TaskLC,
			Potential: ctx.potentialFor(spec.Method, lc.App),
			Seed:      seed,
			Load:      lc.Load,
		}
		if lc.Interarrival > 0 {
			// Explicit arrival rate: no calibration, no knee-derived target.
			ts.LC = ctx.lcParams(lc.App)
			ts.MeanInterarrival = lc.Interarrival
			ts.ExpectedBW = lc.ExpectedBW
			targets = append(targets, 0)
		} else {
			cal, cerr := ctx.Calib(lc.App)
			if cerr != nil {
				return RunResult{}, cerr
			}
			ts.LC = cal.App
			ts.MeanInterarrival = cal.MeanIAAt(lc.LoadPct)
			ts.ExpectedBW = 0.9 * cal.AloneBWAt(lc.LoadPct)
			if lc.ExpectedBW > 0 {
				ts.ExpectedBW = lc.ExpectedBW
			}
			targets = append(targets, cal.QoSTarget)
		}
		tasks = append(tasks, ts)
	}
	for _, be := range spec.BEs {
		app := ctx.beParams(be.App)
		for i := 0; i < be.Threads && len(tasks) < ctx.Cfg.Cores; i++ {
			tasks = append(tasks, machine.TaskSpec{
				Kind: machine.TaskBE, BE: app,
				Seed: seed + uint64(10+len(tasks)),
			})
		}
	}

	m, err = machine.New(ctx.Cfg, opt, tasks)
	if err != nil {
		return RunResult{}, err
	}
	if ctx.StatsEpoch > 0 {
		m.EnableStats(ctx.StatsEpoch, 0)
	}
	if ctx.FlightTop > 0 {
		m.EnableFlight(flight.Config{TopK: ctx.FlightTop, SampleCap: ctx.FlightSample})
	}
	if ctx.Progress != nil {
		m.SetProgress(ctx.Progress)
		ctx.Progress.SetGoal(uint64(warmup + measure))
	}
	if spec.Method.Policy == machine.PolicyMBA && spec.Method.MBALevel > 0 {
		for i, t := range tasks {
			if t.Kind == machine.TaskBE {
				m.MBA().SetLevel(mem.PartID(i), spec.Method.MBALevel)
			}
		}
	}
	if spec.Faults != nil {
		faultinject.Attach(m, *spec.Faults)
	}
	if spec.FaultPlan != nil {
		faultinject.AttachPlan(m, *spec.FaultPlan)
	}

	rc := ctx.runContext()
	switch spec.Method.Manager {
	case "PARTIES":
		err = manager.RunChecked(rc, manager.NewPARTIES(targets), m, warmup, measure, ctx.Scale.Epoch)
	case "CLITE":
		err = manager.RunChecked(rc, manager.NewCLITE(targets), m, warmup, measure, ctx.Scale.Epoch)
	default:
		if dir := ctx.checkpointDir(m, spec, warmup, measure); dir != "" {
			var resumed sim.Cycle
			resumed, err = m.RunCheckpointed(rc, warmup, measure,
				machine.CheckpointConfig{Dir: dir, Interval: ctx.CheckpointInterval})
			if resumed > 0 {
				ctx.logf("  %s: resumed from checkpoint at cycle %d", spec.Method.Name, resumed)
				if ctx.OnResume != nil {
					ctx.OnResume(resumed)
				}
			}
			if err == nil {
				// The run completed; its checkpoints have nothing left to
				// protect (the journal records the result).
				_ = checkpoint.Remove(dir)
			}
		} else {
			err = m.RunChecked(rc, warmup, measure)
		}
	}
	if err != nil {
		return RunResult{}, err
	}

	res = RunResult{AllQoS: true}
	for i := range spec.LCs {
		src := m.LCTasks()[i].Source
		lat := src.Latencies()
		qs := metrics.Quantiles(lat, 50, 95, 99) // one sort for all three
		p95 := qs[1]
		target := targets[i]
		// An open-loop source whose backlog keeps growing has saturated even
		// if too few requests completed to show it in p95 yet. A zero target
		// (explicit-interarrival task) has no latency bound to violate.
		saturated := src.QueueDepth() > 32
		met := !saturated && (target == 0 || (p95 != 0 && p95 <= target))
		res.P50 = append(res.P50, qs[0])
		res.P95 = append(res.P95, p95)
		res.P99 = append(res.P99, qs[2])
		res.QoSMet = append(res.QoSMet, met)
		res.MeanLat = append(res.MeanLat, metrics.Mean(lat))
		res.LCIPC = append(res.LCIPC, m.Cores[i].IPC(m.MeasuredCycles()))
		if !met {
			res.AllQoS = false
		}
	}
	res.BEIPC = float64(m.BECommitted()) / float64(m.MeasuredCycles())
	res.BWUtil = m.BWUtil()
	res.Split, res.SplitN = m.SplitAverages()
	ctx.captureStats(m, spec)
	ctx.captureFlight(m, spec)
	return res, nil
}

// runWindows resolves a spec's effective seed and run windows: the spec's
// overrides when set, the scale's values otherwise.
func (ctx *Context) runWindows(spec RunSpec) (seed uint64, warmup, measure sim.Cycle) {
	seed, warmup, measure = ctx.Scale.Seed, ctx.Scale.Warmup, ctx.Scale.Measure
	if spec.Seed != 0 {
		seed = spec.Seed
	}
	if spec.Warmup > 0 {
		warmup = spec.Warmup
	}
	if spec.Measure > 0 {
		measure = spec.Measure
	}
	return seed, warmup, measure
}

// captureStats records the stats dump and timeline of the just-finished run
// (the harness keeps the most recent instrumented run; each capture gets a
// fresh pid so multi-run timelines stay distinguishable if accumulated).
func (ctx *Context) captureStats(m *machine.Machine, spec RunSpec) {
	if !m.StatsEnabled() {
		return
	}
	d := m.StatsDump()
	cap := ctx.sh.cap
	cap.mu.Lock()
	defer cap.mu.Unlock()
	cap.stats = &d
	cap.statsRuns++
	cap.timeline = m.BuildTimeline(cap.statsRuns,
		fmt.Sprintf("run %d: %s", cap.statsRuns, specLabel(spec)))
}

// specLabel names a run for report headers and timeline process names.
func specLabel(spec RunSpec) string {
	label := spec.Method.Name
	for _, lc := range spec.LCs {
		label += fmt.Sprintf(" %s@%d%%", lc.App, lc.LoadPct)
	}
	return label
}

// captureFlight records the tail-attribution report of the just-finished
// flight-recorded run. Source deliberately excludes the build fingerprint and
// run counters — the report must be byte-identical across dense, skip-ahead
// and kill-and-resume invocations of the same spec (callers add provenance
// when exporting).
func (ctx *Context) captureFlight(m *machine.Machine, spec RunSpec) {
	if !m.FlightEnabled() {
		return
	}
	rep := m.FlightReport()
	rep.Source = specLabel(spec)
	cap := ctx.sh.cap
	cap.mu.Lock()
	defer cap.mu.Unlock()
	cap.flight = rep
	// When the same run was also stats-instrumented, its slowest requests'
	// span chains join the run's Perfetto timeline under their own pid.
	if m.StatsEnabled() && cap.timeline != nil {
		rep.AppendTimeline(cap.timeline, 1000+cap.statsRuns)
	}
}

// checkpointDir derives the per-run checkpoint subdirectory for a spec, or
// "" when checkpointing is off or the run cannot be checkpointed (manager
// runs mutate allocation state between epochs from outside the machine;
// fault-injected runs hold injector state the snapshot does not cover). The
// name hashes the machine fingerprint together with the post-construction
// knobs (method name, static MBA level) and the run lengths, so an identical
// re-invocation resumes its own checkpoints and different specs never
// collide — even when several harness workers checkpoint concurrently.
func (ctx *Context) checkpointDir(m *machine.Machine, spec RunSpec, warmup, measure sim.Cycle) string {
	if ctx.CheckpointDir == "" || spec.Method.Manager != "" || spec.Faults != nil || spec.FaultPlan != nil {
		return ""
	}
	if m.Checkpointable() != nil {
		return ""
	}
	h := fnv.New64a()
	// Flight config is part of the key: a recorder snapshot only restores into
	// a recorder with the same TopK/SampleCap, so runs with different flight
	// settings must not share checkpoints.
	fmt.Fprintf(h, "%016x|%s|%d|%d|%d|%d|%d", m.Fingerprint(), spec.Method.Name,
		spec.Method.MBALevel, warmup, measure, ctx.FlightTop, ctx.FlightSample)
	return filepath.Join(ctx.CheckpointDir, fmt.Sprintf("run-%016x", h.Sum64()))
}

// potentialFor computes the potential set only for the methods that use it.
func (ctx *Context) potentialFor(mth Method, app string) map[uint64]bool {
	switch mth.Policy {
	case machine.PolicyPIVOT:
		return ctx.Potential(app)
	default:
		return nil
	}
}

// mbaLevels is the descending throttle ladder RunBestMBA searches.
var mbaLevels = []int{100, 80, 60, 40, 20, 10, 5, 2}

// RunBestMBA finds the least-throttled static MBA level that still meets
// QoS (what an operator tuning MBA would deploy) and returns its result
// together with the chosen level. If no level protects QoS it returns the
// most throttled attempt.
func (ctx *Context) RunBestMBA(lcs []LCSpec, bes []BESpec) (RunResult, int, error) {
	var last RunResult
	lastLvl := mbaLevels[len(mbaLevels)-1]
	for _, lvl := range mbaLevels {
		r, err := ctx.Run(RunSpec{Method: MethodMBA(lvl), LCs: lcs, BEs: bes})
		if err != nil {
			return RunResult{}, 0, err
		}
		last, lastLvl = r, lvl
		if r.AllQoS {
			return r, lvl, nil
		}
	}
	return last, lastLvl, nil
}

// MaxBEThroughput sweeps the BE thread count downward and returns the best
// normalised BE throughput achieved with QoS met (the Fig 3/13 metric),
// normalising against `normThreads` threads running alone. It returns 0
// when no thread count (including 1) meets QoS.
func (ctx *Context) MaxBEThroughput(mth Method, lcs []LCSpec, beApp string, normThreads int) (float64, error) {
	base, err := ctx.BEAloneIPC(beApp, normThreads)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, nil
	}
	for n := ctx.Scale.MaxBEThreads; n >= 1; n-- {
		if len(lcs)+n > ctx.Cfg.Cores {
			continue
		}
		r, err := ctx.Run(RunSpec{Method: mth, LCs: lcs, BEs: []BESpec{{App: beApp, Threads: n}}})
		if err != nil {
			return 0, err
		}
		if r.AllQoS {
			return r.BEIPC / base, nil
		}
	}
	return 0, nil
}

// MaxBEThroughputMBA is MaxBEThroughput for the static-MBA method, which
// additionally searches the throttle level at each thread count.
func (ctx *Context) MaxBEThroughputMBA(lcs []LCSpec, beApp string, normThreads int) (float64, error) {
	base, err := ctx.BEAloneIPC(beApp, normThreads)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, nil
	}
	for n := ctx.Scale.MaxBEThreads; n >= 1; n-- {
		if len(lcs)+n > ctx.Cfg.Cores {
			continue
		}
		r, _, err := ctx.RunBestMBA(lcs, []BESpec{{App: beApp, Threads: n}})
		if err != nil {
			return 0, err
		}
		if r.AllQoS {
			return r.BEIPC / base, nil // thread counts below n only lose throughput
		}
	}
	return 0, nil
}

// EMU computes effective machine utilisation for a co-location result: the
// summed normalised loads of all tasks, zero if any LC task violates QoS.
func (ctx *Context) EMU(lcs []LCSpec, beApp string, beThreads, normThreads int, r RunResult) (float64, error) {
	if !r.AllQoS {
		return 0, nil
	}
	var sum float64
	for _, lc := range lcs {
		sum += float64(lc.LoadPct) / 100
	}
	if beThreads > 0 {
		base, err := ctx.BEAloneIPC(beApp, normThreads)
		if err != nil {
			return 0, err
		}
		if base > 0 {
			sum += r.BEIPC / base
		}
	}
	return sum * 100, nil
}

// runner is a sticky-error view of a Context for figure bodies: the first
// failure latches and every subsequent call becomes a cheap no-op returning
// zero values, so sweep loops stay expression-shaped (like bufio.Scanner)
// and each figure ends with `return t, rn.err`.
type runner struct {
	ctx *Context
	err error
}

func (ctx *Context) runner() *runner { return &runner{ctx: ctx} }

// zeroResult pads the per-LC slices so figure code indexing r.P95[i] after a
// latched error reads zeros instead of panicking.
func zeroResult(nLC int) RunResult {
	return RunResult{
		P50: make([]uint32, nLC), P95: make([]uint32, nLC), P99: make([]uint32, nLC),
		QoSMet: make([]bool, nLC), MeanLat: make([]float64, nLC), LCIPC: make([]float64, nLC),
	}
}

func (rn *runner) run(spec RunSpec) RunResult {
	if rn.err != nil {
		return zeroResult(len(spec.LCs))
	}
	r, err := rn.ctx.Run(spec)
	if err != nil {
		rn.err = err
		return zeroResult(len(spec.LCs))
	}
	return r
}

func (rn *runner) calib(app string) *AppCalib {
	if rn.err == nil {
		if c, err := rn.ctx.Calib(app); err == nil {
			return c
		} else {
			rn.err = err
		}
	}
	// Zero-valued stand-in: the figure's arithmetic on it is discarded once
	// the latched error is returned.
	return &AppCalib{Curve: []CurvePoint{{}}}
}

func (rn *runner) bestMBA(lcs []LCSpec, bes []BESpec) (RunResult, int) {
	if rn.err == nil {
		r, lvl, err := rn.ctx.RunBestMBA(lcs, bes)
		if err == nil {
			return r, lvl
		}
		rn.err = err
	}
	return zeroResult(len(lcs)), 0
}

func (rn *runner) maxBE(mth Method, lcs []LCSpec, beApp string, normThreads int) float64 {
	if rn.err != nil {
		return 0
	}
	v, err := rn.ctx.MaxBEThroughput(mth, lcs, beApp, normThreads)
	if err != nil {
		rn.err = err
	}
	return v
}

func (rn *runner) maxBEMBA(lcs []LCSpec, beApp string, normThreads int) float64 {
	if rn.err != nil {
		return 0
	}
	v, err := rn.ctx.MaxBEThroughputMBA(lcs, beApp, normThreads)
	if err != nil {
		rn.err = err
	}
	return v
}

func (rn *runner) beAlone(app string, threads int) float64 {
	if rn.err != nil {
		return 0
	}
	v, err := rn.ctx.BEAloneIPC(app, threads)
	if err != nil {
		rn.err = err
	}
	return v
}

func (rn *runner) emu(lcs []LCSpec, beApp string, beThreads, normThreads int, r RunResult) float64 {
	if rn.err != nil {
		return 0
	}
	v, err := rn.ctx.EMU(lcs, beApp, beThreads, normThreads, r)
	if err != nil {
		rn.err = err
	}
	return v
}
