package exp

import (
	"fmt"

	"pivot/internal/machine"
	"pivot/internal/metrics"
	"pivot/internal/workload"
)

// neoverse builds a sibling context over the Table III machine, sharing the
// scale, the robustness settings and the run context but recalibrating
// everything (knees shift with the deeper ROB and faster LLC).
func (ctx *Context) neoverse() *Context {
	n := NewContext(machine.NeoverseConfig(ctx.Cfg.Cores), ctx.Scale)
	n.Out = ctx.Out
	n.Watchdog = ctx.Watchdog
	n.Audit = ctx.Audit
	n.runCtx = ctx.runCtx
	return n
}

// Fig23 — Figure 13's 1 LC + iBench sweep on the ARM Neoverse-like CPU,
// PIVOT vs CLITE.
func (ctx *Context) Fig23() (*metrics.Table, error) {
	nctx := ctx.neoverse()
	t := &metrics.Table{
		Title:   "Figure 23 (Neoverse): max iBench throughput (%) vs LC load",
		Headers: []string{"app", "load", "CLITE", "PIVOT"},
	}
	rn := nctx.runner()
	n := nctx.Scale.MaxBEThreads
	for _, app := range workload.LCNames() {
		for _, pct := range loadSweep {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			t.AddRow(app, fmt.Sprintf("%d%%", pct),
				fmt.Sprintf("%.0f", rn.maxBE(MethodCLITE(), lcs, workload.IBench, n)*100),
				fmt.Sprintf("%.0f", rn.maxBE(MethodPIVOT(), lcs, workload.IBench, n)*100))
		}
	}
	return t, rn.err
}

// Fig24 — Figure 16's CloudSuite single-BE scenarios on Neoverse.
func (ctx *Context) Fig24() (*metrics.Table, error) {
	nctx := ctx.neoverse()
	t := &metrics.Table{
		Title:   "Figure 24 (Neoverse): CloudSuite BE throughput (norm), 2 LC @40%",
		Headers: []string{"scenario", "method", "BE tput", "BW util", "QoS"},
	}
	if err := nctx.fig16Body(t, []Method{MethodCLITE(), MethodPIVOT()}); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig25 — Figure 17's 2 LC + 2 BE scenarios on Neoverse.
func (ctx *Context) Fig25() (*metrics.Table, error) {
	nctx := ctx.neoverse()
	t := &metrics.Table{
		Title:   "Figure 25 (Neoverse): 2 LC + 2 BE throughput (norm) + bandwidth",
		Headers: []string{"scenario", "method", "BE tput", "BW util", "QoS"},
	}
	if err := nctx.fig17Body(t, []Method{MethodCLITE(), MethodPIVOT()}); err != nil {
		return nil, err
	}
	return t, nil
}
