package exp

import (
	"fmt"

	"pivot/internal/machine"
	"pivot/internal/metrics"
	"pivot/internal/scenario"
)

// sibling builds a context over another machine configuration: every knob
// (scale, robustness, observability, checkpointing, run context) carries
// over, but the calibration caches start empty — knees shift with the deeper
// ROB and faster LLC. The capture of the most recent instrumented run is
// shared, so LastStats/LastTimeline/LastFlight on the original context see
// runs executed on the sibling.
func (ctx *Context) sibling(cfg machine.Config) *Context {
	out := *ctx
	out.Cfg = cfg
	out.sh = newShared(ctx.sh.cap)
	return &out
}

// neoverse is the Table III sibling machine.
func (ctx *Context) neoverse() *Context {
	return ctx.sibling(machine.NeoverseConfig(ctx.Cfg.Cores))
}

// Fig23 — Figure 13's 1 LC + iBench sweep on the ARM Neoverse-like CPU,
// PIVOT vs CLITE.
func (ctx *Context) Fig23() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig23")
	nctx := ctx.ForScenario(sc)
	policies := sc.MustAxis("policy").Strings()
	t := &metrics.Table{
		Title:   "Figure 23 (Neoverse): max iBench throughput (%) vs LC load",
		Headers: append([]string{"app", "load"}, policies...),
	}
	rn := nctx.runner()
	beApp := sc.Tasks[1].App
	n := nctx.beThreads(sc.Tasks[1].ThreadCount())
	for _, app := range sc.MustAxis("tasks[0].app").Strings() {
		for _, pct := range sc.MustAxis("tasks[0].load_pct").Ints() {
			lcs := []LCSpec{{App: app, LoadPct: pct}}
			cells := []string{app, fmt.Sprintf("%d%%", pct)}
			for _, pol := range policies {
				cells = append(cells, fmt.Sprintf("%.0f", rn.maxBE(mustMethod(pol), lcs, beApp, n)*100))
			}
			t.AddRow(cells...)
		}
	}
	return t, rn.err
}

// Fig24 — Figure 16's CloudSuite single-BE scenarios on Neoverse.
func (ctx *Context) Fig24() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig24")
	t := &metrics.Table{
		Title:   "Figure 24 (Neoverse): CloudSuite BE throughput (norm), 2 LC @40%",
		Headers: []string{"scenario", "method", "BE tput", "BW util", "QoS"},
	}
	if err := ctx.ForScenario(sc).fig16Body(t, sc); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig25 — Figure 17's 2 LC + 2 BE scenarios on Neoverse.
func (ctx *Context) Fig25() (*metrics.Table, error) {
	sc := scenario.MustBuiltin("fig25")
	t := &metrics.Table{
		Title:   "Figure 25 (Neoverse): 2 LC + 2 BE throughput (norm) + bandwidth",
		Headers: []string{"scenario", "method", "BE tput", "BW util", "QoS"},
	}
	if err := ctx.ForScenario(sc).fig17Body(t, sc); err != nil {
		return nil, err
	}
	return t, nil
}
