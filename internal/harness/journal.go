package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pivot/internal/buildinfo"
)

// Entry is one journal line: a completed job and its JSON-encoded value, or
// a structured failure record. Only successes count as done — failed jobs
// re-run on resume, but their failure entries give the resumed sweep a
// history (what failed, how often, under which build) instead of silence.
// Version is the build fingerprint of the binary that produced the entry,
// so a resumed sweep can be audited for entries computed by older code.
type Entry struct {
	ID      string          `json:"id"`
	Version string          `json:"version,omitempty"`
	Value   json.RawMessage `json:"value,omitempty"`
	// Failed marks a failure record; Error and Attempts describe it.
	Failed   bool   `json:"failed,omitempty"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// journal is an append-only JSONL file of completed jobs, safe for
// concurrent appends from worker goroutines.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	version string // build fingerprint stamped into each entry
	seen    map[string]json.RawMessage
	failed  map[string]Entry // prior failure records, reported on resume
}

// openJournal opens (creating if needed) the journal for appending. When
// resume is set, existing entries are loaded first; a trailing partial line
// (the process died mid-write) is ignored.
func openJournal(path string, resume bool) (*journal, error) {
	j := &journal{
		seen:    make(map[string]json.RawMessage),
		failed:  make(map[string]Entry),
		version: buildinfo.Fingerprint(),
	}
	if resume {
		entries, err := LoadEntries(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		for _, e := range entries {
			if e.Failed {
				// A later success supersedes an earlier failure record, and
				// vice versa: replay in file order, last entry per ID wins.
				delete(j.seen, e.ID)
				j.failed[e.ID] = e
			} else {
				delete(j.failed, e.ID)
				j.seen[e.ID] = e.Value
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := sealTornTail(f, path); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

// sealTornTail terminates a trailing partial line (the previous process died
// mid-append). Without the newline, the first fresh entry would concatenate
// onto the torn bytes and mangle itself; with it, the torn line stays a
// skipped malformed line and new entries land clean.
func sealTornTail(f *os.File, path string) error {
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return err
	}
	r, err := os.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	last := make([]byte, 1)
	if _, err := r.ReadAt(last, st.Size()-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	_, err = f.Write([]byte("\n"))
	return err
}

// LoadJournal reads a JSONL journal into a map of job ID to raw value.
// Failure records are not successes and are excluded; malformed lines (a
// crash mid-append) are skipped, not fatal.
func LoadJournal(path string) (map[string]json.RawMessage, error) {
	entries, err := LoadEntries(path)
	out := make(map[string]json.RawMessage)
	for _, e := range entries {
		if e.Failed {
			delete(out, e.ID)
			continue
		}
		out[e.ID] = e.Value
	}
	return out, err
}

// LoadEntries reads every well-formed journal entry in file order, successes
// and failure records alike. Malformed lines (a crash mid-append, torn or
// interleaved writes) are skipped, not fatal.
func LoadEntries(path string) ([]Entry, error) {
	var out []Entry
	f, err := os.Open(path)
	if err != nil {
		return out, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.ID == "" {
			continue
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

func (j *journal) lookup(id string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.seen[id]
	return v, ok
}

// priorFailure returns the journaled failure record for a job, if resume
// loaded one. The job still re-runs; the record is reported, not trusted.
func (j *journal) priorFailure(id string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.failed[id]
	return e, ok
}

// append journals one completed job. The line is built in memory and issued
// as a single O_APPEND write so concurrent workers never interleave bytes.
func (j *journal) append(id string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("harness: journal value for %s: %w", id, err)
	}
	line, err := json.Marshal(Entry{ID: id, Version: j.version, Value: raw})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	// fsync per entry: a journaled result must survive the host dying right
	// after we report the job complete, or resume would silently recompute
	// (or worse, trust a torn line — LoadJournal skips those).
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.seen[id] = raw
	delete(j.failed, id)
	return nil
}

// appendFailure journals a structured failure record for a job that ran out
// of attempts. Resume reports it but does not treat the job as done.
func (j *journal) appendFailure(id string, attempts int, cause error) error {
	e := Entry{ID: id, Version: j.version, Failed: true, Attempts: attempts}
	if cause != nil {
		e.Error = cause.Error()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.failed[id] = e
	return nil
}

// ValueAs decodes a Result's value as T, handling both live values (returned
// by the job this process ran) and journal-replayed json.RawMessage values.
func ValueAs[T any](res Result) (T, error) {
	var out T
	switch v := res.Value.(type) {
	case T:
		return v, nil
	case json.RawMessage:
		err := json.Unmarshal(v, &out)
		return out, err
	default:
		// Round-trip through JSON: covers live values whose concrete type
		// differs from T only by encoding (e.g. any-typed maps).
		raw, err := json.Marshal(res.Value)
		if err != nil {
			return out, err
		}
		return out, json.Unmarshal(raw, &out)
	}
}

// WriteFileAtomic writes data to path via a temp file + rename in the same
// directory, so readers never observe a half-written result and an aborted
// sweep cannot corrupt a previous complete output. The temp file is fsynced
// before the rename and the parent directory after it, so the result is
// durable: after WriteFileAtomic returns, a crash (or power loss) leaves
// either the old content or the complete new content — never a torn file and
// never a dangling directory entry.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = ""
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
