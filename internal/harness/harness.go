// Package harness is the resilient sweep runner: a worker pool that executes
// experiment jobs in parallel, converts panics into structured errors with a
// machine diagnostic attached, bounds each run with a wall-clock deadline,
// retries transient host failures with backoff, and journals completed runs
// so an interrupted sweep resumes without recomputing.
//
// Determinism: each simulation's state lives entirely inside its own
// machine, and the exp.Context caches are synchronised, so a sweep run with
// Parallel=N produces results identical to a serial run of the same jobs.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"pivot/internal/machine"
	"pivot/internal/stats"
)

// Config parameterises one sweep.
type Config struct {
	// Parallel is the worker count; values < 1 mean serial.
	Parallel int
	// Timeout is the per-run wall-clock deadline (0 = unbounded).
	Timeout time.Duration
	// Retries is how many times a job is re-attempted after a transient
	// failure (deterministic simulation failures are never retried).
	Retries int
	// Backoff is the wait before the first retry; it doubles per attempt.
	Backoff time.Duration
	// JournalPath, when set, appends one JSONL entry per completed job and
	// enables Resume.
	JournalPath string
	// Resume skips jobs whose IDs already have journal entries, returning
	// the journaled value instead of recomputing.
	Resume bool
	// Out receives progress notes; nil silences them. Ignored when Logger is
	// set.
	Out io.Writer
	// Logger, when set, receives structured progress notes instead of the
	// plain-text lines written to Out. Use stats-free handlers only: the
	// harness logs from worker goroutines.
	Logger *slog.Logger
	// Progress, when set, is fed live sweep telemetry (units done/failed and
	// the current job label) for the /progress debug endpoint.
	Progress *stats.Progress
	// Executor, when set, replaces each job's Run with an alternate execution
	// strategy (e.g. dispatch to a fabric coordinator). The executor receives
	// the full Job, so it can inspect Payload and fall back to job.Run for
	// jobs it cannot place elsewhere. Retry, timeout, panic capture and
	// journaling apply to the executor exactly as they would to Run.
	Executor Executor
}

// Executor is a pluggable job execution strategy (see Config.Executor).
type Executor func(ctx context.Context, job Job) (any, error)

// Job is one unit of work. Run receives a context carrying the per-run
// deadline; its returned value must be JSON-marshalable for journaling.
// Payload, when set, is a serialisable description of the work that an
// Executor can ship to another process; the in-process path ignores it.
type Job struct {
	ID      string
	Run     func(ctx context.Context) (any, error)
	Payload any
}

// Result is the outcome of one job, in job order.
type Result struct {
	ID string
	// Value is what Run returned — or a json.RawMessage when the value was
	// replayed from the journal (decode with ValueAs).
	Value any
	// Err is nil on success; otherwise a *RunError.
	Err      error
	Attempts int
	// Resumed marks values replayed from the journal without recomputation.
	Resumed bool
	Elapsed time.Duration
}

// RunError wraps a job failure with its identity and attempt count. The
// underlying cause may be a *machine.StallError, *machine.AuditError,
// *machine.PanicError, *machine.AbortError or any host error.
type RunError struct {
	JobID    string
	Attempts int
	Err      error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("harness: job %s failed after %d attempt(s): %v", e.JobID, e.Attempts, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// Diag extracts the machine diagnostic snapshot from the failure, if the
// underlying error carries one.
func (e *RunError) Diag() (machine.Diagnostic, bool) { return machine.DiagOf(e.Err) }

// ErrTransient marks an error as a transient host failure worth retrying;
// wrap it (fmt.Errorf("...: %w", harness.ErrTransient)) or implement
// `Transient() bool` on the error type.
var ErrTransient = errors.New("transient failure")

// transient reports whether err should be retried. Simulation failures are
// deterministic — the same seed reproduces them exactly — so retrying them
// burns time to learn nothing; only errors explicitly marked transient
// (host-level flakiness) qualify.
func transient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Runner executes sweeps. Zero value is unusable; build with New.
type Runner struct {
	cfg     Config
	log     *slog.Logger
	journal *journal // nil when journaling is off
}

// New builds a runner, loading the journal when resuming.
func New(cfg Config) (*Runner, error) {
	r := &Runner{cfg: cfg, log: resolveLogger(cfg)}
	if cfg.JournalPath != "" {
		j, err := openJournal(cfg.JournalPath, cfg.Resume)
		if err != nil {
			return nil, err
		}
		r.journal = j
	}
	return r, nil
}

// resolveLogger picks the diagnostic sink: an explicit structured logger wins;
// otherwise Out gets human-readable text lines; otherwise silence.
func resolveLogger(cfg Config) *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	return slog.New(slog.NewTextHandler(out, &slog.HandlerOptions{
		// Drop the timestamp: sweep logs are compared across runs in tests
		// and by humans diffing reruns, and wall-clock stamps are pure noise
		// there (Elapsed is reported explicitly where it matters).
		ReplaceAttr: func(_ []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// Run executes all jobs and returns one Result per job, in job order. It
// never returns early: failed jobs are reported in their Result while the
// remaining jobs keep running. Failed reports whether any job failed.
func (r *Runner) Run(jobs []Job) []Result {
	return r.RunContext(context.Background(), jobs)
}

// RunContext is Run bounded by a parent context: cancelling it aborts
// in-flight jobs (their simulations flush a final checkpoint when
// checkpointing is on, so a resumed sweep loses no work) and fails not-yet-
// started jobs immediately with the cancellation cause. Per-job timeouts
// still apply on top of the parent deadline.
func (r *Runner) RunContext(ctx context.Context, jobs []Job) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	r.cfg.Progress.SetUnits(uint64(len(jobs)))
	results := make([]Result, len(jobs))
	workers := r.cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runOne(ctx, jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Failed counts the failures in a result set.
func Failed(results []Result) int {
	n := 0
	for _, res := range results {
		if res.Err != nil {
			n++
		}
	}
	return n
}

func (r *Runner) runOne(ctx context.Context, job Job) Result {
	if r.journal != nil && r.cfg.Resume {
		if raw, ok := r.journal.lookup(job.ID); ok {
			r.log.Info("resumed from journal", "job", job.ID)
			r.cfg.Progress.UnitDone(false)
			return Result{ID: job.ID, Value: raw, Resumed: true}
		}
		if e, ok := r.journal.priorFailure(job.ID); ok {
			// Failure records are history, not results: report and re-run.
			r.log.Warn("re-running previously failed job",
				"job", job.ID, "priorAttempts", e.Attempts, "priorErr", e.Error)
		}
	}
	if err := ctx.Err(); err != nil {
		// Sweep cancelled before this job started: fail fast instead of
		// burning a full simulation that would abort at its first check.
		r.cfg.Progress.UnitDone(true)
		return Result{ID: job.ID, Err: &RunError{JobID: job.ID, Err: err}}
	}
	r.cfg.Progress.SetLabel(job.ID)
	start := time.Now()
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(r.cfg.Backoff << (attempt - 1))
			r.log.Warn("retrying", "job", job.ID, "attempt", attempt, "retries", r.cfg.Retries)
		}
		attempts++
		v, err := r.attempt(ctx, job)
		if err == nil {
			if r.journal != nil {
				if jerr := r.journal.append(job.ID, v); jerr != nil {
					r.log.Error("journal write failed", "job", job.ID, "err", jerr)
				}
			}
			r.log.Info("job ok", "job", job.ID, "elapsedSec", round1(time.Since(start).Seconds()))
			r.cfg.Progress.UnitDone(false)
			return Result{ID: job.ID, Value: v, Attempts: attempts, Elapsed: time.Since(start)}
		}
		lastErr = err
		if !transient(err) || ctx.Err() != nil {
			break
		}
	}
	r.log.Error("job failed", "job", job.ID, "attempts", attempts, "err", lastErr)
	if r.journal != nil && ctx.Err() == nil {
		// Journal the failure so a resumed sweep reports it instead of
		// silently retrying with no history. Cancellation is not a job
		// failure — those jobs simply re-run next time.
		if jerr := r.journal.appendFailure(job.ID, attempts, lastErr); jerr != nil {
			r.log.Error("journal write failed", "job", job.ID, "err", jerr)
		}
	}
	r.cfg.Progress.UnitDone(true)
	return Result{
		ID:       job.ID,
		Err:      &RunError{JobID: job.ID, Attempts: attempts, Err: lastErr},
		Attempts: attempts,
		Elapsed:  time.Since(start),
	}
}

// round1 keeps elapsed-seconds log attrs readable (one decimal).
func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }

// attempt runs the job once under its deadline, converting an escaped panic
// into a *machine.PanicError so one poisoned run cannot kill the sweep. The
// per-run deadline nests inside the sweep's parent context, so cancelling
// the sweep (graceful shutdown) reaches every in-flight simulation.
func (r *Runner) attempt(parent context.Context, job Job) (v any, err error) {
	ctx := parent
	if r.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			v, err = nil, &machine.PanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	if r.cfg.Executor != nil {
		return r.cfg.Executor(ctx, job)
	}
	return job.Run(ctx)
}
