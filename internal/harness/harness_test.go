package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pivot/internal/exp"
	"pivot/internal/faultinject"
	"pivot/internal/machine"
	"pivot/internal/workload"
)

// --- pure harness mechanics (no simulation) ---------------------------------

func TestPanicBecomesRunError(t *testing.T) {
	r, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	results := r.Run([]Job{{ID: "boom", Run: func(context.Context) (any, error) {
		panic("kaboom")
	}}})
	if Failed(results) != 1 {
		t.Fatalf("Failed = %d, want 1", Failed(results))
	}
	var re *RunError
	if !errors.As(results[0].Err, &re) || re.JobID != "boom" {
		t.Fatalf("got %v, want *RunError for job boom", results[0].Err)
	}
	var pe *machine.PanicError
	if !errors.As(re, &pe) {
		t.Fatalf("RunError does not wrap *machine.PanicError: %v", re)
	}
	if pe.Value != "kaboom" || !strings.Contains(pe.Stack, "harness") {
		t.Fatalf("panic payload lost: value=%v stack has %d bytes", pe.Value, len(pe.Stack))
	}
}

func TestTransientFailuresRetry(t *testing.T) {
	r, err := New(Config{Retries: 5, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	results := r.Run([]Job{{ID: "flaky", Run: func(context.Context) (any, error) {
		calls++
		if calls < 3 {
			return nil, fmt.Errorf("host hiccup: %w", ErrTransient)
		}
		return "ok", nil
	}}})
	if results[0].Err != nil {
		t.Fatalf("transient job never recovered: %v", results[0].Err)
	}
	if calls != 3 || results[0].Attempts != 3 {
		t.Fatalf("calls=%d attempts=%d, want 3/3", calls, results[0].Attempts)
	}
}

func TestDeterministicFailuresDoNotRetry(t *testing.T) {
	r, err := New(Config{Retries: 5, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	results := r.Run([]Job{{ID: "det", Run: func(context.Context) (any, error) {
		calls++
		return nil, errors.New("same seed, same crash")
	}}})
	if calls != 1 || results[0].Attempts != 1 {
		t.Fatalf("deterministic failure retried: calls=%d attempts=%d", calls, results[0].Attempts)
	}
	if results[0].Err == nil {
		t.Fatal("failure swallowed")
	}
}

func TestTimeoutReachesJob(t *testing.T) {
	r, err := New(Config{Timeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	results := r.Run([]Job{{ID: "slow", Run: func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", results[0].Err)
	}
}

func TestJournalResumeSkipsCompletedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	r1, err := New(Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	echo := func(s string) func(context.Context) (any, error) {
		return func(context.Context) (any, error) { return s, nil }
	}
	r1.Run([]Job{{ID: "a", Run: echo("alpha")}, {ID: "b", Run: echo("beta")}})

	r2, err := New(Config{JournalPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	poison := func(context.Context) (any, error) {
		t.Error("journaled job re-ran on resume")
		return nil, errors.New("re-ran")
	}
	results := r2.Run([]Job{
		{ID: "a", Run: poison},
		{ID: "b", Run: poison},
		{ID: "c", Run: echo("gamma")},
	})
	for i, want := range []string{"alpha", "beta", "gamma"} {
		got, err := ValueAs[string](results[i])
		if err != nil || got != want {
			t.Fatalf("result %d = %q (%v), want %q", i, got, err, want)
		}
	}
	if !results[0].Resumed || !results[1].Resumed || results[2].Resumed {
		t.Fatalf("resume flags wrong: %v %v %v",
			results[0].Resumed, results[1].Resumed, results[2].Resumed)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "second" {
		t.Fatalf("read back %q (%v)", data, err)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil || len(ents) != 1 {
		t.Fatalf("temp files leaked: %v (%v)", ents, err)
	}
}

// --- simulation-backed sweeps ----------------------------------------------

var (
	tinyOnce sync.Once
	tinyCtx  *exp.Context
)

// testCtx returns a shared experiment context at a deliberately tiny scale:
// large enough for closed-loop calibration to converge, small enough that
// the whole file stays test-suite friendly.
func testCtx(t *testing.T) *exp.Context {
	t.Helper()
	tinyOnce.Do(func() {
		scale := exp.Scale{
			Warmup:       150_000,
			Measure:      150_000,
			CalMeasure:   120_000,
			LoadFracs:    []float64{0.2, 0.6},
			Epoch:        25_000,
			MaxBEThreads: 3,
			Seed:         1,
		}
		tinyCtx = exp.NewContext(machine.KunpengConfig(4), scale)
	})
	return tinyCtx
}

// sweepSpecs is the acceptance campaign: ten co-location runs with
// seed-derived faults at every MSC station, one of which is rigged to panic
// mid-simulation.
func sweepSpecs() []exp.RunSpec {
	methods := []exp.Method{exp.MethodDefault(), exp.MethodPIVOT()}
	var specs []exp.RunSpec
	for i := 0; i < 10; i++ {
		spec := exp.RunSpec{
			Method: methods[i%len(methods)],
			LCs:    []exp.LCSpec{{App: workload.Masstree, LoadPct: 40 + 10*(i%3)}},
			BEs:    []exp.BESpec{{App: workload.IBench, Threads: 1 + i%2}},
			Faults: &faultinject.Config{
				Seed:        uint64(100 + i),
				DropProb:    0.005,
				SpikeProb:   0.01,
				SpikeCycles: 30,
			},
		}
		if i == 4 {
			// Rigged run: enough injected events to trip the panic mid-sweep.
			spec.Faults.SpikeProb = 0.5
			spec.Faults.PanicAfter = 200
		}
		specs = append(specs, spec)
	}
	return specs
}

func runSweep(t *testing.T, cfg Config, specs []exp.RunSpec) []Result {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r.Run(SpecJobs(testCtx(t), specs))
}

func decodeRun(t *testing.T, res Result) exp.RunResult {
	t.Helper()
	v, err := ValueAs[exp.RunResult](res)
	if err != nil {
		t.Fatalf("decoding %s: %v", res.ID, err)
	}
	return v
}

// TestSweepSurvivesFaultsAndPanic is the end-to-end acceptance scenario: a
// 10-run sweep under seeded fault injection where one run panics. The
// harness must complete every healthy run, report the poisoned one as a
// structured failure with a machine diagnostic, and — run again in parallel
// and resumed from a truncated journal — reproduce the serial baseline
// exactly.
func TestSweepSurvivesFaultsAndPanic(t *testing.T) {
	specs := sweepSpecs()
	baseline := runSweep(t, Config{}, specs)
	if n := Failed(baseline); n != 1 {
		t.Fatalf("serial sweep: %d failures, want exactly the rigged run", n)
	}
	var re *RunError
	if !errors.As(baseline[4].Err, &re) {
		t.Fatalf("rigged run error is %v, want *RunError", baseline[4].Err)
	}
	var pe *machine.PanicError
	if !errors.As(re, &pe) {
		t.Fatalf("rigged run did not surface the panic: %v", re)
	}
	if d, ok := re.Diag(); !ok || d.Cycle == 0 {
		t.Fatal("panic diagnostic missing the machine snapshot")
	}

	// Parallel sweep with a journal: identical results, in order.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	par := runSweep(t, Config{Parallel: 4, JournalPath: path}, specs)
	if Failed(par) != 1 || par[4].Err == nil {
		t.Fatalf("parallel sweep failures diverged: %d", Failed(par))
	}
	for i := range specs {
		if i == 4 {
			continue
		}
		if a, b := decodeRun(t, baseline[i]), decodeRun(t, par[i]); !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d diverged under -parallel 4:\nserial:   %+v\nparallel: %+v", i, a, b)
		}
	}

	// Interrupt: keep only the first half of the journal, then resume. The
	// journaled runs replay, the rest recompute, the rigged run fails again,
	// and every value still matches the serial baseline.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n"), "\n")
	cut := filepath.Join(t.TempDir(), "interrupted.jsonl")
	if err := os.WriteFile(cut, []byte(strings.Join(lines[:len(lines)/2], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed := runSweep(t, Config{JournalPath: cut, Resume: true}, specs)
	if Failed(resumed) != 1 || resumed[4].Err == nil {
		t.Fatalf("resumed sweep failures diverged: %d", Failed(resumed))
	}
	anyResumed := false
	for i := range specs {
		if i == 4 {
			continue
		}
		anyResumed = anyResumed || resumed[i].Resumed
		if a, b := decodeRun(t, baseline[i]), decodeRun(t, resumed[i]); !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d diverged after resume:\nserial:  %+v\nresumed: %+v", i, a, b)
		}
	}
	if !anyResumed {
		t.Fatal("truncated journal replayed nothing — resume path untested")
	}
}

// TestParallelMatchesSerialFaultFree pins the determinism contract without
// any fault injection in the way.
func TestParallelMatchesSerialFaultFree(t *testing.T) {
	var specs []exp.RunSpec
	for _, m := range []exp.Method{exp.MethodDefault(), exp.MethodPIVOT()} {
		for _, load := range []int{40, 70} {
			specs = append(specs, exp.RunSpec{
				Method: m,
				LCs:    []exp.LCSpec{{App: workload.Masstree, LoadPct: load}},
				BEs:    []exp.BESpec{{App: workload.IBench, Threads: 2}},
			})
		}
	}
	serial := runSweep(t, Config{}, specs)
	par := runSweep(t, Config{Parallel: 4}, specs)
	if Failed(serial) != 0 || Failed(par) != 0 {
		t.Fatalf("fault-free sweep failed: serial %d, parallel %d", Failed(serial), Failed(par))
	}
	for i := range specs {
		if a, b := decodeRun(t, serial[i]), decodeRun(t, par[i]); !reflect.DeepEqual(a, b) {
			t.Fatalf("spec %d (%s) diverged under parallelism", i, SpecLabel(specs[i]))
		}
	}
}

// TestExperimentResumeByteIdentical drives the same path pivot-exp uses:
// rendered table text is what gets journaled, so a resumed sweep prints
// byte-for-byte what the original would have.
func TestExperimentResumeByteIdentical(t *testing.T) {
	ids := []string{"table1", "table2", "storage"}
	jobs, err := ExperimentJobs(testCtx(t), ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "exp.jsonl")
	r1, err := New(Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	first := r1.Run(jobs)
	if Failed(first) != 0 {
		t.Fatalf("static experiments failed: %+v", first)
	}
	r2, err := New(Config{JournalPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	second := r2.Run(jobs)
	for i := range jobs {
		if !second[i].Resumed {
			t.Fatalf("experiment %s recomputed despite journal", jobs[i].ID)
		}
		a, err1 := ValueAs[string](first[i])
		b, err2 := ValueAs[string](second[i])
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("experiment %s output changed across resume (%v, %v)", jobs[i].ID, err1, err2)
		}
		if a == "" {
			t.Fatalf("experiment %s rendered empty output", jobs[i].ID)
		}
	}
}

func TestSpecLabel(t *testing.T) {
	spec := exp.RunSpec{
		Method: exp.MethodPIVOT(),
		LCs:    []exp.LCSpec{{App: workload.Masstree, LoadPct: 60}},
		BEs:    []exp.BESpec{{App: workload.IBench, Threads: 3}},
	}
	if got := SpecLabel(spec); got != "PIVOT+masstree@60+ibenchx3" {
		t.Fatalf("SpecLabel = %q", got)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := ExperimentJobs(testCtx(t), []string{"fig99"}, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunContextCancellation(t *testing.T) {
	r, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled sweep: jobs fail fast without running.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	results := r.RunContext(cancelled, []Job{{ID: "a", Run: func(ctx context.Context) (any, error) {
		ran = true
		return nil, ctx.Err()
	}}})
	if ran {
		t.Error("job ran under an already-cancelled sweep")
	}
	if results[0].Err == nil || !errors.Is(results[0].Err, context.Canceled) {
		t.Errorf("cancelled job error = %v, want context.Canceled", results[0].Err)
	}

	// Mid-sweep cancellation reaches the in-flight job's context, and a
	// cancelled failure is never retried even when marked transient.
	ctx2, cancel2 := context.WithCancel(context.Background())
	r2, err := New(Config{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	results = r2.RunContext(ctx2, []Job{{ID: "b", Run: func(ctx context.Context) (any, error) {
		attempts++
		cancel2()
		<-ctx.Done()
		return nil, fmt.Errorf("aborted: %w: %w", ctx.Err(), ErrTransient)
	}}})
	if results[0].Err == nil {
		t.Error("cancelled in-flight job reported success")
	}
	if attempts != 1 {
		t.Errorf("cancelled job attempted %d times, want 1", attempts)
	}
}
