package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"

	"pivot/internal/stats"
)

// TestProgressEndpointDuringSweep hits the /progress HTTP endpoint
// continuously while a parallel sweep feeds the telemetry counters from
// several worker goroutines — under `go test -race` this proves live
// telemetry reads never race the run. It also checks the snapshot arithmetic:
// after the sweep, units and cycles must add up.
func TestProgressEndpointDuringSweep(t *testing.T) {
	p := stats.NewProgress()
	addr, err := stats.ServeDebugWith("127.0.0.1:0", p)
	if err != nil {
		t.Fatalf("ServeDebugWith: %v", err)
	}
	url := "http://" + addr + "/progress"

	const jobs, cyclesPerJob = 12, 2000
	r, err := New(Config{Parallel: 4, Progress: p})
	if err != nil {
		t.Fatal(err)
	}
	var js []Job
	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("unit-%02d", i)
		js = append(js, Job{ID: id, Run: func(context.Context) (any, error) {
			p.SetGoal(cyclesPerJob)
			for c := 0; c <= cyclesPerJob; c += 100 {
				p.SetCycle(uint64(c))
			}
			return id, nil
		}})
	}

	stop := make(chan struct{})
	var polls atomic.Int64
	go func() {
		defer close(stop)
		for polls.Load() == 0 || p.Snapshot().UnitsDone < jobs {
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("GET /progress: %v", err)
				return
			}
			var snap stats.ProgressSnapshot
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				t.Errorf("decode /progress: %v", err)
				resp.Body.Close()
				return
			}
			resp.Body.Close()
			if snap.UnitsDone > snap.UnitsTotal {
				t.Errorf("snapshot reports %d/%d units", snap.UnitsDone, snap.UnitsTotal)
				return
			}
			polls.Add(1)
		}
	}()

	results := r.Run(js)
	<-stop
	if n := Failed(results); n != 0 {
		t.Fatalf("%d jobs failed", n)
	}
	if polls.Load() == 0 {
		t.Fatal("the poller never read /progress")
	}

	snap := p.Snapshot()
	if snap.UnitsDone != jobs || snap.UnitsTotal != jobs || snap.UnitsFailed != 0 {
		t.Errorf("final snapshot %d/%d done (%d failed), want %d/%d (0)",
			snap.UnitsDone, snap.UnitsTotal, snap.UnitsFailed, jobs, jobs)
	}
	// Parallel workers share the active-cycle counter (last writer wins by
	// design), so the folded total is a lower bound, not an exact sum.
	if snap.TotalCycles == 0 {
		t.Error("no cycles folded into the completed-units base")
	}
}

// TestProgressNilSafe: every telemetry hook must be callable on a nil feed,
// because the harness and machine call them unconditionally.
func TestProgressNilSafe(t *testing.T) {
	var p *stats.Progress
	p.SetCycle(1)
	p.SetGoal(1)
	p.SetUnits(1)
	p.UnitDone(true)
	p.SetLabel("x")
}
