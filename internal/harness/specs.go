package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"pivot/internal/exp"
	"pivot/internal/metrics"
	"pivot/internal/scenario"
)

// SpecLabel renders a stable, human-readable identity for a RunSpec, used as
// the job ID suffix and in failure summaries.
func SpecLabel(spec exp.RunSpec) string {
	var b strings.Builder
	b.WriteString(spec.Method.Name)
	for _, lc := range spec.LCs {
		fmt.Fprintf(&b, "+%s@%d", lc.App, lc.LoadPct)
	}
	for _, be := range spec.BEs {
		fmt.Fprintf(&b, "+%sx%d", be.App, be.Threads)
	}
	return b.String()
}

// SpecJobs builds one job per RunSpec against a shared Context. Each job
// derives a deadline-bounded view of ctx from its run context, so the
// harness timeout reaches down into the simulation loop. Job IDs are
// "<index>:<label>" — index keeps IDs unique when a sweep repeats a spec.
func SpecJobs(ctx *exp.Context, specs []exp.RunSpec) []Job {
	jobs := make([]Job, len(specs))
	for i, spec := range specs {
		jobs[i] = Job{
			ID: fmt.Sprintf("%03d:%s", i, SpecLabel(spec)),
			Run: func(rc context.Context) (any, error) {
				return ctx.WithRunContext(rc).Run(spec)
			},
		}
	}
	return jobs
}

// UnitPayload is the serialisable description of one scenario run unit: the
// canonical encoding of the unit's resolved scenario plus the execution
// settings that shape its result. It is everything a worker process needs to
// reproduce the run bit-identically, and everything a result cache needs to
// key on. Fields deliberately mirror the inputs of exp.Context.Run for a
// scenario unit; anything that can change the result must be here.
type UnitPayload struct {
	// Index and Label locate the unit within its sweep (display only; the
	// cache key excludes them so duplicate units dedupe).
	Index int    `json:"index"`
	Label string `json:"label"`
	// Scenario is the unit's resolved (sweep-free) scenario, canonically
	// encoded; workers strict-parse it back.
	Scenario json.RawMessage `json:"scenario"`
	// Scale, Cores, Dense and Parallel pin the executing context's
	// configuration.
	Scale    exp.Scale `json:"scale"`
	Cores    int       `json:"cores"`
	Dense    bool      `json:"dense,omitempty"`
	Parallel int       `json:"parallel,omitempty"`
	// CkptEvery is the checkpoint interval (simulated cycles) workers apply;
	// 0 means the machine default.
	CkptEvery uint64 `json:"ckpt_every,omitempty"`
}

// ScenarioJobs expands a validated scenario into one job per run unit,
// against the context the scenario's machine stanza selects. The returned
// labels parallel the jobs (labels[i] names jobs[i]'s unit) and feed
// exp.ScenarioTable once the harness delivers the results. Each job also
// carries a UnitPayload so a fabric executor can ship it to worker
// processes instead of running it here.
func ScenarioJobs(ctx *exp.Context, sc *scenario.Scenario) ([]Job, []string, error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	units, err := sc.Expand()
	if err != nil {
		return nil, nil, err
	}
	resolve := ctx.UnitResolver()
	jobs := make([]Job, len(units))
	labels := make([]string, len(units))
	for i, u := range units {
		// Machine-parameter axes give units different configurations; the
		// resolver hands each unit the memoised context for its machine.
		rctx := resolve(u)
		spec, err := rctx.SpecForUnit(u)
		if err != nil {
			return nil, nil, err
		}
		labels[i] = exp.UnitLabel(sc, u)
		jobs[i] = Job{
			ID: fmt.Sprintf("%03d:%s", i, labels[i]),
			Run: func(rc context.Context) (any, error) {
				return rctx.WithRunContext(rc).Run(spec)
			},
			Payload: &UnitPayload{
				Index:     i,
				Label:     labels[i],
				Scenario:  json.RawMessage(u.Scenario.MustEncode()),
				Scale:     ctx.Scale,
				Cores:     ctx.Cfg.Cores,
				Dense:     ctx.Dense,
				Parallel:  ctx.Parallel,
				CkptEvery: uint64(ctx.CheckpointInterval),
			},
		}
	}
	return jobs, labels, nil
}

// ExperimentJobs builds one job per registered experiment ID. Each job's
// value is the experiment's fully rendered table text (render formats one
// table; nil renders the default text form), so a journal replay reproduces
// the sweep's output byte-for-byte without recomputation.
func ExperimentJobs(ctx *exp.Context, ids []string, render func(*metrics.Table) string) ([]Job, error) {
	if render == nil {
		render = func(t *metrics.Table) string { return t.String() + "\n" }
	}
	reg := exp.Registry()
	jobs := make([]Job, 0, len(ids))
	for _, id := range ids {
		e, ok := reg[id]
		if !ok {
			return nil, fmt.Errorf("harness: unknown experiment %q", id)
		}
		jobs = append(jobs, Job{
			ID: e.ID,
			Run: func(rc context.Context) (any, error) {
				tables, err := e.Run(ctx.WithRunContext(rc))
				if err != nil {
					return nil, err
				}
				var b strings.Builder
				for _, t := range tables {
					b.WriteString(render(t))
				}
				return b.String(), nil
			},
		})
	}
	return jobs, nil
}
