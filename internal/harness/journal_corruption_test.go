package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// These tests pin the journal's recovery contract against real corruption
// shapes: a truncated trailing line (the process died mid-append), interleaved
// partial writes (two writers without the append discipline), failure records
// (reported, never treated as done), and entries stamped by a foreign build
// fingerprint (replayed — the fingerprint is an audit trail, not a key).

func journalFile(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	var data []byte
	for _, l := range lines {
		data = append(data, l...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func resumeRun(t *testing.T, path string, jobs []Job) []Result {
	t.Helper()
	r, err := New(Config{JournalPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	return r.Run(jobs)
}

func countingJob(id string, runs *int) Job {
	return Job{ID: id, Run: func(context.Context) (any, error) { *runs++; return "fresh:" + id, nil }}
}

func TestResumeSkipsTruncatedTrailingLine(t *testing.T) {
	path := journalFile(t,
		`{"id":"a","value":"done-a"}`+"\n",
		`{"id":"b","value":"done-b`, // no closing quote, no newline: torn write
	)
	runs := 0
	results := resumeRun(t, path, []Job{countingJob("a", &runs), countingJob("b", &runs)})
	if !results[0].Resumed || results[1].Resumed {
		t.Fatalf("resumed flags = %v/%v, want a resumed, b recomputed", results[0].Resumed, results[1].Resumed)
	}
	if runs != 1 {
		t.Fatalf("ran %d job(s), want 1 (only the torn entry recomputes)", runs)
	}
	// The torn entry's job must now be journaled properly for the next run.
	runs = 0
	results = resumeRun(t, path, []Job{countingJob("a", &runs), countingJob("b", &runs)})
	if runs != 0 || !results[0].Resumed || !results[1].Resumed {
		t.Fatalf("second resume recomputed %d job(s), want 0", runs)
	}
}

func TestResumeSkipsInterleavedPartialWrites(t *testing.T) {
	path := journalFile(t,
		`{"id":"a","value":"done-a"}`+"\n",
		`{"id":"b","val{"id":"c","value":"done-c"}`+"\n", // two writes interleaved into one line
		`{"id":"d","value":"done-d"}`+"\n",
	)
	runs := 0
	results := resumeRun(t, path, []Job{
		countingJob("a", &runs), countingJob("b", &runs),
		countingJob("c", &runs), countingJob("d", &runs),
	})
	for i, want := range []bool{true, false, false, true} {
		if results[i].Resumed != want {
			t.Errorf("job %s resumed = %v, want %v", results[i].ID, results[i].Resumed, want)
		}
	}
	if runs != 2 {
		t.Fatalf("ran %d job(s), want 2 (the mangled line's jobs recompute)", runs)
	}
}

func TestFailureEntriesReRunAndAreReported(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	boom := errors.New("deterministic failure")
	attempts := 0
	flaky := Job{ID: "flaky", Run: func(context.Context) (any, error) {
		attempts++
		if attempts == 1 {
			return nil, boom
		}
		return "recovered", nil
	}}

	// First sweep: the job fails and the failure must be journaled.
	r, err := New(Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Run([]Job{flaky}); res[0].Err == nil {
		t.Fatal("first run should have failed")
	}
	entries, err := LoadEntries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Failed || entries[0].Attempts != 1 ||
		entries[0].Error != boom.Error() {
		t.Fatalf("journal after failure = %+v, want one structured failure record", entries)
	}
	// A failure record is not a success: LoadJournal must not surface it.
	done, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("LoadJournal returned %d done job(s), want 0 (failures re-run)", len(done))
	}

	// Resume: the failed job re-runs (succeeding this time) and the journal's
	// success entry supersedes the failure record.
	results := resumeRun(t, path, []Job{flaky})
	if results[0].Err != nil || results[0].Resumed {
		t.Fatalf("resume result = %+v, want a fresh successful run", results[0])
	}
	if attempts != 2 {
		t.Fatalf("job ran %d time(s), want 2", attempts)
	}
	done, err = LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(done["flaky"]) != `"recovered"` {
		t.Fatalf("journal value = %s, want the recovery result", done["flaky"])
	}
	// Third sweep: now it resumes without recomputing.
	results = resumeRun(t, path, []Job{flaky})
	if !results[0].Resumed || attempts != 2 {
		t.Fatalf("third sweep recomputed (resumed=%v attempts=%d)", results[0].Resumed, attempts)
	}
}

func TestResumeReplaysForeignFingerprintEntries(t *testing.T) {
	// An entry computed by a different build replays — Version is an audit
	// trail for `pivot-exp`-level tooling, not a cache key. (The fabric's
	// content-addressed cache is the layer that keys on the build.)
	path := journalFile(t, `{"id":"a","version":"pivot v0.0.0-archaeology","value":"old-result"}`+"\n")
	runs := 0
	results := resumeRun(t, path, []Job{countingJob("a", &runs)})
	if !results[0].Resumed || runs != 0 {
		t.Fatalf("foreign-fingerprint entry did not replay (resumed=%v runs=%d)", results[0].Resumed, runs)
	}
	v, err := ValueAs[string](results[0])
	if err != nil || v != "old-result" {
		t.Fatalf("replayed value = %q (%v), want the journaled one", v, err)
	}
}

func TestFailureRecordSupersededByLaterSuccessInFile(t *testing.T) {
	// File-order semantics: last entry per ID wins, in both directions.
	path := journalFile(t,
		`{"id":"a","failed":true,"error":"boom","attempts":2}`+"\n",
		`{"id":"a","value":"fixed"}`+"\n",
		`{"id":"b","value":"was-fine"}`+"\n",
		`{"id":"b","failed":true,"error":"regressed","attempts":1}`+"\n",
	)
	done, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(done["a"]) != `"fixed"` {
		t.Errorf("a = %s, want the later success", done["a"])
	}
	if _, ok := done["b"]; ok {
		t.Error("b's later failure record must invalidate its earlier success")
	}
}
