package dram

import (
	"pivot/internal/mem"
	"pivot/internal/sim"
)

// BankStateSnap mirrors one bank's row-buffer state.
type BankStateSnap struct {
	OpenRow int64
	ReadyAt sim.Cycle
}

// QueueEntryState is one queued request in serialisable form.
type QueueEntryState struct {
	Req   mem.ReqState
	Enq   sim.Cycle
	Bank  int
	Row   int64
	Ready sim.Cycle
}

// RespEntryState is one completed request waiting out the response latency.
type RespEntryState struct {
	Req mem.ReqState
	Due sim.Cycle
}

// ControllerState is the serialisable form of the memory controller: banks,
// both queues, the per-channel bus timers, in-flight responses, the refresh
// clock and the counters. The claimed scratch array is rebuilt every tick and
// carries no state.
type ControllerState struct {
	Banks       []BankStateSnap
	Normal      []QueueEntryState
	Prio        []QueueEntryState
	BusFreeAt   []sim.Cycle
	PendingResp []RespEntryState
	NextRefresh sim.Cycle
	Stats       Stats
}

func snapQueue(q []entry) []QueueEntryState {
	out := make([]QueueEntryState, len(q))
	for i, e := range q {
		out[i] = QueueEntryState{Req: e.req.State(), Enq: e.enq,
			Bank: e.bank, Row: e.row, Ready: e.ready}
	}
	return out
}

func restoreQueue(q []QueueEntryState) []entry {
	out := make([]entry, len(q))
	for i, e := range q {
		out[i] = entry{req: e.Req.Materialize(), enq: e.Enq,
			bank: e.Bank, row: e.Row, ready: e.Ready}
	}
	return out
}

// SnapshotState captures the controller's complete mutable state.
func (c *Controller) SnapshotState() ControllerState {
	s := ControllerState{
		Banks:       make([]BankStateSnap, len(c.banks)),
		Normal:      snapQueue(c.normal),
		Prio:        snapQueue(c.prio),
		BusFreeAt:   append([]sim.Cycle(nil), c.busFreeAt...),
		PendingResp: make([]RespEntryState, c.pendingResp.Len()),
		NextRefresh: c.nextRefresh,
		Stats:       c.Stats,
	}
	for i, b := range c.banks {
		s.Banks[i] = BankStateSnap{OpenRow: b.openRow, ReadyAt: b.readyAt}
	}
	for i := range s.PendingResp {
		r := c.pendingResp.At(i)
		s.PendingResp[i] = RespEntryState{Req: r.req.State(), Due: r.due}
	}
	return s
}

// RestoreState overwrites the controller's mutable state from a snapshot
// taken on an identically configured controller. Restored queues own freshly
// materialised requests; the Respond wiring is untouched.
func (c *Controller) RestoreState(s ControllerState) {
	for i := range c.banks {
		if i < len(s.Banks) {
			c.banks[i] = bankState{openRow: s.Banks[i].OpenRow, readyAt: s.Banks[i].ReadyAt}
		}
	}
	c.normal = append(c.normal[:0], restoreQueue(s.Normal)...)
	c.prio = append(c.prio[:0], restoreQueue(s.Prio)...)
	copy(c.busFreeAt, s.BusFreeAt)
	c.pendingResp.Reset()
	for _, r := range s.PendingResp {
		c.pendingResp.Push(respEntry{req: r.Req.Materialize(), due: r.Due})
	}
	if c.pendingResp.Len() > 0 {
		c.respHead = c.pendingResp.At(0).due
	} else {
		c.respHead = sim.NeverWork
	}
	c.nextRefresh = s.NextRefresh
	c.Stats = s.Stats
	c.invalidateAct() // derived memo; rebuild from the restored queues
}
