package dram

import (
	"testing"

	"pivot/internal/mem"
	"pivot/internal/sim"
)

func testCfg() Config {
	return Config{
		Banks: 4, ColumnLines: 8, TBurst: 8, TCAS: 10, TRP: 10, TRCD: 10,
		CapNormal: 8, CapPrio: 4, MaxWait: 200, RespLatency: 5,
	}
}

func newCtl() (*Controller, *[]*mem.Req) {
	c := New(testCfg(), 64)
	done := &[]*mem.Req{}
	c.Respond = func(r *mem.Req, now sim.Cycle) { *done = append(*done, r) }
	return c, done
}

// lineAddr builds an address hitting (bank, row, col) under the test config.
func lineAddr(bank, row, col uint64) uint64 {
	line := (row*4+bank)*8 + col
	return line * 64
}

func run(c *Controller, from, to sim.Cycle) {
	for now := from; now < to; now++ {
		c.Tick(now)
	}
}

func TestSingleRequestLatency(t *testing.T) {
	c, done := newCtl()
	r := &mem.Req{Addr: lineAddr(0, 0, 0)}
	if !c.Accept(r, 0) {
		t.Fatal("accept failed")
	}
	run(c, 0, 100)
	if len(*done) != 1 {
		t.Fatal("request never completed")
	}
	// Closed bank: activate (TRCD) + CAS + burst + response.
	if !c.Drained() {
		t.Fatal("controller not drained")
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c, done := newCtl()
	c.Accept(&mem.Req{Addr: lineAddr(0, 0, 0)}, 0)
	run(c, 0, 100)
	misses := c.Stats.RowMisses

	// Same row again: no new activate.
	c.Accept(&mem.Req{Addr: lineAddr(0, 0, 1)}, 100)
	run(c, 100, 200)
	if c.Stats.RowMisses != misses {
		t.Fatal("row hit caused an activation")
	}
	// Different row, same bank: precharge + activate.
	c.Accept(&mem.Req{Addr: lineAddr(0, 1, 0)}, 200)
	run(c, 200, 300)
	if c.Stats.RowMisses != misses+1 {
		t.Fatal("row conflict did not activate")
	}
	if len(*done) != 3 {
		t.Fatalf("completed %d, want 3", len(*done))
	}
}

func TestStreamingPeakBandwidth(t *testing.T) {
	c, done := newCtl()
	// Keep the queue fed with sequential lines; expect ~1 line per TBurst.
	next := uint64(0)
	const cycles = 2000
	for now := sim.Cycle(0); now < cycles; now++ {
		for n, _ := c.QueueLen(); n < 8; n++ {
			c.Accept(&mem.Req{Addr: next * 64}, now)
			next++
		}
		c.Tick(now)
	}
	util := c.Utilisation(cycles)
	if util < 0.85 {
		t.Fatalf("streaming utilisation = %.2f, want near peak (>0.85)", util)
	}
	if len(*done) == 0 {
		t.Fatal("nothing completed")
	}
}

func TestBankConflictNoLivelock(t *testing.T) {
	c, done := newCtl()
	// Two requests, same bank, different rows — the bug class that
	// motivated per-bank claim ownership.
	c.Accept(&mem.Req{Addr: lineAddr(1, 0, 0)}, 0)
	c.Accept(&mem.Req{Addr: lineAddr(1, 5, 0)}, 0)
	run(c, 0, 500)
	if len(*done) != 2 {
		t.Fatalf("completed %d of 2 same-bank requests (livelock?)", len(*done))
	}
}

func TestPriorityServedFirstAndStrictIdle(t *testing.T) {
	c, done := newCtl()
	c.PriorityEnabled = true
	// Fill normal queue with row hits for bank 0 and inject one critical
	// request to a different row in bank 1.
	for i := uint64(0); i < 6; i++ {
		c.Accept(&mem.Req{Addr: lineAddr(0, 0, i)}, 0)
	}
	crit := &mem.Req{Addr: lineAddr(1, 3, 0), Critical: true}
	c.Accept(crit, 0)
	run(c, 0, 400)
	if len(*done) != 7 {
		t.Fatalf("completed %d of 7", len(*done))
	}
	// The critical request must complete before the tail of the normal
	// stream despite arriving with a closed row.
	pos := -1
	for i, r := range *done {
		if r == crit {
			pos = i
		}
	}
	if pos == -1 || pos > 2 {
		t.Fatalf("critical request completed at position %d, want among first 3", pos)
	}
	if c.Stats.CritServed != 1 {
		t.Fatalf("CritServed = %d, want 1", c.Stats.CritServed)
	}
}

func TestStarvationGuardPromotesNormal(t *testing.T) {
	c, done := newCtl()
	c.PriorityEnabled = true
	old := &mem.Req{Addr: lineAddr(2, 0, 0)}
	c.Accept(old, 0)
	// Saturate with critical traffic to a different bank.
	col := uint64(0)
	for now := sim.Cycle(0); now < 1000; now++ {
		if _, p := c.QueueLen(); p < 4 {
			c.Accept(&mem.Req{Addr: lineAddr(3, 0, col%8), Critical: true}, now)
			col++
		}
		c.Tick(now)
	}
	served := false
	for _, r := range *done {
		if r == old {
			served = true
		}
	}
	if !served {
		t.Fatal("starved normal request never served despite MaxWait guard")
	}
	if c.Stats.Promoted == 0 {
		t.Fatal("promotion not counted")
	}
}

func TestQueueCapacityRefusal(t *testing.T) {
	c, _ := newCtl()
	for i := uint64(0); i < 8; i++ {
		if !c.Accept(&mem.Req{Addr: lineAddr(0, 0, i%8)}, 0) {
			t.Fatal("accept below capacity failed")
		}
	}
	if c.Accept(&mem.Req{Addr: lineAddr(0, 0, 0)}, 0) {
		t.Fatal("accept above capacity succeeded")
	}
	if c.Stats.Refused != 1 {
		t.Fatalf("refused = %d, want 1", c.Stats.Refused)
	}
}

func TestClassifyOrdersNormalQueue(t *testing.T) {
	c, done := newCtl()
	c.Classify = func(r *mem.Req) int { return int(r.Part) }
	// Open the row for both first so ordering is purely class-driven.
	be := &mem.Req{Addr: lineAddr(0, 0, 0), Part: 1}
	lc := &mem.Req{Addr: lineAddr(0, 0, 1), Part: 0}
	c.Accept(be, 0)
	c.Accept(lc, 0)
	run(c, 0, 200)
	if len(*done) != 2 {
		t.Fatalf("completed %d", len(*done))
	}
	if (*done)[0] != lc {
		t.Fatal("high-class request was not served first within the normal queue")
	}
}

func TestWriteAccounting(t *testing.T) {
	c, done := newCtl()
	c.Accept(&mem.Req{Addr: lineAddr(0, 0, 0), IsWrite: true, LCTask: false}, 0)
	run(c, 0, 100)
	if len(*done) != 1 {
		t.Fatal("write never responded")
	}
	if c.Stats.LinesMoved != 1 {
		t.Fatal("write did not count toward bandwidth")
	}
	if c.Stats.WaitCyclesBE == 0 && c.Stats.WaitCyclesLC != 0 {
		t.Fatal("wait accounting misattributed")
	}
}

func TestRefreshBlocksAndCloses(t *testing.T) {
	cfg := testCfg()
	cfg.RefreshInterval = 500
	cfg.RefreshLatency = 100
	c := New(cfg, 64)
	done := 0
	c.Respond = func(r *mem.Req, now sim.Cycle) { done++ }

	// Open a row well before the refresh boundary.
	c.Accept(&mem.Req{Addr: lineAddr(0, 0, 0)}, 0)
	run(c, 0, 400)
	if done != 1 {
		t.Fatal("setup: request did not complete")
	}
	misses := c.Stats.RowMisses

	// Cross the refresh boundary; the open row must close, so the next
	// same-row access activates again.
	run(c, 400, 700)
	if c.Stats.Refreshes == 0 {
		t.Fatal("no refresh performed across tREFI")
	}
	c.Accept(&mem.Req{Addr: lineAddr(0, 0, 1)}, 700)
	run(c, 700, 900)
	if done != 2 {
		t.Fatal("post-refresh request did not complete")
	}
	if c.Stats.RowMisses != misses+1 {
		t.Fatal("refresh did not close the open row")
	}
}

func TestRefreshCostsBandwidth(t *testing.T) {
	sustained := func(interval sim.Cycle) float64 {
		cfg := testCfg()
		cfg.RefreshInterval = interval
		cfg.RefreshLatency = 200
		c := New(cfg, 64)
		c.Respond = func(r *mem.Req, now sim.Cycle) {}
		next := uint64(0)
		const cycles = 4000
		for now := sim.Cycle(0); now < cycles; now++ {
			for n, _ := c.QueueLen(); n < 8; n++ {
				c.Accept(&mem.Req{Addr: next * 64}, now)
				next++
			}
			c.Tick(now)
		}
		return c.Utilisation(cycles)
	}
	noRef := sustained(0)
	withRef := sustained(1000) // 20% of time refreshing
	if withRef >= noRef {
		t.Fatalf("refresh did not cost bandwidth: %.3f >= %.3f", withRef, noRef)
	}
}

func TestMultiChannelDoublesStreamingThroughput(t *testing.T) {
	sustained := func(channels int) float64 {
		cfg := testCfg()
		cfg.Channels = channels
		c := New(cfg, 64)
		c.Respond = func(r *mem.Req, now sim.Cycle) {}
		next := uint64(0)
		const cycles = 4000
		for now := sim.Cycle(0); now < cycles; now++ {
			for n, _ := c.QueueLen(); n < 8; n++ {
				c.Accept(&mem.Req{Addr: next * 64}, now)
				next++
			}
			c.Tick(now)
		}
		return float64(c.Stats.LinesMoved) / cycles
	}
	one := sustained(1)
	two := sustained(2)
	t.Logf("lines/cycle: 1ch=%.4f 2ch=%.4f", one, two)
	if two < one*1.7 {
		t.Fatalf("second channel added too little: %.4f vs %.4f", two, one)
	}
}

func TestChannelDecodeDisjoint(t *testing.T) {
	cfg := testCfg()
	cfg.Channels = 2
	c := New(cfg, 64)
	// Adjacent lines alternate channels (line-interleaved).
	b0, _ := c.decode(0 * 64)
	b1, _ := c.decode(1 * 64)
	if c.channelOf(b0) == c.channelOf(b1) {
		t.Fatal("adjacent lines landed on the same channel")
	}
	if c.channelOf(b0) >= 2 || c.channelOf(b1) >= 2 {
		t.Fatal("channel out of range")
	}
}
