// Package dram models the memory controller and DRAM device: per-bank row
// buffers, FR-FCFS scheduling, a shared data bus that sets the peak
// bandwidth, finite request queues, and — for PIVOT — a priority queue with a
// maximum-wait starvation guard (§IV-D: 8 000 DRAM cycles for the memory
// controller).
//
// The model is deliberately simpler than a full DDR4 state machine but keeps
// the three properties the paper's results rest on: (1) streaming row-hit
// traffic achieves near-peak bus utilisation, (2) interleaved random traffic
// closes rows and costs activate/precharge time, and (3) a saturated
// controller queue back-pressures the bandwidth controller upstream.
package dram

import (
	"pivot/internal/mem"
	"pivot/internal/ring"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

// Config describes the controller and device timing, all in CPU cycles.
type Config struct {
	// Channels is the number of independent memory channels, interleaved at
	// line granularity; each has its own data bus and Banks banks. 0 = 1.
	Channels    int
	Banks       int       // banks per channel
	ColumnLines int       // cache lines per row (row size / line size)
	TBurst      sim.Cycle // data-bus occupancy per line (peak: 1 line / TBurst)
	TCAS        sim.Cycle // column access latency once the row is open
	TRP         sim.Cycle // precharge
	TRCD        sim.Cycle // activate
	CapNormal   int       // normal queue capacity
	CapPrio     int       // priority queue capacity
	MaxWait     sim.Cycle // starvation guard for normal requests (0 = off)
	RespLatency sim.Cycle // fixed return-path latency to the core side

	// RefreshInterval (tREFI) triggers an all-bank refresh every so many
	// cycles; 0 disables refresh. RefreshLatency (tRFC) blocks every bank
	// and the data bus for its duration and closes all rows.
	RefreshInterval sim.Cycle
	RefreshLatency  sim.Cycle
}

// KunpengDDR4 approximates one channel of DDR4-2400 x64 behind a 2.4 GHz
// core: 64 B line = 8 CPU cycles of data bus, CAS ~ 33 cycles, activate and
// precharge ~ 32 cycles each, 16 banks, 8 KiB rows (128 lines).
func KunpengDDR4() Config {
	return Config{
		Banks:       16,
		ColumnLines: 128,
		TBurst:      8,
		TCAS:        33,
		TRP:         32,
		TRCD:        32,
		CapNormal:   48,
		CapPrio:     16,
		MaxWait:     16000, // 8000 DRAM cycles at a 1:2 clock ratio
		RespLatency: 20,
	}
}

// prioActivateWindow is how many priority-queue entries may hold bank
// activations concurrently (near-FIFO strictness; see startActivates).
const prioActivateWindow = 4

type bankState struct {
	openRow int64 // -1 = closed; set to the incoming row at activate time
	readyAt sim.Cycle
}

type entry struct {
	req  *mem.Req
	enq  sim.Cycle
	bank int
	row  int64
	// ready is the earliest cycle the entry may be served (enq, plus any
	// injected latency spike).
	ready sim.Cycle
}

// Stats captures controller activity for the bandwidth-utilisation figures.
type Stats struct {
	Served       uint64
	RowHits      uint64
	RowMisses    uint64
	LinesMoved   uint64 // total lines transferred on the data bus
	BusyCycles   uint64 // data-bus busy cycles
	Promoted     uint64 // starvation-guard promotions
	Refreshes    uint64 // all-bank refreshes performed
	Refused      uint64
	CritServed   uint64
	WaitCyclesLC uint64
	WaitCyclesBE uint64
}

// Controller is the memory controller + DRAM device model. It implements
// interconnect.Acceptor on the request side and delivers completions through
// the Respond callback.
type Controller struct {
	cfg   Config
	banks []bankState

	normal []entry
	prio   []entry

	// PriorityEnabled routes critical requests to the dedicated queue.
	PriorityEnabled bool

	// Classify, when non-nil, ranks row-open normal-queue candidates
	// (lower = served first; FCFS within a rank). PIVOT and FullPath hook
	// MPAM's class function here so LC tasks' non-critical requests are
	// ordered ahead of BE traffic inside the normal queue (§IV-D).
	Classify func(r *mem.Req) int

	busFreeAt []sim.Cycle // per channel

	// Respond is invoked when a request's data has returned to the core side
	// (after RespLatency). Set by the machine during wiring.
	Respond func(r *mem.Req, now sim.Cycle)

	// Fault, when non-nil, injects admission refusals, latency spikes and
	// grant delays (see mem.Fault); nil in production runs.
	Fault mem.Fault

	// pendingResp holds completed requests waiting out the response latency,
	// kept sorted by due cycle (appends are naturally in order because
	// completions are issued in bus order). A ring: every completion pops
	// the head once its latency elapses. respHead caches the head's due
	// cycle (sim.NeverWork when empty) so the per-tick delivery poll is one
	// compare instead of a ring access; derived state, rebuilt on restore.
	pendingResp ring.Ring[respEntry]
	respHead    sim.Cycle

	claimed     []bool // per-bank activation ownership, reused across ticks
	lineBits    uint
	nextRefresh sim.Cycle

	// Derived decode accelerators, precomputed from the (immutable) config in
	// New — never serialised. fastDecode is set when channel, bank and column
	// counts are all powers of two (every stock config), replacing decode's
	// divisions with shifts; bankCh maps a global bank id to its channel.
	fastDecode bool
	chMask     uint64
	chShift    uint
	colShift   uint
	bankMask   uint64
	bankShift  uint
	bankCh     []int32

	// actSettled memoises startActivates: the earliest cycle at which another
	// run could change any bank's state, valid only while the queues, banks
	// and refresh clock stay untouched (every mutation invalidates it). Only
	// used on the unranked, fault-free path — Classify reads MPAM classes
	// that mutate outside the controller, and fault injectors perturb grant
	// timing. Derived state: never serialised; restore invalidates it.
	actSettled sim.Cycle

	// pendClaimN holds normal-queue indices of entries accepted since the
	// last full startActivates run while its memo stayed valid. An append is
	// the one queue mutation a full re-scan handles incrementally: every
	// older entry's claim is a no-op by the memo's own guarantee, so the next
	// Tick claims just these tail entries instead of re-walking both queues.
	// Any other mutation (serve, refresh, restore, priority accept) discards
	// memo and list.
	pendClaimN []int32

	Stats Stats
}

type respEntry struct {
	req *mem.Req
	due sim.Cycle
}

// New builds a controller. lineBytes sets the address-to-bank/row mapping.
func New(cfg Config, lineBytes int) *Controller {
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	c := &Controller{
		cfg:         cfg,
		banks:       make([]bankState, cfg.Banks*cfg.Channels),
		busFreeAt:   make([]sim.Cycle, cfg.Channels),
		pendingResp: ring.New[respEntry](cfg.CapNormal + cfg.CapPrio),
		respHead:    sim.NeverWork,
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	for b := lineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	c.claimed = make([]bool, len(c.banks))
	c.bankCh = make([]int32, len(c.banks))
	for i := range c.bankCh {
		c.bankCh[i] = int32(i / cfg.Banks)
	}
	if pow2(cfg.Channels) && pow2(cfg.ColumnLines) && pow2(cfg.Banks) {
		c.fastDecode = true
		c.chMask = uint64(cfg.Channels - 1)
		c.chShift = log2(cfg.Channels)
		c.colShift = log2(cfg.ColumnLines)
		c.bankMask = uint64(cfg.Banks - 1)
		c.bankShift = log2(cfg.Banks)
	}
	if cfg.RefreshInterval > 0 {
		// Initialise the refresh deadline eagerly (maybeRefresh keeps its
		// lazy form for restored pre-init snapshots): NextWork must know the
		// deadline before the first Tick, and it is serialised state, so it
		// has to be identical in dense and skip-ahead runs at every cycle.
		c.nextRefresh = cfg.RefreshInterval
	}
	return c
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

func pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// decode maps a line address to (bank, row). Address layout, line-granular:
// [ row | bank | column | channel ]: channels interleave at line granularity
// and streaming addresses sweep a row's columns before moving to the next
// bank. The returned bank id is global (channel * Banks + bank-in-channel).
func (c *Controller) decode(addr uint64) (bank int, row int64) {
	line := addr >> c.lineBits
	if c.fastDecode {
		ch := int(line & c.chMask)
		rest := line >> c.chShift >> c.colShift
		bank = ch<<c.bankShift + int(rest&c.bankMask)
		row = int64(rest >> c.bankShift)
		return bank, row
	}
	ch := int(line % uint64(c.cfg.Channels))
	rest := line / uint64(c.cfg.Channels)
	rest /= uint64(c.cfg.ColumnLines)
	bank = ch*c.cfg.Banks + int(rest%uint64(c.cfg.Banks))
	row = int64(rest / uint64(c.cfg.Banks))
	return bank, row
}

// channelOf maps a global bank id back to its channel.
func (c *Controller) channelOf(bank int) int { return int(c.bankCh[bank]) }

// Accept implements the MSC queue interface.
func (c *Controller) Accept(r *mem.Req, now sim.Cycle) bool {
	ready := now
	if c.Fault != nil {
		if c.Fault.DropAccept(now) {
			c.Stats.Refused++
			return false
		}
		ready += c.Fault.ExtraLatency(now)
	}
	// Capacity check before the address decode: a full queue refuses without
	// paying for the (pure) bank/row computation, and full-queue refusals are
	// retried every cycle under back-pressure.
	usePrio := c.PriorityEnabled && r.Critical
	if usePrio {
		if len(c.prio) >= c.cfg.CapPrio {
			c.Stats.Refused++
			return false
		}
	} else if len(c.normal) >= c.cfg.CapNormal {
		c.Stats.Refused++
		return false
	}
	bank, row := c.decode(r.Addr)
	e := entry{req: r, enq: now, bank: bank, row: row, ready: ready}
	r.Enter(mem.CompMemCtrl, now)
	if usePrio {
		c.prio = append(c.prio, e)
	} else {
		c.normal = append(c.normal, e)
	}
	// A new normal-queue tail may claim a previously idle bank. While the
	// activation memo is valid (fault-free, unranked), the next Tick only
	// needs to run claim for this tail entry — every older entry's claim is a
	// no-op by the memo's own guarantee, and the tail gates on the same
	// claimed-bank set a full re-scan would have built by the time it reached
	// it. A priority accept cannot reuse the retained set: priority entries
	// claim ahead of normal traffic, so a bank owned by a normal claimant
	// must not gate them — fall back to a full re-scan for those (and for
	// the never-memoised ranked/faulted paths).
	if !usePrio && c.actSettled != 0 && now < c.actSettled && c.Fault == nil && c.Classify == nil {
		c.pendClaimN = append(c.pendClaimN, int32(len(c.normal)-1))
		if c.cfg.MaxWait > 0 && len(c.normal) == 1 {
			// New head: the scan order changes when it starves.
			if starveAt := now + c.cfg.MaxWait + 1; starveAt < c.actSettled {
				c.actSettled = starveAt
			}
		}
	} else {
		c.invalidateAct()
	}
	return true
}

// invalidateAct discards the activation memo and any pending tail claims
// (their queue indices go stale with the memo).
func (c *Controller) invalidateAct() {
	c.actSettled = 0
	c.pendClaimN = c.pendClaimN[:0]
}

// repairAfterServe keeps the activation memo alive across a normal-queue
// serve — the hottest invalidation by far — on the unranked, fault-free,
// priority-empty path. Removing entry i changes exactly two things a full
// re-scan would see: its bank may now belong to the queue-order-first entry
// still targeting it, and the queue may have a new head whose starvation
// cycle reorders the scan. Both are folded into the memo: the new bank
// winner is queued as a pending claim for the next Tick (the cycle a full
// re-scan would have claimed it), and the head's starve cycle lowers the
// memo. Everything else is untouched by construction — removal reorders no
// surviving entry, so every other bank keeps its queue-order-first winner.
func (c *Controller) repairAfterServe(i, bank int, now sim.Cycle) {
	if c.actSettled == 0 || c.Fault != nil || c.Classify != nil || len(c.prio) > 0 {
		c.invalidateAct()
		return
	}
	// Shift pending tail-claim indices across the removal; the served entry
	// may itself have been pending.
	keep := c.pendClaimN[:0]
	for _, idx := range c.pendClaimN {
		if int(idx) == i {
			continue
		}
		if int(idx) > i {
			idx--
		}
		keep = append(keep, idx)
	}
	c.pendClaimN = keep
	c.claimed[bank] = false
	for j := range c.normal {
		if c.normal[j].bank == bank {
			c.insertPendClaim(int32(j))
			break
		}
	}
	if c.cfg.MaxWait > 0 && len(c.normal) > 0 {
		starveAt := c.normal[0].enq + c.cfg.MaxWait + 1
		if starveAt <= now+1 {
			c.invalidateAct() // head already starved: the full scan must lead with it
			return
		}
		if starveAt < c.actSettled {
			c.actSettled = starveAt
		}
	}
}

// insertPendClaim adds a queue index to the pending-claim list, keeping it
// ascending: pending claims must run in queue (FCFS scan) order so that two
// claimants of the same bank resolve exactly as a full re-scan would.
func (c *Controller) insertPendClaim(idx int32) {
	c.pendClaimN = append(c.pendClaimN, idx)
	j := len(c.pendClaimN) - 1
	for j > 0 && c.pendClaimN[j-1] > idx {
		c.pendClaimN[j] = c.pendClaimN[j-1]
		j--
	}
	c.pendClaimN[j] = idx
}

// runPendingClaims claims banks for normal entries appended since the last
// full startActivates run, in FCFS append order (the full scan's order),
// lowering the memo when a new winner is blocked on a busy bank.
func (c *Controller) runPendingClaims(now sim.Cycle) {
	next := c.actSettled
	for _, i := range c.pendClaimN {
		c.claim(&c.normal[i], now, &next)
	}
	c.pendClaimN = c.pendClaimN[:0]
	c.actSettled = next
}

// QueueLen reports queue occupancy (normal, priority).
func (c *Controller) QueueLen() (int, int) { return len(c.normal), len(c.prio) }

// pendingFor reports whether any queued request targets bank b's pending row.
func (c *Controller) rowOpenFor(e *entry, now sim.Cycle) bool {
	if e.ready > now {
		return false // injected latency spike still elapsing
	}
	b := &c.banks[e.bank]
	return b.openRow == e.row && b.readyAt <= now
}

// startActivates opens rows for queued requests. Each bank is owned by at
// most one claimant per cycle — the starved head first, then priority
// requests, then normal requests in FCFS order — so a younger request can
// never close a row an older request is about to use (that would livelock
// two same-bank requests into perpetually re-activating each other's rows).
//
// The returned cycle is when a re-run could first change any bank's state,
// assuming queues, banks and the refresh clock stay untouched until then:
// the winner per bank is fixed by the (deterministic) scan order, a blocked
// winner acts when its bank frees, and the scan order itself changes only
// when the queue head crosses the starvation threshold. Callers on the
// memoised path skip re-running until that cycle.
func (c *Controller) startActivates(now sim.Cycle) sim.Cycle {
	if c.claimed == nil || len(c.claimed) < len(c.banks) {
		c.claimed = make([]bool, len(c.banks))
	} else {
		for i := range c.claimed {
			c.claimed[i] = false
		}
	}
	next := sim.NeverWork
	nb := len(c.banks)
	nClaimed := 0
	if c.cfg.MaxWait > 0 && len(c.normal) > 0 {
		if starveAt := c.normal[0].enq + c.cfg.MaxWait + 1; now >= starveAt {
			if c.claim(&c.normal[0], now, &next) {
				nClaimed++
			}
		} else if starveAt < next {
			next = starveAt // scan order changes when the head starves
		}
	}
	// Priority service is near-FIFO: only the first few priority entries may
	// open new rows. This is the §III-B cost of prioritisation — a strict
	// scheduler cannot freely reorder priority traffic for row locality the
	// way FR-FCFS reorders best-effort traffic, so each prioritised row miss
	// loses activation overlap. Policies that prioritise more traffic
	// (FullPath) therefore pay more idle bus time than ones that prioritise
	// a sliver (PIVOT).
	for i := 0; i < len(c.prio) && i < prioActivateWindow && nClaimed < nb; i++ {
		if c.claim(&c.prio[i], now, &next) {
			nClaimed++
		}
	}
	if c.Classify != nil {
		// Class-ordered activation: high-class (LC) normal requests claim
		// their banks ahead of best-effort traffic.
		for i := range c.normal {
			if nClaimed >= nb {
				break
			}
			if c.Classify(c.normal[i].req) == 0 {
				if c.claim(&c.normal[i], now, &next) {
					nClaimed++
				}
			}
		}
	}
	// Deep saturated queues stop scanning as soon as every bank has an
	// owner; everything past that point cannot claim anything.
	for i := range c.normal {
		if nClaimed >= nb {
			break
		}
		if c.claim(&c.normal[i], now, &next) {
			nClaimed++
		}
	}
	return next
}

// claim lets e control its bank's row this cycle if no older request already
// did, activating e's row when needed. next is lowered to the cycle this
// winner will act if it is currently blocked on a busy bank. It reports
// whether e newly claimed its bank, so scans can stop once every bank has an
// owner — any further claim is a no-op by the first check here.
func (c *Controller) claim(e *entry, now sim.Cycle, next *sim.Cycle) bool {
	if c.claimed[e.bank] {
		return false
	}
	c.claimed[e.bank] = true
	b := &c.banks[e.bank]
	if b.openRow == e.row {
		return true
	}
	if b.readyAt > now {
		if b.readyAt < *next {
			*next = b.readyAt
		}
		return true
	}
	pen := c.cfg.TRCD
	if b.openRow >= 0 {
		pen += c.cfg.TRP
	}
	b.openRow = e.row
	b.readyAt = now + pen
	c.Stats.RowMisses++
	return true
}

// pick selects the next request to put on the data bus:
//  1. a starved normal request whose row is open (§IV-D guard);
//  2. if the priority queue is non-empty, a priority request with an open
//     row — and if none is ready, the controller *waits* for the priority
//     activations instead of slipping row-hit normal requests underneath.
//     This strict service is what makes prioritisation conflict with the
//     row-hit-first default scheduling (§III-B): every prioritised row miss
//     costs idle data-bus cycles, so the more loads a policy prioritises,
//     the lower the achieved bandwidth;
//  3. otherwise FR-FCFS over the normal queue (first row-open request).
func (c *Controller) pick(now sim.Cycle, ch int) (q *[]entry, idx int) {
	// Starvation guard.
	if c.cfg.MaxWait > 0 && len(c.normal) > 0 {
		e := &c.normal[0]
		if c.channelOf(e.bank) == ch && now-e.enq > c.cfg.MaxWait && c.rowOpenFor(e, now) {
			c.Stats.Promoted++
			return &c.normal, 0
		}
	}
	if c.PriorityEnabled && len(c.prio) > 0 {
		prioOnCh := false
		for i := range c.prio {
			if c.channelOf(c.prio[i].bank) != ch {
				continue
			}
			prioOnCh = true
			if c.rowOpenFor(&c.prio[i], now) {
				return &c.prio, i
			}
		}
		if prioOnCh {
			// While priority rows activate, only top-class (LC) normal
			// requests with open rows may slip under — best-effort traffic
			// waits. This keeps the strict-priority cost of FullPath (which
			// prioritises the LC task's whole stream, leaving nothing to
			// slip) without making PIVOT idle the bus when co-located LC
			// tasks' non-critical traffic could use it.
			if c.Classify != nil {
				for i := range c.normal {
					if c.channelOf(c.normal[i].bank) == ch &&
						c.Classify(c.normal[i].req) == 0 && c.rowOpenFor(&c.normal[i], now) {
						return &c.normal, i
					}
				}
			}
			return nil, -1 // this channel idles while its priority rows activate
		}
	}
	best, bestRank := -1, int(^uint(0)>>1)
	for i := range c.normal {
		if c.channelOf(c.normal[i].bank) != ch || !c.rowOpenFor(&c.normal[i], now) {
			continue
		}
		if c.Classify == nil {
			return &c.normal, i // plain FR-FCFS: first ready in age order
		}
		if r := c.Classify(c.normal[i].req); r < bestRank {
			best, bestRank = i, r
		}
	}
	if best >= 0 {
		return &c.normal, best
	}
	return nil, -1
}

func remove(q *[]entry, i int) entry {
	e := (*q)[i]
	copy((*q)[i:], (*q)[i+1:])
	*q = (*q)[:len(*q)-1]
	return e
}

// maybeRefresh runs the periodic all-bank refresh: every RefreshInterval
// cycles, every row closes and banks plus the data bus block for
// RefreshLatency cycles. Per-request this is rare but it bounds the
// worst-case latency any scheduler can promise.
func (c *Controller) maybeRefresh(now sim.Cycle) {
	if c.cfg.RefreshInterval == 0 {
		return
	}
	if c.nextRefresh == 0 {
		c.nextRefresh = c.cfg.RefreshInterval
	}
	if now < c.nextRefresh {
		return
	}
	c.nextRefresh = now + c.cfg.RefreshInterval
	c.Stats.Refreshes++
	c.invalidateAct() // every row closes; pending activation decisions reset
	until := now + c.cfg.RefreshLatency
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].readyAt = until
	}
	for ch := range c.busFreeAt {
		if c.busFreeAt[ch] < until {
			c.busFreeAt[ch] = until
		}
	}
}

// Tick advances the controller one cycle: deliver due responses, start row
// activates, and, when the data bus is free, move one request's line.
func (c *Controller) Tick(now sim.Cycle) {
	// Deliver responses whose return latency elapsed.
	for c.respHead <= now {
		r := c.pendingResp.PopHead().req
		if c.pendingResp.Len() > 0 {
			c.respHead = c.pendingResp.At(0).due
		} else {
			c.respHead = sim.NeverWork
		}
		if c.Respond != nil {
			c.Respond(r, now)
		}
	}

	c.maybeRefresh(now)
	if c.Fault != nil {
		if c.Fault.HoldGrant(now) {
			return // injected scheduler stall: no activates or grants this cycle
		}
		c.invalidateAct() // grant holds perturb timing; don't trust the memo
		c.startActivates(now)
	} else if c.Classify != nil {
		// Ranked activation reads MPAM classes that mutate outside the
		// controller, so the settled memo cannot be trusted across cycles.
		c.startActivates(now)
	} else if now >= c.actSettled {
		c.pendClaimN = c.pendClaimN[:0]
		c.actSettled = c.startActivates(now)
	} else if len(c.pendClaimN) > 0 {
		c.runPendingClaims(now)
	}

	for ch := range c.busFreeAt {
		if c.busFreeAt[ch] > now {
			c.Stats.BusyCycles++
			continue
		}
		q, i := c.pick(now, ch)
		if q == nil {
			continue
		}
		e := remove(q, i)
		if q == &c.normal {
			c.repairAfterServe(i, e.bank, now)
		} else {
			c.invalidateAct() // a priority serve shifts the activation window
		}
		c.Stats.Served++
		c.Stats.RowHits++ // row was open by construction of pick
		c.Stats.LinesMoved++
		if e.req.Critical {
			c.Stats.CritServed++
		}
		wait := uint64(now - e.enq)
		if e.req.LCTask {
			c.Stats.WaitCyclesLC += wait
		} else {
			c.Stats.WaitCyclesBE += wait
		}

		c.busFreeAt[ch] = now + c.cfg.TBurst
		c.Stats.BusyCycles++
		done := now + c.cfg.TCAS + c.cfg.TBurst
		// The queue residency is pure wait; CAS+burst and the response hop
		// are pure service.
		e.req.Depart(mem.CompMemCtrl, e.enq, now, 0)
		e.req.Hop(mem.CompDRAM, now, done-now)
		e.req.Hop(mem.CompResp, done, c.cfg.RespLatency)
		if c.pendingResp.Len() == 0 {
			c.respHead = done + c.cfg.RespLatency
		}
		c.pendingResp.Push(respEntry{req: e.req, due: done + c.cfg.RespLatency})
	}
}

// NextWork implements sim.IdleReporter. The controller is quiescent when
// both request queues are empty, every channel's data bus is free (a busy
// bus accrues BusyCycles each Tick), no response is due, and no fault
// injector could hold a grant; it then sleeps until the earlier of the next
// response delivery and the next refresh deadline. The `claimed` scratch
// slab an idle Tick would have zeroed carries no state (it is rebuilt every
// tick and never serialised), so eliding it is unobservable.
func (c *Controller) NextWork(now sim.Cycle) (sim.Cycle, bool) {
	if c.Fault != nil || len(c.normal) > 0 || len(c.prio) > 0 {
		return 0, false
	}
	for _, free := range c.busFreeAt {
		if free > now {
			return 0, false
		}
	}
	next := c.respHead
	if next <= now {
		return 0, false
	}
	if c.cfg.RefreshInterval > 0 {
		nr := c.nextRefresh
		if nr == 0 {
			nr = c.cfg.RefreshInterval // matches maybeRefresh's lazy init
		}
		if nr <= now {
			return 0, false
		}
		if nr < next {
			next = nr
		}
	}
	return next, true
}

// RegisterStats registers the controller's instruments under prefix (e.g.
// "dram"): row-buffer and bus counters, the per-epoch lines-moved series the
// bandwidth-over-time charts use, FR-FCFS queue-depth gauges, and a
// bank-utilisation gauge (fraction of banks with an open row).
func (c *Controller) RegisterStats(reg *stats.Registry, prefix string) {
	st := &c.Stats
	reg.Counter(prefix+".served", func() uint64 { return st.Served })
	reg.Counter(prefix+".row_hits", func() uint64 { return st.RowHits })
	reg.Counter(prefix+".row_misses", func() uint64 { return st.RowMisses })
	reg.Counter(prefix+".lines_moved", func() uint64 { return st.LinesMoved })
	reg.Counter(prefix+".busy_cycles", func() uint64 { return st.BusyCycles })
	reg.Counter(prefix+".promoted", func() uint64 { return st.Promoted })
	reg.Counter(prefix+".refreshes", func() uint64 { return st.Refreshes })
	reg.Counter(prefix+".refused", func() uint64 { return st.Refused })
	reg.Counter(prefix+".crit_served", func() uint64 { return st.CritServed })
	reg.Counter(prefix+".wait_cycles_lc", func() uint64 { return st.WaitCyclesLC })
	reg.Counter(prefix+".wait_cycles_be", func() uint64 { return st.WaitCyclesBE })
	reg.Rate(prefix+".lines_epoch", func() uint64 { return st.LinesMoved })
	reg.Gauge(prefix+".qdepth_normal", func() float64 { return float64(len(c.normal)) })
	reg.Gauge(prefix+".qdepth_prio", func() float64 { return float64(len(c.prio)) })
	reg.Gauge(prefix+".banks_open", func() float64 {
		open := 0
		for i := range c.banks {
			if c.banks[i].openRow >= 0 {
				open++
			}
		}
		return float64(open) / float64(len(c.banks))
	})
}

// EachReq visits every request the controller holds in deterministic order
// (priority queue, normal queue, then the response pipe, each FCFS), for
// checkpoint layers that must enumerate in-flight requests identically before
// a snapshot and after its restore.
func (c *Controller) EachReq(f func(*mem.Req)) {
	for i := range c.prio {
		f(c.prio[i].req)
	}
	for i := range c.normal {
		f(c.normal[i].req)
	}
	for i, n := 0, c.pendingResp.Len(); i < n; i++ {
		f(c.pendingResp.At(i).req)
	}
}

// Drained reports whether all queues and in-flight responses are empty.
func (c *Controller) Drained() bool {
	return len(c.normal) == 0 && len(c.prio) == 0 && c.pendingResp.Len() == 0
}

// PendingResponses reports how many completed requests are waiting out the
// response latency — in-flight state the invariant auditor must account for.
func (c *Controller) PendingResponses() int { return c.pendingResp.Len() }

// PeakLinesPerCycle returns the aggregate data-bus peak rate in lines per
// cycle across all channels.
func (c *Controller) PeakLinesPerCycle() float64 {
	return float64(c.cfg.Channels) / float64(c.cfg.TBurst)
}

// Utilisation returns achieved/peak bandwidth over elapsed cycles.
func (c *Controller) Utilisation(elapsed sim.Cycle) float64 {
	if elapsed == 0 {
		return 0
	}
	peak := float64(elapsed) * c.PeakLinesPerCycle()
	return float64(c.Stats.LinesMoved) / peak
}

// ResetStats zeroes the counters (between warm-up and measurement).
func (c *Controller) ResetStats() { c.Stats = Stats{} }
