// Package sim provides the cycle-stepped simulation engine shared by every
// component of the PIVOT reproduction: a global cycle counter, a ticker
// registry, and a deterministic pseudo-random source so that every experiment
// is exactly reproducible from its seed.
package sim

// Cycle is a point in simulated time, counted in CPU clock cycles.
type Cycle uint64

// NeverWork is the NextWork sentinel for "no self-generated work pending":
// the component will stay quiescent until some other ticker's activity feeds
// it new input.
const NeverWork = ^Cycle(0)

// Ticker is any component advanced once per simulated cycle.
//
// Tick ordering matters: the Engine ticks components in registration order,
// so a machine registers the DRAM controller first (so responses produced in
// cycle N are visible upstream in cycle N), then the memory-side stations
// downstream-to-upstream, then the cores.
type Ticker interface {
	Tick(now Cycle)
}

// IdleReporter is the optional quiescence interface a Ticker may implement.
//
// NextWork(now) returns (next, true) when Tick(now) would perform no
// observable work — no state change beyond what SkipCycles compensates — and
// the component will stay that way until cycle next at the earliest (NeverWork
// when only external input can wake it). It returns (_, false) when the
// component is active and must be ticked densely. An idle report with
// next <= now is treated as active.
//
// The contract is re-checked every cycle, so a report only has to be valid
// for the instant it is made; external wake-ups that land earlier than next
// are picked up by the following cycle's poll as long as they are made by
// tickers ordered before the reporter (which is how the machine orders its
// memory system ahead of its cores).
type IdleReporter interface {
	NextWork(now Cycle) (next Cycle, idle bool)
}

// Skipper is the optional compensation interface for IdleReporters whose
// idle Tick still bumps pure book-keeping counters (stall attribution,
// refused-probe statistics, ...). SkipCycles(from, to) must apply exactly the
// counter updates that to-from consecutive idle Ticks would have applied, so
// that a skipping run is bit-identical to a dense one at every cycle.
type Skipper interface {
	SkipCycles(from, to Cycle)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// tickerSlot caches a ticker's optional capabilities so the hot loop never
// repeats interface type assertions.
type tickerSlot struct {
	tick Ticker
	idle IdleReporter // nil: always ticked densely (pins the engine dense)
	skip Skipper      // nil: no per-cycle compensation needed
}

// Engine drives a set of Tickers through simulated time.
//
// When every registered ticker implements IdleReporter and all report idle,
// Step advances the clock directly to the earliest reported work cycle
// instead of spinning through empty cycles; per-ticker counter effects of the
// skipped cycles are preserved through Skipper. Components that do not
// implement IdleReporter are simply ticked every cycle, which also prevents
// any global jump — correctness is opt-in per component.
type Engine struct {
	now   Cycle
	slots []tickerSlot
	dense bool

	// plan, when set, switches Step to sharded windowed execution (see
	// parallel.go). Dense mode overrides it.
	plan *ShardPlan
}

// NewEngine returns an engine positioned at cycle 0 with no tickers.
func NewEngine() *Engine { return &Engine{} }

// Register appends t to the tick order. Registration order is tick order.
// The optional IdleReporter/Skipper capabilities are resolved once here.
func (e *Engine) Register(t Ticker) {
	s := tickerSlot{tick: t}
	s.idle, _ = t.(IdleReporter)
	s.skip, _ = t.(Skipper)
	e.slots = append(e.slots, s)
}

// SetDense forces naive per-cycle stepping (the -dense escape hatch),
// ignoring all IdleReporters. Skip-ahead and dense runs are bit-identical;
// dense exists as the trusted reference for equivalence checking.
func (e *Engine) SetDense(dense bool) { e.dense = dense }

// Dense reports whether naive per-cycle stepping is forced.
func (e *Engine) Dense() bool { return e.dense }

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Step advances simulated time by n cycles. It never advances past now+n, so
// callers that align work to absolute boundaries (checkpoint intervals, audit
// epochs, cycle budgets) see exactly the same stopping points with and
// without skip-ahead.
func (e *Engine) Step(n Cycle) {
	end := e.now + n
	if e.dense {
		for e.now < end {
			for i := range e.slots {
				e.slots[i].tick.Tick(e.now)
			}
			e.now++
		}
		return
	}
	if e.plan != nil {
		e.stepSharded(end)
		return
	}
	for e.now < end {
		// Poll every slot in tick order. Active slots tick; idle slots are
		// elided for this one cycle with exact counter compensation. Because
		// the poll happens at the slot's own position in the order, a wake-up
		// produced earlier in the same cycle (a DRAM response completing a
		// load, a delayed event draining) is observed exactly as a dense tick
		// would observe it.
		allIdle := true
		minNext := NeverWork
		for i := range e.slots {
			s := &e.slots[i]
			if s.idle == nil {
				s.tick.Tick(e.now)
				allIdle = false
				continue
			}
			next, idle := s.idle.NextWork(e.now)
			if !idle || next <= e.now {
				s.tick.Tick(e.now)
				allIdle = false
				continue
			}
			if s.skip != nil {
				s.skip.SkipCycles(e.now, e.now+1)
			}
			if next < minNext {
				minNext = next
			}
		}
		e.now++
		if !allIdle || minNext <= e.now {
			continue
		}
		// Everything is quiescent and nothing ticked, so no new work can have
		// appeared: jump straight to the earliest reported work cycle
		// (clamped to this Step's end).
		to := minNext
		if to > end {
			to = end
		}
		if to > e.now {
			for i := range e.slots {
				if s := e.slots[i].skip; s != nil {
					s.SkipCycles(e.now, to)
				}
			}
			e.now = to
		}
	}
}

// RunUntil advances simulated time until stop returns true, checking every
// granule cycles, or until limit is reached. It returns the cycle at which it
// stopped.
func (e *Engine) RunUntil(limit Cycle, granule Cycle, stop func() bool) Cycle {
	if granule == 0 {
		granule = 1
	}
	for e.now < limit {
		step := granule
		if e.now+step > limit {
			step = limit - e.now
		}
		e.Step(step)
		if stop != nil && stop() {
			break
		}
	}
	return e.now
}
