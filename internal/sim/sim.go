// Package sim provides the cycle-stepped simulation engine shared by every
// component of the PIVOT reproduction: a global cycle counter, a ticker
// registry, and a deterministic pseudo-random source so that every experiment
// is exactly reproducible from its seed.
package sim

// Cycle is a point in simulated time, counted in CPU clock cycles.
type Cycle uint64

// Ticker is any component advanced once per simulated cycle.
//
// Tick ordering matters: the Engine ticks components in registration order,
// so a machine registers the DRAM controller first (so responses produced in
// cycle N are visible upstream in cycle N), then the memory-side stations
// downstream-to-upstream, then the cores.
type Ticker interface {
	Tick(now Cycle)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// Engine drives a set of Tickers through simulated time.
type Engine struct {
	now     Cycle
	tickers []Ticker
}

// NewEngine returns an engine positioned at cycle 0 with no tickers.
func NewEngine() *Engine { return &Engine{} }

// Register appends t to the tick order. Registration order is tick order.
func (e *Engine) Register(t Ticker) { e.tickers = append(e.tickers, t) }

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Step advances simulated time by n cycles.
func (e *Engine) Step(n Cycle) {
	end := e.now + n
	for e.now < end {
		for _, t := range e.tickers {
			t.Tick(e.now)
		}
		e.now++
	}
}

// RunUntil advances simulated time until stop returns true, checking every
// granule cycles, or until limit is reached. It returns the cycle at which it
// stopped.
func (e *Engine) RunUntil(limit Cycle, granule Cycle, stop func() bool) Cycle {
	if granule == 0 {
		granule = 1
	}
	for e.now < limit {
		step := granule
		if e.now+step > limit {
			step = limit - e.now
		}
		e.Step(step)
		if stop != nil && stop() {
			break
		}
	}
	return e.now
}
