package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineTickOrderAndCount(t *testing.T) {
	e := NewEngine()
	var order []int
	var ticks [3]int
	for i := 0; i < 3; i++ {
		i := i
		e.Register(TickFunc(func(now Cycle) {
			ticks[i]++
			if ticks[0] < ticks[2] {
				t.Fatalf("ticker 2 ran before ticker 0 at cycle %d", now)
			}
			if len(order) < 3 {
				order = append(order, i)
			}
		}))
	}
	e.Step(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
	for i, n := range ticks {
		if n != 100 {
			t.Fatalf("ticker %d ran %d times, want 100", i, n)
		}
	}
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order = %v, want %v", order, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register(TickFunc(func(Cycle) { count++ }))
	stopped := e.RunUntil(1000, 100, func() bool { return count >= 250 })
	if stopped != 300 {
		t.Fatalf("stopped at %d, want 300 (first granule boundary past 250)", stopped)
	}
	// Limit binds when the condition never fires.
	e2 := NewEngine()
	if got := e2.RunUntil(70, 32, func() bool { return false }); got != 70 {
		t.Fatalf("RunUntil limit = %d, want 70", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero (xorshift fixed point)")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const mean, n = 500.0, 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	got := sum / n
	if got < mean*0.95 || got > mean*1.05 {
		t.Fatalf("Exp mean = %.1f, want within 5%% of %.0f", got, mean)
	}
}

func TestRNGGeometric(t *testing.T) {
	r := NewRNG(13)
	if v := r.Geometric(1.0); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
	var sum int
	const n = 10000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.5)
	}
	got := float64(sum) / n // mean of geometric(p) failures = (1-p)/p = 1
	if got < 0.9 || got > 1.1 {
		t.Fatalf("Geometric(0.5) mean = %.2f, want ~1.0", got)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(99)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("consecutive forks produced identical streams")
	}
}
