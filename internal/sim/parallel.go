package sim

import (
	"fmt"
	"runtime/debug"
)

// This file is the engine's sharded execution mode: one machine split into a
// coordinator (the shared, order-sensitive side) plus N independent shards
// (typically one per simulated core), advanced in lockstep quanta ("windows")
// with cross-shard effects exchanged only at window boundaries.
//
// The mode exists for parallelism — each shard can run on its own goroutine —
// but its correctness contract is strictly stronger than "same results when
// parallel": the window protocol itself is constructed so that a sharded run
// is BIT-IDENTICAL to the serial reference for any worker count, including
// Workers == 1. Determinism therefore never depends on goroutine scheduling;
// the scheduler only decides how fast the identical answer arrives.
//
// Window protocol, per iteration of Engine.Step:
//
//  1. The engine collects every shard's NextIssue forecast — the earliest
//     cycle at which that shard might next perform work whose effects reach
//     the shared side.
//  2. Coordinator.PlanWindow proposes a window end E bounded by the earliest
//     forecast plus the minimum shard→coordinator latency (so the coordinator
//     cannot run past a cycle where it would need a not-yet-simulated shard
//     event).
//  3. Coordinator.RunCoordWindow runs the shared side serially over [from,E),
//     staging per-shard events (fills, queue deltas, wake-ups) into mailboxes
//     stamped with their exact cycle. It may *shrink* E while running — e.g.
//     when it stages an event that could wake a shard early — and returns the
//     final end.
//  4. Every shard runs [from, E) independently, applying its mailbox events
//     at their exact stamps and skipping idle stretches in bulk.
//  5. Coordinator.FinishWindow merges shard-staged output back into the
//     shared structures at the barrier.
//
// Steps 1-3 and 5 run on the calling goroutine; only step 4 fans out.

// Shard is one independently-advancing partition of a machine.
type Shard interface {
	// RunShardWindow advances the shard from cycle from to cycle to,
	// consuming the mailbox events staged by the coordinator for this
	// window. It must not touch any state owned by another shard or by the
	// coordinator.
	RunShardWindow(from, to Cycle)

	// NextIssue forecasts the earliest cycle >= at at which this shard might
	// perform work that affects the shared side (NeverWork when only a
	// coordinator-staged event could wake it). The forecast may be
	// conservative (early) but never late.
	NextIssue(at Cycle) Cycle
}

// Coordinator owns the shared, order-sensitive remainder of a machine.
type Coordinator interface {
	// PlanWindow proposes the end of the next window starting at from,
	// clamped to limit (the enclosing Step boundary). earliestIssue is the
	// minimum of all shard NextIssue forecasts. The result must satisfy
	// from < end <= limit.
	PlanWindow(from, limit, earliestIssue Cycle) Cycle

	// RunCoordWindow advances the shared side over [from, to), staging
	// per-shard mailbox events. It may end the window early (never before
	// from+1) and returns the actual end, which callers use as the barrier.
	RunCoordWindow(from, to Cycle) Cycle

	// FinishWindow runs at the barrier after every shard has reached end:
	// merge shard-staged output into shared structures, fold counters, and
	// perform any end-of-window sampling.
	FinishWindow(end Cycle)
}

// ShardPlan describes a sharded execution of one engine.
type ShardPlan struct {
	Coord  Coordinator
	Shards []Shard

	// Workers is the number of goroutines driving shards (clamped to
	// [1, len(Shards)]). Results are identical for every value; 1 runs the
	// shards inline on the calling goroutine with no synchronization at all.
	Workers int
}

// ShardPanic wraps a panic raised inside a shard goroutine so it can be
// re-raised on the engine's goroutine with the original stack preserved.
type ShardPanic struct {
	Value any
	Stack string
}

func (p *ShardPanic) Error() string {
	return fmt.Sprintf("sim: shard panic: %v\n%s", p.Value, p.Stack)
}

// SetShardPlan installs (or, with nil, removes) the engine's sharded
// execution mode. The plan takes effect on the next Step; SetDense(true)
// overrides it, keeping the dense serial loop the trusted reference.
func (e *Engine) SetShardPlan(p *ShardPlan) {
	if p != nil && (p.Coord == nil || len(p.Shards) == 0) {
		p = nil
	}
	e.plan = p
}

// ShardPlanned reports whether a sharded execution plan is installed.
func (e *Engine) ShardPlanned() bool { return e.plan != nil }

type shardJob struct {
	shard    Shard
	from, to Cycle
}

type shardDone struct {
	panicked any
	stack    []byte
}

func runShardJob(j shardJob) (d shardDone) {
	defer func() {
		if r := recover(); r != nil {
			d.panicked = r
			d.stack = debug.Stack()
		}
	}()
	j.shard.RunShardWindow(j.from, j.to)
	return d
}

func shardWorker(work <-chan shardJob, done chan<- shardDone) {
	for j := range work {
		done <- runShardJob(j)
	}
}

// stepSharded is Step's windowed execution loop. Worker goroutines live for
// the duration of one Step call: callers step in granules of thousands of
// cycles, so spawn cost is amortized over many windows, and no goroutine
// outlives the call (machines are created in droves by sweeps; a parked
// pool per machine would leak).
func (e *Engine) stepSharded(end Cycle) {
	p := e.plan
	workers := p.Workers
	if workers > len(p.Shards) {
		workers = len(p.Shards)
	}
	if workers < 1 {
		workers = 1
	}
	var work chan shardJob
	var done chan shardDone
	if workers > 1 {
		work = make(chan shardJob, len(p.Shards))
		done = make(chan shardDone, len(p.Shards))
		for w := 0; w < workers; w++ {
			go shardWorker(work, done)
		}
		defer close(work)
	}

	for e.now < end {
		earliest := NeverWork
		for _, s := range p.Shards {
			if v := s.NextIssue(e.now); v < earliest {
				earliest = v
			}
		}
		to := p.Coord.PlanWindow(e.now, end, earliest)
		if to <= e.now {
			to = e.now + 1
		}
		if to > end {
			to = end
		}
		to = p.Coord.RunCoordWindow(e.now, to)

		if workers > 1 {
			for _, s := range p.Shards {
				work <- shardJob{shard: s, from: e.now, to: to}
			}
			var failed *ShardPanic
			for range p.Shards {
				d := <-done
				if d.panicked != nil && failed == nil {
					failed = &ShardPanic{Value: d.panicked, Stack: string(d.stack)}
				}
			}
			if failed != nil {
				panic(failed)
			}
		} else {
			for _, s := range p.Shards {
				s.RunShardWindow(e.now, to)
			}
		}

		p.Coord.FinishWindow(to)
		e.now = to
	}
}
