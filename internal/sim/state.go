package sim

// EngineState is the serialisable form of an Engine: the cycle counter. The
// ticker registry is wiring, reconstructed by rebuilding the machine.
type EngineState struct {
	Now Cycle
}

// SnapshotState captures the engine's mutable state.
func (e *Engine) SnapshotState() EngineState { return EngineState{Now: e.now} }

// RestoreState rewinds (or fast-forwards) the engine to a snapshot. The
// ticker registry is untouched.
func (e *Engine) RestoreState(s EngineState) { e.now = s.Now }

// State exposes the generator's internal state word for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState restores the generator to a previously captured state word. A zero
// word is remapped as in NewRNG (xorshift never reaches zero from a non-zero
// state, so this only defends against corrupted input).
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}
