package sim

import "testing"

// probe is a ticker that is quiescent until its wake cycle and active from
// then on, recording every ticked cycle and every compensated skip range so
// tests can prove the engine covers each simulated cycle exactly once.
type probe struct {
	wake  Cycle
	ticks []Cycle
	skips [][2]Cycle
}

func (p *probe) Tick(now Cycle) { p.ticks = append(p.ticks, now) }

func (p *probe) NextWork(now Cycle) (Cycle, bool) {
	if now < p.wake {
		return p.wake, true
	}
	return 0, false
}

func (p *probe) SkipCycles(from, to Cycle) {
	p.skips = append(p.skips, [2]Cycle{from, to})
}

// coverage verifies each cycle of [0, end) is covered exactly once, by a tick
// or by a skip range.
func (p *probe) coverage(t *testing.T, end Cycle) {
	t.Helper()
	seen := make([]int, end)
	for _, c := range p.ticks {
		seen[c]++
	}
	for _, r := range p.skips {
		for c := r[0]; c < r[1]; c++ {
			seen[c]++
		}
	}
	for c, n := range seen {
		if n != 1 {
			t.Fatalf("cycle %d covered %d times (ticks %d, skips %d)", c, n, len(p.ticks), len(p.skips))
		}
	}
}

// TestSkipCompensationCoversEveryCycle drives both elision regimes — the
// global bulk jump while all slots sleep, and the eager per-cycle elision of
// one sleeping slot while another ticks densely — and proves every cycle is
// either ticked or compensated exactly once per component.
func TestSkipCompensationCoversEveryCycle(t *testing.T) {
	a := &probe{wake: 100}
	b := &probe{wake: 250}
	e := NewEngine()
	e.Register(a)
	e.Register(b)
	e.Step(300)
	if e.Now() != 300 {
		t.Fatalf("Now = %d, want 300", e.Now())
	}
	a.coverage(t, 300)
	b.coverage(t, 300)
	if len(a.ticks) != 200 { // active 100..299
		t.Fatalf("a ticked %d cycles, want 200", len(a.ticks))
	}
	if len(b.ticks) != 50 { // active 250..299
		t.Fatalf("b ticked %d cycles, want 50", len(b.ticks))
	}
	// The all-idle prefix must have used a bulk jump, not 100 polls: both
	// probes get one wide compensation range covering cycles 1..99.
	bulk := 0
	for _, r := range b.skips {
		if r[1]-r[0] > 1 {
			bulk++
			if r[0] != 1 || r[1] != 100 {
				t.Fatalf("bulk skip = %v, want [1,100)", r)
			}
		}
	}
	if bulk != 1 {
		t.Fatalf("b got %d bulk skips, want exactly 1", bulk)
	}
}

// TestStepNeverOvershoots: a bulk jump is clamped to the Step window even
// when the earliest reported work lies far beyond it, so absolute boundaries
// (checkpoint intervals, audit epochs, cycle budgets) are always honoured.
func TestStepNeverOvershoots(t *testing.T) {
	p := &probe{wake: 1 << 40}
	e := NewEngine()
	e.Register(p)
	for i := 0; i < 5; i++ {
		e.Step(123)
	}
	if e.Now() != 5*123 {
		t.Fatalf("Now = %d, want %d", e.Now(), 5*123)
	}
	p.coverage(t, 5*123)
	if len(p.ticks) != 0 {
		t.Fatalf("quiescent probe ticked %d times", len(p.ticks))
	}
}

// TestNonReporterPinsDense: a ticker without NextWork must be ticked every
// cycle, and its presence must prevent any global jump.
func TestNonReporterPinsDense(t *testing.T) {
	plain := 0
	p := &probe{wake: NeverWork}
	e := NewEngine()
	e.Register(TickFunc(func(Cycle) { plain++ }))
	e.Register(p)
	e.Step(500)
	if plain != 500 {
		t.Fatalf("plain ticker ran %d times, want 500", plain)
	}
	p.coverage(t, 500)
	if len(p.skips) != 500 {
		t.Fatalf("probe compensated %d ranges, want 500 one-cycle elisions", len(p.skips))
	}
}

// TestDenseModeIgnoresReporters: the -dense escape hatch must tick every
// component every cycle and never call SkipCycles.
func TestDenseModeIgnoresReporters(t *testing.T) {
	p := &probe{wake: NeverWork}
	e := NewEngine()
	e.SetDense(true)
	e.Register(p)
	e.Step(200)
	if len(p.ticks) != 200 || len(p.skips) != 0 {
		t.Fatalf("dense mode: %d ticks, %d skips; want 200, 0", len(p.ticks), len(p.skips))
	}
}

// TestRunUntilGranuleExceedsLimit: a granule larger than the remaining limit
// is clamped, so the run stops exactly at the limit.
func TestRunUntilGranuleExceedsLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register(TickFunc(func(Cycle) { count++ }))
	if got := e.RunUntil(50, 100, func() bool { return false }); got != 50 {
		t.Fatalf("RunUntil = %d, want 50", got)
	}
	if count != 50 {
		t.Fatalf("ticked %d cycles, want exactly 50", count)
	}
}

// TestRunUntilStopFiresMidGranule: the stop condition is only observed at
// granule boundaries — a condition that becomes true mid-granule stops the
// run at the end of that granule, not at the cycle it turned true.
func TestRunUntilStopFiresMidGranule(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register(TickFunc(func(Cycle) { count++ }))
	if got := e.RunUntil(1000, 100, func() bool { return count >= 30 }); got != 100 {
		t.Fatalf("RunUntil = %d, want 100 (first boundary after the condition)", got)
	}
	if count != 100 {
		t.Fatalf("ticked %d cycles, want 100", count)
	}
}

// TestRunUntilZeroGranule: granule 0 degrades to per-cycle checks.
func TestRunUntilZeroGranule(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register(TickFunc(func(Cycle) { count++ }))
	if got := e.RunUntil(10, 0, func() bool { return count >= 3 }); got != 3 {
		t.Fatalf("RunUntil = %d, want 3", got)
	}
}

// TestSkipRunUntilStopsAtExactBoundaries: skip-ahead inside RunUntil still
// lands on every granule boundary, so stop conditions and absolute-boundary
// callers observe identical stopping points in both modes.
func TestSkipRunUntilStopsAtExactBoundaries(t *testing.T) {
	p := &probe{wake: 1 << 40}
	e := NewEngine()
	e.Register(p)
	checks := []Cycle{}
	e.RunUntil(700, 64, func() bool {
		checks = append(checks, e.Now())
		return false
	})
	want := []Cycle{64, 128, 192, 256, 320, 384, 448, 512, 576, 640, 700}
	if len(checks) != len(want) {
		t.Fatalf("stop checked at %v, want %v", checks, want)
	}
	for i := range want {
		if checks[i] != want[i] {
			t.Fatalf("stop check %d at cycle %d, want %d", i, checks[i], want[i])
		}
	}
	p.coverage(t, 700)
}
