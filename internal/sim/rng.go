package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64star). Every stochastic choice in the simulator draws from an
// RNG seeded by the experiment harness, so runs are bit-for-bit reproducible.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed float64 with the given mean,
// used for Poisson inter-arrival times in the load generator.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Geometric returns a geometrically distributed count with success
// probability p in (0, 1], i.e. the number of failures before success.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("sim: Geometric with non-positive p")
	}
	n := 0
	for r.Float64() >= p {
		n++
		if n > 1<<20 {
			break // defensive bound; p tiny
		}
	}
	return n
}

// Fork derives an independent generator from r's stream, useful for giving
// each core or workload its own sequence while retaining determinism.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A55A5A5A5A)
}
