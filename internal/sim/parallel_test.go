package sim

import (
	"strings"
	"sync/atomic"
	"testing"
)

// testShard records the windows it was asked to run and forecasts issue work
// every issueEvery cycles (0 = never).
type testShard struct {
	issueEvery Cycle
	windows    [][2]Cycle
	panicAt    Cycle // panic when asked to run a window containing this cycle
	ran        atomic.Int64
}

func (s *testShard) RunShardWindow(from, to Cycle) {
	s.ran.Add(1)
	if s.panicAt != 0 && from <= s.panicAt && s.panicAt < to {
		panic("testShard: boom")
	}
	s.windows = append(s.windows, [2]Cycle{from, to})
}

func (s *testShard) NextIssue(at Cycle) Cycle {
	if s.issueEvery == 0 {
		return NeverWork
	}
	if at%s.issueEvery == 0 {
		return at
	}
	return at + (s.issueEvery - at%s.issueEvery)
}

// testCoord plans windows of a fixed span (further clamped by the shard
// forecast bound), optionally shrinking them while running, and records the
// barrier sequence.
type testCoord struct {
	span     Cycle
	latency  Cycle // min shard->coordinator latency added to earliestIssue
	shrinkTo Cycle // if non-zero, RunCoordWindow ends windows at multiples of this
	barriers []Cycle
	windows  [][2]Cycle
}

func (c *testCoord) PlanWindow(from, limit, earliestIssue Cycle) Cycle {
	e := from + c.span
	if earliestIssue != NeverWork && earliestIssue+c.latency < e {
		e = earliestIssue + c.latency
	}
	if e <= from {
		e = from + 1
	}
	if e > limit {
		e = limit
	}
	return e
}

func (c *testCoord) RunCoordWindow(from, to Cycle) Cycle {
	if c.shrinkTo != 0 {
		if next := from + c.shrinkTo - from%c.shrinkTo; next < to {
			to = next
		}
	}
	c.windows = append(c.windows, [2]Cycle{from, to})
	return to
}

func (c *testCoord) FinishWindow(end Cycle) { c.barriers = append(c.barriers, end) }

// tiles asserts the recorded windows exactly tile [0, end).
func tiles(t *testing.T, name string, ws [][2]Cycle, end Cycle) {
	t.Helper()
	var at Cycle
	for i, w := range ws {
		if w[0] != at || w[1] <= w[0] {
			t.Fatalf("%s: window %d is [%d,%d), want start %d", name, i, w[0], w[1], at)
		}
		at = w[1]
	}
	if at != end {
		t.Fatalf("%s: windows end at %d, want %d", name, at, end)
	}
}

func TestStepShardedTilesWindows(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		e := NewEngine()
		shards := []*testShard{{issueEvery: 7}, {issueEvery: 0}, {issueEvery: 13}}
		coord := &testCoord{span: 50, latency: 2, shrinkTo: 9}
		plan := &ShardPlan{Coord: coord, Workers: workers}
		for _, s := range shards {
			plan.Shards = append(plan.Shards, s)
		}
		e.SetShardPlan(plan)
		e.Step(100)
		e.Step(37) // lands at 137, deliberately not a multiple of anything above

		tiles(t, "coordinator", coord.windows, 137)
		for i, s := range shards {
			if workers == 1 {
				tiles(t, "shard", s.windows, 137)
			} else if got := s.ran.Load(); got != int64(len(coord.windows)) {
				t.Fatalf("shard %d ran %d windows, want %d", i, got, len(coord.windows))
			}
		}
		if len(coord.barriers) != len(coord.windows) {
			t.Fatalf("%d barriers for %d windows", len(coord.barriers), len(coord.windows))
		}
		for i, b := range coord.barriers {
			if b != coord.windows[i][1] {
				t.Fatalf("barrier %d at %d, want window end %d", i, b, coord.windows[i][1])
			}
		}
		if e.Now() != 137 {
			t.Fatalf("engine at %d after sharded steps", e.Now())
		}
	}
}

// TestStepShardedWindowBounds: every window end must respect the earliest
// shard forecast plus latency — the coordinator may never outrun a cycle
// where an unsimulated shard event could land.
func TestStepShardedWindowBounds(t *testing.T) {
	e := NewEngine()
	sh := &testShard{issueEvery: 10}
	coord := &testCoord{span: 1000, latency: 3}
	e.SetShardPlan(&ShardPlan{Coord: coord, Shards: []Shard{sh}, Workers: 1})
	e.Step(60)
	for i, w := range coord.windows {
		issue := sh.NextIssue(w[0])
		if bound := issue + coord.latency; w[1] > bound {
			t.Fatalf("window %d [%d,%d) exceeds forecast bound %d", i, w[0], w[1], bound)
		}
	}
}

func TestStepShardedPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 3} {
		e := NewEngine()
		bad := &testShard{panicAt: 25}
		coord := &testCoord{span: 10}
		e.SetShardPlan(&ShardPlan{
			Coord:   coord,
			Shards:  []Shard{&testShard{}, bad, &testShard{}},
			Workers: workers,
		})
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: shard panic not propagated", workers)
				}
				if workers > 1 {
					sp, ok := r.(*ShardPanic)
					if !ok {
						t.Fatalf("workers=%d: recovered %T, want *ShardPanic", workers, r)
					}
					if !strings.Contains(sp.Error(), "boom") {
						t.Fatalf("ShardPanic lost the original value: %q", sp.Error())
					}
				}
			}()
			e.Step(100)
		}()
	}
}

func TestSetShardPlanNilAndInvalid(t *testing.T) {
	e := NewEngine()
	e.SetShardPlan(&ShardPlan{}) // no coordinator, no shards: rejected
	if e.ShardPlanned() {
		t.Fatal("empty plan should not install")
	}
	e.SetShardPlan(&ShardPlan{Coord: &testCoord{span: 5}, Shards: []Shard{&testShard{}}})
	if !e.ShardPlanned() {
		t.Fatal("valid plan did not install")
	}
	e.SetShardPlan(nil)
	if e.ShardPlanned() {
		t.Fatal("nil did not clear the plan")
	}
	e.Step(10) // back on the serial path
	if e.Now() != 10 {
		t.Fatalf("engine at %d after serial step", e.Now())
	}
}
