package metrics

import (
	"fmt"
	"strings"
)

// sparkRunes are the eight block heights of a terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode chart, scaled to the
// min..max of the series. Empty input renders as an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Histogram renders a latency histogram as rows of "bucket | bar count",
// with nbuckets equal-width buckets over the sample range. It is the
// text-mode stand-in for the paper's latency-distribution plots.
func Histogram(samples []uint32, nbuckets, barWidth int) string {
	if len(samples) == 0 || nbuckets <= 0 {
		return "(no samples)\n"
	}
	lo, hi := samples[0], samples[0]
	for _, v := range samples[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, nbuckets)
	width := (uint64(hi-lo) + uint64(nbuckets)) / uint64(nbuckets)
	for _, v := range samples {
		idx := int(uint64(v-lo) / width)
		if idx >= nbuckets {
			idx = nbuckets - 1
		}
		counts[idx]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if barWidth <= 0 {
		barWidth = 40
	}
	var b strings.Builder
	for i, c := range counts {
		lowEdge := uint64(lo) + uint64(i)*width
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%10d | %-*s %d\n", lowEdge, barWidth, strings.Repeat("#", bar), c)
	}
	return b.String()
}
