package metrics

import (
	"encoding/csv"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	samples := []uint32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want uint32
	}{
		{50, 50}, {95, 100}, {100, 100}, {10, 10},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Errorf("P%.0f = %d, want %d", c.p, got, c.want)
		}
	}
	if Percentile(nil, 95) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated (sorted copy).
	shuffled := []uint32{5, 1, 3}
	P95(shuffled)
	if shuffled[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(samples []uint32, pRaw uint8) bool {
		if len(samples) == 0 {
			return true
		}
		p := 1 + float64(pRaw%100)
		v := Percentile(samples, p)
		// The result must be an element of the sample set.
		for _, s := range samples {
			if s == v {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		return Percentile(samples, 50) <= Percentile(samples, 95) &&
			Percentile(samples, 95) <= Percentile(samples, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]uint32{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestEMU(t *testing.T) {
	tasks := []TaskShare{
		{Name: "lc", Load: 0.7, MeetsQoS: true, IsLC: true},
		{Name: "be", Load: 0.6},
	}
	if got := EMU(tasks); got < 129.999 || got > 130.001 {
		t.Fatalf("EMU = %v, want ~130", got)
	}
	tasks[0].MeetsQoS = false
	if got := EMU(tasks); got != 0 {
		t.Fatalf("EMU with violated LC = %v, want 0", got)
	}
	// BE-only co-locations always count.
	if got := EMU([]TaskShare{{Load: 0.5}, {Load: 0.5}}); got != 100 {
		t.Fatalf("BE-only EMU = %v, want 100", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tb.AddRow("x", "y")
	tb.AddRowf("longcell", 1.23456)
	out := tb.String()
	if !strings.Contains(out, "== T ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float not formatted: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns aligned: every data line at least as wide as the widest cell.
	if len(lines[3]) < len("longcell") {
		t.Fatal("column width not expanded")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	runes := []rune(s)
	if len(runes) != 4 {
		t.Fatalf("sparkline length %d, want 4", len(runes))
	}
	if runes[0] >= runes[3] {
		t.Fatal("ascending series must render ascending blocks")
	}
	// A flat series renders a flat line without panicking on span 0.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	if flat[0] != flat[1] || flat[1] != flat[2] {
		t.Fatal("flat series not flat")
	}
}

func TestHistogram(t *testing.T) {
	if got := Histogram(nil, 4, 10); !strings.Contains(got, "no samples") {
		t.Fatalf("empty histogram = %q", got)
	}
	out := Histogram([]uint32{1, 1, 1, 1, 100, 100, 200}, 4, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("histogram rows = %d, want 4", len(lines))
	}
	if !strings.Contains(lines[0], "####") {
		t.Fatalf("densest bucket has no bar: %q", lines[0])
	}
	// Identical samples must not divide by zero.
	_ = Histogram([]uint32{7, 7, 7}, 3, 10)
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("plain", `needs "quoting", really`)
	got := tb.CSV()
	want := "a,b\nplain,\"needs \"\"quoting\"\", really\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

// TestTableCSVQuoting covers the RFC-4180 edge cases: embedded commas,
// quotes, newlines, and combinations — each must round-trip through a
// standard CSV reader unchanged.
func TestTableCSVQuoting(t *testing.T) {
	rows := [][]string{
		{"comma,inside", "plain"},
		{`say "hi"`, `both, "kinds"`},
		{"line\nbreak", "trailing\n"},
		{"", `""`},
		{`"`, `,`},
	}
	tb := &Table{Headers: []string{"x", "y"}}
	for _, r := range rows {
		tb.AddRow(r...)
	}
	got := tb.CSV()

	rd := csv.NewReader(strings.NewReader(got))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv rejected our output: %v\n%s", err, got)
	}
	if len(recs) != len(rows)+1 {
		t.Fatalf("parsed %d records, want %d", len(recs), len(rows)+1)
	}
	for i, r := range rows {
		for j := range r {
			if recs[i+1][j] != r[j] {
				t.Errorf("cell [%d][%d] = %q, want %q", i, j, recs[i+1][j], r[j])
			}
		}
	}
	// Fields without specials stay unquoted.
	if !strings.HasPrefix(got, "x,y\n") {
		t.Fatalf("plain header was quoted: %q", got)
	}
}

func TestQuantiles(t *testing.T) {
	samples := []uint32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	qs := Quantiles(samples, 10, 50, 95, 100)
	want := []uint32{10, 50, 100, 100}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("Quantiles[%d] = %d, want %d", i, qs[i], want[i])
		}
	}
	// Must agree with the single-percentile path for any p.
	for p := 1.0; p <= 100; p++ {
		if Quantiles(samples, p)[0] != Percentile(samples, p) {
			t.Fatalf("Quantiles(%v) != Percentile(%v)", p, p)
		}
	}
	// Empty input: zeros, one per requested percentile.
	if got := Quantiles(nil, 50, 99); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("Quantiles(nil) = %v", got)
	}
	// Input must not be mutated (sorted copy).
	shuffled := []uint32{5, 1, 3}
	Quantiles(shuffled, 50, 95)
	if shuffled[0] != 5 {
		t.Error("Quantiles mutated its input")
	}
}
