// Package metrics provides the statistics the paper reports: latency
// percentiles, IPC, memory-bandwidth utilisation, and effective machine
// utilisation (EMU, from Heracles), plus small helpers for printing the
// experiment tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0 < p <= 100) of samples using
// nearest-rank on a sorted copy. It returns 0 for an empty sample set.
func Percentile(samples []uint32, p float64) uint32 {
	return Quantiles(samples, p)[0]
}

// Quantiles returns the nearest-rank percentiles of samples at each p in ps,
// sorting the samples once. Callers computing several percentiles of the same
// set (p50/p95/p99) should prefer this over repeated Percentile calls, which
// re-sort on every call. An empty sample set yields all zeros.
func Quantiles(samples []uint32, ps ...float64) []uint32 {
	out := make([]uint32, len(ps))
	if len(samples) == 0 {
		return out
	}
	sorted := make([]uint32, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		rank := int(p/100*float64(len(sorted))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		out[i] = sorted[rank]
	}
	return out
}

// P95 returns the 95th-percentile of samples.
func P95(samples []uint32) uint32 { return Percentile(samples, 95) }

// Mean returns the arithmetic mean of samples (0 when empty).
func Mean(samples []uint32) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += float64(v)
	}
	return sum / float64(len(samples))
}

// TaskShare is one co-located task's contribution to EMU.
type TaskShare struct {
	Name string
	// Load is the task's achieved load as a fraction of its standalone
	// capacity: RPS/maxLoad for an LC task, throughput/alone for a BE task.
	Load float64
	// MeetsQoS gates LC contributions; BE tasks always count.
	MeetsQoS bool
	IsLC     bool
}

// EMU computes effective machine utilisation (Heracles / §VI-A1): the total
// load of all co-located tasks, counted only when every LC task meets QoS.
// EMU can exceed 100% because each task's load is normalised to its own
// standalone capacity.
func EMU(tasks []TaskShare) float64 {
	for _, t := range tasks {
		if t.IsLC && !t.MeetsQoS {
			return 0
		}
	}
	var sum float64
	for _, t := range tasks {
		sum += t.Load
	}
	return sum * 100
}

// Table renders an aligned text table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row, formatting each value with %v and floats as %.3g.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values (header row
// first, fields quoted only when needed) for import into external tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
