package interconnect

import (
	"pivot/internal/mem"
	"pivot/internal/ring"
	"pivot/internal/sim"
)

// EntryState is one queued request in serialisable form.
type EntryState struct {
	Req   mem.ReqState
	Ready sim.Cycle
	Enq   sim.Cycle
}

// StationState is the serialisable form of a Station: both queues (with the
// requests they own, by value) and the traffic counters. Wiring (downstream,
// Classify, Fault, PriorityEnabled) is configuration, reapplied by rebuilding
// the machine.
type StationState struct {
	Normal []EntryState
	Prio   []EntryState
	Stats  Stats
}

func snapQueue(q *ring.Ring[entry]) []EntryState {
	out := make([]EntryState, q.Len())
	for i := range out {
		e := q.At(i)
		out[i] = EntryState{Req: e.req.State(), Ready: e.ready, Enq: e.enq}
	}
	return out
}

func restoreQueue(q *ring.Ring[entry], st []EntryState) {
	q.Reset()
	for _, e := range st {
		q.Push(entry{req: e.Req.Materialize(), ready: e.Ready, enq: e.Enq})
	}
}

// SnapshotState captures the station's mutable state.
func (s *Station) SnapshotState() StationState {
	return StationState{
		Normal: snapQueue(&s.normal),
		Prio:   snapQueue(&s.prio),
		Stats:  s.Stats,
	}
}

// RestoreState overwrites the station's queues and counters from a snapshot.
// The restored queues own freshly materialised requests.
func (s *Station) RestoreState(st StationState) {
	restoreQueue(&s.normal, st.Normal)
	restoreQueue(&s.prio, st.Prio)
	s.Stats = st.Stats
}
