package interconnect

import (
	"pivot/internal/mem"
	"pivot/internal/sim"
)

// EntryState is one queued request in serialisable form.
type EntryState struct {
	Req   mem.ReqState
	Ready sim.Cycle
	Enq   sim.Cycle
}

// StationState is the serialisable form of a Station: both queues (with the
// requests they own, by value) and the traffic counters. Wiring (downstream,
// Classify, Fault, PriorityEnabled) is configuration, reapplied by rebuilding
// the machine.
type StationState struct {
	Normal []EntryState
	Prio   []EntryState
	Stats  Stats
}

func snapQueue(q []entry) []EntryState {
	out := make([]EntryState, len(q))
	for i, e := range q {
		out[i] = EntryState{Req: e.req.State(), Ready: e.ready, Enq: e.enq}
	}
	return out
}

func restoreQueue(q []EntryState) []entry {
	out := make([]entry, len(q))
	for i, e := range q {
		out[i] = entry{req: e.Req.Materialize(), ready: e.Ready, enq: e.Enq}
	}
	return out
}

// SnapshotState captures the station's mutable state.
func (s *Station) SnapshotState() StationState {
	return StationState{
		Normal: snapQueue(s.normal),
		Prio:   snapQueue(s.prio),
		Stats:  s.Stats,
	}
}

// RestoreState overwrites the station's queues and counters from a snapshot.
// The restored queues own freshly materialised requests.
func (s *Station) RestoreState(st StationState) {
	s.normal = append(s.normal[:0], restoreQueue(st.Normal)...)
	s.prio = append(s.prio[:0], restoreQueue(st.Prio)...)
	s.Stats = st.Stats
}
