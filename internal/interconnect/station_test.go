package interconnect

import (
	"testing"

	"pivot/internal/mem"
	"pivot/internal/sim"
)

// sink accepts everything (optionally up to a cap) and records order.
type sink struct {
	got []*mem.Req
	cap int // 0 = unlimited
}

func (s *sink) Accept(r *mem.Req, now sim.Cycle) bool {
	if s.cap > 0 && len(s.got) >= s.cap {
		return false
	}
	s.got = append(s.got, r)
	return true
}

func cfg() Config {
	return Config{Name: "t", Component: mem.CompBus, Latency: 3, Bandwidth: 1,
		CapNormal: 4, CapPrio: 2}
}

func req(crit bool) *mem.Req { return &mem.Req{Critical: crit} }

func TestStationLatencyAndForwarding(t *testing.T) {
	dn := &sink{}
	s := New(cfg(), dn)
	if !s.Accept(req(false), 0) {
		t.Fatal("accept into empty station failed")
	}
	// Not ready until latency elapses.
	s.Tick(1)
	s.Tick(2)
	if len(dn.got) != 0 {
		t.Fatal("forwarded before latency elapsed")
	}
	s.Tick(3)
	if len(dn.got) != 1 {
		t.Fatal("not forwarded after latency elapsed")
	}
	if !s.Drain() {
		t.Fatal("station not drained")
	}
}

func TestStationCapacityBackPressure(t *testing.T) {
	dn := &sink{}
	s := New(cfg(), dn)
	for i := 0; i < 4; i++ {
		if !s.Accept(req(false), 0) {
			t.Fatalf("accept %d failed below capacity", i)
		}
	}
	if s.Accept(req(false), 0) {
		t.Fatal("accept above CapNormal succeeded")
	}
	if s.Stats.Refused != 1 {
		t.Fatalf("refused = %d, want 1", s.Stats.Refused)
	}
}

func TestStationHeadOfLineBlocking(t *testing.T) {
	dn := &sink{cap: 1}
	s := New(cfg(), dn)
	s.Accept(req(false), 0)
	s.Accept(req(false), 0)
	for now := sim.Cycle(0); now < 20; now++ {
		s.Tick(now)
	}
	if len(dn.got) != 1 {
		t.Fatalf("downstream got %d, want 1 (blocked)", len(dn.got))
	}
	if n, _ := s.QueueLen(); n != 1 {
		t.Fatalf("normal queue = %d, want 1 blocked request", n)
	}
}

func TestStationPriorityQueue(t *testing.T) {
	dn := &sink{}
	s := New(cfg(), dn)
	s.PriorityEnabled = true
	normal := req(false)
	crit := req(true)
	s.Accept(normal, 0)
	s.Accept(crit, 0)
	for now := sim.Cycle(3); now < 10; now++ {
		s.Tick(now) // both ready from cycle 3: priority must win
	}
	if len(dn.got) != 2 {
		t.Fatalf("forwarded %d, want 2", len(dn.got))
	}
	if dn.got[0] != crit {
		t.Fatal("critical request did not bypass the older normal request")
	}
}

func TestStationPriorityDisabledSharesQueue(t *testing.T) {
	dn := &sink{}
	s := New(cfg(), dn)
	normal, crit := req(false), req(true)
	s.Accept(normal, 0)
	s.Accept(crit, 0)
	for now := sim.Cycle(0); now < 10; now++ {
		s.Tick(now)
	}
	if dn.got[0] != normal {
		t.Fatal("without priority queues, FCFS order must hold")
	}
}

// TestStationPriorityQueueFullFallsBack: the dedicated queue's purpose is
// space; when even it is full, accept refuses rather than dropping.
func TestStationPriorityQueueFull(t *testing.T) {
	s := New(cfg(), &sink{cap: 0})
	s.PriorityEnabled = true
	if !s.Accept(req(true), 0) || !s.Accept(req(true), 0) {
		t.Fatal("priority accepts below capacity failed")
	}
	if s.Accept(req(true), 0) {
		t.Fatal("accept above CapPrio succeeded")
	}
}

func TestStationStarvationGuard(t *testing.T) {
	c := cfg()
	c.MaxWait = 10
	c.Latency = 0 // keep the priority queue instantly ready
	dn := &sink{}
	s := New(c, dn)
	s.PriorityEnabled = true
	old := req(false)
	s.Accept(old, 0)
	// Keep the priority queue loaded: without the guard, `old` would wait
	// forever behind always-ready critical traffic.
	for now := sim.Cycle(0); now < 40; now++ {
		for {
			if _, p := s.QueueLen(); p >= 2 {
				break
			}
			s.Accept(req(true), now)
		}
		s.Tick(now)
	}
	found := false
	for _, r := range dn.got {
		if r == old {
			found = true
		}
	}
	if !found {
		t.Fatal("starved normal request was never promoted")
	}
	if s.Stats.Promoted == 0 {
		t.Fatal("promotion not counted")
	}
}

func TestStationClassify(t *testing.T) {
	dn := &sink{}
	s := New(cfg(), dn)
	low := &mem.Req{Part: 1}
	high := &mem.Req{Part: 0}
	s.Classify = func(r *mem.Req) int { return int(r.Part) }
	s.Accept(low, 0)
	s.Accept(high, 0)
	for now := sim.Cycle(0); now < 10; now++ {
		s.Tick(now)
	}
	if dn.got[0] != high {
		t.Fatal("class ranking did not reorder the normal queue")
	}
}

func TestStationBandwidth(t *testing.T) {
	c := cfg()
	c.Bandwidth = 2
	c.Latency = 0
	dn := &sink{}
	s := New(c, dn)
	for i := 0; i < 4; i++ {
		s.Accept(req(false), 0)
	}
	s.Tick(0)
	if len(dn.got) != 2 {
		t.Fatalf("forwarded %d in one cycle, want bandwidth=2", len(dn.got))
	}
}

func TestStationSplitAccounting(t *testing.T) {
	dn := &sink{}
	s := New(cfg(), dn)
	r := req(false)
	s.Accept(r, 5)
	for now := sim.Cycle(5); now <= 8; now++ {
		s.Tick(now)
	}
	if got := r.Split[mem.CompBus]; got != 3 {
		t.Fatalf("split for bus = %d, want 3 (latency)", got)
	}
}

// TestConservationProperty: for any offered traffic pattern, requests are
// conserved — accepted == forwarded + still queued — and refusals never
// lose a request.
func TestConservationProperty(t *testing.T) {
	rng := sim.NewRNG(123)
	for trial := 0; trial < 50; trial++ {
		c := Config{Name: "p", Component: mem.CompBus,
			Latency: sim.Cycle(rng.Intn(5)), Bandwidth: 1 + rng.Intn(3),
			CapNormal: 1 + rng.Intn(8), CapPrio: 1 + rng.Intn(4)}
		dn := &sink{cap: 1 + rng.Intn(20)}
		s := New(c, dn)
		s.PriorityEnabled = rng.Intn(2) == 0
		offered, accepted := 0, 0
		for now := sim.Cycle(0); now < 200; now++ {
			for k := 0; k < rng.Intn(3); k++ {
				offered++
				if s.Accept(req(rng.Intn(4) == 0), now) {
					accepted++
				}
			}
			s.Tick(now)
		}
		n, p := s.QueueLen()
		if uint64(accepted) != s.Stats.Accepted {
			t.Fatalf("trial %d: accepted mismatch", trial)
		}
		if s.Stats.Accepted != s.Stats.Forwarded+uint64(n+p) {
			t.Fatalf("trial %d: conservation broken: accepted=%d forwarded=%d queued=%d",
				trial, s.Stats.Accepted, s.Stats.Forwarded, n+p)
		}
		if s.Stats.Refused != uint64(offered-accepted) {
			t.Fatalf("trial %d: refusal accounting broken", trial)
		}
		if len(dn.got) != int(s.Stats.Forwarded) {
			t.Fatalf("trial %d: downstream saw %d, station forwarded %d",
				trial, len(dn.got), s.Stats.Forwarded)
		}
	}
}
