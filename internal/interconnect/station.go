// Package interconnect provides the queued Station model used for the shared
// memory-system components (MSCs) on the memory path: the L2<->LLC
// interconnect and the coherent memory bus, and (wrapped by package bwctrl)
// the memory bandwidth controller.
//
// A Station has a finite normal queue, an optional finite priority queue for
// requests carrying PIVOT's critical bit, a per-cycle forwarding bandwidth,
// and a fixed traversal latency. When the downstream component refuses a
// request (its queue is full), the head blocks — this back-pressure is what
// makes queueing propagate upstream under bandwidth contention (the paper's
// Figure 4 root cause).
package interconnect

import (
	"pivot/internal/mem"
	"pivot/internal/ring"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

// Acceptor is anything a Station can forward requests into.
type Acceptor interface {
	// Accept takes ownership of r if it returns true; false means "queue
	// full, retry later" and the caller keeps the request.
	Accept(r *mem.Req, now sim.Cycle) bool
}

// AcceptorFunc adapts a function to the Acceptor interface.
type AcceptorFunc func(r *mem.Req, now sim.Cycle) bool

// Accept calls f.
func (f AcceptorFunc) Accept(r *mem.Req, now sim.Cycle) bool { return f(r, now) }

type entry struct {
	req   *mem.Req
	ready sim.Cycle // enqueue time + latency: earliest forwarding cycle
	enq   sim.Cycle
}

// Config sets a Station's geometry and timing.
type Config struct {
	Name      string
	Component mem.Component
	Latency   sim.Cycle // traversal latency once enqueued
	Bandwidth int       // max requests forwarded per cycle
	CapNormal int       // normal queue capacity
	CapPrio   int       // priority queue capacity (used when priority enabled)

	// MaxWait is the starvation guard from §IV-D: a normal request waiting
	// longer than this is served ahead of the priority queue. Zero disables
	// the guard.
	MaxWait sim.Cycle
}

// Stats counts a station's traffic.
type Stats struct {
	Accepted  uint64
	Forwarded uint64
	Refused   uint64 // offers rejected because the target queue was full
	Promoted  uint64 // normal requests served via the starvation guard
	// WaitCycles accumulates queue residency so tests can check fairness.
	WaitCycles uint64
}

// Station is a single queued hop on the memory path.
type Station struct {
	cfg  Config
	down Acceptor

	// Both queues are rings: forwarding pops the head every grant, and a
	// slice pop would copy the whole remaining queue each time.
	normal ring.Ring[entry]
	prio   ring.Ring[entry]

	// PriorityEnabled selects whether requests with the critical bit use the
	// dedicated priority queue (PIVOT / FullPath) or share the normal queue.
	PriorityEnabled bool

	// Classify, when non-nil, ranks normal-queue requests for selection
	// (lower rank = served first). The MPAM bandwidth controller uses this
	// to implement its high/medium/low classes. Requests of equal rank are
	// served FCFS.
	Classify func(r *mem.Req) int

	// Fault, when non-nil, injects admission refusals, latency spikes and
	// grant delays (see mem.Fault). Only tests and fault-injection campaigns
	// set it; production runs leave it nil.
	Fault mem.Fault

	// sawSpike notes that an injected latency spike broke the FIFO
	// ready-order invariant NextWork relies on; while any spiked entry may
	// still be queued the station reports itself active. Derived advisory
	// state: never serialised (checkpoints refuse faulted machines anyway).
	sawSpike bool

	Stats Stats
}

// New builds a station that forwards into down.
func New(cfg Config, down Acceptor) *Station {
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1
	}
	if cfg.CapNormal <= 0 {
		cfg.CapNormal = 1
	}
	if cfg.CapPrio <= 0 {
		cfg.CapPrio = cfg.CapNormal
	}
	return &Station{
		cfg:    cfg,
		down:   down,
		normal: ring.New[entry](cfg.CapNormal),
		prio:   ring.New[entry](cfg.CapPrio),
	}
}

// Config returns the station's configuration.
func (s *Station) Config() Config { return s.cfg }

// SetDownstream replaces the downstream acceptor (used when wiring machines).
func (s *Station) SetDownstream(a Acceptor) { s.down = a }

// QueueLen reports current normal- and priority-queue occupancy.
func (s *Station) QueueLen() (normal, prio int) { return s.normal.Len(), s.prio.Len() }

// Accept implements Acceptor: enqueue r if there is space.
func (s *Station) Accept(r *mem.Req, now sim.Cycle) bool {
	var spike sim.Cycle
	if s.Fault != nil {
		if s.Fault.DropAccept(now) {
			s.Stats.Refused++
			return false
		}
		spike = s.Fault.ExtraLatency(now)
		if spike > 0 {
			s.sawSpike = true
		}
	}
	usePrio := s.PriorityEnabled && r.Critical
	if usePrio {
		if s.prio.Len() >= s.cfg.CapPrio {
			// The paper's priority queue exists precisely so critical loads
			// are not blocked by a full normal queue; if even the priority
			// queue is full, fall back to refusing.
			s.Stats.Refused++
			return false
		}
		s.prio.Push(entry{req: r, ready: now + s.cfg.Latency + spike, enq: now})
		r.Enter(s.cfg.Component, now)
		s.Stats.Accepted++
		return true
	}
	if s.normal.Len() >= s.cfg.CapNormal {
		s.Stats.Refused++
		return false
	}
	s.normal.Push(entry{req: r, ready: now + s.cfg.Latency + spike, enq: now})
	r.Enter(s.cfg.Component, now)
	s.Stats.Accepted++
	return true
}

// pickNormal returns the index of the next normal-queue entry to serve under
// the Classify ranking (FCFS within a rank), or -1 when nothing is ready.
// Ranks are non-negative (MPAM classes), so the scan stops at the first
// ready rank-0 entry — no later entry can beat it, and FCFS breaks the tie
// in its favour. Absent injected latency spikes, ready order follows queue
// order, so the scan also stops at the first not-yet-ready entry.
func (s *Station) pickNormal(now sim.Cycle) int {
	n := s.normal.Len()
	if n == 0 {
		return -1
	}
	if s.Classify == nil {
		// Every rank is 0: the first ready entry wins outright.
		if s.normal.At(0).ready <= now {
			return 0
		}
		if !s.sawSpike {
			return -1
		}
		for i := 1; i < n; i++ {
			if s.normal.At(i).ready <= now {
				return i
			}
		}
		return -1
	}
	// Ranked scan over the whole queue; iterate the ring's contiguous
	// segments directly — this scan runs every grant under saturation.
	best := -1
	bestRank := int(^uint(0) >> 1)
	a, b := s.normal.Slices()
	i := 0
scan:
	for _, seg := range [2][]entry{a, b} {
		for k := range seg {
			e := &seg[k]
			if e.ready > now {
				if !s.sawSpike {
					break scan
				}
				i++
				continue
			}
			if rank := s.Classify(e.req); rank < bestRank {
				best, bestRank = i, rank
				if rank <= 0 {
					break scan
				}
			}
			i++
		}
	}
	return best
}

// Tick forwards up to Bandwidth ready requests into the downstream acceptor.
// Priority-queue requests go first, except that a starved normal request is
// promoted ahead of them.
func (s *Station) Tick(now sim.Cycle) { s.TickNext(now) }

// TickNext is Tick fused with a post-tick NextWork verdict, for schedulers
// that would otherwise pay a separate idle poll around every tick. It
// returns the same (next, idle) contract as NextWork evaluated after the
// grants, plus whether any request was actually forwarded downstream (the
// signal dirty-propagation schedulers need). The verdict is exact on the
// "nothing ready" exit — the grant loop has just proven both heads unready —
// and conservatively busy on the refusal and bandwidth-exhausted exits,
// where a ready head may remain.
func (s *Station) TickNext(now sim.Cycle) (next sim.Cycle, idle, worked bool) {
	if s.Fault != nil {
		// Injected faults consume per-cycle injector state (HoldGrant draws
		// its schedule on every call), so a faulted station may never sleep:
		// stay dense and conservatively report work.
		if !s.Fault.HoldGrant(now) {
			s.tickNext(now)
		}
		return 0, false, true
	}
	return s.tickNext(now)
}

// tickNext runs the grant loop. The selection reads each queue head exactly
// once — an earlier version spelled it as starvedNormal/prio-peek/pickNormal
// helpers, whose repeated head loads were the hottest lines of the loop
// under saturation.
func (s *Station) tickNext(now sim.Cycle) (next sim.Cycle, idle, worked bool) {
	for n := 0; n < s.cfg.Bandwidth; n++ {
		var e *entry
		var fromPrio bool
		idx := 0

		var hn *entry
		if s.normal.Len() > 0 {
			hn = s.normal.At(0) // FCFS: index 0 is the oldest
		}
		if hn != nil && s.cfg.MaxWait != 0 && hn.ready <= now && now-hn.enq > s.cfg.MaxWait {
			// §IV-D starvation guard: the over-waited head beats the
			// priority queue.
			e = hn
			s.Stats.Promoted++
		} else if s.prio.Len() > 0 {
			if hp := s.prio.At(0); hp.ready <= now {
				e, fromPrio = hp, true
			}
		}
		if e == nil {
			if s.Classify == nil && !s.sawSpike {
				// Every rank is 0 and ready order follows queue order: the
				// head is the only candidate.
				if hn != nil && hn.ready <= now {
					e = hn
				}
			} else if i := s.pickNormal(now); i >= 0 {
				e, idx = s.normal.At(i), i
			}
		}
		if e == nil {
			// Nothing ready: every exit above proves both heads (and, absent
			// spikes, therefore every entry) lie in the future.
			nl, pl := s.normal.Len(), s.prio.Len()
			if nl == 0 && pl == 0 {
				s.sawSpike = false
				return sim.NeverWork, true, worked
			}
			if s.sawSpike {
				return 0, false, worked
			}
			next = sim.NeverWork
			if pl > 0 {
				next = s.prio.At(0).ready
			}
			if nl > 0 && hn.ready < next {
				next = hn.ready
			}
			return next, true, worked
		}

		r, enq := e.req, e.enq
		if !s.down.Accept(r, now) {
			return 0, false, worked // head-of-line blocking: downstream full
		}
		// Charge the residency only on successful hand-off: the downstream
		// Accept may already have stamped the request into its own stage,
		// which is why Depart uses the enqueue cycle read above.
		r.Depart(s.cfg.Component, enq, now, s.cfg.Latency)
		s.Stats.WaitCycles += uint64(now - enq)
		if fromPrio {
			s.prio.PopHead()
		} else if idx == 0 {
			s.normal.PopHead()
		} else {
			s.normal.RemoveAt(idx)
		}
		s.Stats.Forwarded++
		worked = true
	}
	return 0, false, worked // bandwidth exhausted: a ready head may remain
}

// NextWork implements sim.IdleReporter. A station with no fault injector and
// no entry whose ready cycle has arrived performs no observable work in
// Tick (the grant loop returns at "nothing ready" before touching any
// state), so it sleeps until the earliest head ready cycle. Queue order
// implies ready order (ready = enqueue + fixed latency), so the two heads
// bound every entry — unless an injected latency spike broke that
// invariant, in which case the station stays dense until it drains.
func (s *Station) NextWork(now sim.Cycle) (sim.Cycle, bool) {
	if s.Fault != nil {
		return 0, false
	}
	if s.normal.Len() == 0 && s.prio.Len() == 0 {
		s.sawSpike = false
		return sim.NeverWork, true
	}
	if s.sawSpike {
		return 0, false
	}
	next := sim.NeverWork
	if s.prio.Len() > 0 {
		ready := s.prio.At(0).ready
		if ready <= now {
			return 0, false
		}
		next = ready
	}
	if s.normal.Len() > 0 {
		ready := s.normal.At(0).ready
		if ready <= now {
			return 0, false
		}
		if ready < next {
			next = ready
		}
	}
	return next, true
}

// RegisterStats registers the station's instruments under prefix (e.g.
// "ic"): traffic counters, queue-depth gauges (the paper's Insight #1
// queueing evidence), and the per-epoch back-pressure (refusal) series.
func (s *Station) RegisterStats(reg *stats.Registry, prefix string) {
	st := &s.Stats
	reg.Counter(prefix+".accepted", func() uint64 { return st.Accepted })
	reg.Counter(prefix+".forwarded", func() uint64 { return st.Forwarded })
	reg.Counter(prefix+".refused", func() uint64 { return st.Refused })
	reg.Counter(prefix+".promoted", func() uint64 { return st.Promoted })
	reg.Counter(prefix+".wait_cycles", func() uint64 { return st.WaitCycles })
	reg.Rate(prefix+".refused_epoch", func() uint64 { return st.Refused })
	reg.Gauge(prefix+".qdepth_normal", func() float64 { return float64(s.normal.Len()) })
	reg.Gauge(prefix+".qdepth_prio", func() float64 { return float64(s.prio.Len()) })
}

// EachReq visits every queued request in deterministic order (priority queue
// first, then normal, both FCFS), for checkpoint layers that must enumerate
// in-flight requests identically before a snapshot and after its restore.
func (s *Station) EachReq(f func(*mem.Req)) {
	for i, n := 0, s.prio.Len(); i < n; i++ {
		f(s.prio.At(i).req)
	}
	for i, n := 0, s.normal.Len(); i < n; i++ {
		f(s.normal.At(i).req)
	}
}

// Drain reports whether both queues are empty.
func (s *Station) Drain() bool { return s.normal.Len() == 0 && s.prio.Len() == 0 }

// ResetStats zeroes the counters.
func (s *Station) ResetStats() { s.Stats = Stats{} }
