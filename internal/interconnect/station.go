// Package interconnect provides the queued Station model used for the shared
// memory-system components (MSCs) on the memory path: the L2<->LLC
// interconnect and the coherent memory bus, and (wrapped by package bwctrl)
// the memory bandwidth controller.
//
// A Station has a finite normal queue, an optional finite priority queue for
// requests carrying PIVOT's critical bit, a per-cycle forwarding bandwidth,
// and a fixed traversal latency. When the downstream component refuses a
// request (its queue is full), the head blocks — this back-pressure is what
// makes queueing propagate upstream under bandwidth contention (the paper's
// Figure 4 root cause).
package interconnect

import (
	"pivot/internal/mem"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

// Acceptor is anything a Station can forward requests into.
type Acceptor interface {
	// Accept takes ownership of r if it returns true; false means "queue
	// full, retry later" and the caller keeps the request.
	Accept(r *mem.Req, now sim.Cycle) bool
}

// AcceptorFunc adapts a function to the Acceptor interface.
type AcceptorFunc func(r *mem.Req, now sim.Cycle) bool

// Accept calls f.
func (f AcceptorFunc) Accept(r *mem.Req, now sim.Cycle) bool { return f(r, now) }

type entry struct {
	req   *mem.Req
	ready sim.Cycle // enqueue time + latency: earliest forwarding cycle
	enq   sim.Cycle
}

// Config sets a Station's geometry and timing.
type Config struct {
	Name      string
	Component mem.Component
	Latency   sim.Cycle // traversal latency once enqueued
	Bandwidth int       // max requests forwarded per cycle
	CapNormal int       // normal queue capacity
	CapPrio   int       // priority queue capacity (used when priority enabled)

	// MaxWait is the starvation guard from §IV-D: a normal request waiting
	// longer than this is served ahead of the priority queue. Zero disables
	// the guard.
	MaxWait sim.Cycle
}

// Stats counts a station's traffic.
type Stats struct {
	Accepted  uint64
	Forwarded uint64
	Refused   uint64 // offers rejected because the target queue was full
	Promoted  uint64 // normal requests served via the starvation guard
	// WaitCycles accumulates queue residency so tests can check fairness.
	WaitCycles uint64
}

// Station is a single queued hop on the memory path.
type Station struct {
	cfg  Config
	down Acceptor

	normal []entry
	prio   []entry

	// PriorityEnabled selects whether requests with the critical bit use the
	// dedicated priority queue (PIVOT / FullPath) or share the normal queue.
	PriorityEnabled bool

	// Classify, when non-nil, ranks normal-queue requests for selection
	// (lower rank = served first). The MPAM bandwidth controller uses this
	// to implement its high/medium/low classes. Requests of equal rank are
	// served FCFS.
	Classify func(r *mem.Req) int

	// Fault, when non-nil, injects admission refusals, latency spikes and
	// grant delays (see mem.Fault). Only tests and fault-injection campaigns
	// set it; production runs leave it nil.
	Fault mem.Fault

	// sawSpike notes that an injected latency spike broke the FIFO
	// ready-order invariant NextWork relies on; while any spiked entry may
	// still be queued the station reports itself active. Derived advisory
	// state: never serialised (checkpoints refuse faulted machines anyway).
	sawSpike bool

	Stats Stats
}

// New builds a station that forwards into down.
func New(cfg Config, down Acceptor) *Station {
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1
	}
	if cfg.CapNormal <= 0 {
		cfg.CapNormal = 1
	}
	if cfg.CapPrio <= 0 {
		cfg.CapPrio = cfg.CapNormal
	}
	return &Station{
		cfg:    cfg,
		down:   down,
		normal: make([]entry, 0, cfg.CapNormal),
		prio:   make([]entry, 0, cfg.CapPrio),
	}
}

// Config returns the station's configuration.
func (s *Station) Config() Config { return s.cfg }

// SetDownstream replaces the downstream acceptor (used when wiring machines).
func (s *Station) SetDownstream(a Acceptor) { s.down = a }

// QueueLen reports current normal- and priority-queue occupancy.
func (s *Station) QueueLen() (normal, prio int) { return len(s.normal), len(s.prio) }

// Accept implements Acceptor: enqueue r if there is space.
func (s *Station) Accept(r *mem.Req, now sim.Cycle) bool {
	var spike sim.Cycle
	if s.Fault != nil {
		if s.Fault.DropAccept(now) {
			s.Stats.Refused++
			return false
		}
		spike = s.Fault.ExtraLatency(now)
		if spike > 0 {
			s.sawSpike = true
		}
	}
	usePrio := s.PriorityEnabled && r.Critical
	if usePrio {
		if len(s.prio) >= s.cfg.CapPrio {
			// The paper's priority queue exists precisely so critical loads
			// are not blocked by a full normal queue; if even the priority
			// queue is full, fall back to refusing.
			s.Stats.Refused++
			return false
		}
		s.prio = append(s.prio, entry{req: r, ready: now + s.cfg.Latency + spike, enq: now})
		r.Enter(s.cfg.Component, now)
		s.Stats.Accepted++
		return true
	}
	if len(s.normal) >= s.cfg.CapNormal {
		s.Stats.Refused++
		return false
	}
	s.normal = append(s.normal, entry{req: r, ready: now + s.cfg.Latency + spike, enq: now})
	r.Enter(s.cfg.Component, now)
	s.Stats.Accepted++
	return true
}

// pickNormal returns the index of the next normal-queue entry to serve under
// the Classify ranking (FCFS within a rank), or -1 when nothing is ready.
// Ranks are non-negative (MPAM classes), so the scan stops at the first
// ready rank-0 entry — no later entry can beat it, and FCFS breaks the tie
// in its favour. Absent injected latency spikes, ready order follows queue
// order, so the scan also stops at the first not-yet-ready entry.
func (s *Station) pickNormal(now sim.Cycle) int {
	best := -1
	bestRank := int(^uint(0) >> 1)
	for i := range s.normal {
		e := &s.normal[i]
		if e.ready > now {
			if !s.sawSpike {
				break
			}
			continue
		}
		rank := 0
		if s.Classify != nil {
			rank = s.Classify(e.req)
		}
		if rank < bestRank {
			best, bestRank = i, rank
			if rank <= 0 {
				break
			}
		}
	}
	return best
}

// starvedNormal returns the index of the oldest over-waited normal entry, or
// -1. Serving it first implements the §IV-D starvation guard.
func (s *Station) starvedNormal(now sim.Cycle) int {
	if s.cfg.MaxWait == 0 || len(s.normal) == 0 {
		return -1
	}
	e := &s.normal[0] // FCFS: index 0 is the oldest
	if e.ready <= now && now-e.enq > s.cfg.MaxWait {
		return 0
	}
	return -1
}

func (s *Station) removeNormal(i int, now sim.Cycle) *mem.Req {
	r := s.normal[i].req
	s.Stats.WaitCycles += uint64(now - s.normal[i].enq)
	copy(s.normal[i:], s.normal[i+1:])
	s.normal = s.normal[:len(s.normal)-1]
	return r
}

func (s *Station) removePrio(now sim.Cycle) *mem.Req {
	r := s.prio[0].req
	s.Stats.WaitCycles += uint64(now - s.prio[0].enq)
	copy(s.prio, s.prio[1:])
	s.prio = s.prio[:len(s.prio)-1]
	return r
}

// Tick forwards up to Bandwidth ready requests into the downstream acceptor.
// Priority-queue requests go first, except that a starved normal request is
// promoted ahead of them.
func (s *Station) Tick(now sim.Cycle) {
	if s.Fault != nil && s.Fault.HoldGrant(now) {
		return // injected arbitration stall: no grants this cycle
	}
	for n := 0; n < s.cfg.Bandwidth; n++ {
		var r *mem.Req
		var fromPrio bool
		var idx int

		if i := s.starvedNormal(now); i >= 0 {
			idx, fromPrio = i, false
			r = s.normal[i].req
			s.Stats.Promoted++
		} else if len(s.prio) > 0 && s.prio[0].ready <= now {
			r = s.prio[0].req
			fromPrio = true
		} else if i := s.pickNormal(now); i >= 0 {
			idx = i
			r = s.normal[i].req
		} else {
			return // nothing ready
		}

		var enq sim.Cycle
		if fromPrio {
			enq = s.prio[0].enq
		} else {
			enq = s.normal[idx].enq
		}
		if !s.down.Accept(r, now) {
			return // head-of-line blocking: downstream full
		}
		// Charge the residency only on successful hand-off: the downstream
		// Accept may already have stamped the request into its own stage,
		// which is why Depart takes the enqueue cycle explicitly.
		r.Depart(s.cfg.Component, enq, now, s.cfg.Latency)
		if fromPrio {
			s.removePrio(now)
		} else {
			s.removeNormal(idx, now)
		}
		s.Stats.Forwarded++
	}
}

// NextWork implements sim.IdleReporter. A station with no fault injector and
// no entry whose ready cycle has arrived performs no observable work in
// Tick (the grant loop returns at "nothing ready" before touching any
// state), so it sleeps until the earliest head ready cycle. Queue order
// implies ready order (ready = enqueue + fixed latency), so the two heads
// bound every entry — unless an injected latency spike broke that
// invariant, in which case the station stays dense until it drains.
func (s *Station) NextWork(now sim.Cycle) (sim.Cycle, bool) {
	if s.Fault != nil {
		return 0, false
	}
	if len(s.normal) == 0 && len(s.prio) == 0 {
		s.sawSpike = false
		return sim.NeverWork, true
	}
	if s.sawSpike {
		return 0, false
	}
	next := sim.NeverWork
	if len(s.prio) > 0 {
		if s.prio[0].ready <= now {
			return 0, false
		}
		next = s.prio[0].ready
	}
	if len(s.normal) > 0 {
		if s.normal[0].ready <= now {
			return 0, false
		}
		if s.normal[0].ready < next {
			next = s.normal[0].ready
		}
	}
	return next, true
}

// RegisterStats registers the station's instruments under prefix (e.g.
// "ic"): traffic counters, queue-depth gauges (the paper's Insight #1
// queueing evidence), and the per-epoch back-pressure (refusal) series.
func (s *Station) RegisterStats(reg *stats.Registry, prefix string) {
	st := &s.Stats
	reg.Counter(prefix+".accepted", func() uint64 { return st.Accepted })
	reg.Counter(prefix+".forwarded", func() uint64 { return st.Forwarded })
	reg.Counter(prefix+".refused", func() uint64 { return st.Refused })
	reg.Counter(prefix+".promoted", func() uint64 { return st.Promoted })
	reg.Counter(prefix+".wait_cycles", func() uint64 { return st.WaitCycles })
	reg.Rate(prefix+".refused_epoch", func() uint64 { return st.Refused })
	reg.Gauge(prefix+".qdepth_normal", func() float64 { return float64(len(s.normal)) })
	reg.Gauge(prefix+".qdepth_prio", func() float64 { return float64(len(s.prio)) })
}

// EachReq visits every queued request in deterministic order (priority queue
// first, then normal, both FCFS), for checkpoint layers that must enumerate
// in-flight requests identically before a snapshot and after its restore.
func (s *Station) EachReq(f func(*mem.Req)) {
	for i := range s.prio {
		f(s.prio[i].req)
	}
	for i := range s.normal {
		f(s.normal[i].req)
	}
}

// Drain reports whether both queues are empty.
func (s *Station) Drain() bool { return len(s.normal) == 0 && len(s.prio) == 0 }

// ResetStats zeroes the counters.
func (s *Station) ResetStats() { s.Stats = Stats{} }
