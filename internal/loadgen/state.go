package loadgen

import (
	"pivot/internal/cpu"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// SourceState is the serialisable form of a Source: the arrival process (RNG
// cursor, next-arrival clock, backlog and full arrival history — OnReqEnd
// indexes it by request ID), the in-flight program buffer, the recorded
// latencies, and the embedded request generator's cursors.
type SourceState struct {
	RNG         uint64
	NextArrival sim.Cycle
	Backlog     []uint64
	Arrival     []sim.Cycle
	Buf         []cpu.MicroOp
	BufPos      int
	Latencies   []uint32
	Started     uint64
	Completed   uint64
	Gen         workload.ReqGenState
}

// SnapshotState captures the source's complete mutable state.
func (s *Source) SnapshotState() SourceState {
	return SourceState{
		RNG:         s.rng.State(),
		NextArrival: s.nextArrival,
		Backlog:     append([]uint64(nil), s.backlog...),
		Arrival:     append([]sim.Cycle(nil), s.arrival...),
		Buf:         append([]cpu.MicroOp(nil), s.buf...),
		BufPos:      s.bufPos,
		Latencies:   append([]uint32(nil), s.latencies...),
		Started:     s.started,
		Completed:   s.completed,
		Gen:         s.gen.SnapshotState(),
	}
}

// RestoreState overwrites the source's mutable state from a snapshot taken on
// an identically configured source.
func (s *Source) RestoreState(st SourceState) {
	s.rng.SetState(st.RNG)
	s.nextArrival = st.NextArrival
	s.backlog = append(s.backlog[:0], st.Backlog...)
	s.arrival = append(s.arrival[:0], st.Arrival...)
	s.buf = append(s.buf[:0], st.Buf...)
	s.bufPos = st.BufPos
	s.latencies = append(s.latencies[:0], st.Latencies...)
	s.started = st.Started
	s.completed = st.Completed
	s.gen.RestoreState(st.Gen)
}
