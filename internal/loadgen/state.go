package loadgen

import (
	"pivot/internal/cpu"
	"pivot/internal/load"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// SourceState is the serialisable form of a Source: the arrival process
// (load-model cursor, next-arrival clock, backlog and full arrival history —
// OnReqEnd indexes it by request ID), the in-flight program buffer, the
// recorded latencies with the drop counter, per-phase completion counts, and
// the embedded request generator's cursors.
type SourceState struct {
	Model       load.ModelState
	NextArrival sim.Cycle
	HasNext     bool
	Backlog     []uint64
	Arrival     []sim.Cycle
	ReqPhase    []uint8
	Buf         []cpu.MicroOp
	BufPos      int
	Latencies   []uint32
	Started     uint64
	Completed   uint64
	LatDropped  uint64
	PhaseDone   []uint64
	Gen         workload.ReqGenState
}

// SnapshotState captures the source's complete mutable state.
func (s *Source) SnapshotState() SourceState {
	return SourceState{
		Model:       s.model.SnapshotState(),
		NextArrival: s.nextArrival,
		HasNext:     s.hasNext,
		Backlog:     append([]uint64(nil), s.backlog...),
		Arrival:     append([]sim.Cycle(nil), s.arrival...),
		ReqPhase:    append([]uint8(nil), s.reqPhase...),
		Buf:         append([]cpu.MicroOp(nil), s.buf...),
		BufPos:      s.bufPos,
		Latencies:   append([]uint32(nil), s.latencies...),
		Started:     s.started,
		Completed:   s.completed,
		LatDropped:  s.latDropped,
		PhaseDone:   append([]uint64(nil), s.phaseDone...),
		Gen:         s.gen.SnapshotState(),
	}
}

// RestoreState overwrites the source's mutable state from a snapshot taken on
// an identically configured source.
func (s *Source) RestoreState(st SourceState) {
	s.model.RestoreState(st.Model)
	s.nextArrival = st.NextArrival
	s.hasNext = st.HasNext
	s.backlog = append(s.backlog[:0], st.Backlog...)
	s.arrival = append(s.arrival[:0], st.Arrival...)
	s.reqPhase = append(s.reqPhase[:0], st.ReqPhase...)
	s.buf = append(s.buf[:0], st.Buf...)
	s.bufPos = st.BufPos
	s.latencies = append(s.latencies[:0], st.Latencies...)
	s.started = st.Started
	s.completed = st.Completed
	s.latDropped = st.LatDropped
	s.phaseDone = append(s.phaseDone[:0], st.PhaseDone...)
	s.gen.RestoreState(st.Gen)
}
