// Package loadgen drives latency-critical cores with an open-loop Poisson
// request arrival process and measures per-request service latency, from
// which the experiment harness derives 95th-percentile tail latency,
// load-latency curves, QoS knees and max load (Fig 12).
package loadgen

import (
	"sort"

	"pivot/internal/cpu"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// Source is an LC core's instruction stream: it queues Poisson request
// arrivals and emits each queued request's program in FIFO order. It
// implements cpu.Stream; wire OnReqEnd into the core's hooks.
type Source struct {
	gen *workload.ReqGen
	rng *sim.RNG
	now func() sim.Cycle

	meanInterarrival float64 // cycles; 0 = closed loop (back-to-back)
	nextArrival      sim.Cycle

	backlog []uint64 // reqIDs awaiting service
	arrival []sim.Cycle

	buf    []cpu.MicroOp
	bufPos int

	latencies []uint32 // completed request latencies (cycles)
	started   uint64
	completed uint64
	dropAfter int // cap on recorded latencies to bound memory
}

// New builds a source. meanInterarrival is the mean cycles between request
// arrivals (0 = closed loop: a new request arrives the moment the previous
// one is dequeued). clock supplies the current cycle.
func New(gen *workload.ReqGen, rng *sim.RNG, meanInterarrival float64, clock func() sim.Cycle) *Source {
	s := &Source{
		gen: gen, rng: rng, now: clock,
		meanInterarrival: meanInterarrival,
		dropAfter:        1 << 20,
	}
	if meanInterarrival > 0 {
		s.nextArrival = sim.Cycle(rng.Exp(meanInterarrival))
	}
	return s
}

// RecentMean returns the mean latency over the last n completed requests
// (0 when nothing completed). The hybrid isolation controller (§VII future
// work) regulates on this: PIVOT protects the tail, strong isolation the
// average.
func (s *Source) RecentMean(n int) float64 {
	lat := s.latencies
	if len(lat) == 0 {
		return 0
	}
	if n > 0 && len(lat) > n {
		lat = lat[len(lat)-n:]
	}
	var sum float64
	for _, v := range lat {
		sum += float64(v)
	}
	return sum / float64(len(lat))
}

// RatePerMCycle converts the source's arrival rate to requests per million
// cycles, the load unit used throughout the experiments.
func (s *Source) RatePerMCycle() float64 {
	if s.meanInterarrival <= 0 {
		return 0
	}
	return 1e6 / s.meanInterarrival
}

func (s *Source) pump(now sim.Cycle) {
	if s.meanInterarrival <= 0 {
		// Closed loop: keep exactly one request queued.
		if len(s.backlog) == 0 && s.bufPos >= len(s.buf) {
			s.admit(now)
		}
		return
	}
	for s.nextArrival <= now {
		s.admit(s.nextArrival)
		s.nextArrival += sim.Cycle(s.rng.Exp(s.meanInterarrival)) + 1
	}
}

func (s *Source) admit(at sim.Cycle) {
	id := uint64(len(s.arrival))
	s.arrival = append(s.arrival, at)
	s.backlog = append(s.backlog, id)
	s.started++
}

// Next implements cpu.Stream.
func (s *Source) Next(op *cpu.MicroOp) bool {
	now := s.now()
	s.pump(now)
	if s.bufPos >= len(s.buf) {
		if len(s.backlog) == 0 {
			return false // idle between requests
		}
		id := s.backlog[0]
		copy(s.backlog, s.backlog[1:])
		s.backlog = s.backlog[:len(s.backlog)-1]
		s.buf = s.gen.Generate(s.buf[:0], id)
		s.bufPos = 0
	}
	*op = s.buf[s.bufPos]
	s.bufPos++
	return true
}

// NextAvailable implements cpu.IdleStream. An open-loop source with the
// current request fully drained and no queued arrival is idle until its next
// Poisson arrival: Next would return false every cycle until then, and pump
// is pure while nextArrival lies in the future (the RNG is consumed only
// when an arrival is admitted). A closed-loop source always has work.
func (s *Source) NextAvailable(now sim.Cycle) (next sim.Cycle, idle bool) {
	if s.meanInterarrival <= 0 {
		return 0, false
	}
	if s.bufPos < len(s.buf) || len(s.backlog) > 0 {
		return 0, false
	}
	if s.nextArrival <= now {
		return 0, false
	}
	return s.nextArrival, true
}

// OnReqEnd records a completed request. Matches cpu.Hooks.OnReqEnd.
func (s *Source) OnReqEnd(reqID uint64, now sim.Cycle) {
	if reqID >= uint64(len(s.arrival)) {
		return
	}
	s.completed++
	if len(s.latencies) >= s.dropAfter {
		return
	}
	lat := now - s.arrival[reqID]
	s.latencies = append(s.latencies, uint32(lat))
}

// Latencies returns the recorded request latencies in completion order.
func (s *Source) Latencies() []uint32 { return s.latencies }

// RecentP95 returns the 95th-percentile latency over the last n completed
// requests — the online QoS signal software resource managers (PARTIES,
// CLITE) sample each decision epoch. It returns 0 when nothing completed.
func (s *Source) RecentP95(n int) uint32 {
	lat := s.latencies
	if len(lat) == 0 {
		return 0
	}
	if n > 0 && len(lat) > n {
		lat = lat[len(lat)-n:]
	}
	sorted := make([]uint32, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(0.95*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Completed reports the number of completed requests.
func (s *Source) Completed() uint64 { return s.completed }

// QueueDepth reports requests admitted but not yet dequeued — a saturation
// signal: an open-loop source past the knee grows this without bound.
func (s *Source) QueueDepth() int { return len(s.backlog) }

// ResetMeasurement clears recorded latencies (end of warm-up) while leaving
// the arrival process undisturbed.
func (s *Source) ResetMeasurement() {
	s.latencies = s.latencies[:0]
	s.completed = 0
}
