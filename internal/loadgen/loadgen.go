// Package loadgen drives latency-critical cores with a deterministic
// request arrival process described by an internal/load model — stationary
// open/closed-loop Poisson by default, or shaped (phase curves, on-off
// bursts, activity windows) for datacenter-realistic dynamics — and
// measures per-request service latency, from which the experiment harness
// derives 95th-percentile tail latency, load-latency curves, QoS knees and
// max load (Fig 12).
package loadgen

import (
	"sort"

	"pivot/internal/cpu"
	"pivot/internal/load"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// Source is an LC core's instruction stream: it queues request arrivals
// drawn from its load model and emits each queued request's program in FIFO
// order. It implements cpu.Stream; wire OnReqEnd into the core's hooks.
type Source struct {
	gen   *workload.ReqGen
	model load.Model
	now   func() sim.Cycle

	nextArrival sim.Cycle
	hasNext     bool // false once the model has ceased (open loop only)

	backlog  []uint64 // reqIDs awaiting service
	arrival  []sim.Cycle
	reqPhase []uint8 // load-model phase tag per admitted request

	buf    []cpu.MicroOp
	bufPos int

	latencies  []uint32 // completed request latencies (cycles)
	started    uint64
	completed  uint64
	latDropped uint64   // completions past the latency-record cap
	phaseDone  []uint64 // completions per load-model phase
	dropAfter  int      // cap on recorded latencies to bound memory
}

// New builds a source driving requests from model. clock supplies the
// current cycle. The model's first arrival is drawn here, eagerly, so the
// source can always quote its exact next-work cycle to the skip-ahead
// engine.
func New(gen *workload.ReqGen, model load.Model, clock func() sim.Cycle) *Source {
	s := &Source{
		gen: gen, model: model, now: clock,
		phaseDone: make([]uint64, model.NumPhases()),
		dropAfter: 1 << 20,
	}
	if !model.Closed() {
		s.nextArrival, s.hasNext = model.NextArrival(0)
	}
	return s
}

// Model exposes the source's load model (telemetry only — callers must not
// advance it).
func (s *Source) Model() load.Model { return s.model }

// RecentMean returns the mean latency over the last n completed requests
// (0 when nothing completed). The hybrid isolation controller (§VII future
// work) regulates on this: PIVOT protects the tail, strong isolation the
// average.
func (s *Source) RecentMean(n int) float64 {
	lat := s.latencies
	if len(lat) == 0 {
		return 0
	}
	if n > 0 && len(lat) > n {
		lat = lat[len(lat)-n:]
	}
	var sum float64
	for _, v := range lat {
		sum += float64(v)
	}
	return sum / float64(len(lat))
}

// RatePerMCycle converts the source's arrival rate at cycle now to requests
// per million cycles, the load unit used throughout the experiments. The
// cycle is explicit rather than read from the source's clock: the stats
// sampler calls this at epoch barriers, where the engine clock is identical
// across the dense, skip-ahead and sharded-parallel engines but a shard's
// local replay clock may sit a cycle past the barrier.
func (s *Source) RatePerMCycle(now sim.Cycle) float64 {
	return s.model.Rate(now) * 1e6
}

func (s *Source) pump(now sim.Cycle) {
	if s.model.Closed() {
		// Closed loop: keep exactly one request queued.
		if len(s.backlog) == 0 && s.bufPos >= len(s.buf) {
			s.admit(now)
		}
		return
	}
	for s.hasNext && s.nextArrival <= now {
		s.admit(s.nextArrival)
		s.nextArrival, s.hasNext = s.model.NextArrival(s.nextArrival)
	}
}

func (s *Source) admit(at sim.Cycle) {
	id := uint64(len(s.arrival))
	s.arrival = append(s.arrival, at)
	s.reqPhase = append(s.reqPhase, uint8(s.model.Phase()))
	s.backlog = append(s.backlog, id)
	s.started++
}

// Next implements cpu.Stream.
func (s *Source) Next(op *cpu.MicroOp) bool {
	now := s.now()
	s.pump(now)
	if s.bufPos >= len(s.buf) {
		if len(s.backlog) == 0 {
			return false // idle between requests
		}
		id := s.backlog[0]
		copy(s.backlog, s.backlog[1:])
		s.backlog = s.backlog[:len(s.backlog)-1]
		s.buf = s.gen.Generate(s.buf[:0], id)
		s.bufPos = 0
	}
	*op = s.buf[s.bufPos]
	s.bufPos++
	return true
}

// NextAvailable implements cpu.IdleStream. An open-loop source with the
// current request fully drained and no queued arrival is idle until its
// next arrival: Next would return false every cycle until then, and pump is
// pure while nextArrival lies in the future (the model's RNG is consumed
// only when an arrival is admitted, and the following arrival is already
// drawn). A closed-loop source always has work; a ceased source (all
// activity windows exhausted, or a phase program that ended at zero rate)
// never has work again.
func (s *Source) NextAvailable(now sim.Cycle) (next sim.Cycle, idle bool) {
	if s.model.Closed() {
		return 0, false
	}
	if s.bufPos < len(s.buf) || len(s.backlog) > 0 {
		return 0, false
	}
	if !s.hasNext {
		return sim.NeverWork, true
	}
	if s.nextArrival <= now {
		return 0, false
	}
	return s.nextArrival, true
}

// OnReqEnd records a completed request. Matches cpu.Hooks.OnReqEnd.
func (s *Source) OnReqEnd(reqID uint64, now sim.Cycle) {
	if reqID >= uint64(len(s.arrival)) {
		return
	}
	s.completed++
	if p := int(s.reqPhase[reqID]); p < len(s.phaseDone) {
		s.phaseDone[p]++
	}
	if len(s.latencies) >= s.dropAfter {
		s.latDropped++ // counted, stats-visible: long runs must not silently truncate the tail
		return
	}
	lat := now - s.arrival[reqID]
	s.latencies = append(s.latencies, uint32(lat))
}

// Latencies returns the recorded request latencies in completion order.
func (s *Source) Latencies() []uint32 { return s.latencies }

// DroppedLatencies reports completions whose latency record was discarded
// because the per-source cap (1Mi records) was reached. Any non-zero value
// means recorded percentiles cover a truncated prefix of the run.
func (s *Source) DroppedLatencies() uint64 { return s.latDropped }

// PhaseCompleted reports completed-request counts per load-model phase tag
// (a single element for stationary and closed-loop sources).
func (s *Source) PhaseCompleted() []uint64 { return s.phaseDone }

// RecentP95 returns the 95th-percentile latency over the last n completed
// requests — the online QoS signal software resource managers (PARTIES,
// CLITE) sample each decision epoch. It returns 0 when nothing completed.
func (s *Source) RecentP95(n int) uint32 {
	lat := s.latencies
	if len(lat) == 0 {
		return 0
	}
	if n > 0 && len(lat) > n {
		lat = lat[len(lat)-n:]
	}
	sorted := make([]uint32, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(0.95*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Completed reports the number of completed requests.
func (s *Source) Completed() uint64 { return s.completed }

// QueueDepth reports requests admitted but not yet dequeued — a saturation
// signal: an open-loop source past the knee grows this without bound.
func (s *Source) QueueDepth() int { return len(s.backlog) }

// ResetMeasurement clears recorded latencies and completion counters (end
// of warm-up) while leaving the arrival process undisturbed.
func (s *Source) ResetMeasurement() {
	s.latencies = s.latencies[:0]
	s.completed = 0
	s.latDropped = 0
	for i := range s.phaseDone {
		s.phaseDone[i] = 0
	}
}
