package loadgen

import (
	"testing"

	"pivot/internal/cpu"
	"pivot/internal/load"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

func newSource(meanIA float64, clock *sim.Cycle) *Source {
	gen := workload.NewReqGen(workload.LCApps()[workload.Silo], 0, sim.NewRNG(1))
	model := load.New(load.Spec{Mean: meanIA}, sim.NewRNG(2))
	return New(gen, model, func() sim.Cycle { return *clock })
}

func TestOpenLoopArrivalRate(t *testing.T) {
	var now sim.Cycle
	s := newSource(1000, &now)
	var op cpu.MicroOp
	// Drain everything over a long horizon, consuming ops as fast as they
	// exist so arrivals, not service, bound the request count.
	for now = 0; now < 1_000_000; now++ {
		for s.Next(&op) {
			if op.Flags&cpu.FlagReqEnd != 0 {
				s.OnReqEnd(op.ReqID, now)
			}
		}
	}
	got := float64(s.started)
	if got < 900 || got > 1100 {
		t.Fatalf("arrivals = %.0f over 1M cycles at mean 1000, want ~1000", got)
	}
	if s.Completed() != s.started {
		t.Fatalf("completed %d != started %d with instant service", s.Completed(), s.started)
	}
}

func TestClosedLoopKeepsOneRequest(t *testing.T) {
	var now sim.Cycle
	s := newSource(0, &now)
	var op cpu.MicroOp
	for now = 0; now < 10_000; now++ {
		if !s.Next(&op) {
			t.Fatal("closed-loop source ran dry")
		}
		if op.Flags&cpu.FlagReqEnd != 0 {
			s.OnReqEnd(op.ReqID, now)
		}
		if s.QueueDepth() > 1 {
			t.Fatalf("closed loop queued %d requests", s.QueueDepth())
		}
	}
	if s.Completed() == 0 {
		t.Fatal("closed loop completed nothing")
	}
}

func TestLatencyIncludesQueueing(t *testing.T) {
	var now sim.Cycle
	s := newSource(100, &now)
	var op cpu.MicroOp
	// Serve nothing for 10k cycles: requests pile up.
	now = 10_000
	if !s.Next(&op) {
		t.Fatal("no op after arrivals accumulated")
	}
	if s.QueueDepth() < 50 {
		t.Fatalf("queue depth %d, want ~100 backlogged arrivals", s.QueueDepth())
	}
	// Complete the first request now: latency spans the wait.
	for {
		if op.Flags&cpu.FlagReqEnd != 0 {
			s.OnReqEnd(op.ReqID, now)
			break
		}
		if !s.Next(&op) {
			t.Fatal("request ops ran out before ReqEnd")
		}
	}
	lat := s.Latencies()
	if len(lat) != 1 {
		t.Fatalf("latencies recorded = %d, want 1", len(lat))
	}
	if lat[0] < 9000 {
		t.Fatalf("latency %d does not include queueing delay", lat[0])
	}
}

func TestResetMeasurement(t *testing.T) {
	var now sim.Cycle
	s := newSource(0, &now)
	var op cpu.MicroOp
	for now = 0; now < 5000; now++ {
		s.Next(&op)
		if op.Flags&cpu.FlagReqEnd != 0 {
			s.OnReqEnd(op.ReqID, now)
			op.Flags = 0
		}
	}
	if len(s.Latencies()) == 0 {
		t.Fatal("setup: no latencies before reset")
	}
	s.ResetMeasurement()
	if len(s.Latencies()) != 0 || s.Completed() != 0 {
		t.Fatal("reset left measurement state")
	}
}

func TestRecentP95(t *testing.T) {
	var now sim.Cycle
	s := newSource(0, &now)
	// Inject synthetic latencies directly.
	for i := 1; i <= 100; i++ {
		s.latencies = append(s.latencies, uint32(i))
	}
	if got := s.RecentP95(0); got != 95 {
		t.Fatalf("RecentP95(all) = %d, want 95", got)
	}
	// Window of the last 10 (91..100): p95 ≈ 100.
	if got := s.RecentP95(10); got < 99 {
		t.Fatalf("RecentP95(10) = %d, want ~100", got)
	}
	s.latencies = nil
	if got := s.RecentP95(10); got != 0 {
		t.Fatalf("RecentP95 on empty = %d, want 0", got)
	}
}

func TestLatencyDropCounterAtCap(t *testing.T) {
	var now sim.Cycle
	s := newSource(0, &now)
	s.dropAfter = 4 // shrink the 1Mi cap so the test exercises it
	var op cpu.MicroOp
	for now = 0; now < 20_000; now++ {
		s.Next(&op)
		if op.Flags&cpu.FlagReqEnd != 0 {
			s.OnReqEnd(op.ReqID, now)
			op.Flags = 0
		}
	}
	if s.Completed() <= 4 {
		t.Fatalf("setup: only %d completions, need more than the cap", s.Completed())
	}
	if got := len(s.Latencies()); got != 4 {
		t.Fatalf("recorded %d latencies, want cap of 4", got)
	}
	if want := s.Completed() - 4; s.DroppedLatencies() != want {
		t.Fatalf("DroppedLatencies = %d, want %d (completions past the cap are counted, not silent)",
			s.DroppedLatencies(), want)
	}
	s.ResetMeasurement()
	if s.DroppedLatencies() != 0 {
		t.Fatal("ResetMeasurement left the drop counter set")
	}
}

func TestPhaseAttribution(t *testing.T) {
	var now sim.Cycle
	gen := workload.NewReqGen(workload.LCApps()[workload.Silo], 0, sim.NewRNG(1))
	model := load.New(load.Spec{
		Mean: 500,
		Phases: []load.Phase{
			{Shape: load.ShapeFlat, Cycles: 50_000, Scale: 1},
			{Shape: load.ShapeFlat, Cycles: 50_000, Scale: 0.5},
		},
		Repeat: true,
	}, sim.NewRNG(2))
	s := New(gen, model, func() sim.Cycle { return now })
	var op cpu.MicroOp
	for now = 0; now < 200_000; now++ {
		for s.Next(&op) {
			if op.Flags&cpu.FlagReqEnd != 0 {
				s.OnReqEnd(op.ReqID, now)
			}
		}
	}
	done := s.PhaseCompleted()
	if len(done) != 2 {
		t.Fatalf("PhaseCompleted has %d phases, want 2", len(done))
	}
	if done[0]+done[1] != s.Completed() {
		t.Fatalf("phase counts %v do not sum to completed %d", done, s.Completed())
	}
	if done[0] == 0 || done[1] == 0 {
		t.Fatalf("phase counts %v: both phases should complete requests", done)
	}
	if done[0] <= done[1] {
		t.Fatalf("phase counts %v: the full-rate phase should complete more than the half-rate one", done)
	}
}

func TestRatePerMCycle(t *testing.T) {
	var now sim.Cycle
	if got := newSource(2000, &now).RatePerMCycle(now); got != 500 {
		t.Fatalf("rate = %v, want 500", got)
	}
	if got := newSource(0, &now).RatePerMCycle(now); got != 0 {
		t.Fatalf("closed-loop rate = %v, want 0", got)
	}
}
