package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"pivot/internal/cpu"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	ops := []cpu.MicroOp{
		{PC: 0x400000, Kind: cpu.OpLoad, Dest: 1, Src1: 1, Addr: 0xDEADBEEF00, Lat: 0},
		{PC: 0x400004, Kind: cpu.OpALU, Dest: 2, Src1: 1, Src2: 2, Lat: 3},
		{PC: 0x400008, Kind: cpu.OpStore, Src1: 1, Addr: 0x1000},
		{PC: 0x40000C, Kind: cpu.OpALU, Src1: 1, Lat: 1, Flags: cpu.FlagReqEnd, ReqID: 42},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("count = %d, want 4", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got cpu.MicroOp
	for i, want := range ops {
		if !r.Next(&got) {
			t.Fatalf("trace ended at op %d", i)
		}
		if got != want {
			t.Fatalf("op %d = %+v, want %+v", i, got, want)
		}
	}
	if r.Next(&got) {
		t.Fatal("trace yielded more ops than written")
	}
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header accepted")
	}
	bad := make([]byte, 16)
	if _, err := NewReader(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Fatalf("bad magic error = %v", err)
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Close()
	raw := buf.Bytes()
	raw[4] = 99 // corrupt version
	if _, err := NewReader(bytes.NewReader(raw)); err != ErrBadVersion {
		t.Fatalf("bad version error = %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(cpu.MicroOp{PC: 1})
	_ = w.Close()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3])) // cut mid-record
	if err != nil {
		t.Fatal(err)
	}
	var op cpu.MicroOp
	if r.Next(&op) {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestRecordStreamFromWorkload(t *testing.T) {
	// Record 5000 ops of a BE stream, replay, and compare against a fresh
	// identical generator: replay must be bit-exact.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	src := workload.NewBEStream(workload.BEApps()[workload.GraphAn], 1, sim.NewRNG(7))
	n, err := RecordStream(src, w, 5000)
	if err != nil || n != 5000 {
		t.Fatalf("recorded %d ops, err %v", n, err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.NewBEStream(workload.BEApps()[workload.GraphAn], 1, sim.NewRNG(7))
	var got, want cpu.MicroOp
	for i := 0; i < 5000; i++ {
		if !r.Next(&got) || !ref.Next(&want) {
			t.Fatalf("stream ended early at %d", i)
		}
		if got != want {
			t.Fatalf("op %d drifted: %+v vs %+v", i, got, want)
		}
	}
}

// TestRoundTripProperty: arbitrary ops survive serialisation.
func TestRoundTripProperty(t *testing.T) {
	f := func(pc, addr, reqid uint64, kind, dest, src1, src2, lat, flags uint8) bool {
		in := cpu.MicroOp{
			PC: pc, Kind: cpu.OpKind(kind % 3), Dest: cpu.RegID(dest),
			Src1: cpu.RegID(src1), Src2: cpu.RegID(src2),
			Addr: addr, Lat: lat, Flags: flags, ReqID: reqid,
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		if w.Write(in) != nil || w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var out cpu.MicroOp
		return r.Next(&out) && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
