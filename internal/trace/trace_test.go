package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"testing"
	"testing/quick"

	"pivot/internal/cpu"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	ops := []cpu.MicroOp{
		{PC: 0x400000, Kind: cpu.OpLoad, Dest: 1, Src1: 1, Addr: 0xDEADBEEF00, Lat: 0},
		{PC: 0x400004, Kind: cpu.OpALU, Dest: 2, Src1: 1, Src2: 2, Lat: 3},
		{PC: 0x400008, Kind: cpu.OpStore, Src1: 1, Addr: 0x1000},
		{PC: 0x40000C, Kind: cpu.OpALU, Src1: 1, Lat: 1, Flags: cpu.FlagReqEnd, ReqID: 42},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("count = %d, want 4", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got cpu.MicroOp
	for i, want := range ops {
		if !r.Next(&got) {
			t.Fatalf("trace ended at op %d", i)
		}
		if got != want {
			t.Fatalf("op %d = %+v, want %+v", i, got, want)
		}
	}
	if r.Next(&got) {
		t.Fatal("trace yielded more ops than written")
	}
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header accepted")
	}
	bad := make([]byte, 16)
	if _, err := NewReader(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Fatalf("bad magic error = %v", err)
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Close()
	raw := buf.Bytes()
	raw[4] = 99 // corrupt version
	if _, err := NewReader(bytes.NewReader(raw)); err != ErrBadVersion {
		t.Fatalf("bad version error = %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(cpu.MicroOp{PC: 1})
	_ = w.Close()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3])) // cut mid-record
	if err != nil {
		t.Fatal(err)
	}
	var op cpu.MicroOp
	if r.Next(&op) {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestRecordStreamFromWorkload(t *testing.T) {
	// Record 5000 ops of a BE stream, replay, and compare against a fresh
	// identical generator: replay must be bit-exact.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	src := workload.NewBEStream(workload.BEApps()[workload.GraphAn], 1, sim.NewRNG(7))
	n, err := RecordStream(src, w, 5000)
	if err != nil || n != 5000 {
		t.Fatalf("recorded %d ops, err %v", n, err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.NewBEStream(workload.BEApps()[workload.GraphAn], 1, sim.NewRNG(7))
	var got, want cpu.MicroOp
	for i := 0; i < 5000; i++ {
		if !r.Next(&got) || !ref.Next(&want) {
			t.Fatalf("stream ended early at %d", i)
		}
		if got != want {
			t.Fatalf("op %d drifted: %+v vs %+v", i, got, want)
		}
	}
}

// TestRoundTripProperty: arbitrary ops survive serialisation.
func TestRoundTripProperty(t *testing.T) {
	f := func(pc, addr, reqid uint64, kind, dest, src1, src2, lat, flags uint8) bool {
		in := cpu.MicroOp{
			PC: pc, Kind: cpu.OpKind(kind % 3), Dest: cpu.RegID(dest),
			Src1: cpu.RegID(src1), Src2: cpu.RegID(src2),
			Addr: addr, Lat: lat, Flags: flags, ReqID: reqid,
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		if w.Write(in) != nil || w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var out cpu.MicroOp
		return r.Next(&out) && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCloseBackpatchesCount writes a trace to a real file (an io.Seeker) and
// checks Close rewrites the header's op-count field, that a Reader sees the
// declared count, and that truncation past the declared count is detected by
// the count-bounded read loop.
func TestCloseBackpatchesCount(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "trace-*.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	const n = 37
	for i := 0; i < n; i++ {
		if err := w.Write(cpu.MicroOp{PC: uint64(0x1000 + 4*i), Kind: cpu.OpALU, Lat: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The raw header field at offset 8 must carry the count.
	raw := make([]byte, 16)
	if _, err := f.ReadAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(raw[8:]); got != n {
		t.Fatalf("header count = %d, want %d", got, n)
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Declared() != n {
		t.Fatalf("Declared() = %d, want %d", r.Declared(), n)
	}
	var op cpu.MicroOp
	var read int
	for r.Next(&op) {
		read++
	}
	if read != n || r.Err() != nil {
		t.Fatalf("read %d ops (err %v), want %d", read, r.Err(), n)
	}
}

// TestCloseNonSeekableKeepsZeroCount: a bytes.Buffer writer cannot be
// backpatched; the header count stays zero and readers run to EOF.
func TestCloseNonSeekableKeepsZeroCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(cpu.MicroOp{PC: 0x10, Kind: cpu.OpALU}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Declared() != 0 {
		t.Fatalf("Declared() = %d, want 0 for non-seekable target", r.Declared())
	}
	var op cpu.MicroOp
	if !r.Next(&op) || op.PC != 0x10 {
		t.Fatal("op did not survive non-seekable round trip")
	}
	if r.Next(&op) {
		t.Fatal("phantom op after EOF")
	}
}
