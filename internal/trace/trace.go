// Package trace records and replays micro-op instruction streams. A trace
// decouples workload generation from simulation the way gem5's trace-driven
// modes do: capture one run's stream once, then replay it bit-for-bit while
// varying the machine or policy under test — any behavioural difference is
// then attributable to the machine, not the workload.
//
// The format is a compact little-endian binary stream: a 16-byte header
// (magic, version, op count) followed by fixed-width op records.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pivot/internal/cpu"
)

// Magic identifies a trace stream.
const Magic = 0x50495654 // "PIVT"

// Version is the current trace format version.
const Version = 1

const recordBytes = 8 + 1 + 1 + 1 + 1 + 8 + 1 + 1 + 8 // PC,kind,dest,src1,src2,addr,lat,flags,reqid

var (
	// ErrBadMagic marks a stream that is not a trace.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrBadVersion marks an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported version")
)

// Writer serialises micro-ops. It wraps the target in a buffered writer;
// call Close to flush and finalise the header count.
type Writer struct {
	dst   io.Writer
	w     *bufio.Writer
	count uint64
	buf   [recordBytes]byte
	err   error
}

// NewWriter emits a header and returns a Writer. The op count in the header
// is written as zero and corrected by Close only if w is also an io.Seeker;
// Readers tolerate a zero count by reading to EOF.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	// hdr[8:16] = op count, fixed up on Close when possible.
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{dst: w, w: bw}, nil
}

// Write appends one op.
func (t *Writer) Write(op cpu.MicroOp) error {
	if t.err != nil {
		return t.err
	}
	b := t.buf[:]
	binary.LittleEndian.PutUint64(b[0:], op.PC)
	b[8] = byte(op.Kind)
	b[9] = byte(op.Dest)
	b[10] = byte(op.Src1)
	b[11] = byte(op.Src2)
	binary.LittleEndian.PutUint64(b[12:], op.Addr)
	b[20] = op.Lat
	b[21] = op.Flags
	binary.LittleEndian.PutUint64(b[22:], op.ReqID)
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return err
	}
	t.count++
	return nil
}

// Count reports the ops written so far.
func (t *Writer) Count() uint64 { return t.count }

// Close flushes buffered records and, when the target is an io.Seeker,
// backpatches the header's op count so Readers learn the exact length up
// front. Non-seekable targets keep the zero count (read-to-EOF).
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	if err := t.w.Flush(); err != nil {
		t.err = err
		return err
	}
	s, ok := t.dst.(io.Seeker)
	if !ok {
		return nil
	}
	if _, err := s.Seek(8, io.SeekStart); err != nil {
		t.err = err
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], t.count)
	if _, err := t.dst.Write(cnt[:]); err != nil {
		t.err = err
		return err
	}
	if _, err := s.Seek(0, io.SeekEnd); err != nil {
		t.err = err
		return err
	}
	return nil
}

// Reader deserialises a trace and implements cpu.Stream.
type Reader struct {
	r     *bufio.Reader
	buf   [recordBytes]byte
	count uint64 // declared ops (0 = unknown, read to EOF)
	read  uint64
	err   error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return nil, ErrBadMagic
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != Version {
		return nil, ErrBadVersion
	}
	return &Reader{r: br, count: binary.LittleEndian.Uint64(hdr[8:])}, nil
}

// Next implements cpu.Stream: it fills op with the next record, or reports
// false at end of trace (or on a read error, recorded in Err).
func (t *Reader) Next(op *cpu.MicroOp) bool {
	if t.err != nil {
		return false
	}
	if t.count > 0 && t.read >= t.count {
		return false
	}
	if _, err := io.ReadFull(t.r, t.buf[:]); err != nil {
		if err != io.EOF {
			t.err = err
		}
		return false
	}
	b := t.buf[:]
	op.PC = binary.LittleEndian.Uint64(b[0:])
	op.Kind = cpu.OpKind(b[8])
	op.Dest = cpu.RegID(b[9])
	op.Src1 = cpu.RegID(b[10])
	op.Src2 = cpu.RegID(b[11])
	op.Addr = binary.LittleEndian.Uint64(b[12:])
	op.Lat = b[20]
	op.Flags = b[21]
	op.ReqID = binary.LittleEndian.Uint64(b[22:])
	t.read++
	return true
}

// Declared reports the op count recorded in the header (0 = unknown; the
// stream came from a non-seekable writer and must be read to EOF).
func (t *Reader) Declared() uint64 { return t.count }

// Err reports a mid-stream decode error (nil on clean EOF).
func (t *Reader) Err() error { return t.err }

// Read reports the ops consumed so far.
func (t *Reader) Read() uint64 { return t.read }

// RecordStream drains up to max ops from src into w and returns the count.
// A max of 0 records until the source goes dry.
func RecordStream(src cpu.Stream, w *Writer, max uint64) (uint64, error) {
	var op cpu.MicroOp
	var n uint64
	for (max == 0 || n < max) && src.Next(&op) {
		if err := w.Write(op); err != nil {
			return n, err
		}
		n++
	}
	return n, w.Close()
}
