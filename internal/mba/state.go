package mba

import "pivot/internal/sim"

// ThrottleState is the serialisable form of the MBA throttle: the programmed
// levels (managers change them at run time), the per-partition gap timers and
// the delay counter.
type ThrottleState struct {
	Level   [8]int
	NextOK  [8]sim.Cycle
	Delayed uint64
}

// SnapshotState captures the throttle's mutable state.
func (t *Throttle) SnapshotState() ThrottleState {
	return ThrottleState{Level: t.level, NextOK: t.nextOK, Delayed: t.Delayed}
}

// RestoreState overwrites the throttle's mutable state from a snapshot.
func (t *Throttle) RestoreState(s ThrottleState) {
	t.level = s.Level
	t.nextOK = s.NextOK
	t.Delayed = s.Delayed
}
