// Package mba models Intel Memory Bandwidth Allocation: a programmable
// throttle sitting between each core's L2 and the shared LLC that inserts
// delays into a partition's request stream, capping its request rate at a
// percentage of the unthrottled rate. This is the "strong isolation by
// underutilisation" baseline of the paper (§II-B).
package mba

import (
	"pivot/internal/interconnect"
	"pivot/internal/mem"
	"pivot/internal/sim"
)

// Throttle gates requests per PARTID before they reach the interconnect.
// A level of 100 means unthrottled; level L < 100 enforces a minimum gap
// between consecutive requests sized so the partition's request rate is L%
// of one request per baseGap cycles.
//
// The throttle is an interconnect.Acceptor only, never a sim.Ticker: it
// mutates state (nextOK, Delayed) only inside Accept, which is reached
// exclusively from port flushes. It cooperates with the skip-ahead engine
// through HeldUntil, which lets the machine's auxTicker report a real
// NextWork bound — instead of pinning every slot dense — while a port's
// head-of-line request sits in an MBA-inserted delay.
type Throttle struct {
	down    interconnect.Acceptor
	baseGap sim.Cycle

	level  [8]int // percent, 10..100
	nextOK [8]sim.Cycle

	// Delayed counts requests that were held back at least once.
	Delayed uint64
}

// New builds a throttle in front of down. baseGap is the unthrottled
// per-request service interval used to scale delays (typically the DRAM
// burst time).
func New(down interconnect.Acceptor, baseGap sim.Cycle) *Throttle {
	t := &Throttle{down: down, baseGap: baseGap}
	for i := range t.level {
		t.level[i] = 100
	}
	return t
}

// SetLevel programs PartID p's allowed bandwidth percentage (clamped to
// [2, 100]; Intel MBA's nominal floor is the 10% class, but its calibrated
// delay values throttle far below the nominal percentage in practice, which
// the paper's MBA baseline relies on to protect bandwidth-hungry LC tasks).
func (t *Throttle) SetLevel(p mem.PartID, percent int) {
	if percent < 2 {
		percent = 2
	}
	if percent > 100 {
		percent = 100
	}
	if int(p) < len(t.level) {
		t.level[p] = percent
	}
}

// Level returns PartID p's current throttle level.
func (t *Throttle) Level(p mem.PartID) int {
	if int(p) < len(t.level) {
		return t.level[p]
	}
	return 100
}

// gap returns the enforced inter-request gap for level percent.
func (t *Throttle) gap(percent int) sim.Cycle {
	if percent >= 100 {
		return 0
	}
	// rate = percent/100 requests per baseGap => gap = baseGap*100/percent.
	return t.baseGap * sim.Cycle(100) / sim.Cycle(percent)
}

// HeldUntil reports whether a request of PartID p offered at cycle now
// would be refused by the inserted delay, and if so the first cycle at
// which the throttle itself would let it through. The bound only covers
// the throttle's own state: a request released at until may still be
// refused downstream, so callers must treat until as a wake-up cycle, not
// an acceptance guarantee.
func (t *Throttle) HeldUntil(p mem.PartID, now sim.Cycle) (until sim.Cycle, held bool) {
	if int(p) >= len(t.level) {
		return 0, false
	}
	if t.gap(t.level[p]) > 0 && now < t.nextOK[p] {
		return t.nextOK[p], true
	}
	return 0, false
}

// Accept implements interconnect.Acceptor with delay insertion.
func (t *Throttle) Accept(r *mem.Req, now sim.Cycle) bool {
	p := int(r.Part)
	if p >= len(t.level) {
		return t.down.Accept(r, now)
	}
	g := t.gap(t.level[p])
	if g > 0 && now < t.nextOK[p] {
		t.Delayed++
		return false // hold the request upstream: the inserted delay
	}
	if !t.down.Accept(r, now) {
		return false
	}
	if g > 0 {
		t.nextOK[p] = now + g
	}
	return true
}
