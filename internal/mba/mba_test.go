package mba

import (
	"testing"

	"pivot/internal/interconnect"
	"pivot/internal/mem"
	"pivot/internal/sim"
)

type sink struct{ n int }

func (s *sink) Accept(r *mem.Req, now sim.Cycle) bool {
	s.n++
	return true
}

var _ interconnect.Acceptor = (*Throttle)(nil)

func TestUnthrottledPassThrough(t *testing.T) {
	dn := &sink{}
	th := New(dn, 8)
	for i := 0; i < 10; i++ {
		if !th.Accept(&mem.Req{Part: 1}, sim.Cycle(i)) {
			t.Fatal("unthrottled accept failed")
		}
	}
	if dn.n != 10 {
		t.Fatalf("forwarded %d, want 10", dn.n)
	}
}

func TestThrottledRate(t *testing.T) {
	dn := &sink{}
	th := New(dn, 8)
	th.SetLevel(1, 50) // 50%: one request per 16 cycles
	accepted := 0
	for now := sim.Cycle(0); now < 160; now++ {
		if th.Accept(&mem.Req{Part: 1}, now) {
			accepted++
		}
	}
	if accepted != 10 {
		t.Fatalf("accepted %d in 160 cycles at 50%%, want 10 (1 per 16)", accepted)
	}
	if th.Delayed == 0 {
		t.Fatal("throttle delayed nothing")
	}
}

func TestPerPartIsolation(t *testing.T) {
	dn := &sink{}
	th := New(dn, 8)
	th.SetLevel(1, 10)
	// Part 2 is unthrottled and must not be slowed by part 1's gap.
	for now := sim.Cycle(0); now < 10; now++ {
		th.Accept(&mem.Req{Part: 1}, now)
		if !th.Accept(&mem.Req{Part: 2}, now) {
			t.Fatal("unthrottled part delayed by a foreign gap")
		}
	}
}

func TestLevelClamping(t *testing.T) {
	th := New(&sink{}, 8)
	th.SetLevel(1, 0)
	if got := th.Level(1); got != 2 {
		t.Fatalf("level clamped to %d, want 2", got)
	}
	th.SetLevel(1, 150)
	if got := th.Level(1); got != 100 {
		t.Fatalf("level clamped to %d, want 100", got)
	}
	if got := th.Level(200); got != 100 {
		t.Fatalf("out-of-range part level = %d, want 100", got)
	}
}

func TestGapScalesWithLevel(t *testing.T) {
	th := New(&sink{}, 8)
	if g10, g50 := th.gap(10), th.gap(50); g10 <= g50 {
		t.Fatalf("gap(10)=%d should exceed gap(50)=%d", g10, g50)
	}
	if th.gap(100) != 0 {
		t.Fatal("level 100 must be gapless")
	}
}
