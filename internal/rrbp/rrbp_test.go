package rrbp

import (
	"testing"
	"testing/quick"
)

func cfg() Config {
	return Config{Entries: 16, CounterMax: 63, RefreshCycles: 1000,
		LowThreshold: 1, HighThreshold: 4}
}

func TestConsecutiveLongStallsFlag(t *testing.T) {
	tb := New(cfg()) // starts at the conservative (high) threshold
	pc := uint64(0x400000)
	for i := 0; i < 3; i++ {
		tb.RecordRetire(pc, true)
	}
	if tb.IsCritical(pc) {
		t.Fatal("flagged below the high threshold")
	}
	tb.RecordRetire(pc, true)
	if !tb.IsCritical(pc) {
		t.Fatal("not flagged at the high threshold")
	}
}

func TestShortStallDecrementsCounter(t *testing.T) {
	tb := New(cfg())
	pc := uint64(0x400000)
	// Alternating long/short keeps the counter near zero: never critical at
	// the conservative threshold.
	for i := 0; i < 50; i++ {
		tb.RecordRetire(pc, true)
		tb.RecordRetire(pc, false)
	}
	if tb.IsCritical(pc) {
		t.Fatal("alternating stalls must not flag under the high threshold")
	}
}

func TestStickyFlagSurvivesThresholdRaise(t *testing.T) {
	tb := New(cfg())
	tb.SetUnderBandwidth(true) // aggressive: threshold 1
	pc := uint64(0x400000)
	tb.RecordRetire(pc, true)
	if !tb.IsCritical(pc) {
		t.Fatal("aggressive mode should flag after one long stall")
	}
	tb.SetUnderBandwidth(false) // conservative again
	// Even a decrement below the new threshold must not unflag within the
	// window (that oscillation is exactly what stickiness prevents).
	tb.RecordRetire(pc, false)
	if !tb.IsCritical(pc) {
		t.Fatal("sticky flag lost on threshold raise")
	}
}

func TestRefreshClears(t *testing.T) {
	tb := New(cfg())
	pc := uint64(0x400000)
	for i := 0; i < 10; i++ {
		tb.RecordRetire(pc, true)
	}
	if !tb.IsCritical(pc) {
		t.Fatal("setup: pc should be critical")
	}
	tb.MaybeRefresh(500) // below interval: no-op
	if !tb.IsCritical(pc) {
		t.Fatal("refresh fired early")
	}
	tb.MaybeRefresh(1500)
	if tb.IsCritical(pc) {
		t.Fatal("refresh did not clear the flag")
	}
	if tb.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", tb.Refreshes)
	}
}

func TestCounterSaturation(t *testing.T) {
	c := cfg()
	c.CounterMax = 3
	tb := New(c)
	pc := uint64(0x400000)
	for i := 0; i < 100; i++ {
		tb.RecordRetire(pc, true)
	}
	counters, _ := tb.Snapshot()
	for _, v := range counters {
		if v > 3 {
			t.Fatalf("counter %d exceeds CounterMax 3", v)
		}
	}
}

func TestAliasingSharesEntries(t *testing.T) {
	c := cfg()
	c.Entries = 1 // everything aliases
	tb := New(c)
	tb.SetUnderBandwidth(true)
	tb.RecordRetire(0x1000, true)
	if !tb.IsCritical(0x9999_0000) {
		t.Fatal("1-entry table should alias all PCs onto one counter")
	}
}

func TestUnlimitedTableNoAliasing(t *testing.T) {
	c := cfg()
	c.Entries = 0 // fully associative
	tb := New(c)
	tb.SetUnderBandwidth(true)
	tb.RecordRetire(0x1000, true)
	if !tb.IsCritical(0x1000) {
		t.Fatal("recorded pc not critical")
	}
	if tb.IsCritical(0x2000) {
		t.Fatal("unlimited table aliased distinct PCs")
	}
	tb.MaybeRefresh(5000)
	if tb.IsCritical(0x1000) {
		t.Fatal("unlimited table not cleared by refresh")
	}
}

func TestThresholdSwitch(t *testing.T) {
	tb := New(cfg())
	if tb.Threshold() != 4 {
		t.Fatalf("initial threshold = %d, want conservative 4", tb.Threshold())
	}
	tb.SetUnderBandwidth(true)
	if tb.Threshold() != 1 {
		t.Fatalf("aggressive threshold = %d, want 1", tb.Threshold())
	}
	tb.SetUnderBandwidth(false)
	if tb.Threshold() != 4 {
		t.Fatalf("conservative threshold = %d, want 4", tb.Threshold())
	}
}

func TestStorageBits(t *testing.T) {
	if got := New(DefaultConfig()).StorageBits(); got != 384 {
		t.Fatalf("default table storage = %d bits, want 384 (64x6)", got)
	}
	c := DefaultConfig()
	c.Entries = 0
	if got := New(c).StorageBits(); got != 0 {
		t.Fatal("idealised unlimited table has no hardware storage cost")
	}
}

// TestCounterNeverNegative: any interleaving of long/short retirements keeps
// counters within [0, CounterMax].
func TestCounterBoundsProperty(t *testing.T) {
	f := func(events []bool, pcs []uint8) bool {
		tb := New(cfg())
		for i, long := range events {
			pc := uint64(0x1000)
			if len(pcs) > 0 {
				pc += uint64(pcs[i%len(pcs)]) * 4
			}
			tb.RecordRetire(pc, long)
		}
		counters, _ := tb.Snapshot()
		for _, v := range counters {
			if v > tb.cfg.CounterMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	d := DefaultConfig()
	if d.Entries != 64 || d.CounterMax != 63 || d.RefreshCycles != 1_000_000 {
		t.Fatalf("default config drifted from the paper: %+v", d)
	}
}
