package rrbp

import (
	"sort"

	"pivot/internal/sim"
)

// UnlimitedEntryState is one (pc → counter/flag) pair of the unlimited table
// variant, sorted by PC for deterministic encoding.
type UnlimitedEntryState struct {
	PC      uint64
	Counter uint8
	Flag    bool
}

// TableState is the serialisable form of an RRBP table: counters, sticky
// flags, the adaptive threshold, the refresh clock and the statistics.
type TableState struct {
	Counters    []uint8
	Flags       []bool
	Unlimited   []UnlimitedEntryState
	Threshold   uint8
	LastRefresh sim.Cycle
	LongStalls  uint64
	Flagged     uint64
	Lookups     uint64
	Refreshes   uint64
}

// SnapshotState captures the table's complete mutable state.
func (t *Table) SnapshotState() TableState {
	s := TableState{
		Counters:    append([]uint8(nil), t.counters...),
		Flags:       append([]bool(nil), t.flags...),
		Threshold:   t.threshold,
		LastRefresh: t.lastRefresh,
		LongStalls:  t.LongStalls,
		Flagged:     t.Flagged,
		Lookups:     t.Lookups,
		Refreshes:   t.Refreshes,
	}
	if t.unlimited != nil {
		// A zero counter is behaviourally identical to an absent entry —
		// reads see the map's zero value either way and decay only touches
		// positive counters — so the canonical encoding omits it. Without
		// this, a PC whose counter decayed to exactly zero survives as a map
		// key in the live table but not in a restored one, and a resumed
		// run's snapshot diverges byte-wise from an uninterrupted run's
		// (found by the scenfuzz checkpoint oracle).
		for pc, c := range t.unlimited {
			if c > 0 {
				s.Unlimited = append(s.Unlimited, UnlimitedEntryState{PC: pc, Counter: c, Flag: t.unlFlags[pc]})
			}
		}
		for pc, f := range t.unlFlags {
			if f && t.unlimited[pc] == 0 {
				s.Unlimited = append(s.Unlimited, UnlimitedEntryState{PC: pc, Flag: true})
			}
		}
		sort.Slice(s.Unlimited, func(i, j int) bool { return s.Unlimited[i].PC < s.Unlimited[j].PC })
	}
	return s
}

// RestoreState overwrites the table's mutable state from a snapshot taken on
// an identically configured table.
func (t *Table) RestoreState(s TableState) {
	if t.counters != nil {
		copy(t.counters, s.Counters)
		copy(t.flags, s.Flags)
	}
	if t.unlimited != nil {
		clear(t.unlimited)
		clear(t.unlFlags)
		for _, e := range s.Unlimited {
			if e.Counter > 0 {
				t.unlimited[e.PC] = e.Counter
			}
			if e.Flag {
				t.unlFlags[e.PC] = true
			}
		}
	}
	t.threshold = s.Threshold
	t.lastRefresh = s.LastRefresh
	t.LongStalls = s.LongStalls
	t.Flagged = s.Flagged
	t.Lookups = s.Lookups
	t.Refreshes = s.Refreshes
}
