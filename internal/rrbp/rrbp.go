// Package rrbp implements PIVOT's Runtime ROB Block Predictor (§IV-C): a
// small, direct-mapped, tagless table counting how often each (potentially
// critical) load instruction caused a long ROB stall. A load entering the
// load queue is flagged as actually performance-critical when its counter
// reaches a threshold; the threshold adapts to the LC task's bandwidth usage
// so PIVOT prioritises more loads when the task is under its expected
// bandwidth and fewer when it is over.
package rrbp

import (
	"pivot/internal/sim"
	"pivot/internal/stats"
)

// Config sets the table geometry and behaviour.
type Config struct {
	// Entries is the number of direct-mapped entries (64 in the paper).
	// Zero means an unlimited, fully-associative table (the Fig 22 ideal).
	Entries int
	// CounterMax saturates the per-entry stall counters (6 bits → 63).
	CounterMax uint8
	// RefreshCycles clears the table periodically (1 M cycles default) so
	// phase changes in the LC task are tracked.
	RefreshCycles sim.Cycle
	// LowThreshold is used while the LC task is under its expected
	// bandwidth (include more loads), HighThreshold otherwise.
	LowThreshold  uint8
	HighThreshold uint8
}

// DefaultConfig returns the paper's configuration: 64 entries, 6-bit
// counters, 1 M-cycle refresh. The low threshold includes any load that
// long-stalled at all (aggressive mode, used while the LC task is starved of
// its expected bandwidth); the high threshold requires several *consecutive*
// long stalls, which only the dependent-chain loads exhibit (conservative
// mode, used once the LC task's bandwidth recovered).
func DefaultConfig() Config {
	return Config{
		Entries:       64,
		CounterMax:    63,
		RefreshCycles: 1_000_000,
		LowThreshold:  1,
		HighThreshold: 4,
	}
}

// Table is the RRBP. Not safe for concurrent use.
type Table struct {
	cfg       Config
	counters  []uint8
	flags     []bool // sticky critical flags, cleared at refresh
	unlimited map[uint64]uint8
	unlFlags  map[uint64]bool
	threshold uint8

	lastRefresh sim.Cycle

	// Stats.
	LongStalls uint64
	Flagged    uint64
	Lookups    uint64
	Refreshes  uint64
}

// New builds a table from cfg, starting at the low threshold.
func New(cfg Config) *Table {
	if cfg.CounterMax == 0 {
		cfg.CounterMax = 63
	}
	if cfg.LowThreshold == 0 {
		cfg.LowThreshold = 1
	}
	if cfg.HighThreshold < cfg.LowThreshold {
		cfg.HighThreshold = cfg.LowThreshold
	}
	t := &Table{cfg: cfg, threshold: cfg.HighThreshold}
	if cfg.Entries > 0 {
		t.counters = make([]uint8, cfg.Entries)
		t.flags = make([]bool, cfg.Entries)
	} else {
		t.unlimited = make(map[uint64]uint8)
		t.unlFlags = make(map[uint64]bool)
	}
	return t
}

// Config returns the table configuration.
func (t *Table) Config() Config { return t.cfg }

func (t *Table) index(pc uint64) int {
	// Instructions are word-aligned; fold upper bits in so different apps'
	// PC ranges spread across the table.
	h := (pc >> 2) ^ (pc >> 14)
	return int(h % uint64(len(t.counters)))
}

// RecordRetire notes a retired potential-set load: a long ROB stall
// increments the entry's counter, a short one decrements it. The decrement
// is what separates the dependent-chain loads (which long-stall on *every*
// execution while unprotected, so their counters climb monotonically) from
// payload loads whose occasional long stalls drown in short retirements and
// drift back to zero. A plain total count cannot make that separation under
// feedback: once a flagged chase load is prioritised it stops stalling and
// its total freezes below a payload load's slow creep. A decrement (rather
// than a reset) keeps the tagless table robust to aliasing: an occasional
// short retirement from a co-resident load nudges a hot entry down by one
// instead of erasing it.
func (t *Table) RecordRetire(pc uint64, long bool) {
	if !long {
		if t.counters != nil {
			if i := t.index(pc); t.counters[i] > 0 {
				t.counters[i]--
			}
		} else if c := t.unlimited[pc]; c > 0 {
			t.unlimited[pc] = c - 1
		}
		return
	}
	t.LongStalls++
	if t.counters != nil {
		i := t.index(pc)
		if t.counters[i] < t.cfg.CounterMax {
			t.counters[i]++
		}
		return
	}
	if c := t.unlimited[pc]; c < t.cfg.CounterMax {
		t.unlimited[pc] = c + 1
	}
}

// RecordLongStall is RecordRetire(pc, true), kept for tests and callers that
// only observe long stalls.
func (t *Table) RecordLongStall(pc uint64) { t.RecordRetire(pc, true) }

// IsCritical reports whether the load at pc should carry the critical bit.
// A flag is sticky within a refresh window: once an entry's long-stall count
// crosses the threshold that was active at the time, the entry stays
// critical until the next refresh. Without stickiness, the adaptive
// threshold would oscillate — flagging a chase load stops its stalls, its
// counter freezes below a raised threshold, it is unflagged, stalls again —
// and the tail latency of the LC task would be dominated by those gaps.
func (t *Table) IsCritical(pc uint64) bool {
	t.Lookups++
	if t.counters != nil {
		i := t.index(pc)
		if t.flags[i] || t.counters[i] >= t.threshold {
			t.flags[i] = true
			t.Flagged++
			return true
		}
		return false
	}
	if t.unlFlags[pc] || t.unlimited[pc] >= t.threshold {
		t.unlFlags[pc] = true
		t.Flagged++
		return true
	}
	return false
}

// SkipLookups applies the side effects of n elided IsCritical(pc) calls made
// under skip-ahead while the table is otherwise untouched (the probing core
// is parked, so no retire, refresh or threshold flip can interleave): the
// lookup counter grows by n, and — because the flag is sticky — a critical
// verdict repeats identically for all n probes.
func (t *Table) SkipLookups(pc uint64, n uint64) {
	t.Lookups += n
	if t.counters != nil {
		i := t.index(pc)
		if t.flags[i] || t.counters[i] >= t.threshold {
			t.flags[i] = true
			t.Flagged += n
		}
		return
	}
	if t.unlFlags[pc] || t.unlimited[pc] >= t.threshold {
		t.unlFlags[pc] = true
		t.Flagged += n
	}
}

// SetUnderBandwidth switches the threshold: under=true means the LC task is
// consuming less than its expected bandwidth, so PIVOT aggressively includes
// more loads from the potential set.
func (t *Table) SetUnderBandwidth(under bool) {
	if under {
		t.threshold = t.cfg.LowThreshold
	} else {
		t.threshold = t.cfg.HighThreshold
	}
}

// Threshold returns the active flagging threshold.
func (t *Table) Threshold() uint8 { return t.threshold }

// MaybeRefresh clears the table if the refresh interval elapsed.
func (t *Table) MaybeRefresh(now sim.Cycle) {
	if t.cfg.RefreshCycles == 0 || now-t.lastRefresh < t.cfg.RefreshCycles {
		return
	}
	t.lastRefresh = now
	t.Refreshes++
	if t.counters != nil {
		for i := range t.counters {
			t.counters[i] = 0
			t.flags[i] = false
		}
		return
	}
	clear(t.unlimited)
	clear(t.unlFlags)
}

// RegisterStats registers the table's instruments under prefix: convergence
// counters (long stalls observed, lookups flagged critical, refreshes) and
// the adaptive-threshold gauge, whose low/high flips chart the §IV-C
// bandwidth feedback loop over time.
func (t *Table) RegisterStats(reg *stats.Registry, prefix string) {
	reg.Counter(prefix+".long_stalls", func() uint64 { return t.LongStalls })
	reg.Counter(prefix+".flagged", func() uint64 { return t.Flagged })
	reg.Counter(prefix+".lookups", func() uint64 { return t.Lookups })
	reg.Counter(prefix+".refreshes", func() uint64 { return t.Refreshes })
	reg.Rate(prefix+".flagged_epoch", func() uint64 { return t.Flagged })
	reg.Gauge(prefix+".threshold", func() float64 { return float64(t.threshold) })
}

// Snapshot returns copies of the table's counters and sticky flags, for
// tests and diagnostics (nil for the unlimited variant).
func (t *Table) Snapshot() (counters []uint8, flags []bool) {
	if t.counters == nil {
		return nil, nil
	}
	c := make([]uint8, len(t.counters))
	f := make([]bool, len(t.flags))
	copy(c, t.counters)
	copy(f, t.flags)
	return c, f
}

// StorageBits returns the table's hardware storage cost in bits, matching
// the paper's §IV-E budget arithmetic (entries × 6-bit counters).
func (t *Table) StorageBits() int {
	if t.cfg.Entries == 0 {
		return 0 // the unlimited table is an idealisation, not hardware
	}
	return t.cfg.Entries * 6
}
