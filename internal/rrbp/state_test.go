package rrbp

import (
	"reflect"
	"testing"
)

func unlimitedConfig() Config {
	cfg := DefaultConfig()
	cfg.Entries = 0
	return cfg
}

// TestUnlimitedSnapshotCanonical: a counter that decayed to exactly zero
// leaves a map key behind in the live table; the snapshot must omit it, so a
// restored table and the original serialise identically (regression for a
// resumed-vs-uninterrupted state divergence found by the scenfuzz checkpoint
// oracle).
func TestUnlimitedSnapshotCanonical(t *testing.T) {
	tb := New(unlimitedConfig())
	const hot, decayed = 0x400100, 0x400200
	tb.RecordLongStall(hot)
	tb.RecordLongStall(hot)
	tb.RecordLongStall(decayed)
	tb.RecordRetire(decayed, false) // 1 → 0: key stays in the map
	if _, ok := tb.unlimited[decayed]; !ok {
		t.Fatalf("test setup: decayed pc lost its map entry")
	}

	s := tb.SnapshotState()
	for _, e := range s.Unlimited {
		if e.PC == decayed {
			t.Fatalf("zero-counter entry %+v serialised; encoding not canonical", e)
		}
	}

	fresh := New(unlimitedConfig())
	fresh.RestoreState(s)
	if got := fresh.SnapshotState(); !reflect.DeepEqual(s, got) {
		t.Fatalf("restore → snapshot not a fixed point:\nbefore: %+v\nafter:  %+v", s, got)
	}
}

// TestUnlimitedFlagOnlySurvivesRoundTrip: a sticky flag whose counter is
// gone (post-refresh clear) must survive snapshot/restore.
func TestUnlimitedFlagOnlySurvivesRoundTrip(t *testing.T) {
	tb := New(unlimitedConfig())
	const pc = 0x400300
	for i := 0; i < 8; i++ {
		tb.RecordLongStall(pc)
	}
	if !tb.IsCritical(pc) {
		t.Fatalf("pc not flagged after %d long stalls", 8)
	}
	// Decay the counter all the way back to zero; the sticky flag remains.
	for i := 0; i < 16; i++ {
		tb.RecordRetire(pc, false)
	}
	s := tb.SnapshotState()
	fresh := New(unlimitedConfig())
	fresh.RestoreState(s)
	if got := fresh.SnapshotState(); !reflect.DeepEqual(s, got) {
		t.Fatalf("restore → snapshot not a fixed point:\nbefore: %+v\nafter:  %+v", s, got)
	}
	// IsCritical mutates lookup stats, so probe only after the comparison.
	if !fresh.IsCritical(pc) {
		t.Fatalf("sticky flag lost across snapshot/restore")
	}
}
