package faultinject

import (
	"testing"

	"pivot/internal/machine"
	"pivot/internal/mem"
)

// TestAttachPlanTargetsOnlyNamedStations: a plan installs injectors on
// exactly its stations, each drawing from its own per-station stream.
func TestAttachPlanTargetsOnlyNamedStations(t *testing.T) {
	m := testMachine(t, machine.Options{Policy: machine.PolicyDefault})
	plan := Plan{Seed: 9, Stations: map[mem.Component]Config{
		mem.CompBus:     {DropProb: 0.05},
		mem.CompMemCtrl: {SpikeProb: 0.05, SpikeCycles: 50},
	}}
	inj := AttachPlan(m, plan)
	if len(inj) != 2 {
		t.Fatalf("AttachPlan installed %d injectors, want 2", len(inj))
	}
	m.Run(20_000, 60_000)
	if c := inj[mem.CompBus].Counts; c.Drops == 0 || c.Spikes != 0 {
		t.Errorf("Bus counts %+v, want drops only", c)
	}
	if c := inj[mem.CompMemCtrl].Counts; c.Spikes == 0 || c.Drops != 0 {
		t.Errorf("MemCtrl counts %+v, want spikes only", c)
	}
}

// TestAttachPlanDeterministic: the same plan on the same machine replays to
// identical per-station counts and simulated results.
func TestAttachPlanDeterministic(t *testing.T) {
	plan := Plan{Seed: 21, Stations: map[mem.Component]Config{
		mem.CompInterconnect: {DropProb: 0.02, HoldProb: 0.01},
		mem.CompBWCtrl:       {SpikeProb: 0.03, SpikeCycles: 80},
	}}
	run := func() (map[mem.Component]*Injector, uint64) {
		m := testMachine(t, machine.Options{Policy: machine.PolicyDefault})
		inj := AttachPlan(m, plan)
		m.Run(20_000, 60_000)
		return inj, m.BECommitted()
	}
	inj1, be1 := run()
	inj2, be2 := run()
	if be1 != be2 {
		t.Fatalf("BE committed diverged: %d vs %d", be1, be2)
	}
	for comp, a := range inj1 {
		if b := inj2[comp].Counts; a.Counts != b {
			t.Fatalf("station %v counts diverged: %+v vs %+v", comp, a.Counts, b)
		}
	}
}

// TestDetachRestoresSnapshotability: a fault-attached machine refuses to
// snapshot; Detach makes the same machine serialisable again.
func TestDetachRestoresSnapshotability(t *testing.T) {
	m := testMachine(t, machine.Options{Policy: machine.PolicyDefault})
	AttachPlan(m, Plan{Seed: 3, Stations: map[mem.Component]Config{
		mem.CompBus: {DropProb: 0.01},
	}})
	m.Run(10_000, 20_000)
	if _, err := m.SnapshotState(); err == nil {
		t.Fatalf("fault-attached machine snapshotted; injector state would be silently lost")
	}
	Detach(m)
	if _, err := m.SnapshotState(); err != nil {
		t.Fatalf("SnapshotState after Detach: %v", err)
	}
}
