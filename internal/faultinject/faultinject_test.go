package faultinject

import (
	"context"
	"errors"
	"testing"

	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

func testMachine(t *testing.T, opt machine.Options) *machine.Machine {
	t.Helper()
	tasks := []machine.TaskSpec{
		{Kind: machine.TaskLC, LC: workload.LCApps()[workload.Masstree], MeanInterarrival: 2500, Seed: 1},
		{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 10},
		{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 11},
		{Kind: machine.TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 12},
	}
	m, err := machine.New(machine.KunpengConfig(4), opt, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Same seed, same config, same machine: the campaign must replay exactly —
// identical per-station counts and identical simulated results.
func TestInjectionDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.02, SpikeProb: 0.05, SpikeCycles: 40, HoldProb: 0.01}
	run := func() (map[mem.Component]*Injector, uint64) {
		m := testMachine(t, machine.Options{Policy: machine.PolicyDefault})
		inj := Attach(m, cfg)
		m.Run(30_000, 80_000)
		return inj, m.BECommitted()
	}
	inj1, be1 := run()
	inj2, be2 := run()
	if be1 != be2 {
		t.Fatalf("BE committed diverged under identical injection: %d vs %d", be1, be2)
	}
	var total Counts
	for _, comp := range mem.MSCs {
		c1, c2 := inj1[comp].Counts, inj2[comp].Counts
		if c1 != c2 {
			t.Fatalf("station %v counts diverged: %+v vs %+v", comp, c1, c2)
		}
		total.Drops += c1.Drops
		total.Spikes += c1.Spikes
		total.Holds += c1.Holds
	}
	if total.Drops == 0 || total.Spikes == 0 || total.Holds == 0 {
		t.Fatalf("campaign injected nothing: %+v", total)
	}
}

// Per-station seeds must differ, so two stations with the same probabilities
// do not inject in lockstep.
func TestStationStreamsIndependent(t *testing.T) {
	m := testMachine(t, machine.Options{Policy: machine.PolicyDefault})
	inj := Attach(m, Config{Seed: 7, SpikeProb: 0.2, SpikeCycles: 10})
	m.Run(20_000, 60_000)
	spikes := make(map[uint64]int)
	for _, comp := range mem.MSCs {
		spikes[inj[comp].Counts.Spikes]++
	}
	if len(spikes) < 2 {
		t.Fatalf("all stations injected identical spike counts %v — streams are correlated", spikes)
	}
}

// Faults are conservative: an audited run under a mixed drop/spike campaign
// must stay invariant-clean, and dropped accepts must surface as station
// refusals (back-pressure, not loss).
func TestFaultsConserveRequests(t *testing.T) {
	m := testMachine(t, machine.Options{Policy: machine.PolicyPIVOT, Audit: true})
	inj := Attach(m, Config{Seed: 99, DropProb: 0.05, SpikeProb: 0.05, SpikeCycles: 60})
	if err := m.RunChecked(context.Background(), 40_000, 100_000); err != nil {
		t.Fatalf("audited run under injection failed: %v", err)
	}
	if err := m.AuditNow(); err != nil {
		t.Fatalf("final audit under injection: %v", err)
	}
	var drops uint64
	for _, comp := range mem.MSCs {
		drops += inj[comp].Counts.Drops
	}
	if drops == 0 {
		t.Fatal("drop campaign dropped nothing")
	}
	d := m.Diagnose()
	if d.IC.Refused+d.Bus.Refused+d.BWCtrl.Refused+d.MemCtrl.Refused == 0 {
		t.Fatal("drops never surfaced as station refusals")
	}
}

// A total grant hold wedges the memory system; the watchdog must convert the
// silent hang into a StallError carrying a diagnostic.
func TestTotalHoldTripsWatchdog(t *testing.T) {
	m := testMachine(t, machine.Options{Policy: machine.PolicyDefault, WatchdogWindow: 5_000})
	Attach(m, Config{Seed: 3, HoldProb: 1})
	err := m.StepChecked(context.Background(), 200_000)
	var se *machine.StallError
	if !errors.As(err, &se) {
		t.Fatalf("wedged machine returned %v, want *StallError", err)
	}
	if _, ok := machine.DiagOf(err); !ok {
		t.Fatal("stall error carries no diagnostic")
	}
}

// PanicAfter fires a real panic from deep inside the simulation loop.
// (Recovery into a RunError is the harness's job — proven in
// internal/harness tests; here we only pin the trigger itself.)
func TestPanicAfterFires(t *testing.T) {
	m := testMachine(t, machine.Options{Policy: machine.PolicyDefault})
	Attach(m, Config{Seed: 5, SpikeProb: 0.5, SpikeCycles: 5, PanicAfter: 100})
	defer func() {
		if recover() == nil {
			t.Fatal("PanicAfter never fired")
		}
	}()
	m.Run(50_000, 100_000)
}

var _ mem.Fault = (*Injector)(nil)

// Injector decisions must be cheap: the zero-probability fast path takes no
// RNG draw, so an attached-but-idle injector cannot perturb timing.
func TestZeroProbabilityDrawsNothing(t *testing.T) {
	in := New(Config{Seed: 1})
	for c := sim.Cycle(0); c < 1000; c++ {
		if in.DropAccept(c) || in.ExtraLatency(c) != 0 || in.HoldGrant(c) {
			t.Fatal("zero-probability injector injected")
		}
	}
	if (in.Counts != Counts{}) {
		t.Fatalf("zero-probability injector counted events: %+v", in.Counts)
	}
}
