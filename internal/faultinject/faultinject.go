// Package faultinject provides deterministic, seed-derived fault injection
// for the four shared memory-system components. An Injector implements
// mem.Fault: it perturbs a station's admission (transient queue-full), its
// service time (latency spikes) and its arbitration (delayed grants) from a
// private RNG stream, so a seeded campaign is exactly reproducible and two
// stations' injections never interfere.
//
// Faults are conservative by construction — a dropped Accept leaves the
// request with its upstream owner, a spike only delays readiness, a held
// grant only postpones forwarding — so the machine's request-conservation
// invariant holds under any injection mix. Tests use that to prove the
// watchdog, the auditor and the back-pressure paths fire for real.
package faultinject

import (
	"fmt"

	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/sim"
)

// Config parameterises one injector. Probabilities are per decision (one
// DropAccept decision per offered request, one HoldGrant decision per
// station tick).
type Config struct {
	Seed uint64

	// DropProb refuses an offered request as if the queue were full.
	DropProb float64
	// SpikeProb adds SpikeCycles of traversal latency to an accepted
	// request.
	SpikeProb   float64
	SpikeCycles sim.Cycle
	// HoldProb makes the station grant nothing this cycle.
	HoldProb float64

	// PanicAfter, when non-zero, panics on the Nth injected event — the
	// harness tests use it to prove a mid-simulation panic is recovered into
	// a structured RunError instead of crashing the sweep.
	PanicAfter uint64
}

// Counts tallies what an injector actually did.
type Counts struct {
	Drops  uint64
	Spikes uint64
	Holds  uint64
}

// Injector implements mem.Fault deterministically. Not safe for concurrent
// use; each machine's simulation goroutine owns its injectors.
type Injector struct {
	cfg Config
	rng *sim.RNG

	Counts Counts
}

// New builds an injector over its own seed-derived RNG stream.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: sim.NewRNG(cfg.Seed ^ 0xFA417)}
}

func (in *Injector) event() {
	if in.cfg.PanicAfter == 0 {
		return
	}
	if n := in.Counts.Drops + in.Counts.Spikes + in.Counts.Holds; n >= in.cfg.PanicAfter {
		panic(fmt.Sprintf("faultinject: injected panic after %d events", n))
	}
}

// DropAccept implements mem.Fault.
func (in *Injector) DropAccept(now sim.Cycle) bool {
	if in.cfg.DropProb <= 0 || in.rng.Float64() >= in.cfg.DropProb {
		return false
	}
	in.Counts.Drops++
	in.event()
	return true
}

// ExtraLatency implements mem.Fault.
func (in *Injector) ExtraLatency(now sim.Cycle) sim.Cycle {
	if in.cfg.SpikeProb <= 0 || in.rng.Float64() >= in.cfg.SpikeProb {
		return 0
	}
	in.Counts.Spikes++
	in.event()
	return in.cfg.SpikeCycles
}

// HoldGrant implements mem.Fault.
func (in *Injector) HoldGrant(now sim.Cycle) bool {
	if in.cfg.HoldProb <= 0 || in.rng.Float64() >= in.cfg.HoldProb {
		return false
	}
	in.Counts.Holds++
	in.event()
	return true
}

// Attach installs one injector per MSC station on m, each with a seed
// derived from cfg.Seed and the station's component id so streams stay
// independent. It returns the injectors keyed by component for inspection.
func Attach(m *machine.Machine, cfg Config) map[mem.Component]*Injector {
	plan := Plan{Seed: cfg.Seed, Stations: make(map[mem.Component]Config, len(mem.MSCs))}
	for _, comp := range mem.MSCs {
		plan.Stations[comp] = cfg
	}
	return AttachPlan(m, plan)
}

// Plan is a per-station fault campaign: only the named stations get
// injectors, each with its own rates. The scenario layer's `faults` stanza
// compiles to a Plan (exp.FaultPlanFor).
type Plan struct {
	// Seed derives every station's private RNG stream (per-station Config
	// seeds are ignored; the station's component id separates the streams).
	Seed     uint64
	Stations map[mem.Component]Config
}

// AttachPlan installs the plan's injectors on m and returns them keyed by
// component for inspection. Stations absent from the plan keep whatever
// fault model they had (normally none).
func AttachPlan(m *machine.Machine, plan Plan) map[mem.Component]*Injector {
	out := make(map[mem.Component]*Injector, len(plan.Stations))
	for _, comp := range mem.MSCs {
		cfg, ok := plan.Stations[comp]
		if !ok {
			continue
		}
		cfg.Seed = plan.Seed + uint64(comp)*0x9E3779B97F4A7C15
		in := New(cfg)
		if err := m.SetFault(comp, in); err != nil {
			panic(err) // unreachable: mem.MSCs are exactly the injectable set
		}
		out[comp] = in
	}
	return out
}

// Detach removes every MSC fault injector from m — after a fault-injected
// run completes, detaching restores the machine's snapshotability so
// differential oracles can compare its serialised state.
func Detach(m *machine.Machine) {
	for _, comp := range mem.MSCs {
		if err := m.SetFault(comp, nil); err != nil {
			panic(err) // unreachable: mem.MSCs are exactly the injectable set
		}
	}
}
