package cbp

import "testing"

func TestBlockCountThreshold(t *testing.T) {
	p := New(Config{Entries: 16, Variant: BlockCount, Threshold: 3, CounterMax: 63})
	pc := uint64(0x400000)
	p.RecordStall(pc)
	p.RecordStall(pc)
	if p.IsCritical(pc) {
		t.Fatal("flagged below threshold")
	}
	p.RecordStall(pc)
	if !p.IsCritical(pc) {
		t.Fatal("not flagged at threshold")
	}
}

func TestBinaryVariant(t *testing.T) {
	p := New(Config{Entries: 16, Variant: Binary, Threshold: 10, CounterMax: 63})
	pc := uint64(0x400000)
	if p.IsCritical(pc) {
		t.Fatal("untouched entry critical")
	}
	p.RecordStall(pc)
	if !p.IsCritical(pc) {
		t.Fatal("binary variant needs only one stall")
	}
}

// TestAliasingFailureMode pins the §VIII-B argument: with a data-center-size
// instruction footprint, unrelated loads hash onto hot entries and are
// mispredicted as critical.
func TestAliasingFailureMode(t *testing.T) {
	p := New(Config{Entries: 4, Variant: BlockCount, Threshold: 1, CounterMax: 63})
	for pc := uint64(0); pc < 64; pc += 4 {
		p.RecordStall(0x1000 + pc)
	}
	aliased := 0
	for pc := uint64(0); pc < 64; pc += 4 {
		if p.IsCritical(0x9000 + pc) { // PCs that never stalled
			aliased++
		}
	}
	if aliased == 0 {
		t.Fatal("small table showed no aliasing under a large footprint")
	}
}

func TestRefresh(t *testing.T) {
	p := New(Config{Entries: 8, Variant: BlockCount, Threshold: 1, CounterMax: 63, RefreshCycles: 100})
	p.RecordStall(0x40)
	if !p.IsCritical(0x40) {
		t.Fatal("setup failed")
	}
	p.MaybeRefresh(50)
	if !p.IsCritical(0x40) {
		t.Fatal("refresh fired early")
	}
	p.MaybeRefresh(150)
	if p.IsCritical(0x40) {
		t.Fatal("refresh did not clear")
	}
}

func TestSaturation(t *testing.T) {
	p := New(Config{Entries: 1, Variant: BlockCount, Threshold: 1, CounterMax: 2})
	for i := 0; i < 100; i++ {
		p.RecordStall(0x40)
	}
	if p.counters[0] != 2 {
		t.Fatalf("counter = %d, want saturated at 2", p.counters[0])
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Config{})
	if len(p.counters) != 64 {
		t.Fatalf("default entries = %d, want 64", len(p.counters))
	}
}
