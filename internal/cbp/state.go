package cbp

import "pivot/internal/sim"

// PredictorState is the serialisable form of a CBP table.
type PredictorState struct {
	Counters    []uint8
	LastRefresh sim.Cycle
	LongStalls  uint64
	Flagged     uint64
	Lookups     uint64
}

// SnapshotState captures the predictor's complete mutable state.
func (p *Predictor) SnapshotState() PredictorState {
	return PredictorState{
		Counters:    append([]uint8(nil), p.counters...),
		LastRefresh: p.lastRefresh,
		LongStalls:  p.LongStalls,
		Flagged:     p.Flagged,
		Lookups:     p.Lookups,
	}
}

// RestoreState overwrites the predictor's mutable state from a snapshot taken
// on an identically configured predictor.
func (p *Predictor) RestoreState(s PredictorState) {
	copy(p.counters, s.Counters)
	p.lastRefresh = s.LastRefresh
	p.LongStalls = s.LongStalls
	p.Flagged = s.Flagged
	p.Lookups = s.Lookups
}
