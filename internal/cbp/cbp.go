// Package cbp reimplements the Criticality-Based Prediction baseline of
// Ghose et al. (ISCA'13) as used in the paper's §VI-B comparison: a purely
// runtime load-criticality predictor near the ROB, with no offline profiling.
// Two variants are modelled:
//
//   - BlockCount: counts how many times each (aliased) table entry's loads
//     stalled the ROB; a load is critical when its count passes a threshold.
//   - Binary: a load is critical if its entry has stalled the ROB at all
//     since the last refresh.
//
// Because CBP observes *every* load — without PIVOT's offline filtering —
// data-center instruction footprints alias heavily in the small table, which
// is exactly the failure mode the paper describes (§VIII-B).
package cbp

import "pivot/internal/sim"

// Variant selects the CBP flavour.
type Variant int

// CBP variants.
const (
	BlockCount Variant = iota
	Binary
)

// Config sets the predictor's geometry.
type Config struct {
	Entries       int
	Variant       Variant
	Threshold     uint8 // BlockCount flagging threshold
	CounterMax    uint8
	RefreshCycles sim.Cycle // periodic clear, like hardware ageing
}

// DefaultConfig returns a 64-entry BlockCount predictor comparable in
// storage to PIVOT's RRBP.
func DefaultConfig() Config {
	return Config{Entries: 64, Variant: BlockCount, Threshold: 2, CounterMax: 63, RefreshCycles: 1_000_000}
}

// Predictor is the CBP table.
type Predictor struct {
	cfg         Config
	counters    []uint8
	lastRefresh sim.Cycle

	LongStalls uint64
	Flagged    uint64
	Lookups    uint64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	if cfg.Entries <= 0 {
		cfg.Entries = 64
	}
	if cfg.CounterMax == 0 {
		cfg.CounterMax = 63
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 1
	}
	return &Predictor{cfg: cfg, counters: make([]uint8, cfg.Entries)}
}

func (p *Predictor) index(pc uint64) int {
	h := (pc >> 2) ^ (pc >> 14)
	return int(h % uint64(len(p.counters)))
}

// RecordStall notes a ROB stall caused by the load at pc. Unlike PIVOT's
// RRBP, every load updates the table — there is no potential-set filter.
func (p *Predictor) RecordStall(pc uint64) {
	p.LongStalls++
	i := p.index(pc)
	if p.counters[i] < p.cfg.CounterMax {
		p.counters[i]++
	}
}

// IsCritical reports the prediction for the load at pc.
func (p *Predictor) IsCritical(pc uint64) bool {
	p.Lookups++
	c := p.counters[p.index(pc)]
	var crit bool
	switch p.cfg.Variant {
	case Binary:
		crit = c > 0
	default:
		crit = c >= p.cfg.Threshold
	}
	if crit {
		p.Flagged++
	}
	return crit
}

// SkipLookups applies the side effects of n elided IsCritical(pc) calls made
// under skip-ahead while the table is otherwise untouched (no stall record
// or refresh can interleave while the probing core is parked): n identical
// lookups with an unchanged verdict.
func (p *Predictor) SkipLookups(pc uint64, n uint64) {
	p.Lookups += n
	c := p.counters[p.index(pc)]
	var crit bool
	switch p.cfg.Variant {
	case Binary:
		crit = c > 0
	default:
		crit = c >= p.cfg.Threshold
	}
	if crit {
		p.Flagged += n
	}
}

// MaybeRefresh ages the table.
func (p *Predictor) MaybeRefresh(now sim.Cycle) {
	if p.cfg.RefreshCycles == 0 || now-p.lastRefresh < p.cfg.RefreshCycles {
		return
	}
	p.lastRefresh = now
	for i := range p.counters {
		p.counters[i] = 0
	}
}
