// Package checkpoint is the crash-safety layer under the simulator: a
// versioned, checksummed container for machine snapshots, written atomically
// and durably so that a SIGKILL at any instant leaves either the previous
// good checkpoint or a complete new one — never a torn file that restores
// silently wrong state.
//
// The file format is deliberately dumb:
//
//	offset  size  field
//	0       8     magic "PIVOTCKP"
//	8       4     format version (little-endian uint32)
//	12      4     reserved (zero)
//	16      8     simulated cycle of the snapshot
//	24      8     machine fingerprint (config/task identity hash)
//	32      8     payload length
//	40      4     CRC32 (IEEE) over bytes [0,40) and the payload
//	44      n     payload (opaque to this package; the machine gob-encodes
//	              its composed state into it)
//
// The CRC covers the header as well as the payload, so a bit flip anywhere —
// cycle, fingerprint, length or state — is detected. Decode never panics on
// arbitrary input (there is a fuzz target holding it to that).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Magic identifies a checkpoint file.
const Magic = "PIVOTCKP"

// Version is the current format version. Readers reject newer versions
// (forward compatibility is not attempted) and accept older ones they still
// understand; version 1 is the only one so far.
const Version = 1

const headerSize = 44

// Checkpoint is one decoded snapshot container.
type Checkpoint struct {
	Version     uint32
	Cycle       uint64
	Fingerprint uint64
	Payload     []byte
}

// ErrNoCheckpoint reports that a directory holds no usable checkpoint.
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint found")

// ErrCorrupt reports a structurally invalid or checksum-failing file.
var ErrCorrupt = errors.New("checkpoint: corrupt")

// Encode serialises c (with Version set to the current format version) into
// the on-disk frame.
func Encode(c Checkpoint) []byte {
	buf := make([]byte, headerSize+len(c.Payload))
	copy(buf[0:8], Magic)
	binary.LittleEndian.PutUint32(buf[8:12], Version)
	binary.LittleEndian.PutUint64(buf[16:24], c.Cycle)
	binary.LittleEndian.PutUint64(buf[24:32], c.Fingerprint)
	binary.LittleEndian.PutUint64(buf[32:40], uint64(len(c.Payload)))
	copy(buf[headerSize:], c.Payload)
	crc := crc32.NewIEEE()
	crc.Write(buf[:40])
	crc.Write(buf[headerSize:])
	binary.LittleEndian.PutUint32(buf[40:44], crc.Sum32())
	return buf
}

// Decode parses a frame, verifying structure and checksum. It returns an
// error wrapping ErrCorrupt for anything malformed and never panics,
// whatever the input.
func Decode(data []byte) (Checkpoint, error) {
	if len(data) < headerSize {
		return Checkpoint{}, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorrupt, len(data), headerSize)
	}
	if string(data[0:8]) != Magic {
		return Checkpoint{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:8])
	}
	ver := binary.LittleEndian.Uint32(data[8:12])
	if ver == 0 || ver > Version {
		return Checkpoint{}, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	if rsv := binary.LittleEndian.Uint32(data[12:16]); rsv != 0 {
		// Writers zero the reserved field; enforcing that keeps every valid
		// frame canonical (Decode∘Encode is the identity, which the fuzz
		// target checks) and leaves the field free for future use.
		return Checkpoint{}, fmt.Errorf("%w: nonzero reserved field %#x", ErrCorrupt, rsv)
	}
	plen := binary.LittleEndian.Uint64(data[32:40])
	if plen != uint64(len(data)-headerSize) {
		return Checkpoint{}, fmt.Errorf("%w: payload length %d, file holds %d", ErrCorrupt, plen, len(data)-headerSize)
	}
	crc := crc32.NewIEEE()
	crc.Write(data[:40])
	crc.Write(data[headerSize:])
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(data[40:44]); got != want {
		return Checkpoint{}, fmt.Errorf("%w: CRC mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	return Checkpoint{
		Version:     ver,
		Cycle:       binary.LittleEndian.Uint64(data[16:24]),
		Fingerprint: binary.LittleEndian.Uint64(data[24:32]),
		Payload:     append([]byte(nil), data[headerSize:]...),
	}, nil
}

// FileName is the canonical name for a checkpoint at the given cycle. Cycles
// are zero-padded so lexical order equals numeric order.
func FileName(cycle uint64) string {
	return fmt.Sprintf("ckpt-%020d.pivotckp", cycle)
}

// cycleOf parses the cycle out of a canonical checkpoint file name.
func cycleOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".pivotckp") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".pivotckp"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Write encodes c and writes it to dir under the canonical name, atomically
// and durably: the frame goes to a temporary file which is fsynced before
// being renamed into place, and the directory is fsynced after the rename.
// A crash at any point leaves either no new file or a complete one.
func Write(dir string, c Checkpoint) (path string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path = filepath.Join(dir, FileName(c.Cycle))
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return "", err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(Encode(c)); err != nil {
		return "", err
	}
	if err = tmp.Sync(); err != nil {
		return "", err
	}
	if err = tmp.Close(); err != nil {
		return "", err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadFile loads and decodes one checkpoint file.
func ReadFile(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	return Decode(data)
}

// LoadLatest returns the newest (highest-cycle) valid checkpoint in dir whose
// fingerprint matches. Corrupt, truncated or foreign-fingerprint files are
// skipped — recovery degrades to the previous good checkpoint, and to
// ErrNoCheckpoint (from-scratch replay) as the floor. A missing directory is
// also ErrNoCheckpoint.
func LoadLatest(dir string, fingerprint uint64) (Checkpoint, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return Checkpoint{}, "", ErrNoCheckpoint
		}
		return Checkpoint{}, "", err
	}
	type cand struct {
		name  string
		cycle uint64
	}
	var cands []cand
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if cyc, ok := cycleOf(e.Name()); ok {
			cands = append(cands, cand{name: e.Name(), cycle: cyc})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cycle > cands[j].cycle })
	for _, c := range cands {
		path := filepath.Join(dir, c.name)
		ck, err := ReadFile(path)
		if err != nil {
			continue // corrupt or unreadable: fall back to the next-oldest
		}
		if ck.Fingerprint != fingerprint {
			continue // some other machine's state; restoring it would be wrong
		}
		return ck, path, nil
	}
	return Checkpoint{}, "", ErrNoCheckpoint
}

// Prune removes all but the keep newest checkpoints in dir. Keeping at least
// two means a corrupt latest file still leaves a good predecessor.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	type cand struct {
		name  string
		cycle uint64
	}
	var cands []cand
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if cyc, ok := cycleOf(e.Name()); ok {
			cands = append(cands, cand{name: e.Name(), cycle: cyc})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cycle > cands[j].cycle })
	for _, c := range cands[min(keep, len(cands)):] {
		if err := os.Remove(filepath.Join(dir, c.name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Remove deletes every checkpoint file in dir (after a run completes), then
// removes the directory if it is empty. Foreign files are left alone.
func Remove(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	foreign := false
	for _, e := range entries {
		if _, ok := cycleOf(e.Name()); ok && !e.IsDir() {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		} else {
			foreign = true
		}
	}
	if !foreign {
		_ = os.Remove(dir) // best-effort; fails harmlessly if not empty
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
