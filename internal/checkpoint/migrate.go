package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// This file is the migration face of the checkpoint layer: a coordinator that
// wants to move a half-finished run from a dead worker to a live one exports
// the newest frame under the dead worker's run directory and imports it under
// the replacement's, preserving the run-relative path so the machine's normal
// TryRestore chain finds it without knowing a migration happened. Frames are
// Decode-verified on both sides, so a torn or tampered frame is refused
// rather than shipped.

// ExportLatest walks root recursively and returns the newest (highest-cycle)
// valid checkpoint frame found anywhere under it, together with its path
// relative to root. Corrupt or unreadable frames are skipped, exactly like
// LoadLatest; ErrNoCheckpoint means nothing usable exists (including a
// missing root).
func ExportLatest(root string) (rel string, data []byte, cycle uint64, err error) {
	type cand struct {
		rel   string
		cycle uint64
	}
	var cands []cand
	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil // unreadable subtree: skip, don't fail the export
		}
		if d.IsDir() {
			return nil
		}
		cyc, ok := cycleOf(d.Name())
		if !ok {
			return nil
		}
		r, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return nil
		}
		cands = append(cands, cand{rel: r, cycle: cyc})
		return nil
	})
	if walkErr != nil {
		if os.IsNotExist(walkErr) {
			return "", nil, 0, ErrNoCheckpoint
		}
		return "", nil, 0, walkErr
	}
	// Highest cycle first; a corrupt newest frame degrades to the next one.
	for {
		best := -1
		for i, c := range cands {
			if best < 0 || c.cycle > cands[best].cycle {
				best = i
			}
		}
		if best < 0 {
			return "", nil, 0, ErrNoCheckpoint
		}
		c := cands[best]
		cands = append(cands[:best], cands[best+1:]...)
		raw, rerr := os.ReadFile(filepath.Join(root, c.rel))
		if rerr != nil {
			continue
		}
		if _, derr := Decode(raw); derr != nil {
			continue
		}
		return filepath.ToSlash(c.rel), raw, c.cycle, nil
	}
}

// Import verifies a shipped frame and writes it under root at the given
// run-relative path (as produced by ExportLatest), atomically and durably.
// The relative path is strictly validated — no absolute paths, no "..",
// and the file name must be a canonical checkpoint name — so a malicious or
// confused peer cannot write outside root or plant a foreign file.
func Import(root, rel string, data []byte) error {
	if err := checkRel(rel); err != nil {
		return err
	}
	ck, err := Decode(data)
	if err != nil {
		return fmt.Errorf("checkpoint: refusing to import: %w", err)
	}
	// Re-encode canonically through Write: the imported frame lands with the
	// same atomic temp+fsync+rename discipline as a locally produced one.
	dir := filepath.Join(root, filepath.Dir(filepath.FromSlash(rel)))
	if _, err := Write(dir, ck); err != nil {
		return err
	}
	return nil
}

// checkRel validates a run-relative checkpoint path from a peer.
func checkRel(rel string) error {
	if rel == "" {
		return errors.New("checkpoint: empty relative path")
	}
	if filepath.IsAbs(rel) || strings.HasPrefix(rel, "/") {
		return fmt.Errorf("checkpoint: absolute path %q refused", rel)
	}
	for _, part := range strings.Split(filepath.ToSlash(rel), "/") {
		switch part {
		case "", ".", "..":
			return fmt.Errorf("checkpoint: unsafe path %q refused", rel)
		}
	}
	if _, ok := cycleOf(filepath.Base(rel)); !ok {
		return fmt.Errorf("checkpoint: %q is not a canonical checkpoint name", rel)
	}
	return nil
}
