package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode holds Decode to its contract: on arbitrary bytes it either
// returns an error or a checkpoint that re-encodes to the exact input — and
// it never panics. Run with `go test -fuzz=FuzzDecode ./internal/checkpoint`.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PIVOTCKP"))
	f.Add(Encode(Checkpoint{Cycle: 1, Fingerprint: 2, Payload: []byte("seed")}))
	long := Encode(Checkpoint{Cycle: 1 << 40, Fingerprint: ^uint64(0), Payload: bytes.Repeat([]byte{0xAB}, 512)})
	f.Add(long)
	mutated := append([]byte(nil), long...)
	mutated[40] ^= 0xFF // break the CRC field itself
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(ck), data) {
			t.Fatalf("valid frame does not re-encode to itself (len %d)", len(data))
		}
	})
}
