package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Checkpoint{
		Cycle:       123_456_789,
		Fingerprint: 0xDEADBEEFCAFEF00D,
		Payload:     []byte("machine state goes here"),
	}
	out, err := Decode(Encode(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Version != Version {
		t.Errorf("Version = %d, want %d", out.Version, Version)
	}
	if out.Cycle != in.Cycle || out.Fingerprint != in.Fingerprint {
		t.Errorf("header mismatch: got cycle=%d fp=%x", out.Cycle, out.Fingerprint)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("payload mismatch: %q", out.Payload)
	}
}

func TestDecodeEmptyPayload(t *testing.T) {
	out, err := Decode(Encode(Checkpoint{Cycle: 1}))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(out.Payload) != 0 {
		t.Errorf("payload = %q, want empty", out.Payload)
	}
}

// TestDecodeBitFlips flips every bit of a valid frame in turn; each flip must
// be rejected as corrupt (the CRC covers header and payload alike).
func TestDecodeBitFlips(t *testing.T) {
	frame := Encode(Checkpoint{Cycle: 42, Fingerprint: 7, Payload: []byte("payload bytes")})
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrCorrupt", i, bit, err)
			}
		}
	}
}

// TestDecodeTruncation truncates a valid frame at every length; all must be
// rejected, never mis-decoded or panicking.
func TestDecodeTruncation(t *testing.T) {
	frame := Encode(Checkpoint{Cycle: 42, Fingerprint: 7, Payload: []byte("payload bytes")})
	for n := 0; n < len(frame); n++ {
		if _, err := Decode(frame[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	// Trailing garbage makes the stored length disagree with the file size.
	if _, err := Decode(append(append([]byte(nil), frame...), 0xFF)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	frame := Encode(Checkpoint{Cycle: 1, Payload: []byte("x")})
	frame[8] = Version + 1 // bump version; CRC now wrong too, but version is checked first
	if _, err := Decode(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: err = %v, want ErrCorrupt", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	in := Checkpoint{Cycle: 500, Fingerprint: 99, Payload: []byte("abc")}
	path, err := Write(dir, in)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if filepath.Base(path) != FileName(500) {
		t.Errorf("path = %s, want base %s", path, FileName(500))
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if out.Cycle != 500 || out.Fingerprint != 99 || !bytes.Equal(out.Payload, []byte("abc")) {
		t.Errorf("round trip mismatch: %+v", out)
	}
	// No temp droppings left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("dir holds %d entries, want 1", len(entries))
	}
}

func TestLoadLatestPicksNewestAndSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	const fp = 7
	for _, cyc := range []uint64{100, 200, 300} {
		if _, err := Write(dir, Checkpoint{Cycle: cyc, Fingerprint: fp, Payload: []byte{byte(cyc)}}); err != nil {
			t.Fatal(err)
		}
	}
	ck, _, err := LoadLatest(dir, fp)
	if err != nil || ck.Cycle != 300 {
		t.Fatalf("LoadLatest = cycle %d, %v; want 300, nil", ck.Cycle, err)
	}

	// Corrupt the newest (bit flip) — recovery falls back to 200.
	corrupt(t, filepath.Join(dir, FileName(300)))
	ck, _, err = LoadLatest(dir, fp)
	if err != nil || ck.Cycle != 200 {
		t.Fatalf("after corrupting newest: cycle %d, %v; want 200, nil", ck.Cycle, err)
	}

	// Truncate 200 — falls back to 100.
	truncate(t, filepath.Join(dir, FileName(200)))
	ck, _, err = LoadLatest(dir, fp)
	if err != nil || ck.Cycle != 100 {
		t.Fatalf("after truncating 200: cycle %d, %v; want 100, nil", ck.Cycle, err)
	}

	// Corrupt everything — from-scratch floor.
	corrupt(t, filepath.Join(dir, FileName(100)))
	if _, _, err := LoadLatest(dir, fp); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all corrupt: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestLoadLatestSkipsForeignFingerprint(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, Checkpoint{Cycle: 900, Fingerprint: 1, Payload: []byte("other machine")}); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(dir, Checkpoint{Cycle: 100, Fingerprint: 2, Payload: []byte("ours")}); err != nil {
		t.Fatal(err)
	}
	ck, _, err := LoadLatest(dir, 2)
	if err != nil || ck.Cycle != 100 {
		t.Fatalf("cycle %d, %v; want the fingerprint-2 checkpoint at 100", ck.Cycle, err)
	}
	if _, _, err := LoadLatest(dir, 3); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("unknown fingerprint: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestLoadLatestMissingDir(t *testing.T) {
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "never-created"), 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for _, cyc := range []uint64{10, 20, 30, 40} {
		if _, err := Write(dir, Checkpoint{Cycle: cyc, Fingerprint: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	for _, want := range []struct {
		cyc  uint64
		kept bool
	}{{10, false}, {20, false}, {30, true}, {40, true}} {
		_, err := os.Stat(filepath.Join(dir, FileName(want.cyc)))
		if got := err == nil; got != want.kept {
			t.Errorf("checkpoint %d kept = %v, want %v", want.cyc, got, want.kept)
		}
	}
	// keep < 1 clamps to 1 rather than deleting everything.
	if err := Prune(dir, 0); err != nil {
		t.Fatalf("Prune(0): %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName(40))); err != nil {
		t.Errorf("newest checkpoint pruned by keep=0: %v", err)
	}
}

func TestRemove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	if _, err := Write(dir, Checkpoint{Cycle: 1, Fingerprint: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Remove(dir); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("empty checkpoint dir not removed: %v", err)
	}

	// With a foreign file present, checkpoints go but the dir (and file) stay.
	if _, err := Write(dir, Checkpoint{Cycle: 2, Fingerprint: 1}); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Remove(dir); err != nil {
		t.Fatalf("Remove with foreign file: %v", err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("foreign file deleted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName(2))); !os.IsNotExist(err) {
		t.Errorf("checkpoint survived Remove: %v", err)
	}
}

// corrupt flips one bit in the middle of a file.
func corrupt(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncate cuts a file to half its length.
func truncate(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
}
