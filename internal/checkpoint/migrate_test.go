package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeFrame(t *testing.T, dir string, cycle, fp uint64, payload string) {
	t.Helper()
	if _, err := Write(dir, Checkpoint{Cycle: cycle, Fingerprint: fp, Payload: []byte(payload)}); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

func TestExportLatestPicksNewestAcrossSubdirs(t *testing.T) {
	root := t.TempDir()
	writeFrame(t, filepath.Join(root, "run-a"), 100, 1, "old")
	writeFrame(t, filepath.Join(root, "run-a"), 300, 1, "new")
	writeFrame(t, filepath.Join(root, "run-b"), 200, 2, "mid")

	rel, data, cycle, err := ExportLatest(root)
	if err != nil {
		t.Fatalf("ExportLatest: %v", err)
	}
	if cycle != 300 {
		t.Fatalf("cycle = %d, want 300", cycle)
	}
	if want := "run-a/" + FileName(300); rel != want {
		t.Fatalf("rel = %q, want %q", rel, want)
	}
	ck, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if string(ck.Payload) != "new" {
		t.Fatalf("payload = %q, want %q", ck.Payload, "new")
	}
}

func TestExportLatestSkipsCorruptNewest(t *testing.T) {
	root := t.TempDir()
	writeFrame(t, root, 100, 1, "good")
	// A torn newest frame must degrade to the previous good one.
	bad := filepath.Join(root, FileName(200))
	if err := os.WriteFile(bad, []byte("PIVOTCKP garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rel, _, cycle, err := ExportLatest(root)
	if err != nil {
		t.Fatalf("ExportLatest: %v", err)
	}
	if cycle != 100 || rel != FileName(100) {
		t.Fatalf("got (%q, %d), want the surviving good frame", rel, cycle)
	}
}

func TestExportLatestEmpty(t *testing.T) {
	if _, _, _, err := ExportLatest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	if _, _, _, err := ExportLatest(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestImportRoundTrip(t *testing.T) {
	src := t.TempDir()
	writeFrame(t, filepath.Join(src, "run-x"), 4242, 7, "state")
	rel, data, _, err := ExportLatest(src)
	if err != nil {
		t.Fatalf("ExportLatest: %v", err)
	}

	dst := t.TempDir()
	if err := Import(dst, rel, data); err != nil {
		t.Fatalf("Import: %v", err)
	}
	ck, _, err := LoadLatest(filepath.Join(dst, "run-x"), 7)
	if err != nil {
		t.Fatalf("LoadLatest after import: %v", err)
	}
	if ck.Cycle != 4242 || string(ck.Payload) != "state" {
		t.Fatalf("restored frame = cycle %d payload %q", ck.Cycle, ck.Payload)
	}
}

func TestImportRejectsUnsafePaths(t *testing.T) {
	dst := t.TempDir()
	frame := Encode(Checkpoint{Cycle: 1, Fingerprint: 1, Payload: []byte("p")})
	for _, rel := range []string{
		"",
		"/etc/" + FileName(1),
		"../" + FileName(1),
		"run/../../" + FileName(1),
		"run/./" + FileName(1),
		"run/notacheckpoint.bin",
	} {
		if err := Import(dst, rel, frame); err == nil {
			t.Errorf("Import(%q) accepted an unsafe path", rel)
		}
	}
}

func TestImportRejectsCorruptFrame(t *testing.T) {
	frame := Encode(Checkpoint{Cycle: 9, Fingerprint: 1, Payload: []byte("p")})
	frame[len(frame)-1] ^= 0xff
	if err := Import(t.TempDir(), FileName(9), frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: err = %v, want ErrCorrupt", err)
	}
}
