package machine

import (
	"testing"

	"pivot/internal/mem"
	"pivot/internal/workload"
)

func lcTask(app string, ia float64) TaskSpec {
	return TaskSpec{Kind: TaskLC, LC: workload.LCApps()[app], MeanInterarrival: ia, Seed: 1}
}

func beTasks(app string, n int) []TaskSpec {
	var out []TaskSpec
	for i := 0; i < n; i++ {
		out = append(out, TaskSpec{Kind: TaskBE, BE: workload.BEApps()[app], Seed: uint64(10 + i)})
	}
	return out
}

func TestTooManyTasksRejected(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 8)...)
	if _, err := New(KunpengConfig(8), Options{}, tasks); err == nil {
		t.Fatal("9 tasks on 8 cores accepted")
	}
}

func TestOfflineProfileRecoversChaseLoads(t *testing.T) {
	app := workload.LCApps()[workload.Masstree]
	set := ProfileLC(KunpengConfig(8), app, 7, 1)
	if len(set) == 0 {
		t.Fatal("empty potential set")
	}
	// Every chase PC must be selected: they are the critical loads by
	// construction.
	gen := workload.NewReqGen(app, 0, nil)
	for _, pc := range gen.ChasePCs() {
		if !set.Contains(pc) {
			t.Errorf("chase PC %#x missing from the potential set", pc)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint32, uint64) {
		tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 3)...)
		m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
		m.Run(100_000, 200_000)
		return m.LCp95(0), m.BECommitted()
	}
	p1, c1 := run()
	p2, c2 := run()
	if p1 != p2 || c1 != c2 {
		t.Fatalf("identical runs diverged: (%d,%d) vs (%d,%d)", p1, c1, p2, c2)
	}
}

func TestLLCPartitioningAppliedPerPolicy(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 2)...)

	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	if m.LLC().WayMask(1) != 0 {
		t.Fatal("Default must not partition the LLC")
	}
	m = MustNew(KunpengConfig(4), Options{Policy: PolicyMPAM}, tasks)
	if m.LLC().WayMask(1) == 0 {
		t.Fatal("MPAM policy should restrict BE ways")
	}
	if m.LLC().WayMask(0) != 0 {
		t.Fatal("LC partition must stay unrestricted")
	}
}

func TestPriorityWiringPerPolicy(t *testing.T) {
	tasks := []TaskSpec{lcTask(workload.Silo, 5000)}
	check := func(pol Policy, ic, bus, bw, mc bool) {
		m := MustNew(KunpengConfig(4), Options{Policy: pol}, tasks)
		if m.ic.PriorityEnabled != ic || m.bus.PriorityEnabled != bus ||
			m.bw.Station.PriorityEnabled != bw || m.mc.PriorityEnabled != mc {
			t.Errorf("%v priority wiring = %v/%v/%v/%v, want %v/%v/%v/%v", pol,
				m.ic.PriorityEnabled, m.bus.PriorityEnabled,
				m.bw.Station.PriorityEnabled, m.mc.PriorityEnabled, ic, bus, bw, mc)
		}
	}
	check(PolicyDefault, false, false, false, false)
	check(PolicyMPAM, false, false, false, false)
	check(PolicyFullPath, true, true, true, true)
	check(PolicyPIVOT, true, true, true, true)
	check(PolicyCBP, false, false, false, true) // memory controller only
	check(PolicyCBPFullPath, true, true, true, true)
}

func TestDisableMSCLeaveOneOut(t *testing.T) {
	tasks := []TaskSpec{lcTask(workload.Silo, 5000)}
	m := MustNew(KunpengConfig(4),
		Options{Policy: PolicyFullPath, DisableMSC: mem.CompBus}, tasks)
	if m.bus.PriorityEnabled {
		t.Fatal("disabled MSC still enforces priority")
	}
	if !m.ic.PriorityEnabled || !m.mc.PriorityEnabled {
		t.Fatal("other MSCs lost priority")
	}
}

func TestMPAMEnabledPerPolicy(t *testing.T) {
	tasks := []TaskSpec{lcTask(workload.Silo, 5000)}
	for pol, want := range map[Policy]bool{
		PolicyDefault: false, PolicyMBA: false, PolicyMPAM: true,
		PolicyFullPath: true, PolicyPIVOT: true,
	} {
		m := MustNew(KunpengConfig(4), Options{Policy: pol}, tasks)
		if m.bw.MPAMEnabled != want {
			t.Errorf("%v MPAMEnabled = %v, want %v", pol, m.bw.MPAMEnabled, want)
		}
	}
}

func TestSplitAveragesTrackLCRequests(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Masstree, 5000)}, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	m.Run(50_000, 200_000)
	split, n := m.SplitAverages()
	if n == 0 {
		t.Fatal("no LC requests aggregated")
	}
	if split[mem.CompMemCtrl] == 0 && split[mem.CompDRAM] == 0 {
		t.Fatal("split has no memory-side cycles under contention")
	}
}

func TestStatsFilterRestrictsSplit(t *testing.T) {
	app := workload.LCApps()[workload.Masstree]
	gen := workload.NewReqGen(app, 0, nil)
	chase := map[uint64]bool{}
	for _, pc := range gen.ChasePCs() {
		chase[pc] = true
	}
	tasks := []TaskSpec{lcTask(workload.Masstree, 5000)}
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	m.SetStatsFilter(chase)
	m.Run(50_000, 200_000)
	_, n := m.SplitAverages()
	if n == 0 {
		t.Fatal("filter excluded every chase request")
	}
	// Unfiltered run counts strictly more requests.
	m2 := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	m2.Run(50_000, 200_000)
	_, n2 := m2.SplitAverages()
	if n2 <= n {
		t.Fatalf("unfiltered count %d not above filtered %d", n2, n)
	}
}

func TestNeoverseConfigRuns(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Xapian, 4000)}, beTasks(workload.IBench, 3)...)
	m := MustNew(NeoverseConfig(4), Options{Policy: PolicyPIVOT}, tasks)
	m.Run(100_000, 200_000)
	if m.LCTasks()[0].Source.Completed() == 0 {
		t.Fatal("no requests completed on the Neoverse configuration")
	}
}

func TestStarvationGuardAblation(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Masstree, 4000)}, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyFullPath, NoStarvationGuard: true}, tasks)
	m.Run(100_000, 200_000)
	if m.DRAMStats().Promoted != 0 {
		t.Fatal("starvation guard fired while ablated")
	}
	// BE still makes progress (priority is not an absolute lockout because
	// the LC task idles between requests).
	if m.BECommitted() == 0 {
		t.Fatal("BE completely starved")
	}
}

func TestBandwidthAccounting(t *testing.T) {
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, beTasks(workload.IBench, 4))
	m.Run(50_000, 200_000)
	bw := m.BWUtil()
	if bw < 0.5 || bw > 1.0 {
		t.Fatalf("4-thread iBench utilisation = %.2f, want high (>0.5) and <=1", bw)
	}
	if gbs := m.AvgBandwidthGBs(); gbs <= 0 {
		t.Fatalf("absolute bandwidth = %v GB/s", gbs)
	}
}

func TestMultiLCMPAMAllocations(t *testing.T) {
	tasks := []TaskSpec{lcTask(workload.Silo, 5000), lcTask(workload.Xapian, 5000)}
	tasks = append(tasks, beTasks(workload.IBench, 2)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyPIVOT}, tasks)
	for i := 0; i < 2; i++ {
		if a := m.BWController().Allocation(mem.PartID(i)); a.Min != 1.0 {
			t.Fatalf("LC part %d allocation %+v, want Min=1.0", i, a)
		}
	}
	if a := m.BWController().Allocation(2); a.Max != 0.05 {
		t.Fatalf("BE allocation %+v, want capped Max", a)
	}
	m.Run(100_000, 200_000)
	if m.LCTasks()[0].Source.Completed() == 0 || m.LCTasks()[1].Source.Completed() == 0 {
		t.Fatal("a co-located LC task completed nothing")
	}
}

func TestRunResetSeparatesWarmup(t *testing.T) {
	tasks := []TaskSpec{lcTask(workload.Silo, 3000)}
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	m.Engine.Step(100_000)
	before := m.LCTasks()[0].Source.Completed()
	if before == 0 {
		t.Fatal("nothing completed during warm-up")
	}
	m.ResetStats()
	if m.LCTasks()[0].Source.Completed() != 0 {
		t.Fatal("ResetStats did not clear completions")
	}
	if m.Cores[0].Stats.Committed != 0 {
		t.Fatal("ResetStats did not clear core stats")
	}
}
