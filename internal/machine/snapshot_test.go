package machine

import (
	"bytes"
	"encoding/json"
	"testing"

	"pivot/internal/workload"
)

func TestSnapshotRoundTrip(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyPIVOT}, tasks)
	m.Run(100_000, 200_000)

	s := m.Snapshot()
	if s.Policy != "PIVOT" || s.Config != "kunpeng" {
		t.Fatalf("snapshot identity wrong: %+v", s)
	}
	if len(s.LC) != 1 || s.LC[0].App != workload.Silo {
		t.Fatalf("LC snapshot wrong: %+v", s.LC)
	}
	if s.LC[0].Completed == 0 || s.LC[0].P95 == 0 {
		t.Fatal("LC snapshot missing measurements")
	}
	if s.LC[0].P50 > s.LC[0].P95 || s.LC[0].P95 > s.LC[0].P99 {
		t.Fatalf("percentiles not ordered: %+v", s.LC[0])
	}
	if s.BE.Cores != 3 || s.BE.IPC <= 0 {
		t.Fatalf("BE snapshot wrong: %+v", s.BE)
	}
	if s.Bandwidth.Utilisation <= 0 || s.Bandwidth.LinesMoved == 0 {
		t.Fatalf("bandwidth snapshot wrong: %+v", s.Bandwidth)
	}
	if len(s.SplitAvg) == 0 {
		t.Fatal("split averages missing")
	}
	if _, ok := s.Stations["bwctrl"]; !ok {
		t.Fatal("station counters missing")
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.LC[0].P95 != s.LC[0].P95 || back.Bandwidth.LinesMoved != s.Bandwidth.LinesMoved {
		t.Fatal("round trip lost data")
	}
}
