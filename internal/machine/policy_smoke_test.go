package machine

import (
	"testing"

	"pivot/internal/mem"
	"pivot/internal/workload"
)

// TestPolicyOrdering checks the paper's qualitative orderings (Figures 1-3):
// MPAM fails to protect the tail under heavy contention; MBA protects it but
// wastes bandwidth; FullPath protects it; PIVOT protects it with the highest
// BE throughput among the protecting policies.
func TestPolicyOrdering(t *testing.T) {
	// Offline profile: Masstree + stress copy, closed loop.
	pot := ProfileLC(KunpengConfig(8), workload.LCApps()[workload.Masstree], 7, 1)
	t.Logf("potential set size = %d", len(pot))
	if len(pot) == 0 {
		t.Fatal("offline profiling selected no potential-critical loads")
	}

	lcApp := workload.LCApps()[workload.Masstree]
	beApp := workload.BEApps()[workload.IBench]
	build := func(pol Policy, opt Options) *Machine {
		tasks := []TaskSpec{{Kind: TaskLC, LC: lcApp, MeanInterarrival: 4000, Seed: 1, Potential: pot}}
		for i := 0; i < 7; i++ {
			tasks = append(tasks, TaskSpec{Kind: TaskBE, BE: beApp, Seed: uint64(10 + i)})
		}
		opt.Policy = pol
		return MustNew(KunpengConfig(8), opt, tasks)
	}
	type res struct {
		p95 uint32
		ipc float64
		bw  float64
	}
	run := func(pol Policy, opt Options) res {
		m := build(pol, opt)
		m.Run(100_000, 400_000)
		return res{m.LCp95(0), float64(m.BECommitted()) / float64(m.MeasuredCycles()), m.BWUtil()}
	}

	alone := func() res {
		m := MustNew(KunpengConfig(8), Options{Policy: PolicyDefault},
			[]TaskSpec{{Kind: TaskLC, LC: lcApp, MeanInterarrival: 4000, Seed: 1}})
		m.Run(100_000, 400_000)
		return res{m.LCp95(0), 0, m.BWUtil()}
	}()

	dflt := run(PolicyDefault, Options{})
	mpam := run(PolicyMPAM, Options{})
	full := run(PolicyFullPath, Options{})
	piv := run(PolicyPIVOT, Options{})
	mba := func() res {
		opt := Options{Policy: PolicyMBA}
		m := build(PolicyMBA, opt)
		for i := 1; i < 8; i++ {
			m.MBA().SetLevel(mem.PartID(i), 10) // strong throttle
		}
		m.Run(100_000, 400_000)
		return res{m.LCp95(0), float64(m.BECommitted()) / float64(m.MeasuredCycles()), m.BWUtil()}
	}()

	t.Logf("alone:    p95=%6d", alone.p95)
	t.Logf("default:  p95=%6d ipc=%.3f bw=%.2f", dflt.p95, dflt.ipc, dflt.bw)
	t.Logf("mpam:     p95=%6d ipc=%.3f bw=%.2f", mpam.p95, mpam.ipc, mpam.bw)
	t.Logf("mba10:    p95=%6d ipc=%.3f bw=%.2f", mba.p95, mba.ipc, mba.bw)
	t.Logf("fullpath: p95=%6d ipc=%.3f bw=%.2f", full.p95, full.ipc, full.bw)
	t.Logf("pivot:    p95=%6d ipc=%.3f bw=%.2f", piv.p95, piv.ipc, piv.bw)

	qos := alone.p95 * 5 / 2 // 2.5x proxy for the knee-based QoS target
	if full.p95 > qos {
		t.Errorf("FullPath should protect QoS: %d > %d", full.p95, qos)
	}
	if piv.p95 > qos {
		t.Errorf("PIVOT should protect QoS: %d > %d", piv.p95, qos)
	}
	if mba.p95 > qos {
		t.Errorf("MBA(10%%) should protect QoS: %d > %d", mba.p95, qos)
	}
	if mpam.p95 <= qos {
		t.Logf("note: MPAM unexpectedly met QoS at this contention level")
	}
	if !(mba.bw < piv.bw) {
		t.Errorf("MBA should underutilise bandwidth vs PIVOT: mba=%.2f pivot=%.2f", mba.bw, piv.bw)
	}
	if !(piv.ipc > mba.ipc) {
		t.Errorf("PIVOT BE throughput should beat MBA: pivot=%.3f mba=%.3f", piv.ipc, mba.ipc)
	}
}
