// Package machine assembles the full simulated node: out-of-order cores with
// private L1/L2 caches, the shared LLC, the four shared memory-system
// components (L2<->LLC interconnect, coherent bus, bandwidth controller,
// memory controller), and the bandwidth-partitioning policy under test
// (Default, MBA, MPAM, FullPath, PIVOT, CBP variants, or manager-driven
// CAT+MBA for PARTIES/CLITE).
package machine

import (
	"fmt"

	"pivot/internal/bwctrl"
	"pivot/internal/cache"
	"pivot/internal/cpu"
	"pivot/internal/dram"
	"pivot/internal/interconnect"
	"pivot/internal/mem"
	"pivot/internal/sim"
)

// Policy selects the bandwidth-partitioning mechanism under test.
type Policy int

// Policies, in the order the paper introduces them.
const (
	// PolicyDefault is free contention for everything (no partitioning).
	PolicyDefault Policy = iota
	// PolicyMBA throttles BE cores between L2 and LLC (Intel MBA); the
	// harness chooses the lowest throttle level that still meets QoS.
	PolicyMBA
	// PolicyMPAM prioritises LC requests at the memory bandwidth controller
	// only (ARM MPAM).
	PolicyMPAM
	// PolicyFullPath is MPAM enhanced with per-request priority enforced at
	// every MSC, for *all* LC memory accesses (§III-B's "Full Path").
	PolicyFullPath
	// PolicyPIVOT enforces priority at every MSC for only the
	// performance-critical loads identified by two-phase profiling.
	PolicyPIVOT
	// PolicyCBP uses the runtime CBP predictor and prioritises only at the
	// memory controller (§VI-B).
	PolicyCBP
	// PolicyCBPFullPath uses Binary-CBP predictions across all MSCs.
	PolicyCBPFullPath
	// PolicyManaged partitions the LLC and exposes MBA levels + way masks as
	// runtime knobs for a software resource manager (PARTIES, CLITE).
	PolicyManaged
)

// String names the policy as in the paper's figures.
func (p Policy) String() string {
	switch p {
	case PolicyDefault:
		return "Default"
	case PolicyMBA:
		return "MBA"
	case PolicyMPAM:
		return "MPAM"
	case PolicyFullPath:
		return "FullPath"
	case PolicyPIVOT:
		return "PIVOT"
	case PolicyCBP:
		return "CBP"
	case PolicyCBPFullPath:
		return "CBP+FullPath"
	case PolicyManaged:
		return "Managed"
	default:
		return "?"
	}
}

// Config describes the simulated node. Build one with KunpengConfig or
// NeoverseConfig and adjust fields as needed.
type Config struct {
	Name  string
	Cores int

	L1  cache.Config // per core
	L2  cache.Config // per core
	LLC cache.Config // shared; SizeBytes scales with Cores in the presets

	Core cpu.Config

	IC   interconnect.Config // L2 <-> LLC interconnect (MSC 1)
	Bus  interconnect.Config // coherent memory bus (MSC 2)
	BW   bwctrl.Config       // memory bandwidth controller (MSC 3)
	DRAM dram.Config         // memory controller + device (MSC 4)

	// BEWays is the LLC way-mask size for BE partitions under every policy
	// except Default ("reserve the maximum possible space for the LC task").
	BEWays int

	// PortOutCap bounds each core's outstanding L2-miss requests waiting to
	// enter the interconnect (structural back-pressure point).
	PortOutCap int

	// LLCRespLatency is the return latency for LLC hits.
	LLCRespLatency sim.Cycle
}

// Validate reports a descriptive error for impossible machine
// configurations, checking the pieces whose constructors would otherwise
// panic deep inside assembly (cache geometries, core pipeline widths).
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("machine: core count %d must be positive", c.Cores)
	}
	for _, cc := range []cache.Config{c.L1, c.L2, c.LLC} {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("machine: %w", err)
		}
	}
	if err := c.Core.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if c.PortOutCap <= 0 {
		return fmt.Errorf("machine: PortOutCap %d must be positive", c.PortOutCap)
	}
	return nil
}

// ScaledRRBPRefresh is the default RRBP refresh interval (the paper's 1M
// cycles). Right after a refresh every load must re-qualify, so a handful of
// requests per window run unprotected; the interval must stay large relative
// to the request rate or those gaps dominate the 95th percentile.
const ScaledRRBPRefresh sim.Cycle = 1_000_000

// KunpengConfig returns the Table II machine for the given core count.
func KunpengConfig(cores int) Config {
	d := dram.KunpengDDR4()
	peakPerWindow := float64(100_000) / float64(d.TBurst)
	return Config{
		Name:  "kunpeng",
		Cores: cores,
		// L1 MSHRs: Table II lists 4 demand MSHRs, but the real core also
		// overlaps misses through hardware prefetch streams; with only 4
		// outstanding misses every independent load serialises and falsely
		// long-stalls the ROB. We fold prefetch concurrency into an
		// effective 16 miss buffers (documented in DESIGN.md).
		L1: cache.Config{
			Name: "L1D", SizeBytes: 64 << 10, Ways: 4, LineBytes: 64,
			HitCycles: 2, MSHRs: 16,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 512 << 10, Ways: 8, LineBytes: 64,
			HitCycles: 12, MSHRs: 20,
		},
		LLC: cache.Config{
			Name: "LLC", SizeBytes: cores * (2 << 20), Ways: 16, LineBytes: 64,
			HitCycles: 32, MSHRs: 40,
		},
		Core: cpu.Config{
			ROBSize: 192, FetchWidth: 8, IssueWidth: 8, CommitWidth: 8,
			LQSize: 32, SQSize: 32, LongStall: 40,
		},
		IC: interconnect.Config{
			Name: "ic", Component: mem.CompInterconnect,
			Latency: 4, Bandwidth: 2, CapNormal: 24, CapPrio: 8, MaxWait: 100_000,
		},
		Bus: interconnect.Config{
			Name: "bus", Component: mem.CompBus,
			Latency: 6, Bandwidth: 2, CapNormal: 32, CapPrio: 8, MaxWait: 100_000,
		},
		BW: bwctrl.Config{
			Station: interconnect.Config{
				Name: "bwctrl", Component: mem.CompBWCtrl,
				Latency: 2, Bandwidth: 1, CapNormal: 32, CapPrio: 8, MaxWait: 100_000,
			},
			WindowCycles:       100_000,
			PeakLinesPerWindow: peakPerWindow,
		},
		DRAM:           d,
		BEWays:         2,
		PortOutCap:     16,
		LLCRespLatency: 20,
	}
}

// NeoverseConfig returns the Table III machine for the given core count.
func NeoverseConfig(cores int) Config {
	c := KunpengConfig(cores)
	c.Name = "neoverse"
	c.L1.MSHRs = 16
	c.L2.HitCycles = 8
	c.L2.MSHRs = 32
	c.LLC.HitCycles = 10
	c.LLC.MSHRs = 128
	c.Core = cpu.Config{
		ROBSize: 316, FetchWidth: 8, IssueWidth: 14, CommitWidth: 8,
		LQSize: 76, SQSize: 58, LongStall: 20,
	}
	return c
}
