package machine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	"pivot/internal/sim"
	"pivot/internal/workload"
)

// buildMode builds a ckptCase machine forced into the given stepping mode.
func (tc ckptCase) buildMode(t *testing.T, dense bool) *Machine {
	t.Helper()
	opt := tc.opt
	opt.Dense = dense
	m, err := New(KunpengConfig(4), opt, tc.tasks)
	if err != nil {
		t.Fatalf("%s: New: %v", tc.name, err)
	}
	if tc.stats {
		m.EnableStats(5_000, 0)
	}
	return m
}

// buildPar builds a ckptCase machine in sharded parallel mode with the given
// worker count.
func (tc ckptCase) buildPar(t *testing.T, workers int) *Machine {
	t.Helper()
	opt := tc.opt
	opt.Parallel = workers
	m, err := New(KunpengConfig(4), opt, tc.tasks)
	if err != nil {
		t.Fatalf("%s: New: %v", tc.name, err)
	}
	if !m.ParallelActive() {
		t.Fatalf("%s: parallel mode not active", tc.name)
	}
	if tc.stats {
		m.EnableStats(5_000, 0)
	}
	return m
}

// TestSkipAheadEquivalence is the tentpole's central proof obligation,
// extended to a serial/skip/parallel triangle: for every workload mix, a
// skip-ahead run, a sharded parallel run and a -dense run finish with
// byte-identical serialised machine state, byte-identical result-snapshot
// JSON, byte-identical stats-framework dumps (where enabled), and the same
// checkpoint fingerprint. The dense serial loop remains the trusted oracle.
func TestSkipAheadEquivalence(t *testing.T) {
	for _, tc := range ckptCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			dense := tc.buildMode(t, true)
			skip := tc.buildMode(t, false)
			par := tc.buildPar(t, 2)
			if dense.Engine.Dense() == skip.Engine.Dense() {
				t.Fatal("modes not actually distinct")
			}
			if err := dense.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
				t.Fatalf("dense run: %v", err)
			}
			if err := skip.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
				t.Fatalf("skip run: %v", err)
			}
			if err := par.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
				t.Fatalf("parallel run: %v", err)
			}

			ref := stateBytes(t, dense)
			if got := stateBytes(t, skip); !bytes.Equal(got, ref) {
				t.Errorf("skip: serialised machine state differs (%d vs %d bytes)", len(got), len(ref))
			}
			if got := stateBytes(t, par); !bytes.Equal(got, ref) {
				t.Errorf("parallel: serialised machine state differs (%d vs %d bytes)", len(got), len(ref))
			}
			if skip.Fingerprint() != dense.Fingerprint() || par.Fingerprint() != dense.Fingerprint() {
				t.Errorf("checkpoint fingerprints differ: skip %#x, par %#x, dense %#x",
					skip.Fingerprint(), par.Fingerprint(), dense.Fingerprint())
			}
			var sj, dj, pj bytes.Buffer
			if err := skip.Snapshot().WriteJSON(&sj); err != nil {
				t.Fatal(err)
			}
			if err := dense.Snapshot().WriteJSON(&dj); err != nil {
				t.Fatal(err)
			}
			if err := par.Snapshot().WriteJSON(&pj); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sj.Bytes(), dj.Bytes()) {
				t.Error("skip: result-snapshot JSON differs from dense")
			}
			if !bytes.Equal(pj.Bytes(), dj.Bytes()) {
				t.Error("parallel: result-snapshot JSON differs from dense")
			}
			if tc.stats {
				var ss, ds, ps bytes.Buffer
				if err := skip.StatsDump().WriteJSON(&ss); err != nil {
					t.Fatal(err)
				}
				if err := dense.StatsDump().WriteJSON(&ds); err != nil {
					t.Fatal(err)
				}
				if err := par.StatsDump().WriteJSON(&ps); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ss.Bytes(), ds.Bytes()) {
					t.Error("skip: stats-framework dump differs from dense")
				}
				if !bytes.Equal(ps.Bytes(), ds.Bytes()) {
					t.Error("parallel: stats-framework dump differs from dense")
				}
			}
			if skip.MeasuredCycles() != dense.MeasuredCycles() || par.MeasuredCycles() != dense.MeasuredCycles() {
				t.Errorf("measured cycles: skip %d, par %d, dense %d",
					skip.MeasuredCycles(), par.MeasuredCycles(), dense.MeasuredCycles())
			}
		})
	}
}

// TestSkipAheadEquivalenceIdleHeavy covers the regime skip-ahead exists for:
// a lightly loaded LC with no BE neighbours spends most cycles with every
// component quiescent, so the engine takes large global jumps — and must
// still be byte-identical to the dense reference.
func TestSkipAheadEquivalenceIdleHeavy(t *testing.T) {
	mk := func(opt Options) *Machine {
		opt.Policy = PolicyDefault
		return MustNew(KunpengConfig(4), opt,
			[]TaskSpec{lcTask(workload.Silo, 60_000)})
	}
	d, s, p := mk(Options{Dense: true}), mk(Options{}), mk(Options{Parallel: 2})
	d.Run(50_000, 150_000)
	s.Run(50_000, 150_000)
	p.Run(50_000, 150_000)
	ref := stateBytes(t, d)
	if got := stateBytes(t, s); !bytes.Equal(got, ref) {
		t.Errorf("idle-heavy skip state differs (%d vs %d bytes)", len(got), len(ref))
	}
	if got := stateBytes(t, p); !bytes.Equal(got, ref) {
		t.Errorf("idle-heavy parallel state differs (%d vs %d bytes)", len(got), len(ref))
	}
	if s.LCp95(0) != d.LCp95(0) || s.Cores[0].Stats.IdleCycles != d.Cores[0].Stats.IdleCycles {
		t.Errorf("idle-heavy stats differ: p95 %d vs %d, idle %d vs %d",
			s.LCp95(0), d.LCp95(0), s.Cores[0].Stats.IdleCycles, d.Cores[0].Stats.IdleCycles)
	}
	if p.LCp95(0) != d.LCp95(0) || p.Cores[0].Stats.IdleCycles != d.Cores[0].Stats.IdleCycles {
		t.Errorf("idle-heavy parallel stats differ: p95 %d vs %d, idle %d vs %d",
			p.LCp95(0), d.LCp95(0), p.Cores[0].Stats.IdleCycles, d.Cores[0].Stats.IdleCycles)
	}
}

// TestSkipAheadEquivalenceKillResume proves crash-safety under skip-ahead: a
// skip-ahead run killed mid-measure (cycle budget standing in for SIGKILL)
// and resumed by a second skip-ahead process finishes byte-identical to a
// dense run that was never interrupted.
func TestSkipAheadEquivalenceKillResume(t *testing.T) {
	tc := ckptCases()[0]
	ctx := context.Background()

	ref := tc.buildMode(t, true)
	if err := ref.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
		t.Fatalf("dense reference: %v", err)
	}

	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Interval: ckptInterval, Keep: 3}

	killed := tc.buildMode(t, false)
	killed.Opt.MaxCycles = 72_000 // mid-measure, off any interval boundary
	if _, err := killed.RunCheckpointed(ctx, ckptWarmup, ckptMeasure, cc); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("killed run: err = %v, want cycle-budget abort", err)
	}

	resumed := tc.buildMode(t, false)
	from, err := resumed.RunCheckpointed(ctx, ckptWarmup, ckptMeasure, cc)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if from < 72_000 {
		t.Fatalf("resumed from cycle %d, want the abort flush at >= 72000", from)
	}
	if got, want := stateBytes(t, resumed), stateBytes(t, ref); !bytes.Equal(got, want) {
		t.Error("skip-ahead kill-and-resume final state differs from uninterrupted dense run")
	}
	if resumed.LCp95(0) != ref.LCp95(0) || resumed.BECommitted() != ref.BECommitted() {
		t.Errorf("whole-run stats differ: p95 %d vs %d, BE %d vs %d",
			resumed.LCp95(0), ref.LCp95(0), resumed.BECommitted(), ref.BECommitted())
	}
}

// TestSkipAheadCheckpointBoundaries: skip-ahead must pause at exactly the
// same absolute checkpoint boundaries as dense stepping, even in an
// idle-heavy run whose engine jumps would otherwise sail past them. The two
// modes must write the same set of checkpoint files, cycle-stamped at exact
// interval multiples, with identical payload bytes.
func TestSkipAheadCheckpointBoundaries(t *testing.T) {
	ctx := context.Background()
	// One lightly loaded LC: long quiescent stretches around each boundary.
	mk := func(dense bool) *Machine {
		return MustNew(KunpengConfig(4),
			Options{Policy: PolicyDefault, Dense: dense},
			[]TaskSpec{lcTask(workload.Silo, 60_000)})
	}
	const interval sim.Cycle = 16_000

	runDir := func(m *Machine) string {
		dir := t.TempDir()
		if err := m.stepCheckpointed(ctx, 100_000, CheckpointConfig{Dir: dir, Interval: interval, Keep: 100}); err != nil {
			t.Fatalf("stepCheckpointed: %v", err)
		}
		return dir
	}
	dDir, sDir := runDir(mk(true)), runDir(mk(false))

	list := func(dir string) []string {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		return names
	}
	dNames, sNames := list(dDir), list(sDir)
	if len(sNames) != len(dNames) || len(sNames) != int(100_000/interval) {
		t.Fatalf("checkpoint counts differ: skip %d, dense %d, want %d",
			len(sNames), len(dNames), 100_000/interval)
	}
	for i := range dNames {
		if sNames[i] != dNames[i] {
			t.Fatalf("checkpoint file %d differs: %s vs %s", i, sNames[i], dNames[i])
		}
		got, want := payloadAt(t, sDir+"/"+sNames[i]), payloadAt(t, dDir+"/"+dNames[i])
		if !bytes.Equal(got, want) {
			t.Errorf("checkpoint %s payload differs between modes", sNames[i])
		}
	}
}
