package machine

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"

	"pivot/internal/checkpoint"
	"pivot/internal/sim"
)

// CheckpointConfig parameterises periodic checkpointing of a run.
type CheckpointConfig struct {
	// Dir holds this run's checkpoint files. Empty disables checkpointing.
	Dir string
	// Interval is the simulated-cycle period between checkpoints, aligned to
	// absolute cycle boundaries so an interrupted and a fresh run checkpoint
	// at the same instants. 0 = DefaultCheckpointInterval.
	Interval sim.Cycle
	// Keep bounds retained checkpoints (oldest pruned); 0 = 2, so a corrupt
	// newest file always leaves a good predecessor.
	Keep int
}

// DefaultCheckpointInterval is the checkpoint period when none is given:
// frequent enough that a killed quick-scale run loses little work, rare
// enough that writing state is simulation noise.
const DefaultCheckpointInterval sim.Cycle = 100_000

func (cc CheckpointConfig) interval() sim.Cycle {
	if cc.Interval <= 0 {
		return DefaultCheckpointInterval
	}
	return cc.Interval
}

func (cc CheckpointConfig) keep() int {
	if cc.Keep <= 0 {
		return 2
	}
	return cc.Keep
}

// encodeState gob-encodes a machine snapshot into a checkpoint payload.
func encodeState(s *MachineState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeState parses a checkpoint payload. Like checkpoint.Decode it must
// never panic: gob on arbitrary bytes returns errors.
func decodeState(payload []byte) (*MachineState, error) {
	s := new(MachineState)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(s); err != nil {
		return nil, err
	}
	return s, nil
}

// StateBytes serialises the machine's complete mutable state (the checkpoint
// payload encoding, without the frame). Two machines that simulated the same
// workload to the same cycle — dense vs skip-ahead, resumed vs uninterrupted
// — must produce byte-identical StateBytes; the differential oracles compare
// exactly that.
func (m *Machine) StateBytes() ([]byte, error) {
	s, err := m.SnapshotState()
	if err != nil {
		return nil, err
	}
	return encodeState(s)
}

// WriteCheckpoint snapshots the machine and writes it durably to dir,
// pruning old files down to keep. It only reads machine state, so emitting
// checkpoints cannot perturb simulated results.
func (m *Machine) WriteCheckpoint(dir string, keep int) (string, error) {
	s, err := m.SnapshotState()
	if err != nil {
		return "", err
	}
	payload, err := encodeState(s)
	if err != nil {
		return "", err
	}
	path, err := checkpoint.Write(dir, checkpoint.Checkpoint{
		Cycle:       uint64(m.Engine.Now()),
		Fingerprint: m.Fingerprint(),
		Payload:     payload,
	})
	if err != nil {
		return "", err
	}
	if keep > 0 {
		_ = checkpoint.Prune(dir, keep) // best-effort; stale files are harmless
	}
	return path, nil
}

// TryRestore loads the newest usable checkpoint from dir into the machine.
// Corrupt frames are already skipped by checkpoint.LoadLatest (CRC); a frame
// whose payload fails gob decoding or geometry validation is removed and the
// next-older one tried, degrading gracefully to "no checkpoint" (restored ==
// false, machine untouched) as the from-scratch floor.
func (m *Machine) TryRestore(dir string) (restored bool, fromCycle sim.Cycle, err error) {
	if dir == "" {
		return false, 0, nil
	}
	if err := m.Checkpointable(); err != nil {
		return false, 0, err
	}
	fp := m.Fingerprint()
	for {
		ck, path, err := checkpoint.LoadLatest(dir, fp)
		if errors.Is(err, checkpoint.ErrNoCheckpoint) {
			return false, 0, nil
		}
		if err != nil {
			return false, 0, err
		}
		s, derr := decodeState(ck.Payload)
		if derr == nil {
			derr = m.RestoreState(s) // validates before mutating
		}
		if derr == nil {
			return true, sim.Cycle(ck.Cycle), nil
		}
		// The frame passed its CRC but its payload is unusable (format drift,
		// geometry mismatch from a stale directory): discard and fall back.
		if rmErr := os.Remove(path); rmErr != nil {
			return false, 0, fmt.Errorf("machine: unusable checkpoint %s (%v) could not be removed: %w", path, derr, rmErr)
		}
	}
}

// RunCheckpointed is RunChecked with crash safety: it first attempts to
// restore the run's newest good checkpoint from cc.Dir, then advances through
// the warm-up and measured regions emitting a checkpoint every cc.Interval
// cycles (aligned to absolute boundaries). Statistics are reset exactly once
// at the warm-up/measure boundary — skipped when the restored cycle is
// already past it, because the reset's effects are part of the restored
// state. On an external abort (context cancellation, cycle budget) a final
// checkpoint is flushed so a resuming process loses nothing; watchdog and
// audit aborts deliberately do NOT checkpoint, as the machine state is
// suspect. It returns the cycle the run resumed from (0 when fresh).
//
// Checkpointing never perturbs results: restore(snapshot(M)) then stepping N
// cycles is bit-identical to stepping M the same N cycles, so the final
// statistics match an uninterrupted RunChecked exactly.
func (m *Machine) RunCheckpointed(ctx context.Context, warmup, measure sim.Cycle, cc CheckpointConfig) (resumedFrom sim.Cycle, err error) {
	if cc.Dir == "" {
		return 0, m.RunChecked(ctx, warmup, measure)
	}
	if err := m.Checkpointable(); err != nil {
		return 0, err
	}
	restored, from, err := m.TryRestore(cc.Dir)
	if err != nil {
		return 0, err
	}
	if restored {
		resumedFrom = from
	}

	end := warmup + measure
	if m.Engine.Now() < warmup {
		if err := m.stepCheckpointed(ctx, warmup-m.Engine.Now(), cc); err != nil {
			return resumedFrom, err
		}
	}
	if m.Engine.Now() == warmup {
		// Reset at the boundary even when the restore landed exactly on it: a
		// periodic checkpoint written at the warm-up boundary holds pre-reset
		// state (the write happens inside the warm-up stepping), so skipping
		// the reset here would silently count the warm-up as measured. When
		// the restored frame was already post-reset (an abort flush at this
		// cycle), resetting again is a no-op — no cycle has elapsed since.
		m.ResetStats()
	}
	if m.Engine.Now() >= end {
		// The checkpoint already covers the whole run (flushed at the final
		// boundary); the restored measured-region length stands.
		return resumedFrom, nil
	}
	start := m.measureStart
	err = m.stepCheckpointed(ctx, end-m.Engine.Now(), cc)
	m.measured = m.Engine.Now() - start
	return resumedFrom, err
}

// stepCheckpointed advances n cycles via StepChecked, pausing at absolute
// Interval boundaries to write a checkpoint. Write failures are swallowed
// for periodic checkpoints (the simulation result is unaffected; recovery
// just reaches further back) but a final abort-flush failure is reported
// alongside the abort.
func (m *Machine) stepCheckpointed(ctx context.Context, n sim.Cycle, cc CheckpointConfig) error {
	interval := cc.interval()
	for n > 0 {
		next := (m.Engine.Now()/interval + 1) * interval
		step := next - m.Engine.Now()
		if step > n {
			step = n
		}
		if err := m.StepChecked(ctx, step); err != nil {
			var abort *AbortError
			if errors.As(err, &abort) {
				// Graceful shutdown: the machine is healthy, the world wants
				// us gone. Flush state so resume continues from right here.
				if _, werr := m.WriteCheckpoint(cc.Dir, cc.keep()); werr != nil {
					return fmt.Errorf("%w (final checkpoint flush also failed: %v)", err, werr)
				}
			}
			return err
		}
		n -= step
		if m.Engine.Now() == next {
			_, _ = m.WriteCheckpoint(cc.Dir, cc.keep())
		}
	}
	return nil
}
