package machine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	"pivot/internal/mem"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// TestParallelWorkerCountInvariance: the sharded engine's contract is
// determinism regardless of goroutine scheduling, so every worker count —
// including counts above the shard count, which clamp — must produce the
// same bytes.
func TestParallelWorkerCountInvariance(t *testing.T) {
	tc := ckptCases()[1] // PIVOT policy: manager + RRBP active
	ctx := context.Background()
	var ref []byte
	for _, workers := range []int{1, 2, 3, 4, 8} {
		m := tc.buildPar(t, workers)
		if err := m.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := stateBytes(t, m)
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: state differs from workers=1 run", workers)
		}
	}
}

// TestParallelKillResume is satellite coverage for checkpointing under
// -parallel-sim: a parallel run killed mid-measure must resume from a
// barrier-aligned frame and finish byte-identical to an uninterrupted dense
// run. Checkpoint frames are only ever cut at Step boundaries, which the
// windowed loop treats as barriers, so a kill can never capture a torn
// mid-quantum state.
func TestParallelKillResume(t *testing.T) {
	tc := ckptCases()[0]
	ctx := context.Background()

	ref := tc.buildMode(t, true)
	if err := ref.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
		t.Fatalf("dense reference: %v", err)
	}

	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Interval: ckptInterval, Keep: 3}

	killed := tc.buildPar(t, 2)
	killed.Opt.MaxCycles = 72_000 // mid-measure, off any interval boundary
	if _, err := killed.RunCheckpointed(ctx, ckptWarmup, ckptMeasure, cc); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("killed run: err = %v, want cycle-budget abort", err)
	}

	resumed := tc.buildPar(t, 4)
	from, err := resumed.RunCheckpointed(ctx, ckptWarmup, ckptMeasure, cc)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if from < 72_000 {
		t.Fatalf("resumed from cycle %d, want the abort flush at >= 72000", from)
	}
	if got, want := stateBytes(t, resumed), stateBytes(t, ref); !bytes.Equal(got, want) {
		t.Error("parallel kill-and-resume final state differs from uninterrupted dense run")
	}
	if resumed.LCp95(0) != ref.LCp95(0) || resumed.BECommitted() != ref.BECommitted() {
		t.Errorf("whole-run stats differ: p95 %d vs %d, BE %d vs %d",
			resumed.LCp95(0), ref.LCp95(0), resumed.BECommitted(), ref.BECommitted())
	}
}

// TestParallelCheckpointBoundaries: a parallel run must cut exactly the same
// checkpoint files as a dense run — same names (cycle stamps at interval
// multiples) and same payload bytes — even though its engine advances in
// variable-width windows.
func TestParallelCheckpointBoundaries(t *testing.T) {
	ctx := context.Background()
	mk := func(opt Options) *Machine {
		opt.Policy = PolicyDefault
		return MustNew(KunpengConfig(4), opt,
			[]TaskSpec{lcTask(workload.Silo, 60_000)})
	}
	const interval sim.Cycle = 16_000

	runDir := func(m *Machine) string {
		dir := t.TempDir()
		if err := m.stepCheckpointed(ctx, 100_000, CheckpointConfig{Dir: dir, Interval: interval, Keep: 100}); err != nil {
			t.Fatalf("stepCheckpointed: %v", err)
		}
		return dir
	}
	dDir, pDir := runDir(mk(Options{Dense: true})), runDir(mk(Options{Parallel: 2}))

	list := func(dir string) []string {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		return names
	}
	dNames, pNames := list(dDir), list(pDir)
	if len(pNames) != len(dNames) || len(pNames) != int(100_000/interval) {
		t.Fatalf("checkpoint counts differ: parallel %d, dense %d, want %d",
			len(pNames), len(dNames), 100_000/interval)
	}
	for i := range dNames {
		if pNames[i] != dNames[i] {
			t.Fatalf("checkpoint file %d differs: %s vs %s", i, pNames[i], dNames[i])
		}
		got, want := payloadAt(t, pDir+"/"+pNames[i]), payloadAt(t, dDir+"/"+dNames[i])
		if !bytes.Equal(got, want) {
			t.Errorf("checkpoint %s payload differs between modes", pNames[i])
		}
	}
}

// flaky is a deterministic counter-driven mem.Fault: its decisions depend
// only on how many times each hook ran, and faulted stations pin themselves
// dense, so dense and parallel runs present it the identical call sequence.
type flaky struct{ drops, spikes, holds uint64 }

func (f *flaky) DropAccept(sim.Cycle) bool { f.drops++; return f.drops%97 == 0 }
func (f *flaky) ExtraLatency(sim.Cycle) sim.Cycle {
	f.spikes++
	if f.spikes%41 == 0 {
		return 7
	}
	return 0
}
func (f *flaky) HoldGrant(sim.Cycle) bool { f.holds++; return f.holds%61 == 0 }

// TestParallelFaultEquivalence: fault injection perturbs admission, latency
// and arbitration on all four MSC stations — all coordinator-side — and the
// parallel run must still match dense byte-for-byte. Faults are detached
// before snapshotting (fault state lives outside the snapshot surface, which
// is why faulted runs refuse checkpointing).
func TestParallelFaultEquivalence(t *testing.T) {
	tc := ckptCases()[0]
	ctx := context.Background()
	run := func(m *Machine) *Machine {
		t.Helper()
		for _, comp := range mem.MSCs {
			if err := m.SetFault(comp, &flaky{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
			t.Fatalf("faulted run: %v", err)
		}
		for _, comp := range mem.MSCs {
			if err := m.SetFault(comp, nil); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	dense := run(tc.buildMode(t, true))
	par := run(tc.buildPar(t, 2))
	if got, want := stateBytes(t, par), stateBytes(t, dense); !bytes.Equal(got, want) {
		t.Error("fault-injected parallel state differs from dense")
	}
	var dj, pj bytes.Buffer
	if err := dense.Snapshot().WriteJSON(&dj); err != nil {
		t.Fatal(err)
	}
	if err := par.Snapshot().WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj.Bytes(), dj.Bytes()) {
		t.Error("fault-injected result snapshots differ")
	}
}

// TestThrottleIdleEquivalence targets the MBA quiescence fix: ports whose
// heads are held by the bandwidth throttle used to pin the machine dense
// (the aux ticker reported "work now" the whole time); the throttle now
// reports its real next-release cycle so skip-ahead and the parallel
// coordinator elide throttled intervals — and must still match dense
// byte-for-byte, including the Delayed compensation counter.
func TestThrottleIdleEquivalence(t *testing.T) {
	mk := func(opt Options) *Machine {
		opt.Policy = PolicyDefault
		m := MustNew(KunpengConfig(4), opt,
			append([]TaskSpec{lcTask(workload.Silo, 2000)}, beTasks(workload.IBench, 3)...))
		for core := 1; core < 4; core++ {
			m.MBA().SetLevel(mem.PartID(core), 2) // floor: ~50x TBurst between grants
		}
		return m
	}
	d, s, p := mk(Options{Dense: true}), mk(Options{}), mk(Options{Parallel: 2})
	d.Run(10_000, 90_000)
	s.Run(10_000, 90_000)
	p.Run(10_000, 90_000)
	if d.MBA().Delayed == 0 {
		t.Fatal("throttle never held a request; test exercises nothing")
	}
	ref := stateBytes(t, d)
	if got := stateBytes(t, s); !bytes.Equal(got, ref) {
		t.Errorf("throttled skip state differs (%d vs %d bytes)", len(got), len(ref))
	}
	if got := stateBytes(t, p); !bytes.Equal(got, ref) {
		t.Errorf("throttled parallel state differs (%d vs %d bytes)", len(got), len(ref))
	}
	if s.MBA().Delayed != d.MBA().Delayed || p.MBA().Delayed != d.MBA().Delayed {
		t.Errorf("throttle Delayed counters differ: dense %d, skip %d, parallel %d",
			d.MBA().Delayed, s.MBA().Delayed, p.MBA().Delayed)
	}
	if s.BECommitted() != d.BECommitted() || p.BECommitted() != d.BECommitted() {
		t.Errorf("BE committed differ: dense %d, skip %d, parallel %d",
			d.BECommitted(), s.BECommitted(), p.BECommitted())
	}
}

// TestParallelFlightFallback: the flight recorder's pooled span allocation is
// issue-order sensitive, so enabling it on a parallel machine must quietly
// fall back to the serial loop rather than diverge.
func TestParallelFlightFallback(t *testing.T) {
	tc := ckptCases()[0]
	m := tc.buildPar(t, 2)
	if !m.ParallelActive() {
		t.Fatal("parallel not active before EnableFlight")
	}
	m.EnableFlight(flightCfg)
	if m.ParallelActive() {
		t.Fatal("parallel still active with a flight recorder attached")
	}
	m.Run(10_000, 30_000) // must run clean on the fallback path
}

// TestParallelDenseWins: Dense is the trusted reference mode and must
// override a Parallel request.
func TestParallelDenseWins(t *testing.T) {
	m := MustNew(KunpengConfig(4),
		Options{Policy: PolicyDefault, Dense: true, Parallel: 4},
		[]TaskSpec{lcTask(workload.Silo, 2000)})
	if m.ParallelActive() {
		t.Fatal("Parallel should not activate when Dense is set")
	}
	if !m.Engine.Dense() {
		t.Fatal("Dense mode lost")
	}
}
