package machine

import (
	"fmt"

	"pivot/internal/mem"
	"pivot/internal/sim"
	"pivot/internal/stats"
)

// DefaultStatsEpoch is the sampling period used when EnableStats is given a
// zero epoch: fine enough to resolve the bandwidth-monitor windows (100k
// cycles) with ~20 points each, coarse enough that a full-scale run stays
// within the sample ring.
const DefaultStatsEpoch sim.Cycle = 5_000

// EnableStats builds the machine's gem5-style stats registry: every
// component registers its instruments, an epoch sampler snapshots them from
// the tick loop every epochCycles into a ring of ringCap samples (zeros
// select DefaultStatsEpoch / stats.DefaultRingCap), and StatsDump /
// BuildTimeline export the result. Instruments only *read* component state,
// so enabling stats cannot change any simulated outcome.
//
// Call after New and before Run; calling twice is a no-op.
func (m *Machine) EnableStats(epochCycles sim.Cycle, ringCap int) {
	if m.statsReg != nil {
		return
	}
	if epochCycles == 0 {
		epochCycles = DefaultStatsEpoch
	}
	reg := stats.NewRegistry()

	for i, c := range m.Cores {
		c.RegisterStats(reg, fmt.Sprintf("cpu%d", i))
	}
	for i, p := range m.ports {
		p.l1.RegisterStats(reg, fmt.Sprintf("cpu%d.l1", i))
		p.l2.RegisterStats(reg, fmt.Sprintf("cpu%d.l2", i))
		p.mshr.RegisterStats(reg, fmt.Sprintf("cpu%d.l1.mshr", i))
		port := p
		reg.Gauge(fmt.Sprintf("cpu%d.port_out", i),
			func() float64 { return float64(len(port.out)) })
	}
	m.llc.RegisterStats(reg, "llc")
	m.ic.RegisterStats(reg, "ic")
	m.bus.RegisterStats(reg, "bus")
	m.bw.RegisterStats(reg, "bwctrl", len(m.tasks))
	m.mc.RegisterStats(reg, "dram")
	for _, lc := range m.lcs {
		if lc.RRBP != nil {
			lc.RRBP.RegisterStats(reg, fmt.Sprintf("rrbp%d", lc.Core))
		}
		src := lc.Source
		reg.Gauge(fmt.Sprintf("machine.lc%d.backlog", lc.Core),
			func() float64 { return float64(src.QueueDepth()) })
		reg.Counter(fmt.Sprintf("machine.lc%d.completed", lc.Core),
			func() uint64 { return src.Completed() })
		reg.Counter(fmt.Sprintf("machine.lc%d.lat_dropped", lc.Core),
			func() uint64 { return src.DroppedLatencies() })
		// Shaped load models additionally expose the instantaneous arrival
		// rate and per-phase completions, so timelines attribute tail shifts
		// to the load phase that caused them.
		if src.Model().NumPhases() > 1 {
			reg.Gauge(fmt.Sprintf("machine.lc%d.load_rate_mcycle", lc.Core),
				func() float64 { return src.RatePerMCycle(m.statsNow) })
			for p := 0; p < src.Model().NumPhases(); p++ {
				phase := p
				reg.Counter(fmt.Sprintf("machine.lc%d.phase%d.completed", lc.Core, phase),
					func() uint64 { return src.PhaseCompleted()[phase] })
			}
		}
	}
	m.latDist = reg.Distribution("machine.lc_mem_latency", 0)

	m.statsReg = reg
	m.statsOn = true
	m.statsEpoch = epochCycles
	m.sampler = stats.NewSampler(reg, uint64(epochCycles), ringCap)
	// Registered after every component, so each sample sees the cycle's
	// final state. The ticker reports its next epoch boundary so skip-ahead
	// never jumps over a sample point.
	m.Engine.Register(&samplerTicker{m: m, epoch: epochCycles})
}

// samplerTicker drives the epoch sampler and bounds engine skips to epoch
// boundaries: samples must land at exactly the same cycles as in a dense
// run, or the sampled time series (and therefore exported timelines) would
// diverge between the two modes.
type samplerTicker struct {
	m     *Machine
	epoch sim.Cycle
}

func (s *samplerTicker) Tick(now sim.Cycle) {
	if now%s.epoch == 0 {
		s.m.statsNow = now
		s.m.sampler.Sample(uint64(now))
	}
}

func (s *samplerTicker) NextWork(now sim.Cycle) (sim.Cycle, bool) {
	if now%s.epoch == 0 {
		return 0, false
	}
	return now + (s.epoch - now%s.epoch), true
}

// StatsEnabled reports whether EnableStats has been called.
func (m *Machine) StatsEnabled() bool { return m.statsReg != nil }

// StatsRegistry exposes the instrument registry (nil until EnableStats).
func (m *Machine) StatsRegistry() *stats.Registry { return m.statsReg }

// StatsSampler exposes the epoch sampler (nil until EnableStats).
func (m *Machine) StatsSampler() *stats.Sampler { return m.sampler }

// StatsDump snapshots the registry and sampled series. It panics if
// EnableStats was never called.
func (m *Machine) StatsDump() stats.Dump {
	if m.statsReg == nil {
		panic("machine: StatsDump before EnableStats")
	}
	return m.statsReg.Dump(m.sampler)
}

// BuildTimeline renders the run as a Chrome trace-event timeline under the
// given pid/name: one duration event per sampled LC memory request
// (Options.SampleRequests bounds how many were recorded), plus one counter
// track per gauge/rate instrument charting the epoch series. The result
// loads directly in ui.perfetto.dev or chrome://tracing.
func (m *Machine) BuildTimeline(pid int, name string) *stats.Timeline {
	tl := stats.NewTimeline()
	m.AppendTimeline(tl, pid, name)
	return tl
}

// AppendTimeline adds this run's tracks to an existing timeline (multi-run
// comparisons distinguish runs by pid).
func (m *Machine) AppendTimeline(tl *stats.Timeline, pid int, name string) {
	tl.ProcessName(pid, name)
	named := map[int]bool{}
	for _, rec := range m.sampled {
		core := rec.CoreID
		if !named[core] {
			named[core] = true
			tl.ThreadName(pid, core, fmt.Sprintf("core %d LC requests", core))
		}
		cat := "lc-load"
		if rec.Critical {
			cat = "lc-load-critical"
		}
		args := map[string]any{"critical": rec.Critical}
		for c := mem.CompL1; c < mem.NumComponents; c++ {
			if v := rec.Split[c]; v > 0 {
				args[c.String()] = v
			}
		}
		tl.Complete(pid, core, fmt.Sprintf("pc %#x", rec.PC), cat,
			rec.IssuedAt, rec.CompletedAt-rec.IssuedAt, args)
	}
	if m.sampler != nil {
		tl.AddSeries(pid, m.statsReg, m.sampler, func(in *stats.Instrument) bool {
			return in.Kind() == stats.KindGauge || in.Kind() == stats.KindRate
		})
	}
}
