package machine

import (
	"testing"

	"pivot/internal/sim"
	"pivot/internal/workload"
)

// TestRetirePathDoesNotAllocate is the regression test for the per-retire
// closure chain this PR removed: the retire observer is one struct allocated
// at machine construction, and invoking the hook — for the full PIVOT fan-out
// (profiler + potential-filtered RRBP) and for the CBP path — must not
// allocate per call.
func TestRetirePathDoesNotAllocate(t *testing.T) {
	for _, tc := range ckptCases()[1:] { // pivot-masstree, cbp-xapian
		t.Run(tc.name, func(t *testing.T) {
			m := tc.build(t)
			lc := m.lcs[0]
			hook := m.retireHook(lc)
			if hook == nil {
				t.Fatal("no retire hook for an LC task with predictors attached")
			}
			pcs := []uint64{0x400, 0x408, 0x410, 0x418}
			long := m.Cfg.Core.LongStall
			// Warm one-time map growth inside the consumers, then demand a
			// zero-allocation steady state.
			for _, pc := range pcs {
				hook(pc, long+10, true)
				hook(pc, 1, false)
			}
			i := 0
			allocs := testing.AllocsPerRun(1000, func() {
				pc := pcs[i&3]
				i++
				hook(pc, long+sim.Cycle(i&7), i&1 == 0)
				hook(pc, 1, false)
			})
			if allocs != 0 {
				t.Fatalf("retire path allocates %.2f objects/op, want 0", allocs)
			}
		})
	}
}

// TestDisabledStatsHaveNoHotPathFootprint: without EnableStats, the machine
// must register no sampler ticker, keep the cached statsOn gate false, and
// build no instruments — so per-cycle and per-request paths pay only a single
// predictable-false branch.
func TestDisabledStatsHaveNoHotPathFootprint(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	if m.statsOn || m.StatsEnabled() || m.latDist != nil || m.sampler != nil {
		t.Fatal("stats machinery present before EnableStats")
	}
	m.Run(10_000, 20_000)
	if m.statsOn || m.latDist != nil {
		t.Fatal("running the machine materialised stats machinery")
	}

	on := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	on.EnableStats(5_000, 0)
	if !on.statsOn || on.latDist == nil || on.sampler == nil {
		t.Fatal("EnableStats did not arm the cached gate")
	}
}

// benchStep measures steady-state machine stepping (the benchmark mix of
// BenchmarkSimulatorCyclesPerSecond) with or without the stats framework, so
// `go test -bench 'MachineStep' internal/machine` quantifies the
// instrumented-run overhead and shows disabled-stats runs pay none.
func benchStep(b *testing.B, stats bool) {
	tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	if stats {
		m.EnableStats(DefaultStatsEpoch, 0)
	}
	m.Run(50_000, 0) // warm caches and queues
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Engine.Step(10_000)
	}
	b.StopTimer()
	cycles := float64(b.N) * 10_000
	b.ReportMetric(cycles/b.Elapsed().Seconds(), "sim-cycles/s")
}

func BenchmarkMachineStepStatsOff(b *testing.B) { benchStep(b, false) }
func BenchmarkMachineStepStatsOn(b *testing.B)  { benchStep(b, true) }
