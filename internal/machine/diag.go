package machine

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"pivot/internal/sim"
)

// This file is the machine's self-defense layer: a diagnostic snapshot of
// the simulated state (what is the pipeline stuck on?), a forward-progress
// watchdog, an opt-in invariant auditor, and StepChecked/RunChecked — the
// checked equivalents of Step/Run that the experiment harness drives so a
// wedged or corrupted simulation aborts with evidence instead of hanging.

// CoreDiag is one core's slice of a Diagnostic.
type CoreDiag struct {
	Core      int    `json:"core"`
	Kind      string `json:"kind"` // "LC" or "BE"
	Committed uint64 `json:"committed"`
	ROBUsed   int    `json:"robUsed"`
	LQUsed    int    `json:"lqUsed"`
	SQUsed    int    `json:"sqUsed"`
	// Head describes the instruction blocking the ROB head ("-" when empty).
	HeadPC    uint64 `json:"headPC"`
	HeadKind  string `json:"headKind"`
	HeadState string `json:"headState"`
	HeadStall uint64 `json:"headStallCycles"`
	// PortOut and MSHRs are the core's private memory-side occupancy.
	PortOut int `json:"portOut"`
	MSHRs   int `json:"mshrs"`
	// Backlog is the LC arrival-queue depth (0 for BE tasks).
	Backlog int `json:"arrivalBacklog"`
}

// QueueDiag is one MSC station's queue occupancy.
type QueueDiag struct {
	Normal    int    `json:"normal"`
	Prio      int    `json:"prio"`
	CapNormal int    `json:"capNormal"`
	CapPrio   int    `json:"capPrio"`
	Refused   uint64 `json:"refused"`
}

// Diagnostic is a machine state snapshot taken when a run aborts (watchdog,
// audit violation, panic, deadline). It is JSON-serialisable so the harness
// can journal it, and String renders the human-readable dump the docs
// describe.
type Diagnostic struct {
	Cycle  uint64 `json:"cycle"`
	Policy string `json:"policy"`
	Config string `json:"config"`

	Cores []CoreDiag `json:"cores"`

	IC      QueueDiag `json:"interconnect"`
	Bus     QueueDiag `json:"bus"`
	BWCtrl  QueueDiag `json:"bwctrl"`
	MemCtrl QueueDiag `json:"memctrl"`
	// PendingResp counts DRAM completions still in the response pipe.
	PendingResp int `json:"pendingResp"`

	// ReqsLive is issued-minus-recycled pooled requests; ReqsAccounted is
	// how many of them the queues above (plus delay slots) explain. The two
	// are equal in a healthy machine.
	ReqsLive      uint64 `json:"reqsLive"`
	ReqsAccounted uint64 `json:"reqsAccounted"`
}

// Diagnose captures the machine's current state for failure reports.
func (m *Machine) Diagnose() Diagnostic {
	d := Diagnostic{
		Cycle:  uint64(m.Engine.Now()),
		Policy: m.Opt.Policy.String(),
		Config: m.Cfg.Name,
	}
	for i, c := range m.Cores {
		cd := CoreDiag{
			Core:      i,
			Kind:      "BE",
			Committed: c.Stats.Committed,
			ROBUsed:   c.ROBOccupancy(),
			LQUsed:    c.LQUsed(),
			SQUsed:    c.SQUsed(),
			HeadKind:  "-",
			HeadState: "-",
			PortOut:   len(m.ports[i].out),
			MSHRs:     m.ports[i].mshr.Len(),
		}
		if m.tasks[i].Kind == TaskLC {
			cd.Kind = "LC"
		}
		if h, ok := c.ROBHeadInfo(); ok {
			cd.HeadPC = h.PC
			cd.HeadKind = h.Kind.String()
			cd.HeadState = h.State
			cd.HeadStall = uint64(h.StallCycles)
		}
		d.Cores = append(d.Cores, cd)
	}
	for _, lc := range m.lcs {
		d.Cores[lc.Core].Backlog = lc.Source.QueueDepth()
	}

	queueDiag := func(normal, prio int, capN, capP int, refused uint64) QueueDiag {
		return QueueDiag{Normal: normal, Prio: prio, CapNormal: capN, CapPrio: capP, Refused: refused}
	}
	icN, icP := m.ic.QueueLen()
	d.IC = queueDiag(icN, icP, m.ic.Config().CapNormal, m.ic.Config().CapPrio, m.ic.Stats.Refused)
	busN, busP := m.bus.QueueLen()
	d.Bus = queueDiag(busN, busP, m.bus.Config().CapNormal, m.bus.Config().CapPrio, m.bus.Stats.Refused)
	bwN, bwP := m.bw.Station.QueueLen()
	d.BWCtrl = queueDiag(bwN, bwP, m.bw.Station.Config().CapNormal, m.bw.Station.Config().CapPrio, m.bw.Station.Stats.Refused)
	mcN, mcP := m.mc.QueueLen()
	d.MemCtrl = queueDiag(mcN, mcP, m.mc.Config().CapNormal, m.mc.Config().CapPrio, m.mc.Stats.Refused)
	d.PendingResp = m.mc.PendingResponses()

	d.ReqsLive = m.reqsIssued - m.reqsRecycled
	d.ReqsAccounted = uint64(m.accountedReqs())
	return d
}

// accountedReqs counts live requests at every place the machine can hold one.
func (m *Machine) accountedReqs() int {
	n := m.reqsDelayed
	for _, p := range m.ports {
		n += len(p.out)
	}
	icN, icP := m.ic.QueueLen()
	busN, busP := m.bus.QueueLen()
	bwN, bwP := m.bw.Station.QueueLen()
	mcN, mcP := m.mc.QueueLen()
	n += icN + icP + busN + busP + bwN + bwP + mcN + mcP
	n += m.mc.PendingResponses()
	return n
}

// String renders the dump an operator reads when a run aborts: one line per
// core (what instruction is the head stuck on), then the memory-path queue
// occupancies and the request-conservation balance.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine diagnostic @ cycle %d (%s, policy %s)\n", d.Cycle, d.Config, d.Policy)
	for _, c := range d.Cores {
		fmt.Fprintf(&b, "  core %d [%s] committed=%d rob=%d lq=%d sq=%d out=%d mshr=%d",
			c.Core, c.Kind, c.Committed, c.ROBUsed, c.LQUsed, c.SQUsed, c.PortOut, c.MSHRs)
		if c.HeadKind != "-" {
			fmt.Fprintf(&b, " head=%s pc=0x%x state=%s stall=%d", c.HeadKind, c.HeadPC, c.HeadState, c.HeadStall)
		}
		if c.Backlog > 0 {
			fmt.Fprintf(&b, " backlog=%d", c.Backlog)
		}
		b.WriteByte('\n')
	}
	q := func(name string, qd QueueDiag) {
		fmt.Fprintf(&b, "  %-12s normal=%d/%d prio=%d/%d refused=%d\n",
			name, qd.Normal, qd.CapNormal, qd.Prio, qd.CapPrio, qd.Refused)
	}
	q("interconnect", d.IC)
	q("bus", d.Bus)
	q("bwctrl", d.BWCtrl)
	q("memctrl", d.MemCtrl)
	fmt.Fprintf(&b, "  pendingResp=%d reqs live=%d accounted=%d\n", d.PendingResp, d.ReqsLive, d.ReqsAccounted)
	return b.String()
}

// StallError reports a watchdog abort: no core committed an instruction for
// a full watchdog window.
type StallError struct {
	Window sim.Cycle
	Diag   Diagnostic
}

func (e *StallError) Error() string {
	return fmt.Sprintf("machine: no instruction committed for %d cycles (forward-progress watchdog) at cycle %d",
		e.Window, e.Diag.Cycle)
}

// AuditError reports invariant-auditor violations.
type AuditError struct {
	Violations []string
	Diag       Diagnostic
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("machine: invariant audit failed at cycle %d: %s",
		e.Diag.Cycle, strings.Join(e.Violations, "; "))
}

// PanicError is a recovered simulation panic, converted to an error by the
// run layers so one corrupted run cannot crash a whole sweep.
type PanicError struct {
	Value any
	Stack string
	Diag  Diagnostic
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("machine: simulation panic: %v", e.Value)
}

// ErrCycleBudget marks a run that exceeded Options.MaxCycles.
var ErrCycleBudget = errors.New("simulated-cycle budget exceeded")

// AbortError wraps an externally-caused abort (context deadline or
// cancellation, cycle budget) with the machine state at abort time.
type AbortError struct {
	Cause error
	Diag  Diagnostic
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("machine: run aborted at cycle %d: %v", e.Diag.Cycle, e.Cause)
}

// Unwrap exposes the cause for errors.Is(err, context.DeadlineExceeded) etc.
func (e *AbortError) Unwrap() error { return e.Cause }

// DiagOf extracts the diagnostic snapshot carried by a machine abort error,
// if any.
func DiagOf(err error) (Diagnostic, bool) {
	var se *StallError
	if errors.As(err, &se) {
		return se.Diag, true
	}
	var ae *AuditError
	if errors.As(err, &ae) {
		return ae.Diag, true
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe.Diag, true
	}
	var be *AbortError
	if errors.As(err, &be) {
		return be.Diag, true
	}
	return Diagnostic{}, false
}

// checkGranule is how many cycles StepChecked advances between guard checks.
const checkGranule sim.Cycle = 2048

// DefaultWatchdogWindow is the forward-progress window CLI tools default to:
// a healthy machine commits instructions every few cycles, so 200K cycles
// with zero commits across all cores means the simulation is wedged, while
// the window stays far above any legitimate commit gap.
const DefaultWatchdogWindow sim.Cycle = 200_000

// StepChecked advances the machine n cycles like Engine.Step, but in
// granules, checking between granules for context cancellation, the
// forward-progress watchdog, the simulated-cycle budget, and (when
// Options.Audit is set) the state invariants. Granule stepping never changes
// simulated behaviour — Step(a) then Step(b) is identical to Step(a+b) — so
// checked and unchecked runs produce bit-identical statistics.
func (m *Machine) StepChecked(ctx context.Context, n sim.Cycle) error {
	if ctx == nil {
		ctx = context.Background()
	}
	granule := checkGranule
	if w := m.Opt.WatchdogWindow; w > 0 && w < granule {
		granule = w
	}
	auditEpoch := m.Opt.AuditEpoch
	if auditEpoch == 0 {
		auditEpoch = DefaultStatsEpoch
	}
	if m.Opt.Audit && auditEpoch < granule {
		granule = auditEpoch
	}

	lastCommits := m.committedTotal()
	lastProgress := m.Engine.Now()
	lastAudit := m.Engine.Now()

	for n > 0 {
		if err := ctx.Err(); err != nil {
			return &AbortError{Cause: err, Diag: m.Diagnose()}
		}
		if m.Opt.MaxCycles > 0 && m.Engine.Now() >= m.Opt.MaxCycles {
			return &AbortError{Cause: ErrCycleBudget, Diag: m.Diagnose()}
		}
		step := granule
		if step > n {
			step = n
		}
		m.Engine.Step(step)
		n -= step
		now := m.Engine.Now()
		if m.progress != nil {
			m.progress.SetCycle(uint64(now))
		}

		if w := m.Opt.WatchdogWindow; w > 0 {
			if cur := m.committedTotal(); cur != lastCommits {
				lastCommits = cur
				lastProgress = now
			} else if now-lastProgress >= w {
				return &StallError{Window: w, Diag: m.Diagnose()}
			}
		}
		if m.Opt.Audit && now-lastAudit >= auditEpoch {
			lastAudit = now
			if err := m.AuditNow(); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunChecked is Run with the StepChecked guards active across both the
// warm-up and measured regions.
func (m *Machine) RunChecked(ctx context.Context, warmup, measure sim.Cycle) error {
	if err := m.StepChecked(ctx, warmup); err != nil {
		return err
	}
	m.ResetStats()
	start := m.Engine.Now()
	err := m.StepChecked(ctx, measure)
	m.measured = m.Engine.Now() - start
	return err
}

func (m *Machine) committedTotal() uint64 {
	var sum uint64
	for _, c := range m.Cores {
		sum += c.Stats.Committed
	}
	return sum
}

// AuditNow checks the machine's state invariants between cycles and returns
// an *AuditError listing every violation found (nil when healthy):
//
//   - request conservation: every pooled request issued and not yet recycled
//     must sit in exactly one place the auditor can count (a delay slot, a
//     port egress queue, an MSC queue, or DRAM's response pipe);
//   - queue-capacity bounds: no queue may exceed its configured capacity;
//   - bandwidth credit: DRAM cannot have moved more lines since the last
//     stats reset than its channels' peak rate allows.
func (m *Machine) AuditNow() error {
	var v []string

	live := m.reqsIssued - m.reqsRecycled
	if acc := m.accountedReqs(); uint64(acc) != live {
		v = append(v, fmt.Sprintf("request conservation: %d live (issued %d - recycled %d) but %d accounted",
			live, m.reqsIssued, m.reqsRecycled, acc))
	}

	checkCap := func(name string, n, p, capN, capP int) {
		if n > capN {
			v = append(v, fmt.Sprintf("%s normal queue %d exceeds capacity %d", name, n, capN))
		}
		if p > capP {
			v = append(v, fmt.Sprintf("%s priority queue %d exceeds capacity %d", name, p, capP))
		}
	}
	icN, icP := m.ic.QueueLen()
	checkCap("interconnect", icN, icP, m.ic.Config().CapNormal, m.ic.Config().CapPrio)
	busN, busP := m.bus.QueueLen()
	checkCap("bus", busN, busP, m.bus.Config().CapNormal, m.bus.Config().CapPrio)
	bwN, bwP := m.bw.Station.QueueLen()
	checkCap("bwctrl", bwN, bwP, m.bw.Station.Config().CapNormal, m.bw.Station.Config().CapPrio)
	mcN, mcP := m.mc.QueueLen()
	checkCap("memctrl", mcN, mcP, m.mc.Config().CapNormal, m.mc.Config().CapPrio)
	// Egress admission is gated on len(out) < PortOutCap at issue time, but
	// the append lands a few cycles later via the delay wheel, so the queue
	// transiently overshoots the cap when downstream refuses to drain. The
	// structural bounds that DO hold: every demand load in the queue owns an
	// MSHR entry, stores are limited by the store queue, and prefetches are
	// admitted only below PortOutCap/2.
	outBound := m.Cfg.PortOutCap + m.Cfg.L1.MSHRs + m.Cfg.Core.SQSize + m.Cfg.PortOutCap/2
	for i, p := range m.ports {
		loads := 0
		for _, r := range p.out {
			if !r.IsWrite && !r.Prefetch {
				loads++
			}
		}
		if loads > m.Cfg.L1.MSHRs {
			v = append(v, fmt.Sprintf("core %d egress holds %d demand loads but only %d MSHRs exist", i, loads, m.Cfg.L1.MSHRs))
		}
		if len(p.out) > outBound {
			v = append(v, fmt.Sprintf("core %d egress queue %d exceeds structural bound %d", i, len(p.out), outBound))
		}
		if p.mshr.Len() > m.Cfg.L1.MSHRs {
			v = append(v, fmt.Sprintf("core %d MSHR occupancy %d exceeds %d", i, p.mshr.Len(), m.Cfg.L1.MSHRs))
		}
	}

	// Bandwidth credit: each channel moves at most one line per TBurst
	// cycles, with one in-flight burst of slack per channel at the window
	// edges.
	dcfg := m.mc.Config()
	elapsed := m.Engine.Now() - m.statsResetAt
	maxLines := (uint64(elapsed)/uint64(dcfg.TBurst) + 1) * uint64(dcfg.Channels)
	if moved := m.mc.Stats.LinesMoved; moved > maxLines {
		v = append(v, fmt.Sprintf("bandwidth credit: %d lines moved in %d cycles exceeds peak %d (%d channels, TBurst %d)",
			moved, elapsed, maxLines, dcfg.Channels, dcfg.TBurst))
	}

	if len(v) > 0 {
		return &AuditError{Violations: v, Diag: m.Diagnose()}
	}
	return nil
}
