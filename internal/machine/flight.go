package machine

import (
	"pivot/internal/flight"
	"pivot/internal/mem"
	"pivot/internal/stats"
)

// This file wires the per-request flight recorder (internal/flight) into the
// machine, mirroring the EnableStats pattern: opt-in before the run starts,
// nil/flag fast path when disabled, purely observational when enabled.

// EnableFlight attaches a flight recorder. Call before running; calling twice
// keeps the first recorder. The recorder is an observer only: it never ticks,
// so it cannot affect quiescence or skip-ahead, and its presence is invisible
// to every simulated result.
func (m *Machine) EnableFlight(cfg flight.Config) {
	if m.flightRec != nil {
		return
	}
	// The recorder's pooled span buffers are handed out in request-issue
	// order, which sharded execution reorders; fall back to the serial tick
	// loop so flight reports stay byte-identical to the dense reference.
	m.disableParallel()
	m.flightRec = flight.New(cfg)
	m.flightOn = true
}

// FlightEnabled reports whether a flight recorder is attached.
func (m *Machine) FlightEnabled() bool { return m.flightRec != nil }

// FlightRecorder returns the attached recorder (nil when disabled).
func (m *Machine) FlightRecorder() *flight.Recorder { return m.flightRec }

// FlightReport builds the tail-attribution report from everything recorded
// since the last ResetStats, or nil when the recorder is disabled.
func (m *Machine) FlightReport() *flight.Report {
	if m.flightRec == nil {
		return nil
	}
	return m.flightRec.Report()
}

// SetProgress attaches a live telemetry feed: StepChecked bumps it after
// every granule. The feed uses atomic counters, so an HTTP endpoint may read
// it concurrently with the simulation.
func (m *Machine) SetProgress(p *stats.Progress) { m.progress = p }

// forEachInFlight visits every live request the machine holds, in a fixed
// deterministic order (the delay wheel slot by slot, then per-core egress
// queues, then the MSC stations down the path, then DRAM). The walk is a pure
// function of simulated state, so it enumerates identically before a
// checkpoint snapshot and after the matching restore — which is what lets the
// flight recorder detach span chains from in-flight requests on snapshot and
// reattach them on resume.
func (m *Machine) forEachInFlight(f func(*mem.Req)) {
	for slot := range m.delays.wheel {
		for _, e := range m.delays.wheel[slot] {
			if e.req != nil {
				f(e.req)
			}
		}
	}
	for _, p := range m.ports {
		for _, r := range p.out {
			f(r)
		}
	}
	m.ic.EachReq(f)
	m.bus.EachReq(f)
	m.bw.Station.EachReq(f)
	m.mc.EachReq(f)
}

// flightSnapshot captures the recorder plus the span chains of in-flight
// requests (nil when the recorder is disabled).
func (m *Machine) flightSnapshot() *flight.RecorderState {
	if m.flightRec == nil {
		return nil
	}
	var live []*mem.Trace
	m.forEachInFlight(func(r *mem.Req) { live = append(live, r.Trace) })
	return m.flightRec.State(live)
}

// flightRestore reattaches a snapshot's recorder state and in-flight span
// chains after the component states have been applied.
func (m *Machine) flightRestore(s *flight.RecorderState) {
	if m.flightRec == nil || s == nil {
		return
	}
	live := m.flightRec.Restore(s)
	i := 0
	m.forEachInFlight(func(r *mem.Req) {
		if i < len(live) {
			r.Trace = live[i]
		} else {
			// More live requests than recorded chains can only happen with a
			// hand-edited snapshot; give the extras empty chains rather than
			// nil so their completions still record.
			r.Trace = m.flightRec.StartTrace()
		}
		i++
	})
}
