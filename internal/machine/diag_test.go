package machine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pivot/internal/mem"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// holdAll wedges every station it is attached to: no grants ever issue, so
// in-flight loads never complete and the cores stop committing once their
// ROBs back up behind the stalled heads.
type holdAll struct{}

func (holdAll) DropAccept(sim.Cycle) bool        { return false }
func (holdAll) ExtraLatency(sim.Cycle) sim.Cycle { return 0 }
func (holdAll) HoldGrant(sim.Cycle) bool         { return true }

func wedgedMachine(t *testing.T, opt Options) *Machine {
	t.Helper()
	tasks := append([]TaskSpec{lcTask(workload.Masstree, 2000)}, beTasks(workload.IBench, 3)...)
	m, err := New(KunpengConfig(4), opt, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range mem.MSCs {
		if err := m.SetFault(comp, holdAll{}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestWatchdogAbortsStalledMachine(t *testing.T) {
	m := wedgedMachine(t, Options{Policy: PolicyDefault, WatchdogWindow: 5_000})
	err := m.StepChecked(context.Background(), 300_000)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("wedged machine returned %v, want *StallError", err)
	}
	if se.Diag.Cycle == 0 || len(se.Diag.Cores) != 4 || se.Diag.IC.CapNormal == 0 {
		t.Fatalf("diagnostic snapshot incomplete: %+v", se.Diag)
	}
	// The operator dump must name the stations and show per-core ROB state.
	dump := se.Diag.String()
	for _, want := range []string{"core", "rob", "mshr", "interconnect", "memctrl"} {
		if !strings.Contains(dump, want) {
			t.Errorf("diagnostic dump missing %q:\n%s", want, dump)
		}
	}
	if d, ok := DiagOf(err); !ok || d.Cycle != se.Diag.Cycle {
		t.Fatal("DiagOf failed to extract the stall diagnostic")
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Silo, 3000)}, beTasks(workload.IBench, 2)...)
	m, err := New(KunpengConfig(4), Options{Policy: PolicyDefault, WatchdogWindow: 5_000}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunChecked(context.Background(), 50_000, 100_000); err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
	if m.MeasuredCycles() != 100_000 {
		t.Fatalf("measured %d cycles, want 100000", m.MeasuredCycles())
	}
}

func TestAuditHealthyRunConserves(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Masstree, 3000)}, beTasks(workload.IBench, 3)...)
	m, err := New(KunpengConfig(4), Options{Policy: PolicyPIVOT, Audit: true}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunChecked(context.Background(), 100_000, 150_000); err != nil {
		t.Fatalf("audited healthy run failed: %v", err)
	}
	if err := m.AuditNow(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
}

func TestCycleBudgetAborts(t *testing.T) {
	tasks := beTasks(workload.IBench, 2)
	m, err := New(KunpengConfig(4), Options{Policy: PolicyDefault, MaxCycles: 20_000}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	err = m.StepChecked(context.Background(), 100_000)
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("got %v, want cycle-budget abort", err)
	}
	if m.Engine.Now() > 25_000 {
		t.Fatalf("machine overran its budget to cycle %d", m.Engine.Now())
	}
}

func TestDeadlineAborts(t *testing.T) {
	tasks := beTasks(workload.IBench, 2)
	m, err := New(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	err = m.StepChecked(ctx, 10_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if _, ok := DiagOf(err); !ok {
		t.Fatal("deadline abort carries no diagnostic")
	}
}

// StepChecked's granule stepping must not change simulated results: a
// checked run and a plain Run from the same seed produce identical stats.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	build := func() *Machine {
		tasks := append([]TaskSpec{lcTask(workload.Silo, 3000)}, beTasks(workload.IBench, 3)...)
		m, err := New(KunpengConfig(4), Options{Policy: PolicyPIVOT}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := build()
	a.Run(60_000, 120_000)
	b := build()
	if err := b.RunChecked(context.Background(), 60_000, 120_000); err != nil {
		t.Fatal(err)
	}
	// Also an audited+watchdogged variant: guards are observers only.
	c := build()
	c.Opt.Audit = true
	c.Opt.WatchdogWindow = 5_000
	if err := c.RunChecked(context.Background(), 60_000, 120_000); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Machine{b, c} {
		if m.LCp95(0) != a.LCp95(0) || m.BECommitted() != a.BECommitted() || m.BWUtil() != a.BWUtil() {
			t.Fatalf("checked run diverged: p95 %d vs %d, BE %d vs %d, bw %v vs %v",
				m.LCp95(0), a.LCp95(0), m.BECommitted(), a.BECommitted(), m.BWUtil(), a.BWUtil())
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := KunpengConfig(4)
	cfg.Cores = 0
	if _, err := New(cfg, Options{}, nil); err == nil {
		t.Fatal("zero-core config accepted")
	}
	cfg = KunpengConfig(4)
	cfg.L1.Ways = 0
	if _, err := New(cfg, Options{}, beTasks(workload.IBench, 1)); err == nil {
		t.Fatal("zero-way L1 accepted")
	}
	cfg = KunpengConfig(4)
	cfg.PortOutCap = 0
	if _, err := New(cfg, Options{}, beTasks(workload.IBench, 1)); err == nil {
		t.Fatal("zero egress capacity accepted")
	}
}
