package machine

import (
	"strings"
	"testing"

	"pivot/internal/cbp"
	"pivot/internal/rrbp"
)

// TestOptionsNormalize pins the single defaulting pass: expected-bandwidth
// fallback, RRBP/CBP zero-value defaults with the scaled refresh, and the
// starvation-guard zeroing on the construction config only.
func TestOptionsNormalize(t *testing.T) {
	cfg := KunpengConfig(4)

	t.Run("defaults from zero options", func(t *testing.T) {
		o, cons := Options{}.normalize(cfg)
		if o.ExpectedLCBW != 0.05 {
			t.Errorf("ExpectedLCBW = %v, want 0.05", o.ExpectedLCBW)
		}
		wantRRBP := rrbp.DefaultConfig()
		wantRRBP.RefreshCycles = ScaledRRBPRefresh
		if o.RRBP != wantRRBP {
			t.Errorf("RRBP = %+v, want default at scaled refresh %+v", o.RRBP, wantRRBP)
		}
		if o.CBP != cbp.DefaultConfig() {
			t.Errorf("CBP = %+v, want default", o.CBP)
		}
		if cons != cfg {
			t.Errorf("construction config changed without NoStarvationGuard")
		}
	})

	t.Run("explicit values survive", func(t *testing.T) {
		r := rrbp.DefaultConfig()
		r.Entries = 16
		in := Options{ExpectedLCBW: 0.3, RRBP: r, CBP: cbp.Config{Entries: 4, RefreshCycles: 99}}
		o, _ := in.normalize(cfg)
		if o.ExpectedLCBW != 0.3 || o.RRBP.Entries != 16 || o.CBP.Entries != 4 {
			t.Errorf("explicit options rewritten: %+v", o)
		}
		// An explicit RRBP config keeps its own refresh interval.
		if o.RRBP.RefreshCycles != r.RefreshCycles {
			t.Errorf("RRBP.RefreshCycles = %d, want %d", o.RRBP.RefreshCycles, r.RefreshCycles)
		}
	})

	t.Run("starvation guard zeroes MaxWait on the construction config", func(t *testing.T) {
		_, cons := Options{NoStarvationGuard: true}.normalize(cfg)
		if cons.DRAM.MaxWait != 0 || cons.IC.MaxWait != 0 ||
			cons.Bus.MaxWait != 0 || cons.BW.Station.MaxWait != 0 {
			t.Errorf("MaxWait not zeroed: dram=%d ic=%d bus=%d bw=%d",
				cons.DRAM.MaxWait, cons.IC.MaxWait, cons.Bus.MaxWait, cons.BW.Station.MaxWait)
		}
		// The input config is untouched (it is the checkpoint fingerprint).
		if cfg.DRAM.MaxWait == 0 || cfg.IC.MaxWait == 0 {
			t.Errorf("normalize mutated the caller's config")
		}
	})

	t.Run("machine keeps the unguarded config", func(t *testing.T) {
		m := MustNew(cfg, Options{NoStarvationGuard: true}, nil)
		if m.Cfg.DRAM.MaxWait != cfg.DRAM.MaxWait {
			t.Errorf("m.Cfg.DRAM.MaxWait = %d, want %d (fingerprint must not see the guard)",
				m.Cfg.DRAM.MaxWait, cfg.DRAM.MaxWait)
		}
		if m.Opt.ExpectedLCBW != 0.05 {
			t.Errorf("m.Opt.ExpectedLCBW = %v, want normalized 0.05", m.Opt.ExpectedLCBW)
		}
	})
}

// TestConfigValidateErrors drives Config.Validate through every error path.
func TestConfigValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{
			name: "zero cores",
			mut:  func(c *Config) { c.Cores = 0 },
			want: "core count 0 must be positive",
		},
		{
			name: "negative cores",
			mut:  func(c *Config) { c.Cores = -2 },
			want: "core count -2 must be positive",
		},
		{
			name: "non-positive L1 geometry",
			mut:  func(c *Config) { c.L1.Ways = 0 },
			want: "cache L1D: non-positive geometry",
		},
		{
			name: "L2 size not divisible",
			mut:  func(c *Config) { c.L2.SizeBytes = 1000 },
			want: "cache L2: size 1000 not divisible by ways*line",
		},
		{
			name: "LLC set count not a power of two",
			mut:  func(c *Config) { c.LLC.SizeBytes = 3 * c.LLC.Ways * c.LLC.LineBytes },
			want: "cache LLC: set count 3 not a power of two",
		},
		{
			name: "zero ROB",
			mut:  func(c *Config) { c.Core.ROBSize = 0 },
			want: "cpu: ROBSize 0 must be positive",
		},
		{
			name: "zero issue width",
			mut:  func(c *Config) { c.Core.IssueWidth = 0 },
			want: "cpu: fetch/issue/commit widths must be positive",
		},
		{
			name: "zero load queue",
			mut:  func(c *Config) { c.Core.LQSize = 0 },
			want: "cpu: LQSize/SQSize must be positive",
		},
		{
			name: "zero port capacity",
			mut:  func(c *Config) { c.PortOutCap = 0 },
			want: "PortOutCap 0 must be positive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := KunpengConfig(4)
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted the config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "machine: ") {
				t.Errorf("error %q lacks the machine: prefix", err)
			}
			// New must refuse the same config rather than panic mid-assembly.
			if _, err := New(cfg, Options{}, nil); err == nil {
				t.Error("New accepted an invalid config")
			}
		})
	}
	if err := KunpengConfig(4).Validate(); err != nil {
		t.Errorf("valid preset rejected: %v", err)
	}
	if err := NeoverseConfig(8).Validate(); err != nil {
		t.Errorf("valid neoverse preset rejected: %v", err)
	}
}
