package machine

import (
	"testing"

	"pivot/internal/profile"
	"pivot/internal/workload"
)

// Edge and failure-injection cases: degenerate task mixes and configuration
// corners the experiment harness never produces but a library user can.

func TestSingleCoreMachine(t *testing.T) {
	m := MustNew(KunpengConfig(1), Options{Policy: PolicyPIVOT},
		[]TaskSpec{lcTask(workload.Silo, 4000)})
	m.Run(100_000, 200_000)
	if m.LCTasks()[0].Source.Completed() == 0 {
		t.Fatal("single-core machine completed nothing")
	}
}

func TestBEOnlyMachine(t *testing.T) {
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyPIVOT}, beTasks(workload.IBench, 4))
	m.Run(50_000, 100_000)
	if len(m.LCTasks()) != 0 {
		t.Fatal("phantom LC tasks")
	}
	if m.BECommitted() == 0 {
		t.Fatal("BE-only machine made no progress")
	}
	if m.BWUtil() <= 0 {
		t.Fatal("no bandwidth measured")
	}
}

func TestEmptyMachineRuns(t *testing.T) {
	m := MustNew(KunpengConfig(2), Options{Policy: PolicyDefault}, nil)
	m.Run(10_000, 10_000) // must simply not panic or hang
	if m.BECommitted() != 0 {
		t.Fatal("empty machine committed instructions")
	}
}

func TestPIVOTWithEmptyPotentialSet(t *testing.T) {
	// An empty (non-nil) potential set means no load ever carries the
	// potential bit: PIVOT degenerates to MPAM-with-queues but must still
	// run and complete requests.
	tasks := []TaskSpec{{
		Kind: TaskLC, LC: workload.LCApps()[workload.Masstree],
		MeanInterarrival: 5000, Seed: 1,
		Potential: profile.CriticalSet{},
	}}
	tasks = append(tasks, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyPIVOT}, tasks)
	m.Run(100_000, 200_000)
	if m.LCTasks()[0].Source.Completed() == 0 {
		t.Fatal("no progress with empty potential set")
	}
	if m.DRAMStats().CritServed != 0 {
		t.Fatal("critical serves despite an empty potential set")
	}
}

func TestClosedLoopLCUnderPIVOT(t *testing.T) {
	tasks := []TaskSpec{{
		Kind: TaskLC, LC: workload.LCApps()[workload.Xapian],
		MeanInterarrival: 0, Seed: 1, // closed loop
	}}
	tasks = append(tasks, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyPIVOT}, tasks)
	m.Run(100_000, 200_000)
	if m.LCTasks()[0].Source.Completed() == 0 {
		t.Fatal("closed-loop LC made no progress under contention")
	}
}

func TestCBPPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyCBP, PolicyCBPFullPath} {
		tasks := append([]TaskSpec{lcTask(workload.Moses, 5000)}, beTasks(workload.IBench, 3)...)
		m := MustNew(KunpengConfig(4), Options{Policy: pol}, tasks)
		m.Run(100_000, 200_000)
		lc := m.LCTasks()[0]
		if lc.CBP == nil {
			t.Fatalf("%v: no CBP predictor attached", pol)
		}
		if lc.RRBP != nil {
			t.Fatalf("%v: RRBP attached to a CBP policy", pol)
		}
		if lc.CBP.Lookups == 0 {
			t.Fatalf("%v: CBP never consulted", pol)
		}
		if lc.Source.Completed() == 0 {
			t.Fatalf("%v: no requests completed", pol)
		}
	}
}

func TestProfileModeAttachesProfiler(t *testing.T) {
	tasks := []TaskSpec{lcTask(workload.Silo, 0)}
	m := MustNew(KunpengConfig(2), Options{Policy: PolicyDefault, Profile: true}, tasks)
	m.Run(20_000, 100_000)
	prof := m.LCTasks()[0].Profiler
	if prof == nil || prof.TotalLoads() == 0 {
		t.Fatal("profiler not attached or saw no loads")
	}
}

func TestManagedPolicyKnobsLive(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 2)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyManaged}, tasks)
	// Knobs must be adjustable mid-run without disturbing correctness.
	m.Engine.Step(50_000)
	m.MBA().SetLevel(1, 10)
	m.LLC().SetWayMask(1, 0b1)
	m.Engine.Step(50_000)
	if m.MBA().Level(1) != 10 {
		t.Fatal("MBA knob lost")
	}
	if m.LLC().WayMask(1) != 1 {
		t.Fatal("way mask knob lost")
	}
}

func TestRequestSampling(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Masstree, 4000)}, beTasks(workload.IBench, 2)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault, SampleRequests: 10}, tasks)
	m.Run(50_000, 150_000)
	recs := m.SampledRequests()
	if len(recs) == 0 || len(recs) > 10 {
		t.Fatalf("sampled %d records, want 1..10", len(recs))
	}
	for _, r := range recs {
		if r.TotalCycles() == 0 {
			t.Fatal("sampled record with no cycles")
		}
		if r.PC == 0 {
			t.Fatal("sampled record without a PC")
		}
	}
	// Sampling off by default.
	m2 := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	m2.Run(50_000, 100_000)
	if len(m2.SampledRequests()) != 0 {
		t.Fatal("sampling active without being requested")
	}
}
