package machine

import (
	"pivot/internal/cache"
	"pivot/internal/cpu"
	"pivot/internal/mem"
	"pivot/internal/prefetch"
	"pivot/internal/sim"
)

// delayQ schedules fixed-latency callbacks on a 256-slot timing wheel. Every
// latency scheduled through it (L1/L2 hits, LLC-hit responses) is far below
// 256 cycles, so slot collisions across laps cannot occur.
type delayQ struct {
	wheel [256][]delayed
}

type delayed struct {
	due sim.Cycle
	fn  func(now sim.Cycle)
}

func (d *delayQ) after(due sim.Cycle, fn func(now sim.Cycle)) {
	slot := int(due) & 255
	d.wheel[slot] = append(d.wheel[slot], delayed{due: due, fn: fn})
}

func (d *delayQ) drain(now sim.Cycle) {
	slot := int(now) & 255
	pend := d.wheel[slot]
	if len(pend) == 0 {
		return
	}
	d.wheel[slot] = pend[:0]
	for _, e := range pend {
		e.fn(now)
	}
}

// corePort is one core's private memory hierarchy (L1D + L2) and its egress
// into the shared path. It implements cpu.MemPort.
type corePort struct {
	m    *Machine
	id   int
	isLC bool

	// storeCritical marks this core's store misses as priority traffic:
	// FullPath prioritises *all* LC memory accesses, stores included,
	// whereas PIVOT deliberately never prioritises stores (§III-B).
	storeCritical bool

	l1   *cache.Cache
	l2   *cache.Cache
	mshr *cache.MSHRFile
	pf   *prefetch.Prefetcher // nil unless Options.Prefetch

	// out holds L2-miss requests awaiting acceptance by the MBA throttle /
	// interconnect; bounded by Cfg.PortOutCap for back-pressure.
	out []*mem.Req
}

func newCorePort(m *Machine, id int, isLC bool) *corePort {
	p := &corePort{
		m:    m,
		id:   id,
		isLC: isLC,
		l1:   cache.MustNew(m.Cfg.L1),
		l2:   cache.MustNew(m.Cfg.L2),
		mshr: cache.NewMSHRFile(m.Cfg.L1.MSHRs),
	}
	if m.Opt.Prefetch {
		cfg := m.Opt.PrefetchCfg
		if cfg == (prefetch.Config{}) {
			cfg = prefetch.DefaultConfig()
			cfg.LineBytes = m.Cfg.L1.LineBytes
		}
		p.pf = prefetch.New(cfg)
	}
	return p
}

func (p *corePort) lineOf(addr uint64) uint64 {
	return addr &^ uint64(p.m.Cfg.L1.LineBytes-1)
}

// Load implements cpu.MemPort.
func (p *corePort) Load(lr cpu.LoadRequest, now sim.Cycle) bool {
	line := p.lineOf(lr.Addr)
	part := mem.PartID(p.id)
	l1Hit := sim.Cycle(p.m.Cfg.L1.HitCycles)

	if p.l1.Lookup(line, part) {
		done := lr.Done
		p.m.delays.after(now+l1Hit, func(at sim.Cycle) { done(false, at) })
		return true
	}
	if e := p.mshr.Lookup(line); e != nil {
		e.Waiters = append(e.Waiters, lr.Done)
		return true
	}
	if p.mshr.Full() || len(p.out) >= p.m.Cfg.PortOutCap {
		return false // structural stall; the core retries
	}

	l2Hit := sim.Cycle(p.m.Cfg.L2.HitCycles)
	if p.l2.Lookup(line, part) {
		e, _ := p.mshr.Allocate(line)
		e.Waiters = append(e.Waiters, lr.Done)
		p.m.delays.after(now+l1Hit+l2Hit, func(at sim.Cycle) { p.fillLocal(line, at) })
		return true
	}

	// L2 miss: a shared-path request is born.
	e, _ := p.mshr.Allocate(line)
	e.Waiters = append(e.Waiters, lr.Done)
	r := p.m.newReq()
	r.Addr = line
	r.PC = lr.PC
	r.CoreID = p.id
	r.Part = part
	r.Critical = lr.Critical
	r.LCTask = p.isLC
	r.Issued = now
	r.AddSplit(mem.CompL1, l1Hit)
	r.AddSplit(mem.CompL2, l2Hit)
	p.m.delayReq(now+l1Hit+l2Hit, func(at sim.Cycle) { p.out = append(p.out, r) })
	p.maybePrefetch(line, now)
	return true
}

// maybePrefetch trains the stream prefetcher on a demand miss and issues
// covered prefetch requests down the shared path. Prefetches never carry the
// critical bit and wake no instruction; they exist to fill caches ahead of
// the stream and to generate the realistic extra bandwidth demand explicit
// prefetching costs.
func (p *corePort) maybePrefetch(line uint64, now sim.Cycle) {
	if p.pf == nil {
		return
	}
	for _, cand := range p.pf.OnMiss(line) {
		// Prefetches are second-class citizens: they may use only half the
		// miss buffers and egress slots, so a burst can never starve demand
		// misses of structural resources.
		if p.mshr.Len() >= p.m.Cfg.L1.MSHRs/2 || len(p.out) >= p.m.Cfg.PortOutCap/2 {
			return
		}
		if p.l1.Contains(cand) || p.l2.Contains(cand) || p.mshr.Lookup(cand) != nil {
			continue
		}
		if _, fresh := p.mshr.Allocate(cand); !fresh {
			continue
		}
		r := p.m.newReq()
		r.Addr = cand
		r.CoreID = p.id
		r.Part = mem.PartID(p.id)
		r.LCTask = p.isLC
		r.Prefetch = true
		r.Issued = now
		p.m.delayReq(now+sim.Cycle(p.m.Cfg.L1.HitCycles), func(at sim.Cycle) {
			p.out = append(p.out, r)
		})
	}
}

// fillLocal completes an L2-hit: fill L1 and wake all coalesced waiters.
func (p *corePort) fillLocal(line uint64, now sim.Cycle) {
	p.l1.Insert(line, mem.PartID(p.id), false)
	if e := p.mshr.Fill(line); e != nil {
		for _, w := range e.Waiters {
			w.(func(bool, sim.Cycle))(false, now)
		}
	}
}

// Store implements cpu.MemPort. Stores are absorbed by the write buffer
// (they never stall the ROB; §III-B) but misses still travel the shared path
// to generate write bandwidth.
func (p *corePort) Store(addr, pc uint64, now sim.Cycle) bool {
	line := p.lineOf(addr)
	part := mem.PartID(p.id)
	if p.l1.Lookup(line, part) {
		p.l1.Insert(line, part, true) // refresh + mark dirty
		return true
	}
	if len(p.out) >= p.m.Cfg.PortOutCap {
		return false // write buffer full: SQ backs up
	}
	r := p.m.newReq()
	r.Addr = line
	r.PC = pc
	r.CoreID = p.id
	r.Part = part
	r.IsWrite = true
	r.Critical = p.storeCritical
	r.LCTask = p.isLC
	r.Issued = now
	p.m.delayReq(now+sim.Cycle(p.m.Cfg.L1.HitCycles), func(at sim.Cycle) {
		p.out = append(p.out, r)
	})
	return true
}

// flush pushes pending L2-miss traffic into the MBA throttle / interconnect,
// stopping at the first refusal (in-order egress).
func (p *corePort) flush(now sim.Cycle) {
	for len(p.out) > 0 {
		r := p.out[0]
		if !p.m.thr.Accept(r, now) {
			return
		}
		copy(p.out, p.out[1:])
		p.out = p.out[:len(p.out)-1]
	}
}
