package machine

import (
	"pivot/internal/cache"
	"pivot/internal/cpu"
	"pivot/internal/mem"
	"pivot/internal/prefetch"
	"pivot/internal/sim"
)

// delayQ schedules fixed-latency completion events on a 256-slot timing
// wheel. Every latency scheduled through it (L1/L2 hits, LLC-hit responses)
// is far below 256 cycles, so slot collisions across laps cannot occur.
//
// count caches the wheel occupancy for skip-ahead's quiescence poll. It is
// derived state — never serialised; RestoreState rebuilds it with recount.
type delayQ struct {
	wheel [256][]delayed

	count int
}

// delayKind discriminates the four fixed-latency completion events the wheel
// carries. The events are plain descriptors rather than closures so that the
// wheel's contents — completions in flight — are serialisable for
// checkpointing.
type delayKind uint8

const (
	// delayLoadDone completes an L1-hit load (core + seq).
	delayLoadDone delayKind = iota
	// delayFillLocal fills a core's L1 after an L2 hit and wakes the line's
	// coalesced MSHR waiters (core + line).
	delayFillLocal
	// delayEgress appends req to its core's egress queue after the
	// private-cache lookup latency (req).
	delayEgress
	// delayDeliver delivers an LLC-hit response to the requesting core (req).
	delayDeliver
)

// delayed is one scheduled completion event.
type delayed struct {
	due  sim.Cycle
	kind delayKind
	core int
	seq  uint64
	line uint64
	req  *mem.Req // delayEgress / delayDeliver only
}

func (d *delayQ) after(e delayed) {
	slot := int(e.due) & 255
	d.wheel[slot] = append(d.wheel[slot], e)
	d.count++
}

// nextDue reports the earliest cycle at which a wheel event falls due, or
// (0, false) when an event is due at now and the wheel must be drained this
// cycle. Every live event's due cycle lies in [now, now+256) — latencies are
// strictly below 256 and past-due events were drained the cycle they fell
// due — so each slot holds at most one distinct due cycle and a forward walk
// from now stops at the first occupied slot with the exact earliest due. In
// a busy machine that slot is a handful of cycles away; in an empty one the
// count guard answers without touching the wheel.
func (d *delayQ) nextDue(now sim.Cycle) (sim.Cycle, bool) {
	if d.count == 0 {
		return sim.NeverWork, true
	}
	if len(d.wheel[int(now)&255]) > 0 {
		return 0, false
	}
	for off := sim.Cycle(1); off < 256; off++ {
		if len(d.wheel[int(now+off)&255]) > 0 {
			return now + off, true
		}
	}
	return 0, false // unreachable while count > 0; fail dense, not idle
}

// recount rebuilds the derived occupancy count after a checkpoint restore.
func (d *delayQ) recount() {
	d.count = 0
	for slot := range d.wheel {
		d.count += len(d.wheel[slot])
	}
}

// drainDelays dispatches every completion event due this cycle. Dispatched
// events may schedule new ones, but always at a sub-256-cycle latency, never
// into the slot being drained.
func (m *Machine) drainDelays(now sim.Cycle) {
	slot := int(now) & 255
	pend := m.delays.wheel[slot]
	if len(pend) == 0 {
		return
	}
	m.delays.wheel[slot] = pend[:0]
	m.delays.count -= len(pend)
	for _, e := range pend {
		m.dispatchDelayed(e, now)
	}
}

func (m *Machine) dispatchDelayed(e delayed, now sim.Cycle) {
	switch e.kind {
	case delayLoadDone:
		m.Cores[e.core].CompleteLoad(e.seq, false, now)
	case delayFillLocal:
		m.ports[e.core].fillLocal(e.line, now)
	case delayEgress:
		m.reqsDelayed--
		p := m.ports[e.req.CoreID]
		p.out = append(p.out, e.req)
	case delayDeliver:
		m.reqsDelayed--
		m.deliver(e.req, now, false)
	}
}

// corePort is one core's private memory hierarchy (L1D + L2) and its egress
// into the shared path. It implements cpu.MemPort.
type corePort struct {
	m    *Machine
	id   int
	isLC bool

	// storeCritical marks this core's store misses as priority traffic:
	// FullPath prioritises *all* LC memory accesses, stores included,
	// whereas PIVOT deliberately never prioritises stores (§III-B).
	storeCritical bool

	l1   *cache.Cache
	l2   *cache.Cache
	mshr *cache.MSHRFile
	pf   *prefetch.Prefetcher // nil unless Options.Prefetch

	// out holds L2-miss requests awaiting acceptance by the MBA throttle /
	// interconnect; bounded by Cfg.PortOutCap for back-pressure.
	out []*mem.Req
}

func newCorePort(m *Machine, id int, isLC bool) *corePort {
	p := &corePort{
		m:    m,
		id:   id,
		isLC: isLC,
		l1:   cache.MustNew(m.Cfg.L1),
		l2:   cache.MustNew(m.Cfg.L2),
		mshr: cache.NewMSHRFile(m.Cfg.L1.MSHRs),
	}
	if m.Opt.Prefetch {
		cfg := m.Opt.PrefetchCfg
		if cfg == (prefetch.Config{}) {
			cfg = prefetch.DefaultConfig()
			cfg.LineBytes = m.Cfg.L1.LineBytes
		}
		p.pf = prefetch.New(cfg)
	}
	return p
}

func (p *corePort) lineOf(addr uint64) uint64 {
	return addr &^ uint64(p.m.Cfg.L1.LineBytes-1)
}

// Load implements cpu.MemPort.
func (p *corePort) Load(lr cpu.LoadRequest, now sim.Cycle) bool {
	line := p.lineOf(lr.Addr)
	part := mem.PartID(p.id)
	l1Hit := sim.Cycle(p.m.Cfg.L1.HitCycles)

	if p.l1.Lookup(line, part) {
		p.m.delays.after(delayed{due: now + l1Hit, kind: delayLoadDone, core: p.id, seq: lr.Seq})
		return true
	}
	if e := p.mshr.Lookup(line); e != nil {
		e.Waiters = append(e.Waiters, lr.Seq)
		return true
	}
	if p.mshr.Full() || len(p.out) >= p.m.Cfg.PortOutCap {
		return false // structural stall; the core retries
	}

	l2Hit := sim.Cycle(p.m.Cfg.L2.HitCycles)
	if p.l2.Lookup(line, part) {
		e, _ := p.mshr.Allocate(line)
		e.Waiters = append(e.Waiters, lr.Seq)
		p.m.delays.after(delayed{due: now + l1Hit + l2Hit, kind: delayFillLocal, core: p.id, line: line})
		return true
	}

	// L2 miss: a shared-path request is born.
	e, _ := p.mshr.Allocate(line)
	e.Waiters = append(e.Waiters, lr.Seq)
	r := p.m.newReq()
	r.Addr = line
	r.PC = lr.PC
	r.CoreID = p.id
	r.Part = part
	r.Critical = lr.Critical
	r.LCTask = p.isLC
	r.Issued = now
	r.Hop(mem.CompL1, now, l1Hit)
	r.Hop(mem.CompL2, now+l1Hit, l2Hit)
	p.m.delayReq(now+l1Hit+l2Hit, delayEgress, r)
	p.maybePrefetch(line, now)
	return true
}

// maybePrefetch trains the stream prefetcher on a demand miss and issues
// covered prefetch requests down the shared path. Prefetches never carry the
// critical bit and wake no instruction; they exist to fill caches ahead of
// the stream and to generate the realistic extra bandwidth demand explicit
// prefetching costs.
func (p *corePort) maybePrefetch(line uint64, now sim.Cycle) {
	if p.pf == nil {
		return
	}
	for _, cand := range p.pf.OnMiss(line) {
		// Prefetches are second-class citizens: they may use only half the
		// miss buffers and egress slots, so a burst can never starve demand
		// misses of structural resources.
		if p.mshr.Len() >= p.m.Cfg.L1.MSHRs/2 || len(p.out) >= p.m.Cfg.PortOutCap/2 {
			return
		}
		if p.l1.Contains(cand) || p.l2.Contains(cand) || p.mshr.Lookup(cand) != nil {
			continue
		}
		if _, fresh := p.mshr.Allocate(cand); !fresh {
			continue
		}
		r := p.m.newReq()
		r.Addr = cand
		r.CoreID = p.id
		r.Part = mem.PartID(p.id)
		r.LCTask = p.isLC
		r.Prefetch = true
		r.Issued = now
		p.m.delayReq(now+sim.Cycle(p.m.Cfg.L1.HitCycles), delayEgress, r)
	}
}

// fillLocal completes an L2-hit: fill L1 and wake all coalesced waiters.
func (p *corePort) fillLocal(line uint64, now sim.Cycle) {
	p.l1.Insert(line, mem.PartID(p.id), false)
	if e := p.mshr.Fill(line); e != nil {
		for _, w := range e.Waiters {
			p.m.Cores[p.id].CompleteLoad(w, false, now)
		}
	}
	// The freed MSHR may unblock a structurally refused load: drop the
	// core's cached idle verdict.
	p.m.Cores[p.id].WakeIdle()
}

// RetryReady implements cpu.RetryPort: would a retry of the blocked head op
// be accepted this cycle? Mirrors exactly the refusal conditions of Load and
// Store above; it must never report false when the op would in fact issue,
// or the core could sleep through its own unblocking.
func (p *corePort) RetryReady(kind cpu.OpKind, addr uint64) bool {
	line := p.lineOf(addr)
	if kind == cpu.OpStore {
		return p.l1.Contains(line) || len(p.out) < p.m.Cfg.PortOutCap
	}
	return p.l1.Contains(line) || p.mshr.Lookup(line) != nil ||
		(!p.mshr.Full() && len(p.out) < p.m.Cfg.PortOutCap)
}

// SkipRetries implements cpu.RetryPort: account for n elided retry attempts
// of a blocked op. Each dense-loop attempt performs one mutating L1 miss
// probe (LRU stamp + miss counters) before being structurally refused —
// Loads via the l1.Lookup at the top of Load, Stores likewise — so n
// attempts compensate as n miss probes. Everything else on the refusal path
// (MSHR lookup, capacity checks) is pure.
func (p *corePort) SkipRetries(kind cpu.OpKind, addr uint64, n uint64) {
	p.l1.SkipMissProbes(mem.PartID(p.id), n)
}

// Store implements cpu.MemPort. Stores are absorbed by the write buffer
// (they never stall the ROB; §III-B) but misses still travel the shared path
// to generate write bandwidth.
func (p *corePort) Store(addr, pc uint64, now sim.Cycle) bool {
	line := p.lineOf(addr)
	part := mem.PartID(p.id)
	if p.l1.Lookup(line, part) {
		p.l1.Insert(line, part, true) // refresh + mark dirty
		return true
	}
	if len(p.out) >= p.m.Cfg.PortOutCap {
		return false // write buffer full: SQ backs up
	}
	r := p.m.newReq()
	r.Addr = line
	r.PC = pc
	r.CoreID = p.id
	r.Part = part
	r.IsWrite = true
	r.Critical = p.storeCritical
	r.LCTask = p.isLC
	r.Issued = now
	p.m.delayReq(now+sim.Cycle(p.m.Cfg.L1.HitCycles), delayEgress, r)
	return true
}

// flush pushes pending L2-miss traffic into the MBA throttle / interconnect,
// stopping at the first refusal (in-order egress).
func (p *corePort) flush(now sim.Cycle) {
	popped := false
	for len(p.out) > 0 {
		r := p.out[0]
		if !p.m.thr.Accept(r, now) {
			break
		}
		copy(p.out, p.out[1:])
		p.out = p.out[:len(p.out)-1]
		popped = true
	}
	if popped {
		// Freed egress slots may unblock a refused load or store retry.
		p.m.Cores[p.id].WakeIdle()
	}
}
