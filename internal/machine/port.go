package machine

import (
	"math/bits"

	"pivot/internal/cache"
	"pivot/internal/cpu"
	"pivot/internal/mem"
	"pivot/internal/prefetch"
	"pivot/internal/sim"
)

// delayQ schedules fixed-latency completion events on a 256-slot timing
// wheel. Every latency scheduled through it (L1/L2 hits, LLC-hit responses)
// is far below 256 cycles, so slot collisions across laps cannot occur.
//
// count caches the wheel occupancy for skip-ahead's quiescence poll, and occ
// is a 256-bit bitmap of non-empty slots so nextDue is a word scan instead of
// a slot walk. Both are derived state — never serialised; RestoreState
// rebuilds them with recount.
type delayQ struct {
	wheel [256][]delayed

	count int
	occ   [4]uint64
}

// delayKind discriminates the four fixed-latency completion events the wheel
// carries. The events are plain descriptors rather than closures so that the
// wheel's contents — completions in flight — are serialisable for
// checkpointing.
type delayKind uint8

const (
	// delayLoadDone completes an L1-hit load (core + seq).
	delayLoadDone delayKind = iota
	// delayFillLocal fills a core's L1 after an L2 hit and wakes the line's
	// coalesced MSHR waiters (core + line).
	delayFillLocal
	// delayEgress appends req to its core's egress queue after the
	// private-cache lookup latency (req).
	delayEgress
	// delayDeliver delivers an LLC-hit response to the requesting core (req).
	delayDeliver
)

// delayed is one scheduled completion event.
type delayed struct {
	due  sim.Cycle
	kind delayKind
	core int
	seq  uint64
	line uint64
	req  *mem.Req // delayEgress / delayDeliver only

	// schedSeq breaks canonical-order ties between events one core schedules
	// in the same cycle when parallel mode reassembles slot order across
	// shard wheels (see parallel.go). Serial mode leaves it zero; it is
	// derived bookkeeping, never serialised.
	schedSeq uint64
}

func (d *delayQ) after(e delayed) {
	slot := int(e.due) & 255
	d.wheel[slot] = append(d.wheel[slot], e)
	d.count++
	d.occ[slot>>6] |= 1 << uint(slot&63)
}

// take empties slot and returns its events, keeping count and occ coherent.
// Callers dispatch the returned batch; events scheduled during dispatch
// always land in other slots (latencies are in [1, 256)).
func (d *delayQ) take(slot int) []delayed {
	pend := d.wheel[slot]
	if len(pend) == 0 {
		return nil
	}
	d.wheel[slot] = pend[:0]
	d.count -= len(pend)
	d.occ[slot>>6] &^= 1 << uint(slot&63)
	return pend
}

// nextDue reports the earliest cycle at which a wheel event falls due, or
// (0, false) when an event is due at now and the wheel must be drained this
// cycle. Every live event's due cycle lies in [now, now+256) — latencies are
// strictly below 256 and past-due events were drained the cycle they fell
// due — so each slot holds at most one distinct due cycle and the first
// occupied slot at or after now (circularly) carries the exact earliest due.
// The occ bitmap turns that search into at most four word scans.
func (d *delayQ) nextDue(now sim.Cycle) (sim.Cycle, bool) {
	if d.count == 0 {
		return sim.NeverWork, true
	}
	s := int(now) & 255
	w, b := s>>6, uint(s&63)
	if x := d.occ[w] >> b; x != 0 {
		off := sim.Cycle(bits.TrailingZeros64(x))
		if off == 0 {
			return 0, false
		}
		return now + off, true
	}
	// Remaining words in circular order; the wrap back into word w covers its
	// low b bits (slots now+256-b .. now+255).
	off := sim.Cycle(64 - b)
	for i := 1; i <= 4; i++ {
		x := d.occ[(w+i)&3]
		if i == 4 {
			x &= 1<<b - 1
		}
		if x != 0 {
			return now + off + sim.Cycle((i-1)*64+bits.TrailingZeros64(x)), true
		}
	}
	return 0, false // unreachable while count > 0; fail dense, not idle
}

// recount rebuilds the derived occupancy caches after a checkpoint restore
// or an out-of-band wheel edit (shard merge, restore split).
func (d *delayQ) recount() {
	d.count = 0
	d.occ = [4]uint64{}
	for slot := range d.wheel {
		if n := len(d.wheel[slot]); n > 0 {
			d.count += n
			d.occ[slot>>6] |= 1 << uint(slot&63)
		}
	}
}

// drainDelays dispatches every completion event due this cycle. Dispatched
// events may schedule new ones, but always at a sub-256-cycle latency, never
// into the slot being drained.
func (m *Machine) drainDelays(now sim.Cycle) {
	for _, e := range m.delays.take(int(now) & 255) {
		m.dispatchDelayed(e, now)
	}
}

func (m *Machine) dispatchDelayed(e delayed, now sim.Cycle) {
	switch e.kind {
	case delayLoadDone:
		m.Cores[e.core].CompleteLoad(e.seq, false, now)
	case delayFillLocal:
		m.ports[e.core].fillLocal(e.line, now)
	case delayEgress:
		m.reqsDelayed--
		p := m.ports[e.req.CoreID]
		p.out = append(p.out, e.req)
		m.outOcc |= 1 << uint(e.req.CoreID)
	case delayDeliver:
		m.reqsDelayed--
		m.deliver(e.req, now, false)
	}
}

// corePort is one core's private memory hierarchy (L1D + L2) and its egress
// into the shared path. It implements cpu.MemPort.
type corePort struct {
	m    *Machine
	id   int
	isLC bool

	// storeCritical marks this core's store misses as priority traffic:
	// FullPath prioritises *all* LC memory accesses, stores included,
	// whereas PIVOT deliberately never prioritises stores (§III-B).
	storeCritical bool

	l1   *cache.Cache
	l2   *cache.Cache
	mshr *cache.MSHRFile
	pf   *prefetch.Prefetcher // nil unless Options.Prefetch

	// out holds L2-miss requests awaiting acceptance by the MBA throttle /
	// interconnect; bounded by Cfg.PortOutCap for back-pressure.
	out []*mem.Req

	// sh is this core's shard when the machine runs in parallel mode (nil in
	// serial mode). While set, core-local completions go to the shard wheel,
	// egress is staged for the barrier merge, requests come from the shard
	// pool, and the out-queue length is read from the shard's mirror.
	sh *parShard
}

// schedLocal schedules a core-local completion (loadDone / fillLocal).
func (p *corePort) schedLocal(e delayed) {
	if sh := p.sh; sh != nil {
		sh.seq++
		e.schedSeq = sh.seq
		sh.wheel.after(e)
		return
	}
	p.m.delays.after(e)
}

// delayReq schedules this core's egress hop (see Machine.delayReq).
func (p *corePort) delayReq(due sim.Cycle, kind delayKind, r *mem.Req) {
	if sh := p.sh; sh != nil {
		sh.delayedEv++
		sh.seq++
		sh.egress = append(sh.egress, delayed{due: due, kind: kind, req: r, schedSeq: sh.seq})
		return
	}
	p.m.delayReq(due, kind, r)
}

// newReq allocates a request from this core's pool (the shard's in parallel
// mode, the machine's otherwise).
func (p *corePort) newReq() *mem.Req {
	if sh := p.sh; sh != nil {
		return sh.newReq()
	}
	return p.m.newReq()
}

// egressLen is the out-queue length as seen from the core's own timeline: in
// parallel mode the shard's mailbox-maintained mirror, since the queue itself
// belongs to the coordinator.
func (p *corePort) egressLen() int {
	if sh := p.sh; sh != nil {
		return sh.outLen
	}
	return len(p.out)
}

func newCorePort(m *Machine, id int, isLC bool) *corePort {
	p := &corePort{
		m:    m,
		id:   id,
		isLC: isLC,
		l1:   cache.MustNew(m.Cfg.L1),
		l2:   cache.MustNew(m.Cfg.L2),
		mshr: cache.NewMSHRFile(m.Cfg.L1.MSHRs),
	}
	if m.Opt.Prefetch {
		cfg := m.Opt.PrefetchCfg
		if cfg == (prefetch.Config{}) {
			cfg = prefetch.DefaultConfig()
			cfg.LineBytes = m.Cfg.L1.LineBytes
		}
		p.pf = prefetch.New(cfg)
	}
	return p
}

func (p *corePort) lineOf(addr uint64) uint64 {
	return addr &^ uint64(p.m.Cfg.L1.LineBytes-1)
}

// Load implements cpu.MemPort.
func (p *corePort) Load(lr cpu.LoadRequest, now sim.Cycle) bool {
	line := p.lineOf(lr.Addr)
	part := mem.PartID(p.id)
	l1Hit := sim.Cycle(p.m.Cfg.L1.HitCycles)

	if p.l1.Lookup(line, part) {
		p.schedLocal(delayed{due: now + l1Hit, kind: delayLoadDone, core: p.id, seq: lr.Seq})
		return true
	}
	if e := p.mshr.Lookup(line); e != nil {
		e.Waiters = append(e.Waiters, lr.Seq)
		return true
	}
	if p.mshr.Full() || p.egressLen() >= p.m.Cfg.PortOutCap {
		return false // structural stall; the core retries
	}

	l2Hit := sim.Cycle(p.m.Cfg.L2.HitCycles)
	if p.l2.Lookup(line, part) {
		e, _ := p.mshr.Allocate(line)
		e.Waiters = append(e.Waiters, lr.Seq)
		p.schedLocal(delayed{due: now + l1Hit + l2Hit, kind: delayFillLocal, core: p.id, line: line})
		return true
	}

	// L2 miss: a shared-path request is born.
	e, _ := p.mshr.Allocate(line)
	e.Waiters = append(e.Waiters, lr.Seq)
	r := p.newReq()
	r.Addr = line
	r.PC = lr.PC
	r.CoreID = p.id
	r.Part = part
	r.Critical = lr.Critical
	r.LCTask = p.isLC
	r.Issued = now
	r.Hop(mem.CompL1, now, l1Hit)
	r.Hop(mem.CompL2, now+l1Hit, l2Hit)
	p.delayReq(now+l1Hit+l2Hit, delayEgress, r)
	p.maybePrefetch(line, now)
	return true
}

// maybePrefetch trains the stream prefetcher on a demand miss and issues
// covered prefetch requests down the shared path. Prefetches never carry the
// critical bit and wake no instruction; they exist to fill caches ahead of
// the stream and to generate the realistic extra bandwidth demand explicit
// prefetching costs.
func (p *corePort) maybePrefetch(line uint64, now sim.Cycle) {
	if p.pf == nil {
		return
	}
	for _, cand := range p.pf.OnMiss(line) {
		// Prefetches are second-class citizens: they may use only half the
		// miss buffers and egress slots, so a burst can never starve demand
		// misses of structural resources.
		if p.mshr.Len() >= p.m.Cfg.L1.MSHRs/2 || p.egressLen() >= p.m.Cfg.PortOutCap/2 {
			return
		}
		if p.l1.Contains(cand) || p.l2.Contains(cand) || p.mshr.Lookup(cand) != nil {
			continue
		}
		if _, fresh := p.mshr.Allocate(cand); !fresh {
			continue
		}
		r := p.newReq()
		r.Addr = cand
		r.CoreID = p.id
		r.Part = mem.PartID(p.id)
		r.LCTask = p.isLC
		r.Prefetch = true
		r.Issued = now
		p.delayReq(now+sim.Cycle(p.m.Cfg.L1.HitCycles), delayEgress, r)
	}
}

// fillLocal completes an L2-hit: fill L1 and wake all coalesced waiters.
func (p *corePort) fillLocal(line uint64, now sim.Cycle) {
	p.l1.Insert(line, mem.PartID(p.id), false)
	if e := p.mshr.Fill(line); e != nil {
		for _, w := range e.Waiters {
			p.m.Cores[p.id].CompleteLoad(w, false, now)
		}
	}
	// The freed MSHR may unblock a structurally refused load: drop the
	// core's cached idle verdict.
	p.m.Cores[p.id].WakeIdle()
}

// RetryReady implements cpu.RetryPort: would a retry of the blocked head op
// be accepted this cycle? Mirrors exactly the refusal conditions of Load and
// Store above; it must never report false when the op would in fact issue,
// or the core could sleep through its own unblocking.
func (p *corePort) RetryReady(kind cpu.OpKind, addr uint64) bool {
	line := p.lineOf(addr)
	if kind == cpu.OpStore {
		return p.l1.Contains(line) || p.egressLen() < p.m.Cfg.PortOutCap
	}
	return p.l1.Contains(line) || p.mshr.Lookup(line) != nil ||
		(!p.mshr.Full() && p.egressLen() < p.m.Cfg.PortOutCap)
}

// SkipRetries implements cpu.RetryPort: account for n elided retry attempts
// of a blocked op. Each dense-loop attempt performs one mutating L1 miss
// probe (LRU stamp + miss counters) before being structurally refused —
// Loads via the l1.Lookup at the top of Load, Stores likewise — so n
// attempts compensate as n miss probes. Everything else on the refusal path
// (MSHR lookup, capacity checks) is pure.
func (p *corePort) SkipRetries(kind cpu.OpKind, addr uint64, n uint64) {
	p.l1.SkipMissProbes(mem.PartID(p.id), n)
}

// Store implements cpu.MemPort. Stores are absorbed by the write buffer
// (they never stall the ROB; §III-B) but misses still travel the shared path
// to generate write bandwidth.
func (p *corePort) Store(addr, pc uint64, now sim.Cycle) bool {
	line := p.lineOf(addr)
	part := mem.PartID(p.id)
	if p.l1.Touch(line, part) { // Lookup + refresh/mark-dirty in one scan
		return true
	}
	if p.egressLen() >= p.m.Cfg.PortOutCap {
		return false // write buffer full: SQ backs up
	}
	r := p.newReq()
	r.Addr = line
	r.PC = pc
	r.CoreID = p.id
	r.Part = part
	r.IsWrite = true
	r.Critical = p.storeCritical
	r.LCTask = p.isLC
	r.Issued = now
	p.delayReq(now+sim.Cycle(p.m.Cfg.L1.HitCycles), delayEgress, r)
	return true
}

// flush pushes pending L2-miss traffic into the MBA throttle / interconnect,
// stopping at the first refusal (in-order egress).
func (p *corePort) flush(now sim.Cycle) {
	popped := false
	for len(p.out) > 0 {
		r := p.out[0]
		if !p.m.thr.Accept(r, now) {
			break
		}
		copy(p.out, p.out[1:])
		p.out = p.out[:len(p.out)-1]
		popped = true
	}
	if popped {
		if len(p.out) == 0 {
			p.m.outOcc &^= 1 << uint(p.id)
		}
		// Freed egress slots may unblock a refused load or store retry.
		p.m.Cores[p.id].WakeIdle()
	}
}
