package machine

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"pivot/internal/flight"
	"pivot/internal/mem"
	"pivot/internal/workload"
)

// flightCfg keeps the tests' recorder small but non-trivial.
var flightCfg = flight.Config{TopK: 16, SampleCap: 128}

// buildFlight builds a ckptCase machine with a flight recorder attached.
func (tc ckptCase) buildFlight(t *testing.T, dense bool) *Machine {
	t.Helper()
	m := tc.buildMode(t, dense)
	m.EnableFlight(flightCfg)
	return m
}

// stateBytesNoFlight serialises the machine state with the recorder's own
// section stripped, leaving exactly the bytes a recorder-less machine writes.
func stateBytesNoFlight(t *testing.T, m *Machine) []byte {
	t.Helper()
	s, err := m.SnapshotState()
	if err != nil {
		t.Fatalf("SnapshotState: %v", err)
	}
	s.Flight = nil
	b, err := encodeState(s)
	if err != nil {
		t.Fatalf("encodeState: %v", err)
	}
	return b
}

// flightJSON renders the machine's tail-attribution report for byte compare.
func flightJSON(t *testing.T, m *Machine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.FlightReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFlightObservationalPurity is the recorder's first contract: attaching it
// must not change one bit of simulated state. For every workload mix, a run
// with the recorder on finishes with machine state (minus the recorder's own
// checkpoint section), result snapshot, and stats dump byte-identical to a run
// with it off.
func TestFlightObservationalPurity(t *testing.T) {
	for _, tc := range ckptCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			off := tc.build(t)
			on := tc.build(t)
			on.EnableFlight(flightCfg)
			if err := off.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
				t.Fatalf("recorder-off run: %v", err)
			}
			if err := on.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
				t.Fatalf("recorder-on run: %v", err)
			}

			if got, want := stateBytesNoFlight(t, on), stateBytes(t, off); !bytes.Equal(got, want) {
				t.Errorf("recorder changed machine state (%d vs %d bytes)", len(got), len(want))
			}
			if on.Fingerprint() != off.Fingerprint() {
				t.Errorf("fingerprints differ: %#x vs %#x", on.Fingerprint(), off.Fingerprint())
			}
			var oj, fj bytes.Buffer
			if err := on.Snapshot().WriteJSON(&oj); err != nil {
				t.Fatal(err)
			}
			if err := off.Snapshot().WriteJSON(&fj); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(oj.Bytes(), fj.Bytes()) {
				t.Error("result snapshot differs with the recorder on")
			}
			if tc.stats {
				var os, fs bytes.Buffer
				if err := on.StatsDump().WriteJSON(&os); err != nil {
					t.Fatal(err)
				}
				if err := off.StatsDump().WriteJSON(&fs); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(os.Bytes(), fs.Bytes()) {
					t.Error("stats dump differs with the recorder on")
				}
			}
			// And the recorder must actually have recorded the measured window.
			if rep := on.FlightReport(); rep.Demand == 0 || len(rep.Slowest) == 0 {
				t.Errorf("recorder saw nothing: %d demand, %d slow", rep.Demand, len(rep.Slowest))
			}
		})
	}
}

// TestFlightDisabledHasNoFootprint mirrors the stats-framework gate test:
// without EnableFlight the machine holds no recorder, requests carry no trace,
// and the per-transition hooks on an untraced request never allocate.
func TestFlightDisabledHasNoFootprint(t *testing.T) {
	tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	if m.flightOn || m.FlightEnabled() || m.flightRec != nil {
		t.Fatal("flight machinery present before EnableFlight")
	}
	m.Run(10_000, 20_000)
	if m.flightOn || m.FlightReport() != nil {
		t.Fatal("running the machine materialised flight machinery")
	}
	m.forEachInFlight(func(r *mem.Req) {
		if r.Trace != nil {
			t.Fatal("in-flight request carries a trace with the recorder off")
		}
	})

	r := &mem.Req{PC: 0x400, Issued: 100}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Enter(mem.CompInterconnect, 100)
		r.Depart(mem.CompInterconnect, 100, 110, 4)
		r.Hop(mem.CompDRAM, 110, 18)
		r.Split = [mem.NumComponents]uint32{}
	})
	if allocs != 0 {
		t.Fatalf("disabled-path span hooks allocate %.2f objects/op, want 0", allocs)
	}
}

// TestFlightReportSkipAheadEquivalence extends the dense-vs-skip-ahead proof
// to the recorder: both modes must finish with byte-identical serialised
// machine state (now including the recorder section) and a byte-identical
// tail-attribution report.
func TestFlightReportSkipAheadEquivalence(t *testing.T) {
	for _, tc := range ckptCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			dense := tc.buildFlight(t, true)
			skip := tc.buildFlight(t, false)
			if err := dense.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
				t.Fatalf("dense run: %v", err)
			}
			if err := skip.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
				t.Fatalf("skip run: %v", err)
			}
			if got, want := stateBytes(t, skip), stateBytes(t, dense); !bytes.Equal(got, want) {
				t.Errorf("machine+recorder state differs between modes (%d vs %d bytes)", len(got), len(want))
			}
			got, want := flightJSON(t, skip), flightJSON(t, dense)
			if !bytes.Equal(got, want) {
				t.Errorf("flight report differs between modes:\n--- skip ---\n%s\n--- dense ---\n%s", got, want)
			}
			if rep := skip.FlightReport(); rep.Demand == 0 {
				t.Error("recorder saw no demand requests")
			}
		})
	}
}

// TestFlightReportKillResume proves the recorder is checkpoint-aware: a
// skip-ahead run killed mid-measure and resumed from its checkpoints must
// produce the exact report of an uninterrupted dense run — including the span
// chains of requests that were in flight at the kill point.
func TestFlightReportKillResume(t *testing.T) {
	tc := ckptCases()[0]
	ctx := context.Background()

	ref := tc.buildFlight(t, true)
	if err := ref.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
		t.Fatalf("dense reference: %v", err)
	}

	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Interval: ckptInterval, Keep: 3}

	killed := tc.buildFlight(t, false)
	killed.Opt.MaxCycles = 72_000 // mid-measure, off any interval boundary
	if _, err := killed.RunCheckpointed(ctx, ckptWarmup, ckptMeasure, cc); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("killed run: err = %v, want cycle-budget abort", err)
	}

	resumed := tc.buildFlight(t, false)
	from, err := resumed.RunCheckpointed(ctx, ckptWarmup, ckptMeasure, cc)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if from < 72_000 {
		t.Fatalf("resumed from cycle %d, want the abort flush at >= 72000", from)
	}
	if !bytes.Equal(stateBytes(t, resumed), stateBytes(t, ref)) {
		t.Error("kill-and-resume machine+recorder state differs from uninterrupted run")
	}
	got, want := flightJSON(t, resumed), flightJSON(t, ref)
	if !bytes.Equal(got, want) {
		t.Errorf("kill-and-resume flight report differs:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
}

// TestFlightRestoreRequiresRecorderState: a machine with a recorder must
// refuse (and fall back from) a snapshot that has no flight section, or a
// mid-run resume would silently drop the span history.
func TestFlightRestoreRequiresRecorderState(t *testing.T) {
	tc := ckptCases()[0]
	src := tc.build(t)
	src.Run(5_000, 5_000)
	s, err := src.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	dst := tc.build(t)
	dst.EnableFlight(flightCfg)
	if err := dst.RestoreState(s); err == nil {
		t.Error("recorder-equipped machine accepted a snapshot without flight state")
	}

	// The reverse direction is observational: a recorder-less machine applies
	// a flight-carrying snapshot and simply drops the recording.
	srcF := tc.build(t)
	srcF.EnableFlight(flightCfg)
	srcF.Run(5_000, 5_000)
	sf, err := srcF.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	plain := tc.build(t)
	if err := plain.RestoreState(sf); err != nil {
		t.Errorf("recorder-less machine rejected a flight-carrying snapshot: %v", err)
	}
}
