package machine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pivot/internal/workload"
)

func statsRun(t *testing.T, enable bool) *Machine {
	t.Helper()
	tasks := append([]TaskSpec{lcTask(workload.Masstree, 5000)}, beTasks(workload.IBench, 3)...)
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyPIVOT, SampleRequests: 32}, tasks)
	if enable {
		m.EnableStats(2_000, 0)
	}
	m.Run(50_000, 100_000)
	return m
}

// TestStatsDumpDeterministic: two same-seed instrumented runs must produce
// byte-identical JSON dumps (the acceptance criterion that makes dumps
// diffable across commits).
func TestStatsDumpDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := statsRun(t, true).StatsDump().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := statsRun(t, true).StatsDump().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same-seed stats dumps are not byte-identical")
	}
}

// TestStatsObservational: enabling the stats framework must not change any
// simulated result — instruments read component state, they never own it.
func TestStatsObservational(t *testing.T) {
	on := statsRun(t, true)
	off := statsRun(t, false)
	if on.LCp95(0) != off.LCp95(0) {
		t.Errorf("LC p95 changed with stats on: %d vs %d", on.LCp95(0), off.LCp95(0))
	}
	if on.BECommitted() != off.BECommitted() {
		t.Errorf("BE committed changed with stats on: %d vs %d", on.BECommitted(), off.BECommitted())
	}
	if on.BWUtil() != off.BWUtil() {
		t.Errorf("bandwidth util changed with stats on: %g vs %g", on.BWUtil(), off.BWUtil())
	}
	if on.LCTasks()[0].Source.Completed() != off.LCTasks()[0].Source.Completed() {
		t.Errorf("LC completions changed with stats on: %d vs %d",
			on.LCTasks()[0].Source.Completed(), off.LCTasks()[0].Source.Completed())
	}
}

// TestStatsCoverage: the dump must contain instruments and epoch series for
// every major component, and the sampler must have collected the measured
// region at the configured epoch.
func TestStatsCoverage(t *testing.T) {
	m := statsRun(t, true)
	d := m.StatsDump()

	prefixes := []string{"cpu0.", "cpu0.l1.", "cpu0.l2.", "llc.", "ic.", "bus.",
		"bwctrl.", "dram.", "machine."}
	for _, p := range prefixes {
		found := false
		for _, in := range d.Instruments {
			if strings.HasPrefix(in.Name, p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no instrument with prefix %q in the dump", p)
		}
	}

	if d.Series == nil || len(d.Series.Cycles) == 0 {
		t.Fatal("dump has no epoch series")
	}
	if d.Series.EpochCycles != 2000 {
		t.Errorf("series epoch = %d, want 2000", d.Series.EpochCycles)
	}
	for name, col := range d.Series.Values {
		if len(col) != len(d.Series.Cycles) {
			t.Fatalf("series %q has %d points for %d cycles", name, len(col), len(d.Series.Cycles))
		}
	}

	// The LC memory-latency distribution observed the measured region.
	var found bool
	for _, in := range d.Instruments {
		if in.Name == "machine.lc_mem_latency" {
			found = true
			if in.Dist == nil || in.Dist.Count == 0 {
				t.Errorf("lc_mem_latency has no observations: %+v", in)
			}
		}
	}
	if !found {
		t.Error("machine.lc_mem_latency missing from the dump")
	}
}

// TestStatsResetOnMeasure: Machine.Run resets stats state at the
// warm-up/measure boundary, so cumulative counters in the dump reflect the
// measured region only. dram.served must therefore not exceed what the
// measured window could physically carry.
func TestStatsResetOnMeasure(t *testing.T) {
	m := statsRun(t, true)
	d := m.StatsDump()
	for _, in := range d.Instruments {
		if in.Name == "dram.served" && in.Value == 0 {
			t.Error("dram.served is zero after a co-location run")
		}
	}
}

// TestTimelineExport: the run's timeline must be valid trace-event JSON
// containing request lifecycle events and counter tracks.
func TestTimelineExport(t *testing.T) {
	m := statsRun(t, true)
	var buf bytes.Buffer
	if err := m.BuildTimeline(1, "test run").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range file.TraceEvents {
		phases[ev.Ph]++
		if ev.Pid != 1 {
			t.Fatalf("event on pid %d, want 1", ev.Pid)
		}
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["C"] == 0 {
		t.Fatalf("missing event phases: %v", phases)
	}
}

// TestEnableStatsTwiceIsNoop guards against double registration panics when
// a harness enables stats and then re-runs the same machine.
func TestEnableStatsTwiceIsNoop(t *testing.T) {
	tasks := []TaskSpec{lcTask(workload.Silo, 5000)}
	m := MustNew(KunpengConfig(2), Options{Policy: PolicyDefault}, tasks)
	m.EnableStats(0, 0)
	reg := m.StatsRegistry()
	m.EnableStats(1_000, 16) // must not panic or rebuild
	if m.StatsRegistry() != reg {
		t.Fatal("second EnableStats replaced the registry")
	}
}
