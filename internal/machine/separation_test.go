package machine

import (
	"testing"

	"pivot/internal/workload"
)

// TestPivotVsFullPath exercises the paper's central claim (Insight #2): with
// a bandwidth-hungry LC task at high load, FullPath's indiscriminate
// prioritisation costs BE throughput and bandwidth utilisation that PIVOT —
// prioritising only the critical chase loads — retains, while both protect
// the LC tail.
func TestPivotVsFullPath(t *testing.T) {
	for _, app := range workload.LCNames() {
		lcApp := workload.LCApps()[app]
		beApp := workload.BEApps()[workload.IBench]
		pot := ProfileLC(KunpengConfig(8), lcApp, 7, 1)

		// Calibrate the task's expected bandwidth from its run-alone usage
		// at this load (the §II-B "user-specified expected usage ratio").
		alone := MustNew(KunpengConfig(8), Options{Policy: PolicyDefault},
			[]TaskSpec{{Kind: TaskLC, LC: lcApp, MeanInterarrival: 2500, Seed: 1}})
		alone.Run(100_000, 300_000)
		expBW := 0.9 * alone.BWUtil()

		runx := func(pol Policy) (p95 uint32, ipc, bw, critFrac float64) {
			tasks := []TaskSpec{{Kind: TaskLC, LC: lcApp, MeanInterarrival: 2500, Seed: 1,
				Potential: pot, ExpectedBW: expBW}}
			for i := 0; i < 7; i++ {
				tasks = append(tasks, TaskSpec{Kind: TaskBE, BE: beApp, Seed: uint64(10 + i)})
			}
			m := MustNew(KunpengConfig(8), Options{Policy: pol}, tasks)
			m.Run(400_000, 500_000)
			ds := m.DRAMStats()
			return m.LCp95(0), float64(m.BECommitted()) / float64(m.MeasuredCycles()), m.BWUtil(),
				float64(ds.CritServed) / float64(ds.Served)
		}
		fp95, fipc, fbw, fcrit := runx(PolicyFullPath)
		pp95, pipc, pbw, pcrit := runx(PolicyPIVOT)
		t.Logf("%-8s fullpath: p95=%7d ipc=%.4f bw=%.3f crit=%.3f | pivot: p95=%7d ipc=%.4f bw=%.3f crit=%.3f potset=%d",
			app, fp95, fipc, fbw, fcrit, pp95, pipc, pbw, pcrit, len(pot))
		if pipc < fipc {
			t.Logf("note: %s PIVOT BE ipc %.4f below FullPath %.4f", app, pipc, fipc)
		}
	}
}
