package machine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pivot/internal/checkpoint"
	"pivot/internal/profile"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// ckptCase is one workload mix for the checkpoint determinism proof. The
// three cases cover disjoint state surfaces: the plain machine, the PIVOT
// path (RRBP table + MSC priority stations), and the CBP path with the
// profiler, the prefetcher and the stats framework all enabled.
type ckptCase struct {
	name  string
	opt   Options
	tasks []TaskSpec
	stats bool // EnableStats before running
}

func ckptCases() []ckptCase {
	masstree := workload.LCApps()[workload.Masstree]
	potential := profile.CriticalSet{}
	for _, pc := range workload.NewReqGen(masstree, 0, nil).ChasePCs() {
		potential[pc] = true
	}
	pivotLC := lcTask(workload.Masstree, 4000)
	pivotLC.Potential = potential

	return []ckptCase{
		{
			name:  "default-silo-ibench",
			opt:   Options{Policy: PolicyDefault},
			tasks: append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 3)...),
		},
		{
			name:  "pivot-masstree-graph",
			opt:   Options{Policy: PolicyPIVOT},
			tasks: append([]TaskSpec{pivotLC}, beTasks(workload.GraphAn, 3)...),
		},
		{
			name:  "cbp-xapian-data-instrumented",
			opt:   Options{Policy: PolicyCBP, Profile: true, Prefetch: true},
			tasks: append([]TaskSpec{lcTask(workload.Xapian, 3000)}, beTasks(workload.DataAn, 3)...),
			stats: true,
		},
	}
}

func (tc ckptCase) build(t *testing.T) *Machine {
	t.Helper()
	m, err := New(KunpengConfig(4), tc.opt, tc.tasks)
	if err != nil {
		t.Fatalf("%s: New: %v", tc.name, err)
	}
	if tc.stats {
		m.EnableStats(5_000, 0)
	}
	return m
}

// stateBytes serialises the machine's full state exactly as a checkpoint
// payload would, so byte equality here is byte equality on disk.
func stateBytes(t *testing.T, m *Machine) []byte {
	t.Helper()
	s, err := m.SnapshotState()
	if err != nil {
		t.Fatalf("SnapshotState: %v", err)
	}
	b, err := encodeState(s)
	if err != nil {
		t.Fatalf("encodeState: %v", err)
	}
	return b
}

const (
	ckptWarmup   sim.Cycle = 40_000
	ckptMeasure  sim.Cycle = 60_000
	ckptInterval sim.Cycle = 16_000 // deliberately not dividing warmup or the end
)

// TestCheckpointingDoesNotPerturbResults is the tentpole's first proof
// obligation: a run that periodically writes checkpoints finishes in a state
// byte-identical to an uninterrupted run, for every workload mix.
func TestCheckpointingDoesNotPerturbResults(t *testing.T) {
	for _, tc := range ckptCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			ref := tc.build(t)
			if err := ref.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
				t.Fatalf("reference run: %v", err)
			}

			dir := t.TempDir()
			ck := tc.build(t)
			resumed, err := ck.RunCheckpointed(ctx, ckptWarmup, ckptMeasure,
				CheckpointConfig{Dir: dir, Interval: ckptInterval, Keep: 3})
			if err != nil {
				t.Fatalf("checkpointed run: %v", err)
			}
			if resumed != 0 {
				t.Fatalf("fresh run claims to have resumed from cycle %d", resumed)
			}

			if got, want := stateBytes(t, ck), stateBytes(t, ref); string(got) != string(want) {
				t.Errorf("final machine state differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
			}
			if ck.LCp95(0) != ref.LCp95(0) || ck.BECommitted() != ref.BECommitted() {
				t.Errorf("stats differ: p95 %d vs %d, BE %d vs %d",
					ck.LCp95(0), ref.LCp95(0), ck.BECommitted(), ref.BECommitted())
			}
			if ck.MeasuredCycles() != ref.MeasuredCycles() {
				t.Errorf("measured cycles differ: %d vs %d", ck.MeasuredCycles(), ref.MeasuredCycles())
			}
			entries, _ := os.ReadDir(dir)
			if len(entries) == 0 {
				t.Error("checkpointed run wrote no checkpoint files")
			}
		})
	}
}

// TestResumeAtWarmupBoundaryResetsStats pins the boundary case behind
// checkpoint migration: a periodic checkpoint whose interval divides the
// warm-up length lands exactly on the warm-up boundary, holding PRE-reset
// state (the write happens inside the warm-up stepping, before ResetStats).
// A resume from that frame must still reset statistics at the boundary, or
// the warm-up silently counts as measured.
func TestResumeAtWarmupBoundaryResetsStats(t *testing.T) {
	tc := ckptCases()[0]
	ctx := context.Background()

	ref := tc.build(t)
	if err := ref.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Reproduce the on-disk situation: a frame at exactly the warm-up
	// boundary with statistics not yet reset.
	dir := t.TempDir()
	pre := tc.build(t)
	if err := pre.StepChecked(ctx, ckptWarmup); err != nil {
		t.Fatalf("warm-up step: %v", err)
	}
	if _, err := pre.WriteCheckpoint(dir, 2); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	res := tc.build(t)
	resumed, err := res.RunCheckpointed(ctx, ckptWarmup, ckptMeasure,
		CheckpointConfig{Dir: dir, Interval: ckptInterval})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed != ckptWarmup {
		t.Fatalf("resumed from cycle %d, want the warm-up boundary %d", resumed, ckptWarmup)
	}
	if res.MeasuredCycles() != ref.MeasuredCycles() {
		t.Errorf("measured cycles = %d, want %d (warm-up leaked into the measured region)",
			res.MeasuredCycles(), ref.MeasuredCycles())
	}
	if got, want := stateBytes(t, res), stateBytes(t, ref); string(got) != string(want) {
		t.Error("final state differs from an uninterrupted run")
	}
}

// TestRestoreThenStepIsBitIdentical is the core restore contract:
// restore(snapshot(M)) into a fresh machine, then stepping both N cycles,
// yields byte-identical states — for every workload mix.
func TestRestoreThenStepIsBitIdentical(t *testing.T) {
	for _, tc := range ckptCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			a := tc.build(t)
			// An odd cycle count so the snapshot lands mid-flight, with loads
			// in the ROBs, misses in the MSHRs and requests in the stations.
			if err := a.StepChecked(ctx, 70_000); err != nil {
				t.Fatalf("step: %v", err)
			}
			s, err := a.SnapshotState()
			if err != nil {
				t.Fatalf("SnapshotState: %v", err)
			}
			payload, err := encodeState(s)
			if err != nil {
				t.Fatalf("encodeState: %v", err)
			}

			b := tc.build(t)
			restoredState, err := decodeState(payload)
			if err != nil {
				t.Fatalf("decodeState: %v", err)
			}
			if err := b.RestoreState(restoredState); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
			if got, want := stateBytes(t, b), stateBytes(t, a); string(got) != string(want) {
				t.Fatal("restored state differs before stepping")
			}

			if err := a.StepChecked(ctx, 45_000); err != nil {
				t.Fatalf("step original: %v", err)
			}
			if err := b.StepChecked(ctx, 45_000); err != nil {
				t.Fatalf("step restored: %v", err)
			}
			if got, want := stateBytes(t, b), stateBytes(t, a); string(got) != string(want) {
				t.Error("states diverged after stepping the restored machine")
			}
		})
	}
}

// TestAbortFlushesAndResumeMatchesUninterrupted covers graceful shutdown:
// a run aborted mid-measure (cycle budget, standing in for SIGINT) flushes a
// final checkpoint; a fresh machine resuming from that directory finishes
// with state and whole-run statistics byte-identical to a run that was never
// interrupted.
func TestAbortFlushesAndResumeMatchesUninterrupted(t *testing.T) {
	tc := ckptCases()[0]
	ctx := context.Background()

	ref := tc.build(t)
	if err := ref.RunChecked(ctx, ckptWarmup, ckptMeasure); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Interval: ckptInterval, Keep: 3}

	interrupted := tc.build(t)
	interrupted.Opt.MaxCycles = 72_000 // mid-measure, off any interval boundary
	if _, err := interrupted.RunCheckpointed(ctx, ckptWarmup, ckptMeasure, cc); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("interrupted run: err = %v, want cycle-budget abort", err)
	}

	resumedM := tc.build(t)
	resumed, err := resumedM.RunCheckpointed(ctx, ckptWarmup, ckptMeasure, cc)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed < 72_000 {
		t.Fatalf("resumed from cycle %d, want the abort flush at >= 72000", resumed)
	}
	if got, want := stateBytes(t, resumedM), stateBytes(t, ref); string(got) != string(want) {
		t.Error("resumed final state differs from uninterrupted run")
	}
	// The restored run must report whole-run counters, not post-restore ones.
	if resumedM.MeasuredCycles() != ref.MeasuredCycles() {
		t.Errorf("measured cycles: %d vs %d", resumedM.MeasuredCycles(), ref.MeasuredCycles())
	}
	if resumedM.LCp95(0) != ref.LCp95(0) || resumedM.BECommitted() != ref.BECommitted() {
		t.Errorf("whole-run stats differ: p95 %d vs %d, BE %d vs %d",
			resumedM.LCp95(0), ref.LCp95(0), resumedM.BECommitted(), ref.BECommitted())
	}
}

// TestTryRestoreFallsBackPastCorruptAndUnusableFrames drives the recovery
// chain: a bit-flipped newest file (CRC) and a CRC-valid frame with garbage
// payload are both skipped in favour of the newest good checkpoint; with
// every frame corrupt, restore degrades to from-scratch.
func TestTryRestoreFallsBackPastCorruptAndUnusableFrames(t *testing.T) {
	tc := ckptCases()[0]
	ctx := context.Background()

	a := tc.build(t)
	dir := t.TempDir()
	// Step past several interval boundaries so multiple checkpoints exist.
	if err := a.stepCheckpointed(ctx, 50_000, CheckpointConfig{Dir: dir, Interval: 16_000, Keep: 10}); err != nil {
		t.Fatalf("stepCheckpointed: %v", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil || len(names) < 3 {
		t.Fatalf("want >= 3 checkpoints, got %d (%v)", len(names), err)
	}

	// A CRC-valid frame with an undecodable payload, newer than everything:
	// TryRestore must discard it (removing the file) and fall back.
	junk := filepath.Join(dir, checkpoint.FileName(999_999))
	if _, err := checkpoint.Write(dir, checkpoint.Checkpoint{
		Cycle: 999_999, Fingerprint: a.Fingerprint(), Payload: []byte("not a gob stream"),
	}); err != nil {
		t.Fatal(err)
	}
	// And a bit-flipped (CRC-failing) frame between the junk and the good ones.
	goodAt48k := filepath.Join(dir, checkpoint.FileName(48_000))
	data, err := os.ReadFile(goodAt48k)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, checkpoint.FileName(500_000)), flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	b := tc.build(t)
	restored, from, err := b.TryRestore(dir)
	if err != nil || !restored {
		t.Fatalf("TryRestore = (%v, %d, %v), want restore from the newest good frame", restored, from, err)
	}
	if from != 48_000 {
		t.Errorf("restored from cycle %d, want 48000", from)
	}
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Errorf("undecodable frame not removed: %v", err)
	}
	if got, want := stateBytes(t, b), payloadAt(t, goodAt48k); string(got) != string(want) {
		t.Error("restored state does not match the 48k checkpoint payload")
	}

	// Corrupt every remaining frame: from-scratch floor, machine untouched.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/3] ^= 0x40
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c := tc.build(t)
	before := stateBytes(t, c)
	restored, _, err = c.TryRestore(dir)
	if err != nil || restored {
		t.Fatalf("all-corrupt dir: TryRestore = (%v, %v), want clean from-scratch fallback", restored, err)
	}
	if string(stateBytes(t, c)) != string(before) {
		t.Error("failed restore mutated the machine")
	}
}

// payloadAt re-encodes the state stored in a checkpoint file, for comparing
// against a live machine's serialised state.
func payloadAt(t *testing.T, path string) []byte {
	t.Helper()
	ck, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return ck.Payload
}

// TestRestoreRejectsForeignGeometry: restoring a 4-core snapshot into an
// 8-core machine must fail cleanly, leaving the target machine untouched.
func TestRestoreRejectsForeignGeometry(t *testing.T) {
	tc := ckptCases()[0]
	a := tc.build(t)
	if err := a.StepChecked(context.Background(), 10_000); err != nil {
		t.Fatal(err)
	}
	s, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	tasks := append([]TaskSpec{lcTask(workload.Silo, 5000)}, beTasks(workload.IBench, 3)...)
	b := MustNew(KunpengConfig(8), Options{Policy: PolicyDefault}, tasks)
	before := stateBytes(t, b)
	if err := b.RestoreState(s); err == nil {
		t.Fatal("8-core machine accepted a 4-core snapshot")
	}
	if string(stateBytes(t, b)) != string(before) {
		t.Error("rejected restore still mutated the machine")
	}
}

// TestCustomStreamNotCheckpointable: tasks whose instruction stream lives
// outside the machine cannot be snapshotted, and say so up front.
func TestCustomStreamNotCheckpointable(t *testing.T) {
	stream := workload.NewBEStream(workload.BEApps()[workload.IBench], 1, sim.NewRNG(7))
	tasks := []TaskSpec{
		lcTask(workload.Silo, 5000),
		{Kind: TaskBE, CustomStream: stream, Seed: 2},
	}
	m := MustNew(KunpengConfig(4), Options{Policy: PolicyDefault}, tasks)
	if err := m.Checkpointable(); err == nil {
		t.Fatal("custom-stream machine claims to be checkpointable")
	}
	if _, err := m.SnapshotState(); err == nil {
		t.Fatal("custom-stream machine produced a snapshot")
	}
	if _, _, err := m.TryRestore(t.TempDir()); err == nil {
		t.Fatal("custom-stream machine attempted a restore")
	}
}
