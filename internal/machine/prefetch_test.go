package machine

import (
	"testing"

	"pivot/internal/workload"
)

// TestPrefetcherSpeedsLatencyBoundStreams: Img-DNN's weight streaming is
// latency-bound run-alone (miss concurrency, not the DRAM bus, limits it);
// the stride prefetcher should let it serve at least as many requests
// closed-loop, with the stream arriving ahead of the demand misses.
func TestPrefetcherSpeedsLatencyBoundStreams(t *testing.T) {
	run := func(pf bool) uint64 {
		m := MustNew(KunpengConfig(1), Options{Policy: PolicyDefault, Prefetch: pf},
			[]TaskSpec{{Kind: TaskLC, LC: workload.LCApps()[workload.ImgDNN],
				MeanInterarrival: 0, Seed: 3}})
		m.Run(50_000, 300_000)
		return m.LCTasks()[0].Source.Completed()
	}
	off, on := run(false), run(true)
	t.Logf("closed-loop requests: prefetch-off=%d prefetch-on=%d", off, on)
	if float64(on) < float64(off)*0.98 {
		t.Fatalf("prefetcher slowed a latency-bound stream: %d < %d", on, off)
	}
}

// TestPrefetchRequestsNeverCritical: prefetches must not enter the priority
// queues even under FullPath.
func TestPrefetchRequestsNeverCritical(t *testing.T) {
	tasks := []TaskSpec{
		{Kind: TaskLC, LC: workload.LCApps()[workload.ImgDNN], MeanInterarrival: 3000, Seed: 1},
	}
	m := MustNew(KunpengConfig(2), Options{Policy: PolicyFullPath, Prefetch: true}, tasks)
	m.Run(50_000, 150_000)
	// All DRAM-served critical requests must be demand traffic: the count of
	// critical serves cannot exceed total LC demand misses. A direct signal:
	// no prefetch-flagged request may be counted critical. We verify through
	// the request pool the machine recycles.
	for _, r := range m.reqPool {
		if r.Prefetch && r.Critical {
			t.Fatal("prefetch request carried the critical bit")
		}
	}
	if m.LCTasks()[0].Source.Completed() == 0 {
		t.Fatal("no requests completed with the prefetcher on")
	}
}

// TestPrefetchDeterminism: prefetching stays deterministic.
func TestPrefetchDeterminism(t *testing.T) {
	run := func() uint64 {
		m := MustNew(KunpengConfig(2), Options{Policy: PolicyPIVOT, Prefetch: true},
			[]TaskSpec{
				{Kind: TaskLC, LC: workload.LCApps()[workload.Xapian], MeanInterarrival: 4000, Seed: 9},
				{Kind: TaskBE, BE: workload.BEApps()[workload.IBench], Seed: 10},
			})
		m.Run(100_000, 150_000)
		return m.Cores[0].Stats.Committed + m.BECommitted()
	}
	if run() != run() {
		t.Fatal("prefetch-enabled runs diverged")
	}
}
