package machine

import (
	"fmt"
	"hash/fnv"

	"pivot/internal/bwctrl"
	"pivot/internal/cache"
	"pivot/internal/cbp"
	"pivot/internal/cpu"
	"pivot/internal/dram"
	"pivot/internal/flight"
	"pivot/internal/interconnect"
	"pivot/internal/loadgen"
	"pivot/internal/mba"
	"pivot/internal/mem"
	"pivot/internal/prefetch"
	"pivot/internal/profile"
	"pivot/internal/rrbp"
	"pivot/internal/sim"
	"pivot/internal/stats"
	"pivot/internal/workload"
)

// This file composes the per-component Snapshot()/Restore() pairs into one
// MachineState: the complete mutable state of a simulation at a cycle
// boundary. The contract every checkpoint test holds the machine to:
// restoring a snapshot into a freshly built machine (same Config, Options and
// TaskSpecs) and stepping N cycles is bit-identical to stepping the original
// machine the same N cycles.

// PortState is one core's private memory hierarchy in serialisable form.
type PortState struct {
	L1   cache.CacheState
	L2   cache.CacheState
	MSHR cache.MSHRState
	PF   *prefetch.PrefetcherState // nil unless Options.Prefetch
	Out  []mem.ReqState
}

// DelayedState is one scheduled delay-wheel event in serialisable form.
type DelayedState struct {
	Due    sim.Cycle
	Kind   uint8
	Core   int
	Seq    uint64
	Line   uint64
	HasReq bool
	Req    mem.ReqState
}

// delayedState converts one wheel event to its serialisable form. The
// parallel-mode schedSeq tie-breaker is deliberately absent: it is derived
// bookkeeping, and the wire format stays identical to serial's.
func delayedState(e delayed) DelayedState {
	ds := DelayedState{Due: e.due, Kind: uint8(e.kind), Core: e.core, Seq: e.seq, Line: e.line}
	if e.req != nil {
		ds.HasReq = true
		ds.Req = e.req.State()
	}
	return ds
}

// LCTaskState is one LC task's runtime state (predictor tables, profiler and
// the load generator's arrival process).
type LCTaskState struct {
	Source   loadgen.SourceState
	RRBP     *rrbp.TableState
	CBP      *cbp.PredictorState
	Profiler *profile.ProfilerState
}

// BESlotState is one core's BE instruction stream, by value: gob rejects nil
// slice elements, so absent streams (LC cores) carry Present == false
// instead of a nil pointer.
type BESlotState struct {
	Present bool
	Stream  workload.BEStreamState
}

// MachineState is the full mutable state of a Machine. Wiring — tick order,
// hooks, downstream pointers, policy configuration — is NOT here: it is
// reconstructed by building a machine from the identical Config, Options and
// TaskSpecs, then overwriting its state with RestoreState.
type MachineState struct {
	Engine sim.EngineState
	Cores  []cpu.CoreState
	Ports  []PortState
	LLC    cache.CacheState
	IC     interconnect.StationState
	Bus    interconnect.StationState
	BW     bwctrl.ControllerState
	MC     dram.ControllerState
	Thr    mba.ThrottleState
	Delays [256][]DelayedState
	LCs    []LCTaskState
	BEs    []BESlotState // by core index; Present is false for LC cores

	SplitSum   [mem.NumComponents]float64
	SplitCount uint64
	Sampled    []RequestRecord

	Sampler *stats.SamplerState      // nil unless stats enabled at snapshot
	LatDist *stats.DistributionState // nil unless stats enabled at snapshot
	Flight  *flight.RecorderState    // nil unless a flight recorder attached

	MeasureStart sim.Cycle
	Measured     sim.Cycle
	StatsResetAt sim.Cycle

	ReqsIssued   uint64
	ReqsRecycled uint64
	ReqsDelayed  int
}

// Fingerprint hashes the machine's identity — config, options and task specs
// — so a checkpoint is only ever restored into a machine built from the same
// inputs. CustomStream values are opaque (only their presence is hashed), but
// custom-stream machines refuse to snapshot anyway.
func (m *Machine) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cfg:%+v|policy:%d|rrbp:%+v|cbp:%+v|msc:%d|prof:%t|ebw:%g|nsg:%t|samp:%d|pf:%t|pfcfg:%+v",
		m.Cfg, m.Opt.Policy, m.Opt.RRBP, m.Opt.CBP, m.Opt.DisableMSC,
		m.Opt.Profile, m.Opt.ExpectedLCBW, m.Opt.NoStarvationGuard,
		m.Opt.SampleRequests, m.Opt.Prefetch, m.Opt.PrefetchCfg)
	for _, t := range m.tasks {
		// Maps format with sorted keys, so Potential hashes deterministically.
		// Load is a pure value (slices of values, no pointers or maps), so
		// %+v formats it deterministically too; including it keys checkpoint
		// directories by load shape.
		fmt.Fprintf(h, "|task:%d:%+v:%+v:%g:%g:%d:%v:%t:%+v",
			t.Kind, t.LC, t.BE, t.MeanInterarrival, t.ExpectedBW, t.Seed,
			t.Potential, t.CustomStream != nil, t.Load)
	}
	return h.Sum64()
}

// Checkpointable reports whether the machine's state can be fully captured:
// custom instruction streams and attached fault injectors hold state outside
// the snapshot surface, so machines using them refuse to checkpoint rather
// than restore silently wrong.
func (m *Machine) Checkpointable() error {
	for i, t := range m.tasks {
		if t.CustomStream != nil {
			return fmt.Errorf("machine: task %d uses a custom stream; not checkpointable", i)
		}
	}
	if m.ic.Fault != nil || m.bus.Fault != nil || m.bw.Station.Fault != nil || m.mc.Fault != nil {
		return fmt.Errorf("machine: fault injectors attached; not checkpointable")
	}
	return nil
}

// SnapshotState captures the machine's complete mutable state. It only reads
// — taking a snapshot can never perturb a simulation.
func (m *Machine) SnapshotState() (*MachineState, error) {
	if err := m.Checkpointable(); err != nil {
		return nil, err
	}
	s := &MachineState{
		Engine:       m.Engine.SnapshotState(),
		Cores:        make([]cpu.CoreState, len(m.Cores)),
		Ports:        make([]PortState, len(m.ports)),
		LLC:          m.llc.SnapshotState(),
		IC:           m.ic.SnapshotState(),
		Bus:          m.bus.SnapshotState(),
		BW:           m.bw.SnapshotState(),
		MC:           m.mc.SnapshotState(),
		Thr:          m.thr.SnapshotState(),
		BEs:          make([]BESlotState, len(m.bes)),
		SplitSum:     m.splitSum,
		SplitCount:   m.splitCount,
		Sampled:      append([]RequestRecord(nil), m.sampled...),
		MeasureStart: m.measureStart,
		Measured:     m.measured,
		StatsResetAt: m.statsResetAt,
		ReqsIssued:   m.reqsIssued,
		ReqsRecycled: m.reqsRecycled,
		ReqsDelayed:  m.reqsDelayed,
	}
	for i, c := range m.Cores {
		s.Cores[i] = c.SnapshotState()
	}
	for i, p := range m.ports {
		ps := PortState{
			L1:   p.l1.SnapshotState(),
			L2:   p.l2.SnapshotState(),
			MSHR: p.mshr.SnapshotState(),
			Out:  make([]mem.ReqState, len(p.out)),
		}
		for j, r := range p.out {
			ps.Out[j] = r.State()
		}
		if p.pf != nil {
			pf := p.pf.SnapshotState()
			ps.PF = &pf
		}
		s.Ports[i] = ps
	}
	if m.par != nil {
		m.snapshotDelays(s)
	} else {
		for slot, pend := range m.delays.wheel {
			if len(pend) == 0 {
				continue
			}
			out := make([]DelayedState, len(pend))
			for i, e := range pend {
				out[i] = delayedState(e)
			}
			s.Delays[slot] = out
		}
	}
	for _, lc := range m.lcs {
		ls := LCTaskState{Source: lc.Source.SnapshotState()}
		if lc.RRBP != nil {
			t := lc.RRBP.SnapshotState()
			ls.RRBP = &t
		}
		if lc.CBP != nil {
			t := lc.CBP.SnapshotState()
			ls.CBP = &t
		}
		if lc.Profiler != nil {
			t := lc.Profiler.SnapshotState()
			ls.Profiler = &t
		}
		s.LCs = append(s.LCs, ls)
	}
	for i, be := range m.bes {
		if be != nil {
			s.BEs[i] = BESlotState{Present: true, Stream: be.SnapshotState()}
		}
	}
	if m.sampler != nil {
		st := m.sampler.SnapshotState()
		s.Sampler = &st
	}
	if m.latDist != nil {
		st := m.latDist.SnapshotState()
		s.LatDist = &st
	}
	s.Flight = m.flightSnapshot()
	return s, nil
}

// validateState checks a decoded snapshot against this machine's geometry
// WITHOUT mutating anything, so a mismatched snapshot can be discarded and an
// older one tried while the machine is still pristine.
func (m *Machine) validateState(s *MachineState) error {
	if len(s.Cores) != len(m.Cores) {
		return fmt.Errorf("machine: snapshot has %d cores, machine has %d", len(s.Cores), len(m.Cores))
	}
	if len(s.Ports) != len(m.ports) {
		return fmt.Errorf("machine: snapshot has %d ports, machine has %d", len(s.Ports), len(m.ports))
	}
	if len(s.LCs) != len(m.lcs) {
		return fmt.Errorf("machine: snapshot has %d LC tasks, machine has %d", len(s.LCs), len(m.lcs))
	}
	if len(s.BEs) != len(m.bes) {
		return fmt.Errorf("machine: snapshot has %d BE slots, machine has %d", len(s.BEs), len(m.bes))
	}
	if got, want := len(s.LLC.Lines), m.llc.StateLines(); got != want {
		return fmt.Errorf("machine: LLC snapshot has %d lines, geometry holds %d", got, want)
	}
	for i, ps := range s.Ports {
		if got, want := len(ps.L1.Lines), m.ports[i].l1.StateLines(); got != want {
			return fmt.Errorf("machine: core %d L1 snapshot has %d lines, geometry holds %d", i, got, want)
		}
		if got, want := len(ps.L2.Lines), m.ports[i].l2.StateLines(); got != want {
			return fmt.Errorf("machine: core %d L2 snapshot has %d lines, geometry holds %d", i, got, want)
		}
		if (ps.PF != nil) != (m.ports[i].pf != nil) {
			return fmt.Errorf("machine: core %d prefetcher presence differs from snapshot", i)
		}
	}
	for i, cs := range s.Cores {
		if len(cs.ROB) != m.Cores[i].Config().ROBSize {
			return fmt.Errorf("machine: core %d snapshot ROB has %d slots, config has %d",
				i, len(cs.ROB), m.Cores[i].Config().ROBSize)
		}
	}
	for i := range s.LCs {
		if (s.LCs[i].RRBP != nil) != (m.lcs[i].RRBP != nil) ||
			(s.LCs[i].CBP != nil) != (m.lcs[i].CBP != nil) ||
			(s.LCs[i].Profiler != nil) != (m.lcs[i].Profiler != nil) {
			return fmt.Errorf("machine: LC task %d predictor/profiler presence differs from snapshot", i)
		}
	}
	for i := range s.BEs {
		if s.BEs[i].Present != (m.bes[i] != nil) {
			return fmt.Errorf("machine: core %d BE stream presence differs from snapshot", i)
		}
	}
	// A flight-recording machine must not resume from a snapshot that lacks
	// the recorder's state: the resumed run would silently under-report
	// everything completed before the snapshot. (The reverse — a snapshot
	// carrying flight state restored into a recorder-less machine — is fine:
	// the recorder is purely observational, so its state is simply dropped.)
	if m.flightRec != nil {
		if s.Flight == nil {
			return fmt.Errorf("machine: flight recorder attached but snapshot has no flight state")
		}
		if err := s.Flight.Validate(m.flightRec.Cfg()); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState overwrites the machine's state from a snapshot taken on a
// machine built from the identical Config, Options and TaskSpecs. On a
// validation error the machine is untouched; apply-phase errors cannot occur
// after validation passes.
func (m *Machine) RestoreState(s *MachineState) error {
	if err := m.Checkpointable(); err != nil {
		return err
	}
	if err := m.validateState(s); err != nil {
		return err
	}

	m.Engine.RestoreState(s.Engine)
	for i, c := range m.Cores {
		c.RestoreState(s.Cores[i])
	}
	for i, p := range m.ports {
		ps := s.Ports[i]
		if err := p.l1.RestoreState(ps.L1); err != nil {
			return err // unreachable after validateState; kept for safety
		}
		if err := p.l2.RestoreState(ps.L2); err != nil {
			return err
		}
		p.mshr.RestoreState(ps.MSHR)
		p.out = p.out[:0]
		for _, rs := range ps.Out {
			p.out = append(p.out, rs.Materialize())
		}
		if len(p.out) > 0 {
			m.outOcc |= 1 << uint(i)
		} else {
			m.outOcc &^= 1 << uint(i)
		}
		if p.pf != nil {
			p.pf.RestoreState(*ps.PF)
		}
	}
	if err := m.llc.RestoreState(s.LLC); err != nil {
		return err
	}
	m.ic.RestoreState(s.IC)
	m.bus.RestoreState(s.Bus)
	m.bw.RestoreState(s.BW)
	m.mc.RestoreState(s.MC)
	m.thr.RestoreState(s.Thr)

	for slot := range m.delays.wheel {
		m.delays.wheel[slot] = m.delays.wheel[slot][:0]
		for _, ds := range s.Delays[slot] {
			e := delayed{due: ds.Due, kind: delayKind(ds.Kind), core: ds.Core, seq: ds.Seq, line: ds.Line}
			if ds.HasReq {
				e.req = ds.Req.Materialize()
			}
			m.delays.wheel[slot] = append(m.delays.wheel[slot], e)
		}
	}
	// The occupancy cache feeding skip-ahead's quiescence poll is derived
	// state: rebuild it from the restored wheel.
	m.delays.recount()
	if m.par != nil {
		// Parallel mode keeps core-local completions in per-shard wheels:
		// re-split the restored (canonically ordered) shared wheel and reset
		// every shard's window-scoped runtime.
		m.splitRestoredDelays()
	}

	for i, lc := range m.lcs {
		ls := s.LCs[i]
		lc.Source.RestoreState(ls.Source)
		if lc.RRBP != nil {
			lc.RRBP.RestoreState(*ls.RRBP)
		}
		if lc.CBP != nil {
			lc.CBP.RestoreState(*ls.CBP)
		}
		if lc.Profiler != nil {
			lc.Profiler.RestoreState(*ls.Profiler)
		}
	}
	for i, be := range m.bes {
		if be != nil {
			be.RestoreState(s.BEs[i].Stream)
		}
	}

	m.splitSum = s.SplitSum
	m.splitCount = s.SplitCount
	m.sampled = append(m.sampled[:0], s.Sampled...)
	m.measureStart = s.MeasureStart
	m.measured = s.Measured
	m.statsResetAt = s.StatsResetAt
	m.reqsIssued = s.ReqsIssued
	m.reqsRecycled = s.ReqsRecycled
	m.reqsDelayed = s.ReqsDelayed

	// Stats instruments read through to the component counters restored
	// above; only the sampler ring and the latency distribution own state.
	// A snapshot from a stats-enabled machine restores into a stats-enabled
	// machine; a plain snapshot leaves a fresh sampler fresh.
	if m.sampler != nil && s.Sampler != nil {
		m.sampler.RestoreState(*s.Sampler)
	}
	if m.latDist != nil && s.LatDist != nil {
		m.latDist.RestoreState(*s.LatDist)
	}
	// Reattach the flight recorder last: the in-flight walk reads the
	// component queues restored above.
	m.flightRestore(s.Flight)
	return nil
}
