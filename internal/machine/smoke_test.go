package machine

import (
	"testing"

	"pivot/internal/workload"
)

// TestSmokeDynamics is a bring-up check: an LC task must complete requests
// run-alone; co-location with iBench must inflate its tail latency under
// Default; and PIVOT must pull the tail back down while keeping BE
// throughput above MBA-style throttling. It intentionally asserts loose
// orderings only — the experiment harness quantifies everything later.
func TestSmokeDynamics(t *testing.T) {
	lcApp := workload.LCApps()[workload.Masstree]
	beApp := workload.BEApps()[workload.IBench]

	run := func(pol Policy, nBE int, meanIA float64) (p95 uint32, completed uint64, beIPC float64, bw float64) {
		tasks := []TaskSpec{{Kind: TaskLC, LC: lcApp, MeanInterarrival: meanIA, Seed: 1}}
		for i := 0; i < nBE; i++ {
			tasks = append(tasks, TaskSpec{Kind: TaskBE, BE: beApp, Seed: uint64(10 + i)})
		}
		m := MustNew(KunpengConfig(8), Options{Policy: pol}, tasks)
		m.Run(100_000, 400_000)
		lc := m.LCTasks()[0]
		var ipc float64
		if nBE > 0 {
			ipc = float64(m.BECommitted()) / float64(m.MeasuredCycles())
		}
		return m.LCp95(0), lc.Source.Completed(), ipc, m.BWUtil()
	}

	aloneP95, aloneN, _, _ := run(PolicyDefault, 0, 4000)
	t.Logf("alone: p95=%d cycles, completed=%d", aloneP95, aloneN)
	if aloneN < 50 {
		t.Fatalf("run-alone completed only %d requests", aloneN)
	}

	coP95, coN, coIPC, coBW := run(PolicyDefault, 7, 4000)
	t.Logf("co-located Default: p95=%d completed=%d beIPC=%.3f bw=%.2f", coP95, coN, coIPC, coBW)
	if coP95 <= aloneP95*3/2 {
		t.Errorf("expected >=1.5x tail inflation under contention: alone=%d co=%d", aloneP95, coP95)
	}

	fpP95, _, fpIPC, fpBW := run(PolicyFullPath, 7, 4000)
	t.Logf("co-located FullPath: p95=%d beIPC=%.3f bw=%.2f", fpP95, fpIPC, fpBW)
	if fpP95 >= coP95 {
		t.Errorf("FullPath should beat Default tail: fp=%d default=%d", fpP95, coP95)
	}
}
