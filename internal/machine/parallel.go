package machine

import (
	"fmt"
	"math/bits"

	"pivot/internal/mem"
	"pivot/internal/sim"
)

// This file carves the machine into the shard boundaries the sharded engine
// (internal/sim/parallel.go) drives: one shard per core — the core itself,
// its private L1/L2/MSHR/prefetcher, its core-local delay wheel
// (loadDone/fillLocal events), and its LC task state (load-generator source,
// RRBP/CBP predictor, profiler) — plus a coordinator owning everything
// shared: DRAM, the bandwidth controller, the bus and interconnect stations,
// the MBA throttle, the LLC, the shared delay wheel (egress/deliver events),
// request recycling, stats aggregation and epoch sampling.
//
// Why this split is bit-exact (the full inventory is in DESIGN.md):
//
//   - The only way a core affects the shared side is an egress event with at
//     least Cfg.L1.HitCycles of scheduling latency. PlanWindow bounds every
//     window so all egress scheduled inside it falls due at or after the
//     barrier, so the coordinator never misses a same-window event.
//   - The only ways the shared side affects a core are cache fills, egress
//     queue pushes/pops, retry wake-ups and predictor-refresh decisions. The
//     coordinator runs its half of the window FIRST, staging each of those
//     into per-shard mailboxes stamped with its exact cycle; shards then
//     replay their cycles applying mailbox events at those stamps. Staging a
//     wake-capable event shrinks the window so a woken core's egress still
//     lands past the (new) barrier.
//   - Events sharing a wheel slot are dispatched in schedule order in the
//     serial run. Parallel mode reproduces that order canonically: schedule
//     cycle (reconstructed from due and kind), then component rank (LLC-hit
//     delivers are scheduled by the interconnect, which ticks before cores),
//     then a per-shard schedule sequence number for same-cycle same-core
//     ties.
//
// Everything here assumes phases never overlap: the coordinator runs alone,
// then shards run (possibly concurrently with EACH OTHER, never with the
// coordinator), then the barrier merge runs alone. Shard code may therefore
// freely read machine-wide immutable wiring (Cfg, Opt, hooks) and its own
// mutable state, and nothing else.

// parEvent is one coordinator→shard mailbox event, applied by the shard at
// exactly stamp, in staging order within a stamp.
type parEvent struct {
	stamp sim.Cycle
	kind  uint8
	addr  uint64 // evFill: the filled line
	flag  bool   // evFill: LLC miss; evRefresh: usage reading valid
	under bool   // evRefresh: usage < expected bandwidth
}

const (
	// evFill fills the shard's private caches and wakes MSHR waiters (a DRAM
	// response or LLC-hit delivery reaching the core).
	evFill uint8 = iota
	// evOutPush mirrors one egress request entering the port's out queue.
	evOutPush
	// evOutPop mirrors one egress request leaving the port's out queue.
	evOutPop
	// evWake drops the core's cached idle verdict (a flush freed egress
	// slots that may unblock a structurally refused retry).
	evWake
	// evRefresh carries one 1024-cycle predictor refresh boundary, with the
	// bandwidth-usage reading the coordinator took at that cycle.
	evRefresh
)

// parShard is one core's shard: the per-core mutable state the coordinator
// must never touch mid-window, plus the window-scoped staging areas.
type parShard struct {
	m  *Machine
	id int

	// now is the shard's current cycle while replaying a window; between
	// windows it equals the engine clock. The LC load generator's clock
	// closure reads it so arrivals land at the shard's cycle, not the
	// window start.
	now sim.Cycle

	// wheel holds this core's loadDone/fillLocal completions (the shared
	// wheel keeps only egress/deliver events in parallel mode).
	wheel delayQ

	// pool is the per-shard request free list (the coordinator recycles a
	// request back to its issuing core's pool; pools are unobservable).
	pool []*mem.Req

	// seq numbers every event this shard schedules, breaking canonical-order
	// ties between same-cycle events of the same core. Serial mode leaves it
	// zero; it is never serialised.
	seq uint64

	// mail is the coordinator-staged event stream for the current window,
	// sorted by stamp (the coordinator stages in cycle order).
	mail []parEvent

	// egress holds the egress events this shard scheduled during the current
	// window; every one falls due at or after the barrier, where the
	// coordinator merges them into the shared wheel in canonical order.
	egress []delayed

	// outLen mirrors len(port.out) as of the shard's current cycle, advanced
	// by evOutPush/evOutPop. The shard's own egress never lands inside the
	// window (due >= barrier), so mailbox deltas are the complete story.
	outLen int

	// issueAt is the NextIssue forecast computed at the last barrier.
	issueAt sim.Cycle

	// issued / delayedEv fold into the machine's request-conservation
	// counters at the barrier, keeping every between-step reader (auditor,
	// diagnostics, snapshots) oblivious to sharding.
	issued    uint64
	delayedEv int
}

// parRuntime is the machine's sharded-mode state; nil when serial.
type parRuntime struct {
	m      *Machine
	shards []*parShard

	// egMin is the minimum core→coordinator latency: the smallest egress
	// scheduling delay (stores and prefetches egress after the L1 hit
	// latency), bounding how far a window may extend past a possible issue.
	egMin sim.Cycle

	// winEnd is the current window's (possibly shrinking) end while the
	// coordinator half runs.
	winEnd sim.Cycle

	scratch []delayed // barrier-merge buffer, reused across windows
}

// buildParallel installs sharded execution with the given worker count.
// Called from New; Options.Dense wins over Options.Parallel because the
// dense loop is the trusted reference.
func (m *Machine) buildParallel(workers int) {
	egMin := sim.Cycle(m.Cfg.L1.HitCycles)
	if egMin < 1 {
		egMin = 1 // Validate enforces >= 1; keep the invariant local too
	}
	pr := &parRuntime{m: m, egMin: egMin}
	shards := make([]sim.Shard, len(m.ports))
	for i, p := range m.ports {
		sh := &parShard{m: m, id: i}
		p.sh = sh
		pr.shards = append(pr.shards, sh)
		shards[i] = sh
	}
	if len(shards) == 0 {
		return // no tasks, nothing to shard; stay serial
	}
	m.par = pr
	m.Engine.SetShardPlan(&sim.ShardPlan{Coord: pr, Shards: shards, Workers: workers})
}

// disableParallel folds all shard-held state back into the serial structures
// and removes the shard plan. Used when a feature incompatible with sharded
// execution (the flight recorder's pooled span allocation is order-sensitive)
// is enabled after construction. Must be called between engine steps.
func (m *Machine) disableParallel() {
	pr := m.par
	if pr == nil {
		return
	}
	// Merge shard wheels back into the shared wheel in canonical slot order.
	for slot := range m.delays.wheel {
		merged := m.delays.wheel[slot]
		n := len(merged)
		for _, sh := range pr.shards {
			merged = append(merged, sh.wheel.wheel[slot]...)
			sh.wheel.wheel[slot] = nil
		}
		if len(merged) > n {
			m.sortCanonical(merged)
		}
		m.delays.wheel[slot] = merged
	}
	m.delays.recount()
	for _, sh := range pr.shards {
		sh.wheel.recount()
		m.reqPool = append(m.reqPool, sh.pool...)
		sh.pool = nil
	}
	for _, p := range m.ports {
		p.sh = nil
	}
	m.par = nil
	m.Engine.SetShardPlan(nil)
}

// ParallelActive reports whether sharded execution is currently installed.
func (m *Machine) ParallelActive() bool { return m.par != nil }

// schedOf reconstructs the cycle at which a wheel event was scheduled from
// its due cycle and kind; storing it would widen the serialised format for a
// value that is pure arithmetic.
func (m *Machine) schedOf(e delayed) sim.Cycle {
	l1 := sim.Cycle(m.Cfg.L1.HitCycles)
	switch e.kind {
	case delayLoadDone:
		return e.due - l1
	case delayFillLocal:
		return e.due - l1 - sim.Cycle(m.Cfg.L2.HitCycles)
	case delayEgress:
		if e.req.IsWrite || e.req.Prefetch {
			return e.due - l1
		}
		return e.due - l1 - sim.Cycle(m.Cfg.L2.HitCycles)
	default: // delayDeliver
		return e.due - sim.Cycle(m.Cfg.LLC.HitCycles) - m.Cfg.LLCRespLatency
	}
}

// rankOf orders same-cycle wheel events the way the serial tick order
// schedules them: LLC-hit delivers come from the interconnect's tick (before
// any core runs), everything else from core i in core order.
func rankOf(e delayed) int {
	switch e.kind {
	case delayDeliver:
		return 0
	case delayEgress:
		return e.req.CoreID + 1
	default:
		return e.core + 1
	}
}

// sortCanonical sorts one wheel slot's events into serial dispatch order:
// (schedule cycle, rank, per-shard sequence). The sort is stable so entries
// the canonical key cannot split (restored events carrying seq 0) keep their
// existing — already serial — order. Insertion sort, not sort.SliceStable:
// the batches are a handful of events merged every window, and the
// reflection-based swapper was a measurable slice of the barrier cost.
func (m *Machine) sortCanonical(slot []delayed) {
	for i := 1; i < len(slot); i++ {
		e := slot[i]
		se, re := m.schedOf(e), rankOf(e)
		j := i - 1
		for j >= 0 {
			sj, rj := m.schedOf(slot[j]), rankOf(slot[j])
			if sj < se || (sj == se && (rj < re || (rj == re && slot[j].schedSeq <= e.schedSeq))) {
				break
			}
			slot[j+1] = slot[j]
			j--
		}
		slot[j+1] = e
	}
}

// stage appends a mailbox event for one shard.
func (pr *parRuntime) stage(core int, ev parEvent) {
	sh := pr.shards[core]
	sh.mail = append(sh.mail, ev)
}

// capWindow shrinks the running window after staging a wake-capable event at
// cycle now: a core woken at now can issue immediately, and its egress must
// still fall due at or after the barrier.
func (pr *parRuntime) capWindow(now sim.Cycle) {
	if e := now + pr.egMin; e < pr.winEnd {
		pr.winEnd = e
	}
}

// PlanWindow implements sim.Coordinator: bound the window by the earliest
// possible shard issue plus the minimum egress latency, and clip it so epoch
// sample points land exactly at a barrier (the sampler must observe the
// machine at the end of the sample cycle, which mid-window it is not).
func (pr *parRuntime) PlanWindow(from, limit, earliestIssue sim.Cycle) sim.Cycle {
	e := limit
	if earliestIssue != sim.NeverWork {
		if b := earliestIssue + pr.egMin; b < e {
			e = b
		}
	}
	if m := pr.m; m.statsOn && m.statsEpoch > 0 {
		s := from
		if r := from % m.statsEpoch; r != 0 {
			s = from + (m.statsEpoch - r)
		}
		if s < e {
			e = s + 1
		}
	}
	if e <= from {
		e = from + 1
	}
	return e
}

// RunCoordWindow implements sim.Coordinator: a serial skip-ahead loop over
// the shared components only, mirroring the engine's Step exactly (per-cycle
// poll, per-cycle skip compensation, bulk skip when all idle). The window end
// may shrink mid-flight via capWindow.
//
// The loop is written against the concrete component types in tick order
// (mc, bw, bus, ic, aux) rather than a []coordSlot of interfaces: the poll
// runs every simulated cycle and the devirtualised calls inline, which is
// worth several percent of total runtime under saturated mixes. Of the five
// slots only the aux ticker elides work that needs compensation (the
// throttle's per-held-port Delayed count), so it alone gets SkipCycles.
//
// An idle verdict is cached instead of re-polled every cycle: NextWork is a
// pure function of component state and the clock, monotone in the clock while
// the state is untouched, so a forecast "idle until next" stays valid until
// the component itself ticks or a component upstream of it ticks (the only
// way traffic reaches its Accept). The dirty mask propagates ticks along the
// machine's acceptor graph each cycle:
//
//	aux → ic (port flush)    ic → bus (LLC miss), aux (LLC-hit deliver)
//	bus → bw                 bw → mc, aux (window rollover moves MPAM class)
//	mc → aux (responses)
//
// The three station-backed slots (bw, bus, ic) use TickNext: tick and
// forecast in one fused call, so a consulted slot never pays a separate
// NextWork poll and a quiescent slot sleeps until its own forecast expires
// or a neighbour dirties it. Only a tick that actually forwarded work (or
// rolled a monitoring window) propagates dirt — a refused grant leaves every
// neighbour's forecast intact because refusal implies the downstream slot is
// full, hence busy, hence already dense. The mc and aux slots keep a cheaper
// probe scheme: their NextWork is a field read, so they consult it on every
// eighth cycle and tick blind in between (ticking a component whose NextWork
// would report idle is observably a no-op by the NextWork contract; the
// dense serial loop is the reference).
//
// Everything is re-polled at the window boundary: the barrier merges shard
// egress into the wheel and refreshes the out-queue mirrors.
func (pr *parRuntime) RunCoordWindow(from, to sim.Cycle) sim.Cycle {
	const (
		dMC = 1 << iota
		dBW
		dBUS
		dIC
		dAUX
		dAll = dMC | dBW | dBUS | dIC | dAUX
	)
	m := pr.m
	pr.winEnd = to
	now := from
	dirty := dAll
	var mcN, bwN, busN, icN, auxN sim.Cycle
	for now < pr.winEnd {
		ticked := 0
		probe := now&7 == 0
		if dirty&dMC != 0 || now >= mcN {
			if !probe {
				m.mc.Tick(now)
				ticked |= dMC
			} else if next, idle := m.mc.NextWork(now); !idle || next <= now {
				m.mc.Tick(now)
				ticked |= dMC
			} else {
				mcN = next
			}
		}
		if dirty&dBW != 0 || now >= bwN {
			next, idle, worked := m.bw.TickNext(now)
			if worked {
				ticked |= dBW
			}
			if idle {
				bwN = next
			} else {
				bwN = now // busy: re-consult next cycle
			}
		}
		if dirty&dBUS != 0 || now >= busN {
			next, idle, worked := m.bus.TickNext(now)
			if worked {
				ticked |= dBUS
			}
			if idle {
				busN = next
			} else {
				busN = now
			}
		}
		if dirty&dIC != 0 || now >= icN {
			next, idle, worked := m.ic.TickNext(now)
			if worked {
				ticked |= dIC
			}
			if idle {
				icN = next
			} else {
				icN = now
			}
		}
		if dirty&dAUX != 0 || now >= auxN {
			if !probe {
				m.auxTickPar(now)
				ticked |= dAUX
			} else if next, idle := m.auxNextWork(now); !idle || next <= now {
				m.auxTickPar(now)
				ticked |= dAUX
			} else {
				auxN = next
				m.auxSkip(now, now+1)
			}
		} else {
			m.auxSkip(now, now+1)
		}
		dirty = ticked
		if ticked&dMC != 0 {
			dirty |= dAUX
		}
		if ticked&dBW != 0 {
			dirty |= dMC | dAUX
		}
		if ticked&dBUS != 0 {
			dirty |= dBW
		}
		if ticked&dIC != 0 {
			dirty |= dBUS | dAUX
		}
		if ticked&dAUX != 0 {
			dirty |= dIC
		}
		now++
		if ticked != 0 {
			continue
		}
		// Every slot idle with a valid forecast: bulk-skip to the earliest.
		t := min(mcN, bwN, busN, icN, auxN)
		if t > pr.winEnd {
			t = pr.winEnd
		}
		if t > now {
			m.auxSkip(now, t)
			now = t
		}
	}
	return pr.winEnd
}

// FinishWindow implements sim.Coordinator: merge shard-staged egress into
// the shared wheel in canonical order, fold shard counters into the machine
// counters (so everything between steps — auditor, diagnostics, snapshots —
// sees serial-identical values), and take the epoch sample if this window
// ends one.
func (pr *parRuntime) FinishWindow(end sim.Cycle) {
	m := pr.m
	merged := pr.scratch[:0]
	for _, sh := range pr.shards {
		merged = append(merged, sh.egress...)
		sh.egress = sh.egress[:0]
		sh.mail = sh.mail[:0]
	}
	if len(merged) > 0 {
		// All staged egress was scheduled inside this window, strictly after
		// everything already in its target slot (earlier windows' events and
		// this window's LLC-hit delivers all have earlier schedule keys, see
		// DESIGN.md), so a canonical sort of the batch followed by plain
		// appends lands every event in exact serial slot order.
		m.sortCanonical(merged)
		for _, e := range merged {
			m.delays.after(e)
		}
	}
	pr.scratch = merged[:0]
	for _, sh := range pr.shards {
		m.reqsIssued += sh.issued
		sh.issued = 0
		m.reqsDelayed += sh.delayedEv
		sh.delayedEv = 0
		sh.outLen = len(m.ports[sh.id].out)
	}
	if m.statsOn && m.statsEpoch > 0 && (end-1)%m.statsEpoch == 0 {
		m.statsNow = end - 1
		m.sampler.Sample(uint64(end - 1))
	}
}

// auxTickPar is auxTick's coordinator half: drain the shared wheel, flush
// port egress, and stage predictor-refresh boundaries (with the bandwidth
// usage reading taken here, at the coordinator's cycle) for the LC shards.
func (m *Machine) auxTickPar(now sim.Cycle) {
	m.drainDelaysPar(now)
	for occ := m.outOcc; occ != 0; occ &= occ - 1 {
		m.ports[bits.TrailingZeros64(occ)].flushPar(now)
	}
	if now&1023 == 0 {
		for _, lc := range m.lcs {
			if lc.RRBP == nil && lc.CBP == nil {
				continue
			}
			ev := parEvent{stamp: now, kind: evRefresh}
			if lc.RRBP != nil && m.bw.WindowsDone() > 0 {
				expected := lc.Spec.ExpectedBW
				if expected <= 0 {
					expected = m.Opt.ExpectedLCBW
				}
				ev.flag = true
				ev.under = m.bw.Usage(mem.PartID(lc.Core)) < expected
			}
			m.par.stage(lc.Core, ev)
		}
	}
}

// drainDelaysPar dispatches shared-wheel events due this cycle. In parallel
// mode the shared wheel carries only egress and deliver events; core-local
// completions live in the shard wheels.
func (m *Machine) drainDelaysPar(now sim.Cycle) {
	for _, e := range m.delays.take(int(now) & 255) {
		switch e.kind {
		case delayEgress:
			m.reqsDelayed--
			p := m.ports[e.req.CoreID]
			p.out = append(p.out, e.req)
			m.outOcc |= 1 << uint(e.req.CoreID)
			m.par.stage(e.req.CoreID, parEvent{stamp: now, kind: evOutPush})
		case delayDeliver:
			m.reqsDelayed--
			m.deliverPar(e.req, now, false)
		default:
			panic(fmt.Sprintf("machine: core-local delay kind %d in shared wheel", e.kind))
		}
	}
}

// deliverPar is deliver's coordinator half: stage the cache fill (and its
// wake) for the owning shard, then do the shared-side accounting — stats and
// recycling — here, in coordinator order, exactly where serial does it.
func (m *Machine) deliverPar(r *mem.Req, now sim.Cycle, llcMiss bool) {
	m.par.stage(r.CoreID, parEvent{stamp: now, kind: evFill, addr: r.Addr, flag: llcMiss})
	m.par.capWindow(now)
	m.deliverStats(r, now)
	m.recycle(r, now)
}

// flushPar is flush's coordinator half: identical pops, but the shard learns
// about them (and the retry wake) through its mailbox.
func (p *corePort) flushPar(now sim.Cycle) {
	popped := 0
	for len(p.out) > 0 {
		r := p.out[0]
		if !p.m.thr.Accept(r, now) {
			break
		}
		copy(p.out, p.out[1:])
		p.out = p.out[:len(p.out)-1]
		popped++
	}
	if popped > 0 {
		if len(p.out) == 0 {
			p.m.outOcc &^= 1 << uint(p.id)
		}
		pr := p.m.par
		for i := 0; i < popped; i++ {
			pr.stage(p.id, parEvent{stamp: now, kind: evOutPop})
		}
		pr.stage(p.id, parEvent{stamp: now, kind: evWake})
		pr.capWindow(now)
	}
}

// newReq is the shard-side request allocator (the machine counter is folded
// at the barrier). Flight recording is never active in parallel mode, so the
// serial allocator's StartTrace branch has no shard-side twin.
func (sh *parShard) newReq() *mem.Req {
	sh.issued++
	var r *mem.Req
	if n := len(sh.pool); n > 0 {
		r = sh.pool[n-1]
		sh.pool = sh.pool[:n-1]
		r.Reset()
	} else {
		r = &mem.Req{}
	}
	return r
}

// applyFill is deliver's shard half: fill the private caches, wake MSHR
// waiters, drop the cached idle verdict.
func (p *corePort) applyFill(addr uint64, llcMiss bool, now sim.Cycle) {
	part := mem.PartID(p.id)
	p.l2.Insert(addr, part, false)
	p.l1.Insert(addr, part, false)
	if e := p.mshr.Fill(addr); e != nil {
		for _, w := range e.Waiters {
			p.m.Cores[p.id].CompleteLoad(w, llcMiss, now)
		}
	}
	p.m.Cores[p.id].WakeIdle()
}

// applyRefresh is the shard half of the 1024-cycle predictor boundary.
func (sh *parShard) applyRefresh(ev parEvent, now sim.Cycle) {
	lc := sh.m.lcByCore(sh.id)
	if lc == nil {
		return
	}
	if lc.RRBP != nil {
		lc.RRBP.MaybeRefresh(now)
		if ev.flag {
			lc.RRBP.SetUnderBandwidth(ev.under)
		}
	}
	if lc.CBP != nil {
		lc.CBP.MaybeRefresh(now)
	}
}

// RunShardWindow implements sim.Shard: replay this core's cycles over
// [from, to), interleaving mailbox events, the core-local wheel and the
// core's own skip-ahead. Per cycle the ordering matches serial exactly:
// coordinator-staged effects first (serial ticks them before the aux wheel
// drain, or their canonical slot position precedes every core-local event),
// then the shard wheel, then the predictor refresh, then the core.
func (sh *parShard) RunShardWindow(from, to sim.Cycle) {
	m := sh.m
	core := m.Cores[sh.id]
	p := m.ports[sh.id]
	mi := 0
	mail := sh.mail
	u := from
	for u < to {
		refreshLo, refreshHi := -1, -1
		for mi < len(mail) && mail[mi].stamp == u {
			ev := mail[mi]
			mi++
			switch ev.kind {
			case evFill:
				p.applyFill(ev.addr, ev.flag, u)
			case evOutPush:
				sh.outLen++
			case evOutPop:
				sh.outLen--
			case evWake:
				core.WakeIdle()
			case evRefresh:
				if refreshLo < 0 {
					refreshLo = mi - 1
				}
				refreshHi = mi
			}
		}
		sh.drainWheel(u)
		for i := refreshLo; i >= 0 && i < refreshHi; i++ {
			if mail[i].kind == evRefresh {
				sh.applyRefresh(mail[i], u)
			}
		}
		sh.now = u
		next, idle := core.NextWork(u)
		if !idle || next <= u {
			core.Tick(u)
			u++
			continue
		}
		t := next
		if t > to {
			t = to
		}
		if mi < len(mail) && mail[mi].stamp < t {
			t = mail[mi].stamp
		}
		if wn, ok := sh.wheel.nextDue(u); !ok {
			t = u + 1 // unreachable after the drain; fail dense, not idle
		} else if wn < t {
			t = wn
		}
		if t <= u {
			t = u + 1
		}
		core.SkipCycles(u, t)
		u = t
	}
	sh.now = to
	sh.issueAt = sh.forecastIssue(to)
}

// drainWheel dispatches this shard's core-local completions due at u.
func (sh *parShard) drainWheel(u sim.Cycle) {
	m := sh.m
	for _, e := range sh.wheel.take(int(u) & 255) {
		switch e.kind {
		case delayLoadDone:
			m.Cores[e.core].CompleteLoad(e.seq, false, u)
		case delayFillLocal:
			m.ports[e.core].fillLocal(e.line, u)
		default:
			panic(fmt.Sprintf("machine: shared delay kind %d in shard wheel", e.kind))
		}
	}
}

// forecastIssue computes the earliest cycle at which this shard could next
// perform coordinator-visible work: immediately if the core is active,
// otherwise the earlier of the core's own next work and the shard wheel's
// next completion (which can wake the core). Coordinator-staged wake-ups are
// the coordinator's problem (capWindow).
func (sh *parShard) forecastIssue(to sim.Cycle) sim.Cycle {
	next, idle := sh.m.Cores[sh.id].NextWork(to)
	if !idle || next <= to {
		return to
	}
	wn, ok := sh.wheel.nextDue(to)
	if !ok {
		return to
	}
	if wn < next {
		next = wn
	}
	return next
}

// NextIssue implements sim.Shard. A stale forecast (fresh build, or just
// after a restore) degrades to "could issue now", which only shortens the
// first window.
func (sh *parShard) NextIssue(at sim.Cycle) sim.Cycle {
	if sh.issueAt <= at {
		return at
	}
	return sh.issueAt
}

// lcByCore finds the LC task pinned to a core (nil for BE cores).
func (m *Machine) lcByCore(core int) *LCTask {
	for _, lc := range m.lcs {
		if lc.Core == core {
			return lc
		}
	}
	return nil
}

// snapshotDelays builds the serialised wheel for a parallel-mode machine:
// per slot, the shared wheel's events (already canonical) merged with every
// shard wheel's, sorted into serial dispatch order, so the snapshot is
// byte-identical to the one a serial run takes at the same cycle.
func (m *Machine) snapshotDelays(s *MachineState) {
	var buf []delayed
	for slot := range m.delays.wheel {
		buf = buf[:0]
		buf = append(buf, m.delays.wheel[slot]...)
		for _, sh := range m.par.shards {
			buf = append(buf, sh.wheel.wheel[slot]...)
		}
		if len(buf) == 0 {
			continue
		}
		m.sortCanonical(buf)
		out := make([]DelayedState, len(buf))
		for i, e := range buf {
			out[i] = delayedState(e)
		}
		s.Delays[slot] = out
	}
}

// splitRestoredDelays moves the restored shared wheel's core-local events
// into the shard wheels (preserving slot order via fresh sequence numbers)
// and resets every shard's window-scoped runtime state. Called at the end of
// RestoreState when parallel mode is active.
func (m *Machine) splitRestoredDelays() {
	pr := m.par
	for slot := range m.delays.wheel {
		keep := m.delays.wheel[slot][:0]
		for _, e := range m.delays.wheel[slot] {
			switch e.kind {
			case delayLoadDone, delayFillLocal:
				sh := pr.shards[e.core]
				sh.seq++
				e.schedSeq = sh.seq
				sh.wheel.wheel[slot] = append(sh.wheel.wheel[slot], e)
			default:
				keep = append(keep, e)
			}
		}
		m.delays.wheel[slot] = keep
	}
	m.delays.recount()
	now := m.Engine.Now()
	for _, sh := range pr.shards {
		sh.wheel.recount()
		sh.mail = sh.mail[:0]
		sh.egress = sh.egress[:0]
		sh.issued = 0
		sh.delayedEv = 0
		sh.outLen = len(m.ports[sh.id].out)
		sh.issueAt = 0
		sh.now = now
	}
}

// lcClock builds the load generator clock for one core: the shard's replay
// cycle while a parallel window runs, the engine clock otherwise.
func (m *Machine) lcClock(core int) func() sim.Cycle {
	return func() sim.Cycle {
		if m.par != nil {
			return m.par.shards[core].now
		}
		return m.Engine.Now()
	}
}
