package machine

import (
	"pivot/internal/profile"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// ProfileCycles is the default length of the offline-profiling simulation.
// The paper profiles a 20-second workload at a 75× slowdown (~30 minutes);
// here the profiler is free, so the length only needs to cover the LC task's
// static loads with stable statistics.
const ProfileCycles sim.Cycle = 600_000

// ProfileLC runs PIVOT's offline profiling phase (§IV-B) for one LC
// application: the task runs closed-loop against stressThreads copies of the
// memory-copy stress workload while every load's execution count, LLC miss
// rate and ROB stall cycles are recorded; the potential-critical set is
// selected with the paper's default parameters.
func ProfileLC(cfg Config, app workload.LCParams, stressThreads int, seed uint64) profile.CriticalSet {
	return ProfileLCWith(cfg, app, stressThreads, seed, profile.DefaultParams(), ProfileCycles)
}

// ProfileLCWith is ProfileLC with explicit selection parameters and duration
// (the §VI-C sensitivity study varies both).
func ProfileLCWith(cfg Config, app workload.LCParams, stressThreads int, seed uint64,
	params profile.Params, cycles sim.Cycle) profile.CriticalSet {
	prof := RunProfiler(cfg, app, stressThreads, seed, cycles)
	return prof.Select(params)
}

// RunProfiler runs the offline phase and returns the raw profiler, from
// which callers can draw both the potential set and the Figure 8 CDF.
func RunProfiler(cfg Config, app workload.LCParams, stressThreads int, seed uint64,
	cycles sim.Cycle) *profile.Profiler {
	return RunProfilerOpt(cfg, app, stressThreads, seed, cycles, Options{})
}

// RunProfilerOpt is RunProfiler with explicit machine options, so the harness
// can thread its watchdog / audit / dense settings through the offline phase.
// Policy and Profile are forced to the profiling configuration.
func RunProfilerOpt(cfg Config, app workload.LCParams, stressThreads int, seed uint64,
	cycles sim.Cycle, opt Options) *profile.Profiler {
	stress := workload.BEApps()[workload.StressCopy]
	tasks := []TaskSpec{{Kind: TaskLC, LC: app, MeanInterarrival: 0, Seed: seed}}
	for i := 0; i < stressThreads && len(tasks) < cfg.Cores; i++ {
		tasks = append(tasks, TaskSpec{Kind: TaskBE, BE: stress, Seed: seed + uint64(100+i)})
	}
	opt.Policy = PolicyDefault
	opt.Profile = true
	m := MustNew(cfg, opt, tasks)
	m.Run(cycles/6, cycles)
	return m.LCTasks()[0].Profiler
}
