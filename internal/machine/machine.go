package machine

import (
	"fmt"
	"math/bits"
	"sort"

	"pivot/internal/bwctrl"
	"pivot/internal/cache"
	"pivot/internal/cbp"
	"pivot/internal/cpu"
	"pivot/internal/dram"
	"pivot/internal/flight"
	"pivot/internal/interconnect"
	"pivot/internal/load"
	"pivot/internal/loadgen"
	"pivot/internal/mba"
	"pivot/internal/mem"
	"pivot/internal/prefetch"
	"pivot/internal/profile"
	"pivot/internal/rrbp"
	"pivot/internal/sim"
	"pivot/internal/stats"
	"pivot/internal/workload"
)

// TaskKind distinguishes latency-critical from best-effort tasks.
type TaskKind int

// Task kinds.
const (
	TaskLC TaskKind = iota
	TaskBE
)

// TaskSpec pins one task to one core.
type TaskSpec struct {
	Kind TaskKind
	LC   workload.LCParams // when Kind == TaskLC
	BE   workload.BEParams // when Kind == TaskBE

	// MeanInterarrival is the LC request inter-arrival mean in cycles
	// (0 = closed loop, used for profiling and max-throughput probes).
	// It is shorthand for a stationary Load spec: when Load.Mean is zero it
	// is copied into the load model's base mean.
	MeanInterarrival float64

	// Load declares the LC task's arrival-rate shape and request-population
	// skew (phase curves, on-off bursts, activity windows, Zipf payloads).
	// The zero value, combined with MeanInterarrival, reproduces the
	// historical stationary open/closed-loop Poisson process bit-exactly.
	Load load.Spec

	// Potential is the offline-profiled potential-critical set consumed by
	// PolicyPIVOT. Nil under PIVOT means "no filter" (every load measured).
	Potential profile.CriticalSet

	// ExpectedBW is this LC task's user-specified expected bandwidth
	// fraction (§II-B). The harness calibrates it from the task's run-alone
	// bandwidth at its operating load. Zero falls back to
	// Options.ExpectedLCBW.
	ExpectedBW float64

	// CustomStream overrides the generated instruction stream for a BE
	// task — used for trace replay (internal/trace) and custom workloads.
	// Ignored for LC tasks, whose stream is the request load generator.
	CustomStream cpu.Stream

	Seed uint64
}

// Options selects the policy and its parameters.
type Options struct {
	Policy Policy

	// DisableMSC suppresses priority enforcement at one MSC for the Fig 7
	// leave-one-out experiment. The zero value (CompL1) disables nothing.
	DisableMSC mem.Component

	// RRBP configures PIVOT's online table; zero value = rrbp.DefaultConfig.
	RRBP rrbp.Config

	// CBP configures the CBP baselines; zero value = cbp.DefaultConfig.
	CBP cbp.Config

	// Profile attaches a full offline profiler to every LC core (the
	// offline phase measures ALL loads, which is what makes it 75× slow on
	// real hardware; in the simulator it is free).
	Profile bool

	// ExpectedLCBW is each LC task's user-specified expected bandwidth
	// fraction, driving PIVOT's adaptive RRBP threshold (§IV-C): while the
	// task's measured usage is below it, PIVOT aggressively includes more
	// potential-set loads; once usage recovers, only persistent long-stall
	// loads stay prioritised. Default 0.08 — a typical LC task's standalone
	// channel share. (MPAM's queue classification separately pins LC
	// partitions at Min=1.0, the paper's §II-B setting.)
	ExpectedLCBW float64

	// NoStarvationGuard disables the §IV-D max-wait promotion (ablation).
	NoStarvationGuard bool

	// SampleRequests records the per-component cycle split of the first N
	// LC demand requests completed in the measured region (request-flow
	// debugging; see Machine.SampledRequests). 0 disables sampling.
	SampleRequests int

	// Prefetch enables the per-core stride/stream prefetcher. Off by
	// default: the headline configuration folds prefetch concurrency into
	// the effective L1 miss buffers (DESIGN.md §6.1); the ablation
	// experiment turns this on to quantify explicit prefetching.
	Prefetch bool

	// PrefetchCfg overrides the prefetcher geometry (zero value = default).
	PrefetchCfg prefetch.Config

	// WatchdogWindow enables the forward-progress watchdog: if no core
	// commits an instruction for this many cycles, StepChecked aborts the run
	// with a *StallError carrying a diagnostic snapshot instead of spinning
	// forever. 0 disables the watchdog (and plain Run never checks it).
	WatchdogWindow sim.Cycle

	// Audit enables the invariant auditor: every AuditEpoch cycles of a
	// StepChecked run, the machine asserts request conservation, queue
	// capacity bounds and bandwidth-credit accounting, aborting with a
	// *AuditError on the first violation.
	Audit bool

	// AuditEpoch is the auditing period in cycles (0 = DefaultStatsEpoch).
	AuditEpoch sim.Cycle

	// MaxCycles bounds the total simulated cycles a StepChecked run may
	// consume (a runaway budget); 0 = unbounded.
	MaxCycles sim.Cycle

	// Dense forces naive per-cycle stepping instead of the quiescence-aware
	// skip-ahead engine (the -dense escape hatch). Results are bit-identical
	// either way — dense is the trusted reference the equivalence suite
	// compares against — so Dense is deliberately NOT part of the checkpoint
	// fingerprint: dense and skip-ahead runs share checkpoints.
	Dense bool

	// Parallel, when > 0, shards the machine across that many worker
	// goroutines (one shard per core; see parallel.go): the -parallel-sim
	// knob. Results are bit-identical to serial for every worker count, so
	// like Dense it is deliberately NOT part of the checkpoint fingerprint —
	// serial and parallel runs share checkpoints. Dense wins when both are
	// set, and enabling the flight recorder falls back to serial (its pooled
	// span allocation is issue-order-sensitive).
	Parallel int
}

// LCTask is the runtime state of one latency-critical task.
type LCTask struct {
	Core     int
	Spec     TaskSpec
	Gen      *workload.ReqGen
	Source   *loadgen.Source
	RRBP     *rrbp.Table
	CBP      *cbp.Predictor
	Profiler *profile.Profiler
}

// Machine is the simulated node.
type Machine struct {
	Cfg Config
	Opt Options

	Engine *sim.Engine
	Cores  []*cpu.Core
	ports  []*corePort

	llc *cache.Cache
	ic  *interconnect.Station
	bus *interconnect.Station
	bw  *bwctrl.Controller
	mc  *dram.Controller
	thr *mba.Throttle

	delays delayQ

	tasks []TaskSpec
	lcs   []*LCTask
	// bes holds the generated BE streams by core index (nil for LC cores and
	// custom-stream tasks) so checkpointing can reach their cursors.
	bes []*workload.BEStream

	reqPool []*mem.Req

	// statsSet optionally filters the per-component latency split (Fig 5)
	// to requests from specific static loads (e.g. the chase PCs).
	statsSet profile.CriticalSet

	splitSum   [mem.NumComponents]float64
	splitCount uint64
	sampled    []RequestRecord

	// Stats framework (nil until EnableStats): the instrument registry, the
	// epoch sampler, and the LC memory-latency distribution it feeds.
	// statsOn caches "EnableStats was called" as a plain bool so per-request
	// hot paths pay a single flag test, not pointer comparisons, when the
	// framework is disabled.
	statsReg   *stats.Registry
	sampler    *stats.Sampler
	latDist    *stats.Distribution
	statsOn    bool
	statsEpoch sim.Cycle
	// statsNow is the cycle of the in-flight epoch sample. Time-varying
	// gauges must read it, not a live clock: the serial engine samples from
	// a ticker at the sample cycle, the parallel coordinator samples from
	// the window barrier one cycle later, and only this stamp is identical
	// in both.
	statsNow sim.Cycle

	// par is the sharded-execution runtime (nil in serial mode); see
	// parallel.go.
	par *parRuntime

	// Flight recorder (nil until EnableFlight); flightOn caches the check so
	// the request hot paths pay a single flag test when recording is off.
	flightRec *flight.Recorder
	flightOn  bool

	// progress, when set, is bumped by StepChecked after every granule so a
	// live telemetry endpoint can report the current cycle without touching
	// simulated state (the counter is atomic; see stats.Progress).
	progress *stats.Progress

	// predTick notes that at least one LC task carries an online predictor
	// (RRBP or CBP), so auxTick has observable work at every 1024-cycle
	// refresh boundary and skip-ahead must not jump across one.
	predTick bool

	measureStart sim.Cycle
	measured     sim.Cycle

	// Request-conservation accounting for the invariant auditor: every
	// pooled request is either recycled or held somewhere the auditor can
	// count (a port's out queue, an MSC queue, DRAM's response pipe, or a
	// req-carrying delay slot tracked by reqsDelayed).
	reqsIssued   uint64
	reqsRecycled uint64
	reqsDelayed  int
	// outOcc is a bitmask of ports with a non-empty egress queue, kept
	// coherent at every len(p.out) 0↔non-0 transition so the per-cycle
	// skip-ahead polls (auxNextWork, auxSkip) iterate set bits instead of
	// scanning every port. Derived state — restore rebuilds it.
	outOcc uint64
	// statsResetAt anchors elapsed-cycle accounting (bandwidth credit) to
	// the last ResetStats.
	statsResetAt sim.Cycle
}

// New assembles a machine running the given tasks under opt. Task i runs on
// core i with PartID i; len(tasks) must not exceed cfg.Cores.
func New(cfg Config, opt Options, tasks []TaskSpec) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(tasks) > cfg.Cores {
		return nil, fmt.Errorf("machine: %d tasks exceed %d cores", len(tasks), cfg.Cores)
	}
	opt, cons := opt.normalize(cfg)
	m := &Machine{Cfg: cfg, Opt: opt, Engine: sim.NewEngine(), tasks: tasks,
		bes: make([]*workload.BEStream, len(tasks))}

	// Memory side, downstream to upstream, built from the normalized
	// construction config (m.Cfg keeps the caller's config — the checkpoint
	// fingerprint must not depend on option-derived tweaks). Cache geometries
	// were validated above, so the Must constructors cannot fire.
	m.llc = cache.MustNew(cfg.LLC)
	m.mc = dram.New(cons.DRAM, cfg.L1.LineBytes)
	m.mc.Respond = m.onResp
	m.bw = bwctrl.New(cons.BW, m.mc)
	m.bus = interconnect.New(cons.Bus, m.bw)
	m.ic = interconnect.New(cons.IC, interconnect.AcceptorFunc(m.llcAccept))
	m.thr = mba.New(m.ic, cfg.DRAM.TBurst)

	m.applyPolicy()

	// Cores and tasks.
	for i, spec := range tasks {
		port := newCorePort(m, i, spec.Kind == TaskLC)
		port.storeCritical = opt.Policy == PolicyFullPath && spec.Kind == TaskLC
		m.ports = append(m.ports, port)

		var stream cpu.Stream
		hooks := cpu.Hooks{}
		rng := sim.NewRNG(spec.Seed + uint64(i+1)*0x9E37)

		if spec.Kind == TaskLC {
			lc := &LCTask{Core: i, Spec: spec}
			lc.Gen = workload.NewReqGen(spec.LC, i, rng.Fork())
			lc.Gen.SetZipf(spec.Load.ZipfTheta)
			// The model receives the same RNG fork the source itself used
			// to own, so stationary arrivals stay bit-identical to the
			// pre-refactor engine.
			lspec := spec.Load
			if lspec.Mean == 0 {
				lspec.Mean = spec.MeanInterarrival
			}
			lc.Source = loadgen.New(lc.Gen, load.New(lspec, rng.Fork()), m.lcClock(i))
			stream = lc.Source
			hooks.OnReqEnd = lc.Source.OnReqEnd
			if opt.Profile {
				lc.Profiler = profile.NewProfiler()
			}
			switch opt.Policy {
			case PolicyPIVOT:
				lc.RRBP = rrbp.New(opt.RRBP)
			case PolicyCBP, PolicyCBPFullPath:
				lc.CBP = cbp.New(opt.CBP)
			}
			hooks.IsCritical, hooks.SkipCritical = m.criticalHook(lc)
			hooks.OnLoadRetire = m.retireHook(lc)
			m.lcs = append(m.lcs, lc)
		} else if spec.CustomStream != nil {
			stream = spec.CustomStream
		} else {
			be := workload.NewBEStream(spec.BE, i, rng.Fork())
			m.bes[i] = be
			stream = be
		}

		core := cpu.New(i, cfg.Core, stream, port, hooks)
		m.Cores = append(m.Cores, core)
	}

	// Skip-ahead needs to know whether any predictor expects the coarse
	// 1024-cycle refresh/adaptation tick in auxTick.
	for _, lc := range m.lcs {
		if lc.RRBP != nil || lc.CBP != nil {
			m.predTick = true
		}
	}

	// Tick order: DRAM first so responses land before upstream moves, then
	// MSCs downstream-to-upstream, then machine plumbing, then cores.
	// Components are registered as concrete values (not TickFunc closures) so
	// the engine can discover their IdleReporter/Skipper sides and the hot
	// loop dispatches through a single interface call per component.
	m.Engine.Register(m.mc)
	m.Engine.Register(m.bw)
	m.Engine.Register(m.bus)
	m.Engine.Register(m.ic)
	m.Engine.Register(&auxTicker{m: m})
	for _, c := range m.Cores {
		m.Engine.Register(c)
	}
	m.Engine.SetDense(opt.Dense)
	if opt.Parallel > 0 && !opt.Dense {
		m.buildParallel(opt.Parallel)
	}
	return m, nil
}

// MustNew is New panicking on error, for tests and examples.
func MustNew(cfg Config, opt Options, tasks []TaskSpec) *Machine {
	m, err := New(cfg, opt, tasks)
	if err != nil {
		panic(err)
	}
	return m
}

// normalize resolves every option default in one pass and derives the
// construction config the MSC constructors consume: ExpectedLCBW falls back
// to 0.05, a zero RRBP config becomes the default geometry at the scaled
// refresh, a zero CBP config becomes its default, and NoStarvationGuard
// zeroes the MSCs' MaxWait promotion thresholds. Only the returned config
// carries those tweaks — callers keep their own (it is the checkpoint
// fingerprint).
func (o Options) normalize(cfg Config) (Options, Config) {
	if o.ExpectedLCBW <= 0 {
		o.ExpectedLCBW = 0.05
	}
	if o.RRBP == (rrbp.Config{}) {
		o.RRBP = rrbp.DefaultConfig()
		// The paper refreshes every 1M cycles across 20-billion-cycle runs;
		// our measured regions are ~10³× shorter, so the default refresh is
		// scaled to keep the same windows-per-run ratio (EXPERIMENTS.md).
		o.RRBP.RefreshCycles = ScaledRRBPRefresh
	}
	if o.CBP == (cbp.Config{}) {
		o.CBP = cbp.DefaultConfig()
	}
	if o.NoStarvationGuard {
		cfg.DRAM.MaxWait = 0
		cfg.IC.MaxWait = 0
		cfg.Bus.MaxWait = 0
		cfg.BW.Station.MaxWait = 0
	}
	return o, cfg
}

// applyPolicy configures priority queues, MPAM and LLC partitioning.
func (m *Machine) applyPolicy() {
	cfg, opt := m.Cfg, m.Opt

	prioAll := false
	switch opt.Policy {
	case PolicyFullPath, PolicyPIVOT, PolicyCBPFullPath:
		prioAll = true
	}
	if prioAll {
		m.ic.PriorityEnabled = opt.DisableMSC != mem.CompInterconnect
		m.bus.PriorityEnabled = opt.DisableMSC != mem.CompBus
		m.bw.Station.PriorityEnabled = opt.DisableMSC != mem.CompBWCtrl
		m.mc.PriorityEnabled = opt.DisableMSC != mem.CompMemCtrl
	}
	if opt.Policy == PolicyCBP {
		// CBP guides only the memory controller (§VI-B).
		m.mc.PriorityEnabled = true
	}

	switch opt.Policy {
	case PolicyMPAM, PolicyFullPath, PolicyPIVOT:
		m.bw.MPAMEnabled = true
	}
	if opt.Policy == PolicyFullPath || opt.Policy == PolicyPIVOT {
		// §IV-D: within the normal (and priority) queues, scheduling still
		// follows MPAM classes at every MSC — LC tasks' non-critical
		// requests are ordered ahead of BE traffic inside the queues, they
		// just don't get dedicated queue space or strict DRAM service.
		rank := func(r *mem.Req) int { return int(m.bw.ClassOf(r.Part)) }
		m.ic.Classify = rank
		m.bus.Classify = rank
		m.mc.Classify = rank
	}

	// LLC partitioning: every policy except Default reserves the LLC for LC
	// tasks by restricting BE partitions to BEWays ways.
	if opt.Policy != PolicyDefault {
		beMask := uint64(1)<<uint(cfg.BEWays) - 1
		for i, t := range m.tasks {
			if t.Kind == TaskBE {
				m.llc.SetWayMask(mem.PartID(i), beMask)
			}
		}
	}

	// MPAM allocations: LC partitions declare Min=100% (the paper's §II-B
	// setting) so their requests always classify high; BE tasks are capped
	// low so they classify as low priority under contention.
	for i, t := range m.tasks {
		p := mem.PartID(i)
		if t.Kind == TaskLC {
			m.bw.SetAllocation(p, bwctrl.Allocation{Min: 1.0, Max: 1.0})
		} else {
			m.bw.SetAllocation(p, bwctrl.Allocation{Min: 0, Max: 0.05})
		}
	}
}

// criticalHook builds the per-load criticality decision for an LC core,
// together with the matching skip compensator: skip(pc, n) must account for
// exactly n evaluations of the decision (predictor lookup counters and
// threshold-crossing flags) without issuing them one by one. Cores refuse to
// report idle on a critical-flagged retry when SkipCritical is nil, so the
// two are always produced as a pair.
func (m *Machine) criticalHook(lc *LCTask) (crit func(pc uint64) bool, skip func(pc uint64, n uint64)) {
	switch m.Opt.Policy {
	case PolicyFullPath:
		// Always-critical is pure: skipping evaluations touches nothing.
		return func(uint64) bool { return true }, func(uint64, uint64) {}
	case PolicyPIVOT:
		pot := lc.Spec.Potential
		tbl := lc.RRBP
		crit = func(pc uint64) bool {
			if pot != nil && !pot.Contains(pc) {
				return false // the extra instruction bit is not set
			}
			return tbl.IsCritical(pc)
		}
		skip = func(pc uint64, n uint64) {
			if pot != nil && !pot.Contains(pc) {
				return
			}
			tbl.SkipLookups(pc, n)
		}
		return crit, skip
	case PolicyCBP, PolicyCBPFullPath:
		pred := lc.CBP
		return func(pc uint64) bool { return pred.IsCritical(pc) },
			func(pc uint64, n uint64) { pred.SkipLookups(pc, n) }
	default:
		return nil, nil
	}
}

// retireObserver is the per-load retire observer for an LC core. It replaces
// the earlier closure chain: a single struct with a fixed method keeps the
// retire path free of per-call closure allocation (see the AllocsPerRun
// regression test) and dispatches each consumer with one nil check.
type retireObserver struct {
	long     sim.Cycle
	pot      profile.CriticalSet
	profiler *profile.Profiler
	rrbp     *rrbp.Table
	cbp      *cbp.Predictor
}

func (o *retireObserver) onLoadRetire(pc uint64, stall sim.Cycle, llcMiss bool) {
	if o.profiler != nil {
		o.profiler.OnLoadRetire(pc, stall, llcMiss)
	}
	if o.rrbp != nil {
		// Online phase: only loads carrying the potential bit are measured
		// (§IV-C) — this is what keeps the overhead minimal.
		if o.pot == nil || o.pot.Contains(pc) {
			o.rrbp.RecordRetire(pc, stall > o.long)
		}
	}
	if o.cbp != nil && stall > o.long {
		o.cbp.RecordStall(pc)
	}
}

// retireHook builds the per-load retire observer for an LC core.
func (m *Machine) retireHook(lc *LCTask) func(pc uint64, stall sim.Cycle, llcMiss bool) {
	if lc.Profiler == nil && lc.RRBP == nil && lc.CBP == nil {
		return nil
	}
	o := &retireObserver{
		long:     m.Cfg.Core.LongStall,
		pot:      lc.Spec.Potential,
		profiler: lc.Profiler,
		rrbp:     lc.RRBP,
		cbp:      lc.CBP,
	}
	return o.onLoadRetire
}

// auxTicker registers Machine.auxTick with the engine and reports when the
// machine-level plumbing is quiescent: no delay slot is due before the
// reported cycle, every port with pending egress is held by the MBA throttle
// (whose release cycle then bounds the sleep), and (when any predictor is
// attached) the next 1024-cycle refresh boundary bounds the sleep. The only
// counter an elided auxTick would have bumped is the throttle's per-cycle
// Delayed count on each held port's head request; SkipCycles compensates it.
type auxTicker struct{ m *Machine }

func (a *auxTicker) Tick(now sim.Cycle) { a.m.auxTick(now) }

func (a *auxTicker) NextWork(now sim.Cycle) (sim.Cycle, bool) {
	return a.m.auxNextWork(now)
}

func (a *auxTicker) SkipCycles(from, to sim.Cycle) { a.m.auxSkip(from, to) }

// auxNextWork is the quiescence bound shared by the serial auxTicker and the
// parallel coordinator's aux slot. A port with pending egress used to pin
// the machine dense unconditionally — through entire MBA-throttled intervals
// — but when the head request is only waiting out the throttle's inserted
// delay, the release cycle is a hard bound: nothing else can move that queue
// earlier, and downstream refusals (a full interconnect) report as not-held
// and stay dense.
func (m *Machine) auxNextWork(now sim.Cycle) (sim.Cycle, bool) {
	next, idle := m.delays.nextDue(now)
	if !idle {
		return 0, false
	}
	for occ := m.outOcc; occ != 0; occ &= occ - 1 {
		p := m.ports[bits.TrailingZeros64(occ)]
		until, held := m.thr.HeldUntil(p.out[0].Part, now)
		if !held {
			return 0, false
		}
		if until < next {
			next = until
		}
	}
	if m.predTick {
		if now&1023 == 0 {
			return 0, false
		}
		if b := (now | 1023) + 1; b < next {
			next = b
		}
	}
	return next, true
}

// auxSkip compensates elided auxTicks: each skipped cycle, a dense flush
// would have offered every non-empty port's head request to the throttle and
// been refused once (the flush loop stops at the first refusal), bumping
// Delayed exactly once per held port per cycle.
func (m *Machine) auxSkip(from, to sim.Cycle) {
	if n := bits.OnesCount64(m.outOcc); n > 0 {
		m.thr.Delayed += uint64(n) * uint64(to-from)
	}
}

// auxTick runs the machine-level plumbing each cycle: delayed completions,
// per-core L2-miss egress, and (coarsely) predictor refresh and threshold
// adaptation.
func (m *Machine) auxTick(now sim.Cycle) {
	m.drainDelays(now)
	for occ := m.outOcc; occ != 0; occ &= occ - 1 {
		m.ports[bits.TrailingZeros64(occ)].flush(now)
	}
	if now&1023 == 0 {
		for _, lc := range m.lcs {
			if lc.RRBP != nil {
				lc.RRBP.MaybeRefresh(now)
				// Usage readings are meaningless before the first completed
				// monitor window; stay conservative until then.
				if m.bw.WindowsDone() > 0 {
					expected := lc.Spec.ExpectedBW
					if expected <= 0 {
						expected = m.Opt.ExpectedLCBW
					}
					usage := m.bw.Usage(mem.PartID(lc.Core))
					lc.RRBP.SetUnderBandwidth(usage < expected)
				}
			}
			if lc.CBP != nil {
				lc.CBP.MaybeRefresh(now)
			}
		}
	}
}

// llcAccept is the interconnect's downstream: the shared LLC lookup.
func (m *Machine) llcAccept(r *mem.Req, now sim.Cycle) bool {
	if !r.LLCChecked {
		r.LLCChecked = true
		if m.llc.Lookup(r.Addr, r.Part) {
			r.Hop(mem.CompLLC, now, sim.Cycle(m.Cfg.LLC.HitCycles))
			if r.IsWrite {
				m.recycle(r, now)
				return true
			}
			due := now + sim.Cycle(m.Cfg.LLC.HitCycles) + m.Cfg.LLCRespLatency
			m.delayReq(due, delayDeliver, r)
			return true
		}
		r.LLCMiss = true
	}
	// Miss (or previously determined miss, retried): toward the bus.
	return m.bus.Accept(r, now)
}

// onResp handles a DRAM response: fill the caches and wake the core.
func (m *Machine) onResp(r *mem.Req, now sim.Cycle) {
	if r.IsWrite {
		m.recycle(r, now)
		return
	}
	m.llc.Insert(r.Addr, r.Part, false)
	if m.par != nil {
		m.deliverPar(r, now, true)
		return
	}
	m.deliver(r, now, true)
}

// deliver fills the private caches, wakes MSHR waiters and recycles r.
func (m *Machine) deliver(r *mem.Req, now sim.Cycle, llcMiss bool) {
	p := m.ports[r.CoreID]
	p.l2.Insert(r.Addr, r.Part, false)
	p.l1.Insert(r.Addr, r.Part, false)
	if e := p.mshr.Fill(r.Addr); e != nil {
		for _, w := range e.Waiters {
			m.Cores[r.CoreID].CompleteLoad(w, llcMiss, now)
		}
	}
	// Even a waiter-less fill (a prefetch) frees an MSHR that may unblock a
	// structurally refused load: drop the core's cached idle verdict.
	m.Cores[r.CoreID].WakeIdle()
	m.deliverStats(r, now)
	m.recycle(r, now)
}

// deliverStats is the measurement half of a delivery: the per-component
// latency split, the LC latency distribution and request-flow sampling. In
// parallel mode it runs on the coordinator (deliverPar), in exactly the
// order serial delivers run.
func (m *Machine) deliverStats(r *mem.Req, now sim.Cycle) {
	if !r.LCTask || r.Prefetch || now < m.measureStart {
		return
	}
	if m.statsSet == nil || m.statsSet.Contains(r.PC) {
		for c := 0; c < int(mem.NumComponents); c++ {
			m.splitSum[c] += float64(r.Split[c])
		}
		m.splitCount++
	}
	if m.statsOn {
		m.latDist.Observe(float64(now - r.Issued))
	}
	if len(m.sampled) < m.Opt.SampleRequests {
		m.sampled = append(m.sampled, RequestRecord{
			PC: r.PC, CoreID: r.CoreID, Critical: r.Critical,
			IssuedAt: uint64(r.Issued), CompletedAt: uint64(now), Split: r.Split,
		})
	}
}

func (m *Machine) newReq() *mem.Req {
	m.reqsIssued++
	var r *mem.Req
	if n := len(m.reqPool); n > 0 {
		r = m.reqPool[n-1]
		m.reqPool = m.reqPool[:n-1]
		r.Reset()
	} else {
		r = &mem.Req{}
	}
	if m.flightOn {
		r.Trace = m.flightRec.StartTrace()
	}
	return r
}

// recycle returns a request to the pool, first handing its completed
// lifecycle to the flight recorder when one is attached. Every recycle site
// is a real end-of-life (a delivered load, an absorbed write), so completion
// and recycling are the same event.
func (m *Machine) recycle(r *mem.Req, now sim.Cycle) {
	if m.flightOn {
		m.flightRec.Complete(r, now)
		r.Trace = nil
	}
	m.reqsRecycled++
	if m.par != nil {
		// Return the request to its issuing core's pool: shard allocation
		// must never contend with another shard (pools are unobservable, so
		// the routing cannot affect results).
		sh := m.par.shards[r.CoreID]
		sh.pool = append(sh.pool, r)
		return
	}
	m.reqPool = append(m.reqPool, r)
}

// delayReq schedules a request-carrying delay event (a fixed-latency hop),
// keeping the in-flight count the invariant auditor checks exact: the count
// rises here and falls when dispatchDelayed releases the request.
func (m *Machine) delayReq(due sim.Cycle, kind delayKind, r *mem.Req) {
	m.reqsDelayed++
	m.delays.after(delayed{due: due, kind: kind, req: r})
}

// SetFault installs a fault model on one of the four MSC stations (see
// mem.Fault); passing nil removes it. Components other than the four MSCs
// are rejected.
func (m *Machine) SetFault(c mem.Component, f mem.Fault) error {
	switch c {
	case mem.CompInterconnect:
		m.ic.Fault = f
	case mem.CompBus:
		m.bus.Fault = f
	case mem.CompBWCtrl:
		m.bw.Station.Fault = f
	case mem.CompMemCtrl:
		m.mc.Fault = f
	default:
		return fmt.Errorf("machine: component %v is not a fault-injectable MSC", c)
	}
	return nil
}

// SetStatsFilter restricts the per-component latency split to requests whose
// PC is in set (nil = all LC requests). Used by the Fig 5 harness.
func (m *Machine) SetStatsFilter(set profile.CriticalSet) { m.statsSet = set }

// RequestRecord is one sampled LC memory request's life on the memory path.
type RequestRecord struct {
	PC          uint64
	CoreID      int
	Critical    bool
	IssuedAt    uint64
	CompletedAt uint64
	Split       [mem.NumComponents]uint32
}

// TotalCycles sums the record's per-component cycles.
func (r RequestRecord) TotalCycles() uint64 {
	var t uint64
	for _, v := range r.Split {
		t += uint64(v)
	}
	return t
}

// SampledRequests returns the request-flow samples collected in the measured
// region (Options.SampleRequests bounds the count).
func (m *Machine) SampledRequests() []RequestRecord { return m.sampled }

// Run advances the machine through a warm-up region (statistics discarded)
// and then a measured region.
func (m *Machine) Run(warmup, measure sim.Cycle) {
	m.Engine.Step(warmup)
	m.ResetStats()
	m.measureStart = m.Engine.Now()
	m.Engine.Step(measure)
	m.measured = measure
}

// ResetStats clears all statistics, marking the start of measurement.
func (m *Machine) ResetStats() {
	m.measureStart = m.Engine.Now()
	m.statsResetAt = m.Engine.Now()
	m.measured = 0
	for _, c := range m.Cores {
		c.ResetStats()
	}
	for _, p := range m.ports {
		p.l1.ResetStats()
		p.l2.ResetStats()
	}
	m.llc.ResetStats()
	m.ic.ResetStats()
	m.bus.ResetStats()
	m.bw.Station.ResetStats()
	m.mc.ResetStats()
	for _, lc := range m.lcs {
		lc.Source.ResetMeasurement()
	}
	m.splitSum = [mem.NumComponents]float64{}
	m.splitCount = 0
	m.sampled = m.sampled[:0]
	if m.latDist != nil {
		m.latDist.Reset()
	}
	if m.flightRec != nil {
		m.flightRec.Reset()
	}
}

// MeasuredCycles reports the length of the measured region.
func (m *Machine) MeasuredCycles() sim.Cycle { return m.measured }

// MarkMeasured records the measured-region length for callers that drive
// the engine directly (resource managers) instead of using Run.
func (m *Machine) MarkMeasured(measure sim.Cycle) { m.measured = measure }

// Tasks returns the task specifications in core order.
func (m *Machine) Tasks() []TaskSpec { return m.tasks }

// LCTasks returns the machine's LC tasks in core order.
func (m *Machine) LCTasks() []*LCTask { return m.lcs }

// LCp95 returns LC task i's 95th-percentile request latency in cycles.
func (m *Machine) LCp95(i int) uint32 {
	return p95(m.lcs[i].Source.Latencies())
}

// BECommitted sums instructions committed by BE cores in the measured region.
func (m *Machine) BECommitted() uint64 {
	var sum uint64
	for i, t := range m.tasks {
		if t.Kind == TaskBE {
			sum += m.Cores[i].Stats.Committed
		}
	}
	return sum
}

// BWUtil returns achieved/peak DRAM bandwidth over the measured region.
func (m *Machine) BWUtil() float64 { return m.mc.Utilisation(m.measured) }

// AvgBandwidthGBs converts measured bandwidth to GB/s at 2.4 GHz for the
// figures that report absolute bandwidth.
func (m *Machine) AvgBandwidthGBs() float64 {
	if m.measured == 0 {
		return 0
	}
	bytes := float64(m.mc.Stats.LinesMoved) * float64(m.Cfg.L1.LineBytes)
	secs := float64(m.measured) / 2.4e9
	return bytes / secs / 1e9
}

// SplitAverages returns the mean per-component cycles of tracked LC requests
// and the number of requests aggregated.
func (m *Machine) SplitAverages() ([mem.NumComponents]float64, uint64) {
	var out [mem.NumComponents]float64
	if m.splitCount == 0 {
		return out, 0
	}
	for c := range out {
		out[c] = m.splitSum[c] / float64(m.splitCount)
	}
	return out, m.splitCount
}

// DRAMStats exposes the memory controller counters.
func (m *Machine) DRAMStats() dram.Stats { return m.mc.Stats }

// LLC exposes the shared cache (managers adjust way masks through it).
func (m *Machine) LLC() *cache.Cache { return m.llc }

// MBA exposes the throttle (managers program per-part levels).
func (m *Machine) MBA() *mba.Throttle { return m.thr }

// BWController exposes the bandwidth controller (for usage monitoring).
func (m *Machine) BWController() *bwctrl.Controller { return m.bw }

func p95(samples []uint32) uint32 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]uint32, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(0.95*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
