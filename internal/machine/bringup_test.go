package machine

import (
	"testing"

	"pivot/internal/mem"
	"pivot/internal/workload"
)

// TestQueuePropagationUnderContention pins the Figure 4 root cause: with a
// saturating BE mix, queueing reaches back from the memory controller into
// the bandwidth controller, bus and interconnect (back-pressure), rather
// than staying at a single component.
func TestQueuePropagationUnderContention(t *testing.T) {
	tasks := []TaskSpec{lcTask(workload.Masstree, 4000)}
	tasks = append(tasks, beTasks(workload.IBench, 7)...)
	m := MustNew(KunpengConfig(8), Options{Policy: PolicyDefault}, tasks)
	m.Engine.Step(200_000)

	// Sample queue depths over a window; saturation is steady-state.
	maxIC, maxBus, maxBW, maxMC := 0, 0, 0, 0
	for i := 0; i < 50; i++ {
		m.Engine.Step(2_000)
		if n, _ := m.ic.QueueLen(); n > maxIC {
			maxIC = n
		}
		if n, _ := m.bus.QueueLen(); n > maxBus {
			maxBus = n
		}
		if n, _ := m.bw.Station.QueueLen(); n > maxBW {
			maxBW = n
		}
		if n, _ := m.mc.QueueLen(); n > maxMC {
			maxMC = n
		}
	}
	t.Logf("max queue depths: ic=%d bus=%d bwctrl=%d memctrl=%d", maxIC, maxBus, maxBW, maxMC)
	if maxMC < m.Cfg.DRAM.CapNormal/2 {
		t.Fatalf("memory controller queue never filled (max %d)", maxMC)
	}
	if maxBW == 0 || maxBus == 0 {
		t.Fatal("queueing did not propagate upstream of the memory controller")
	}
}

// TestRunAloneNoQueueing: the same LC task alone keeps every shared queue
// nearly empty — contention, not the machine, causes the Figure 4 effect.
func TestRunAloneNoQueueing(t *testing.T) {
	m := MustNew(KunpengConfig(8), Options{Policy: PolicyDefault},
		[]TaskSpec{lcTask(workload.Masstree, 4000)})
	m.Engine.Step(100_000)
	maxMC := 0
	for i := 0; i < 50; i++ {
		m.Engine.Step(1_000)
		if n, _ := m.mc.QueueLen(); n > maxMC {
			maxMC = n
		}
	}
	if maxMC > m.Cfg.DRAM.CapNormal/2 {
		t.Fatalf("run-alone memory controller queue reached %d", maxMC)
	}
	if m.LCTasks()[0].Source.Completed() == 0 {
		t.Fatal("no requests completed run-alone")
	}
}

// TestRRBPConvergesToChaseLoads: under PIVOT in steady state, the RRBP
// flags a selective subset and the DRAM's critical traffic stays well below
// the LC task's total traffic (Insight #2 operating as designed).
func TestRRBPConvergesToChaseLoads(t *testing.T) {
	app := workload.LCApps()[workload.Moses]
	pot := ProfileLC(KunpengConfig(8), app, 7, 1)
	tasks := []TaskSpec{{Kind: TaskLC, LC: app, MeanInterarrival: 4000,
		Potential: pot, ExpectedBW: 0.08, Seed: 1}}
	tasks = append(tasks, beTasks(workload.IBench, 7)...)
	m := MustNew(KunpengConfig(8), Options{Policy: PolicyPIVOT}, tasks)
	m.Run(400_000, 400_000)

	ds := m.DRAMStats()
	critFrac := float64(ds.CritServed) / float64(ds.Served)
	t.Logf("critical fraction of DRAM traffic: %.3f (threshold=%d)",
		critFrac, m.LCTasks()[0].RRBP.Threshold())
	if critFrac == 0 {
		t.Fatal("no critical traffic at all — the RRBP never flagged the chase loads")
	}
	if critFrac > 0.2 {
		t.Fatalf("critical fraction %.3f too high: PIVOT degenerated toward FullPath", critFrac)
	}
	if p95 := m.LCp95(0); p95 == 0 {
		t.Fatal("no latency measured")
	}
	// MPAM classes must be active (multi-queue scheduling, §IV-D).
	if m.BWController().ClassOf(mem.PartID(0)) != 0 {
		t.Fatal("LC partition not classified high under PIVOT")
	}
}
