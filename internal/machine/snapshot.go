package machine

import (
	"encoding/json"
	"io"

	"pivot/internal/interconnect"
	"pivot/internal/mem"
	"pivot/internal/metrics"
)

// Snapshot is a JSON-serialisable summary of a machine's measured region —
// everything the paper's figures are computed from, exportable for external
// plotting or regression tracking.
type Snapshot struct {
	Config string `json:"config"`
	Policy string `json:"policy"`
	Cycles uint64 `json:"measuredCycles"`

	LC []LCSnapshot `json:"lc"`
	BE BESnapshot   `json:"be"`

	Bandwidth BandwidthSnapshot `json:"bandwidth"`
	// SplitAvg is the mean per-component cycle split of tracked LC requests.
	SplitAvg map[string]float64 `json:"splitAvgCycles"`

	Stations map[string]StationSnapshot `json:"stations"`
}

// LCSnapshot summarises one latency-critical task.
type LCSnapshot struct {
	Core       int     `json:"core"`
	App        string  `json:"app"`
	Completed  uint64  `json:"completed"`
	P50        uint32  `json:"p50Cycles"`
	P95        uint32  `json:"p95Cycles"`
	P99        uint32  `json:"p99Cycles"`
	Mean       float64 `json:"meanCycles"`
	IPC        float64 `json:"ipc"`
	QueueDepth int     `json:"arrivalBacklog"`
	// LatDropped counts completions whose latency record was discarded at
	// the per-source cap — non-zero means the percentiles above cover a
	// truncated prefix of the run.
	LatDropped uint64 `json:"latDropped,omitempty"`
	// PhaseDone attributes completed requests to load-model phases; present
	// only for shaped (multi-phase) load specs.
	PhaseDone []uint64 `json:"phaseCompleted,omitempty"`
}

// BESnapshot aggregates the best-effort tasks.
type BESnapshot struct {
	Cores     int     `json:"cores"`
	Committed uint64  `json:"committed"`
	IPC       float64 `json:"ipc"`
}

// BandwidthSnapshot reports the DRAM channel activity.
type BandwidthSnapshot struct {
	Utilisation float64 `json:"utilisation"`
	GBs         float64 `json:"gbPerSecond"`
	LinesMoved  uint64  `json:"linesMoved"`
	RowMisses   uint64  `json:"rowActivations"`
	CritServed  uint64  `json:"criticalServed"`
	Promoted    uint64  `json:"starvationPromotions"`
}

// StationSnapshot reports one MSC's traffic counters.
type StationSnapshot struct {
	Accepted  uint64 `json:"accepted"`
	Forwarded uint64 `json:"forwarded"`
	Refused   uint64 `json:"refused"`
	Promoted  uint64 `json:"promoted"`
}

// Snapshot captures the machine's current measured-region statistics.
func (m *Machine) Snapshot() Snapshot {
	s := Snapshot{
		Config:   m.Cfg.Name,
		Policy:   m.Opt.Policy.String(),
		Cycles:   uint64(m.measured),
		SplitAvg: make(map[string]float64, int(mem.NumComponents)),
		Stations: make(map[string]StationSnapshot, 3),
	}
	for _, lc := range m.lcs {
		lat := lc.Source.Latencies()
		qs := metrics.Quantiles(lat, 50, 95, 99)
		ls := LCSnapshot{
			Core:       lc.Core,
			App:        lc.Spec.LC.Name,
			Completed:  lc.Source.Completed(),
			P50:        qs[0],
			P95:        qs[1],
			P99:        qs[2],
			Mean:       metrics.Mean(lat),
			IPC:        m.Cores[lc.Core].IPC(m.measured),
			QueueDepth: lc.Source.QueueDepth(),
			LatDropped: lc.Source.DroppedLatencies(),
		}
		if pd := lc.Source.PhaseCompleted(); len(pd) > 1 {
			ls.PhaseDone = append([]uint64(nil), pd...)
		}
		s.LC = append(s.LC, ls)
	}
	beCores := 0
	for _, t := range m.tasks {
		if t.Kind == TaskBE {
			beCores++
		}
	}
	s.BE = BESnapshot{Cores: beCores, Committed: m.BECommitted()}
	if m.measured > 0 {
		s.BE.IPC = float64(s.BE.Committed) / float64(m.measured)
	}
	ds := m.mc.Stats
	s.Bandwidth = BandwidthSnapshot{
		Utilisation: m.BWUtil(),
		GBs:         m.AvgBandwidthGBs(),
		LinesMoved:  ds.LinesMoved,
		RowMisses:   ds.RowMisses,
		CritServed:  ds.CritServed,
		Promoted:    ds.Promoted,
	}
	split, n := m.SplitAverages()
	if n > 0 {
		for c := mem.CompL1; c < mem.NumComponents; c++ {
			s.SplitAvg[c.String()] = split[c]
		}
	}
	s.Stations["interconnect"] = stationSnap(m.ic.Stats)
	s.Stations["bus"] = stationSnap(m.bus.Stats)
	s.Stations["bwctrl"] = stationSnap(m.bw.Station.Stats)
	return s
}

func stationSnap(st interconnect.Stats) StationSnapshot {
	return StationSnapshot{
		Accepted:  st.Accepted,
		Forwarded: st.Forwarded,
		Refused:   st.Refused,
		Promoted:  st.Promoted,
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
