package machine

import (
	"testing"

	"pivot/internal/workload"
)

// TestStallCDF inspects the per-static-load ROB stall distribution, which
// must reproduce Figure 8's shape: a small fraction of static loads causes
// the overwhelming majority of ROB stall cycles.
func TestStallCDF(t *testing.T) {
	for _, app := range []string{workload.ImgDNN, workload.Silo, workload.Moses} {
		prof := RunProfiler(KunpengConfig(8), workload.LCApps()[app], 7, 1, 600_000)
		stats := prof.Stats()
		var total uint64
		for _, s := range stats {
			total += s.StallCycles
		}
		var cum uint64
		top := len(stats) / 10
		if top < 1 {
			top = 1
		}
		for i := 0; i < top; i++ {
			cum += stats[i].StallCycles
		}
		t.Logf("%-8s staticLoads=%3d top10%%ofLoads=%2d stallShare=%.3f", app, len(stats), top, float64(cum)/float64(total))
		for i := 0; i < 8 && i < len(stats); i++ {
			s := stats[i]
			t.Logf("   pc=%#x execs=%7d missRate=%.2f stall=%9d (%.3f)",
				s.PC, s.Execs, s.MissRate(), s.StallCycles, float64(s.StallCycles)/float64(total))
		}
	}
}
