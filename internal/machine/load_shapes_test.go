package machine

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"pivot/internal/load"
	"pivot/internal/workload"
)

// shapedLCTask is an LC task exercising every load-model feature at once:
// Zipf skew, a repeating flat/spike/ramp/sine/off program, MMPP-2 bursts,
// and two activity windows with a mid-run gap (the tenant departs and
// returns).
func shapedLCTask() TaskSpec {
	t := lcTask(workload.Masstree, 3_000)
	t.Load = load.Spec{
		ZipfTheta: 0.8,
		Phases: []load.Phase{
			{Shape: load.ShapeFlat, Cycles: 10_000, Scale: 1},
			{Shape: load.ShapeFlat, Cycles: 3_000, Scale: 2.5},
			{Shape: load.ShapeRamp, Cycles: 6_000, Scale: 2.5, To: 0.8},
			{Shape: load.ShapeSine, Cycles: 12_000, Scale: 1, Amp: 0.4, Period: 6_000},
			{Shape: load.ShapeOff, Cycles: 2_000},
		},
		Repeat:  true,
		OnOff:   load.OnOff{OnMean: 7_000, OffMean: 3_000, OnScale: 1.2, OffScale: 0.5},
		Windows: []load.Window{{Until: 55_000}, {From: 62_000, Until: 1 << 40}},
	}
	return t
}

// statsJSON renders the machine's full stats dump (instruments + epoch
// series) as canonical JSON for byte comparison.
func statsJSON(t *testing.T, m *Machine) []byte {
	t.Helper()
	b, err := json.Marshal(m.StatsDump())
	if err != nil {
		t.Fatalf("marshal stats dump: %v", err)
	}
	return b
}

// TestStationaryShorthandEqualsNeutralLoadSpec pins the refactor's anchor
// property end to end at the machine level: a task declared with the
// historical MeanInterarrival shorthand and the same task carrying an
// explicit neutral load program (flat 1.0×, repeating — a shaped model that
// accepts every thinning candidate without an acceptance draw) produce
// byte-identical serialised state and byte-identical stats, because the
// neutral shaped path consumes the stationary model's exact RNG stream.
func TestStationaryShorthandEqualsNeutralLoadSpec(t *testing.T) {
	ctx := context.Background()
	build := func(neutral bool) *Machine {
		lc := lcTask(workload.Masstree, 3_000)
		if neutral {
			lc.Load = load.Spec{
				Phases: []load.Phase{{Shape: load.ShapeFlat, Cycles: 50_000, Scale: 1}},
				Repeat: true,
			}
		}
		tasks := append([]TaskSpec{lc}, beTasks(workload.IBench, 3)...)
		m, err := New(KunpengConfig(4), Options{Policy: PolicyPIVOT}, tasks)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m.EnableStats(5_000, 0)
		return m
	}

	bare, neutral := build(false), build(true)
	if err := bare.RunChecked(ctx, 20_000, 40_000); err != nil {
		t.Fatalf("bare run: %v", err)
	}
	if err := neutral.RunChecked(ctx, 20_000, 40_000); err != nil {
		t.Fatalf("neutral run: %v", err)
	}
	if got, want := stateBytes(t, neutral), stateBytes(t, bare); string(got) != string(want) {
		t.Errorf("neutral-program state differs from stationary shorthand (%d vs %d bytes)", len(got), len(want))
	}
	if got, want := statsJSON(t, neutral), statsJSON(t, bare); string(got) != string(want) {
		t.Errorf("neutral-program stats differ from stationary shorthand")
	}
	if bare.LCp95(0) != neutral.LCp95(0) {
		t.Errorf("p95 differs: %d vs %d", neutral.LCp95(0), bare.LCp95(0))
	}
}

// TestShapedLoadEngineTriangle: a fully-shaped task must run byte-identically
// under the dense per-cycle loop, quiescence-aware skip-ahead, and the
// sharded parallel engine — the contract that makes load shapes usable with
// every tick loop. Serialised state and the sampled stats series must both
// match.
func TestShapedLoadEngineTriangle(t *testing.T) {
	ctx := context.Background()
	tasks := append([]TaskSpec{shapedLCTask()}, beTasks(workload.IBench, 3)...)
	run := func(opt Options) *Machine {
		opt.Policy = PolicyPIVOT
		m, err := New(KunpengConfig(4), opt, tasks)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m.EnableStats(5_000, 0)
		if err := m.RunChecked(ctx, 20_000, 50_000); err != nil {
			t.Fatalf("run (%+v): %v", opt, err)
		}
		return m
	}

	dense := run(Options{Dense: true})
	skip := run(Options{})
	par := run(Options{Parallel: 2})
	if !par.ParallelActive() {
		t.Fatalf("parallel engine did not engage")
	}

	denseState, denseStats := stateBytes(t, dense), statsJSON(t, dense)
	for _, leg := range []struct {
		name string
		m    *Machine
	}{{"skip-ahead", skip}, {"parallel", par}} {
		if got := stateBytes(t, leg.m); string(got) != string(denseState) {
			t.Errorf("%s state differs from dense (%d vs %d bytes)", leg.name, len(got), len(denseState))
		}
		if got := statsJSON(t, leg.m); string(got) != string(denseStats) {
			t.Errorf("%s stats differ from dense", leg.name)
		}
	}

	// The run crossed the first window's close and the second's open, so the
	// churn path genuinely executed: some requests completed, and fewer than
	// a churn-free run would have seen.
	if done := dense.LCTasks()[0].Source.Completed(); done == 0 {
		t.Fatalf("shaped task completed no requests; windows swallowed the run")
	}
}

// TestChurnKillAndResume: a tenant that departs and returns mid-run must
// survive an abort-and-resume across its churn boundary bit-identically —
// the model's modulator cursor and window position are part of the
// checkpoint.
func TestChurnKillAndResume(t *testing.T) {
	ctx := context.Background()
	tasks := append([]TaskSpec{shapedLCTask()}, beTasks(workload.IBench, 3)...)
	build := func() *Machine {
		m, err := New(KunpengConfig(4), Options{Policy: PolicyPIVOT}, tasks)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return m
	}

	ref := build()
	if err := ref.RunChecked(ctx, 20_000, 50_000); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Interval: 16_000, Keep: 3}
	interrupted := build()
	// Abort inside the window gap (the tenant is departed at 58k), so the
	// resume leg re-enters through the second window's open.
	interrupted.Opt.MaxCycles = 58_000
	if _, err := interrupted.RunCheckpointed(ctx, 20_000, 50_000, cc); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("interrupted run: err = %v, want cycle-budget abort", err)
	}

	resumedM := build()
	resumed, err := resumedM.RunCheckpointed(ctx, 20_000, 50_000, cc)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed < 58_000 {
		t.Fatalf("resumed from cycle %d, want the abort flush at >= 58000", resumed)
	}
	if got, want := stateBytes(t, resumedM), stateBytes(t, ref); string(got) != string(want) {
		t.Error("resumed final state differs from uninterrupted run")
	}
	if resumedM.LCp95(0) != ref.LCp95(0) || resumedM.BECommitted() != ref.BECommitted() {
		t.Errorf("whole-run stats differ: p95 %d vs %d, BE %d vs %d",
			resumedM.LCp95(0), ref.LCp95(0), resumedM.BECommitted(), ref.BECommitted())
	}
}
