package scenfuzz

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"pivot/internal/scenario"
)

// TestGenerateDeterministic: the generator is a pure function of (seed,
// index) — byte-identical encodes on repeat, distinct scenarios across
// indices and seeds.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a := Generate(42, i).MustEncode()
		b := Generate(42, i).MustEncode()
		if !bytes.Equal(a, b) {
			t.Fatalf("Generate(42, %d) not deterministic:\n%s\n%s", i, a, b)
		}
	}
	if bytes.Equal(Generate(42, 0).MustEncode(), Generate(42, 1).MustEncode()) {
		t.Fatalf("Generate(42, 0) == Generate(42, 1); indices should differ")
	}
	if bytes.Equal(Generate(42, 0).MustEncode(), Generate(43, 0).MustEncode()) {
		t.Fatalf("Generate(42, 0) == Generate(43, 0); seeds should differ")
	}
}

// TestGenerateValidAndDiverse: every generated scenario validates, is
// executable by the oracle bank, and the population exercises the schema's
// optional dimensions (faults, sweeps, inline apps, BE co-runners).
func TestGenerateValidAndDiverse(t *testing.T) {
	var faults, sweeps, inline, be, loads, shaped int
	const n = 150
	for i := 0; i < n; i++ {
		sc := Generate(7, i) // Generate panics on an invalid scenario
		if err := Executable(sc); err != nil {
			t.Fatalf("Generate(7, %d) not executable: %v", i, err)
		}
		if sc.Faults != nil {
			faults++
		}
		if len(sc.Sweep) > 0 {
			sweeps++
		}
		for _, task := range sc.Tasks {
			if task.LCParams != nil || task.BEParams != nil {
				inline++
				break
			}
		}
		for _, task := range sc.Tasks {
			if task.Kind == scenario.KindBE {
				be++
				break
			}
		}
		for _, task := range sc.Tasks {
			if task.Load != nil {
				loads++
				break
			}
		}
		for _, task := range sc.Tasks {
			if task.Load.Shaped() {
				shaped++
				break
			}
		}
	}
	for name, got := range map[string]int{"faults": faults, "sweeps": sweeps, "inline params": inline, "BE tasks": be, "load stanzas": loads, "shaped arrivals": shaped} {
		if got == 0 {
			t.Errorf("no generated scenario out of %d used %s", n, name)
		}
	}
}

// TestShrinkConvergence: table-driven structural predicates — the shrinker
// must land on a valid fixed point (shrinking the result is a no-op) that
// still satisfies the predicate it was minimising against.
func TestShrinkConvergence(t *testing.T) {
	// Generate(1, 3) is a rich starting point: two LC tasks, a two-station
	// fault plan, a sweep axis and several options (pinned by determinism).
	rich := Generate(1, 3)
	if rich.Faults == nil || len(rich.Sweep) == 0 || len(rich.Tasks) < 2 {
		t.Fatalf("Generate(1, 3) no longer rich enough for this test: %s", rich.MustEncode())
	}
	cases := []struct {
		name string
		keep Predicate
	}{
		{"always", func(*scenario.Scenario) bool { return true }},
		{"keeps-policy", func(c *scenario.Scenario) bool { return c.Policy == rich.Policy }},
		{"keeps-two-tasks", func(c *scenario.Scenario) bool { return len(c.Tasks) >= 2 }},
		{"keeps-a-fault-drop", func(c *scenario.Scenario) bool {
			if c.Faults == nil {
				return false
			}
			for _, r := range c.Faults.Stations {
				if r.Drop > 0 {
					return true
				}
			}
			return false
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.keep(rich) {
				t.Fatalf("predicate does not hold on the input")
			}
			min := Shrink(rich, tc.keep)
			if !tc.keep(min) {
				t.Fatalf("shrunk scenario no longer satisfies predicate: %s", min.MustEncode())
			}
			if err := min.Validate(); err != nil {
				t.Fatalf("shrunk scenario invalid: %v", err)
			}
			again := Shrink(min, tc.keep)
			if !bytes.Equal(min.MustEncode(), again.MustEncode()) {
				t.Fatalf("shrink not a fixed point:\nonce:  %s\ntwice: %s", min.MustEncode(), again.MustEncode())
			}
		})
	}
}

// defectScenario is a deliberately small, sweep-free mix with some shrinkable
// slack (seed, prefetch, long-ish windows) for the defect walkthrough.
func defectScenario() *scenario.Scenario {
	sc := &scenario.Scenario{
		Version: scenario.Version,
		Name:    "defect-demo",
		Policy:  "Default",
		Warmup:  8_000,
		Measure: 16_000,
		Seed:    5,
	}
	sc.Machine.Cores = 2
	sc.Options.Prefetch = true
	sc.Tasks = []scenario.Task{{Kind: scenario.KindLC, App: "masstree", Interarrival: 3_000}}
	return sc
}

// TestDefectCaughtShrunkAndReplayable is the end-to-end proof the issue asks
// for: a deliberately seeded skip-ahead defect is caught by the equivalence
// oracle, shrunk to a minimal reproduction, recorded as a corpus entry, and
// that entry fails under replay with the defect armed and passes without it.
func TestDefectCaughtShrunkAndReplayable(t *testing.T) {
	ctx := context.Background()
	sc := defectScenario()
	if err := sc.Validate(); err != nil {
		t.Fatalf("defect scenario invalid: %v", err)
	}
	defect := Env{Defect: DefectSkipFaults}

	f := CheckAll(ctx, sc, Oracles(), defect)
	if f == nil {
		t.Fatalf("seeded defect %q not caught by any oracle", DefectSkipFaults)
	}
	if f.Oracle != "equiv" {
		t.Fatalf("defect caught by oracle %q, want equiv (detail: %s)", f.Oracle, f.Detail)
	}
	if len(f.Transcript) == 0 {
		t.Errorf("finding has no oracle transcript")
	}

	f.Shrink(ctx, defect)
	min := f.Scenario
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized scenario invalid: %v", err)
	}
	if min.Seed != 1 || min.Options.Prefetch {
		t.Errorf("shrinker left removable detail in place: %s", min.MustEncode())
	}
	if got := CheckAll(ctx, min, Oracles(), defect); got == nil || got.Oracle != "equiv" {
		t.Fatalf("minimized scenario no longer reproduces the defect: %+v", got)
	}
	if got := CheckAll(ctx, min, Oracles(), Env{}); got != nil {
		t.Fatalf("minimized scenario fails even without the defect: %s: %s", got.Oracle, got.Detail)
	}

	corpus := t.TempDir()
	dir, err := WriteEntry(corpus, f)
	if err != nil {
		t.Fatalf("WriteEntry: %v", err)
	}
	entries, err := LoadCorpus(corpus)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(entries) != 1 || entries[0].Dir != dir {
		t.Fatalf("LoadCorpus = %+v, want the one entry at %s", entries, dir)
	}
	if entries[0].Meta.Oracle != "equiv" || entries[0].Meta.Defect != DefectSkipFaults {
		t.Fatalf("entry metadata %+v lost oracle/defect attribution", entries[0].Meta)
	}
	if !bytes.Equal(entries[0].Scenario.MustEncode(), min.MustEncode()) {
		t.Fatalf("corpus round-trip changed the scenario")
	}

	failed, err := Replay(ctx, corpus, defect, nil)
	if err != nil {
		t.Fatalf("Replay(defect): %v", err)
	}
	if len(failed) != 1 {
		t.Fatalf("replay with defect armed: %d failures, want 1", len(failed))
	}
	failed, err = Replay(ctx, corpus, Env{}, nil)
	if err != nil {
		t.Fatalf("Replay(clean): %v", err)
	}
	if len(failed) != 0 {
		t.Fatalf("replay without defect: %d failures, want 0 (first: %s)", len(failed), failed[0].Detail)
	}
}

// TestRunCampaignGreen: a small campaign on the current tree comes back
// all-green, journals every scenario, and writes no corpus entries.
func TestRunCampaignGreen(t *testing.T) {
	corpus := t.TempDir()
	sum, err := Run(context.Background(), Config{
		Seed:        1,
		N:           4,
		Parallel:    2,
		Corpus:      corpus,
		JournalPath: filepath.Join(t.TempDir(), "journal.jsonl"),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Checked != 4 || sum.Skipped != 0 {
		t.Fatalf("Summary = %+v, want 4 checked, 0 skipped", sum)
	}
	if len(sum.Findings) != 0 {
		t.Fatalf("campaign found %d findings on a clean tree; first: %s: %s",
			len(sum.Findings), sum.Findings[0].Oracle, sum.Findings[0].Detail)
	}
	entries, err := LoadCorpus(corpus)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("clean campaign wrote %d corpus entries", len(entries))
	}
}
