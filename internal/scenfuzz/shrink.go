package scenfuzz

import (
	"pivot/internal/scenario"
)

// maxShrinkSteps bounds the number of accepted simplifications; each step
// strictly shrinks the scenario, so real shrinks converge far earlier — the
// bound only guards against a pathological predicate.
const maxShrinkSteps = 200

// Predicate reports whether a candidate scenario still triggers the failure
// being minimised (the same oracle failing, under the same Env).
type Predicate func(*scenario.Scenario) bool

// Shrink greedily minimises a failing scenario: it proposes simplifications
// in decreasing order of aggressiveness — drop the sweep, drop tasks, drop
// the fault plan and its stations, collapse thread counts, zero options,
// halve the run windows — and accepts any candidate that still fails, until
// no candidate does (a fixed point). The input must satisfy keep; the result
// does too, and is valid.
func Shrink(sc *scenario.Scenario, keep Predicate) *scenario.Scenario {
	cur := sc.Clone()
	for step := 0; step < maxShrinkSteps; step++ {
		accepted := false
		for _, cand := range candidates(cur) {
			if cand.Validate() != nil {
				continue
			}
			if keep(cand) {
				cur = cand
				accepted = true
				break
			}
		}
		if !accepted {
			return cur
		}
	}
	return cur
}

// candidates proposes one-step simplifications of sc, most aggressive first.
// Every candidate is a fresh clone; none aliases sc's mutable parts.
func candidates(sc *scenario.Scenario) []*scenario.Scenario {
	var out []*scenario.Scenario
	mut := func(fn func(*scenario.Scenario)) {
		c := sc.Clone()
		fn(c)
		out = append(out, c)
	}

	// Whole-stanza drops first: one accepted candidate here removes an
	// entire dimension of the search space.
	if len(sc.Sweep) > 0 {
		mut(func(c *scenario.Scenario) { c.Sweep = nil })
		for i := range sc.Sweep {
			i := i
			if len(sc.Sweep) > 1 {
				mut(func(c *scenario.Scenario) {
					c.Sweep = append(append([]scenario.Axis{}, c.Sweep[:i]...), c.Sweep[i+1:]...)
				})
			}
		}
	}
	if len(sc.Tasks) > 1 {
		for i := range sc.Tasks {
			i := i
			mut(func(c *scenario.Scenario) {
				// Dropping a task can invalidate task-indexed sweep axes;
				// drop the sweep along with it (the sweep-only candidates
				// above try keeping it).
				c.Tasks = append(append([]scenario.Task{}, c.Tasks[:i]...), c.Tasks[i+1:]...)
				c.Sweep = nil
			})
		}
	}
	if sc.Faults != nil {
		mut(func(c *scenario.Scenario) { c.Faults = nil })
		// StationNames order keeps the candidate sequence — and therefore the
		// shrink result — deterministic.
		for _, name := range sc.Faults.StationNames() {
			name := name
			if len(sc.Faults.Stations) > 1 {
				mut(func(c *scenario.Scenario) { delete(c.Faults.Stations, name) })
			}
			r := sc.Faults.Stations[name]
			if r.Drop != 0 {
				mut(func(c *scenario.Scenario) {
					r := c.Faults.Stations[name]
					r.Drop = 0
					c.Faults.Stations[name] = r
				})
			}
			if r.Spike != 0 {
				mut(func(c *scenario.Scenario) {
					r := c.Faults.Stations[name]
					r.Spike, r.SpikeCycles = 0, 0
					c.Faults.Stations[name] = r
				})
			}
			if r.Hold != 0 {
				mut(func(c *scenario.Scenario) {
					r := c.Faults.Stations[name]
					r.Hold = 0
					c.Faults.Stations[name] = r
				})
			}
		}
	}
	for i := range sc.Tasks {
		i := i
		if sc.Tasks[i].Threads > 1 {
			mut(func(c *scenario.Scenario) { c.Tasks[i].Threads = 1 })
		}
		if sc.Tasks[i].ExpectedBW != 0 {
			mut(func(c *scenario.Scenario) { c.Tasks[i].ExpectedBW = 0 })
		}
	}
	o := sc.Options
	if o.ExpectedLCBW != 0 {
		mut(func(c *scenario.Scenario) { c.Options.ExpectedLCBW = 0 })
	}
	if o.RRBPEntries != 0 {
		mut(func(c *scenario.Scenario) { c.Options.RRBPEntries = 0 })
	}
	if o.MBALevel != 0 {
		mut(func(c *scenario.Scenario) { c.Options.MBALevel = 0 })
	}
	if o.DisableMSC != "" {
		mut(func(c *scenario.Scenario) { c.Options.DisableMSC = "" })
	}
	if o.Prefetch {
		mut(func(c *scenario.Scenario) { c.Options.Prefetch = false })
	}
	if o.NoStarvationGuard {
		mut(func(c *scenario.Scenario) { c.Options.NoStarvationGuard = false })
	}
	if sc.Machine.BEWays != 0 {
		mut(func(c *scenario.Scenario) { c.Machine.BEWays = 0 })
	}
	if sc.Warmup/2 >= 1_000 {
		mut(func(c *scenario.Scenario) { c.Warmup = c.Warmup / 2 })
	}
	if sc.Measure/2 >= 2_000 {
		mut(func(c *scenario.Scenario) { c.Measure = c.Measure / 2 })
	}
	if sc.Seed > 1 {
		mut(func(c *scenario.Scenario) { c.Seed = 1 })
	}
	if sc.Brief != "" {
		mut(func(c *scenario.Scenario) { c.Brief = "" })
	}
	return out
}
