// Package scenfuzz turns the simulator's strictest contracts into an
// automated bug-finding machine. A deterministic generator derives random —
// but valid by construction — scenario.Scenario values from a campaign seed;
// a bank of differential oracles then executes each one several ways and
// demands byte-identical answers:
//
//   - codec: encode → strict decode → re-encode is a byte-identical fixed
//     point, and the strict codec accepts its own output;
//   - equiv: a skip-ahead run and a -dense run finish with byte-identical
//     serialised machine state, result snapshot and stats dump;
//   - checkpoint: a run killed at a scenario-derived cycle and resumed by a
//     fresh machine finishes byte-identical to an uninterrupted run;
//   - flight: attaching the per-request flight recorder changes nothing
//     observable (state minus the recorder's own section, snapshot);
//   - audit: the run completes cleanly under the invariant auditor, the
//     forward-progress watchdog and a cycle budget;
//   - fabric: distributing the scenario's units across the coordinator/worker
//     sweep fabric renders a table byte-identical to the in-process path.
//
// A failing scenario is handed to a greedy shrinker (Shrink) that minimises
// it while preserving the failing oracle, and the minimized spec plus a full
// diagnostic transcript land in a replayable corpus directory (corpus.go).
// cmd/pivot-fuzz drives campaigns and corpus replay from the command line.
package scenfuzz

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"pivot/internal/harness"
	"pivot/internal/scenario"
)

// Config parameterises one fuzzing campaign.
type Config struct {
	// Seed derives every generated scenario; the same (Seed, N, Oracles)
	// campaign reproduces exactly.
	Seed uint64
	// N is the number of scenarios to generate and check.
	N int
	// Duration, when > 0, bounds the campaign wall-clock: scenarios not
	// started before the deadline are skipped (reported, not failed).
	Duration time.Duration
	// Oracles selects which oracles run, by name; empty means all.
	Oracles []string
	// Corpus, when set, receives one replayable directory per finding
	// (minimized scenario + finding metadata + oracle transcript).
	Corpus string
	// Parallel is the harness worker count; < 1 means serial.
	Parallel int
	// JournalPath, when set, appends one JSONL entry per checked scenario.
	JournalPath string
	// Env carries the defect hook into oracle checks (see Defects).
	Env Env
	// Out receives progress notes; nil silences them.
	Out io.Writer
}

// Finding is one oracle violation, already shrunk.
type Finding struct {
	Oracle string `json:"oracle"`
	// Seed and Index locate the generating campaign position; Index is -1
	// for findings on replayed or externally supplied scenarios.
	Seed  uint64 `json:"seed"`
	Index int    `json:"index"`
	// Detail is the oracle's failure message (from the minimized scenario).
	Detail string `json:"detail"`
	// Defect records the active defect hook, if any ("" = real finding).
	Defect string `json:"defect,omitempty"`
	// Transcript is the oracle's diagnostic log from the minimizing run.
	Transcript []string `json:"transcript,omitempty"`
	// Scenario is the minimized failing scenario; Original the generated one.
	Scenario *scenario.Scenario `json:"-"`
	Original *scenario.Scenario `json:"-"`
	// Dir is the corpus entry directory, when one was written.
	Dir string `json:"-"`
}

// Summary is the outcome of one campaign.
type Summary struct {
	Checked  int // scenarios fully checked
	Skipped  int // scenarios not started before the deadline
	Findings []*Finding
}

// Run executes a fuzzing campaign: generate cfg.N scenarios, check each
// against the selected oracles in parallel harness workers (panics become
// structured findings, completed checks are journaled), shrink and record
// every failure. The error reports campaign-infrastructure problems only;
// oracle violations are Findings in the Summary.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	oracles, err := OraclesByName(cfg.Oracles)
	if err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		return nil, errors.New("scenfuzz: campaign needs N > 0")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	var mu sync.Mutex
	var findings []*Finding
	jobs := make([]harness.Job, cfg.N)
	for i := range jobs {
		index := i
		jobs[i] = harness.Job{
			ID: fmt.Sprintf("%04d", index),
			Run: func(rc context.Context) (any, error) {
				sc := Generate(cfg.Seed, index)
				f := CheckAll(rc, sc, oracles, cfg.Env)
				if rc.Err() != nil {
					// The deadline landed mid-check: an aborted oracle run is
					// a skip, not a finding.
					return nil, rc.Err()
				}
				if f == nil {
					return "ok", nil
				}
				f.Seed, f.Index = cfg.Seed, index
				f.Shrink(rc, cfg.Env)
				if cfg.Corpus != "" {
					dir, werr := WriteEntry(cfg.Corpus, f)
					if werr != nil {
						return nil, fmt.Errorf("scenfuzz: writing corpus entry: %w", werr)
					}
					f.Dir = dir
				}
				mu.Lock()
				findings = append(findings, f)
				mu.Unlock()
				return "finding:" + f.Oracle, nil
			},
		}
	}

	r, err := harness.New(harness.Config{
		Parallel:    cfg.Parallel,
		JournalPath: cfg.JournalPath,
		Out:         cfg.Out,
	})
	if err != nil {
		return nil, err
	}
	results := r.RunContext(ctx, jobs)

	sum := &Summary{Findings: findings}
	for _, res := range results {
		switch {
		case res.Err == nil:
			sum.Checked++
		case errors.Is(res.Err, context.DeadlineExceeded) || errors.Is(res.Err, context.Canceled):
			sum.Skipped++
		default:
			// A job-level error survived CheckAll's panic capture: surface it
			// as a finding rather than dropping it.
			sum.Checked++
			mu.Lock()
			sum.Findings = append(sum.Findings, &Finding{
				Oracle: "harness",
				Seed:   cfg.Seed,
				Detail: res.Err.Error(),
				Defect: cfg.Env.Defect,
			})
			mu.Unlock()
		}
	}
	return sum, nil
}

// CheckAll runs the oracles against one scenario, in order, and returns the
// first violation (nil when all pass). A panic inside an oracle becomes a
// finding attributed to that oracle.
func CheckAll(ctx context.Context, sc *scenario.Scenario, oracles []Oracle, env Env) *Finding {
	for _, o := range oracles {
		if ctx != nil && ctx.Err() != nil {
			return nil
		}
		tr := &Transcript{}
		if err := runOracle(ctx, o, sc, env, tr); err != nil {
			return &Finding{
				Oracle:     o.Name,
				Index:      -1,
				Detail:     err.Error(),
				Defect:     env.Defect,
				Transcript: tr.Lines,
				Scenario:   sc.Clone(),
				Original:   sc.Clone(),
			}
		}
	}
	return nil
}

// runOracle invokes one oracle check, recovering a panic into an ordinary
// violation so a poisoned scenario is still shrunk and recorded instead of
// killing its worker.
func runOracle(ctx context.Context, o Oracle, sc *scenario.Scenario, env Env, tr *Transcript) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("oracle panicked: %v", p)
		}
	}()
	return o.check(ctx, sc, env, tr)
}

// Shrink minimises the finding's scenario while preserving its oracle
// failure, refreshing Detail and Transcript from the minimized reproduction.
func (f *Finding) Shrink(ctx context.Context, env Env) {
	o, ok := oracleByName(f.Oracle)
	if !ok {
		return // harness/panic findings have no re-runnable oracle
	}
	var lastErr error
	var lastTr *Transcript
	min := Shrink(f.Scenario, func(cand *scenario.Scenario) bool {
		tr := &Transcript{}
		err := runOracle(ctx, o, cand, env, tr)
		if err != nil {
			lastErr, lastTr = err, tr
		}
		return err != nil
	})
	f.Scenario = min
	if lastErr != nil {
		f.Detail = lastErr.Error()
		f.Transcript = lastTr.Lines
	}
}
