package scenfuzz

import (
	"encoding/json"
	"fmt"

	"pivot/internal/scenario"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// Generation bounds. The windows are deliberately short — an oracle runs each
// scenario up to five times — and fault rates deliberately small, so injected
// perturbation stresses the retry/backpressure paths without starving a mix
// into a watchdog stall.
const (
	genMinWarmup  = 6_000
	genMinMeasure = 12_000
	genMinIA      = 1_500
	genMaxIA      = 8_000
)

// genPolicies are the directly executable methods: the manager-driven
// PARTIES/CLITE loops mutate allocation state from outside the machine, so
// the differential oracles (which demand snapshot equality) exclude them.
func genPolicies() []string {
	return []string{"Default", "MBA", "MPAM", "FullPath", "PIVOT", "CBP", "CBP+FullPath"}
}

// Generate derives scenario number `index` of the campaign keyed by `seed`.
// The result is deterministic in (seed, index), valid by construction
// (Generate panics on a generator bug, not the caller), and executable by
// the oracle bank without calibration: LC tasks always pin an explicit
// interarrival, never a load percentage.
func Generate(seed uint64, index int) *scenario.Scenario {
	rng := sim.NewRNG(seed + uint64(index)*0x9E3779B97F4A7C15 + 0x5F356495)
	s := &scenario.Scenario{
		Version: scenario.Version,
		Name:    fmt.Sprintf("fuzz-%x-%d", seed, index),
		Policy:  pick(rng, genPolicies()),
		Warmup:  uint64(genMinWarmup + 2_000*rng.Intn(6)),
		Measure: uint64(genMinMeasure + 4_000*rng.Intn(6)),
		Seed:    1 + rng.Uint64n(1<<16),
	}
	genMachine(rng, s)
	genOptions(rng, s)
	genTasks(rng, s)
	if rng.Float64() < 0.25 {
		genFaults(rng, s)
	}
	if rng.Float64() < 0.40 {
		genSweep(rng, s)
	}
	// Load stanzas draw last so the campaign prefix (machine, options, tasks,
	// faults, sweep) of a given (seed, index) stays what it was before load
	// shaping existed — pinned corpus indices keep their geometry.
	genLoads(rng, s)
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("scenfuzz: generated invalid scenario (seed %d, index %d): %v", seed, index, err))
	}
	return s
}

func genMachine(rng *sim.RNG, s *scenario.Scenario) {
	// Cache geometry constrains the core count to powers of two (LLC sets =
	// cores * 2048 must be a power of two); 2 and 4 are the smallest machines
	// that still co-locate.
	s.Machine.Cores = 2 << rng.Intn(2)
	if rng.Float64() < 0.30 {
		s.Machine.Preset = scenario.PresetNeoverse
	} else {
		s.Machine.Preset = scenario.PresetKunpeng
	}
	if rng.Float64() < 0.30 {
		s.Machine.BEWays = 1 + rng.Intn(3)
	}
}

func genOptions(rng *sim.RNG, s *scenario.Scenario) {
	o := &s.Options
	if rng.Float64() < 0.25 {
		o.ExpectedLCBW = 0.1 + 0.8*rng.Float64()
	}
	if rng.Float64() < 0.20 {
		if rng.Float64() < 0.3 {
			o.RRBPEntries = -1
		} else {
			o.RRBPEntries = 32 << rng.Intn(4)
		}
	}
	if s.Policy == "MBA" && rng.Float64() < 0.60 {
		o.MBALevel = pick(rng, []int{10, 20, 40, 60, 80})
	}
	if rng.Float64() < 0.15 {
		o.DisableMSC = pick(rng, scenario.MSCNames())
	}
	o.Prefetch = rng.Float64() < 0.20
	o.NoStarvationGuard = rng.Float64() < 0.10
}

func genTasks(rng *sim.RNG, s *scenario.Scenario) {
	cores := s.Machine.Cores
	nLC := 1
	if cores >= 3 && rng.Float64() < 0.35 {
		nLC = 2
	}
	for i := 0; i < nLC; i++ {
		t := scenario.Task{
			Kind:         scenario.KindLC,
			Interarrival: float64(genMinIA + rng.Intn(genMaxIA-genMinIA)),
		}
		if rng.Float64() < 0.20 {
			t.LCParams = genLCParams(rng, i)
		} else {
			t.App = pick(rng, append(workload.LCNames(), workload.Microservice))
		}
		if rng.Float64() < 0.20 {
			t.ExpectedBW = 0.1 + 0.5*rng.Float64()
		}
		s.Tasks = append(s.Tasks, t)
	}
	spare := cores - nLC
	nBE := rng.Intn(spare + 1)
	for i := 0; i < nBE && spare > 0; i++ {
		threads := 1 + rng.Intn(spare)
		t := scenario.Task{Kind: scenario.KindBE, Threads: threads}
		if rng.Float64() < 0.25 {
			t.BEParams = genBEParams(rng, i)
		} else {
			t.App = pick(rng, append(workload.BENames(), workload.IBench, workload.StressCopy))
		}
		s.Tasks = append(s.Tasks, t)
		spare -= threads
	}
}

// genLCParams emits a small-footprint custom LC app in the same parameter
// regime as the catalogue (DESIGN.md §1), so generated mixes exercise the
// inline-app path without dragging a run into pathological territory.
func genLCParams(rng *sim.RNG, i int) *scenario.LCParams {
	p := &scenario.LCParams{
		Name:       fmt.Sprintf("fz-lc-%d", i),
		ChaseDepth: 4 + rng.Intn(8),
		ChaseLines: 1 << (14 + rng.Intn(4)),
		ChasePCs:   4 + rng.Intn(5),
		ALUPerStep: 2 + rng.Intn(8),
		ALULat:     1,
	}
	if rng.Float64() < 0.6 {
		p.PayloadLoads = 1 + rng.Intn(3)
		p.PayloadLines = 1 << (10 + rng.Intn(4))
		p.PayloadSeq = rng.Float64() < 0.5
		p.PayloadPCs = 50 + rng.Intn(100)
	}
	if rng.Float64() < 0.5 {
		p.StoresPerReq = 1 + rng.Intn(6)
	}
	return p
}

func genBEParams(rng *sim.RNG, i int) *scenario.BEParams {
	return &scenario.BEParams{
		Name:        fmt.Sprintf("fz-be-%d", i),
		StreamFrac:  rng.Float64(),
		StreamLines: 1 << (15 + rng.Intn(3)),
		RandLines:   1 << (15 + rng.Intn(3)),
		StoreFrac:   0.4 * rng.Float64(),
		ALUPerMem:   1 + rng.Intn(6),
		MLP:         2 + rng.Intn(6),
		PCs:         4 + rng.Intn(8),
	}
}

// genLoads attaches a bounded load stanza to each LC task with modest
// probability: phase programs, on-off bursts and tenant windows sized to the
// run so shaped arrivals neither starve the mix nor saturate it, scales
// capped at 2x. When the first LC task gets a stanza and the scenario has no
// sweep yet, it sometimes gains a zipf_theta axis so campaigns exercise
// load-field sweeping.
func genLoads(rng *sim.RNG, s *scenario.Scenario) {
	for i := range s.Tasks {
		if s.Tasks[i].Kind != scenario.KindLC || rng.Float64() >= 0.35 {
			continue
		}
		s.Tasks[i].Load = genLoad(rng, s)
	}
	if s.Tasks[0].Load != nil && len(s.Sweep) == 0 && rng.Float64() < 0.30 {
		s.Sweep = []scenario.Axis{{
			Param:  "tasks[0].load.zipf_theta",
			Values: []json.RawMessage{json.RawMessage("0"), json.RawMessage("0.9")},
		}}
	}
}

func genLoad(rng *sim.RNG, s *scenario.Scenario) *scenario.LoadSpec {
	l := &scenario.LoadSpec{}
	if rng.Float64() < 0.40 {
		l.ZipfTheta = 0.2 + 0.7*rng.Float64()
	}
	total := s.Warmup + s.Measure
	if rng.Float64() < 0.70 {
		n := 1 + rng.Intn(3)
		for p := 0; p < n; p++ {
			cycles := total/4 + rng.Uint64n(total/2)
			var ph scenario.LoadPhase
			switch rng.Intn(4) {
			case 0:
				ph = scenario.LoadPhase{Shape: scenario.ShapeFlat, Cycles: cycles,
					Scale: 0.5 + 1.5*rng.Float64()}
			case 1:
				ph = scenario.LoadPhase{Shape: scenario.ShapeRamp, Cycles: cycles,
					Scale: 0.5 + 0.5*rng.Float64(), To: 1 + rng.Float64()}
			case 2:
				ph = scenario.LoadPhase{Shape: scenario.ShapeSine, Cycles: cycles,
					Scale: 0.6 + 0.8*rng.Float64(), Amp: 0.2 + 0.5*rng.Float64(),
					Period: cycles/2 + 1}
			default:
				ph = scenario.LoadPhase{Shape: scenario.ShapeOff, Cycles: 1 + cycles/8}
			}
			l.Phases = append(l.Phases, ph)
		}
		if l.Phases[0].Shape == scenario.ShapeOff {
			// Guarantee an audible phase (and on non-repeat programs a live
			// terminal phase) regardless of the shape draws above.
			l.Phases[0] = scenario.LoadPhase{Shape: scenario.ShapeFlat,
				Cycles: l.Phases[0].Cycles, Scale: 1}
		}
		l.Repeat = rng.Float64() < 0.80
	}
	if rng.Float64() < 0.25 {
		l.OnOff = &scenario.LoadOnOff{
			OnMean:   float64(2_000 + rng.Intn(6_000)),
			OffMean:  float64(1_000 + rng.Intn(3_000)),
			OnScale:  1 + 0.5*rng.Float64(),
			OffScale: 0.5 * rng.Float64(),
		}
	}
	if rng.Float64() < 0.20 {
		cut := total/2 + rng.Uint64n(total/4)
		l.Windows = []scenario.LoadWindow{
			{Until: cut},
			{From: cut + total/8, Until: 2 * total},
		}
	}
	if l.ZipfTheta == 0 && len(l.Phases) == 0 && l.OnOff == nil && len(l.Windows) == 0 {
		l.ZipfTheta = 0.5 // never emit an empty stanza
	}
	return l
}

// genFaults attaches small per-station fault rates to one or two stations.
func genFaults(rng *sim.RNG, s *scenario.Scenario) {
	f := &scenario.Faults{
		Seed:     1 + rng.Uint64n(1<<16),
		Stations: map[string]scenario.FaultRates{},
	}
	names := scenario.MSCNames()
	n := 1 + rng.Intn(2)
	for len(f.Stations) < n {
		name := pick(rng, names)
		if _, dup := f.Stations[name]; dup {
			continue
		}
		var r scenario.FaultRates
		if rng.Float64() < 0.5 {
			r.Drop = 0.005 + 0.015*rng.Float64()
		}
		if rng.Float64() < 0.6 {
			r.Spike = 0.01 + 0.04*rng.Float64()
			r.SpikeCycles = uint64(50 + rng.Intn(350))
		}
		if rng.Float64() < 0.4 {
			r.Hold = 0.005 + 0.015*rng.Float64()
		}
		if r.Drop == 0 && r.Spike == 0 && r.Hold == 0 {
			r.Drop = 0.01
		}
		f.Stations[name] = r
	}
	s.Faults = f
}

// genSweep adds one two-value sweep axis, chosen so every expanded unit
// stays within the machine's core budget.
func genSweep(rng *sim.RNG, s *scenario.Scenario) {
	type axisGen func() (string, []any)
	gens := []axisGen{
		func() (string, []any) {
			pool := genPolicies()
			a := pick(rng, pool)
			b := pick(rng, pool)
			for b == a {
				b = pick(rng, pool)
			}
			return "policy", []any{a, b}
		},
		func() (string, []any) {
			return "seed", []any{s.Seed, s.Seed + 1 + rng.Uint64n(1000)}
		},
		func() (string, []any) {
			return "warmup", []any{s.Warmup, s.Warmup + 4_000}
		},
		func() (string, []any) {
			return "measure", []any{s.Measure, s.Measure + 8_000}
		},
		func() (string, []any) {
			// Growing the machine can never break the core budget; doubling
			// keeps the LLC set count a power of two.
			return "machine.cores", []any{s.Machine.Cores, s.Machine.Cores * 2}
		},
		func() (string, []any) {
			return "machine.be_ways", []any{1, 2}
		},
		func() (string, []any) {
			return "options.prefetch", []any{false, true}
		},
		func() (string, []any) {
			ia := s.Tasks[0].Interarrival
			return "tasks[0].interarrival", []any{ia, ia + 1_000}
		},
	}
	param, vals := gens[rng.Intn(len(gens))]()
	axis := scenario.Axis{Param: param}
	for _, v := range vals {
		raw, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		axis.Values = append(axis.Values, raw)
	}
	// An MBA-level sweep value under a non-MBA policy is legal but inert;
	// the policy axis keeps MBALevel meaningful by clearing it.
	if param == "policy" {
		s.Options.MBALevel = 0
	}
	s.Sweep = []scenario.Axis{axis}
}

// pick returns a uniformly random element.
func pick[T any](rng *sim.RNG, xs []T) T { return xs[rng.Intn(len(xs))] }
