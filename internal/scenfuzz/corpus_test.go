package scenfuzz

import (
	"context"
	"os"
	"testing"

	"pivot/internal/scenario"
)

// testdataCorpus is the checked-in seed corpus. CI replays it via pivot-fuzz
// -replay and TestSeedCorpusReplays keeps it green under plain `go test`.
const testdataCorpus = "testdata/corpus"

// TestSeedCorpusRegenerate rewrites the checked-in seed corpus; run it with
//
//	PIVOT_SEED_CORPUS=1 go test ./internal/scenfuzz -run TestSeedCorpusRegenerate
//
// after a schema or oracle change that invalidates the recorded entries. The
// corpus holds one defect-walkthrough entry (minimized under the skip-faults
// defect; replays clean, fails only when the same defect is armed again) and
// two pinned all-green scenarios replayed through the whole oracle bank.
func TestSeedCorpusRegenerate(t *testing.T) {
	if os.Getenv("PIVOT_SEED_CORPUS") == "" {
		t.Skip("set PIVOT_SEED_CORPUS=1 to rewrite the seed corpus")
	}
	ctx := context.Background()
	if err := os.RemoveAll(testdataCorpus); err != nil {
		t.Fatal(err)
	}

	defect := Env{Defect: DefectSkipFaults}
	f := CheckAll(ctx, defectScenario(), Oracles(), defect)
	if f == nil {
		t.Fatalf("defect scenario not caught; cannot record walkthrough entry")
	}
	f.Shrink(ctx, defect)
	if _, err := WriteEntry(testdataCorpus, f); err != nil {
		t.Fatal(err)
	}

	for _, index := range []int{0, 2} {
		sc := Generate(1, index)
		if got := CheckAll(ctx, sc, Oracles(), Env{}); got != nil {
			t.Fatalf("Generate(1, %d) not green: %s: %s", index, got.Oracle, got.Detail)
		}
		entry := &Finding{
			Oracle:   "all", // no such oracle: Replay runs the whole bank
			Seed:     1,
			Index:    index,
			Detail:   "pinned all-green regression scenario",
			Scenario: sc,
		}
		if _, err := WriteEntry(testdataCorpus, entry); err != nil {
			t.Fatal(err)
		}
	}

	// Generate(1, 126) once caught a real bug: with rrbp_entries:-1, a PIVOT
	// run resumed from a checkpoint serialised differently from an
	// uninterrupted one (the unlimited RRBP table's zero-decayed counters
	// were dropped on restore but kept in the live map; the snapshot
	// encoding is canonical now — internal/rrbp/state_test.go pins the unit
	// fix). The scenario stays pinned here so the exact geometry keeps
	// running through the whole bank.
	rrbpBug := Generate(1, 126)
	if got := CheckAll(ctx, rrbpBug, Oracles(), Env{}); got != nil {
		t.Fatalf("Generate(1, 126) (rrbp zero-decay regression) not green: %s: %s", got.Oracle, got.Detail)
	}
	entry := &Finding{
		Oracle:   "all",
		Seed:     1,
		Index:    126,
		Detail:   "pinned regression: unlimited-RRBP zero-decayed counters once broke checkpoint resume",
		Scenario: rrbpBug,
	}
	if _, err := WriteEntry(testdataCorpus, entry); err != nil {
		t.Fatal(err)
	}

	// Pinned parallel-equivalence scenario: a generated mix carrying an
	// explicit `sim` stanza, replayed through the parallel oracle. Keeps the
	// stanza's strict-codec path and the sharded-vs-dense byte contract
	// exercised even if the generator never emits sim overrides.
	parSc := Generate(1, 2).Clone()
	parSc.Sim = &scenario.Sim{Parallel: 2}
	if got := CheckAll(ctx, parSc, Oracles(), Env{}); got != nil {
		t.Fatalf("parallel-pinned scenario not green: %s: %s", got.Oracle, got.Detail)
	}
	parEntry := &Finding{
		Oracle:   "parallel",
		Seed:     1,
		Index:    2,
		Detail:   "pinned: a sharded parallel run must stay byte-identical to dense",
		Scenario: parSc,
	}
	if _, err := WriteEntry(testdataCorpus, parEntry); err != nil {
		t.Fatal(err)
	}

	// Pinned load-shape scenario: every load-model feature (phase program
	// with ramp/sine/off segments, MMPP-2 bursts, tenant windows, Zipf skew)
	// in one stanza, replayed through the whole bank — including the
	// stationary-equivalence oracle, whose neutral-program contract anchors
	// the refactored arrival path.
	loadSc := loadShapeScenario()
	if err := loadSc.Validate(); err != nil {
		t.Fatalf("load-shape scenario invalid: %v", err)
	}
	if got := CheckAll(ctx, loadSc, Oracles(), Env{}); got != nil {
		t.Fatalf("load-shape scenario not green: %s: %s", got.Oracle, got.Detail)
	}
	loadEntry := &Finding{
		Oracle:   "all",
		Detail:   "pinned: phase/onoff/window/zipf load stanza through the whole bank",
		Scenario: loadSc,
	}
	if _, err := WriteEntry(testdataCorpus, loadEntry); err != nil {
		t.Fatal(err)
	}
}

// loadShapeScenario is the hand-built load-stanza pin: one LC task carrying
// a diurnal sine, a spike, a ramp and a silence in its phase program plus
// bursts, windows and skew, co-located with one BE thread.
func loadShapeScenario() *scenario.Scenario {
	sc := &scenario.Scenario{
		Version: scenario.Version,
		Name:    "load-shapes-pin",
		Policy:  "PIVOT",
		Warmup:  8_000,
		Measure: 16_000,
		Seed:    11,
	}
	sc.Machine.Cores = 2
	sc.Tasks = []scenario.Task{
		{
			Kind:         scenario.KindLC,
			App:          "masstree",
			Interarrival: 2_500,
			Load: &scenario.LoadSpec{
				ZipfTheta: 0.8,
				Phases: []scenario.LoadPhase{
					{Shape: scenario.ShapeSine, Cycles: 8_000, Scale: 1, Amp: 0.4, Period: 4_000},
					{Shape: scenario.ShapeFlat, Cycles: 2_000, Scale: 2},
					{Shape: scenario.ShapeRamp, Cycles: 4_000, Scale: 2, To: 0.5},
					{Shape: scenario.ShapeOff, Cycles: 1_000},
				},
				Repeat: true,
				OnOff:  &scenario.LoadOnOff{OnMean: 3_000, OffMean: 1_500, OnScale: 1.2, OffScale: 0.4},
				Windows: []scenario.LoadWindow{
					{Until: 14_000},
					{From: 16_000, Until: 48_000},
				},
			},
		},
		{Kind: scenario.KindBE, App: "ibench", Threads: 1},
	}
	return sc
}

// TestSeedCorpusReplays: the checked-in corpus replays clean without the
// defect, and the defect-recorded entry still reproduces when its recorded
// defect is armed again.
func TestSeedCorpusReplays(t *testing.T) {
	ctx := context.Background()
	failed, err := Replay(ctx, testdataCorpus, Env{}, nil)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(failed) > 0 {
		t.Fatalf("seed corpus has %d failing entries; first: %s: %s",
			len(failed), failed[0].Oracle, failed[0].Detail)
	}
	entries, err := LoadCorpus(testdataCorpus)
	if err != nil {
		t.Fatal(err)
	}
	var defects int
	for _, e := range entries {
		if e.Meta.Defect == "" {
			continue
		}
		defects++
		f := CheckAll(ctx, e.Scenario, Oracles(), Env{Defect: e.Meta.Defect})
		if f == nil || f.Oracle != e.Meta.Oracle {
			t.Errorf("entry %s no longer reproduces under defect %q: %+v", e.Dir, e.Meta.Defect, f)
		}
	}
	if defects == 0 {
		t.Errorf("seed corpus has no defect-walkthrough entry")
	}
}
