package scenfuzz

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pivot/internal/exp"
	"pivot/internal/fabric"
	"pivot/internal/harness"
	"pivot/internal/machine"
	"pivot/internal/scenario"
)

// fabricCheck: distributing the scenario's units across the coordinator/worker
// fabric must render a scenario table byte-identical to the in-process serial
// path. One in-process worker serves a unix-socket coordinator — the full wire
// protocol, lease table, payload codec and worker-side context rebuild are on
// the path, so any nondeterminism the fabric introduces (JSON round-tripping,
// per-worker caches, checkpoint-interval plumbing) surfaces as a byte diff.
func fabricCheck(ctx context.Context, sc *scenario.Scenario, env Env, tr *Transcript) error {
	if err := Executable(sc); err != nil {
		return err
	}
	cfg := machine.KunpengConfig(scenario.DefaultCores)
	serial, err := exp.NewContext(cfg, exp.Quick()).RunScenario(sc)
	if err != nil {
		return fmt.Errorf("serial run: %w", err)
	}
	want := serial.String()
	tr.Logf("serial table: %d bytes", len(want))

	dir, err := os.MkdirTemp("", "pivot-fuzz-fabric-")
	if err != nil {
		return fmt.Errorf("fabric dir: %w", err)
	}
	defer os.RemoveAll(dir)
	co, err := fabric.NewCoordinator(fabric.Config{
		Addr:      filepath.Join(dir, "f.sock"),
		Heartbeat: 20 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	defer co.Close()
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- fabric.RunWorker(wctx, fabric.WorkerConfig{
			Addr: co.Addr(), Name: "fuzz-w1", Dir: filepath.Join(dir, "w1"),
		})
	}()

	fctx := exp.NewContext(cfg, exp.Quick())
	jobs, labels, err := harness.ScenarioJobs(fctx, sc)
	if err != nil {
		return fmt.Errorf("expanding scenario for the fabric: %w", err)
	}
	r, err := harness.New(harness.Config{Parallel: len(jobs), Executor: co.Executor(nil)})
	if err != nil {
		return err
	}
	results := r.Run(jobs)
	rendered := make([]exp.RunResult, len(results))
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("fabric unit %s: %w", res.ID, res.Err)
		}
		rr, err := harness.ValueAs[exp.RunResult](res)
		if err != nil {
			return fmt.Errorf("fabric unit %s: decoding result: %w", res.ID, err)
		}
		rendered[i] = rr
	}
	got := exp.ScenarioTable(sc, labels, rendered).String()

	cancel()
	co.Close()
	if err := <-workerDone; err != nil {
		return fmt.Errorf("worker: %w", err)
	}

	if got != want {
		return fmt.Errorf("fabric table differs from serial: %s", firstDiff([]byte(want), []byte(got)))
	}
	tr.Logf("fabric table byte-identical across %d unit(s)", len(jobs))
	return nil
}
