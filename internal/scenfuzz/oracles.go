package scenfuzz

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"pivot/internal/checkpoint"
	"pivot/internal/faultinject"
	"pivot/internal/machine"
	"pivot/internal/scenario"
	"pivot/internal/sim"
)

// Transcript accumulates an oracle's observations — what was run, what was
// compared, why something was skipped — so a corpus entry documents the
// failing check, not just its verdict.
type Transcript struct {
	Lines []string
}

// Logf appends one formatted line.
func (t *Transcript) Logf(format string, args ...any) {
	t.Lines = append(t.Lines, fmt.Sprintf(format, args...))
}

// Oracle is one differential check. A non-nil error from check is a finding:
// the scenario violated the oracle's contract.
type Oracle struct {
	Name  string
	Brief string
	check func(ctx context.Context, sc *scenario.Scenario, env Env, tr *Transcript) error
}

// Oracles lists the full bank in execution order: the free checks first, the
// multi-run differential checks after.
func Oracles() []Oracle {
	return []Oracle{
		{"codec", "encode→decode→re-encode is byte-identical and strict-decode accepts its own output", codecCheck},
		{"equiv", "skip-ahead and -dense runs end in byte-identical state, snapshot and stats", equivCheck},
		{"parallel", "a sharded parallel run ends byte-identical to -dense (state, stats, checkpoint payload)", parallelCheck},
		{"checkpoint", "a run killed at a derived cycle and resumed equals an uninterrupted run", checkpointCheck},
		{"flight", "the flight recorder changes nothing observable", flightCheck},
		{"stationary", "a task without a load stanza equals one shaped by the neutral flat program", stationaryCheck},
		{"audit", "the run completes cleanly under auditor, watchdog and cycle budget", auditCheck},
		{"fabric", "a coordinator/worker sweep renders tables byte-identical to the in-process path", fabricCheck},
	}
}

// OracleNames lists the bank's names in order.
func OracleNames() []string {
	all := Oracles()
	out := make([]string, len(all))
	for i, o := range all {
		out[i] = o.Name
	}
	return out
}

// OraclesByName resolves a selection; empty selects the whole bank.
func OraclesByName(names []string) ([]Oracle, error) {
	if len(names) == 0 {
		return Oracles(), nil
	}
	out := make([]Oracle, 0, len(names))
	for _, n := range names {
		o, ok := oracleByName(n)
		if !ok {
			return nil, fmt.Errorf("scenfuzz: unknown oracle %q (one of %s)",
				n, strings.Join(OracleNames(), ", "))
		}
		out = append(out, o)
	}
	return out, nil
}

func oracleByName(name string) (Oracle, bool) {
	for _, o := range Oracles() {
		if o.Name == name {
			return o, true
		}
	}
	return Oracle{}, false
}

// codecCheck: the canonical encoding must be a fixed point of the strict
// codec. Parse re-validates, so this also proves every generated scenario
// survives its own serialisation.
func codecCheck(_ context.Context, sc *scenario.Scenario, _ Env, tr *Transcript) error {
	enc, err := sc.Encode()
	if err != nil {
		return fmt.Errorf("encode failed: %w", err)
	}
	tr.Logf("encoded %d bytes", len(enc))
	parsed, err := scenario.Parse(enc)
	if err != nil {
		return fmt.Errorf("strict decode rejects own encoding: %w", err)
	}
	re, err := parsed.Encode()
	if err != nil {
		return fmt.Errorf("re-encode failed: %w", err)
	}
	if !bytes.Equal(enc, re) {
		return fmt.Errorf("round-trip not byte-identical (%d vs %d bytes): %s",
			len(enc), len(re), firstDiff(enc, re))
	}
	tr.Logf("round-trip byte-identical")
	return nil
}

// eachUnit expands the scenario and applies fn to every executable run unit,
// wrapping failures with the unit label.
func eachUnit(sc *scenario.Scenario, fn func(u *scenario.Scenario, label string) error) error {
	if err := Executable(sc); err != nil {
		return err
	}
	units, err := sc.Expand()
	if err != nil {
		return err
	}
	for _, u := range units {
		label := u.Label
		if label == "" {
			label = sc.Name
		}
		if err := fn(u.Scenario, label); err != nil {
			return fmt.Errorf("unit %q: %w", label, err)
		}
	}
	return nil
}

// equivCheck: for every run unit, a skip-ahead machine and a dense machine
// must finish with byte-identical serialised state, result snapshot and
// stats dump. Fault plans attach to both legs (faulted stations pin
// themselves dense, so the equivalence contract holds under injection); the
// DefectSkipFaults hook perturbs the skip leg only.
func equivCheck(ctx context.Context, sc *scenario.Scenario, env Env, tr *Transcript) error {
	return eachUnit(sc, func(u *scenario.Scenario, label string) error {
		warmup, measure := windows(u)
		skip, err := build(u, mode{stats: true})
		if err != nil {
			return fmt.Errorf("building skip machine: %w", err)
		}
		dense, err := build(u, mode{dense: true, stats: true})
		if err != nil {
			return fmt.Errorf("building dense machine: %w", err)
		}
		faulted := attachFaults(skip, u)
		attachFaults(dense, u)
		tr.Logf("%s: warmup=%d measure=%d faults=%v", label, warmup, measure, faulted)
		if env.Defect == DefectSkipFaults {
			// Seeded bug: the skip leg silently drops a fraction of accepts.
			faultinject.Attach(skip, faultinject.Config{Seed: 7, DropProb: 0.01})
			tr.Logf("%s: defect %q armed on skip leg", label, env.Defect)
		}
		if err := skip.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("skip-ahead run: %w", err)
		}
		if err := dense.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("dense run: %w", err)
		}
		faultinject.Detach(skip)
		faultinject.Detach(dense)
		return compareMachines(tr, label, skip, dense, "skip-ahead", "dense", false, true)
	})
}

// parallelCheck: for every run unit, a sharded parallel machine (two shard
// worker goroutines) and a dense machine must finish with byte-identical
// serialised state, result snapshot, stats dump and — on checkpointable
// units — checkpoint payload. The check sits behind a capability probe: a
// unit whose machine cannot shard falls back to the serial loop, and
// comparing serial against dense would silently prove nothing, so such
// units are skipped with a transcript note instead.
func parallelCheck(ctx context.Context, sc *scenario.Scenario, env Env, tr *Transcript) error {
	return eachUnit(sc, func(u *scenario.Scenario, label string) error {
		warmup, measure := windows(u)
		par, err := build(u, mode{parallel: 2, stats: true})
		if err != nil {
			return fmt.Errorf("building parallel machine: %w", err)
		}
		if !par.ParallelActive() {
			tr.Logf("%s: sharded execution unavailable on this unit — skipped", label)
			return nil
		}
		dense, err := build(u, mode{dense: true, stats: true})
		if err != nil {
			return fmt.Errorf("building dense machine: %w", err)
		}
		faulted := attachFaults(par, u)
		attachFaults(dense, u)
		tr.Logf("%s: warmup=%d measure=%d faults=%v (2 shard workers vs dense)",
			label, warmup, measure, faulted)
		if err := par.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("parallel run: %w", err)
		}
		if err := dense.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("dense run: %w", err)
		}
		faultinject.Detach(par)
		faultinject.Detach(dense)
		if err := compareMachines(tr, label, par, dense, "parallel", "dense", false, true); err != nil {
			return err
		}
		return compareCheckpointPayloads(tr, label, par, dense)
	})
}

// compareCheckpointPayloads writes one checkpoint frame from each finished
// machine through the real checkpoint path and demands byte-identical
// payloads. Units that refuse checkpointing (custom streams) are noted and
// pass vacuously.
func compareCheckpointPayloads(tr *Transcript, label string, a, b *machine.Machine) error {
	if err := a.Checkpointable(); err != nil {
		tr.Logf("%s: not checkpointable (%v) — payload comparison skipped", label, err)
		return nil
	}
	dir, err := os.MkdirTemp("", "pivot-fuzz-par-")
	if err != nil {
		return fmt.Errorf("checkpoint dir: %w", err)
	}
	defer os.RemoveAll(dir)
	ap, err := writtenPayload(a, dir+"/a")
	if err != nil {
		return fmt.Errorf("parallel checkpoint: %w", err)
	}
	bp, err := writtenPayload(b, dir+"/b")
	if err != nil {
		return fmt.Errorf("dense checkpoint: %w", err)
	}
	if !bytes.Equal(ap, bp) {
		return fmt.Errorf("checkpoint payloads differ between parallel and dense (%d vs %d bytes): %s",
			len(ap), len(bp), firstDiff(ap, bp))
	}
	tr.Logf("%s: checkpoint payloads identical (%d bytes)", label, len(ap))
	return nil
}

// writtenPayload checkpoints m into dir and reads back the frame's payload.
func writtenPayload(m *machine.Machine, dir string) ([]byte, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path, err := m.WriteCheckpoint(dir, 1)
	if err != nil {
		return nil, err
	}
	ck, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ck.Payload, nil
}

// checkpointCheck: kill a skip-ahead run at a scenario-derived cycle
// mid-run, resume it in a fresh machine, and demand the final state equal an
// uninterrupted run's. Fault-injected scenarios are skipped: injector RNG
// state lives outside the machine snapshot, so they are (by contract)
// excluded from checkpointing.
func checkpointCheck(ctx context.Context, sc *scenario.Scenario, env Env, tr *Transcript) error {
	return eachUnit(sc, func(u *scenario.Scenario, label string) error {
		if u.Faults != nil {
			tr.Logf("%s: fault-injected, not checkpointable — skipped", label)
			return nil
		}
		warmup, measure := windows(u)
		ref, err := build(u, mode{})
		if err != nil {
			return fmt.Errorf("building reference machine: %w", err)
		}
		if err := ref.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("reference run: %w", err)
		}

		dir, err := os.MkdirTemp("", "pivot-fuzz-ckpt-")
		if err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
		defer os.RemoveAll(dir)
		interval := measure / 3
		if interval < 1_000 {
			interval = 1_000
		}
		cc := machine.CheckpointConfig{Dir: dir, Interval: interval, Keep: 3}

		kill := killCycle(u, warmup, measure)
		killed, err := build(u, mode{maxCycles: kill})
		if err != nil {
			return fmt.Errorf("building killed machine: %w", err)
		}
		tr.Logf("%s: killing at cycle %d of %d (interval %d)", label, kill, warmup+measure, interval)
		if _, err := killed.RunCheckpointed(ctx, warmup, measure, cc); !errors.Is(err, machine.ErrCycleBudget) {
			return fmt.Errorf("killed run: got %v, want cycle-budget abort", err)
		}

		resumed, err := build(u, mode{})
		if err != nil {
			return fmt.Errorf("building resumed machine: %w", err)
		}
		from, err := resumed.RunCheckpointed(ctx, warmup, measure, cc)
		if err != nil {
			return fmt.Errorf("resumed run: %w", err)
		}
		if from == 0 {
			return fmt.Errorf("resume started from scratch: no checkpoint survived the kill at cycle %d", kill)
		}
		tr.Logf("%s: resumed from cycle %d", label, from)
		return compareMachines(tr, label, resumed, ref, "resumed", "uninterrupted", false, false)
	})
}

// killCycle derives the kill point deterministically from the unit's
// canonical encoding: somewhere strictly inside the run, varying per
// scenario so campaigns cover warmup, boundary and mid-measure kills. The
// top of the range stays two guard granules clear of the end — StepChecked
// only tests the cycle budget at granule boundaries, so a budget inside the
// final granule would let the run complete instead of aborting.
func killCycle(u *scenario.Scenario, warmup, measure sim.Cycle) sim.Cycle {
	total := warmup + measure
	if total <= 2*2048+2 {
		// Shrunk-down windows: kill immediately after warmup's first check.
		return 1
	}
	h := fnv.New64a()
	h.Write(u.MustEncode())
	return 1 + sim.Cycle(h.Sum64()%uint64(total-2*2048))
}

// flightCheck: a machine with the flight recorder attached must match a
// recorder-less machine bit-for-bit once the recorder's own state section is
// set aside — recording is observation, never participation.
func flightCheck(ctx context.Context, sc *scenario.Scenario, env Env, tr *Transcript) error {
	return eachUnit(sc, func(u *scenario.Scenario, label string) error {
		warmup, measure := windows(u)
		on, err := build(u, mode{flight: true})
		if err != nil {
			return fmt.Errorf("building recorder-on machine: %w", err)
		}
		off, err := build(u, mode{})
		if err != nil {
			return fmt.Errorf("building recorder-off machine: %w", err)
		}
		attachFaults(on, u)
		attachFaults(off, u)
		if err := on.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("recorder-on run: %w", err)
		}
		if err := off.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("recorder-off run: %w", err)
		}
		faultinject.Detach(on)
		faultinject.Detach(off)
		tr.Logf("%s: comparing recorder-on (flight section stripped) vs recorder-off", label)
		return compareMachines(tr, label, on, off, "recorder-on", "recorder-off", true, false)
	})
}

// stationaryCheck: the load-model refactor's anchor contract. For every run
// unit it derives two variants — one with all arrival shaping stripped from
// the LC tasks (pure stationary Poisson) and one shaping every LC task with
// the neutral flat program (one scale-1.0 phase, repeating) — and demands
// byte-identical machine state, result snapshot and stats dump. The neutral
// program's thinning loop accepts every candidate without consuming extra
// RNG draws, so any divergence means the shaped path corrupted the pinned
// stationary arrival law. Fingerprints are NOT compared: the load spec is
// deliberately part of the checkpoint key, so the two variants differ there
// by design. Reference skew (zipf_theta) is preserved on both legs.
func stationaryCheck(ctx context.Context, sc *scenario.Scenario, env Env, tr *Transcript) error {
	return eachUnit(sc, func(u *scenario.Scenario, label string) error {
		warmup, measure := windows(u)
		bare := u.Clone()
		neutral := u.Clone()
		shaped := 0
		for i := range u.Tasks {
			if u.Tasks[i].Kind != scenario.KindLC {
				continue
			}
			var theta float64
			if l := u.Tasks[i].Load; l != nil {
				theta = l.ZipfTheta
				if l.Shaped() {
					shaped++
				}
			}
			bare.Tasks[i].Load = nil
			if theta > 0 {
				bare.Tasks[i].Load = &scenario.LoadSpec{ZipfTheta: theta}
			}
			neutral.Tasks[i].Load = &scenario.LoadSpec{
				ZipfTheta: theta,
				Phases: []scenario.LoadPhase{{Shape: scenario.ShapeFlat,
					Cycles: uint64(warmup+measure) + 1, Scale: 1}},
				Repeat: true,
			}
		}
		a, err := build(bare, mode{stats: true})
		if err != nil {
			return fmt.Errorf("building stationary machine: %w", err)
		}
		b, err := build(neutral, mode{stats: true})
		if err != nil {
			return fmt.Errorf("building neutral-shaped machine: %w", err)
		}
		attachFaults(a, bare)
		attachFaults(b, neutral)
		tr.Logf("%s: stationary vs neutral-shaped (%d task(s) had real shaping stripped)", label, shaped)
		if err := a.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("stationary run: %w", err)
		}
		if err := b.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("neutral-shaped run: %w", err)
		}
		faultinject.Detach(a)
		faultinject.Detach(b)
		ab, err := stateBytes(a, false)
		if err != nil {
			return fmt.Errorf("stationary state: %w", err)
		}
		bb, err := stateBytes(b, false)
		if err != nil {
			return fmt.Errorf("neutral-shaped state: %w", err)
		}
		if !bytes.Equal(ab, bb) {
			return fmt.Errorf("serialised machine state differs between stationary and neutral-shaped (%d vs %d bytes): %s",
				len(ab), len(bb), firstDiff(ab, bb))
		}
		aj, err := snapshotJSON(a)
		if err != nil {
			return err
		}
		bj, err := snapshotJSON(b)
		if err != nil {
			return err
		}
		if !bytes.Equal(aj, bj) {
			return fmt.Errorf("result snapshots differ between stationary and neutral-shaped: %s", firstDiff(aj, bj))
		}
		as, err := statsJSON(a)
		if err != nil {
			return err
		}
		bs, err := statsJSON(b)
		if err != nil {
			return err
		}
		if !bytes.Equal(as, bs) {
			return fmt.Errorf("stats dumps differ between stationary and neutral-shaped: %s", firstDiff(as, bs))
		}
		tr.Logf("%s: stationary == neutral-shaped (state %d bytes)", label, len(ab))
		return nil
	})
}

// auditCheck: the run must complete cleanly under the invariant auditor, a
// forward-progress watchdog (only when a BE task guarantees steady commits —
// an open-loop-only mix legitimately idles between arrivals) and a generous
// simulated-cycle budget, and must have measured exactly its measure window.
func auditCheck(ctx context.Context, sc *scenario.Scenario, env Env, tr *Transcript) error {
	return eachUnit(sc, func(u *scenario.Scenario, label string) error {
		warmup, measure := windows(u)
		md := mode{audit: true, maxCycles: 2 * (warmup + measure)}
		if hasBE(u) {
			md.watchdog = 25_000
		}
		m, err := build(u, md)
		if err != nil {
			return fmt.Errorf("building audited machine: %w", err)
		}
		attachFaults(m, u)
		tr.Logf("%s: audit run, watchdog=%d, budget=%d", label, md.watchdog, md.maxCycles)
		if err := m.RunChecked(ctx, warmup, measure); err != nil {
			return fmt.Errorf("audited run failed: %w", err)
		}
		if got := m.MeasuredCycles(); got != measure {
			return fmt.Errorf("measured %d cycles, want %d", got, measure)
		}
		if bw := m.BWUtil(); bw < 0 || bw > 1 {
			return fmt.Errorf("bandwidth utilisation %v outside [0,1]", bw)
		}
		return nil
	})
}

func hasBE(sc *scenario.Scenario) bool {
	for i := range sc.Tasks {
		if sc.Tasks[i].Kind == scenario.KindBE {
			return true
		}
	}
	return false
}

// compareMachines demands the two finished machines agree byte-for-byte:
// serialised state (optionally minus machine a's flight section), checkpoint
// fingerprint, result snapshot, and (withStats) the stats dump.
func compareMachines(tr *Transcript, label string, a, b *machine.Machine, an, bn string, stripFlightA, withStats bool) error {
	ab, err := stateBytes(a, stripFlightA)
	if err != nil {
		return fmt.Errorf("%s state: %w", an, err)
	}
	bb, err := stateBytes(b, false)
	if err != nil {
		return fmt.Errorf("%s state: %w", bn, err)
	}
	if !bytes.Equal(ab, bb) {
		return fmt.Errorf("serialised machine state differs between %s and %s (%d vs %d bytes)",
			an, bn, len(ab), len(bb))
	}
	if a.Fingerprint() != b.Fingerprint() {
		return fmt.Errorf("checkpoint fingerprints differ: %s %#x vs %s %#x",
			an, a.Fingerprint(), bn, b.Fingerprint())
	}
	aj, err := snapshotJSON(a)
	if err != nil {
		return err
	}
	bj, err := snapshotJSON(b)
	if err != nil {
		return err
	}
	if !bytes.Equal(aj, bj) {
		return fmt.Errorf("result snapshots differ between %s and %s: %s", an, bn, firstDiff(aj, bj))
	}
	if withStats {
		as, err := statsJSON(a)
		if err != nil {
			return err
		}
		bs, err := statsJSON(b)
		if err != nil {
			return err
		}
		if !bytes.Equal(as, bs) {
			return fmt.Errorf("stats dumps differ between %s and %s: %s", an, bn, firstDiff(as, bs))
		}
	}
	tr.Logf("%s: %s == %s (state %d bytes, snapshot %d bytes)", label, an, bn, len(ab), len(aj))
	return nil
}

// firstDiff renders the first divergence between two byte strings with a
// little context, for failure messages a human can act on.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 20
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+20, i+20
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("first difference at byte %d: %q vs %q", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("one is a prefix of the other (lengths %d vs %d)", len(a), len(b))
}
