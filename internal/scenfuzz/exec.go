package scenfuzz

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"pivot/internal/exp"
	"pivot/internal/faultinject"
	"pivot/internal/flight"
	"pivot/internal/machine"
	"pivot/internal/mem"
	"pivot/internal/scenario"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// Env carries campaign-level knobs into oracle checks. Defect, when set to
// one of Defects(), deliberately sabotages one leg of one oracle — the
// end-to-end proof that the machine actually catches bugs (see the README's
// "seeded defect" walkthrough).
type Env struct {
	Defect string
}

// DefectSkipFaults silently attaches a small drop-fault injector to the
// skip-ahead leg of the equivalence oracle only, simulating a skip-ahead
// compensation bug. The equiv oracle must catch it on essentially every
// scenario and shrink it to a minimal reproduction.
const DefectSkipFaults = "skip-faults"

// Defects lists the valid Env.Defect values.
func Defects() []string { return []string{DefectSkipFaults} }

// mode selects how a unit's machine is instrumented for one oracle leg.
type mode struct {
	dense     bool
	parallel  int // shard worker goroutines (0 = serial tick loop)
	stats     bool
	flight    bool
	audit     bool
	watchdog  sim.Cycle
	maxCycles sim.Cycle
}

// Executable reports whether the oracle bank can run the scenario directly:
// manager-driven policies and calibrated load percentages need the full
// experiment harness (calibration sweeps, manager epochs) and are out of
// scope for differential execution.
func Executable(sc *scenario.Scenario) error {
	units, err := sc.Expand()
	if err != nil {
		return err
	}
	for _, u := range units {
		sc := u.Scenario
		mth, ok := exp.MethodByName(sc.Policy)
		if !ok {
			return fmt.Errorf("scenfuzz: unit %q: unknown policy %q", u.Label, sc.Policy)
		}
		if mth.Manager != "" {
			return fmt.Errorf("scenfuzz: unit %q: manager policy %q is not directly executable", u.Label, sc.Policy)
		}
		for i := range sc.Tasks {
			if sc.Tasks[i].LoadPct != 0 {
				return fmt.Errorf("scenfuzz: unit %q: tasks[%d] uses load_pct (needs calibration); the fuzzer executes explicit-interarrival tasks only", u.Label, i)
			}
		}
	}
	return nil
}

// windows resolves a scenario's run windows, defaulting unset ones to the
// generator's minimums so replayed hand-written specs still run.
func windows(sc *scenario.Scenario) (warmup, measure sim.Cycle) {
	warmup, measure = sim.Cycle(sc.Warmup), sim.Cycle(sc.Measure)
	if warmup == 0 {
		warmup = genMinWarmup
	}
	if measure == 0 {
		measure = genMinMeasure
	}
	return warmup, measure
}

// build constructs the machine for one sweep-free scenario unit under the
// given instrumentation mode. It mirrors exp.Run's task translation minus
// calibration: LC tasks pin their interarrival directly.
func build(sc *scenario.Scenario, md mode) (*machine.Machine, error) {
	mth, ok := exp.MethodByName(sc.Policy)
	if !ok {
		return nil, fmt.Errorf("scenfuzz: unknown policy %q", sc.Policy)
	}
	opt := exp.OptionsFor(sc.Options)
	opt.Policy = mth.Policy
	opt.Dense = md.dense
	opt.Parallel = md.parallel
	opt.Audit = md.audit
	opt.WatchdogWindow = md.watchdog
	opt.MaxCycles = md.maxCycles

	seed := sc.Seed
	if seed == 0 {
		seed = 1
	}
	var tasks []machine.TaskSpec
	for i := range sc.Tasks {
		t := &sc.Tasks[i]
		if t.Kind == scenario.KindLC {
			tasks = append(tasks, machine.TaskSpec{
				Kind:             machine.TaskLC,
				LC:               lcParamsOf(t),
				MeanInterarrival: t.Interarrival,
				ExpectedBW:       t.ExpectedBW,
				Seed:             seed,
				Load:             t.Load.ToLoad(),
			})
			continue
		}
		be := beParamsOf(t)
		for n := 0; n < t.ThreadCount(); n++ {
			tasks = append(tasks, machine.TaskSpec{
				Kind: machine.TaskBE, BE: be,
				Seed: seed + uint64(10+len(tasks)),
			})
		}
	}

	cfg := exp.ConfigFor(sc.Machine, scenario.DefaultCores)
	m, err := machine.New(cfg, opt, tasks)
	if err != nil {
		return nil, err
	}
	if mth.Policy == machine.PolicyMBA && sc.Options.MBALevel > 0 {
		for i, t := range tasks {
			if t.Kind == machine.TaskBE {
				m.MBA().SetLevel(mem.PartID(i), sc.Options.MBALevel)
			}
		}
	}
	if md.stats {
		m.EnableStats(statsEpoch(sc), 0)
	}
	if md.flight {
		m.EnableFlight(flight.Config{TopK: 8, SampleCap: 64})
	}
	return m, nil
}

// statsEpoch sizes the stats sampling epoch to the run so every scenario
// gets a handful of epochs regardless of its windows.
func statsEpoch(sc *scenario.Scenario) sim.Cycle {
	_, measure := windows(sc)
	e := measure / 4
	if e < 1_000 {
		e = 1_000
	}
	return e
}

func lcParamsOf(t *scenario.Task) workload.LCParams {
	if t.LCParams != nil {
		return t.LCParams.ToWorkload()
	}
	return workload.LCApps()[t.App]
}

func beParamsOf(t *scenario.Task) workload.BEParams {
	if t.BEParams != nil {
		return t.BEParams.ToWorkload()
	}
	return workload.BEApps()[t.App]
}

// attachFaults installs the scenario's fault plan on m, reporting whether
// one was attached (callers must Detach before snapshotting state).
func attachFaults(m *machine.Machine, sc *scenario.Scenario) bool {
	plan := exp.FaultPlanFor(sc.Faults)
	if plan == nil {
		return false
	}
	faultinject.AttachPlan(m, *plan)
	return true
}

// stateBytes serialises the machine's complete mutable state, optionally
// stripping the flight recorder's own section (the flight oracle compares a
// recorder-on machine against a recorder-less one; everything else must
// match bit-for-bit).
func stateBytes(m *machine.Machine, stripFlight bool) ([]byte, error) {
	if !stripFlight {
		return m.StateBytes()
	}
	s, err := m.SnapshotState()
	if err != nil {
		return nil, err
	}
	s.Flight = nil
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// snapshotJSON renders the machine's result snapshot for byte comparison.
func snapshotJSON(m *machine.Machine) ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Snapshot().WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// statsJSON renders the stats-framework dump for byte comparison.
func statsJSON(m *machine.Machine) ([]byte, error) {
	var buf bytes.Buffer
	d := m.StatsDump()
	if err := d.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
