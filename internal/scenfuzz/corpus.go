package scenfuzz

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"

	"pivot/internal/harness"
	"pivot/internal/scenario"
)

// A corpus directory holds one subdirectory per finding:
//
//	<corpus>/<oracle>-<hash>/scenario.json  — the minimized failing scenario
//	<corpus>/<oracle>-<hash>/original.json  — the scenario as generated
//	<corpus>/<oracle>-<hash>/finding.json   — oracle, detail, defect, transcript
//
// Entries are replayable: Replay re-runs each entry's oracle against its
// minimized scenario, so a checked-in corpus doubles as a regression suite
// (entries recorded under a defect hook pass clean and fail only when the
// same -defect is armed again).

// Meta is the finding metadata persisted next to the minimized scenario.
type Meta struct {
	Oracle     string   `json:"oracle"`
	Detail     string   `json:"detail"`
	Defect     string   `json:"defect,omitempty"`
	Seed       uint64   `json:"seed"`
	Index      int      `json:"index"`
	Transcript []string `json:"transcript,omitempty"`
}

// Entry is one loaded corpus entry.
type Entry struct {
	Dir      string
	Scenario *scenario.Scenario
	Meta     Meta
}

// WriteEntry persists one finding into the corpus directory and returns the
// entry path. The directory name hashes the minimized scenario, so the same
// minimized failure lands in the same entry across campaigns.
func WriteEntry(corpus string, f *Finding) (string, error) {
	if f.Scenario == nil {
		return "", fmt.Errorf("scenfuzz: finding %q has no scenario to record", f.Oracle)
	}
	enc := f.Scenario.MustEncode()
	h := fnv.New64a()
	h.Write(enc)
	dir := filepath.Join(corpus, fmt.Sprintf("%s-%08x", f.Oracle, h.Sum64()&0xFFFFFFFF))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := harness.WriteFileAtomic(filepath.Join(dir, "scenario.json"), enc, 0o644); err != nil {
		return "", err
	}
	if f.Original != nil {
		if err := harness.WriteFileAtomic(filepath.Join(dir, "original.json"), f.Original.MustEncode(), 0o644); err != nil {
			return "", err
		}
	}
	meta := Meta{
		Oracle: f.Oracle, Detail: f.Detail, Defect: f.Defect,
		Seed: f.Seed, Index: f.Index, Transcript: f.Transcript,
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", err
	}
	if err := harness.WriteFileAtomic(filepath.Join(dir, "finding.json"), append(mb, '\n'), 0o644); err != nil {
		return "", err
	}
	return dir, nil
}

// LoadCorpus reads every entry of a corpus directory, sorted by entry name.
func LoadCorpus(corpus string) ([]Entry, error) {
	dirents, err := os.ReadDir(corpus)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range dirents {
		if !de.IsDir() {
			continue
		}
		dir := filepath.Join(corpus, de.Name())
		sc, err := scenario.Load(filepath.Join(dir, "scenario.json"))
		if err != nil {
			return nil, fmt.Errorf("corpus entry %s: %w", de.Name(), err)
		}
		var meta Meta
		mb, err := os.ReadFile(filepath.Join(dir, "finding.json"))
		if err != nil {
			return nil, fmt.Errorf("corpus entry %s: %w", de.Name(), err)
		}
		if err := json.Unmarshal(mb, &meta); err != nil {
			return nil, fmt.Errorf("corpus entry %s: finding.json: %w", de.Name(), err)
		}
		out = append(out, Entry{Dir: dir, Scenario: sc, Meta: meta})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	return out, nil
}

// Replay re-runs each corpus entry's oracle against its minimized scenario
// under env and reports the entries that fail. Entries whose oracle is not
// re-runnable ("harness") replay through the whole bank instead.
func Replay(ctx context.Context, corpus string, env Env, out io.Writer) (failed []*Finding, err error) {
	entries, err := LoadCorpus(corpus)
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = io.Discard
	}
	for _, e := range entries {
		oracles := Oracles()
		if o, ok := oracleByName(e.Meta.Oracle); ok {
			oracles = []Oracle{o}
		}
		f := CheckAll(ctx, e.Scenario, oracles, env)
		if ctx != nil && ctx.Err() != nil {
			return failed, ctx.Err() // interrupted mid-check, not a verdict
		}
		if f == nil {
			fmt.Fprintf(out, "PASS %s\n", filepath.Base(e.Dir))
			continue
		}
		f.Dir = e.Dir
		f.Seed, f.Index = e.Meta.Seed, e.Meta.Index
		failed = append(failed, f)
		fmt.Fprintf(out, "FAIL %s: %s: %s\n", filepath.Base(e.Dir), f.Oracle, f.Detail)
	}
	return failed, nil
}
