package buildinfo

import (
	"runtime/debug"
	"testing"
)

// fake swaps the package's build-info source for one test.
func fake(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	prev := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = prev })
}

func TestFingerprintFromVCSStamp(t *testing.T) {
	fake(t, &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Path: "pivot", Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123456789abcdef01234567"},
			{Key: "vcs.time", Value: "2026-08-05T06:02:40Z"},
			{Key: "vcs.modified", Value: "false"},
		},
	}, true)
	got := Fingerprint()
	want := "pivot (devel) 0123456789ab (go1.24.0)"
	if got != want {
		t.Errorf("Fingerprint() = %q, want %q", got, want)
	}
}

func TestFingerprintMarksDirtyTrees(t *testing.T) {
	fake(t, &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Path: "pivot", Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "deadbeef"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	// A short revision passes through untruncated; local edits get +dirty.
	if got, want := Fingerprint(), "pivot (devel) deadbeef+dirty (go1.24.0)"; got != want {
		t.Errorf("Fingerprint() = %q, want %q", got, want)
	}
	info := Get()
	if !info.Modified || info.Revision != "deadbeef" {
		t.Errorf("Get() = %+v, want modified deadbeef", info)
	}
}

func TestFingerprintWithoutBuildInfo(t *testing.T) {
	fake(t, nil, false)
	// Binaries built without module info (some test harnesses) must still
	// produce a stable, non-empty stamp rather than crash or emit "".
	if got, want := Fingerprint(), "pivot unknown unknown"; got != want {
		t.Errorf("Fingerprint() = %q, want %q", got, want)
	}
}
