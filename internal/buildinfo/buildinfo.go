// Package buildinfo derives a build fingerprint from the information the Go
// toolchain embeds in every binary (runtime/debug.ReadBuildInfo): the module
// version and the VCS revision the binary was built from. CLIs print it under
// -version and stamp it into report headers and harness journal entries so an
// artifact can always be traced back to the exact code that produced it.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// Info is the decoded build identity.
type Info struct {
	Module   string // module path (e.g. "pivot")
	Version  string // module version ("(devel)" for local builds)
	Revision string // VCS revision, short form
	Time     string // VCS commit time (RFC 3339)
	Modified bool   // working tree was dirty at build time
	Go       string // toolchain version
}

// read is swappable for tests.
var read = debug.ReadBuildInfo

// Get decodes the running binary's build information. Every field degrades
// to "unknown"/zero when the binary was built without VCS stamping (e.g.
// `go test` binaries or builds outside a repository).
func Get() Info {
	info := Info{Module: "pivot", Version: "unknown", Revision: "unknown"}
	bi, ok := read()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	info.Go = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// Fingerprint renders the one-line build identity used in report headers and
// journal entries: "module version rev[+dirty] (go)".
func Fingerprint() string {
	return Get().Fingerprint()
}

// Fingerprint renders the info as the one-line form.
func (i Info) Fingerprint() string {
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Modified {
		rev += "+dirty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s", i.Module, i.Version, rev)
	if i.Go != "" {
		fmt.Fprintf(&b, " (%s)", i.Go)
	}
	return b.String()
}
