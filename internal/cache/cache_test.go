package cache

import (
	"testing"
	"testing/quick"

	"pivot/internal/mem"
)

func testConfig() Config {
	return Config{Name: "t", SizeBytes: 4096, Ways: 4, LineBytes: 64, HitCycles: 1, MSHRs: 4}
}

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "odd", SizeBytes: 4096 + 64, Ways: 4, LineBytes: 64},
		{Name: "npo2", SizeBytes: 3 * 64 * 4, Ways: 4, LineBytes: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestLookupInsert(t *testing.T) {
	c := MustNew(testConfig())
	if c.Lookup(0x1000, 0) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0x1000, 0, false)
	if !c.Lookup(0x1000, 0) {
		t.Fatal("miss after insert")
	}
	// Same line, different offset, still hits.
	if !c.Lookup(0x1020, 0) {
		t.Fatal("miss within the inserted line")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(testConfig()) // 16 sets, 4 ways
	// Fill one set (stride = sets*line = 1024).
	addrs := []uint64{0, 1024, 2048, 3072}
	for _, a := range addrs {
		c.Insert(a, 0, false)
	}
	c.Lookup(0, 0) // make address 0 most recent
	ev, valid := c.Insert(4096, 0, false)
	if !valid || ev != 1024 {
		t.Fatalf("evicted %#x (valid=%v), want LRU 0x400", ev, valid)
	}
	if !c.Contains(0) || c.Contains(1024) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestWayPartitioning(t *testing.T) {
	c := MustNew(testConfig())
	c.SetWayMask(1, 0b0011) // part 1 may only allocate ways 0-1

	// Part 1 streams through one set: at most 2 lines survive.
	for i := uint64(0); i < 8; i++ {
		c.Insert(i*1024, 1, false)
	}
	live := 0
	for i := uint64(0); i < 8; i++ {
		if c.Contains(i * 1024) {
			live++
		}
	}
	if live != 2 {
		t.Fatalf("partition holds %d lines, want 2", live)
	}

	// Unrestricted part 0 lines in other ways are not disturbed.
	c2 := MustNew(testConfig())
	c2.SetWayMask(1, 0b0001)
	c2.Insert(0, 0, false)    // way 0 (first free)
	c2.Insert(1024, 0, false) // way 1
	c2.Insert(2048, 0, false) // way 2
	c2.Insert(3072, 0, false) // way 3
	c2.Insert(4096, 1, false) // part 1 must evict way 0 only
	if c2.Contains(0) {
		t.Fatal("masked insert did not evict from its own way")
	}
	for _, a := range []uint64{1024, 2048, 3072} {
		if !c2.Contains(a) {
			t.Fatalf("masked insert evicted %#x outside its ways", a)
		}
	}
	// Lookups still hit in any way (CAT semantics).
	if !c2.Lookup(1024, 1) {
		t.Fatal("partitioned part cannot hit lines in foreign ways")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(testConfig())
	c.Insert(0x40, 0, true)
	if !c.Invalidate(0x40) {
		t.Fatal("invalidate missed present line")
	}
	if c.Contains(0x40) {
		t.Fatal("line survives invalidate")
	}
	if c.Invalidate(0x40) {
		t.Fatal("invalidate of absent line reported true")
	}
}

// TestCacheInclusionProperty: after any insert sequence, a line is present
// iff it was inserted and not evicted since — checked against a reference
// model implementing the same LRU-within-allowed-ways policy.
func TestCacheInclusionProperty(t *testing.T) {
	f := func(ops []uint16, seed uint8) bool {
		c := MustNew(testConfig())
		present := make(map[uint64]bool)
		for _, op := range ops {
			addr := uint64(op%512) * 64
			if op%3 == 0 {
				ev, valid := c.Insert(addr, mem.PartID(op%2), false)
				present[addr] = true
				if valid {
					if !present[ev] {
						return false // evicted a line the model never saw
					}
					delete(present, ev)
				}
			} else {
				got := c.Lookup(addr, 0)
				if got != present[addr] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMissRateAndReset(t *testing.T) {
	c := MustNew(testConfig())
	c.Lookup(0, 3)
	c.Insert(0, 3, false)
	c.Lookup(0, 3)
	if got := c.Stats.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
	if got := c.PartStats[3].Misses; got != 1 {
		t.Fatalf("part misses = %d, want 1", got)
	}
	c.ResetStats()
	if c.Stats != (Stats{}) || c.PartStats[3] != (Stats{}) {
		t.Fatal("ResetStats left counters")
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

func TestMSHRFile(t *testing.T) {
	m := NewMSHRFile(2)
	e1, fresh := m.Allocate(0x40)
	if e1 == nil || !fresh {
		t.Fatal("first allocation should create an entry")
	}
	e1.Waiters = append(e1.Waiters, 7)
	e1b, fresh := m.Allocate(0x40)
	if e1b != e1 || fresh {
		t.Fatal("same-line allocation should coalesce")
	}
	if _, fresh := m.Allocate(0x80); !fresh {
		t.Fatal("second line should allocate")
	}
	if !m.Full() {
		t.Fatal("file with 2/2 entries should be full")
	}
	if e, fresh := m.Allocate(0xC0); e != nil || fresh {
		t.Fatal("allocation beyond capacity should fail")
	}
	// Fill hands back the removed entry's contents; the pointer itself is a
	// scratch slot, valid until the next Allocate or Fill, not e1's identity.
	if got := m.Fill(0x40); got == nil || got.Addr != 0x40 ||
		len(got.Waiters) != 1 || got.Waiters[0] != 7 {
		t.Fatal("fill returned wrong entry")
	}
	if m.Lookup(0x40) != nil {
		t.Fatal("entry survives fill")
	}
	if m.Fill(0x40) != nil {
		t.Fatal("double fill returned an entry")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1", m.Len())
	}
}
