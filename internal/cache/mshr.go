package cache

import "pivot/internal/stats"

// MSHRFile tracks outstanding misses for one cache. Each entry coalesces all
// waiters for the same line; when the file is full the cache must stall new
// misses, which is one of the back-pressure points that lets bandwidth
// contention propagate toward the core.
//
// The file is a fixed-capacity array searched linearly: capacities are small
// (tens of entries) and every core's load path probes the file, so a linear
// scan beats a map's hashing and its per-entry heap traffic. Entry order is
// arbitrary (swap-remove); snapshots sort by address, so serialisation stays
// deterministic.
type MSHRFile struct {
	max     int
	entries []MSHREntry // live entries; backing array never reallocates

	// popped hands Fill's removed entry to the caller; its waiter slice is
	// recycled into the next Allocate once the caller is done with it.
	popped MSHREntry
}

// MSHREntry is one outstanding miss with its coalesced waiters. Waiters are
// opaque load sequence numbers (cpu.LoadRequest.Seq); the owner interprets
// them. Plain integers rather than callbacks keep in-flight misses
// serialisable for checkpointing.
type MSHREntry struct {
	Addr    uint64
	Waiters []uint64
}

// NewMSHRFile returns an MSHR file with capacity max.
func NewMSHRFile(max int) *MSHRFile {
	return &MSHRFile{max: max, entries: make([]MSHREntry, 0, max)}
}

// Full reports whether a new (non-coalescing) allocation would fail.
func (m *MSHRFile) Full() bool { return len(m.entries) >= m.max }

// Len reports the number of live entries.
func (m *MSHRFile) Len() int { return len(m.entries) }

// Lookup returns the entry for addr, or nil. The pointer is valid only until
// the next Allocate or Fill.
func (m *MSHRFile) Lookup(addr uint64) *MSHREntry {
	for i := range m.entries {
		if m.entries[i].Addr == addr {
			return &m.entries[i]
		}
	}
	return nil
}

// Allocate returns the entry for addr, creating it if needed. The boolean is
// true when a new entry was created (i.e. a downstream request must be sent)
// and false when the miss coalesced onto an existing entry. If the file is
// full and addr has no entry, Allocate returns (nil, false).
func (m *MSHRFile) Allocate(addr uint64) (*MSHREntry, bool) {
	if e := m.Lookup(addr); e != nil {
		return e, false
	}
	if m.Full() {
		return nil, false
	}
	w := m.popped.Waiters[:0] // recycle the last filled entry's waiter slice
	m.popped.Waiters = nil
	m.entries = append(m.entries, MSHREntry{Addr: addr, Waiters: w})
	return &m.entries[len(m.entries)-1], true
}

// RegisterStats registers the file's occupancy gauge under prefix: sustained
// occupancy at capacity is the structural stall the core sees as a refused
// load port.
func (m *MSHRFile) RegisterStats(reg *stats.Registry, prefix string) {
	reg.Gauge(prefix+".occupancy", func() float64 { return float64(len(m.entries)) })
}

// Fill removes and returns the entry for addr (nil if absent). The returned
// pointer — waiters included — is valid only until the next Allocate or Fill.
func (m *MSHRFile) Fill(addr uint64) *MSHREntry {
	for i := range m.entries {
		if m.entries[i].Addr != addr {
			continue
		}
		last := len(m.entries) - 1
		m.popped = m.entries[i]
		m.entries[i] = m.entries[last]
		m.entries[last] = MSHREntry{} // drop the stale waiter reference
		m.entries = m.entries[:last]
		return &m.popped
	}
	return nil
}
