package cache

import "pivot/internal/stats"

// MSHRFile tracks outstanding misses for one cache. Each entry coalesces all
// waiters for the same line; when the file is full the cache must stall new
// misses, which is one of the back-pressure points that lets bandwidth
// contention propagate toward the core.
type MSHRFile struct {
	max     int
	entries map[uint64]*MSHREntry
}

// MSHREntry is one outstanding miss with its coalesced waiters. Waiters are
// opaque load sequence numbers (cpu.LoadRequest.Seq); the owner interprets
// them. Plain integers rather than callbacks keep in-flight misses
// serialisable for checkpointing.
type MSHREntry struct {
	Addr    uint64
	Waiters []uint64
}

// NewMSHRFile returns an MSHR file with capacity max.
func NewMSHRFile(max int) *MSHRFile {
	return &MSHRFile{max: max, entries: make(map[uint64]*MSHREntry, max)}
}

// Full reports whether a new (non-coalescing) allocation would fail.
func (m *MSHRFile) Full() bool { return len(m.entries) >= m.max }

// Len reports the number of live entries.
func (m *MSHRFile) Len() int { return len(m.entries) }

// Lookup returns the entry for addr, or nil.
func (m *MSHRFile) Lookup(addr uint64) *MSHREntry { return m.entries[addr] }

// Allocate returns the entry for addr, creating it if needed. The boolean is
// true when a new entry was created (i.e. a downstream request must be sent)
// and false when the miss coalesced onto an existing entry. If the file is
// full and addr has no entry, Allocate returns (nil, false).
func (m *MSHRFile) Allocate(addr uint64) (*MSHREntry, bool) {
	if e, ok := m.entries[addr]; ok {
		return e, false
	}
	if m.Full() {
		return nil, false
	}
	e := &MSHREntry{Addr: addr}
	m.entries[addr] = e
	return e, true
}

// RegisterStats registers the file's occupancy gauge under prefix: sustained
// occupancy at capacity is the structural stall the core sees as a refused
// load port.
func (m *MSHRFile) RegisterStats(reg *stats.Registry, prefix string) {
	reg.Gauge(prefix+".occupancy", func() float64 { return float64(len(m.entries)) })
}

// Fill removes and returns the entry for addr (nil if absent).
func (m *MSHRFile) Fill(addr uint64) *MSHREntry {
	e := m.entries[addr]
	if e != nil {
		delete(m.entries, addr)
	}
	return e
}
