package cache

import (
	"fmt"
	"sort"

	"pivot/internal/mem"
)

// LineState mirrors one cache line for checkpointing.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Part  mem.PartID
	LRU   uint64
}

// CacheState is the serialisable form of a Cache: every line (set-major, way
// order), the LRU stamp, the partition way masks and the access counters.
// Geometry is configuration, not state — Restore checks it matches.
type CacheState struct {
	Lines     []LineState
	Stamp     uint64
	WayMask   [256]uint64
	Stats     Stats
	PartStats [8]Stats
}

// StateLines reports the line count a snapshot of this cache must hold, so
// composers can validate geometry before mutating anything.
func (c *Cache) StateLines() int { return len(c.tags) }

// SnapshotState captures the cache's complete mutable state.
func (c *Cache) SnapshotState() CacheState {
	s := CacheState{
		Lines:     make([]LineState, len(c.tags)),
		Stamp:     c.stamp,
		WayMask:   c.wayMask,
		Stats:     c.Stats,
		PartStats: c.PartStats,
	}
	for j := range c.tags {
		s.Lines[j] = LineState{
			Tag: c.tags[j], Valid: c.meta[j]&metaValid != 0,
			Dirty: c.meta[j]&metaDirty != 0,
			Part:  c.part[j], LRU: c.lru[j],
		}
	}
	return s
}

// RestoreState overwrites the cache's mutable state from a snapshot taken on
// an identically configured cache.
func (c *Cache) RestoreState(s CacheState) error {
	if len(s.Lines) != len(c.tags) {
		return fmt.Errorf("cache %s: snapshot has %d lines, geometry holds %d",
			c.cfg.Name, len(s.Lines), len(c.tags))
	}
	for j, ls := range s.Lines {
		// Invalid lines carry the sentinel tag in the live arrays (see
		// invalidTag); normalise here so snapshots from either representation
		// restore into a coherent cache.
		if ls.Valid {
			c.tags[j] = ls.Tag
		} else {
			c.tags[j] = invalidTag
		}
		c.lru[j] = ls.LRU
		c.part[j] = ls.Part
		var m uint8
		if ls.Valid {
			m |= metaValid
		}
		if ls.Dirty {
			m |= metaDirty
		}
		c.meta[j] = m
	}
	c.stamp = s.Stamp
	c.wayMask = s.WayMask
	c.Stats = s.Stats
	c.PartStats = s.PartStats
	return nil
}

// MSHRState is the serialisable form of an MSHR file. Entries are sorted by
// address so the encoding is deterministic (the live file is a map).
type MSHRState struct {
	Entries []MSHREntry
}

// SnapshotState captures the outstanding misses and their coalesced waiters.
func (m *MSHRFile) SnapshotState() MSHRState {
	s := MSHRState{Entries: make([]MSHREntry, 0, len(m.entries))}
	for _, e := range m.entries {
		s.Entries = append(s.Entries, MSHREntry{
			Addr:    e.Addr,
			Waiters: append([]uint64(nil), e.Waiters...),
		})
	}
	sort.Slice(s.Entries, func(i, j int) bool { return s.Entries[i].Addr < s.Entries[j].Addr })
	return s
}

// RestoreState replaces the file's contents with the snapshot's.
func (m *MSHRFile) RestoreState(s MSHRState) {
	m.entries = make([]MSHREntry, 0, m.max)
	m.popped = MSHREntry{}
	for _, e := range s.Entries {
		m.entries = append(m.entries,
			MSHREntry{Addr: e.Addr, Waiters: append([]uint64(nil), e.Waiters...)})
	}
}
