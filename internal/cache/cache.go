// Package cache implements the set-associative cache model used for the
// private L1/L2 caches and the shared, way-partitionable LLC, plus the MSHR
// file that bounds outstanding misses. Only tags are modelled; the simulator
// never moves data, it moves timing.
package cache

import (
	"fmt"

	"pivot/internal/mem"
	"pivot/internal/stats"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	HitCycles int // lookup latency on a hit
	MSHRs     int // max outstanding misses
}

// Validate reports a descriptive error for impossible geometries.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	default:
		sets := c.SizeBytes / (c.Ways * c.LineBytes)
		if sets&(sets-1) != 0 {
			return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
		}
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	part  mem.PartID
	lru   uint64 // last-touch stamp; larger = more recent
}

// Stats counts per-cache accesses, split by LC/BE origin so experiments can
// report per-task miss rates.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Cache is a set-associative, LRU, write-back (timing-only) cache.
// It is not safe for concurrent use; the simulator is single-goroutine.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	stamp    uint64

	// wayMask[p] restricts which ways PartID p may *allocate* into
	// (lookups hit in any way, matching Intel CAT semantics).
	// A zero mask means "all ways allowed".
	wayMask [256]uint64

	Stats     Stats
	PartStats [8]Stats // indexed by PartID for small machines
}

// New builds a cache from cfg, rejecting impossible geometries with a
// descriptive error.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, nsets),
		setMask: uint64(nsets - 1),
	}
	backing := make([]line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// MustNew is New panicking on error, for callers whose configuration was
// already validated.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetWayMask restricts PartID p to allocate only into ways whose bit is set
// in mask. Passing 0 restores "all ways". This models Intel CAT / MPAM cache
// portion partitioning.
func (c *Cache) SetWayMask(p mem.PartID, mask uint64) {
	full := uint64(1)<<uint(c.cfg.Ways) - 1
	c.wayMask[p] = mask & full
}

// WayMask returns the allocation mask for PartID p (0 = unrestricted).
func (c *Cache) WayMask(p mem.PartID) uint64 { return c.wayMask[p] }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.lineBits
	return blk & c.setMask, blk >> 0 // full block address as tag: simple and unambiguous
}

func (c *Cache) bumpStats(p mem.PartID, hit bool) {
	if hit {
		c.Stats.Hits++
	} else {
		c.Stats.Misses++
	}
	if int(p) < len(c.PartStats) {
		if hit {
			c.PartStats[p].Hits++
		} else {
			c.PartStats[p].Misses++
		}
	}
}

// Lookup probes the cache for addr, updating LRU on a hit.
// It returns whether the access hit.
func (c *Cache) Lookup(addr uint64, p mem.PartID) bool {
	set, tag := c.index(addr)
	c.stamp++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.stamp
			c.bumpStats(p, true)
			return true
		}
	}
	c.bumpStats(p, false)
	return false
}

// SkipMissProbes applies the side effects of n elided Lookup calls that are
// known to miss (a core re-probing its L1 for a refused memory op under
// skip-ahead): the LRU stamp advances and the miss counters grow exactly as
// n dense Lookups would have left them. Valid only while no line's recency
// actually changes, which holds because a missing probe touches no line.
func (c *Cache) SkipMissProbes(p mem.PartID, n uint64) {
	c.stamp += n
	c.Stats.Misses += n
	if int(p) < len(c.PartStats) {
		c.PartStats[p].Misses += n
	}
}

// Contains probes without updating LRU or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Insert fills addr into the cache on behalf of PartID p, honouring p's way
// mask, and returns the evicted block address and whether an eviction of a
// valid line occurred.
func (c *Cache) Insert(addr uint64, p mem.PartID, dirty bool) (evicted uint64, wasValid bool) {
	set, tag := c.index(addr)
	c.stamp++
	allowed := c.wayMask[p]
	if allowed == 0 {
		allowed = uint64(1)<<uint(c.cfg.Ways) - 1
	}

	// Already present (e.g. a racing fill): refresh.
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.stamp
			ln.dirty = ln.dirty || dirty
			return 0, false
		}
	}

	victim := -1
	var victimLRU uint64 = ^uint64(0)
	for i := range c.sets[set] {
		if allowed&(1<<uint(i)) == 0 {
			continue
		}
		ln := &c.sets[set][i]
		if !ln.valid {
			victim = i
			victimLRU = 0
			break
		}
		if ln.lru < victimLRU {
			victim = i
			victimLRU = ln.lru
		}
	}
	if victim < 0 {
		// Mask excluded every way; fall back to way 0 to stay functional.
		victim = 0
	}
	ln := &c.sets[set][victim]
	if ln.valid {
		evicted = ln.tag << c.lineBits
		wasValid = true
	}
	*ln = line{tag: tag, valid: true, dirty: dirty, part: p, lru: c.stamp}
	return evicted, wasValid
}

// Invalidate removes addr if present, returning whether it was there.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.valid = false
			return true
		}
	}
	return false
}

// RegisterStats registers the cache's instruments under prefix (e.g. "llc"):
// hit/miss counters, a miss-rate series, and the running miss-rate gauge.
func (c *Cache) RegisterStats(reg *stats.Registry, prefix string) {
	st := &c.Stats
	reg.Counter(prefix+".hits", func() uint64 { return st.Hits })
	reg.Counter(prefix+".misses", func() uint64 { return st.Misses })
	reg.Rate(prefix+".miss_rate_epoch", func() uint64 { return st.Misses })
	reg.Gauge(prefix+".miss_rate", func() float64 { return st.MissRate() })
}

// MissRate returns misses/(hits+misses), or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// ResetStats zeroes the access counters (used between warm-up and the
// measured region of a simulation).
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	for i := range c.PartStats {
		c.PartStats[i] = Stats{}
	}
}
